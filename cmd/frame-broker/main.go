// Command frame-broker runs one FRAME broker over TCP.
//
// A Primary/Backup pair is started as:
//
//	frame-broker -role backup  -listen :7402 -peer  localhost:7401 -topics topics.txt
//	frame-broker -role primary -listen :7401 -peer  localhost:7402 -topics topics.txt
//
// The Backup polls the Primary and promotes itself on crash; publishers
// started with cmd/frame-pub re-send their retained messages to it.
// The -config flag selects the scheduling configuration: frame (EDF +
// selective replication + coordination), fcfs, or fcfs- (§VI-A).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	frame "repro"
	"repro/internal/spec"
	"repro/internal/transport/submit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-broker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		role        = flag.String("role", "primary", "broker role: primary or backup")
		listen      = flag.String("listen", "127.0.0.1:7401", "listen address")
		peer        = flag.String("peer", "", "peer broker address (backup for a primary, primary for a backup)")
		topicsPath  = flag.String("topics", "", "topic spec file (required)")
		config      = flag.String("config", "frame", "scheduling configuration: frame, fcfs, or fcfs-")
		workers     = flag.Int("workers", 0, "delivery worker threads (0 = 3×GOMAXPROCS, the paper's sizing)")
		lanes       = flag.Int("lanes", 0, "parallel dispatch lanes; topics hash onto lanes, EDF order holds within each (0 = GOMAXPROCS for EDF, 1 for FCFS)")
		batch       = flag.Duration("batch", 0, "write-batch window: coalesce dispatch/replicate frames up to this long per connection; keep below the minimum topic slack (0 = off)")
		batchBytes  = flag.Int("batch-bytes", 0, "flush a write batch early at this many pending bytes (0 = default 32KiB)")
		bsEdge      = flag.Duration("bs-edge", time.Millisecond, "ΔBS for edge subscribers")
		bsCloud     = flag.Duration("bs-cloud", 20*time.Millisecond, "ΔBS for cloud subscribers")
		bb          = flag.Duration("bb", 50*time.Microsecond, "ΔBB broker→backup latency")
		x           = flag.Duration("x", 50*time.Millisecond, "publisher fail-over time x")
		diskDir     = flag.String("disk", "", "backup role: also persist replicas to this directory (Table 1 'local disk' strategy)")
		diskSync    = flag.Bool("disk-sync", false, "fsync every persisted replica (durable, slow)")
		adminAddr   = flag.String("admin-addr", "", "bind an HTTP admin endpoint here serving /metrics, /healthz, and /debug/pprof (empty = disabled)")
		zeroCopy    = flag.Bool("zerocopy", true, "decode received payloads as aliases into each connection's receive buffer (zero-copy hot path); false forces a defensive copy per frame")
		egressDepth = flag.Int("egress-depth", 1024, "per-subscriber outbound ring capacity in frames; dispatch enqueues and a per-subscriber writer drains with vectored writes, so a slow socket never blocks a dispatch lane (0 = synchronous fan-out, the pre-egress behavior)")
		egressShed  = flag.Bool("egress-shed", true, "on a full egress ring, shed oldest frames within each topic's loss tolerance Li and evict the subscriber past it; false blocks the dispatcher instead (backpressure)")
		egressStall = flag.Duration("egress-stall", 0, "fail an egress flush write making no progress for this long and drop the subscriber (0 = unbounded; the ring + shed policy already isolate the lanes)")
		peerStall   = flag.Duration("peer-write-timeout", 0, "fail a replication-link write making no progress for this long so a wedged Backup can't block Replicator workers (0 = default 2s, negative = unbounded)")
		intakeDepth = flag.Int("intake-depth", 0, "per-lane lock-free publish intake ring capacity in messages; publisher sessions push without the lane lock and workers drain in batches (0 = default 1024, negative = locked intake, the pre-intake behavior)")
		flushers    = flag.Int("flushers", 0, "shared egress flusher goroutines sweeping all subscriber rings (0 = default 4, negative = one writer goroutine per subscriber)")
		busyPoll    = flag.Bool("busy-poll", false, "spin idle lane workers and egress flushers briefly before parking: lower wakeup latency, higher idle CPU")
		uring       = flag.Bool("uring", true, "submit each flusher sweep's writes to every ready subscriber ring with one io_uring syscall; falls back to one writev per connection automatically where io_uring is unavailable (false forces the fallback)")
		pinFlushers = flag.String("pin-flushers", "", "pin egress flusher i to CPU list[i mod len], taskset-style list e.g. 0-3,8 (Linux only; empty = no pinning)")
		pinLanes    = flag.String("pin-lanes", "", "pin dispatch lane i's workers to CPU list[i mod len], taskset-style list (Linux only; empty = no pinning)")
		durable     = flag.Bool("durable", false, "ACK = durable mode: append every publish to a segmented group-commit log under -log-dir, ack with PubAck after fsync, and replay the log into the recovery path on restart")
		logDir      = flag.String("log-dir", "", "durable log directory (required with -durable)")
		fsyncEvery  = flag.Duration("fsync-interval", 0, "group-commit window: one fsync acknowledges every publish that arrived within it (0 = default 2ms, negative = fsync per publish)")
		logSegBytes = flag.Int64("log-segment-bytes", 0, "roll the durable log to a new segment past this size (0 = default 8MiB)")
		logRetain   = flag.Int64("log-retain-bytes", 0, "drop oldest sealed segments past this total size (0 = default 256MiB, negative = unlimited)")
		logRetAge   = flag.Duration("log-retain-age", 0, "drop sealed segments older than this (0 = disabled)")
	)
	flag.Parse()

	if *topicsPath == "" {
		return fmt.Errorf("-topics is required")
	}
	f, err := os.Open(*topicsPath)
	if err != nil {
		return err
	}
	topics, err := spec.ParseTopics(f)
	f.Close()
	if err != nil {
		return err
	}

	params := frame.PaperParams()
	params.DeltaBSEdge = *bsEdge
	params.DeltaBSCloud = *bsCloud
	params.DeltaBB = *bb
	params.Failover = *x

	var engine frame.CoreConfig
	switch *config {
	case "frame":
		engine = frame.FRAMEConfig(params)
	case "fcfs":
		engine = frame.FCFSConfig(params)
	case "fcfs-":
		engine = frame.FCFSMinusConfig(params)
	default:
		return fmt.Errorf("unknown -config %q (want frame, fcfs, or fcfs-)", *config)
	}

	var brokerRole frame.BrokerRole
	switch *role {
	case "primary":
		brokerRole = frame.RolePrimary
	case "backup":
		brokerRole = frame.RoleBackup
	default:
		return fmt.Errorf("unknown -role %q (want primary or backup)", *role)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	opts := frame.BrokerOptions{
		Engine:             engine,
		Role:               brokerRole,
		ListenAddr:         *listen,
		PeerAddr:           *peer,
		Network:            frame.NewTCPNetwork(2 * time.Second),
		Clock:              frame.NewClock(),
		Workers:            *workers,
		Lanes:              *lanes,
		BatchWindow:        *batch,
		BatchMaxBytes:      *batchBytes,
		Topics:             topics,
		Logger:             logger,
		DiskBackupDir:      *diskDir,
		AdminAddr:          *adminAddr,
		DisableZeroCopy:    !*zeroCopy,
		EgressDepth:        *egressDepth,
		EgressNoShed:       !*egressShed,
		EgressWriteTimeout: *egressStall,
		PeerWriteTimeout:   *peerStall,
		IntakeDepth:        *intakeDepth,
		Flushers:           *flushers,
		BusyPoll:           *busyPoll,
		NoUring:            !*uring,
	}
	if opts.PinFlushers, err = submit.ParseCPUList(*pinFlushers); err != nil {
		return fmt.Errorf("-pin-flushers: %w", err)
	}
	if opts.PinLanes, err = submit.ParseCPUList(*pinLanes); err != nil {
		return fmt.Errorf("-pin-lanes: %w", err)
	}
	if *egressDepth == 0 {
		opts.EgressDepth = -1 // flag 0 = disabled; the Options sentinel is negative
	}
	if *diskSync {
		opts.DiskSync = frame.DiskSyncAlways
	}
	if *durable {
		if *logDir == "" {
			return fmt.Errorf("-durable requires -log-dir")
		}
		opts.Durable = true
		opts.LogDir = *logDir
		opts.FsyncInterval = *fsyncEvery
		opts.LogSegmentBytes = *logSegBytes
		opts.LogRetainBytes = *logRetain
		opts.LogRetainAge = *logRetAge
	}
	b, err := frame.NewBroker(opts)
	if err != nil {
		return err
	}
	b.Start()
	logger.Info("broker running", "addr", b.Addr(), "role", *role,
		"config", *config, "topics", len(topics), "admin", b.AdminAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
	case <-b.Promoted():
		logger.Info("promoted to primary; continuing to serve")
		<-sig
	}
	b.Stop()
	stats := b.Stats()
	logger.Info("final stats",
		"published", stats.Published,
		"dispatchJobs", stats.DispatchJobs,
		"replicationJobs", stats.ReplicationJobs,
		"prunesSent", stats.PrunesSent,
		"recoveryJobs", stats.RecoveryJobs)
	return nil
}
