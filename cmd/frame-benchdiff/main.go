// Command frame-benchdiff compares a fresh `make bench-json` run against
// the committed BENCH_EGRESS.json baseline and exits 1 on regression:
// any benchmark more than -max-regress percent slower in ns/op, any new
// allocations on a zero-alloc baseline, or any benchmark missing from
// either side. The CI bench-baseline job is its only intended caller:
//
//	frame-benchdiff -base bench_baseline.json -new BENCH_EGRESS.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		basePath   = flag.String("base", "bench_baseline.json", "committed baseline file")
		newPath    = flag.String("new", "BENCH_EGRESS.json", "freshly generated file")
		maxRegress = flag.Float64("max-regress", 10, "allowed ns/op growth in percent")
	)
	flag.Parse()

	load := func(path string) ([]experiments.BenchRow, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return experiments.LoadBenchRows(f)
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	fresh, err := load(*newPath)
	if err != nil {
		return err
	}
	violations := experiments.CompareBaseline(base, fresh, *maxRegress)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "regression:", v)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(violations), *maxRegress)
	}
	fmt.Printf("bench baseline holds: %d benchmarks within %.0f%% of %s\n",
		len(base), *maxRegress, *basePath)
	return nil
}
