// Command frame-sub runs a FRAME subscriber over TCP: it connects to both
// brokers (dispatches arrive from whichever is Primary), discards
// duplicates, and reports per-topic delivery counts, loss runs, and
// end-to-end latency statistics.
//
// Usage:
//
//	frame-sub -brokers localhost:7401,localhost:7402 -topics 0,1,2 -duration 60s
//
// Against a sharded cluster (cmd/frame-cluster), point it at the routing
// Directory instead; it subscribes to every pair in the table and
// de-duplicates cluster-wide:
//
//	frame-sub -directory localhost:7400 -topics 0,1,2
//
// Against a connection-plane gateway (cmd/frame-gateway), run as a thin
// client: one session to the gateway, automatic reconnect on a lost
// session, no broker addresses needed:
//
//	frame-sub -gateway localhost:7410 -topics 0,1,2
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	frame "repro"
	"repro/internal/clocksync"
	"repro/internal/cluster"
	"repro/internal/gateway"
)

// subscriber is the part of the API the report loop needs; satisfied by
// both the per-pair frame.Subscriber and the sharded cluster.Subscriber.
type subscriber interface {
	Latencies(topic frame.TopicID) []time.Duration
	Duplicates() uint64
	Close()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-sub:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		brokers   = flag.String("brokers", "127.0.0.1:7401,127.0.0.1:7402", "comma-separated broker addresses")
		directory = flag.String("directory", "", "routing Directory address of a sharded cluster; overrides -brokers")
		gwAddr    = flag.String("gateway", "", "connection-plane gateway address; thin-client mode, overrides -brokers and -directory")
		topicArg  = flag.String("topics", "", "comma-separated topic ids (required)")
		duration  = flag.Duration("duration", 60*time.Second, "how long to listen (0 = until interrupted)")
		name      = flag.String("name", "frame-sub", "subscriber name")
		deadline  = flag.Duration("deadline", 0, "report deadline-meet rate against this bound (0 = skip)")
	)
	flag.Parse()
	if *topicArg == "" {
		return fmt.Errorf("-topics is required")
	}
	var topics []frame.TopicID
	for _, part := range strings.Split(*topicArg, ",") {
		id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return fmt.Errorf("bad topic id %q: %w", part, err)
		}
		topics = append(topics, frame.TopicID(id))
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	network := frame.NewTCPNetwork(2 * time.Second)

	var sub subscriber
	if *gwAddr != "" {
		// The gateway answers the NTP-style exchange itself, so a thin
		// client stays one hop from its timebase.
		clock, stopSync, err := syncedClock(network, *gwAddr)
		if err != nil {
			return err
		}
		defer stopSync()
		ts, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
			Name:        *name,
			Topics:      topics,
			GatewayAddr: *gwAddr,
			Network:     network,
			Clock:       clock,
			Reconnect:   true,
			Logger:      logger,
		})
		if err != nil {
			return err
		}
		sub = ts
		defer func() {
			fmt.Printf("gateway reconnects: %d\n", ts.Reconnects())
		}()
		logger.Info("subscribed", "topics", len(topics), "gateway", *gwAddr)
	} else if *directory != "" {
		router, err := cluster.NewRouter(cluster.RouterOptions{
			DirectoryAddr: *directory,
			Network:       network,
			Logger:        logger,
		})
		if err != nil {
			return err
		}
		clock, stopSync, err := syncedClock(network, router.Table().Shards[0].Primary)
		if err != nil {
			return err
		}
		defer stopSync()
		cs, err := cluster.NewSubscriber(cluster.SubscriberOptions{
			Name:    *name,
			Topics:  topics,
			Router:  router,
			Network: network,
			Clock:   clock,
			Logger:  logger,
		})
		if err != nil {
			return err
		}
		sub = cs
		logger.Info("subscribed", "topics", len(topics),
			"directory", *directory, "shards", len(router.Table().Shards))
	} else {
		addrs := strings.Split(*brokers, ",")
		clock, stopSync, err := syncedClock(network, strings.TrimSpace(addrs[0]))
		if err != nil {
			return err
		}
		defer stopSync()
		fs, err := frame.NewSubscriber(frame.SubscriberOptions{
			Name:        *name,
			Topics:      topics,
			BrokerAddrs: addrs,
			Network:     network,
			Clock:       clock,
			Logger:      logger,
		})
		if err != nil {
			return err
		}
		sub = fs
		logger.Info("subscribed", "topics", len(topics), "brokers", *brokers)
	}
	defer sub.Close()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-sig:
		case <-time.After(*duration):
		}
	} else {
		<-sig
	}

	for _, id := range topics {
		lats := sub.Latencies(id)
		if len(lats) == 0 {
			fmt.Printf("topic %d: no messages\n", id)
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		met := 0
		for _, l := range lats {
			sum += l
			if *deadline > 0 && l <= *deadline {
				met++
			}
		}
		line := fmt.Sprintf("topic %d: received=%d mean=%v p99=%v max=%v",
			id, len(lats),
			(sum / time.Duration(len(lats))).Round(time.Microsecond),
			lats[len(lats)*99/100].Round(time.Microsecond),
			lats[len(lats)-1].Round(time.Microsecond))
		if *deadline > 0 {
			line += fmt.Sprintf(" met(%v)=%.2f%%", *deadline, 100*float64(met)/float64(len(lats)))
		}
		fmt.Println(line)
	}
	fmt.Printf("duplicates discarded: %d\n", sub.Duplicates())
	return nil
}

// syncedClock disciplines this process's clock to the first broker so
// subscriber-side ts readings share the publisher's timebase (§VI-A's
// PTPd role).
func syncedClock(network frame.Network, serverAddr string) (frame.Clock, func(), error) {
	runner, err := clocksync.NewRunner(clocksync.RunnerOptions{
		ServerAddr: serverAddr,
		Network:    network,
		Local:      frame.NewClock(),
		Interval:   500 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = runner.Run(ctx)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !runner.Synchronizer().Synced() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	return runner.Clock(), func() { cancel(); <-done }, nil
}
