// Command frame-chaos runs the scripted chaos scenarios from
// internal/chaos against a real Primary+Backup cluster over the
// fault-injected TCP transport, and judges the FRAME invariants: bounded
// consecutive loss, per-topic FIFO, the Table 3 prune/recovery discipline,
// and promotion within the polling bound. Shard-level scenarios bring up
// a full multi-pair cluster with its routing Directory and additionally
// judge the promotion blast radius and the routing plane's outage
// behavior. Gateway-level scenarios bring up the connection plane — a
// gateway terminating reconnecting thin clients in front of a broker
// pair — and judge its isolation contract: client-side faults and
// gateway crashes stay inside the thin clients' Li budgets and never
// reach the brokers. Dual-crash durability scenarios fail-stop the
// ENTIRE pair mid-load and judge a broker restarted from the Primary's
// group-commit log segments: no acked publish lost, no on-disk-pruned
// message re-dispatched, and the unpruned backlog recovery-dispatched
// exactly once.
//
// Every fault decision is driven by the seed, so a failed run replays
// exactly:
//
//	frame-chaos -scenario drop-replication -seed 12345
//
// Usage:
//
//	frame-chaos -list                         # show shipped scenarios
//	frame-chaos                               # run everything
//	frame-chaos -smoke                        # PR-gate subset only
//	frame-chaos -shard                        # shard-level scenarios only
//	frame-chaos -gateway                      # gateway-level scenarios only
//	frame-chaos -durable                      # dual-crash durability only
//	frame-chaos -scenario kill-both-brokers   # one scenario (any kind)
//	frame-chaos -artifacts out/               # transcripts for failures
//
// The seed defaults to FRAME_CHAOS_SEED when set, else a per-scenario
// stable default; -seed overrides both. Exits 1 if any invariant fails.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"

	"repro/internal/chaos"
	"repro/internal/faultinject"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-chaos:", err)
		os.Exit(1)
	}
}

// entry is one runnable scenario of any kind.
type entry struct {
	name, desc string
	smoke      bool
	kind       string // "pair", "shard", or "gw"
	run        func(chaos.RunOptions) (*chaos.Result, error)
}

func registry() []entry {
	var out []entry
	for _, sc := range chaos.All() {
		sc := sc
		out = append(out, entry{
			name: sc.Name, desc: sc.Description, smoke: sc.Smoke, kind: "pair",
			run: func(o chaos.RunOptions) (*chaos.Result, error) { return chaos.Run(sc, o) },
		})
	}
	for _, sc := range chaos.ShardAll() {
		sc := sc
		out = append(out, entry{
			name: sc.Name, desc: sc.Description, smoke: sc.Smoke, kind: "shard",
			run: func(o chaos.RunOptions) (*chaos.Result, error) { return chaos.RunShard(sc, o) },
		})
	}
	for _, sc := range chaos.GatewayAll() {
		sc := sc
		out = append(out, entry{
			name: sc.Name, desc: sc.Description, smoke: sc.Smoke, kind: "gw",
			run: func(o chaos.RunOptions) (*chaos.Result, error) { return chaos.RunGateway(sc, o) },
		})
	}
	for _, sc := range chaos.DurableAll() {
		sc := sc
		out = append(out, entry{
			name: sc.Name, desc: sc.Description, smoke: sc.Smoke, kind: "dur",
			run: func(o chaos.RunOptions) (*chaos.Result, error) { return chaos.RunDurable(sc, o) },
		})
	}
	return out
}

func run() error {
	var (
		scenario  = flag.String("scenario", "", "run only the named scenario (default: all)")
		seedFlag  = flag.Int64("seed", 0, "fault lottery seed (0: FRAME_CHAOS_SEED or per-scenario default)")
		list      = flag.Bool("list", false, "list shipped scenarios and exit")
		smoke     = flag.Bool("smoke", false, "run only the Smoke subset (the PR gate)")
		shardOnly = flag.Bool("shard", false, "run only the shard-level scenarios")
		gwOnly    = flag.Bool("gateway", false, "run only the gateway-level scenarios")
		durOnly   = flag.Bool("durable", false, "run only the dual-crash durability scenarios")
		artifacts = flag.String("artifacts", "", "directory for failure transcripts")
	)
	flag.Parse()

	all := registry()
	if *list {
		for _, e := range all {
			gate := " "
			if e.smoke {
				gate = "*"
			}
			fmt.Printf("%s %-5s %-24s %s\n", gate, e.kind, e.name, e.desc)
		}
		fmt.Println("\n* = PR-gate smoke subset")
		return nil
	}

	var selected []entry
	if *scenario != "" {
		for _, e := range all {
			if e.name == *scenario {
				selected = append(selected, e)
			}
		}
		if len(selected) == 0 {
			return fmt.Errorf("unknown scenario %q (see -list)", *scenario)
		}
	} else {
		for _, e := range all {
			if *smoke && !e.smoke {
				continue
			}
			if *shardOnly && e.kind != "shard" {
				continue
			}
			if *gwOnly && e.kind != "gw" {
				continue
			}
			if *durOnly && e.kind != "dur" {
				continue
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		seed := *seedFlag
		if seed == 0 {
			seed = faultinject.SeedFromEnv(defaultSeed(e.name))
		}
		res, err := e.run(chaos.RunOptions{Seed: seed, ArtifactsDir: *artifacts})
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		status := "PASS"
		if !res.Passed() {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %-24s seed=%d published=%d delivered=%d dups=%d publishErrs=%d elapsed=%v\n",
			status, e.name, res.Seed, res.Published, res.Delivered, res.Duplicates, res.PublishErrs, res.Elapsed)
		if !res.Passed() {
			for _, f := range res.Failures {
				fmt.Printf("     invariant violated: %s\n", f)
			}
			fmt.Printf("     replay: frame-chaos -scenario %s -seed %d\n", e.name, res.Seed)
			if res.ArtifactPath != "" {
				fmt.Printf("     artifact: %s\n", res.ArtifactPath)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(selected))
	}
	return nil
}

// defaultSeed mirrors the chaos test driver: a stable per-name seed so bare
// runs are reproducible without any flags.
func defaultSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64()>>1) ^ 0x5eed
}
