// Command frame-chaos runs the scripted chaos scenarios from
// internal/chaos against a real Primary+Backup cluster over the
// fault-injected TCP transport, and judges the FRAME invariants: bounded
// consecutive loss, per-topic FIFO, the Table 3 prune/recovery discipline,
// and promotion within the polling bound.
//
// Every fault decision is driven by the seed, so a failed run replays
// exactly:
//
//	frame-chaos -scenario drop-replication -seed 12345
//
// Usage:
//
//	frame-chaos -list                         # show shipped scenarios
//	frame-chaos                               # run everything
//	frame-chaos -smoke                        # PR-gate subset only
//	frame-chaos -scenario crash-promote       # one scenario
//	frame-chaos -artifacts out/               # transcripts for failures
//
// The seed defaults to FRAME_CHAOS_SEED when set, else a per-scenario
// stable default; -seed overrides both. Exits 1 if any invariant fails.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"

	"repro/internal/chaos"
	"repro/internal/faultinject"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-chaos:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scenario  = flag.String("scenario", "", "run only the named scenario (default: all)")
		seedFlag  = flag.Int64("seed", 0, "fault lottery seed (0: FRAME_CHAOS_SEED or per-scenario default)")
		list      = flag.Bool("list", false, "list shipped scenarios and exit")
		smoke     = flag.Bool("smoke", false, "run only the Smoke subset (the PR gate)")
		artifacts = flag.String("artifacts", "", "directory for failure transcripts")
	)
	flag.Parse()

	if *list {
		for _, sc := range chaos.All() {
			gate := " "
			if sc.Smoke {
				gate = "*"
			}
			fmt.Printf("%s %-24s %s\n", gate, sc.Name, sc.Description)
		}
		fmt.Println("\n* = PR-gate smoke subset")
		return nil
	}

	var scenarios []chaos.Scenario
	if *scenario != "" {
		sc, err := chaos.Find(*scenario)
		if err != nil {
			return err
		}
		scenarios = []chaos.Scenario{sc}
	} else {
		for _, sc := range chaos.All() {
			if *smoke && !sc.Smoke {
				continue
			}
			scenarios = append(scenarios, sc)
		}
	}

	failed := 0
	for _, sc := range scenarios {
		seed := *seedFlag
		if seed == 0 {
			seed = faultinject.SeedFromEnv(defaultSeed(sc.Name))
		}
		res, err := chaos.Run(sc, chaos.RunOptions{Seed: seed, ArtifactsDir: *artifacts})
		if err != nil {
			return fmt.Errorf("%s: %w", sc.Name, err)
		}
		status := "PASS"
		if !res.Passed() {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %-24s seed=%d published=%d delivered=%d dups=%d publishErrs=%d elapsed=%v\n",
			status, sc.Name, res.Seed, res.Published, res.Delivered, res.Duplicates, res.PublishErrs, res.Elapsed)
		if !res.Passed() {
			for _, f := range res.Failures {
				fmt.Printf("     invariant violated: %s\n", f)
			}
			fmt.Printf("     replay: frame-chaos -scenario %s -seed %d\n", sc.Name, res.Seed)
			if res.ArtifactPath != "" {
				fmt.Printf("     artifact: %s\n", res.ArtifactPath)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(scenarios))
	}
	return nil
}

// defaultSeed mirrors the chaos test driver: a stable per-name seed so bare
// runs are reproducible without any flags.
func defaultSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64()>>1) ^ 0x5eed
}
