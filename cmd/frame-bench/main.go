// Command frame-bench regenerates the FRAME paper's evaluation (§VI) from
// the simulated test-bed: Tables 4 and 5, and Figures 7, 8, and 9.
//
// Usage:
//
//	frame-bench -exp all                # everything (minutes)
//	frame-bench -exp table4 -runs 10    # one experiment, paper-scale reps
//	frame-bench -exp fig9 -crash 20s    # longer crash window
//
// With -scrape, frame-bench additionally (or, with -exp none, exclusively)
// scrapes a live broker's /metrics admin endpoint and stores the samples as
// a CSV artifact next to the experiment CSVs — the runtime counterpart of
// the offline evaluation:
//
//	frame-bench -exp none -scrape localhost:7470 -csv artifacts
//
// Scale note: defaults are laptop-sized (3 runs, seconds-long windows);
// the paper used 10 runs × 60 s. Overloaded configurations (FCFS at ≥7525
// topics) score higher here than in the paper because a shorter window
// bounds how far an unstable queue grows; all orderings and crossover
// points are preserved. See EXPERIMENTS.md.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obsv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment: table4, table5, fig7, fig8, fig9, multiedge, lanescale, egress, shardscale, gateway, opoints, submitcompare, durable, or all")
		lanes   = flag.String("lanes", "", "lanescale: comma-separated lane counts to sweep (default 1,2,4,8)")
		shards  = flag.String("shards", "", "shardscale: comma-separated shard counts to sweep (default 1,2,4)")
		minSpd  = flag.Float64("min-speedup", 0, "shardscale: fail unless last/first throughput reaches this factor (skipped when CPUs < largest shard count)")
		batch   = flag.Duration("batch", 0, "lanescale: write-batch window for the swept brokers (0 = off)")
		subs    = flag.Int("subs", 0, "egress: healthy subscriber count (default 4)")
		depth   = flag.Int("egress-depth", 0, "egress: per-subscriber outbound ring depth (default 256)")
		clients = flag.Int("clients", 0, "gateway: sustained simulated client population (default 10000)")
		churn   = flag.Int("churn", 0, "gateway: target connection churn in connects/s (default 600)")
		minCh   = flag.Float64("min-churn", 0, "gateway: fail unless achieved churn reaches this many connects/s (default 500; negative disables)")
		runs    = flag.Int("runs", 0, "repetitions per cell (default 5; paper used 10)")
		measure = flag.Duration("measure", 0, "fault-free measurement window (default 4s; paper used 60s)")
		crash   = flag.Duration("crash", 0, "crash-run window, crash at midpoint (default 8s)")
		seed    = flag.Int64("seed", 1, "base random seed")
		quiet   = flag.Bool("quiet", false, "suppress per-run progress")
		csvDir  = flag.String("csv", "", "also write each experiment's data as CSV into this directory")
		scrape  = flag.String("scrape", "", "scrape a live broker's /metrics (host:port or URL) into the CSV artifacts")
		paylds  = flag.String("payloads", "", "opoints: comma-separated payload sizes in bytes (default 64,1024,65536)")
		fanouts = flag.String("fanouts", "", "opoints: comma-separated subscriber fan-outs (default 1,8,64)")
		opMsgs  = flag.Int("opoints-msgs", 0, "opoints: messages per cell before the byte budget clamps (default 256)")
		opNet   = flag.String("opoints-net", "", "opoints: transport, mem or tcp (default mem; tcp engages the kernel submission backend where available)")
		opUring = flag.Bool("opoints-uring", true, "opoints: allow the kernel submission backend over tcp (false forces the sequential fallback)")
		subCmp  = flag.Bool("submit-compare", false, "run the submitcompare experiment: the 64B/fanout=64 cell over TCP with the uring backend and the sequential fallback, gated on the write-syscall ratio")
		subMin  = flag.Float64("min-submit-ratio", 4, "submitcompare: fail unless the fallback spends this many times more write syscalls per message than the uring backend (negative disables; auto-skipped without io_uring)")
		benchJS = flag.String("bench-json", "", "opoints/durable: also write the result as BenchRow JSON to this path (benchdiff-comparable)")
		durPubs = flag.Int("durable-pubs", 0, "durable: concurrent publisher count (default 32)")
		durMsgs = flag.Int("durable-msgs", 0, "durable: publishes per publisher (default 100)")
		durSync = flag.Duration("durable-fsync", 0, "durable: group-commit window for the group mode (default: broker default)")
		durGate = flag.Bool("durable-gate", true, "durable: fail unless p99 ordering mem < group < always holds")
	)
	flag.Parse()
	if *subCmp {
		*exp = "submitcompare"
	}

	cfg := experiments.Config{
		Runs:         *runs,
		Measure:      *measure,
		CrashMeasure: *crash,
		Seed:         *seed,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	type formatter interface {
		Format() string
		WriteCSV(io.Writer) error
	}
	type experiment struct {
		name string
		run  func() (formatter, error)
		// explicitOnly experiments are bench-governance rigs, not paper
		// reproductions, and are skipped by -exp all.
		explicitOnly bool
	}
	table := []experiment{
		{"table4", func() (formatter, error) { return experiments.RunTable4(cfg) }, false},
		{"table5", func() (formatter, error) { return experiments.RunTable5(cfg) }, false},
		{"fig7", func() (formatter, error) { return experiments.RunFig7(cfg) }, false},
		{"fig8", func() (formatter, error) { return experiments.RunFig8(cfg) }, false},
		{"fig9", func() (formatter, error) { return experiments.RunFig9(cfg) }, false},
		{"multiedge", func() (formatter, error) { return experiments.RunMultiEdge(cfg) }, false},
		{"lanescale", func() (formatter, error) {
			sweep, err := parseLanes(*lanes)
			if err != nil {
				return nil, err
			}
			return experiments.RunLaneScale(cfg, experiments.LaneScaleOptions{Lanes: sweep, Batch: *batch})
		}, false},
		{"egress", func() (formatter, error) {
			return experiments.RunEgress(cfg, experiments.EgressOptions{Subs: *subs, Depth: *depth})
		}, false},
		{"gateway", func() (formatter, error) {
			return experiments.RunGatewayChurn(cfg, experiments.GatewayChurnOptions{
				Clients:   *clients,
				ChurnRate: *churn,
				Window:    *measure,
				MinChurn:  *minCh,
			})
		}, false},
		{"shardscale", func() (formatter, error) {
			sweep, err := parseCounts("shards", *shards)
			if err != nil {
				return nil, err
			}
			return experiments.RunShardScale(cfg, experiments.ShardScaleOptions{Shards: sweep, MinSpeedup: *minSpd})
		}, false},
		{"opoints", func() (formatter, error) {
			pay, err := parseCounts("payloads", *paylds)
			if err != nil {
				return nil, err
			}
			fan, err := parseCounts("fanouts", *fanouts)
			if err != nil {
				return nil, err
			}
			res, err := experiments.RunOpoints(cfg, experiments.OpointsOptions{
				Payloads: pay,
				Fanouts:  fan,
				Messages: *opMsgs,
				Net:      *opNet,
				NoUring:  !*opUring,
			})
			if err != nil {
				return nil, err
			}
			if *benchJS != "" {
				if err := writeBenchJSON(*benchJS, res); err != nil {
					return nil, err
				}
			}
			return res, nil
		}, true},
		{"submitcompare", func() (formatter, error) {
			return experiments.RunSubmitCompare(cfg, experiments.SubmitCompareOptions{
				Messages: *opMsgs,
				MinRatio: *subMin,
			})
		}, true},
		{"durable", func() (formatter, error) {
			res, err := experiments.RunDurable(cfg, experiments.DurableOptions{
				Publishers:    *durPubs,
				Messages:      *durMsgs,
				FsyncInterval: *durSync,
				Gate:          *durGate,
			})
			if err != nil {
				return nil, err
			}
			if *benchJS != "" {
				if err := writeBenchJSON(*benchJS, res); err != nil {
					return nil, err
				}
			}
			return res, nil
		}, true},
	}

	matched := *exp == "none" // -exp none: scrape-only invocation
	for _, e := range table {
		if *exp == "none" || (*exp != "all" && *exp != e.name) {
			continue
		}
		if *exp == "all" && e.explicitOnly {
			continue
		}
		matched = true
		start := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("\n%s\n(regenerated in %v)\n", res.Format(), time.Since(start).Round(time.Second))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.name, res); err != nil {
				return err
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown -exp %q (want table4, table5, fig7, fig8, fig9, multiedge, lanescale, egress, shardscale, gateway, opoints, submitcompare, durable, all, or none)", *exp)
	}
	if *scrape != "" {
		if err := scrapeMetrics(*scrape, *csvDir); err != nil {
			return fmt.Errorf("scrape: %w", err)
		}
	}
	return nil
}

// parseLanes turns "-lanes 1,4,8" into a sweep; empty keeps the default.
func parseLanes(s string) ([]int, error) { return parseCounts("lanes", s) }

// parseCounts turns a comma-separated positive-integer list into a sweep;
// empty keeps the experiment's default.
func parseCounts(name, s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -%s entry %q (want positive integers)", name, part)
		}
		out = append(out, n)
	}
	return out, nil
}

// scrapeMetrics pulls one Prometheus exposition off a live broker's admin
// endpoint and stores it as metrics.csv (metric,labels,value) in dir, or on
// stdout when no -csv directory was given.
func scrapeMetrics(target, dir string) error {
	url := target
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	u, err := neturl.Parse(url)
	if err != nil {
		return err
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/metrics"
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	samples, err := obsv.ParseText(resp.Body)
	if err != nil {
		return err
	}
	var out io.Writer = os.Stdout
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(dir, "metrics.csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() {
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s (%d samples)\n", path, len(samples))
		}()
		out = f
	}
	cw := csv.NewWriter(out)
	if err := cw.Write([]string{"metric", "labels", "value"}); err != nil {
		return err
	}
	for _, s := range samples {
		if err := cw.Write([]string{s.Name, s.Label, strconv.FormatFloat(s.Value, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeBenchJSON stores a result's BenchRow JSON at path, creating parent
// directories as needed.
func writeBenchJSON(path string, res interface{ WriteBenchJSON(io.Writer) error }) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteBenchJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// writeCSV stores one experiment's data under dir/<name>.csv.
func writeCSV(dir, name string, res interface{ WriteCSV(io.Writer) error }) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
