// Command frame-bench regenerates the FRAME paper's evaluation (§VI) from
// the simulated test-bed: Tables 4 and 5, and Figures 7, 8, and 9.
//
// Usage:
//
//	frame-bench -exp all                # everything (minutes)
//	frame-bench -exp table4 -runs 10    # one experiment, paper-scale reps
//	frame-bench -exp fig9 -crash 20s    # longer crash window
//
// Scale note: defaults are laptop-sized (3 runs, seconds-long windows);
// the paper used 10 runs × 60 s. Overloaded configurations (FCFS at ≥7525
// topics) score higher here than in the paper because a shorter window
// bounds how far an unstable queue grows; all orderings and crossover
// points are preserved. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment: table4, table5, fig7, fig8, fig9, multiedge, or all")
		runs    = flag.Int("runs", 0, "repetitions per cell (default 5; paper used 10)")
		measure = flag.Duration("measure", 0, "fault-free measurement window (default 4s; paper used 60s)")
		crash   = flag.Duration("crash", 0, "crash-run window, crash at midpoint (default 8s)")
		seed    = flag.Int64("seed", 1, "base random seed")
		quiet   = flag.Bool("quiet", false, "suppress per-run progress")
		csvDir  = flag.String("csv", "", "also write each experiment's data as CSV into this directory")
	)
	flag.Parse()

	cfg := experiments.Config{
		Runs:         *runs,
		Measure:      *measure,
		CrashMeasure: *crash,
		Seed:         *seed,
	}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	type formatter interface {
		Format() string
		WriteCSV(io.Writer) error
	}
	type experiment struct {
		name string
		run  func() (formatter, error)
	}
	table := []experiment{
		{"table4", func() (formatter, error) { return experiments.RunTable4(cfg) }},
		{"table5", func() (formatter, error) { return experiments.RunTable5(cfg) }},
		{"fig7", func() (formatter, error) { return experiments.RunFig7(cfg) }},
		{"fig8", func() (formatter, error) { return experiments.RunFig8(cfg) }},
		{"fig9", func() (formatter, error) { return experiments.RunFig9(cfg) }},
		{"multiedge", func() (formatter, error) { return experiments.RunMultiEdge(cfg) }},
	}

	matched := false
	for _, e := range table {
		if *exp != "all" && *exp != e.name {
			continue
		}
		matched = true
		start := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("\n%s\n(regenerated in %v)\n", res.Format(), time.Since(start).Round(time.Second))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.name, res); err != nil {
				return err
			}
		}
	}
	if !matched {
		return fmt.Errorf("unknown -exp %q (want table4, table5, fig7, fig8, fig9, multiedge, or all)", *exp)
	}
	return nil
}

// writeCSV stores one experiment's data under dir/<name>.csv.
func writeCSV(dir, name string, res interface{ WriteCSV(io.Writer) error }) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
