// Command frame-admit runs FRAME's admission test (§III-D-1) over a topic
// specification and prints, per topic: the dispatch deadline Dd (Lemma 2),
// the replication deadline Dr (Lemma 1), the Proposition 1 replication
// verdict, the minimum admissible retention Ni, and whether the topic is
// admissible at all.
//
// With no -topics file it analyzes the paper's Table 2 categories,
// reproducing the §III-D-2 worked example.
//
// Usage:
//
//	frame-admit [-topics file] [-bs-edge 1ms] [-bs-cloud 20ms] [-bb 50us] [-x 50ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	frame "repro"
	"repro/internal/spec"
	"repro/internal/timing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-admit:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topicsPath = flag.String("topics", "", "topic spec file (default: paper Table 2)")
		bsEdge     = flag.Duration("bs-edge", time.Millisecond, "ΔBS for edge subscribers")
		bsCloud    = flag.Duration("bs-cloud", 20*time.Millisecond, "ΔBS for cloud subscribers (use a measured lower bound)")
		bb         = flag.Duration("bb", 50*time.Microsecond, "ΔBB broker→backup latency")
		x          = flag.Duration("x", 50*time.Millisecond, "publisher fail-over time x")
		pb         = flag.Duration("pb", 0, "ΔPB publisher→broker latency")
	)
	flag.Parse()

	params := frame.Params{
		DeltaPB:      *pb,
		DeltaBSEdge:  *bsEdge,
		DeltaBSCloud: *bsCloud,
		DeltaBB:      *bb,
		Failover:     *x,
	}
	if err := params.Validate(); err != nil {
		return err
	}

	var topics []frame.Topic
	if *topicsPath == "" {
		for i, c := range frame.Table2() {
			topics = append(topics, c.Stamp(frame.TopicID(i), spec.PayloadSize))
		}
	} else {
		f, err := os.Open(*topicsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		topics, err = spec.ParseTopics(f)
		if err != nil {
			return err
		}
	}

	fmt.Printf("params: ΔPB=%v ΔBS(edge)=%v ΔBS(cloud)=%v ΔBB=%v x=%v\n\n",
		params.DeltaPB, params.DeltaBSEdge, params.DeltaBSCloud, params.DeltaBB, params.Failover)
	fmt.Printf("%-6s %8s %8s %5s %4s %6s | %10s %10s %-9s %6s %s\n",
		"topic", "Ti", "Di", "Li", "Ni", "dest", "Dd", "Dr", "replicate", "minNi", "admission")
	for _, t := range topics {
		b := frame.ComputeBounds(t, params)
		dr := "inf"
		if b.Replication != frame.NoDeadline {
			dr = fmtMs(b.Replication)
		}
		li := fmt.Sprintf("%d", t.LossTolerance)
		if t.BestEffort() {
			li = "inf"
		}
		verdict := "no (Prop.1)"
		if b.Replicate {
			verdict = "yes"
		}
		admission := "OK"
		if err := frame.Admissible(t, params); err != nil {
			admission = "REJECTED"
		}
		fmt.Printf("%-6d %8s %8s %5s %4d %6s | %10s %10s %-9s %6d %s\n",
			t.ID, fmtMs(t.Period), fmtMs(t.Deadline), li, t.Retention,
			t.Destination, fmtMs(b.Dispatch), dr, verdict,
			timing.MinRetention(t, params), admission)
	}
	return nil
}

func fmtMs(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}
