// Command frame-gateway runs a FRAME connection-plane gateway over TCP:
// it terminates thin client sessions (phone-class publishers and
// subscribers speaking the ordinary wire protocol), resolves their
// per-client subscriptions locally, and multiplexes all of them onto a
// handful of broker sessions — one upstream subscriber per shard pair.
// Each client gets a private egress ring sized for ~1M clients per
// gateway; a wedged client is shed within its topics' loss tolerance Li
// and evicted past it, so client faults never reach the brokers.
//
// Against a single broker pair:
//
//	frame-gateway -listen :7410 -brokers localhost:7401,localhost:7402 \
//	              -topics topics.txt
//
// Against a sharded cluster (cmd/frame-cluster), point it at the routing
// Directory instead; upstream sessions and publish routes follow the
// epoch-versioned table:
//
//	frame-gateway -listen :7410 -directory localhost:7400 -topics topics.txt
//
// Thin clients connect with frame-sub/frame-pub's -gateway flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	frame "repro"
	"repro/internal/clocksync"
	"repro/internal/cluster"
	"repro/internal/gateway"
	"repro/internal/spec"
	"repro/internal/transport/submit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", "127.0.0.1:7410", "client-facing listen address")
		brokers    = flag.String("brokers", "", "comma-separated Primary,Backup addresses of one broker pair")
		directory  = flag.String("directory", "", "routing Directory address of a sharded cluster; overrides -brokers")
		topicsPath = flag.String("topics", "", "topic spec file (required; Li bounds each client's shed budget)")
		name       = flag.String("name", "frame-gateway", "gateway name in upstream Hello frames")
		depth      = flag.Int("depth", 0, "per-client egress ring capacity in frames (0 = default 64)")
		stall      = flag.Duration("client-write-timeout", 2*time.Second, "fail a client flush write making no progress for this long and drop the session (0 = unbounded)")
		flushers   = flag.Int("flushers", 0, "shared flusher goroutines sweeping all client rings (0 = default 4, negative = one writer goroutine per subscribed client)")
		busyPoll   = flag.Bool("busy-poll", false, "spin idle flushers briefly before parking: lower client wakeup latency, higher idle CPU")
		uring      = flag.Bool("uring", true, "submit each flusher sweep's client writes with one io_uring syscall; falls back to one writev per client automatically where io_uring is unavailable (false forces the fallback)")
		pinFlush   = flag.String("pin-flushers", "", "pin flusher i to CPU list[i mod len], taskset-style list e.g. 0-3,8 (Linux only; empty = no pinning)")
		adminAddr  = flag.String("admin-addr", "", "bind an HTTP admin endpoint here serving /metrics, /healthz, and /debug/pprof (empty = disabled)")
		duration   = flag.Duration("duration", 0, "how long to serve (0 = until interrupted)")
	)
	flag.Parse()
	if *topicsPath == "" {
		return fmt.Errorf("-topics is required")
	}
	if (*brokers == "") == (*directory == "") {
		return fmt.Errorf("exactly one of -brokers or -directory is required")
	}
	f, err := os.Open(*topicsPath)
	if err != nil {
		return err
	}
	topics, err := spec.ParseTopics(f)
	f.Close()
	if err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	network := frame.NewTCPNetwork(2 * time.Second)

	opts := gateway.Options{
		ListenAddr:         *listen,
		Topics:             topics,
		Network:            network,
		Name:               *name,
		ClientDepth:        *depth,
		ClientWriteTimeout: *stall,
		Flushers:           *flushers,
		BusyPoll:           *busyPoll,
		NoUring:            !*uring,
		AdminAddr:          *adminAddr,
		Logger:             logger,
	}
	if opts.PinFlushers, err = submit.ParseCPUList(*pinFlush); err != nil {
		return fmt.Errorf("-pin-flushers: %w", err)
	}

	// Discipline the gateway clock to a broker so the tc timestamps it
	// stamps on forwarded publishes share the cluster timebase.
	var clockServer string
	if *directory != "" {
		opts.DirectoryAddr = *directory
		router, err := cluster.NewRouter(cluster.RouterOptions{
			DirectoryAddr: *directory,
			Network:       network,
			Logger:        logger,
		})
		if err != nil {
			return err
		}
		clockServer = router.Table().Shards[0].Primary
	} else {
		opts.BrokerAddrs = splitAddrs(*brokers)
		clockServer = opts.BrokerAddrs[0]
	}
	clock, stopSync, err := syncedClock(network, clockServer)
	if err != nil {
		return err
	}
	defer stopSync()
	opts.Clock = clock

	gw, err := gateway.New(opts)
	if err != nil {
		return err
	}
	gw.Start()
	defer gw.Stop()
	logger.Info("gateway up", "listen", gw.Addr(), "topics", len(topics),
		"upstream-subscribers", gw.Subscribers(), "admin", gw.AdminAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *duration > 0 {
		select {
		case <-sig:
		case <-time.After(*duration):
		}
	} else {
		<-sig
	}

	es := gw.EgressStats()
	fmt.Printf("clients=%d delivered=%d forwarded=%d forward-errs=%d shed=%d evictions=%d\n",
		gw.Clients(), gw.Delivered(), gw.Forwarded(), gw.ForwardErrs(), es.Shed, gw.Evictions())
	return nil
}

// splitAddrs turns "a, b" into trimmed non-empty entries.
func splitAddrs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// syncedClock disciplines this process's clock to a broker via the
// NTP-style exchange, like frame-pub and frame-sub (§VI-A's PTPd role).
func syncedClock(network frame.Network, serverAddr string) (frame.Clock, func(), error) {
	runner, err := clocksync.NewRunner(clocksync.RunnerOptions{
		ServerAddr: serverAddr,
		Network:    network,
		Local:      frame.NewClock(),
		Interval:   500 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = runner.Run(ctx)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !runner.Synchronizer().Synced() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	return runner.Clock(), func() { cancel(); <-done }, nil
}
