// Command frame-pub runs a FRAME publisher proxy over TCP: it owns a set
// of topics, publishes one message per topic per period (batched like the
// paper's sensor proxies), retains the Ni latest messages of each topic,
// and fails over to the Backup — re-sending the retained messages — when
// its detector declares the Primary dead.
//
// Usage:
//
//	frame-pub -primary localhost:7401 -backup localhost:7402 \
//	          -topics topics.txt -duration 60s
//
// Against a sharded cluster (cmd/frame-cluster), point it at the routing
// Directory instead; topics are routed to their owning pair by the cached
// epoch-versioned table, and WrongShard redirects refresh it:
//
//	frame-pub -directory localhost:7400 -topics topics.txt
//
// Against a connection-plane gateway (cmd/frame-gateway), run as a thin
// client: the gateway is the publisher's whole world — it answers the
// detector's polls and the clock exchange locally and forwards each
// publish to the owning broker pair, so failover is the gateway's
// problem, not the phone's:
//
//	frame-pub -gateway localhost:7410 -topics topics.txt
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	frame "repro"
	"repro/internal/clocksync"
	"repro/internal/cluster"
	"repro/internal/spec"
)

// publisher is the part of the API the publish loop needs; satisfied by
// both the per-pair frame.Publisher and the sharded cluster.Publisher.
type publisher interface {
	Publish(topic spec.TopicID, payload []byte) (uint64, error)
	LastSeq(topic spec.TopicID) uint64
	Close()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-pub:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		primary    = flag.String("primary", "127.0.0.1:7401", "primary broker address")
		backup     = flag.String("backup", "", "backup broker address (empty: no failover)")
		directory  = flag.String("directory", "", "routing Directory address of a sharded cluster; overrides -primary/-backup")
		gwAddr     = flag.String("gateway", "", "connection-plane gateway address; thin-client mode, overrides -primary/-backup and -directory")
		topicsPath = flag.String("topics", "", "topic spec file (required)")
		duration   = flag.Duration("duration", 60*time.Second, "how long to publish (0 = forever)")
		name       = flag.String("name", "frame-pub", "publisher name")
		payload    = flag.Int("payload", spec.PayloadSize, "payload bytes per message")
	)
	flag.Parse()
	if *topicsPath == "" {
		return fmt.Errorf("-topics is required")
	}
	f, err := os.Open(*topicsPath)
	if err != nil {
		return err
	}
	topics, err := spec.ParseTopics(f)
	f.Close()
	if err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	network := frame.NewTCPNetwork(2 * time.Second)

	var pub publisher
	if *gwAddr != "" {
		// Thin-client mode: the gateway is the publisher's Primary. It
		// answers polls and clock sync itself and forwards publishes to
		// whichever broker owns each topic; no Backup address because
		// broker failover is resolved behind the gateway.
		clock, stopSync, err := syncedClock(network, *gwAddr)
		if err != nil {
			return err
		}
		defer stopSync()
		fp, err := frame.NewPublisher(frame.PublisherOptions{
			Name:        *name,
			Topics:      topics,
			PrimaryAddr: *gwAddr,
			Network:     network,
			Clock:       clock,
			Logger:      logger,
		})
		if err != nil {
			return err
		}
		pub = fp
	} else if *directory != "" {
		router, err := cluster.NewRouter(cluster.RouterOptions{
			DirectoryAddr: *directory,
			Network:       network,
			Logger:        logger,
		})
		if err != nil {
			return err
		}
		// Discipline the clock against the first shard's Primary; the whole
		// cluster shares one timebase.
		clock, stopSync, err := syncedClock(network, router.Table().Shards[0].Primary)
		if err != nil {
			return err
		}
		defer stopSync()
		cp, err := cluster.NewPublisher(cluster.PublisherOptions{
			Name:            *name,
			Topics:          topics,
			Router:          router,
			Network:         network,
			Clock:           clock,
			RefreshInterval: time.Second,
			Logger:          logger,
		})
		if err != nil {
			return err
		}
		pub = cp
	} else {
		clock, stopSync, err := syncedClock(network, *primary)
		if err != nil {
			return err
		}
		defer stopSync()
		fp, err := frame.NewPublisher(frame.PublisherOptions{
			Name:        *name,
			Topics:      topics,
			PrimaryAddr: *primary,
			BackupAddr:  *backup,
			Network:     network,
			Clock:       clock,
			Logger:      logger,
		})
		if err != nil {
			return err
		}
		pub = fp
	}
	defer pub.Close()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var stopAt <-chan time.Time
	if *duration > 0 {
		stopAt = time.After(*duration)
	}

	// One ticker per distinct period; each tick publishes a batch of all
	// topics sharing the period, like the paper's proxies.
	byPeriod := make(map[time.Duration][]frame.Topic)
	for _, t := range topics {
		byPeriod[t.Period] = append(byPeriod[t.Period], t)
	}
	type batch struct {
		ch     <-chan time.Time
		topics []frame.Topic
	}
	var batches []batch
	for period, group := range byPeriod {
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		batches = append(batches, batch{ch: ticker.C, topics: group})
	}
	body := make([]byte, *payload)

	published := uint64(0)
	start := time.Now()
	for {
		// A small select fan-in over the period groups plus stop signals.
		fired := false
		for _, bt := range batches {
			select {
			case <-bt.ch:
				for _, t := range bt.topics {
					if _, err := pub.Publish(t.ID, body); err != nil {
						logger.Warn("publish failed", "topic", t.ID, "err", err)
						continue
					}
					published++
				}
				fired = true
			default:
			}
		}
		select {
		case s := <-sig:
			logger.Info("stopping", "signal", s.String())
			return report(pub, topics, published, start)
		case <-stopAt:
			return report(pub, topics, published, start)
		default:
		}
		if !fired {
			time.Sleep(time.Millisecond)
		}
	}
}

// syncedClock disciplines this process's clock to the primary broker via
// the NTP-style exchange the broker answers on any session, so the tc
// timestamps it stamps are comparable with subscriber-side ts readings
// (the paper's test-bed ran PTPd for the same reason, §VI-A).
func syncedClock(network frame.Network, serverAddr string) (frame.Clock, func(), error) {
	runner, err := clocksync.NewRunner(clocksync.RunnerOptions{
		ServerAddr: serverAddr,
		Network:    network,
		Local:      frame.NewClock(),
		Interval:   500 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = runner.Run(ctx) // returns on cancel
	}()
	// Wait briefly for the first exchange so early messages are stamped in
	// the broker timebase.
	deadline := time.Now().Add(2 * time.Second)
	for !runner.Synchronizer().Synced() && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	stop := func() {
		cancel()
		<-done
	}
	return runner.Clock(), stop, nil
}

func report(pub publisher, topics []frame.Topic, published uint64, start time.Time) error {
	elapsed := time.Since(start)
	fmt.Printf("published %d messages over %v (%.0f msg/s)\n",
		published, elapsed.Round(time.Millisecond), float64(published)/elapsed.Seconds())
	for _, t := range topics {
		fmt.Printf("  topic %d: last seq %d\n", t.ID, pub.LastSeq(t.ID))
	}
	return nil
}
