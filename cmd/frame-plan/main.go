// Command frame-plan runs FRAME's capacity planner over a topic
// specification: admission verdicts, Proposition 1 replication decisions,
// and the §III-D-3 retention suggestions that trade a little publisher
// memory for large replication savings (the FRAME+ manoeuvre), together
// with the predicted Message Delivery CPU demand before and after.
//
// With no -topics file it plans the paper's Table 2 workload at the given
// scale. With -shards > 1 it plans each broker pair's jump-hash partition
// independently (the Lemma 1/2 budgets are per-pair); with -target-util it
// finds the smallest shard count whose hottest pair fits the target.
//
// Usage:
//
//	frame-plan [-topics file | -scale 7525] [-bs-cloud 20ms] [-x 50ms]
//	frame-plan -scale 13525 -shards 4
//	frame-plan -scale 13525 -target-util 0.5 [-max-shards 64]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	frame "repro"
	"repro/internal/plan"
	"repro/internal/simcluster"
	"repro/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-plan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topicsPath = flag.String("topics", "", "topic spec file (default: paper workload at -scale)")
		scale      = flag.Int("scale", 1525, "paper workload size when no -topics file is given")
		bsEdge     = flag.Duration("bs-edge", time.Millisecond, "ΔBS for edge subscribers")
		bsCloud    = flag.Duration("bs-cloud", 20*time.Millisecond, "ΔBS lower bound for cloud subscribers")
		bb         = flag.Duration("bb", 50*time.Microsecond, "ΔBB broker→backup latency")
		x          = flag.Duration("x", 50*time.Millisecond, "publisher fail-over time x")
		shards     = flag.Int("shards", 1, "plan across N broker pairs (jump-hash topic partition)")
		targetUtil = flag.Float64("target-util", 0, "find the smallest shard count whose hottest pair's delivery utilization fits this fraction")
		maxShards  = flag.Int("max-shards", 64, "upper bound for the -target-util search")
	)
	flag.Parse()

	params := frame.Params{
		DeltaBSEdge:  *bsEdge,
		DeltaBSCloud: *bsCloud,
		DeltaBB:      *bb,
		Failover:     *x,
	}
	var topics []frame.Topic
	if *topicsPath != "" {
		f, err := os.Open(*topicsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		topics, err = spec.ParseTopics(f)
		if err != nil {
			return err
		}
	} else {
		w, err := frame.NewWorkload(*scale)
		if err != nil {
			return err
		}
		topics = w.Topics
	}

	cost := simcluster.DefaultCostModel()
	if *targetUtil > 0 {
		n, sp, err := plan.MinShards(topics, params, cost, *targetUtil, *maxShards)
		if err != nil {
			return err
		}
		fmt.Printf("minimum shards for ≤%.0f%% delivery utilization: %d\n\n", 100**targetUtil, n)
		fmt.Print(sp.Format())
		return nil
	}
	if *shards > 1 {
		sp, err := plan.BuildSharded(topics, *shards, params, cost)
		if err != nil {
			return err
		}
		fmt.Print(sp.Format())
		return nil
	}
	pl, err := plan.Build(topics, params, cost)
	if err != nil {
		return err
	}
	fmt.Print(pl.Format())
	return nil
}
