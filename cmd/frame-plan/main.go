// Command frame-plan runs FRAME's capacity planner over a topic
// specification: admission verdicts, Proposition 1 replication decisions,
// and the §III-D-3 retention suggestions that trade a little publisher
// memory for large replication savings (the FRAME+ manoeuvre), together
// with the predicted Message Delivery CPU demand before and after.
//
// With no -topics file it plans the paper's Table 2 workload at the given
// scale.
//
// Usage:
//
//	frame-plan [-topics file | -scale 7525] [-bs-cloud 20ms] [-x 50ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	frame "repro"
	"repro/internal/plan"
	"repro/internal/simcluster"
	"repro/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-plan:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topicsPath = flag.String("topics", "", "topic spec file (default: paper workload at -scale)")
		scale      = flag.Int("scale", 1525, "paper workload size when no -topics file is given")
		bsEdge     = flag.Duration("bs-edge", time.Millisecond, "ΔBS for edge subscribers")
		bsCloud    = flag.Duration("bs-cloud", 20*time.Millisecond, "ΔBS lower bound for cloud subscribers")
		bb         = flag.Duration("bb", 50*time.Microsecond, "ΔBB broker→backup latency")
		x          = flag.Duration("x", 50*time.Millisecond, "publisher fail-over time x")
	)
	flag.Parse()

	params := frame.Params{
		DeltaBSEdge:  *bsEdge,
		DeltaBSCloud: *bsCloud,
		DeltaBB:      *bb,
		Failover:     *x,
	}
	var topics []frame.Topic
	if *topicsPath != "" {
		f, err := os.Open(*topicsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		topics, err = spec.ParseTopics(f)
		if err != nil {
			return err
		}
	} else {
		w, err := frame.NewWorkload(*scale)
		if err != nil {
			return err
		}
		topics = w.Topics
	}

	pl, err := plan.Build(topics, params, simcluster.DefaultCostModel())
	if err != nil {
		return err
	}
	fmt.Print(pl.Format())
	return nil
}
