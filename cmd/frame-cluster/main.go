// Command frame-cluster brings up an N-shard FRAME cluster on one host:
// N Primary+Backup broker pairs plus the epoch-versioned routing
// Directory, with the topic set partitioned across the pairs by the jump
// consistent hash (internal/cluster.ShardOf).
//
//	frame-cluster -shards 4 -topics topics.txt
//
// The Directory address it prints is what sharding-aware clients dial:
//
//	frame-pub -directory <addr> -topics topics.txt
//
// Each pair runs the full FRAME engine — EDF dispatch, selective
// replication, dispatch–replicate coordination — so every shard keeps the
// per-pair Lemma 1/2 bounds; the Directory only scales the topic set
// horizontally. When a shard's Primary dies its Backup promotes and the
// Directory bumps the table epoch with the pair keeping its shard index.
//
// This command is the single-host convenience form (demos, perf runs,
// chaos soak). For a real deployment run one frame-broker per node and
// serve an equivalent table from your own directory.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	frame "repro"
	"repro/internal/cluster"
	"repro/internal/failover"
	"repro/internal/spec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "frame-cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		shards      = flag.Int("shards", 2, "number of Primary+Backup pairs")
		topicsPath  = flag.String("topics", "", "topic spec file (required)")
		config      = flag.String("config", "frame", "scheduling configuration: frame, fcfs, or fcfs-")
		workers     = flag.Int("workers", 0, "delivery worker threads per broker (0 = 3×GOMAXPROCS)")
		egressDepth = flag.Int("egress-depth", 1024, "per-subscriber outbound ring capacity per broker")
		period      = flag.Duration("detect-period", 5*time.Millisecond, "failure detector polling period")
		timeout     = flag.Duration("detect-timeout", 10*time.Millisecond, "failure detector probe timeout")
		misses      = flag.Int("detect-misses", 3, "consecutive probe misses that declare a crash")
		bsEdge      = flag.Duration("bs-edge", time.Millisecond, "ΔBS for edge subscribers")
		bsCloud     = flag.Duration("bs-cloud", 20*time.Millisecond, "ΔBS for cloud subscribers")
		bb          = flag.Duration("bb", 50*time.Microsecond, "ΔBB broker→backup latency")
		x           = flag.Duration("x", 50*time.Millisecond, "publisher fail-over time x")
	)
	flag.Parse()

	if *topicsPath == "" {
		return fmt.Errorf("-topics is required")
	}
	f, err := os.Open(*topicsPath)
	if err != nil {
		return err
	}
	topics, err := spec.ParseTopics(f)
	f.Close()
	if err != nil {
		return err
	}

	params := frame.PaperParams()
	params.DeltaBSEdge = *bsEdge
	params.DeltaBSCloud = *bsCloud
	params.DeltaBB = *bb
	params.Failover = *x

	var engine frame.CoreConfig
	switch *config {
	case "frame":
		engine = frame.FRAMEConfig(params)
	case "fcfs":
		engine = frame.FCFSConfig(params)
	case "fcfs-":
		engine = frame.FCFSMinusConfig(params)
	default:
		return fmt.Errorf("unknown -config %q (want frame, fcfs, or fcfs-)", *config)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	c, err := cluster.New(cluster.Config{
		Shards:      *shards,
		Topics:      topics,
		Engine:      engine,
		Network:     frame.NewTCPNetwork(2 * time.Second),
		Clock:       frame.NewClock(),
		Workers:     *workers,
		Detector:    failover.Config{Period: *period, Timeout: *timeout, Misses: *misses},
		EgressDepth: *egressDepth,
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	defer c.Stop()

	logger.Info("cluster running",
		"shards", *shards, "topics", len(topics),
		"directory", c.Dir.Addr(), "epoch", c.Dir.Epoch())
	for _, p := range c.Pairs {
		logger.Info("shard", "index", p.Index, "topics", len(p.Topics),
			"primary", p.Primary.Addr(), "backup", p.Backup.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	logger.Info("shutting down", "signal", s.String())
	return nil
}
