package frame

import (
	"log/slog"
	"testing"
	"time"
)

func quiet() *slog.Logger {
	return slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// lanParams fits the loopback latency regime of in-process tests.
func lanParams() Params {
	return Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
}

func lanTopic(id TopicID) Topic {
	return Topic{
		ID:          id,
		Category:    -1,
		Period:      20 * time.Millisecond,
		Deadline:    time.Second,
		Retention:   3,
		Destination: DestEdge,
		PayloadSize: 16,
	}
}

func TestPublicAPIModelLayer(t *testing.T) {
	p := PaperParams()
	cats := Table2()
	if len(cats) != 6 {
		t.Fatalf("Table2 size %d", len(cats))
	}
	top := cats[2].Stamp(0, 16)
	if got := DispatchDeadline(top, p); got != 99*time.Millisecond {
		t.Errorf("DispatchDeadline = %v", got)
	}
	if got := ReplicationDeadline(top, p); got != 49950*time.Microsecond {
		t.Errorf("ReplicationDeadline = %v", got)
	}
	if !NeedsReplication(top, p) {
		t.Error("category 2 should need replication")
	}
	if err := Admissible(top, p); err != nil {
		t.Errorf("Admissible: %v", err)
	}
	if got := MinRetention(top, p); got != 1 {
		t.Errorf("MinRetention = %d", got)
	}
	b := ComputeBounds(top, p)
	if !b.Replicate || b.Dispatch != 99*time.Millisecond {
		t.Errorf("ComputeBounds = %+v", b)
	}
	w, err := NewWorkload(1525)
	if err != nil || w.TotalTopics != 1525 {
		t.Fatalf("NewWorkload: %v", err)
	}
}

// TestPublicAPIEndToEnd runs the full runtime through the facade: a
// Primary/Backup pair, a publisher, a subscriber, a crash, and recovery.
func TestPublicAPIEndToEnd(t *testing.T) {
	network := NewMemNetwork()
	clock := NewClock()
	topics := []Topic{lanTopic(1)}
	det := DetectorConfig{Period: 2 * time.Millisecond, Timeout: 5 * time.Millisecond, Misses: 2}

	backup, err := NewBroker(BrokerOptions{
		Engine: FRAMEConfig(lanParams()), Role: RoleBackup,
		ListenAddr: "backup", PeerAddr: "primary",
		Network: network, Clock: clock, Workers: 2, Detector: det,
		Topics: topics, Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	primary, err := NewBroker(BrokerOptions{
		Engine: FRAMEConfig(lanParams()), Role: RolePrimary,
		ListenAddr: "primary", PeerAddr: "backup",
		Network: network, Clock: clock, Workers: 2, Detector: det,
		Topics: topics, Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	backup.Start()
	primary.Start()
	defer backup.Stop()

	deliveries := make(chan Delivery, 256)
	sub, err := NewSubscriber(SubscriberOptions{
		Name: "sub", Topics: []TopicID{1},
		BrokerAddrs: []string{"primary", "backup"},
		Network:     network, Clock: clock,
		OnDeliver: func(d Delivery) { deliveries <- d },
		Logger:    quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := NewPublisher(PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: network, Clock: clock, Detector: det, Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	for i := 0; i < 10; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		select {
		case d := <-deliveries:
			if d.Latency < 0 || d.Latency > time.Second {
				t.Errorf("latency %v out of range", d.Latency)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("delivery %d never arrived", i)
		}
	}

	primary.Stop() // crash
	select {
	case <-backup.Promoted():
	case <-time.After(2 * time.Second):
		t.Fatal("backup never promoted")
	}
	select {
	case <-pub.FailedOver():
	case <-time.After(2 * time.Second):
		t.Fatal("publisher never failed over")
	}
	for i := 0; i < 10; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sub.Received(1) < 20 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := sub.MaxConsecutiveLoss(1, pub.LastSeq(1)); got != 0 {
		t.Errorf("max consecutive loss = %d, want 0", got)
	}
}

func TestPublicAPISimulate(t *testing.T) {
	w, err := NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimOptions{
		Workload: w, Variant: VariantFRAME, Seed: 1,
		Warmup: 200 * time.Millisecond, Measure: time.Second, Drain: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != VariantFRAME || len(res.Topics) != 1525 {
		t.Fatalf("result: variant=%v topics=%d", res.Variant, len(res.Topics))
	}
	for _, tr := range res.Topics {
		if tr.Topic.BestEffort() {
			continue
		}
		if !tr.MeetsLossTolerance() {
			t.Errorf("topic %d fails loss tolerance in fault-free run", tr.Topic.ID)
		}
	}
	if DefaultCostModel().DeliveryCores != 2 {
		t.Error("cost model core assignment changed")
	}
}
