package frame_test

import (
	"fmt"
	"time"

	frame "repro"
)

// The timing bounds of the paper's worked example (§III-D): category 2
// needs replication, category 3 does not.
func ExampleComputeBounds() {
	params := frame.PaperParams()
	for _, cat := range []int{2, 3} {
		topic := frame.Table2()[cat].Stamp(frame.TopicID(cat), 16)
		b := frame.ComputeBounds(topic, params)
		fmt.Printf("category %d: Dd=%v Dr=%v replicate=%v\n",
			cat, b.Dispatch, b.Replication, b.Replicate)
	}
	// Output:
	// category 2: Dd=99ms Dr=49.95ms replicate=true
	// category 3: Dd=99ms Dr=249.95ms replicate=false
}

// Admission (§III-D-1): a zero-loss topic must retain enough messages to
// cover the fail-over window.
func ExampleMinRetention() {
	params := frame.PaperParams() // x = 50ms, ΔBB = 0.05ms
	topic := frame.Topic{
		Period:      20 * time.Millisecond,
		Deadline:    time.Second,
		Destination: frame.DestEdge,
		PayloadSize: 16,
	}
	fmt.Println("minimum Ni:", frame.MinRetention(topic, params))
	topic.Retention = frame.MinRetention(topic, params)
	fmt.Println("admissible:", frame.Admissible(topic, params) == nil)
	// Output:
	// minimum Ni: 3
	// admissible: true
}

// The §III-D-3 manoeuvre: one extra retained message removes the need to
// replicate category 5 at all.
func ExampleNeedsReplication() {
	params := frame.PaperParams()
	topic := frame.Table2()[5].Stamp(5, 16) // cloud logging, Ni=1
	fmt.Println("Ni=1 replicates:", frame.NeedsReplication(topic, params))
	topic.Retention++
	fmt.Println("Ni=2 replicates:", frame.NeedsReplication(topic, params))
	// Output:
	// Ni=1 replicates: true
	// Ni=2 replicates: false
}

// A deterministic simulated evaluation run: the smallest paper workload
// under FRAME with a mid-window crash still meets every loss-tolerance
// contract.
func ExampleSimulate() {
	w, err := frame.NewWorkload(1525)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := frame.Simulate(frame.SimOptions{
		Workload: w,
		Variant:  frame.VariantFRAME,
		Seed:     1,
		Warmup:   300 * time.Millisecond,
		Measure:  1500 * time.Millisecond,
		Drain:    time.Second,
		CrashAt:  750 * time.Millisecond,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	violations := 0
	for _, tr := range res.Topics {
		if !tr.Topic.BestEffort() && !tr.MeetsLossTolerance() {
			violations++
		}
	}
	fmt.Println("crashed:", res.Crashed)
	fmt.Println("loss-tolerance violations:", violations)
	// Output:
	// crashed: true
	// loss-tolerance violations: 0
}
