// Loadtest: compare the four evaluation configurations on the simulated
// test-bed at a workload size of your choice.
//
// This drives the same deterministic simulator that regenerates the
// paper's tables (frame.Simulate), so you can explore questions like
// "where does FCFS collapse?" or "how much CPU does FRAME+ save at my
// topic count?" in seconds:
//
//	go run ./examples/loadtest -topics 7525 -measure 4s -crash
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	frame "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		topics  = flag.Int("topics", 4525, "total topics (25 + multiple of 3: 1525, 4525, 7525, ...)")
		measure = flag.Duration("measure", 3*time.Second, "measurement window")
		crash   = flag.Bool("crash", false, "inject a Primary crash at the window midpoint")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	w, err := frame.NewWorkload(*topics)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d topics, %.0f msg/s aggregate; crash=%v\n\n",
		w.TotalTopics, w.MessageRate(), *crash)
	fmt.Printf("%-8s %12s %12s %14s %12s\n",
		"config", "loss-OK %", "latency-OK %", "delivery-CPU %", "replicas")

	for _, v := range []frame.Variant{
		frame.VariantFRAMEPlus, frame.VariantFRAME, frame.VariantFCFS, frame.VariantFCFSMinus,
	} {
		opts := frame.SimOptions{
			Workload: w,
			Variant:  v,
			Seed:     *seed,
			Warmup:   500 * time.Millisecond,
			Measure:  *measure,
			Drain:    time.Second,
		}
		if *crash {
			opts.CrashAt = *measure / 2
		}
		res, err := frame.Simulate(opts)
		if err != nil {
			return err
		}
		var lossOK, lossTotal int
		var met, created uint64
		for _, tr := range res.Topics {
			met += tr.DeadlineMet
			created += tr.Created
			if tr.Topic.BestEffort() {
				continue
			}
			lossTotal++
			if tr.MeetsLossTolerance() {
				lossOK++
			}
		}
		fmt.Printf("%-8s %12.1f %12.2f %14.1f %12d\n",
			v.String(),
			100*float64(lossOK)/float64(lossTotal),
			100*float64(met)/float64(created),
			res.Util.PrimaryDelivery,
			res.BackupStats.ReplicasStored)
	}
	fmt.Println("\n(loss-OK: % of topics within their Li; latency-OK: % of messages within Di)")
	return nil
}
