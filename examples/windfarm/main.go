// Windfarm: the paper's motivating IIoT scenario (Fig. 1) over real TCP.
//
// A wind-farm edge runs three application classes with heterogeneous QoS
// (paper Table 2):
//
//   - emergency (category 0): turbine overspeed alarms — 50 ms deadline,
//     zero loss tolerated;
//   - monitoring (category 3): vibration telemetry — 100 ms deadline,
//     up to 3 consecutive losses tolerable (estimates fill gaps);
//   - logging (category 5): energy production records to the cloud —
//     500 ms deadline, zero loss.
//
// The example prints FRAME's differentiation decisions (which topics
// replicate, which rely on publisher retention alone — Proposition 1),
// runs traffic through a Primary/Backup pair on loopback TCP, and reports
// per-class latency and loss.
//
// Run with:
//
//	go run ./examples/windfarm
package main

import (
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	frame "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "windfarm:", err)
		os.Exit(1)
	}
}

type class struct {
	name   string
	topics []frame.Topic
}

func run() error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	network := frame.NewTCPNetwork(2 * time.Second)
	clock := frame.NewClock()

	// On loopback the "cloud" is also local; in a real deployment
	// DeltaBSCloud would be a measured lower bound of the WAN latency
	// (the paper used 20.7 ms to AWS EC2).
	params := frame.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}

	classes := []class{
		{name: "emergency", topics: []frame.Topic{{
			ID: 0, Category: 0, Period: 50 * time.Millisecond, Deadline: 50 * time.Millisecond,
			LossTolerance: 0, Retention: 2, Destination: frame.DestEdge, PayloadSize: 16,
		}}},
		{name: "monitoring", topics: []frame.Topic{
			{ID: 1, Category: 3, Period: 100 * time.Millisecond, Deadline: 100 * time.Millisecond,
				LossTolerance: 3, Retention: 0, Destination: frame.DestEdge, PayloadSize: 16},
			{ID: 2, Category: 3, Period: 100 * time.Millisecond, Deadline: 100 * time.Millisecond,
				LossTolerance: 3, Retention: 0, Destination: frame.DestEdge, PayloadSize: 16},
		}},
		{name: "logging", topics: []frame.Topic{{
			ID: 3, Category: 5, Period: 500 * time.Millisecond, Deadline: 500 * time.Millisecond,
			LossTolerance: 0, Retention: 1, Destination: frame.DestCloud, PayloadSize: 16,
		}}},
	}

	var all []frame.Topic
	fmt.Println("FRAME differentiation (Proposition 1):")
	for _, c := range classes {
		for _, t := range c.topics {
			if err := frame.Admissible(t, params); err != nil {
				return fmt.Errorf("class %s: %w", c.name, err)
			}
			b := frame.ComputeBounds(t, params)
			mode := "publisher retention only (replication suppressed)"
			if b.Replicate {
				mode = "replicates to Backup"
			}
			fmt.Printf("  %-10s topic %d: Dd=%v Dr=%v → %s\n", c.name, t.ID, b.Dispatch, b.Replication, mode)
			all = append(all, t)
		}
	}

	backup, err := frame.NewBroker(frame.BrokerOptions{
		Engine: frame.FRAMEConfig(params), Role: frame.RoleBackup,
		ListenAddr: "127.0.0.1:0", PeerAddr: "",
		Network: network, Clock: clock, Topics: all, Logger: logger,
	})
	if err != nil {
		return err
	}
	primary, err := frame.NewBroker(frame.BrokerOptions{
		Engine: frame.FRAMEConfig(params), Role: frame.RolePrimary,
		ListenAddr: "127.0.0.1:0", PeerAddr: backup.Addr(),
		Network: network, Clock: clock, Topics: all, Logger: logger,
	})
	if err != nil {
		return err
	}
	backup.Start()
	primary.Start()
	defer backup.Stop()
	defer primary.Stop()

	var ids []frame.TopicID
	for _, t := range all {
		ids = append(ids, t.ID)
	}
	sub, err := frame.NewSubscriber(frame.SubscriberOptions{
		Name: "scada", Topics: ids,
		BrokerAddrs: []string{primary.Addr(), backup.Addr()},
		Network:     network, Clock: clock, Logger: logger,
	})
	if err != nil {
		return err
	}
	defer sub.Close()

	pub, err := frame.NewPublisher(frame.PublisherOptions{
		Name: "turbine-proxy", Topics: all,
		PrimaryAddr: primary.Addr(), BackupAddr: backup.Addr(),
		Network: network, Clock: clock, Logger: logger,
	})
	if err != nil {
		return err
	}
	defer pub.Close()

	// Publish each class at its own period for three seconds.
	fmt.Println("\npublishing 3 seconds of wind-farm traffic over TCP loopback...")
	stop := time.After(3 * time.Second)
	tickers := make([]*time.Ticker, len(all))
	for i, t := range all {
		tickers[i] = time.NewTicker(t.Period)
		defer tickers[i].Stop()
	}
	payload := []byte("windfarm-sample!")
loop:
	for {
		for i, t := range all {
			select {
			case <-tickers[i].C:
				if _, err := pub.Publish(t.ID, payload); err != nil {
					return err
				}
			default:
			}
		}
		select {
		case <-stop:
			break loop
		default:
			time.Sleep(time.Millisecond)
		}
	}
	time.Sleep(200 * time.Millisecond) // drain

	fmt.Println("\nper-class results:")
	for _, c := range classes {
		for _, t := range c.topics {
			lats := sub.Latencies(t.ID)
			if len(lats) == 0 {
				fmt.Printf("  %-10s topic %d: no messages\n", c.name, t.ID)
				continue
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			met := 0
			for _, l := range lats {
				if l <= t.Deadline {
					met++
				}
			}
			fmt.Printf("  %-10s topic %d: delivered %d/%d, max consecutive loss %d (Li=%d), p99 latency %v, deadline met %.1f%%\n",
				c.name, t.ID, sub.Received(t.ID), pub.LastSeq(t.ID),
				sub.MaxConsecutiveLoss(t.ID, pub.LastSeq(t.ID)), t.LossTolerance,
				lats[len(lats)*99/100].Round(time.Microsecond),
				100*float64(met)/float64(len(lats)))
		}
	}
	return nil
}
