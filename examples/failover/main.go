// Failover: crash the Primary mid-stream and watch FRAME recover.
//
// The example runs a Primary/Backup pair, streams a zero-loss-tolerance
// topic through the Primary, then kills the Primary (the paper injects
// SIGKILL; here we stop the broker, which is the same fail-stop crash as
// seen from the network). It then reports:
//
//   - when the Backup's detector fired and promoted it,
//   - when the publisher redirected and re-sent its retained messages,
//   - the end-to-end outcome: every sequence number delivered exactly
//     once to the subscriber, despite the crash.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log/slog"
	"os"
	"time"

	frame "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	network := frame.NewMemNetwork()
	clock := frame.NewClock()
	detector := frame.DetectorConfig{
		Period:  5 * time.Millisecond,
		Timeout: 10 * time.Millisecond,
		Misses:  3,
	}
	params := frame.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond, // must cover detector worst case
	}
	topic := frame.Topic{
		ID: 1, Category: -1,
		Period:        20 * time.Millisecond,
		Deadline:      time.Second,
		LossTolerance: 0,
		Retention:     frame.MinRetention(frame.Topic{Period: 20 * time.Millisecond, Deadline: time.Second, Destination: frame.DestEdge, PayloadSize: 16}, params),
		Destination:   frame.DestEdge,
		PayloadSize:   16,
	}
	fmt.Printf("topic: Ti=%v Li=%d → minimum admissible retention Ni=%d (covers x=%v)\n",
		topic.Period, topic.LossTolerance, topic.Retention, params.Failover)

	backup, err := frame.NewBroker(frame.BrokerOptions{
		Engine: frame.FRAMEConfig(params), Role: frame.RoleBackup,
		ListenAddr: "backup", PeerAddr: "primary",
		Network: network, Clock: clock, Detector: detector,
		Topics: []frame.Topic{topic}, Logger: logger,
	})
	if err != nil {
		return err
	}
	primary, err := frame.NewBroker(frame.BrokerOptions{
		Engine: frame.FRAMEConfig(params), Role: frame.RolePrimary,
		ListenAddr: "primary", PeerAddr: "backup",
		Network: network, Clock: clock, Detector: detector,
		Topics: []frame.Topic{topic}, Logger: logger,
	})
	if err != nil {
		return err
	}
	backup.Start()
	primary.Start()
	defer backup.Stop()

	sub, err := frame.NewSubscriber(frame.SubscriberOptions{
		Name: "sub", Topics: []frame.TopicID{1},
		BrokerAddrs: []string{"primary", "backup"},
		Network:     network, Clock: clock, Logger: logger,
	})
	if err != nil {
		return err
	}
	defer sub.Close()

	pub, err := frame.NewPublisher(frame.PublisherOptions{
		Name: "pub", Topics: []frame.Topic{topic},
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: network, Clock: clock, Detector: detector, Logger: logger,
	})
	if err != nil {
		return err
	}
	defer pub.Close()

	publish := func(n int) error {
		for i := 0; i < n; i++ {
			if _, err := pub.Publish(1, []byte("sensor-reading!!")); err != nil {
				return err
			}
			time.Sleep(topic.Period)
		}
		return nil
	}

	fmt.Println("phase 1: 25 messages through the Primary...")
	if err := publish(25); err != nil {
		return err
	}

	fmt.Println("phase 2: CRASH — killing the Primary")
	crashAt := time.Now()
	primary.Stop()

	select {
	case <-backup.Promoted():
		fmt.Printf("  backup promoted after %v\n", time.Since(crashAt).Round(time.Millisecond))
	case <-time.After(2 * time.Second):
		return fmt.Errorf("backup never promoted")
	}
	select {
	case <-pub.FailedOver():
		fmt.Printf("  publisher failed over (re-sent %d retained messages) after %v\n",
			topic.Retention, time.Since(crashAt).Round(time.Millisecond))
	case <-time.After(2 * time.Second):
		return fmt.Errorf("publisher never failed over")
	}

	fmt.Println("phase 3: 25 more messages through the new Primary...")
	if err := publish(25); err != nil {
		return err
	}
	time.Sleep(200 * time.Millisecond) // drain

	total := pub.LastSeq(1)
	loss := sub.MaxConsecutiveLoss(1, total)
	fmt.Printf("\nresult: delivered %d/%d distinct messages, max consecutive loss %d (Li=%d), duplicates discarded %d\n",
		sub.Received(1), total, loss, topic.LossTolerance, sub.Duplicates())
	if loss > topic.LossTolerance {
		return fmt.Errorf("loss tolerance violated")
	}
	fmt.Println("loss-tolerance contract held across the crash ✓")
	return nil
}
