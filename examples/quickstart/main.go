// Quickstart: a minimal FRAME deployment in one process.
//
// It brings up a Primary/Backup broker pair on an in-process network,
// publishes a sensor topic with zero-loss tolerance, and prints each
// delivery with its end-to-end latency.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log/slog"
	"os"
	"time"

	frame "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// One in-process network and one shared clock stand in for the LAN and
	// PTP-synchronized hosts of a real deployment.
	network := frame.NewMemNetwork()
	clock := frame.NewClock()
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))

	// The topic: a 20 Hz sensor stream, 1 s soft deadline, zero tolerated
	// consecutive losses, publisher retains the last 3 messages. Retention
	// must cover the fail-over window x — frame.MinRetention tells you the
	// minimum admissible value.
	params := frame.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
	topic := frame.Topic{
		ID:          1,
		Category:    -1,
		Period:      50 * time.Millisecond,
		Deadline:    time.Second,
		Retention:   3,
		Destination: frame.DestEdge,
		PayloadSize: 16,
	}
	if err := frame.Admissible(topic, params); err != nil {
		return err
	}
	fmt.Printf("topic 1: dispatch deadline %v, replication deadline %v, replicate=%v\n",
		frame.DispatchDeadline(topic, params),
		frame.ReplicationDeadline(topic, params),
		frame.NeedsReplication(topic, params))

	// Backup first (so the Primary can dial it), then the Primary.
	backup, err := frame.NewBroker(frame.BrokerOptions{
		Engine: frame.FRAMEConfig(params), Role: frame.RoleBackup,
		ListenAddr: "backup", PeerAddr: "primary",
		Network: network, Clock: clock,
		Topics: []frame.Topic{topic}, Logger: logger,
	})
	if err != nil {
		return err
	}
	primary, err := frame.NewBroker(frame.BrokerOptions{
		Engine: frame.FRAMEConfig(params), Role: frame.RolePrimary,
		ListenAddr: "primary", PeerAddr: "backup",
		Network: network, Clock: clock,
		Topics: []frame.Topic{topic}, Logger: logger,
	})
	if err != nil {
		return err
	}
	backup.Start()
	primary.Start()
	defer backup.Stop()
	defer primary.Stop()

	done := make(chan struct{})
	received := 0
	sub, err := frame.NewSubscriber(frame.SubscriberOptions{
		Name: "console", Topics: []frame.TopicID{1},
		BrokerAddrs: []string{"primary", "backup"},
		Network:     network, Clock: clock, Logger: logger,
		OnDeliver: func(d frame.Delivery) {
			fmt.Printf("  msg seq=%d latency=%v payload=%q\n",
				d.Msg.Seq, d.Latency.Round(time.Microsecond), d.Msg.Payload)
			received++
			if received == 10 {
				close(done)
			}
		},
	})
	if err != nil {
		return err
	}
	defer sub.Close()

	pub, err := frame.NewPublisher(frame.PublisherOptions{
		Name: "sensor-proxy", Topics: []frame.Topic{topic},
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: network, Clock: clock, Logger: logger,
	})
	if err != nil {
		return err
	}
	defer pub.Close()

	for i := 0; i < 10; i++ {
		if _, err := pub.Publish(1, []byte(fmt.Sprintf("sample-%08d", i))); err != nil {
			return err
		}
		time.Sleep(topic.Period)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("timed out waiting for deliveries (got %d)", received)
	}
	fmt.Printf("delivered %d/%d messages, zero loss\n", sub.Received(1), pub.LastSeq(1))
	return nil
}
