# Developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race short cover cover-check bench bench-compare bench-json bench-regress repro fuzz chaos chaos-shard chaos-gateway chaos-durable chaos-smoke shard-smoke gateway-smoke gateway-churn durable-smoke shardscale fmt fmtcheck vet ci clean

all: build vet fmtcheck test

# Mirror of .github/workflows/ci.yml for local runs.
ci: build vet fmtcheck test race chaos-smoke shard-smoke gateway-smoke durable-smoke fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -short -cover ./...

# Coverage ratchet over every internal package, derived from `go list` so
# a new package can't dodge the floor by not being on a hand-written list.
# The floor only moves up: raise COVER_MIN when coverage durably improves.
COVER_PKGS = $(shell $(GO) list ./internal/...)
COVER_MIN ?= 84.0
cover-check:
	$(GO) test -coverprofile=coverage.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (ratchet floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 >= m+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below the $(COVER_MIN)% ratchet" >&2; exit 1; }

# Regenerate every paper table/figure plus ablations (minutes).
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path regression guard: repeat BenchmarkDispatchLanes{1,4,8},
# BenchmarkFanout{1,8,64} (+ the FanoutAsync/Egress variants), with
# allocation reporting and summarize with benchstat when it is installed
# (raw output otherwise). Acceptance bars: ≥2x ns/op at 8 lanes vs 1 on a
# multi-core runner, and 0 allocs/op on the dispatch, fan-out, and egress
# paths — benchstat's B/op and allocs/op columns are the alloc-regression
# signal.
BENCH_COUNT ?= 6
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkDispatchLanes|BenchmarkFanout|BenchmarkEgress' -benchmem -count $(BENCH_COUNT) . | tee dispatch_lanes.bench
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat dispatch_lanes.bench; \
	else \
		echo "benchstat not installed; raw samples are in dispatch_lanes.bench"; \
		echo "(go install golang.org/x/perf/cmd/benchstat@latest to summarize)"; \
	fi

# Machine-readable egress baseline: run the egress-path benches once and
# record {name, ns_per_op, bytes_per_op, allocs_per_op} rows in
# BENCH_EGRESS.json. Commit the refreshed file when the egress hot path
# changes deliberately; allocs_per_op must stay 0.
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkFanoutAsync|BenchmarkEgressWritev|BenchmarkFanout64$$' -benchmem -count 1 . | tee egress.bench
	@awk 'BEGIN { print "[" } \
		/^Benchmark/ { \
			if (n++) printf ",\n"; \
			printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $$1, $$2, $$3, $$5, $$7 \
		} \
		END { print "\n]" }' egress.bench > BENCH_EGRESS.json
	@echo "wrote BENCH_EGRESS.json"
	$(GO) run ./cmd/frame-bench -exp opoints -quiet -opoints-msgs 1024 -bench-json BENCH_OPOINTS.json
	$(GO) run ./cmd/frame-bench -exp durable -quiet -bench-json BENCH_DURABLE.json

# Fail if a fresh bench-json run regresses >BENCH_REGRESS_MAX% in ns/op
# against the committed BENCH_EGRESS.json (or allocates where the
# baseline did not). The CI bench-baseline job runs this on every PR.
# The opoints grid measures a live broker end to end, so its budget is
# far looser: single-run cells on a loaded box swing ±30-40%. The durable
# rows are p99 publish latencies dominated by the fsync window and the
# disk, so their budget is looser still.
BENCH_REGRESS_MAX ?= 10
OPOINTS_REGRESS_MAX ?= 50
DURABLE_REGRESS_MAX ?= 75
bench-regress:
	cp BENCH_EGRESS.json bench_baseline.json
	cp BENCH_OPOINTS.json opoints_baseline.json
	cp BENCH_DURABLE.json durable_baseline.json
	$(MAKE) bench-json
	$(GO) run ./cmd/frame-benchdiff -base bench_baseline.json -new BENCH_EGRESS.json -max-regress $(BENCH_REGRESS_MAX)
	$(GO) run ./cmd/frame-benchdiff -base opoints_baseline.json -new BENCH_OPOINTS.json -max-regress $(OPOINTS_REGRESS_MAX)
	$(GO) run ./cmd/frame-benchdiff -base durable_baseline.json -new BENCH_DURABLE.json -max-regress $(DURABLE_REGRESS_MAX)

# Same via the CLI harness, with CSV artifacts.
repro:
	$(GO) run ./cmd/frame-bench -exp all -csv artifacts

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzParseTopics -fuzztime 30s ./internal/spec/
	$(GO) test -fuzz FuzzGatewayDecode -fuzztime 30s ./internal/gateway/
	$(GO) test -fuzz FuzzSegmentReplay -fuzztime 30s ./internal/diskstore/

# Scripted fault-injection scenarios over real TCP (internal/chaos).
# chaos-smoke is the PR gate (Smoke subset, well under two minutes);
# chaos is the full suite the nightly workflow runs under -race.
# Replay a failure with FRAME_CHAOS_SEED=<seed from the failure log>.
chaos:
	$(GO) test -race -count=1 -v -run 'TestChaosScenarios|TestScenarioNames' ./internal/chaos/

# Shard-level scenarios: full multi-pair cluster + routing Directory
# (kill-one-pair, routing-plane partition). chaos-shard is the nightly
# -race form; shard-smoke is the PR gate, which also runs the cluster
# package tests and the 1→4 shard throughput-scaling sweep.
chaos-shard:
	$(GO) test -race -count=1 -v -run 'TestShardChaosScenarios|TestShardScenarioRegistry' ./internal/chaos/

shard-smoke:
	$(GO) test -short -count=1 -run 'TestShard' ./internal/chaos/
	$(GO) test -count=1 ./internal/cluster/
	$(MAKE) shardscale

# Aggregate throughput vs. shard count. The ≥2.5x 1→4 gate arms itself
# only on machines with at least 4 CPUs (frame-bench skips the assertion,
# but still reports, below that).
shardscale:
	$(GO) run ./cmd/frame-bench -exp shardscale -shards 1,2,4 -min-speedup 2.5

# Gateway-level scenarios: the connection plane terminating thin clients
# in front of a broker pair (crash/restart mid-stream, wedged client).
# chaos-gateway is the nightly -race form; gateway-smoke is the PR gate,
# which also runs the gateway package's model-equivalence and churn-soak
# tests under -race and a CI-sized connection-churn run with its
# connects/s gate (the acceptance-scale run is `frame-bench -exp gateway`
# bare: 10k clients, ≥500 connects/s).
chaos-gateway:
	$(GO) test -race -count=1 -v -run 'TestGatewayChaosScenarios|TestGatewayScenarioRegistry' ./internal/chaos/

gateway-smoke:
	$(GO) test -short -count=1 -run 'TestGateway' ./internal/chaos/
	$(GO) test -race -count=1 ./internal/gateway/
	$(MAKE) gateway-churn

gateway-churn:
	$(GO) run ./cmd/frame-bench -exp gateway -clients 2000 -churn 500 -measure 2s -min-churn 400

# Durability-plane scenarios: the entire pair fail-stops mid-load and a
# broker restarted from the group-commit log segments is judged against
# the crashed log's ground truth (no acked publish lost, no on-disk
# prune re-dispatched, orphan backlog recovered exactly once).
# chaos-durable is the nightly -race form; durable-smoke is the PR gate:
# the acceptance scenario through the real CLI, the diskstore package
# (segment replay, crash tables, committer hammer) under -race, and the
# broker's durable-mode tests under -race.
chaos-durable:
	$(GO) test -race -count=1 -v -run 'TestDurableChaosScenarios|TestDurableScenarioRegistry' ./internal/chaos/

durable-smoke:
	$(GO) run ./cmd/frame-chaos -scenario kill-both-brokers
	$(GO) test -race -count=1 ./internal/diskstore/
	$(GO) test -race -count=1 -run 'TestDurable' ./internal/broker/

chaos-smoke:
	$(GO) test -short -count=1 ./internal/chaos/ ./internal/faultinject/

fmt:
	gofmt -l -w .

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

clean:
	rm -rf artifacts test_output.txt bench_output.txt coverage.out dispatch_lanes.bench egress.bench bench_baseline.json opoints_baseline.json durable_baseline.json
