# Developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race short cover bench repro fuzz fmt fmtcheck vet ci clean

all: build vet fmtcheck test

# Mirror of .github/workflows/ci.yml for local runs.
ci: build vet fmtcheck test race fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -short -cover ./...

# Regenerate every paper table/figure plus ablations (minutes).
bench:
	$(GO) test -bench=. -benchmem ./...

# Same via the CLI harness, with CSV artifacts.
repro:
	$(GO) run ./cmd/frame-bench -exp all -csv artifacts

fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/wire/
	$(GO) test -fuzz FuzzParseTopics -fuzztime 30s ./internal/spec/

fmt:
	gofmt -l -w .

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

clean:
	rm -rf artifacts test_output.txt bench_output.txt
