// Benchmarks regenerating every table and figure of the FRAME paper's
// evaluation (§VI), plus ablations of FRAME's design choices. Each bench
// runs its experiment once (a run takes seconds to minutes, far above
// benchtime, so the harness keeps N=1) and prints the regenerated
// table/figure to stdout so that
//
//	go test -bench=. -benchmem ./... | tee bench_output.txt
//
// captures the full reproduction. Scale knobs (defaults are laptop-sized;
// the paper used 10 runs × 60 s on a 7-host test-bed):
//
//	FRAME_BENCH_RUNS     repetitions per cell (default 5)
//	FRAME_BENCH_MEASURE  fault-free window (default 4s)
//	FRAME_BENCH_CRASH    crash-run window (default 8s)
package frame

import (
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/experiments"
	"repro/internal/queue"
	"repro/internal/simcluster"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
	"repro/internal/wire"
)

func benchConfig() experiments.Config {
	cfg := experiments.Config{}
	if v, err := strconv.Atoi(os.Getenv("FRAME_BENCH_RUNS")); err == nil && v > 0 {
		cfg.Runs = v
	}
	if d, err := time.ParseDuration(os.Getenv("FRAME_BENCH_MEASURE")); err == nil && d > 0 {
		cfg.Measure = d
	}
	if d, err := time.ParseDuration(os.Getenv("FRAME_BENCH_CRASH")); err == nil && d > 0 {
		cfg.CrashMeasure = d
	}
	return cfg
}

// BenchmarkTable4LossTolerance regenerates Table 4: success rate for
// loss-tolerance requirements under crash injection, workloads
// 7525/10525/13525, configurations FRAME+/FRAME/FCFS/FCFS−.
func BenchmarkTable4LossTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n%s\n", res.Format())
	}
}

// BenchmarkTable5LatencySuccess regenerates Table 5: success rate for
// latency requirements in fault-free operation, workloads 4525–13525.
func BenchmarkTable5LatencySuccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n%s\n", res.Format())
	}
}

// BenchmarkFig7CPUUtilization regenerates Fig. 7: modeled CPU utilization
// of the Primary's Message Delivery and Message Proxy modules and the
// Backup's Message Proxy module, per configuration and workload.
func BenchmarkFig7CPUUtilization(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 1 // utilization is deterministic per seed; one run per cell
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n%s\n", res.Format())
	}
}

// BenchmarkFig8CloudLatency regenerates Fig. 8: the 24-hour ΔBS profile of
// a category-5 cloud topic (diurnal swing, jitter, the ~8am +104 ms
// spike), and validates the paper's claim that configuring with a measured
// lower bound of ΔBS preserves loss tolerance despite run-time variation —
// here even with the Primary crashed exactly at the latency spike.
func BenchmarkFig8CloudLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n%s\n", res.Format())
	}
}

// BenchmarkFig9RecoveryLatency regenerates Fig. 9: end-to-end latency of a
// topic in categories 0, 2, and 5 before, upon, and after fault recovery,
// for each configuration, at the 7525-topic workload.
func BenchmarkFig9RecoveryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n%s\n", res.Format())
	}
}

// ablationRun executes one simulated run for the ablation benches.
func ablationRun(b *testing.B, total int, opts simcluster.Options) *simcluster.Result {
	b.Helper()
	w, err := spec.NewWorkload(total)
	if err != nil {
		b.Fatal(err)
	}
	opts.Workload = w
	if opts.Measure == 0 {
		opts.Measure = 3 * time.Second
	}
	if opts.Warmup == 0 {
		opts.Warmup = 500 * time.Millisecond
	}
	if opts.Drain == 0 {
		opts.Drain = time.Second
	}
	res, err := simcluster.Run(opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationSelectiveReplication quantifies Proposition 1 alone:
// FRAME vs an EDF configuration that replicates every topic. The paper's
// lesson 1 — replication removal lets the system accommodate more topics
// at lower delivery-module utilization.
func BenchmarkAblationSelectiveReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		frameRes := ablationRun(b, 7525, simcluster.Options{Variant: simcluster.VariantFRAME, Seed: 1})
		// EDF with replication for all topics: FRAME minus Proposition 1.
		all := ablationRun(b, 7525, simcluster.Options{Variant: simcluster.VariantEDFReplicateAll, Seed: 1})
		fmt.Printf("\nAblation: selective replication (workload 7525, EDF)\n")
		fmt.Printf("  FRAME (Prop. 1 on):  delivery util %5.1f%%, replication jobs %d\n",
			frameRes.Util.PrimaryDelivery, frameRes.PrimaryStats.ReplicationJobs)
		fmt.Printf("  replicate-all:       delivery util %5.1f%%, replication jobs %d\n",
			all.Util.PrimaryDelivery, all.PrimaryStats.ReplicationJobs)
		b.ReportMetric(frameRes.Util.PrimaryDelivery, "frame-util-%")
		b.ReportMetric(all.Util.PrimaryDelivery, "replicate-all-util-%")
	}
}

// BenchmarkAblationCoordination quantifies Table 3's dispatch–replicate
// coordination: with it, the Backup Buffer is pruned and recovery is
// cheap; without it (FCFS−), promotion drains a full buffer. The paper's
// lesson 2.
func BenchmarkAblationCoordination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		peak := func(v simcluster.Variant) (time.Duration, uint64) {
			w, err := spec.NewWorkload(7525)
			if err != nil {
				b.Fatal(err)
			}
			res, err := simcluster.Run(simcluster.Options{
				Workload: w, Variant: v, Seed: 1,
				Warmup: 500 * time.Millisecond, Measure: 4 * time.Second,
				Drain: time.Second, CrashAt: 2 * time.Second,
				TrackTopics: []spec.TopicID{20},
			})
			if err != nil {
				b.Fatal(err)
			}
			var max time.Duration
			for _, pt := range res.Series[20] {
				if pt.Recovered && pt.Latency > max {
					max = pt.Latency
				}
			}
			return max, res.BackupStats.RecoveryJobs
		}
		fcfsPeak, fcfsJobs := peak(simcluster.VariantFCFS)
		minusPeak, minusJobs := peak(simcluster.VariantFCFSMinus)
		fmt.Printf("\nAblation: dispatch-replicate coordination (workload 7525, crash)\n")
		fmt.Printf("  FCFS  (coordination on):  recovery peak %8.1f ms, recovery jobs %6d\n",
			float64(fcfsPeak)/1e6, fcfsJobs)
		fmt.Printf("  FCFS- (coordination off): recovery peak %8.1f ms, recovery jobs %6d\n",
			float64(minusPeak)/1e6, minusJobs)
		b.ReportMetric(float64(minusPeak)/1e6, "fcfs-minus-peak-ms")
	}
}

// BenchmarkAblationRetentionBoost quantifies the paper's lesson 4: raising
// Ni by one for categories 2 and 5 (FRAME+) removes all replication and
// its CPU cost while keeping loss tolerance intact.
func BenchmarkAblationRetentionBoost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		frameRes := ablationRun(b, 13525, simcluster.Options{Variant: simcluster.VariantFRAME, Seed: 1})
		plusRes := ablationRun(b, 13525, simcluster.Options{Variant: simcluster.VariantFRAMEPlus, Seed: 1})
		fmt.Printf("\nAblation: publisher retention boost (workload 13525)\n")
		fmt.Printf("  FRAME:  delivery util %5.1f%%, backup proxy util %5.1f%%, replicas %d\n",
			frameRes.Util.PrimaryDelivery, frameRes.Util.BackupProxy, frameRes.BackupStats.ReplicasStored)
		fmt.Printf("  FRAME+: delivery util %5.1f%%, backup proxy util %5.1f%%, replicas %d\n",
			plusRes.Util.PrimaryDelivery, plusRes.Util.BackupProxy, plusRes.BackupStats.ReplicasStored)
		b.ReportMetric(frameRes.Util.PrimaryDelivery-plusRes.Util.PrimaryDelivery, "util-saved-%")
	}
}

// BenchmarkAblationQueuePolicy isolates EDF vs FCFS queueing with
// everything else equal (replicate-all, coordination on) at a load where
// order matters.
func BenchmarkAblationQueuePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		latOK := func(v simcluster.Variant) float64 {
			res := ablationRun(b, 7525, simcluster.Options{Variant: v, Seed: 1})
			var met, created uint64
			for _, tr := range res.Topics {
				met += tr.DeadlineMet
				created += tr.Created
			}
			return 100 * float64(met) / float64(created)
		}
		edf := latOK(simcluster.VariantFRAME)
		fcfs := latOK(simcluster.VariantFCFS)
		fmt.Printf("\nAblation: queue policy at 7525 topics\n")
		fmt.Printf("  EDF  (FRAME): latency success %6.2f%%\n", edf)
		fmt.Printf("  FCFS:         latency success %6.2f%%\n", fcfs)
		b.ReportMetric(edf-fcfs, "edf-advantage-pp")
	}
}

// BenchmarkExtensionMultiEdge runs the beyond-paper extension: N edges
// (Fig. 1's Edge 1..N) sharing one bounded cloud ingest host. Edge-bound
// latency must stay flat while the shared cloud saturates.
func BenchmarkExtensionMultiEdge(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 1
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMultiEdge(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n%s\n", res.Format())
	}
}

// BenchmarkTable1StrategyComparison makes the paper's Table 1 argument
// quantitative: it compares the per-message cost of the three loss-
// tolerance strategies — publisher retention (a ring-buffer push), backup
// brokers (an in-memory replication hop), and local disk (a durable
// append). The paper chose not to evaluate local disk "because it performs
// relatively slowly"; this bench measures by how much.
func BenchmarkTable1StrategyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		const n = 256
		// Strategy 1: publisher retention — ring push (measured in-loop by
		// the ringbuf micro-bench; here we report the replication hop and
		// disk numbers that dominate the comparison).
		hop := simcluster.DefaultCostModel().Replicate // calibrated in-memory hop
		noSync, err := diskstore.AppendLatency(b.TempDir(), diskstore.SyncNever, n, 16)
		if err != nil {
			b.Fatal(err)
		}
		always, err := diskstore.AppendLatency(b.TempDir(), diskstore.SyncAlways, n, 16)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\nTable 1 strategies — per-message cost of a loss-tolerance copy\n")
		fmt.Printf("  backup broker (in-memory hop, calibrated): %10v\n", hop)
		fmt.Printf("  local disk, OS-buffered append:            %10v\n", noSync.Round(time.Nanosecond))
		fmt.Printf("  local disk, fsync per message:             %10v\n", always.Round(time.Nanosecond))
		b.ReportMetric(float64(always)/float64(hop), "fsync-vs-hop-x")
	}
}

// benchmarkDispatchLanes drives the sharded engine exactly the way the
// broker's lane workers do — one goroutine per lane pushing its topics'
// messages and draining its own EDF heap under a per-lane mutex — and
// asserts per-topic FIFO on every dispatch. Lanes share nothing, so the
// ns/op ratio between the 1-, 4-, and 8-lane variants is the lane-scaling
// headroom of the dispatch path on this machine (on a single-core runner
// all variants collapse to the same schedule).
func benchmarkDispatchLanes(b *testing.B, lanes int) {
	const topicCount = 64
	const chunkPerTopic = 512
	eng, err := core.New(core.Config{
		Params: timing.Params{
			DeltaBSEdge:  time.Millisecond,
			DeltaBSCloud: time.Millisecond,
			DeltaBB:      time.Millisecond,
			Failover:     50 * time.Millisecond,
		},
		Policy:           queue.PolicyEDF,
		Lanes:            lanes,
		MessageBufferCap: chunkPerTopic,
	})
	if err != nil {
		b.Fatal(err)
	}
	laneTopics := make([][]spec.TopicID, lanes)
	for i := 0; i < topicCount; i++ {
		tp := spec.Topic{
			ID: spec.TopicID(i + 1), Category: -1,
			Period: 20 * time.Millisecond, Deadline: time.Second,
			Retention: 8, Destination: spec.DestEdge, PayloadSize: 16,
		}
		if err := eng.AddTopic(tp); err != nil {
			b.Fatal(err)
		}
		l := eng.LaneFor(tp.ID)
		laneTopics[l] = append(laneTopics[l], tp.ID)
	}
	laneMu := make([]sync.Mutex, lanes)
	// Each topic is owned end-to-end by one lane's single goroutine, so the
	// per-topic counters need no synchronization.
	lastSeq := make([]uint64, topicCount+1)
	nextSeq := make([]uint64, topicCount+1)
	var now atomic.Int64 // synthetic clock: created times stay monotone
	var sink atomic.Uint64

	b.ReportAllocs()
	b.ResetTimer()
	remaining := b.N
	for remaining > 0 {
		// Cap the chunk so per-topic in-flight stays within the Message
		// Buffer — an evicted entry would break the FIFO assertion.
		per := chunkPerTopic
		if need := (remaining + topicCount - 1) / topicCount; need < per {
			per = need
		}
		laneQuota := make([]int, lanes)
		left := remaining
		for l := 0; l < lanes && left > 0; l++ {
			q := per * len(laneTopics[l])
			if q > left {
				q = left
			}
			laneQuota[l] = q
			left -= q
		}
		pushed := remaining - left
		var wg sync.WaitGroup
		for l := 0; l < lanes; l++ {
			if laneQuota[l] == 0 {
				continue
			}
			l := l
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Push this lane's share, then drain this lane. Both halves
				// touch only this lane's mutex — the broker's worker contract.
				budget := laneQuota[l]
				for _, id := range laneTopics[l] {
					n := per
					if n > budget {
						n = budget
					}
					budget -= n
					for k := 0; k < n; k++ {
						nextSeq[id]++
						m := wire.Message{
							Topic: id, Seq: nextSeq[id],
							Created: time.Duration(now.Add(1)),
						}
						laneMu[l].Lock()
						err := eng.OnPublish(m, m.Created)
						laneMu[l].Unlock()
						if err != nil {
							b.Errorf("publish: %v", err)
							return
						}
					}
					if budget == 0 {
						break
					}
				}
				// Drain through NextWorkLaneInto with per-worker scratch —
				// the concurrent broker's pop path.
				var scratch []byte
				for {
					laneMu[l].Lock()
					var w core.Work
					var ok bool
					w, scratch, ok = eng.NextWorkLaneInto(l, scratch)
					laneMu[l].Unlock()
					if !ok {
						return
					}
					if w.Kind != core.WorkDispatch {
						continue
					}
					if w.Msg.Seq != lastSeq[w.Msg.Topic]+1 {
						b.Errorf("topic %d dispatched seq %d after %d (FIFO broken)",
							w.Msg.Topic, w.Msg.Seq, lastSeq[w.Msg.Topic])
						return
					}
					lastSeq[w.Msg.Topic] = w.Msg.Seq
					// Synthetic per-dispatch work standing in for frame
					// encode + fan-out, so the bench measures a realistic
					// mix of queue ops and CPU rather than pure heap churn.
					h := w.Msg.Seq
					for s := 0; s < 64; s++ {
						h ^= h << 13
						h ^= h >> 7
						h ^= h << 17
					}
					sink.Add(h)
					laneMu[l].Lock()
					eng.OnDispatched(w.Job)
					laneMu[l].Unlock()
				}
			}()
		}
		wg.Wait()
		remaining -= pushed
		if pushed == 0 {
			break
		}
	}
	b.StopTimer()
	if stats := eng.Stats(); stats.Published == 0 {
		b.Fatal("benchmark published nothing")
	}
	_ = sink.Load()
}

// BenchmarkDispatchLanes{1,4,8} are the lane-scaling regression guard; see
// `make bench-compare` for the benchstat workflow. Acceptance: ≥2x ns/op
// improvement at 8 lanes vs 1 on a multi-core runner, 0 allocs/op.
func BenchmarkDispatchLanes1(b *testing.B) { benchmarkDispatchLanes(b, 1) }
func BenchmarkDispatchLanes4(b *testing.B) { benchmarkDispatchLanes(b, 4) }
func BenchmarkDispatchLanes8(b *testing.B) { benchmarkDispatchLanes(b, 8) }

// discardConn is a net.Conn whose writes vanish, so the fan-out benches
// measure the broker-side encode+send cost without a kernel or a peer.
type discardConn struct{ n atomic.Uint64 }

func (d *discardConn) Read([]byte) (int, error)        { return 0, io.EOF }
func (d *discardConn) Write(p []byte) (int, error)     { d.n.Add(uint64(len(p))); return len(p), nil }
func (d *discardConn) Close() error                    { return nil }
func (d *discardConn) LocalAddr() net.Addr             { return nil }
func (d *discardConn) RemoteAddr() net.Addr            { return nil }
func (d *discardConn) SetDeadline(time.Time) error     { return nil }
func (d *discardConn) SetReadDeadline(time.Time) error { return nil }
func (d *discardConn) SetWriteDeadline(t time.Time) error {
	return nil
}

// benchmarkFanout measures the encode-once fan-out: one dispatch frame body
// built per message (wire.AppendDispatchBody into a reused buffer) and the
// identical bytes pushed to `subs` subscriber connections via
// transport.SendEncoded. This is the per-message broker-side dispatch cost
// Lemma 1's delivery-module utilization term models; acceptance is 0
// allocs/op at every fan-out width.
func benchmarkFanout(b *testing.B, subs int) {
	conns := make([]*transport.Conn, subs)
	sink := &discardConn{}
	for i := range conns {
		conns[i] = transport.NewConn(sink)
	}
	m := wire.Message{Topic: 7, Seq: 0, Created: time.Millisecond, Payload: make([]byte, 16)}
	var body []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Seq++
		body = wire.AppendDispatchBody(body[:0], &m, time.Duration(i))
		for _, c := range conns {
			if err := c.SendEncoded(body); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if sink.n.Load() == 0 {
		b.Fatal("fan-out wrote nothing")
	}
}

// BenchmarkFanout{1,8,64} sweep subscriber counts: the body build amortizes
// across the fan-out, so ns/op should grow sub-linearly in subscribers and
// allocs/op must stay 0 — that is the whole point of encode-once.
func BenchmarkFanout1(b *testing.B)  { benchmarkFanout(b, 1) }
func BenchmarkFanout8(b *testing.B)  { benchmarkFanout(b, 8) }
func BenchmarkFanout64(b *testing.B) { benchmarkFanout(b, 64) }

// blockingConn is a net.Conn whose writes wedge until its gate closes or
// the conn is closed — the bench-side stand-in for a subscriber socket that
// stopped reading.
type blockingConn struct {
	gate   <-chan struct{}
	closed chan struct{}
	once   sync.Once
}

func newBlockingConn(gate <-chan struct{}) *blockingConn {
	return &blockingConn{gate: gate, closed: make(chan struct{})}
}

func (c *blockingConn) Read([]byte) (int, error) { return 0, io.EOF }
func (c *blockingConn) Write(p []byte) (int, error) {
	select {
	case <-c.gate:
	case <-c.closed:
	}
	return 0, io.ErrClosedPipe
}
func (c *blockingConn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
func (c *blockingConn) LocalAddr() net.Addr              { return nil }
func (c *blockingConn) RemoteAddr() net.Addr             { return nil }
func (c *blockingConn) SetDeadline(time.Time) error      { return nil }
func (c *blockingConn) SetReadDeadline(time.Time) error  { return nil }
func (c *blockingConn) SetWriteDeadline(time.Time) error { return nil }

// benchmarkFanoutAsync is the asynchronous counterpart of benchmarkFanout:
// the dispatch loop encodes once into a pooled FrameBuf and enqueues a
// retained reference onto each subscriber's egress ring; a shared flusher
// pool (the broker's default egress mode) drains the rings with vectored
// writes. This is exactly what broker.dispatch does per Work item, so the
// measured cost is the EDF lane's per-message share. Acceptance: 0
// allocs/op and 0 B/op steady state, and ns/op at 64 subscribers no worse
// than the synchronous BenchmarkFanout64.
func benchmarkFanoutAsync(b *testing.B, subs int, stalled bool) {
	sink := &discardConn{}
	gate := make(chan struct{})
	defer close(gate)
	pool := transport.NewFlusherPool(transport.FlusherPoolConfig{})
	egs := make([]*transport.Egress, 0, subs+1)
	var meter transport.EgressMeter
	for i := 0; i < subs; i++ {
		egs = append(egs, transport.NewEgress(transport.NewConn(sink),
			transport.EgressConfig{Depth: 4096, Shed: true, Meter: &meter, Pool: pool}))
	}
	if stalled {
		// One ring wedged behind a socket that never completes a write: it
		// must absorb, shed, and eventually escalate its flusher without
		// slowing the loop below.
		egs = append(egs, transport.NewEgress(transport.NewConn(newBlockingConn(gate)),
			transport.EgressConfig{Depth: 64, Shed: true, Meter: &meter, Pool: pool}))
	}
	m := wire.Message{Topic: 7, Seq: 0, Created: time.Millisecond, Payload: make([]byte, 16)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Seq++
		fb := transport.GetFrameBuf()
		fb.B = wire.AppendDispatchBody(fb.B[:0], &m, time.Duration(i))
		fb.RetainN(len(egs))
		for _, eg := range egs {
			eg.Enqueue(fb, 7, spec.LossUnbounded)
		}
		fb.Release()
	}
	b.StopTimer()
	for _, eg := range egs {
		eg.Close()
		eg.Conn().Close()
	}
	for _, eg := range egs {
		eg.Wait()
	}
	pool.Close()
	if meter.Enqueued.Load() == 0 {
		b.Fatal("async fan-out enqueued nothing")
	}
}

// BenchmarkFanoutAsync{8,64} sweep fan-out widths through the egress path;
// BenchmarkFanoutAsync64Stalled adds a wedged 65th subscriber to show the
// enqueue cost does not degrade when a sibling's socket stops draining.
func BenchmarkFanoutAsync8(b *testing.B)         { benchmarkFanoutAsync(b, 8, false) }
func BenchmarkFanoutAsync64(b *testing.B)        { benchmarkFanoutAsync(b, 64, false) }
func BenchmarkFanoutAsync64Stalled(b *testing.B) { benchmarkFanoutAsync(b, 64, true) }

// BenchmarkEgressWritev measures the lossless egress pipeline end to end:
// blocking mode (no shedding), one ring, writer batching frames into
// net.Buffers vectored flushes. ns/op is the full enqueue→writev cost per
// frame; allocs/op must be 0 once the pool is warm.
func BenchmarkEgressWritev(b *testing.B) {
	sink := &discardConn{}
	var meter transport.EgressMeter
	eg := transport.NewEgress(transport.NewConn(sink),
		transport.EgressConfig{Depth: 1024, Shed: false, Meter: &meter})
	m := wire.Message{Topic: 3, Seq: 0, Created: time.Millisecond, Payload: make([]byte, 16)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Seq++
		fb := transport.GetFrameBuf()
		fb.B = wire.AppendDispatchBody(fb.B[:0], &m, time.Duration(i))
		eg.Enqueue(fb, 3, 0)
	}
	b.StopTimer()
	for deadline := time.Now().Add(5 * time.Second); meter.Flushed.Load() < uint64(b.N); {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	eg.Close()
	eg.Conn().Close()
	eg.Wait()
	if got := meter.Flushed.Load(); got != uint64(b.N) {
		b.Fatalf("flushed %d frames, want %d (blocking mode must not drop)", got, b.N)
	}
	if meter.Batches.Load() == 0 {
		b.Fatal("writer never flushed a batch")
	}
}

// fanoutP99 runs `rounds` encode+enqueue fan-out iterations over egs and
// returns the p99 per-iteration latency. The iteration is what an EDF lane
// executes per dispatched message, so this is the dispatch-latency quantile
// the ISSUE's acceptance criterion speaks about.
func fanoutP99(egs []*transport.Egress, rounds int) time.Duration {
	durs := make([]time.Duration, rounds)
	m := wire.Message{Topic: 7, Seq: 0, Created: time.Millisecond, Payload: make([]byte, 16)}
	for i := range durs {
		m.Seq++
		start := time.Now()
		fb := transport.GetFrameBuf()
		fb.B = wire.AppendDispatchBody(fb.B[:0], &m, 0)
		fb.RetainN(len(egs))
		for _, eg := range egs {
			eg.Enqueue(fb, 7, spec.LossUnbounded)
		}
		fb.Release()
		durs[i] = time.Since(start)
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	return durs[len(durs)*99/100]
}

// TestStalledSubscriberFanoutIsolation is the acceptance criterion for the
// asynchronous egress: with one artificially stalled subscriber in the
// fan-out set, p99 dispatch latency for the remaining subscribers must stay
// within 2x of the no-stall run (plus a floor absorbing scheduler jitter on
// loaded CI runners — the latencies here are single-digit microseconds).
func TestStalledSubscriberFanoutIsolation(t *testing.T) {
	const subs, rounds = 8, 4000
	newSet := func(extra net.Conn) []*transport.Egress {
		egs := make([]*transport.Egress, 0, subs+1)
		for i := 0; i < subs; i++ {
			egs = append(egs, transport.NewEgress(transport.NewConn(&discardConn{}),
				transport.EgressConfig{Depth: 4096, Shed: true}))
		}
		if extra != nil {
			egs = append(egs, transport.NewEgress(transport.NewConn(extra),
				transport.EgressConfig{Depth: 64, Shed: true}))
		}
		return egs
	}
	shut := func(egs []*transport.Egress) {
		for _, eg := range egs {
			eg.Close()
			eg.Conn().Close()
		}
		for _, eg := range egs {
			eg.Wait()
		}
	}

	base := newSet(nil)
	fanoutP99(base, rounds) // warm pools and writers
	p99Base := fanoutP99(base, rounds)
	shut(base)

	gate := make(chan struct{})
	defer close(gate)
	stalled := newSet(newBlockingConn(gate))
	fanoutP99(stalled, rounds)
	p99Stalled := fanoutP99(stalled, rounds)
	shut(stalled)

	limit := 2 * p99Base
	if floor := time.Millisecond; limit < floor {
		limit = floor
	}
	t.Logf("fan-out p99: no-stall %v, stalled sibling %v (limit %v)", p99Base, p99Stalled, limit)
	if p99Stalled > limit {
		t.Fatalf("stalled sibling degraded dispatch p99: %v > %v (2x no-stall, 1ms floor)",
			p99Stalled, limit)
	}
}
