// Package frame is a fault-tolerant, real-time publish/subscribe messaging
// library for edge computing, reproducing the FRAME architecture from
//
//	Chao Wang, Christopher Gill, Chenyang Lu.
//	"FRAME: Fault Tolerant and Real-Time Messaging for Edge Computing."
//	IEEE ICDCS 2019.
//
// Each topic carries four quality-of-service parameters: a period Ti, an
// end-to-end soft deadline Di, a loss-tolerance level Li (maximum
// acceptable consecutive message losses), and a publisher retention depth
// Ni. From these, FRAME derives sufficient per-message deadlines for
// dispatching (Lemma 2: Dd = Di − ΔPB − ΔBS) and for replicating to a
// Backup broker (Lemma 1: Dr = (Ni+Li)·Ti − ΔPB − ΔBB − x), schedules both
// under EDF, suppresses replication entirely for topics whose dispatch
// deadline already implies durability (Proposition 1), and prunes
// already-dispatched message copies from the Backup so that fail-over
// re-dispatches only what is still needed.
//
// The package exposes three layers:
//
//   - The model: Topic, Params, and the timing bounds (DispatchDeadline,
//     ReplicationDeadline, NeedsReplication, Admissible).
//   - The runtime: Broker, Publisher, and Subscriber over TCP or an
//     in-process network — a complete Primary/Backup deployment with
//     crash detection, promotion, and publisher re-send.
//   - The evaluation: Simulate runs the paper's test-bed as a
//     deterministic discrete-event simulation; the cmd/frame-bench tool
//     and the benchmarks in this package regenerate every table and
//     figure of the paper's §VI.
//
// See examples/quickstart for a minimal end-to-end program.
package frame

import (
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/failover"
	"repro/internal/simcluster"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
)

// Model types, re-exported from the spec and timing layers.
type (
	// Topic is a per-topic QoS specification (Ti, Di, Li, Ni, destination).
	Topic = spec.Topic
	// TopicID identifies a topic within a deployment.
	TopicID = spec.TopicID
	// Destination locates a topic's subscribers (edge or cloud).
	Destination = spec.Destination
	// Category is a Table 2 template from which topics are stamped.
	Category = spec.Category
	// Workload is an instantiated evaluation topic set.
	Workload = spec.Workload
	// Params carries deployment timing parameters (ΔBS, ΔBB, x).
	Params = timing.Params
	// Bounds couples a topic's dispatch and replication deadlines.
	Bounds = timing.Bounds
)

// Destination and loss-tolerance constants.
const (
	// DestEdge marks subscribers within the edge (sub-millisecond ΔBS).
	DestEdge = spec.DestEdge
	// DestCloud marks subscribers across a WAN (tens of milliseconds ΔBS).
	DestCloud = spec.DestCloud
	// LossUnbounded is the Li value meaning best-effort delivery.
	LossUnbounded = spec.LossUnbounded
	// NoDeadline is the replication deadline of best-effort topics.
	NoDeadline = timing.NoDeadline
)

// Table2 returns the paper's six example topic categories.
func Table2() []Category { return spec.Table2() }

// NewWorkload builds the paper's topic mix for a given total (§VI).
func NewWorkload(totalTopics int) (*Workload, error) { return spec.NewWorkload(totalTopics) }

// PaperParams returns the timing parameters of the paper's worked example
// (ΔBS = 1 ms edge / 20 ms cloud, ΔBB = 0.05 ms, x = 50 ms).
func PaperParams() Params { return timing.PaperParams() }

// DispatchDeadline returns Lemma 2's sufficient relative deadline for
// dispatching: Dd = Di − ΔPB − ΔBS.
func DispatchDeadline(t Topic, p Params) time.Duration { return timing.DispatchDeadline(t, p) }

// ReplicationDeadline returns Lemma 1's sufficient relative deadline for
// replicating: Dr = (Ni+Li)·Ti − ΔPB − ΔBB − x.
func ReplicationDeadline(t Topic, p Params) time.Duration { return timing.ReplicationDeadline(t, p) }

// NeedsReplication applies Proposition 1: false means the topic's
// replication can be suppressed without violating its loss tolerance.
func NeedsReplication(t Topic, p Params) bool { return timing.NeedsReplication(t, p) }

// Admissible runs the §III-D-1 admission test (Dd ≥ 0 and Dr ≥ 0).
func Admissible(t Topic, p Params) error { return timing.Admissible(t, p) }

// MinRetention returns the smallest Ni that makes the topic admissible.
func MinRetention(t Topic, p Params) int { return timing.MinRetention(t, p) }

// ComputeBounds returns both deadlines and the replication verdict.
func ComputeBounds(t Topic, p Params) Bounds { return timing.Compute(t, p) }

// Runtime types, re-exported from the broker and client layers.
type (
	// Broker runs one FRAME broker (Primary or Backup).
	Broker = broker.Broker
	// BrokerOptions configures a broker.
	BrokerOptions = broker.Options
	// BrokerRole selects Primary or Backup duty.
	BrokerRole = broker.Role
	// Publisher is a retention-capable publishing proxy with fail-over.
	Publisher = client.Publisher
	// PublisherOptions configures a publisher.
	PublisherOptions = client.PublisherOptions
	// Subscriber receives dispatches with duplicate suppression.
	Subscriber = client.Subscriber
	// SubscriberOptions configures a subscriber.
	SubscriberOptions = client.SubscriberOptions
	// Delivery is one received message with measured latency.
	Delivery = client.Delivery
	// Network abstracts listen/dial (TCP or in-process).
	Network = transport.Network
	// DetectorConfig tunes crash detection (polling period, misses).
	DetectorConfig = failover.Config
	// Clock is the deployment timebase (see NewClock and clocksync).
	Clock = clocksync.Clock
)

// Broker roles.
const (
	RolePrimary = broker.RolePrimary
	RoleBackup  = broker.RoleBackup
)

// CoreConfig selects a broker's scheduling and fault-tolerance behavior
// (queue policy, selective replication, dispatch–replicate coordination).
type CoreConfig = core.Config

// FRAMEConfig returns the FRAME configuration: EDF scheduling, selective
// replication per Proposition 1, and Table 3 coordination.
func FRAMEConfig(p Params) CoreConfig { return core.FRAMEConfig(p) }

// FCFSConfig returns the undifferentiated baseline: arrival order,
// replicate-then-dispatch for every topic, with coordination.
func FCFSConfig(p Params) CoreConfig { return core.FCFSConfig(p) }

// FCFSMinusConfig returns FCFS without dispatch–replicate coordination.
func FCFSMinusConfig(p Params) CoreConfig { return core.FCFSMinusConfig(p) }

// DiskSyncPolicy controls the durability of the optional Backup disk log
// (BrokerOptions.DiskBackupDir): the Table 1 "local disk" strategy.
type DiskSyncPolicy = diskstore.SyncPolicy

// Disk log durability policies.
const (
	// DiskSyncAlways fsyncs every persisted replica (durable, slow).
	DiskSyncAlways = diskstore.SyncAlways
	// DiskSyncNever leaves flushing to the OS (fast; survives process
	// crashes but not power loss).
	DiskSyncNever = diskstore.SyncNever
)

// Durability-plane defaults (the opt-in BrokerOptions.Durable mode: a
// segmented append log with a group-commit writer, acking publishes with
// PubAck once fsynced — see DESIGN.md §15).
const (
	// DefaultFsyncInterval is the group-commit window when
	// BrokerOptions.FsyncInterval is zero.
	DefaultFsyncInterval = broker.DefaultFsyncInterval
	// DefaultAckTimeout bounds a durable Publish's PubAck wait when
	// PublisherOptions.AckTimeout is zero.
	DefaultAckTimeout = client.DefaultAckTimeout
)

// NewBroker creates a broker; call Start to serve and Stop to shut down.
func NewBroker(opts BrokerOptions) (*Broker, error) { return broker.New(opts) }

// NewPublisher dials the brokers and returns a running publisher.
func NewPublisher(opts PublisherOptions) (*Publisher, error) { return client.NewPublisher(opts) }

// NewSubscriber dials every broker, subscribes, and starts receiving.
func NewSubscriber(opts SubscriberOptions) (*Subscriber, error) { return client.NewSubscriber(opts) }

// NewTCPNetwork returns the real-network transport.
func NewTCPNetwork(dialTimeout time.Duration) Network {
	return &transport.TCP{DialTimeout: dialTimeout}
}

// NewMemNetwork returns an isolated in-process transport, useful for tests
// and single-process deployments.
func NewMemNetwork() Network { return transport.NewMem() }

// NewClock returns a monotonic clock rooted at now; every host in a
// deployment should synchronize to one broker's clock (package
// internal/clocksync implements the PTP/NTP-style estimator the paper's
// test-bed used).
func NewClock() Clock {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// Evaluation types, re-exported from the simulation layer.
type (
	// SimOptions configures one simulated evaluation run.
	SimOptions = simcluster.Options
	// SimResult is the outcome of one simulated run.
	SimResult = simcluster.Result
	// Variant names one of the four evaluated configurations.
	Variant = simcluster.Variant
	// CostModel assigns CPU service times to broker work.
	CostModel = simcluster.CostModel
)

// Evaluation configurations (§VI-A).
const (
	VariantFRAME     = simcluster.VariantFRAME
	VariantFRAMEPlus = simcluster.VariantFRAMEPlus
	VariantFCFS      = simcluster.VariantFCFS
	VariantFCFSMinus = simcluster.VariantFCFSMinus
)

// Simulate runs one deterministic simulated evaluation run (the paper's
// test-bed substitution; see DESIGN.md).
func Simulate(opts SimOptions) (*SimResult, error) { return simcluster.Run(opts) }

// Multi-edge extension types (beyond the paper's single-edge scope):
// several independent edges share one bounded cloud ingest host.
type (
	// MultiEdgeOptions configures a shared-cloud, multi-edge run.
	MultiEdgeOptions = simcluster.MultiOptions
	// MultiEdgeResult is the outcome of a multi-edge run.
	MultiEdgeResult = simcluster.MultiResult
)

// SimulateMultiEdge runs N edge deployments against one shared cloud host.
func SimulateMultiEdge(opts MultiEdgeOptions) (*MultiEdgeResult, error) {
	return simcluster.RunMultiEdge(opts)
}

// DefaultCostModel returns the calibrated CPU cost model.
func DefaultCostModel() CostModel { return simcluster.DefaultCostModel() }
