package frame

import (
	"testing"
	"time"

	"repro/internal/simcluster"
	"repro/internal/spec"
)

// TestPaperScaleOverloadMechanism verifies, at a paper-like 30 s window,
// the mechanism behind Table 4's FRAME degradation at 13525 topics: on a
// host drawing an unlucky speed factor the delivery demand crosses 100%,
// the dispatch backlog grows without bound, Message Buffer slots wrap
// before their dispatch jobs run, and messages are lost outright — so a
// crash is not even needed for the loss-tolerance contract to break.
//
// With the default compressed windows (4–8 s) the backlog cannot grow far
// enough, which is why the regenerated Table 4 shows FRAME at 100% where
// the paper reports 73–80% ± 30 (see EXPERIMENTS.md). This test runs the
// paper-scale window once to show the same failure mode appears when the
// window does.
func TestPaperScaleOverloadMechanism(t *testing.T) {
	if testing.Short() {
		t.Skip("30s-window simulation (~20s wall)")
	}
	w, err := spec.NewWorkload(13525)
	if err != nil {
		t.Fatal(err)
	}
	// Emulate a run whose host drew speed factor 1.05: FRAME demand ≈ 104%.
	cost := simcluster.DefaultCostModel()
	cost.Dispatch = time.Duration(float64(cost.Dispatch) * 1.05)
	cost.Replicate = time.Duration(float64(cost.Replicate) * 1.05)
	cost.Coordinate = time.Duration(float64(cost.Coordinate) * 1.05)

	res, err := simcluster.Run(simcluster.Options{
		Workload: w, Variant: simcluster.VariantFRAME, Seed: 1, Cost: cost,
		Warmup: time.Second, Measure: 30 * time.Second, Drain: 3 * time.Second,
		CrashAt: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Util.PrimaryDelivery < 49 {
		t.Fatalf("delivery module not saturated: %.1f%% (pre-crash half-window)", res.Util.PrimaryDelivery)
	}
	if res.PrimaryStats.EvictedMessages == 0 {
		t.Fatal("no buffer evictions despite sustained overload")
	}
	var lossOK, total int
	for _, tr := range res.Topics {
		if tr.Topic.BestEffort() {
			continue
		}
		total++
		if tr.MeetsLossTolerance() {
			lossOK++
		}
	}
	if rate := float64(lossOK) / float64(total); rate > 0.5 {
		t.Errorf("loss-tolerance success %.2f under sustained overload, want collapse (< 0.5)", rate)
	}

	// Control: the same 30 s window under FRAME+ (demand ≈ 50%) is clean.
	plus, err := simcluster.Run(simcluster.Options{
		Workload: w, Variant: simcluster.VariantFRAMEPlus, Seed: 1, Cost: cost,
		Warmup: time.Second, Measure: 30 * time.Second, Drain: 3 * time.Second,
		CrashAt: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range plus.Topics {
		if tr.Topic.BestEffort() {
			continue
		}
		if !tr.MeetsLossTolerance() {
			t.Errorf("FRAME+ topic %d (cat %d) violated loss tolerance at paper scale",
				tr.Topic.ID, tr.Topic.Category)
		}
	}
}
