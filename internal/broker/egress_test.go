package broker

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// soloPrimary builds and starts a Primary with no Backup, so egress behavior
// is observable without replication traffic in the way.
func soloPrimary(t *testing.T, n transport.Network, topics []spec.Topic, mutate func(*Options)) (*Broker, func() time.Duration) {
	t.Helper()
	clock := testClock()
	cfg := core.FRAMEConfig(lanParams())
	cfg.MessageBufferCap = 1024
	opts := Options{
		Engine:     cfg,
		Role:       RolePrimary,
		ListenAddr: "primary",
		Network:    n,
		Clock:      clock,
		Workers:    4,
		Topics:     topics,
		Logger:     quietLogger(),
	}
	if mutate != nil {
		mutate(&opts)
	}
	b, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	return b, clock
}

// rawPublish floods the broker with sequenced messages for one topic until
// stop flips, pacing lightly so the run spans the whole churn window.
func rawPublish(t *testing.T, n transport.Network, addr string, clock func() time.Duration, topic spec.TopicID, stop *atomic.Bool, published *atomic.Uint64) {
	t.Helper()
	nc, err := n.Dial(addr)
	if err != nil {
		t.Errorf("publisher dial: %v", err)
		return
	}
	conn := transport.NewConn(nc)
	defer conn.Close()
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RolePublisher, Name: "egress-pub"}); err != nil {
		t.Errorf("publisher hello: %v", err)
		return
	}
	payload := make([]byte, 32)
	for seq := uint64(1); !stop.Load(); seq++ {
		f := &wire.Frame{Type: wire.TypePublish, Msg: wire.Message{
			Topic: topic, Seq: seq, Created: clock(), Payload: payload,
		}}
		if err := conn.Send(f); err != nil {
			return // broker shutting down
		}
		published.Store(seq)
		time.Sleep(200 * time.Microsecond)
	}
}

// TestSubscriberChurnDuringFanout connects and disconnects subscribers while
// dispatch fan-out is running flat out: removeSubscriber races in-flight
// enqueues, egress writers race their conn's Close, and after everything
// stops no FrameBuf reference may be left behind. Run under -race this is
// the ownership proof for the enqueue path.
func TestSubscriberChurnDuringFanout(t *testing.T) {
	base := transport.FrameBufRefs()
	n := transport.NewMem()
	topics := []spec.Topic{lanTopic(1, 3)}
	b, clock := soloPrimary(t, n, topics, nil)

	var stop atomic.Bool
	var published atomic.Uint64
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		rawPublish(t, n, "primary", clock, 1, &stop, &published)
	}()

	for i := 0; i < 12; i++ {
		sub, err := client.NewSubscriber(client.SubscriberOptions{
			Name:        "churn-sub",
			Topics:      []spec.TopicID{1},
			BrokerAddrs: []string{"primary"},
			Network:     n,
			Clock:       clock,
			Logger:      quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		// Leave while frames are still streaming at us: sometimes right
		// away (disconnect racing the very first enqueues), sometimes after
		// traffic flowed.
		if i%3 != 0 {
			waitFor(t, 2*time.Second, "subscriber saw traffic", func() bool {
				return sub.Received(1) > 0
			})
		}
		sub.Close()
	}

	stop.Store(true)
	<-pubDone
	b.Stop()
	if refs := transport.FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references after churn", refs-base)
	}
	if b.EgressStats().Enqueued == 0 {
		t.Fatal("no frames ever took the egress path")
	}
}

// TestStalledSubscriberEvictedAndReleased wedges one subscriber (it
// subscribes and then never reads) behind a small egress ring while a
// healthy subscriber keeps consuming: the stalled one must shed within the
// topic's Li and then be evicted — without the healthy subscriber losing
// anything, and without leaking a single buffer reference.
func TestStalledSubscriberEvictedAndReleased(t *testing.T) {
	base := transport.FrameBufRefs()
	n := transport.NewMem()
	tp := lanTopic(1, 3)
	tp.LossTolerance = 2
	b, clock := soloPrimary(t, n, []spec.Topic{tp}, func(o *Options) {
		o.EgressDepth = 8
	})

	// Stalled subscriber: raw conn, subscribes, never reads. Mem conns are
	// synchronous pipes, so the broker's egress writer wedges on the first
	// flush and the ring must absorb, shed, and finally evict.
	nc, err := n.Dial("primary")
	if err != nil {
		t.Fatal(err)
	}
	stalled := transport.NewConn(nc)
	defer stalled.Close()
	if err := stalled.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleSubscriber, Name: "stalled"}); err != nil {
		t.Fatal(err)
	}
	if err := stalled.Send(&wire.Frame{Type: wire.TypeSubscribe, Topics: []spec.TopicID{1}}); err != nil {
		t.Fatal(err)
	}

	healthy, err := client.NewSubscriber(client.SubscriberOptions{
		Name:        "healthy",
		Topics:      []spec.TopicID{1},
		BrokerAddrs: []string{"primary"},
		Network:     n,
		Clock:       clock,
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	waitFor(t, 2*time.Second, "subscriptions registered", func() bool {
		_, subs := b.egressQueued()
		return subs == 2
	})

	var stop atomic.Bool
	var published atomic.Uint64
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		rawPublish(t, n, "primary", clock, 1, &stop, &published)
	}()
	waitFor(t, 5*time.Second, "stalled subscriber evicted", func() bool {
		return b.EgressStats().Evictions >= 1
	})
	stop.Store(true)
	<-pubDone

	es := b.EgressStats()
	if es.Evictions != 1 {
		t.Errorf("Evictions = %d, want exactly 1 (only the stalled subscriber)", es.Evictions)
	}
	if es.Shed < uint64(tp.LossTolerance) {
		t.Errorf("Shed = %d, want >= Li = %d before eviction", es.Shed, tp.LossTolerance)
	}
	// The healthy subscriber must be completely unaffected: every message
	// published before the pump stopped eventually arrives, in order.
	last := published.Load()
	waitFor(t, 5*time.Second, "healthy subscriber caught up", func() bool {
		return healthy.Received(1) >= last
	})
	if loss := healthy.MaxConsecutiveLoss(1, last); loss != 0 {
		t.Errorf("healthy subscriber max consecutive loss = %d, want 0", loss)
	}

	b.Stop()
	if refs := transport.FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references after eviction", refs-base)
	}
}
