package broker

import (
	"fmt"
	"log/slog"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// quietLogger suppresses expected warn/info noise in tests.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, &slog.HandlerOptions{Level: slog.LevelError}))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// testClock returns a shared timebase for one in-process deployment.
func testClock() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

// fastDetector makes failover quick in tests.
func fastDetector() failover.Config {
	return failover.Config{Period: 2 * time.Millisecond, Timeout: 5 * time.Millisecond, Misses: 2}
}

// lanParams matches the in-process latency regime: everything is local, so
// edge and "cloud" ΔBS are both small, and the fail-over budget is set to
// cover the fast detector plus resend.
func lanParams() timing.Params {
	return timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
}

// lanTopic returns a generously-deadlined topic usable on loopback.
func lanTopic(id spec.TopicID, retention int) spec.Topic {
	return spec.Topic{
		ID:            id,
		Category:      -1,
		Period:        20 * time.Millisecond,
		Deadline:      time.Second,
		LossTolerance: 0,
		Retention:     retention,
		Destination:   spec.DestEdge,
		PayloadSize:   16,
	}
}

type cluster struct {
	primary, backup *Broker
	net             transport.Network
	clock           func() time.Duration
}

// startCluster brings up a Primary+Backup pair with the given topics.
func startCluster(t *testing.T, n transport.Network, primaryAddr, backupAddr string, topics []spec.Topic) *cluster {
	t.Helper()
	clock := testClock()
	cfg := core.FRAMEConfig(lanParams())
	// Tests publish in tight bursts (no Ti pacing), so size the Message
	// Buffer to hold a whole burst rather than relying on Ti-spaced arrivals.
	cfg.MessageBufferCap = 1024
	backup, err := New(Options{
		Engine:     cfg,
		Role:       RoleBackup,
		ListenAddr: backupAddr,
		PeerAddr:   primaryAddr,
		Network:    n,
		Clock:      clock,
		Workers:    4,
		Detector:   fastDetector(),
		Topics:     topics,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	primary, err := New(Options{
		Engine:     cfg,
		Role:       RolePrimary,
		ListenAddr: primaryAddr,
		PeerAddr:   backup.Addr(),
		Network:    n,
		Clock:      clock,
		Workers:    4,
		Detector:   fastDetector(),
		Topics:     topics,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	backup.opts.PeerAddr = primary.Addr() // resolve ephemeral TCP port
	backup.Start()
	primary.Start()
	t.Cleanup(func() {
		primary.Stop()
		backup.Stop()
	})
	return &cluster{primary: primary, backup: backup, net: n, clock: clock}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestPublishDispatchEndToEnd(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 3)}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name:        "sub1",
		Topics:      []spec.TopicID{1},
		BrokerAddrs: []string{"primary", "backup"},
		Network:     c.net,
		Clock:       c.clock,
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name:        "pub1",
		Topics:      topics,
		PrimaryAddr: "primary",
		BackupAddr:  "backup",
		Network:     c.net,
		Clock:       c.clock,
		Detector:    fastDetector(),
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const count = 50
	for i := 0; i < count; i++ {
		if _, err := pub.Publish(1, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "all deliveries", func() bool {
		return sub.Received(1) == count
	})
	if loss := sub.MaxConsecutiveLoss(1, count); loss != 0 {
		t.Errorf("lost messages: max consecutive = %d", loss)
	}
	for _, l := range sub.Latencies(1) {
		if l < 0 || l > time.Second {
			t.Errorf("implausible latency %v", l)
		}
	}
}

func TestSelectiveReplicationOverNetwork(t *testing.T) {
	// Topic A has a huge deadline relative to its loss budget → needs
	// replication; topic B has retention covering the failover window →
	// Proposition 1 suppresses replication.
	replTopic := spec.Topic{
		ID: 1, Category: -1, Period: 20 * time.Millisecond,
		Deadline: time.Second, LossTolerance: 0, Retention: 3,
		Destination: spec.DestEdge, PayloadSize: 16,
	}
	// (3+0)*20ms = 60ms ≥ x+ΔBB = 51ms → admissible; 51 + (-1) = 50ms
	// vs (Ni+Li)Ti − Di = 60ms − 1000ms < 0 → needs replication.
	suppressed := spec.Topic{
		ID: 2, Category: -1, Period: time.Second,
		Deadline: time.Second, LossTolerance: 0, Retention: 2,
		Destination: spec.DestEdge, PayloadSize: 16,
	}
	// (2+0)*1s − 1s = 1s ≥ x+ΔBB−ΔBS = 50ms → replication suppressed.
	topics := []spec.Topic{replTopic, suppressed}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: c.net, Clock: c.clock, Detector: fastDetector(),
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	for i := 0; i < 10; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
		if _, err := pub.Publish(2, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "replicas at backup", func() bool {
		return c.backup.Stats().ReplicasStored >= 10
	})
	stats := c.primary.Stats()
	if stats.ReplicationJobs < 10 {
		t.Errorf("replication jobs = %d, want ≥ 10", stats.ReplicationJobs)
	}
	if got := c.primary.Stats().SuppressedTopics; got != 1 {
		t.Errorf("SuppressedTopics = %d, want 1", got)
	}
	// No subscriber: dispatches still complete (to nobody), and with
	// coordination on, prunes flow to the backup.
	waitFor(t, 2*time.Second, "prunes applied", func() bool {
		return c.backup.Stats().PrunesApplied > 0
	})
}

// TestFailoverPromotionAndZeroLoss kills the Primary mid-stream and checks
// that the Backup promotes, publishers re-send retained messages, and the
// subscriber observes zero loss for a retention-covered topic.
func TestFailoverPromotionAndZeroLoss(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 5)}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "sub", Topics: []spec.TopicID{1},
		BrokerAddrs: []string{"primary", "backup"},
		Network:     c.net, Clock: c.clock,
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: c.net, Clock: c.clock, Detector: fastDetector(),
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Phase 1: steady traffic through the Primary.
	var published uint64
	for i := 0; i < 20; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
		published++
		time.Sleep(2 * time.Millisecond)
	}

	// Crash the Primary (fail-stop).
	c.primary.Stop()

	select {
	case <-pub.FailedOver():
	case <-time.After(2 * time.Second):
		t.Fatal("publisher never failed over")
	}
	select {
	case <-c.backup.Promoted():
	case <-time.After(2 * time.Second):
		t.Fatal("backup never promoted")
	}
	if c.backup.Role() != RolePrimary {
		t.Error("backup role not primary after promotion")
	}

	// Phase 2: traffic continues through the new Primary.
	for i := 0; i < 20; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatalf("publish after failover: %v", err)
		}
		published++
		time.Sleep(2 * time.Millisecond)
	}

	waitFor(t, 2*time.Second, "all messages delivered", func() bool {
		return sub.Received(1) >= published-0 // zero loss expected
	})
	if loss := sub.MaxConsecutiveLoss(1, published); loss != 0 {
		t.Errorf("max consecutive loss = %d, want 0 (retention 5 covers failover)", loss)
	}
}

func TestBrokerOptionValidation(t *testing.T) {
	n := transport.NewMem()
	clock := testClock()
	base := Options{
		Engine: core.FRAMEConfig(lanParams()), Role: RolePrimary,
		ListenAddr: "x", Network: n, Clock: clock, Logger: quietLogger(),
	}
	tests := []struct {
		name   string
		mutate func(*Options)
	}{
		{"nil network", func(o *Options) { o.Network = nil }},
		{"nil clock", func(o *Options) { o.Clock = nil }},
		{"bad role", func(o *Options) { o.Role = 0 }},
		{"negative workers", func(o *Options) { o.Workers = -1 }},
		{"inadmissible topic", func(o *Options) {
			bad := lanTopic(1, 0)
			bad.Deadline = time.Microsecond // < ΔBS
			o.Topics = []spec.Topic{bad}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mutate(&o)
			if _, err := New(o); err == nil {
				t.Error("invalid options accepted")
			}
		})
	}
}

func TestRoleString(t *testing.T) {
	if RolePrimary.String() != "primary" || RoleBackup.String() != "backup" {
		t.Error("role labels wrong")
	}
	if Role(7).String() != "Role(7)" {
		t.Error("unknown role label wrong")
	}
}

func TestPublisherRejectsUnownedTopic(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 3)}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)
	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: c.net, Clock: c.clock, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if _, err := pub.Publish(99, nil); err == nil {
		t.Error("publish to unowned topic accepted")
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	n := &transport.TCP{DialTimeout: time.Second}
	topics := []spec.Topic{lanTopic(1, 3)}
	c := startCluster(t, n, "127.0.0.1:0", "127.0.0.1:0", topics)

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "sub", Topics: []spec.TopicID{1},
		BrokerAddrs: []string{c.primary.Addr(), c.backup.Addr()},
		Network:     n, Clock: c.clock, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: c.primary.Addr(), BackupAddr: c.backup.Addr(),
		Network: n, Clock: c.clock, Detector: fastDetector(),
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const count = 100
	for i := 0; i < count; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "TCP deliveries", func() bool {
		return sub.Received(1) == count
	})
	if d := sub.Duplicates(); d != 0 {
		t.Errorf("unexpected duplicates: %d", d)
	}
}

func TestSubscriberDisconnectCleanup(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 3)}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "ephemeral", Topics: []spec.TopicID{1},
		BrokerAddrs: []string{"primary"},
		Network:     c.net, Clock: c.clock, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: c.net, Clock: c.clock, Detector: fastDetector(),
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "first delivery", func() bool { return sub.Received(1) == 1 })
	sub.Close()
	waitFor(t, 2*time.Second, "fan-out cleanup", func() bool {
		c.primary.subsMu.Lock()
		defer c.primary.subsMu.Unlock()
		return len(c.primary.subs[1]) == 0
	})
	// Publishing into a topic with no subscribers must not wedge workers.
	for i := 0; i < 5; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "dispatch jobs drained", func() bool {
		return c.primary.Stats().DispatchJobs >= 6
	})
}

func TestBrokerAnswersTimeSync(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 3)}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)
	nc, err := c.net.Dial("primary")
	if err != nil {
		t.Fatal(err)
	}
	conn := transport.NewConn(nc)
	defer conn.Close()
	sample, err := clocksync.Exchange(conn, c.clock, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !sample.Valid() {
		t.Fatalf("invalid sample %+v", sample)
	}
	// Client and broker share one clock here, so the measured offset must
	// be within the pipe's round-trip time.
	off := sample.Offset()
	if off < -time.Millisecond || off > time.Millisecond {
		t.Errorf("offset %v implausible for a shared clock", off)
	}
}

// TestDiskBackupPersistsAndReloads exercises the Table 1 "local disk"
// strategy option: replicas survive a Backup restart and are available for
// recovery dispatch after promotion.
func TestDiskBackupPersistsAndReloads(t *testing.T) {
	dir := t.TempDir()
	n := transport.NewMem()
	clock := testClock()
	topics := []spec.Topic{{
		ID: 1, Category: -1, Period: 20 * time.Millisecond, Deadline: time.Second,
		LossTolerance: 0, Retention: 3, Destination: spec.DestEdge, PayloadSize: 16,
	}}
	cfg := core.FRAMEConfig(lanParams())
	cfg.MessageBufferCap = 1024
	// Disable coordination so replicas stay unpruned in the log's working
	// set for this test.
	cfg.Coordination = false
	newBackup := func(addr string) *Broker {
		b, err := New(Options{
			Engine: cfg, Role: RoleBackup, ListenAddr: addr, PeerAddr: "",
			Network: n, Clock: clock, Workers: 2, Detector: fastDetector(),
			Topics: topics, Logger: quietLogger(),
			DiskBackupDir: dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	backup := newBackup("backup1")
	primary, err := New(Options{
		Engine: cfg, Role: RolePrimary, ListenAddr: "primary1", PeerAddr: "backup1",
		Network: n, Clock: clock, Workers: 2, Detector: fastDetector(),
		Topics: topics, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	backup.Start()
	primary.Start()

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics, PrimaryAddr: "primary1",
		Network: n, Clock: clock, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := pub.Publish(1, []byte("persist-me-16byt")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "replicas persisted", func() bool {
		return backup.Stats().ReplicasStored >= 5
	})
	pub.Close()
	primary.Stop()
	backup.Stop() // graceful stop syncs the log

	// Restart the Backup from the same directory: replicas reload.
	backup2 := newBackup("backup2")
	if got := backup2.Stats().ReplicasStored; got < 5 {
		t.Fatalf("reloaded replicas = %d, want ≥ 5", got)
	}
	backup2.Stop()
}

// TestConcurrentLoadManyClients soaks the broker with several publishers
// and subscribers under the race detector.
func TestConcurrentLoadManyClients(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 3), func() spec.Topic {
		tp := lanTopic(2, 3)
		return tp
	}()}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)

	const nSubs, nPubs, perTopic = 3, 2, 60
	subs := make([]*client.Subscriber, nSubs)
	for i := range subs {
		s, err := client.NewSubscriber(client.SubscriberOptions{
			Name: fmt.Sprintf("sub%d", i), Topics: []spec.TopicID{1, 2},
			BrokerAddrs: []string{"primary", "backup"},
			Network:     c.net, Clock: c.clock, Logger: quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		subs[i] = s
	}
	var wg sync.WaitGroup
	for p := 0; p < nPubs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			topic := topics[p%len(topics)]
			pub, err := client.NewPublisher(client.PublisherOptions{
				Name: fmt.Sprintf("pub%d", p), Topics: []spec.Topic{topic},
				PrimaryAddr: "primary", BackupAddr: "backup",
				Network: c.net, Clock: c.clock, Detector: fastDetector(),
				Logger: quietLogger(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer pub.Close()
			for i := 0; i < perTopic; i++ {
				if _, err := pub.Publish(topic.ID, []byte("payload-16-bytes")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Each topic had one publisher; every subscriber sees every message.
	for _, s := range subs {
		waitFor(t, 5*time.Second, "soak deliveries", func() bool {
			return s.Received(1) == perTopic && s.Received(2) == perTopic
		})
	}
}

// TestPromoteIdempotent: double promotion must not panic or double-close
// the Promoted channel.
func TestPromoteIdempotent(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 3)}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)
	c.backup.promote()
	c.backup.promote()
	select {
	case <-c.backup.Promoted():
	default:
		t.Error("Promoted channel not closed")
	}
	if c.backup.Role() != RolePrimary {
		t.Error("role not primary")
	}
}

// TestUnknownTopicPublishKeepsSession: a publish for an unconfigured topic
// is dropped without tearing down the connection.
func TestUnknownTopicPublishKeepsSession(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 3)}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)
	nc, err := c.net.Dial("primary")
	if err != nil {
		t.Fatal(err)
	}
	conn := transport.NewConn(nc)
	defer conn.Close()
	// Unknown topic, then a poll: the poll must still be answered.
	if err := conn.Send(&wire.Frame{Type: wire.TypePublish, Msg: wire.Message{Topic: 999, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&wire.Frame{Type: wire.TypePoll, Nonce: 7}); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	f, err := conn.Recv()
	if err != nil {
		t.Fatalf("session died after bad publish: %v", err)
	}
	if f.Type != wire.TypePollReply || f.Nonce != 7 {
		t.Errorf("got %v nonce %d", f.Type, f.Nonce)
	}
}

// TestShardBrokerRedirectsUnknownTopic: a broker given a ShardEpoch hook
// answers publishes for topics outside its shard with a WrongShard redirect
// carrying its epoch, and the session stays usable.
func TestShardBrokerRedirectsUnknownTopic(t *testing.T) {
	n := transport.NewMem()
	clock := testClock()
	cfg := core.FRAMEConfig(lanParams())
	cfg.MessageBufferCap = 1024
	b, err := New(Options{
		Engine:     cfg,
		Role:       RolePrimary,
		ListenAddr: "shard0",
		Network:    n,
		Clock:      clock,
		Workers:    2,
		Topics:     []spec.Topic{lanTopic(1, 3)},
		Logger:     quietLogger(),
		ShardEpoch: func() uint64 { return 42 },
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	t.Cleanup(b.Stop)
	nc, err := n.Dial("shard0")
	if err != nil {
		t.Fatal(err)
	}
	conn := transport.NewConn(nc)
	defer conn.Close()
	if err := conn.Send(&wire.Frame{Type: wire.TypePublish, Msg: wire.Message{Topic: 999, Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	f, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypeWrongShard || f.Topic != 999 || f.Epoch != 42 {
		t.Errorf("got %v topic %d epoch %d, want WRONG_SHARD topic 999 epoch 42", f.Type, f.Topic, f.Epoch)
	}
	// An owned topic on the same session still publishes normally.
	if err := conn.Send(&wire.Frame{Type: wire.TypePublish, Msg: wire.Message{Topic: 1, Seq: 1, Created: clock()}}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&wire.Frame{Type: wire.TypePoll, Nonce: 8}); err != nil {
		t.Fatal(err)
	}
	f, err = conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TypePollReply || f.Nonce != 8 {
		t.Errorf("got %v nonce %d", f.Type, f.Nonce)
	}
}
