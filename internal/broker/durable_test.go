package broker

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// startDurable brings up one durable Primary (no peer) on an in-process
// network, logging to dir.
func startDurable(t *testing.T, n transport.Network, dir string, topics []spec.Topic, tweak func(*Options)) *Broker {
	t.Helper()
	cfg := core.FRAMEConfig(lanParams())
	cfg.MessageBufferCap = 1024
	opts := Options{
		Engine:     cfg,
		Role:       RolePrimary,
		ListenAddr: "",
		Network:    n,
		Clock:      testClock(),
		Workers:    4,
		Topics:     topics,
		Logger:     quietLogger(),
		Durable:    true,
		LogDir:     dir,
	}
	if tweak != nil {
		tweak(&opts)
	}
	b, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	return b
}

// TestDurablePublishAckRoundTrip proves the ACK = durable contract end to
// end: a DurableAcks publisher blocks until the broker's PubAck, every
// publish is acked, the messages still dispatch normally, and the durable
// counters move.
func TestDurablePublishAckRoundTrip(t *testing.T) {
	n := transport.NewMem()
	topics := []spec.Topic{lanTopic(1, 8)}
	b := startDurable(t, n, t.TempDir(), topics, nil)
	defer b.Stop()

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "s", Topics: []spec.TopicID{1}, BrokerAddrs: []string{b.Addr()},
		Network: n, Clock: testClock(), Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "p", Topics: topics, PrimaryAddr: b.Addr(),
		Network: n, Clock: testClock(), Logger: quietLogger(),
		DurableAcks: true, AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const total = 32
	for i := 0; i < total; i++ {
		if _, err := pub.Publish(1, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if got := b.durableAcks.Load(); got != total {
		t.Fatalf("durable acks = %d, want %d", got, total)
	}
	waitFor(t, 2*time.Second, "dispatches", func() bool {
		return sub.Received(1) == total
	})

	var found bool
	for _, s := range b.scrapeGauges() {
		if s.Name == "frame_durable_acks_total" {
			found = true
			if s.Value != total {
				t.Fatalf("frame_durable_acks_total = %v, want %d", s.Value, total)
			}
		}
	}
	if !found {
		t.Fatal("frame_durable_acks_total missing from gauge scrape")
	}
}

// TestDurableRestartReplaysUnprunedOnly is the dual-crash recovery
// discipline in miniature: a log holding ten publishes and prune markers
// for the first five must, on restart, re-dispatch exactly the unpruned
// five — never a message a previous life already dispatched (Table 3), and
// with no gap in what survives.
func TestDurableRestartReplaysUnprunedOnly(t *testing.T) {
	dir := t.TempDir()
	clock := testClock()
	seg, _, err := diskstore.OpenSegmented(dir, diskstore.SegmentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 10; seq++ {
		if err := seg.Append(wire.Message{Topic: 1, Seq: seq, Created: clock(), Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := seg.AppendPrune(1, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	n := transport.NewMem()
	topics := []spec.Topic{lanTopic(1, 8)}
	b := startDurable(t, n, dir, topics, func(o *Options) { o.HoldRecovery = true })
	defer b.Stop()

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "s", Topics: []spec.TopicID{1}, BrokerAddrs: []string{b.Addr()},
		Network: n, Clock: clock, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// The subscribe frame is fire-and-forget; recovery dispatched before
	// the broker registers the session would prune with nobody listening.
	waitFor(t, 2*time.Second, "subscriber registration", func() bool {
		return b.Health().EgressSubs >= 1
	})
	b.RecoverFromLog()
	waitFor(t, 2*time.Second, "recovery dispatches", func() bool {
		return sub.Received(1) == 5
	})
	// Settle, then confirm nothing pruned was re-dispatched.
	time.Sleep(20 * time.Millisecond)
	if got := sub.Received(1); got != 5 {
		t.Fatalf("recovered deliveries = %d, want exactly the 5 unpruned", got)
	}
	if loss := sub.MaxConsecutiveLoss(1, 10); loss != 5 {
		// Sequences 1–5 were dispatched before the crash; from this
		// subscriber's view they are one leading run of length 5.
		t.Fatalf("consecutive missing run = %d, want 5 (the pruned prefix)", loss)
	}
}

// TestDurableStopMarksDispatchedAndRestartIsQuiet runs a full life: publish
// through a durable broker, let everything dispatch, stop cleanly, restart
// on the same log — the prune markers written after each dispatch must keep
// the second life from re-dispatching anything.
func TestDurableStopMarksDispatchedAndRestartIsQuiet(t *testing.T) {
	dir := t.TempDir()
	n := transport.NewMem()
	topics := []spec.Topic{lanTopic(1, 8)}
	b := startDurable(t, n, dir, topics, nil)

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "s1", Topics: []spec.TopicID{1}, BrokerAddrs: []string{b.Addr()},
		Network: n, Clock: testClock(), Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "p", Topics: topics, PrimaryAddr: b.Addr(),
		Network: n, Clock: testClock(), Logger: quietLogger(),
		DurableAcks: true, AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		if _, err := pub.Publish(1, []byte("d")); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	waitFor(t, 2*time.Second, "first-life dispatches", func() bool {
		return sub.Received(1) == total
	})
	pub.Close()
	sub.Close()
	b.Stop()

	b2 := startDurable(t, n, dir, topics, func(o *Options) { o.HoldRecovery = true })
	defer b2.Stop()
	if b2.recoveredMsgs != total {
		t.Fatalf("second life replayed %d messages, want %d", b2.recoveredMsgs, total)
	}
	sub2, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "s2", Topics: []spec.TopicID{1}, BrokerAddrs: []string{b2.Addr()},
		Network: n, Clock: testClock(), Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	b2.RecoverFromLog()
	time.Sleep(50 * time.Millisecond)
	if got := sub2.Received(1); got != 0 {
		t.Fatalf("clean restart re-dispatched %d messages; prune markers should cover all", got)
	}
}

// TestDurableConcurrentPublishers hammers the durable publish path from
// many sessions at once — run under -race this is the proof that the
// group-commit writer is the log's single owner and the broker-side
// enqueue/ack plumbing is sound under contention.
func TestDurableConcurrentPublishers(t *testing.T) {
	n := transport.NewMem()
	const pubs, perPub = 8, 25
	topics := make([]spec.Topic, pubs)
	ids := make([]spec.TopicID, pubs)
	for i := range topics {
		topics[i] = lanTopic(spec.TopicID(i+1), 8)
		ids[i] = spec.TopicID(i + 1)
	}
	b := startDurable(t, n, t.TempDir(), topics, func(o *Options) {
		o.FsyncInterval = time.Millisecond
	})
	defer b.Stop()

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "p", Topics: topics, PrimaryAddr: b.Addr(),
		Network: n, Clock: testClock(), Logger: quietLogger(),
		DurableAcks: true, AckTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	var wg sync.WaitGroup
	errs := make(chan error, pubs*perPub)
	for _, id := range ids {
		wg.Add(1)
		go func(id spec.TopicID) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if _, err := pub.Publish(id, []byte("c")); err != nil {
					errs <- err
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := b.durableAcks.Load(); got != pubs*perPub {
		t.Fatalf("durable acks = %d, want %d", got, pubs*perPub)
	}
}
