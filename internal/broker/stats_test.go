package broker

import (
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/spec"
	"repro/internal/transport"
)

// TestStatsScrapeDuringLiveRun hammers every observability read path —
// Stats, LateDispatches, Health, the /metrics gauge scrape, and the queue
// meter — from concurrent goroutines while lane workers are dispatching and
// replicating. Run under -race this proves the engine counters are safe to
// read without the engine lock (they are atomics; a scrape never blocks the
// delivery path).
func TestStatsScrapeDuringLiveRun(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 5), lanTopic(2, 5), lanTopic(3, 5), lanTopic(4, 5)}
	c := startCluster(t, transport.NewMem(), "primary", "backup", topics)

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: c.net, Clock: c.clock, Detector: fastDetector(),
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, b := range []*Broker{c.primary, c.backup} {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Exercise every scrape surface the admin endpoint uses.
				_ = b.Stats()
				_ = b.LateDispatches()
				_ = b.Health()
				_ = b.scrapeGauges()
				qm := b.engine.QueueMeter()
				for l := 0; l < qm.Lanes(); l++ {
					_ = qm.LaneDepth(l)
				}
			}
		}()
	}

	const perTopic = 200
	for i := 0; i < perTopic; i++ {
		for _, tp := range topics {
			if _, err := pub.Publish(tp.ID, []byte("0123456789abcdef")); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, 5*time.Second, "dispatch counters to settle", func() bool {
		return c.primary.Stats().DispatchJobs >= uint64(len(topics)*perTopic)
	})
	close(stop)
	wg.Wait()

	stats := c.primary.Stats()
	if stats.Published != uint64(len(topics)*perTopic) {
		t.Errorf("Published = %d, want %d", stats.Published, len(topics)*perTopic)
	}
	if stats.DispatchJobs < stats.Published {
		t.Errorf("DispatchJobs = %d < Published = %d", stats.DispatchJobs, stats.Published)
	}
}
