package broker

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// benchmarkPublishContended hammers the broker's publish handoff from
// parallel producers while its own lane workers drain concurrently — the
// session-goroutine contention BenchmarkDispatchLanes cannot see, since it
// pushes and pops from the same goroutine per lane. The two variants pit the
// lock-free MPSC intake against the legacy per-lane mutex+cond handoff on
// the identical workload.
//
// Read the pair on a multi-core runner: RunParallel spawns GOMAXPROCS
// producers, so on a single-core box there is no contention and the MPSC
// variant pays its slot copy plus drain double-handling with nothing to
// amortize them against — the locked path wins there by construction.
func benchmarkPublishContended(b *testing.B, intakeDepth int) {
	const topicCount = 64
	cfg := core.FRAMEConfig(lanParams())
	cfg.Lanes = 4
	cfg.MessageBufferCap = 1024
	topics := make([]spec.Topic, topicCount)
	for i := range topics {
		topics[i] = lanTopic(spec.TopicID(i+1), 8)
		topics[i].LossTolerance = spec.LossUnbounded
	}
	bk, err := New(Options{
		Engine:      cfg,
		Role:        RolePrimary,
		ListenAddr:  "bench-primary",
		Network:     transport.NewMem(),
		Clock:       testClock(),
		Workers:     2,
		Topics:      topics,
		IntakeDepth: intakeDepth,
		Logger:      quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	bk.Start()
	defer bk.Stop()

	payload := make([]byte, 16)
	var nextTopic atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each producer owns one topic, so per-topic seqs stay monotone
		// without coordination; the shared state under test is the lane
		// intake itself.
		id := spec.TopicID(nextTopic.Add(1)-1)%topicCount + 1
		seq := uint64(0)
		for pb.Next() {
			seq++
			m := wire.Message{Topic: id, Seq: seq, Created: bk.opts.Clock(), Payload: payload}
			if err := bk.onPublish(nil, m); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkPublishContendedMPSC(b *testing.B)   { benchmarkPublishContended(b, 0) }
func BenchmarkPublishContendedLocked(b *testing.B) { benchmarkPublishContended(b, -1) }
