package broker

import (
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/spec"
	"repro/internal/transport"
)

// soakBudget is how long the chaos soak runs: ~4s by default so the suite
// stays quick under -race, 30s (or anything else) via FRAME_SOAK_DURATION:
//
//	FRAME_SOAK_DURATION=30s go test -race -run TestChaosSoak ./internal/broker/
func soakBudget() time.Duration {
	if d, err := time.ParseDuration(os.Getenv("FRAME_SOAK_DURATION")); err == nil && d > 0 {
		return d
	}
	return 4 * time.Second
}

// soakBusyPoll arms Options.BusyPoll in the soak brokers when
// FRAME_SOAK_BUSY_POLL is set, so the nightly covers the spin-then-park
// drain mode under -race without a separate harness.
func soakBusyPoll() bool { return os.Getenv("FRAME_SOAK_BUSY_POLL") != "" }

// soakNetwork picks the soak transport: the deterministic in-memory
// network by default, real loopback TCP when FRAME_SOAK_TCP is set. TCP
// conns carry file descriptors, so the TCP soak drives egress through the
// kernel-batched io_uring submission backend wherever the kernel allows it
// (falling back to sequential writev elsewhere) — this is how the nightly
// busy-poll leg exercises the uring sweep/escalation paths under -race.
func soakNetwork() (transport.Network, bool) {
	if os.Getenv("FRAME_SOAK_TCP") != "" {
		return &transport.TCP{DialTimeout: 2 * time.Second}, true
	}
	return transport.NewMem(), false
}

// chaosTopics spread across the lanes with retention deep enough that the
// publisher's fail-over resend covers every message lost in the crash
// window. All have Li = 0: the loss assertion is exact.
func chaosTopics(n int) []spec.Topic {
	topics := make([]spec.Topic, n)
	for i := range topics {
		topics[i] = spec.Topic{
			ID:            spec.TopicID(i + 1),
			Category:      -1,
			Period:        20 * time.Millisecond,
			Deadline:      time.Second,
			LossTolerance: 0,
			Retention:     64,
			Destination:   spec.DestEdge,
			PayloadSize:   16,
		}
	}
	return topics
}

// deliveryLog records every distinct delivery the subscriber surfaced to the
// application, for the at-most-once assertion.
type deliveryLog struct {
	mu     sync.Mutex
	counts map[spec.TopicID]map[uint64]int
}

func newDeliveryLog() *deliveryLog {
	return &deliveryLog{counts: make(map[spec.TopicID]map[uint64]int)}
}

func (l *deliveryLog) record(d client.Delivery) {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.counts[d.Msg.Topic]
	if m == nil {
		m = make(map[uint64]int)
		l.counts[d.Msg.Topic] = m
	}
	m[d.Msg.Seq]++
}

// checkNoDuplicates fails the test for any (topic, seq) delivered to the
// application more than once.
func (l *deliveryLog) checkNoDuplicates(t *testing.T, cycle int) {
	t.Helper()
	l.mu.Lock()
	defer l.mu.Unlock()
	for id, seqs := range l.counts {
		for seq, n := range seqs {
			if n > 1 {
				t.Errorf("cycle %d: topic %d seq %d delivered %d times", cycle, id, seq, n)
			}
		}
	}
}

// TestChaosSoak repeatedly brings up a Primary+Backup pair with sharded
// lanes and write batching on, pumps publishes from concurrent publishers,
// fail-stops the Primary mid-stream, and asserts the FRAME recovery
// guarantees after every promotion:
//
//   - zero non-discarded loss beyond each topic's Li (here Li = 0: every
//     published message reaches the subscriber), and
//   - no duplicate delivery to the application after recovery.
//
// Run it under -race: the point of the soak is to shake scheduling windows
// in the lane workers, the batcher's timers, and the promotion path.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	// The kill timing is the only random input; seeding it from
	// FRAME_CHAOS_SEED makes a nightly failure replayable.
	seed := faultinject.SeedFromEnv(0x50a4)
	t.Logf("seed=%d (override with FRAME_CHAOS_SEED to replay)", seed)
	rng := rand.New(rand.NewSource(seed))
	deadline := time.Now().Add(soakBudget())
	cycle := 0
	for time.Now().Before(deadline) || cycle == 0 {
		cycle++
		runChaosCycle(t, cycle, rng)
		if t.Failed() {
			return
		}
	}
	t.Logf("chaos soak: %d kill/promote cycles clean", cycle)
}

func runChaosCycle(t *testing.T, cycle int, rng *rand.Rand) {
	t.Helper()
	topics := chaosTopics(8)
	ids := make([]spec.TopicID, len(topics))
	for i, tp := range topics {
		ids[i] = tp.ID
	}
	n, tcp := soakNetwork()
	clock := testClock()
	cfg := core.FRAMEConfig(lanParams())
	cfg.MessageBufferCap = 2048
	newBroker := func(role Role, listen, peer string) *Broker {
		b, err := New(Options{
			Engine:      cfg,
			Role:        role,
			ListenAddr:  listen,
			PeerAddr:    peer,
			Network:     n,
			Clock:       clock,
			Workers:     8,
			Lanes:       4,
			BatchWindow: 200 * time.Microsecond,
			BusyPoll:    soakBusyPoll(),
			Detector:    fastDetector(),
			Topics:      topics,
			Logger:      quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	listenPrimary, listenBackup := "primary", "backup"
	if tcp {
		listenPrimary, listenBackup = "127.0.0.1:0", "127.0.0.1:0"
	}
	backup := newBroker(RoleBackup, listenBackup, "pending")
	primary := newBroker(RolePrimary, listenPrimary, backup.Addr())
	backup.SetPeerAddr(primary.Addr())
	backup.Start()
	primary.Start()
	primaryStopped := false
	defer func() {
		if !primaryStopped {
			primary.Stop()
		}
		backup.Stop()
	}()

	log := newDeliveryLog()
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "chaos-sub", Topics: ids,
		BrokerAddrs: []string{primary.Addr(), backup.Addr()},
		Network:     n, Clock: clock,
		OnDeliver: log.record,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "chaos-pub", Topics: topics,
		PrimaryAddr: primary.Addr(), BackupAddr: backup.Addr(),
		Network: n, Clock: clock, Detector: fastDetector(),
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Concurrent pumps over disjoint topic halves; they keep publishing
	// straight through the crash (send errors in the detection window are
	// fine — the retained ring re-sends on fail-over).
	stop := make(chan struct{})
	var pumps sync.WaitGroup
	for p := 0; p < 2; p++ {
		half := ids[p*len(ids)/2 : (p+1)*len(ids)/2]
		pumps.Add(1)
		go func() {
			defer pumps.Done()
			payload := []byte("chaos-soak-load!")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pub.Publish(half[i%len(half)], payload)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	// Let load build, then fail-stop the Primary. The window is jittered
	// from the soak seed so successive cycles kill at different phases of
	// the batcher timers and lane workers.
	time.Sleep(time.Duration(60+rng.Intn(80)) * time.Millisecond)
	primary.Stop()
	primaryStopped = true

	select {
	case <-backup.Promoted():
	case <-time.After(3 * time.Second):
		close(stop)
		pumps.Wait()
		t.Fatalf("cycle %d: backup never promoted", cycle)
	}
	if backup.Role() != RolePrimary {
		t.Fatalf("cycle %d: promoted backup reports role %v", cycle, backup.Role())
	}

	// Keep the load on the new Primary for a while, then drain.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	pumps.Wait()

	for _, id := range ids {
		id := id
		published := pub.LastSeq(id)
		waitFor(t, 5*time.Second, "post-promotion delivery drain", func() bool {
			return sub.Received(id) >= published
		})
		if t.Failed() {
			t.Fatalf("cycle %d: topic %d delivered %d of %d (Li=0 allows no loss)",
				cycle, id, sub.Received(id), published)
		}
		if loss := sub.MaxConsecutiveLoss(id, published); loss > topics[0].LossTolerance {
			t.Errorf("cycle %d: topic %d max consecutive loss %d > Li %d",
				cycle, id, loss, topics[0].LossTolerance)
		}
	}
	log.checkNoDuplicates(t, cycle)
	if tcp {
		// Surface whether the promoted broker's egress actually ran kernel
		// sweeps this cycle, so the nightly log shows which backend the TCP
		// soak covered (sequential fallback on kernels without io_uring).
		es := backup.EgressStats()
		t.Logf("cycle %d: tcp egress: kernel=%v sweeps=%d write-syscalls=%d",
			cycle, es.KernelSubmit, es.SubmittedBatches, es.WriteSyscalls)
	}
}
