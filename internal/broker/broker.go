// Package broker is the real-time runtime of the FRAME architecture
// (paper Fig. 4): it hosts a core.Engine behind a network listener and a
// pool of delivery workers, in the same module split as the paper's
// implementation inside the TAO event service (§V):
//
//   - the accept/read loops play the Supplier Proxies + Message Proxy role
//     (each arriving Publish frame is stored and turned into jobs);
//   - the worker pool plays the Message Delivery module, its goroutines
//     acting as Dispatchers and Replicators ("a pool of generic threads,
//     with the total number of threads equal to three times the number of
//     CPU cores");
//   - subscriber connections play the Consumer Proxies.
//
// A broker starts as Primary (dispatching and replicating) or as Backup
// (absorbing replicas and polling the Primary); a Backup promotes itself
// into a new Primary when its failure detector fires, draining the pruned
// Backup Buffer per Table 3's Recovery procedure.
package broker

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/failover"
	"repro/internal/obsv"
	"repro/internal/queue"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Role is the broker's fault-tolerance role.
type Role int

// Broker roles.
const (
	RolePrimary Role = iota + 1
	RoleBackup
)

// String returns the role label.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleBackup:
		return "backup"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Options configures a broker.
type Options struct {
	// Engine is the core configuration (policy, coordination, params).
	Engine core.Config
	// Role selects Primary or Backup duty at startup.
	Role Role
	// ListenAddr is where publishers, subscribers, and the peer connect.
	ListenAddr string
	// PeerAddr is the other broker: for a Primary, the Backup to replicate
	// to (empty means no backup); for a Backup, the Primary to poll.
	PeerAddr string
	// Network supplies listen/dial (TCP or in-process).
	Network transport.Network
	// Clock is the broker's timebase; all brokers and clients in one
	// deployment must be synchronized (see package clocksync).
	Clock clocksync.Clock
	// Workers sets the delivery pool size; zero means 3×GOMAXPROCS, the
	// paper's sizing.
	Workers int
	// Detector tunes the Backup's failure detector; zero-value means
	// failover.DefaultConfig.
	Detector failover.Config
	// Topics are registered before the broker starts serving.
	Topics []spec.Topic
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
	// DiskBackupDir, when non-empty on a Backup, additionally persists
	// every replica to an append-only log in that directory (the paper's
	// Table 1 "local disk" strategy, offered as a belt-and-braces option)
	// and reloads surviving copies into the Backup Buffer at startup.
	DiskBackupDir string
	// DiskSync selects the log's durability; zero means diskstore.SyncNever.
	DiskSync diskstore.SyncPolicy
	// Obs receives runtime observability events (counters, stage latency
	// histograms, lifecycle traces). Nil means a private instrument set;
	// recording is always on — every instrument is an atomic add.
	Obs *obsv.BrokerMetrics
	// AdminAddr, when non-empty, binds an HTTP admin endpoint on that TCP
	// address serving /metrics (Prometheus text), /healthz (role, peer
	// liveness, queue depth), and /debug/pprof. The listener binds in New
	// (so AdminAddr() is dialable immediately) and serves from Start.
	AdminAddr string
}

// Broker runs one FRAME broker.
type Broker struct {
	opts    Options
	log     *slog.Logger
	ln      net.Listener
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	obs     *obsv.BrokerMetrics
	admin   *obsv.Admin
	meter   transport.Meter // aggregate traffic over every conn this broker owns
	started time.Time

	// peerAlive reflects the Backup's view of the Primary: the last failure
	// detector probe succeeded. Primaries report the replication link instead.
	peerAlive atomic.Bool

	mu       sync.Mutex
	cond     *sync.Cond
	engine   *core.Engine
	role     Role
	promoted chan struct{} // closed on promotion
	stopping bool

	subsMu sync.Mutex
	subs   map[spec.TopicID][]*transport.Conn

	// lateDispatches counts dispatch jobs that started executing after
	// their absolute deadline — the runtime-observable form of a Lemma 2
	// violation. Under admission-respecting load this stays zero.
	lateDispatches atomic.Uint64

	peerMu   sync.Mutex
	peerConn *transport.Conn // Primary→Backup replication link

	diskMu sync.Mutex
	disk   *diskstore.Log // optional durable replica log (Backup role)
}

// New creates a broker, registers its topics, and binds its listener (so
// the address is dialable when New returns), but serves nothing until Run.
func New(opts Options) (*Broker, error) {
	if opts.Network == nil {
		return nil, errors.New("broker: nil network")
	}
	if opts.Clock == nil {
		return nil, errors.New("broker: nil clock")
	}
	if opts.Role != RolePrimary && opts.Role != RoleBackup {
		return nil, fmt.Errorf("broker: bad role %d", int(opts.Role))
	}
	if opts.Workers == 0 {
		opts.Workers = 3 * runtime.GOMAXPROCS(0)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("broker: negative workers %d", opts.Workers)
	}
	if opts.Detector == (failover.Config{}) {
		opts.Detector = failover.DefaultConfig()
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	engineCfg := opts.Engine
	// A Primary without a peer, and any Backup, must not generate
	// replication jobs.
	if opts.Role == RolePrimary && opts.PeerAddr == "" {
		engineCfg.HasBackup = false
	}
	if opts.Role == RoleBackup {
		engineCfg.HasBackup = false
	}
	// Queue meters let the admin endpoint report depth without the engine
	// lock; the atomics are cheap enough to leave on unconditionally.
	engineCfg.MeterQueue = true
	engine, err := core.New(engineCfg)
	if err != nil {
		return nil, err
	}
	for _, t := range opts.Topics {
		if err := engine.AddTopic(t); err != nil {
			return nil, fmt.Errorf("broker: %w", err)
		}
	}
	ln, err := opts.Network.Listen(opts.ListenAddr)
	if err != nil {
		return nil, err
	}
	obs := opts.Obs
	if obs == nil {
		obs = obsv.NewBrokerMetrics()
	}
	b := &Broker{
		opts:     opts,
		log:      opts.Logger.With("broker", opts.ListenAddr, "role", opts.Role.String()),
		ln:       ln,
		obs:      obs,
		started:  time.Now(),
		engine:   engine,
		role:     opts.Role,
		promoted: make(chan struct{}),
		subs:     make(map[spec.TopicID][]*transport.Conn),
	}
	b.cond = sync.NewCond(&b.mu)
	if opts.AdminAddr != "" {
		admin, err := obsv.NewAdmin(opts.AdminAddr, obs, b.Health, b.scrapeGauges)
		if err != nil {
			ln.Close()
			return nil, err
		}
		b.admin = admin
	}
	if opts.Role == RoleBackup && opts.DiskBackupDir != "" {
		policy := opts.DiskSync
		if policy == 0 {
			policy = diskstore.SyncNever
		}
		disk, recovered, err := diskstore.Open(opts.DiskBackupDir, "replicas.log", policy)
		if err != nil {
			ln.Close()
			if b.admin != nil {
				b.admin.Close()
			}
			return nil, fmt.Errorf("broker: disk backup: %w", err)
		}
		b.disk = disk
		reloaded := 0
		for _, m := range recovered {
			// Replicas for topics no longer configured are skipped.
			if err := b.engine.OnReplica(m, 0); err == nil {
				reloaded++
			}
		}
		if reloaded > 0 {
			b.log.Info("reloaded persisted replicas", "count", reloaded)
		}
	}
	return b, nil
}

// Addr returns the bound listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// AdminAddr returns the bound admin endpoint address, empty when no
// Options.AdminAddr was configured.
func (b *Broker) AdminAddr() string {
	if b.admin == nil {
		return ""
	}
	return b.admin.Addr()
}

// Obs returns the broker's instrument set.
func (b *Broker) Obs() *obsv.BrokerMetrics { return b.obs }

// Health snapshots the broker's liveness for /healthz: current role, peer
// liveness (replication link up for a Primary, last probe answered for a
// Backup), and job queue depth.
func (b *Broker) Health() obsv.Health {
	role := b.Role()
	peerUp := false
	if b.opts.PeerAddr != "" {
		if b.opts.Role == RoleBackup && role == RoleBackup {
			peerUp = b.peerAlive.Load()
		} else {
			peerUp = b.peer() != nil
		}
	}
	return obsv.Health{
		Role:           role.String(),
		Addr:           b.Addr(),
		PeerAddr:       b.opts.PeerAddr,
		PeerConnected:  peerUp,
		Promoted:       b.opts.Role == RoleBackup && role == RolePrimary,
		QueueDepth:     b.engine.QueueMeter().Depth(),
		LateDispatches: b.lateDispatches.Load(),
		UptimeSeconds:  time.Since(b.started).Seconds(),
	}
}

// scrapeGauges contributes the scrape-time samples to /metrics: state the
// broker derives on demand (role, queue depth, transport totals) rather
// than maintaining as counters. Everything here reads atomics or short
// locks, so scrapes do not perturb the delivery path.
func (b *Broker) scrapeGauges() []obsv.Sample {
	qm := b.engine.QueueMeter()
	role := b.Role()
	return []obsv.Sample{
		{Name: "frame_role", Label: fmt.Sprintf("role=%q", role.String()), Value: 1,
			Help: "Current fault-tolerance role (1 for the active label)."},
		{Name: "frame_uptime_seconds", Value: time.Since(b.started).Seconds(),
			Help: "Wall time since the broker was created."},
		{Name: "frame_queue_depth", Value: float64(qm.Depth()),
			Help: "Jobs pending in the job queue."},
		{Name: "frame_queue_depth_max", Value: float64(qm.MaxDepth()),
			Help: "High-water job queue depth since start."},
		{Name: "frame_queue_pushes_total", Label: `kind="dispatch"`, Counter: true,
			Value: float64(qm.Pushes(queue.KindDispatch)), Help: "Jobs pushed, by kind."},
		{Name: "frame_queue_pushes_total", Label: `kind="replicate"`, Counter: true,
			Value: float64(qm.Pushes(queue.KindReplicate)), Help: "Jobs pushed, by kind."},
		{Name: "frame_queue_pops_total", Label: `kind="dispatch"`, Counter: true,
			Value: float64(qm.Pops(queue.KindDispatch)), Help: "Jobs popped, by kind."},
		{Name: "frame_queue_pops_total", Label: `kind="replicate"`, Counter: true,
			Value: float64(qm.Pops(queue.KindReplicate)), Help: "Jobs popped, by kind."},
		{Name: "frame_transport_frames_sent_total", Counter: true,
			Value: float64(b.meter.FramesSent.Load()), Help: "Wire frames sent on broker-owned connections."},
		{Name: "frame_transport_bytes_sent_total", Counter: true,
			Value: float64(b.meter.BytesSent.Load()), Help: "Wire bytes sent on broker-owned connections."},
		{Name: "frame_transport_frames_recv_total", Counter: true,
			Value: float64(b.meter.FramesRecv.Load()), Help: "Wire frames received on broker-owned connections."},
		{Name: "frame_transport_bytes_recv_total", Counter: true,
			Value: float64(b.meter.BytesRecv.Load()), Help: "Wire bytes received on broker-owned connections."},
	}
}

// Role returns the broker's current role (Backup becomes Primary after
// promotion).
func (b *Broker) Role() Role {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.role
}

// Promoted returns a channel closed when a Backup promotes itself.
func (b *Broker) Promoted() <-chan struct{} { return b.promoted }

// Stats snapshots the engine counters.
func (b *Broker) Stats() core.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.engine.Stats()
}

// LateDispatches reports dispatch jobs that began executing past their
// deadline since the broker started.
func (b *Broker) LateDispatches() uint64 { return b.lateDispatches.Load() }

// Start launches the accept loop, the delivery workers, and the role's
// background duties. It returns immediately; Stop shuts everything down.
func (b *Broker) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	b.cancel = cancel

	if b.admin != nil {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			if err := b.admin.Serve(); err != nil {
				b.log.Warn("admin endpoint stopped", "err", err)
			}
		}()
		b.log.Info("admin endpoint up", "addr", b.admin.Addr())
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.acceptLoop(ctx)
	}()
	for i := 0; i < b.opts.Workers; i++ {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.workerLoop()
		}()
	}
	if b.opts.Role == RolePrimary && b.opts.PeerAddr != "" {
		// Dial the Backup before workers can pop replication jobs: both
		// listeners are bound in New, so this normally succeeds at once.
		// On failure the background loop keeps retrying.
		conn, err := b.dialPeer()
		if err == nil {
			b.setPeer(conn)
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.servePeer(ctx, conn)
			}()
		} else {
			b.log.Warn("initial backup dial failed; retrying", "err", err)
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.connectPeer(ctx)
			}()
		}
	}
	if b.opts.Role == RoleBackup && b.opts.PeerAddr != "" {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.watchPrimary(ctx)
		}()
	}
}

// Stop shuts the broker down and waits for all goroutines.
func (b *Broker) Stop() {
	if b.cancel != nil {
		b.cancel()
	}
	b.mu.Lock()
	b.stopping = true
	b.cond.Broadcast()
	b.mu.Unlock()
	b.ln.Close()
	if b.admin != nil {
		if err := b.admin.Close(); err != nil {
			b.log.Warn("admin close failed", "err", err)
		}
	}
	b.peerMu.Lock()
	if b.peerConn != nil {
		b.peerConn.Close()
	}
	b.peerMu.Unlock()
	b.closeSubscribers()
	b.wg.Wait()
	b.diskMu.Lock()
	if b.disk != nil {
		if err := b.disk.Close(); err != nil {
			b.log.Warn("disk backup close failed", "err", err)
		}
		b.disk = nil
	}
	b.diskMu.Unlock()
}

func (b *Broker) closeSubscribers() {
	b.subsMu.Lock()
	defer b.subsMu.Unlock()
	seen := make(map[*transport.Conn]bool)
	for _, conns := range b.subs {
		for _, c := range conns {
			if !seen[c] {
				seen[c] = true
				c.Close()
			}
		}
	}
}

// acceptLoop admits sessions until the listener closes.
func (b *Broker) acceptLoop(ctx context.Context) {
	for {
		nc, err := b.ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				b.log.Warn("accept failed", "err", err)
			}
			return
		}
		conn := transport.NewConn(nc)
		conn.SetMeter(&b.meter)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.serveConn(ctx, conn)
		}()
	}
}

// serveConn runs one session read loop. The first frame should be a Hello;
// untyped sessions are served generically anyway (poll/time replies).
func (b *Broker) serveConn(ctx context.Context, conn *transport.Conn) {
	defer conn.Close()
	defer b.removeSubscriber(conn)
	// Ensure blocked reads unstick on shutdown.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		if err := b.handleFrame(conn, f); err != nil {
			b.log.Warn("session error", "err", err, "type", f.Type.String())
			return
		}
	}
}

func (b *Broker) handleFrame(conn *transport.Conn, f *wire.Frame) error {
	switch f.Type {
	case wire.TypeHello:
		return nil // roles are implicit in subsequent traffic
	case wire.TypePublish, wire.TypeResend:
		// An unknown topic is the sender's configuration error, not a
		// protocol fault: drop the message but keep the session, which may
		// carry other, valid topics.
		if err := b.onPublish(f.Msg); err != nil {
			b.log.Warn("publish rejected", "topic", f.Msg.Topic, "err", err)
		}
		return nil
	case wire.TypeSubscribe:
		b.addSubscriber(conn, f.Topics)
		return nil
	case wire.TypeReplicate:
		if err := b.onReplica(f); err != nil {
			b.log.Warn("replica rejected", "topic", f.Msg.Topic, "err", err)
		}
		return nil
	case wire.TypePrune:
		b.obs.PrunesReceived.Inc()
		b.mu.Lock()
		b.engine.OnPrune(f.Topic, f.Seq)
		b.mu.Unlock()
		return nil
	case wire.TypePoll:
		return conn.Send(&wire.Frame{Type: wire.TypePollReply, Nonce: f.Nonce})
	case wire.TypeTimeReq:
		return clocksync.Respond(conn, b.opts.Clock, f)
	case wire.TypePollReply, wire.TypeTimeResp:
		return nil // stray replies on shared links are harmless
	default:
		return fmt.Errorf("broker: unexpected frame %v", f.Type)
	}
}

// onPublish is the Message Proxy path: store, generate jobs, wake workers.
func (b *Broker) onPublish(m wire.Message) error {
	now := b.opts.Clock()
	b.mu.Lock()
	err := b.engine.OnPublish(m, now)
	if err == nil {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
	if err != nil {
		b.obs.PublishRejected.Inc()
		return err
	}
	b.obs.Publishes.Inc()
	b.obs.StageProxy.Observe(b.opts.Clock() - now)
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StagePublish, Topic: uint64(m.Topic), Seq: m.Seq, At: now})
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageEnqueue, Topic: uint64(m.Topic), Seq: m.Seq, At: now})
	return nil
}

// onReplica stores a replica in the Backup Buffer (Backup role), and in
// the durable log when one is configured.
func (b *Broker) onReplica(f *wire.Frame) error {
	b.diskMu.Lock()
	if b.disk != nil {
		if err := b.disk.Append(f.Msg); err != nil {
			b.log.Warn("disk backup append failed", "err", err)
		}
	}
	b.diskMu.Unlock()
	b.mu.Lock()
	err := b.engine.OnReplica(f.Msg, f.ArrivedPrimary)
	b.mu.Unlock()
	if err == nil {
		b.obs.ReplicasStored.Inc()
	}
	return err
}

func (b *Broker) addSubscriber(conn *transport.Conn, topics []spec.TopicID) {
	b.subsMu.Lock()
	defer b.subsMu.Unlock()
	for _, id := range topics {
		b.subs[id] = append(b.subs[id], conn)
	}
}

// removeSubscriber drops a dead session from every topic's fan-out list so
// Dispatchers stop attempting sends to it.
func (b *Broker) removeSubscriber(conn *transport.Conn) {
	b.subsMu.Lock()
	defer b.subsMu.Unlock()
	for id, conns := range b.subs {
		kept := conns[:0]
		for _, c := range conns {
			if c != conn {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			delete(b.subs, id)
			continue
		}
		b.subs[id] = kept
	}
}

// workerLoop is one Message Delivery thread: it pops resolved work under
// the engine lock and performs the network sends outside it.
func (b *Broker) workerLoop() {
	for {
		b.mu.Lock()
		var w core.Work
		var ok bool
		for {
			if b.stopping {
				b.mu.Unlock()
				return
			}
			w, ok = b.engine.NextWork()
			if ok {
				break
			}
			b.cond.Wait()
		}
		b.mu.Unlock()

		// Stage accounting: queue wait is enqueue (job release) → pop; the
		// per-kind stage histograms then cover pop → network sends done.
		popped := b.opts.Clock()
		b.obs.StageQueueWait.Observe(popped - w.Job.Release)
		b.obs.Trace(obsv.TraceEvent{Stage: obsv.StagePop, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: popped})
		switch w.Kind {
		case core.WorkDispatch:
			if popped > w.Job.Deadline {
				b.lateDispatches.Add(1)
				b.obs.LateDispatches.Inc()
			}
			b.dispatch(w)
			done := b.opts.Clock()
			b.obs.Dispatches.Inc()
			b.obs.StageDispatch.Observe(done - popped)
			b.obs.EndToEnd.Observe(done - w.Job.Release)
			b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageAck, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: done})
		case core.WorkReplicate:
			b.replicate(w)
			done := b.opts.Clock()
			b.obs.StageReplicate.Observe(done - popped)
			b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageAck, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: done})
		}
	}
}

// dispatch pushes the message to every subscriber of the topic, then runs
// the Table 3 Dispatch steps (flag + prune request).
func (b *Broker) dispatch(w core.Work) {
	b.subsMu.Lock()
	conns := append([]*transport.Conn(nil), b.subs[w.Msg.Topic]...)
	b.subsMu.Unlock()
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageDispatch, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: b.opts.Clock()})
	frame := &wire.Frame{Type: wire.TypeDispatch, Msg: w.Msg, Dispatched: b.opts.Clock()}
	for _, c := range conns {
		if err := c.Send(frame); err != nil {
			b.obs.DispatchSendErrors.Inc()
			b.log.Warn("dispatch send failed", "topic", w.Msg.Topic, "err", err)
			continue
		}
		b.obs.DispatchSends.Inc()
	}

	b.mu.Lock()
	co := b.engine.OnDispatched(w.Job)
	b.mu.Unlock()
	if co.SendPrune {
		if peer := b.peer(); peer != nil {
			if err := peer.Send(&wire.Frame{Type: wire.TypePrune, Topic: co.Topic, Seq: co.Seq}); err != nil {
				b.log.Warn("prune send failed", "err", err)
			} else {
				b.obs.PrunesSent.Inc()
			}
		}
	}
}

// replicate pushes a copy of the message to the Backup (Table 3 Replicate
// steps 2–3).
func (b *Broker) replicate(w core.Work) {
	peer := b.peer()
	if peer == nil {
		return // backup gone or never configured
	}
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageReplicate, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: b.opts.Clock()})
	frame := &wire.Frame{Type: wire.TypeReplicate, Msg: w.Msg, ArrivedPrimary: w.ArrivedPrimary}
	if err := peer.Send(frame); err != nil {
		b.obs.ReplicateErrors.Inc()
		b.log.Warn("replicate send failed", "topic", w.Msg.Topic, "err", err)
		return
	}
	b.obs.Replicates.Inc()
	b.mu.Lock()
	b.engine.OnReplicated(w.Job)
	b.mu.Unlock()
}

func (b *Broker) peer() *transport.Conn {
	b.peerMu.Lock()
	defer b.peerMu.Unlock()
	return b.peerConn
}

// dialPeer opens and greets one replication link to the Backup.
func (b *Broker) dialPeer() (*transport.Conn, error) {
	nc, err := b.opts.Network.Dial(b.opts.PeerAddr)
	if err != nil {
		return nil, err
	}
	conn := transport.NewConn(nc)
	conn.SetMeter(&b.meter)
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleBrokerPeer, Name: b.Addr()}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

func (b *Broker) setPeer(conn *transport.Conn) {
	b.peerMu.Lock()
	b.peerConn = conn
	b.peerMu.Unlock()
	b.log.Info("replication link up", "peer", b.opts.PeerAddr)
}

// servePeer drains the replication link's read side (poll/time replies)
// until it dies, then clears the peer. A dead Backup is not replaced within
// one run (the paper's scope is a single broker failure).
func (b *Broker) servePeer(ctx context.Context, conn *transport.Conn) {
	b.serveConn(ctx, conn)
	b.peerMu.Lock()
	if b.peerConn == conn {
		b.peerConn = nil
	}
	b.peerMu.Unlock()
}

// connectPeer dials the Backup with retries and installs the replication
// link.
func (b *Broker) connectPeer(ctx context.Context) {
	for ctx.Err() == nil {
		conn, err := b.dialPeer()
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
				continue
			}
		}
		b.setPeer(conn)
		b.servePeer(ctx, conn)
		return
	}
}

// watchPrimary runs the Backup's failure detector over a dedicated polling
// connection and promotes on crash (§IV-A).
func (b *Broker) watchPrimary(ctx context.Context) {
	var conn *transport.Conn
	for ctx.Err() == nil {
		nc, err := b.opts.Network.Dial(b.opts.PeerAddr)
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
				continue
			}
		}
		conn = transport.NewConn(nc)
		conn.SetMeter(&b.meter)
		break
	}
	if conn == nil {
		return
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleBrokerPeer, Name: b.Addr()}); err != nil {
		return
	}
	det, err := failover.New(b.opts.Detector, failover.ConnProbe(conn), b.promote)
	if err != nil {
		b.log.Error("detector init failed", "err", err)
		return
	}
	det.SetOnProbe(func(err error) {
		b.obs.DetectorProbes.Inc()
		if err != nil {
			b.obs.DetectorMisses.Inc()
			b.peerAlive.Store(false)
			return
		}
		b.peerAlive.Store(true)
	})
	if err := det.Run(ctx); err != nil && ctx.Err() == nil {
		b.log.Warn("detector stopped", "err", err)
	}
}

// promote executes the §IV-A recovery: the Backup becomes the new Primary
// and schedules dispatch jobs for all non-discarded Backup Buffer copies.
func (b *Broker) promote() {
	b.mu.Lock()
	if b.role == RolePrimary {
		b.mu.Unlock()
		return
	}
	b.role = RolePrimary
	b.engine.Promote()
	stats := b.engine.Stats()
	b.cond.Broadcast()
	b.mu.Unlock()
	close(b.promoted)
	b.obs.Promotions.Inc()
	b.obs.RecoveryJobs.Add(stats.RecoveryJobs)
	b.obs.RecoverySkipped.Add(stats.RecoverySkipped)
	now := b.opts.Clock()
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StagePromote, At: now})
	for i := uint64(0); i < stats.RecoveryJobs; i++ {
		b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageRecovery, At: now})
	}
	b.log.Info("promoted to primary",
		"recoveryJobs", stats.RecoveryJobs, "skipped", stats.RecoverySkipped)
}
