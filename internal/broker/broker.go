// Package broker is the real-time runtime of the FRAME architecture
// (paper Fig. 4): it hosts a core.Engine behind a network listener and a
// pool of delivery workers, in the same module split as the paper's
// implementation inside the TAO event service (§V):
//
//   - the accept/read loops play the Supplier Proxies + Message Proxy role
//     (each arriving Publish frame is stored and turned into jobs);
//   - the worker pool plays the Message Delivery module, its goroutines
//     acting as Dispatchers and Replicators ("a pool of generic threads,
//     with the total number of threads equal to three times the number of
//     CPU cores");
//   - subscriber connections play the Consumer Proxies.
//
// A broker starts as Primary (dispatching and replicating) or as Backup
// (absorbing replicas and polling the Primary); a Backup promotes itself
// into a new Primary when its failure detector fires, draining the pruned
// Backup Buffer per Table 3's Recovery procedure.
package broker

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clocksync"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/failover"
	"repro/internal/obsv"
	"repro/internal/queue"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/transport/submit"
	"repro/internal/wire"
)

// Role is the broker's fault-tolerance role.
type Role int

// Broker roles.
const (
	RolePrimary Role = iota + 1
	RoleBackup
)

// String returns the role label.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleBackup:
		return "backup"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Options configures a broker.
type Options struct {
	// Engine is the core configuration (policy, coordination, params).
	Engine core.Config
	// Role selects Primary or Backup duty at startup.
	Role Role
	// ListenAddr is where publishers, subscribers, and the peer connect.
	ListenAddr string
	// PeerAddr is the other broker: for a Primary, the Backup to replicate
	// to (empty means no backup); for a Backup, the Primary to poll.
	PeerAddr string
	// Network supplies listen/dial (TCP or in-process).
	Network transport.Network
	// Clock is the broker's timebase; all brokers and clients in one
	// deployment must be synchronized (see package clocksync).
	Clock clocksync.Clock
	// Workers sets the delivery pool size; zero means 3×GOMAXPROCS, the
	// paper's sizing. Workers are spread round-robin over the dispatch
	// lanes; the pool is raised to at least one worker per lane.
	Workers int
	// Lanes shards the engine's EDF queue and topic state into this many
	// parallel dispatch lanes (see core.Config.Lanes): topics hash onto
	// lanes, each lane has its own lock, condition variable, and workers,
	// and per-topic FIFO plus EDF-within-lane are preserved. Zero means
	// GOMAXPROCS under the EDF policy and 1 otherwise; 1 restores the
	// single global queue.
	Lanes int
	// BatchWindow enables write batching on broker-owned connections
	// (subscriber fan-out and the replication link): dispatch, replicate,
	// and prune frames coalesce for up to this long — or until
	// BatchMaxBytes are pending — and leave in one write. The window is
	// added latency on the data plane, so keep it below the minimum
	// per-topic slack. Zero disables batching.
	BatchWindow time.Duration
	// BatchMaxBytes is the flush-on-size threshold for BatchWindow
	// batching; zero means transport.DefaultBatchMaxBytes.
	BatchMaxBytes int
	// Detector tunes the Backup's failure detector; zero-value means
	// failover.DefaultConfig.
	Detector failover.Config
	// Topics are registered before the broker starts serving.
	Topics []spec.Topic
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
	// DiskBackupDir, when non-empty on a Backup, additionally persists
	// every replica to an append-only log in that directory (the paper's
	// Table 1 "local disk" strategy, offered as a belt-and-braces option)
	// and reloads surviving copies into the Backup Buffer at startup.
	DiskBackupDir string
	// DiskSync selects the log's durability; zero means diskstore.SyncNever.
	DiskSync diskstore.SyncPolicy
	// Obs receives runtime observability events (counters, stage latency
	// histograms, lifecycle traces). Nil means a private instrument set;
	// recording is always on — every instrument is an atomic add.
	Obs *obsv.BrokerMetrics
	// AdminAddr, when non-empty, binds an HTTP admin endpoint on that TCP
	// address serving /metrics (Prometheus text), /healthz (role, peer
	// liveness, queue depth), and /debug/pprof. The listener binds in New
	// (so AdminAddr() is dialable immediately) and serves from Start.
	AdminAddr string
	// ExtraGauges, when non-nil, contributes additional scrape-time samples
	// to /metrics — e.g. a fault injector's counters during chaos runs. It
	// is called on every scrape and must be safe for concurrent use.
	ExtraGauges func() []obsv.Sample
	// DisableZeroCopy turns off zero-copy receive: by default the broker's
	// session loops decode message payloads as aliases into each
	// connection's receive buffer (safe because a session handles one frame
	// fully before reading the next, and the engine's buffers copy what
	// they retain). Set to force a defensive copy per received frame, e.g.
	// while bisecting a suspected payload-ownership bug.
	DisableZeroCopy bool
	// EgressDepth sizes each subscriber's outbound ring (frames). Dispatch
	// enqueues into the ring and a per-subscriber writer goroutine drains it
	// with vectored writes, so a slow socket never blocks a dispatch lane.
	// Zero means transport.DefaultEgressDepth; negative disables the egress
	// path entirely and restores synchronous fan-out sends.
	EgressDepth int
	// EgressNoShed switches a full egress ring from the Li-aware shed/evict
	// policy to blocking backpressure (the dispatch worker waits for ring
	// space). Shedding is the default: it preserves lane isolation, and a
	// topic never loses more than its loss tolerance Li consecutively
	// before the subscriber is evicted instead.
	EgressNoShed bool
	// EgressWriteTimeout bounds each egress flush write; a subscriber socket
	// stalled longer than this fails the write and drops the subscriber.
	// Zero leaves egress writes unbounded (the ring + shed policy already
	// isolate the lanes).
	EgressWriteTimeout time.Duration
	// PeerWriteTimeout bounds each write on the Primary→Backup replication
	// link so a wedged Backup cannot block Replicator workers indefinitely.
	// Zero means DefaultPeerWriteTimeout; negative disables the bound.
	PeerWriteTimeout time.Duration
	// ShardEpoch, when non-nil, marks this broker as one shard of a cluster
	// and supplies the routing-table epoch it believes in (see package
	// cluster). A publish naming a topic the broker does not serve then
	// answers with a WrongShard redirect carrying that epoch — telling the
	// publisher its cached routing table is stale — instead of being
	// dropped as a configuration error. Must be safe for concurrent use.
	ShardEpoch func() uint64
	// IntakeDepth sizes each lane's lock-free publish intake ring (messages).
	// Publisher sessions validate the topic, stamp arrival, and push into the
	// ring without taking the lane lock; lane workers drain the ring into the
	// engine under the lock they already hold. Zero means DefaultIntakeDepth;
	// negative disables the intake and restores the locked publish path
	// (session goroutines call the engine under the lane mutex directly).
	IntakeDepth int
	// Flushers sizes the shared egress flusher pool: subscriber rings are
	// assigned round-robin to this many writer goroutines, each sweeping
	// every ready ring per wakeup. Zero means transport.DefaultFlushers;
	// negative restores one writer goroutine per subscriber. Ignored when
	// EgressDepth is negative.
	Flushers int
	// BusyPoll keeps idle lane workers and egress flushers spinning briefly
	// before parking, trading CPU for wakeup latency on latency-critical
	// deployments (-busy-poll).
	BusyPoll bool
	// NoUring disables the kernel-batched egress submission backend
	// (-uring=false): flushers keep the portable one-writev-per-connection
	// path instead of sweeping every ready ring into a single io_uring
	// submission. The zero value enables the backend — it degrades to the
	// portable path automatically on kernels without io_uring, under
	// seccomp policies that refuse it, or with FRAME_NO_URING set.
	NoUring bool
	// PinFlushers pins egress flusher i (and any escalation replacement
	// taking over its ring) to CPU PinFlushers[i mod len] via LockOSThread
	// + sched_setaffinity (-pin-flushers; Linux only, no-op elsewhere).
	PinFlushers []int
	// PinLanes pins the lane workers of dispatch lane i to CPU
	// PinLanes[i mod len] (-pin-lanes; Linux only, no-op elsewhere). With
	// PinFlushers on disjoint cores this parks the delivery threads and
	// the egress writers on dedicated cores for the busy-poll
	// configuration.
	PinLanes []int
	// Durable turns on the "ACK = durable" publish mode (-durable): every
	// accepted publish is appended to a segmented log in LogDir through a
	// group-commit writer, and the publisher's PubAck is sent only after
	// the fsync covering the record completes. Dispatched messages are
	// marked with prune records so a restart replays the log without
	// re-dispatching them (Table 3 discipline). This is the local-disk
	// strategy the paper's Table 1 rejects for latency, offered alongside
	// the in-memory pair so the trade is measurable.
	Durable bool
	// LogDir is the durable mode's segment directory; required with Durable.
	LogDir string
	// FsyncInterval spaces group-commit fsyncs: publishers arriving within
	// one window share a single fsync. Zero means DefaultFsyncInterval;
	// negative degenerates to one fsync per publish (SyncAlways, the slow
	// bound). Ignored without Durable.
	FsyncInterval time.Duration
	// LogSegmentBytes, LogRetainBytes, and LogRetainAge shape the durable
	// segment log (zero = diskstore defaults, negative retention = keep
	// everything). Ignored without Durable.
	LogSegmentBytes int64
	LogRetainBytes  int64
	LogRetainAge    time.Duration
	// HoldRecovery defers dispatching the log-replayed backlog until
	// RecoverFromLog is called, for orchestrations (chaos runs, tests)
	// that must reattach subscribers before the recovered messages drain.
	// Without it Start schedules recovery immediately.
	HoldRecovery bool
}

// DefaultFsyncInterval is the group-commit window when Options.FsyncInterval
// is zero: long enough that concurrent publishers share fsyncs, short enough
// to stay well inside edge-tier deadlines.
const DefaultFsyncInterval = 2 * time.Millisecond

// DefaultPeerWriteTimeout is the replication-link write-stall bound when
// Options.PeerWriteTimeout is zero: generous against transient socket
// pressure (two orders above Lemma 1's ΔBB scale) but finite, so a wedged
// Backup surfaces as a dead link instead of a hung worker pool.
const DefaultPeerWriteTimeout = 2 * time.Second

// DefaultIntakeDepth is the per-lane publish intake ring size when
// Options.IntakeDepth is zero: deep enough that workers drain in large
// batches under load, small enough that a stalled lane applies backpressure
// to its publishers instead of buffering unboundedly.
const DefaultIntakeDepth = 1024

// intakeDrainBatch bounds how many intake messages a worker folds into the
// engine per lock acquisition, so one publish burst cannot starve the
// dispatch side of the same lane lock.
const intakeDrainBatch = 256

// intakeKeepCap caps the payload storage an intake slot keeps across laps —
// the same discipline as the engine's ring slots: one jumbo payload must
// not pin a jumbo buffer forever.
const intakeKeepCap = 4 << 10

// workerSpins is the lane worker busy-poll probe budget before parking
// (Options.BusyPoll).
const workerSpins = 4096

// Broker runs one FRAME broker.
type Broker struct {
	opts    Options
	log     *slog.Logger
	ln      net.Listener
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	obs     *obsv.BrokerMetrics
	admin   *obsv.Admin
	meter   transport.Meter // aggregate traffic over every conn this broker owns
	started time.Time

	// peerAlive reflects the Backup's view of the Primary: the last failure
	// detector probe succeeded. Primaries report the replication link instead.
	peerAlive atomic.Bool

	// mu guards role only. The engine itself is guarded per lane: a call
	// naming a topic runs under that topic's lane lock, and whole-engine
	// transitions (Promote) take every lane lock — see the core package
	// comment for the contract.
	mu       sync.Mutex
	engine   *core.Engine
	role     Role
	promoted chan struct{} // closed on promotion
	stopping atomic.Bool

	lanes []*dispatchLane

	// pool is the shared egress flusher set subscriber rings drain through;
	// nil when Options.Flushers is negative (per-subscriber writers) or the
	// egress path is off.
	pool *transport.FlusherPool

	subsMu     sync.Mutex
	subs       map[spec.TopicID][]*subscriber
	subsByConn map[*transport.Conn]*subscriber

	// egress aggregates the counters of every subscriber's outbound ring;
	// peerStalls counts replication writes failed by the peer write bound.
	egress     transport.EgressMeter
	peerStalls atomic.Uint64

	// lateDispatches counts dispatch jobs that started executing after
	// their absolute deadline — the runtime-observable form of a Lemma 2
	// violation. Under admission-respecting load this stays zero.
	lateDispatches atomic.Uint64

	peerMu   sync.Mutex
	peerConn *transport.Conn // Primary→Backup replication link

	diskMu sync.Mutex
	disk   *diskstore.Log // optional durable replica log (Backup role)

	// committer owns the durable mode's segmented log (nil without
	// Options.Durable): sessions enqueue publish records and park on the
	// group-commit waiter; dispatch workers enqueue fire-and-forget prune
	// markers. recoveredMsgs/recoveredPrunes count what the log replayed
	// at startup; recoverOnce gates the one-shot backlog dispatch.
	committer       *diskstore.Committer
	durableAcks     atomic.Uint64
	recoverOnce     sync.Once
	recoveredMsgs   int
	recoveredPrunes int
}

// subscriber is one fan-out target: the session connection plus (when the
// egress path is enabled) its outbound ring. eg is nil only when
// Options.EgressDepth is negative; the dispatch path then sends
// synchronously on conn as older broker versions did.
type subscriber struct {
	conn *transport.Conn
	eg   *transport.Egress
}

// egressOn reports whether dispatch fan-out goes through per-subscriber
// egress rings.
func (b *Broker) egressOn() bool { return b.opts.EgressDepth >= 0 }

// intakeOn reports whether publishes go through the lock-free lane intake.
func (b *Broker) intakeOn() bool { return b.opts.IntakeDepth >= 0 }

// peerWriteStall resolves Options.PeerWriteTimeout.
func (b *Broker) peerWriteStall() time.Duration {
	switch {
	case b.opts.PeerWriteTimeout > 0:
		return b.opts.PeerWriteTimeout
	case b.opts.PeerWriteTimeout == 0:
		return DefaultPeerWriteTimeout
	default:
		return 0
	}
}

// dispatchLane is one shard of the delivery path: its mutex guards the
// lane's segment of the job queue and the ring-buffer state of every topic
// hashing to it, its intake ring carries publishes from session goroutines
// to the lane's workers without that mutex, its parker wakes those workers,
// and its meters feed the per-lane observability gauges.
type dispatchLane struct {
	mu sync.Mutex
	// parker sleeps the lane's idle workers; publishers unpark after making
	// work visible (an intake push or, on the legacy path, an engine push).
	parker *queue.Parker
	// intake is the lock-free publish handoff (nil when Options.IntakeDepth
	// is negative): producers fill slots concurrently, workers drain under
	// mu via drainIntakeLocked.
	intake *queue.MPSC[intakeMsg]
	// intakeStalls counts publishes that found the intake ring full and had
	// to spin — sustained growth means the lane's workers are the bottleneck.
	intakeStalls atomic.Uint64
	// wait records enqueue→pop queue wait for jobs popped from this lane;
	// pops counts them. Both are scrape-safe atomics.
	wait *obsv.Histogram
	pops atomic.Uint64
}

// intakeMsg is one publish in flight between a session goroutine and its
// lane worker. payload is the slot-owned copy of the wire payload (which
// aliases the session's receive buffer and dies at the next read); it is
// recycled across ring laps like the engine's own buffer slots.
type intakeMsg struct {
	msg     wire.Message // msg.Payload points into payload
	payload []byte
	now     time.Duration // arrival stamp, taken before the push
}

// lane returns the dispatch lane owning the topic's state.
func (b *Broker) lane(id spec.TopicID) *dispatchLane {
	return b.lanes[b.engine.LaneFor(id)]
}

// lockAllLanes acquires every lane lock in index order (the one rule that
// keeps multi-lane acquisition deadlock-free: workers only ever hold one).
func (b *Broker) lockAllLanes() {
	for _, l := range b.lanes {
		l.mu.Lock()
	}
}

func (b *Broker) unlockAllLanes() {
	for i := len(b.lanes) - 1; i >= 0; i-- {
		b.lanes[i].mu.Unlock()
	}
}

// New creates a broker, registers its topics, and binds its listener (so
// the address is dialable when New returns), but serves nothing until Run.
func New(opts Options) (*Broker, error) {
	if opts.Network == nil {
		return nil, errors.New("broker: nil network")
	}
	if opts.Clock == nil {
		return nil, errors.New("broker: nil clock")
	}
	if opts.Role != RolePrimary && opts.Role != RoleBackup {
		return nil, fmt.Errorf("broker: bad role %d", int(opts.Role))
	}
	if opts.Workers == 0 {
		opts.Workers = 3 * runtime.GOMAXPROCS(0)
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("broker: negative workers %d", opts.Workers)
	}
	if opts.Lanes < 0 {
		return nil, fmt.Errorf("broker: negative lanes %d", opts.Lanes)
	}
	if opts.Lanes == 0 {
		if opts.Engine.Policy == queue.PolicyEDF {
			opts.Lanes = runtime.GOMAXPROCS(0)
		} else {
			// FCFS is a global arrival order; sharding would change it.
			opts.Lanes = 1
		}
	}
	if opts.Workers < opts.Lanes {
		// Every lane needs a dedicated worker or its jobs starve.
		opts.Workers = opts.Lanes
	}
	if opts.BatchWindow < 0 {
		return nil, fmt.Errorf("broker: negative batch window %v", opts.BatchWindow)
	}
	if opts.Detector == (failover.Config{}) {
		opts.Detector = failover.DefaultConfig()
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	engineCfg := opts.Engine
	// A Primary without a peer, and any Backup, must not generate
	// replication jobs.
	if opts.Role == RolePrimary && opts.PeerAddr == "" {
		engineCfg.HasBackup = false
	}
	if opts.Role == RoleBackup {
		engineCfg.HasBackup = false
	}
	// Queue meters let the admin endpoint report depth without the engine
	// lock; the atomics are cheap enough to leave on unconditionally.
	engineCfg.MeterQueue = true
	engineCfg.Lanes = opts.Lanes
	engine, err := core.New(engineCfg)
	if err != nil {
		return nil, err
	}
	for _, t := range opts.Topics {
		if err := engine.AddTopic(t); err != nil {
			return nil, fmt.Errorf("broker: %w", err)
		}
	}
	ln, err := opts.Network.Listen(opts.ListenAddr)
	if err != nil {
		return nil, err
	}
	obs := opts.Obs
	if obs == nil {
		obs = obsv.NewBrokerMetrics()
	}
	b := &Broker{
		opts:       opts,
		log:        opts.Logger.With("broker", opts.ListenAddr, "role", opts.Role.String()),
		ln:         ln,
		obs:        obs,
		started:    time.Now(),
		engine:     engine,
		role:       opts.Role,
		promoted:   make(chan struct{}),
		subs:       make(map[spec.TopicID][]*subscriber),
		subsByConn: make(map[*transport.Conn]*subscriber),
	}
	b.lanes = make([]*dispatchLane, engine.Lanes())
	intakeDepth := opts.IntakeDepth
	if intakeDepth == 0 {
		intakeDepth = DefaultIntakeDepth
	}
	for i := range b.lanes {
		l := &dispatchLane{wait: obsv.NewHistogram(), parker: queue.NewParker()}
		if intakeDepth > 0 {
			l.intake = queue.NewMPSC[intakeMsg](intakeDepth)
		}
		b.lanes[i] = l
	}
	if opts.AdminAddr != "" {
		admin, err := obsv.NewAdmin(opts.AdminAddr, obs, b.Health, b.scrapeGauges)
		if err != nil {
			ln.Close()
			return nil, err
		}
		b.admin = admin
	}
	if opts.Role == RoleBackup && opts.DiskBackupDir != "" {
		policy := opts.DiskSync
		if policy == 0 {
			policy = diskstore.SyncNever
		}
		disk, recovered, err := diskstore.Open(opts.DiskBackupDir, "replicas.log", policy)
		if err != nil {
			ln.Close()
			if b.admin != nil {
				b.admin.Close()
			}
			return nil, fmt.Errorf("broker: disk backup: %w", err)
		}
		b.disk = disk
		reloaded := 0
		for _, m := range recovered {
			// Replicas for topics no longer configured are skipped.
			if err := b.engine.OnReplica(m, 0); err == nil {
				reloaded++
			}
		}
		if reloaded > 0 {
			b.log.Info("reloaded persisted replicas", "count", reloaded)
		}
	}
	if opts.Durable {
		if opts.LogDir == "" {
			ln.Close()
			if b.admin != nil {
				b.admin.Close()
			}
			return nil, errors.New("broker: durable mode needs a log dir")
		}
		seg, rep, err := diskstore.OpenSegmented(opts.LogDir, diskstore.SegmentOptions{
			SegmentBytes: opts.LogSegmentBytes,
			RetainBytes:  opts.LogRetainBytes,
			RetainAge:    opts.LogRetainAge,
		})
		if err != nil {
			ln.Close()
			if b.admin != nil {
				b.admin.Close()
			}
			return nil, fmt.Errorf("broker: durable log: %w", err)
		}
		interval := opts.FsyncInterval
		if interval == 0 {
			interval = DefaultFsyncInterval
		}
		b.committer = diskstore.NewCommitter(seg, interval)
		// Replay in log order: messages land in the Backup Buffers (the
		// same rings §IV-A promotion drains), prune records mark the ones
		// a previous life already dispatched. The backlog is scheduled by
		// RecoverFromLog, not here, so subscribers can reattach first.
		for _, m := range rep.Messages {
			if err := b.engine.OnReplica(m, 0); err == nil {
				b.recoveredMsgs++
			}
		}
		for _, pr := range rep.Prunes {
			b.engine.OnPrune(pr.Topic, pr.Seq)
			b.recoveredPrunes++
		}
		if b.recoveredMsgs > 0 || b.recoveredPrunes > 0 {
			b.log.Info("replayed durable log",
				"messages", b.recoveredMsgs, "prunes", b.recoveredPrunes)
		}
	}
	if b.egressOn() && opts.Flushers >= 0 {
		b.pool = transport.NewFlusherPool(transport.FlusherPoolConfig{
			Flushers:     opts.Flushers,
			BusyPoll:     opts.BusyPoll,
			KernelSubmit: !opts.NoUring,
			PinCPUs:      opts.PinFlushers,
		})
	}
	return b, nil
}

// RecoverFromLog schedules dispatch of the durable log's replayed backlog:
// every non-pruned message goes back through the normal EDF delivery path
// as a recovery dispatch (never re-dispatching what a prune record marked —
// Table 3, Recovery step 1). Start calls it automatically unless
// Options.HoldRecovery; it is idempotent and a no-op without Durable.
func (b *Broker) RecoverFromLog() {
	if b.committer == nil {
		return
	}
	b.recoverOnce.Do(func() {
		b.lockAllLanes()
		b.engine.ScheduleRecovery()
		b.unlockAllLanes()
		for _, l := range b.lanes {
			l.parker.Unpark()
		}
		st := b.engine.Stats()
		b.log.Info("scheduled recovery from durable log",
			"jobs", st.RecoveryJobs, "skipped", st.RecoverySkipped)
	})
}

// Addr returns the bound listen address.
func (b *Broker) Addr() string { return b.ln.Addr().String() }

// AdminAddr returns the bound admin endpoint address, empty when no
// Options.AdminAddr was configured.
func (b *Broker) AdminAddr() string {
	if b.admin == nil {
		return ""
	}
	return b.admin.Addr()
}

// Obs returns the broker's instrument set.
func (b *Broker) Obs() *obsv.BrokerMetrics { return b.obs }

// Health snapshots the broker's liveness for /healthz: current role, peer
// liveness (replication link up for a Primary, last probe answered for a
// Backup), and job queue depth.
func (b *Broker) Health() obsv.Health {
	role := b.Role()
	peerUp := false
	if b.opts.PeerAddr != "" {
		if b.opts.Role == RoleBackup && role == RoleBackup {
			peerUp = b.peerAlive.Load()
		} else {
			peerUp = b.peer() != nil
		}
	}
	es := b.egress.Snapshot()
	queued, nsubs := b.egressQueued()
	return obsv.Health{
		Role:            role.String(),
		Addr:            b.Addr(),
		PeerAddr:        b.opts.PeerAddr,
		PeerConnected:   peerUp,
		Promoted:        b.opts.Role == RoleBackup && role == RolePrimary,
		QueueDepth:      b.engine.QueueMeter().Depth(),
		LateDispatches:  b.lateDispatches.Load(),
		UptimeSeconds:   time.Since(b.started).Seconds(),
		EgressQueued:    queued,
		EgressSubs:      nsubs,
		EgressShed:      es.Shed,
		EgressEvictions: es.Evictions,
		EgressWriteErrs: es.WriteErrs,
	}
}

// egressQueued sums the frames currently queued across every subscriber
// ring, and counts live subscriber sessions.
func (b *Broker) egressQueued() (queued, subs int) {
	b.subsMu.Lock()
	defer b.subsMu.Unlock()
	for _, s := range b.subsByConn {
		subs++
		if s.eg != nil {
			queued += s.eg.Depth()
		}
	}
	return queued, subs
}

// EgressStats snapshots the aggregate egress counters across all subscriber
// rings, merging in the flusher pool's kernel-submission counters so
// WriteSyscalls totals every kernel crossing spent writing frames
// (sequential writev calls + io_uring_enter calls).
func (b *Broker) EgressStats() transport.EgressStats {
	s := b.egress.Snapshot()
	if b.pool != nil {
		ps := b.pool.Stats()
		s.SubmittedBatches = ps.Sweeps
		s.SweepConns = ps.SweepConns
		s.WriteSyscalls += ps.Syscalls
		s.KernelSubmit = ps.Kernel
	}
	return s
}

// PeerStalls reports replication writes failed by the peer write-stall bound.
func (b *Broker) PeerStalls() uint64 { return b.peerStalls.Load() }

// scrapeGauges contributes the scrape-time samples to /metrics: state the
// broker derives on demand (role, queue depth, transport totals) rather
// than maintaining as counters. Everything here reads atomics or short
// locks, so scrapes do not perturb the delivery path.
func (b *Broker) scrapeGauges() []obsv.Sample {
	qm := b.engine.QueueMeter()
	role := b.Role()
	samples := []obsv.Sample{
		{Name: "frame_role", Label: fmt.Sprintf("role=%q", role.String()), Value: 1,
			Help: "Current fault-tolerance role (1 for the active label)."},
		{Name: "frame_uptime_seconds", Value: time.Since(b.started).Seconds(),
			Help: "Wall time since the broker was created."},
		{Name: "frame_queue_depth", Value: float64(qm.Depth()),
			Help: "Jobs pending in the job queue."},
		{Name: "frame_queue_depth_max", Value: float64(qm.MaxDepth()),
			Help: "High-water job queue depth since start."},
		{Name: "frame_queue_pushes_total", Label: `kind="dispatch"`, Counter: true,
			Value: float64(qm.Pushes(queue.KindDispatch)), Help: "Jobs pushed, by kind."},
		{Name: "frame_queue_pushes_total", Label: `kind="replicate"`, Counter: true,
			Value: float64(qm.Pushes(queue.KindReplicate)), Help: "Jobs pushed, by kind."},
		{Name: "frame_queue_pops_total", Label: `kind="dispatch"`, Counter: true,
			Value: float64(qm.Pops(queue.KindDispatch)), Help: "Jobs popped, by kind."},
		{Name: "frame_queue_pops_total", Label: `kind="replicate"`, Counter: true,
			Value: float64(qm.Pops(queue.KindReplicate)), Help: "Jobs popped, by kind."},
		{Name: "frame_transport_frames_sent_total", Counter: true,
			Value: float64(b.meter.FramesSent.Load()), Help: "Wire frames sent on broker-owned connections."},
		{Name: "frame_transport_bytes_sent_total", Counter: true,
			Value: float64(b.meter.BytesSent.Load()), Help: "Wire bytes sent on broker-owned connections."},
		{Name: "frame_transport_frames_recv_total", Counter: true,
			Value: float64(b.meter.FramesRecv.Load()), Help: "Wire frames received on broker-owned connections."},
		{Name: "frame_transport_bytes_recv_total", Counter: true,
			Value: float64(b.meter.BytesRecv.Load()), Help: "Wire bytes received on broker-owned connections."},
		{Name: "frame_lanes", Value: float64(len(b.lanes)),
			Help: "Configured dispatch lane count."},
	}
	es := b.egress.Snapshot()
	queued, nsubs := b.egressQueued()
	samples = append(samples,
		obsv.Sample{Name: "frame_egress_enqueued_total", Counter: true,
			Value: float64(es.Enqueued), Help: "Frames accepted into subscriber egress rings."},
		obsv.Sample{Name: "frame_egress_flushed_total", Counter: true,
			Value: float64(es.Flushed), Help: "Frames written to subscriber sockets by egress writers."},
		obsv.Sample{Name: "frame_egress_batches_total", Counter: true,
			Value: float64(es.Batches), Help: "Vectored egress writes issued (frames coalesced per syscall = flushed/batches)."},
		obsv.Sample{Name: "frame_egress_shed_total", Counter: true,
			Value: float64(es.Shed), Help: "Frames dropped by the Li-aware shed policy on full rings."},
		obsv.Sample{Name: "frame_egress_evictions_total", Counter: true,
			Value: float64(es.Evictions), Help: "Subscribers evicted for exceeding a topic's loss tolerance in consecutive drops."},
		obsv.Sample{Name: "frame_egress_stalls_total", Counter: true,
			Value: float64(es.Stalls), Help: "Egress writes failed by the write-stall deadline."},
		obsv.Sample{Name: "frame_egress_write_errors_total", Counter: true,
			Value: float64(es.WriteErrs), Help: "Failed egress flush writes (stalls included)."},
		obsv.Sample{Name: "frame_egress_queued", Value: float64(queued),
			Help: "Frames currently queued across subscriber egress rings."},
		obsv.Sample{Name: "frame_egress_subscribers", Value: float64(nsubs),
			Help: "Live subscriber sessions."},
		obsv.Sample{Name: "frame_peer_write_stalls_total", Counter: true,
			Value: float64(b.peerStalls.Load()), Help: "Replication writes failed by the peer write-stall bound."},
	)
	if b.pool != nil {
		ps := b.pool.Stats()
		kernel := 0.0
		if ps.Kernel {
			kernel = 1
		}
		samples = append(samples,
			obsv.Sample{Name: "frame_egress_flushers", Value: float64(b.pool.Size()),
				Help: "Shared egress flusher goroutines (0 when per-subscriber writers are in use)."},
			obsv.Sample{Name: "frame_egress_escalations_total", Counter: true,
				Value: float64(b.pool.Escalations()), Help: "Replacement flushers spawned to route around wedged subscriber writes."},
			obsv.Sample{Name: "frame_egress_uring", Value: kernel,
				Help: "1 when the kernel-batched (io_uring) egress submission backend is active."},
			obsv.Sample{Name: "frame_egress_submitted_batches_total", Counter: true,
				Value: float64(ps.Sweeps), Help: "Kernel-batched sweep submissions (many connections per submission)."},
			obsv.Sample{Name: "frame_egress_sweep_conns_total", Counter: true,
				Value: float64(ps.SweepConns), Help: "Connection writes carried by kernel-batched sweeps (per-sweep batching = sweep_conns/submitted_batches)."},
			obsv.Sample{Name: "frame_egress_write_syscalls_total", Counter: true,
				Value: float64(es.WriteSyscalls + ps.Syscalls),
				Help:  "Kernel crossings spent writing egress frames: sequential writev calls plus io_uring_enter calls."},
		)
	} else {
		samples = append(samples,
			obsv.Sample{Name: "frame_egress_write_syscalls_total", Counter: true,
				Value: float64(es.WriteSyscalls),
				Help:  "Kernel crossings spent writing egress frames: sequential writev calls plus io_uring_enter calls."},
		)
	}
	for i, l := range b.lanes {
		label := fmt.Sprintf("lane=%q", fmt.Sprint(i))
		samples = append(samples,
			obsv.Sample{Name: "frame_lane_queue_depth", Label: label,
				Value: float64(qm.LaneDepth(i)), Help: "Jobs pending, by dispatch lane."},
			obsv.Sample{Name: "frame_lane_pops_total", Label: label, Counter: true,
				Value: float64(l.pops.Load()), Help: "Jobs popped, by dispatch lane."},
			obsv.Sample{Name: "frame_lane_queue_wait_p99_seconds", Label: label,
				Value: l.wait.Quantile(0.99).Seconds(), Help: "p99 enqueue-to-pop wait, by dispatch lane."},
		)
		if l.intake != nil {
			samples = append(samples,
				obsv.Sample{Name: "frame_lane_intake_depth", Label: label,
					Value: float64(l.intake.Len()), Help: "Publishes queued in the lock-free lane intake, by dispatch lane."},
				obsv.Sample{Name: "frame_lane_intake_stalls_total", Label: label, Counter: true,
					Value: float64(l.intakeStalls.Load()), Help: "Publishes that found the lane intake ring full, by dispatch lane."},
			)
		}
	}
	if b.committer != nil {
		cs := b.committer.Stats()
		samples = append(samples,
			obsv.Sample{Name: "frame_durable_records_total", Counter: true,
				Value: float64(cs.Records), Help: "Records (publishes + prune markers) appended to the durable log."},
			obsv.Sample{Name: "frame_durable_batches_total", Counter: true,
				Value: float64(cs.Batches), Help: "Group-commit batches written to the durable log."},
			obsv.Sample{Name: "frame_durable_fsyncs_total", Counter: true,
				Value: float64(cs.Fsyncs), Help: "fsync calls issued by the group-commit writer."},
			obsv.Sample{Name: "frame_durable_pending", Value: float64(cs.Pending),
				Help: "Records enqueued for the durable log but not yet on stable storage."},
			obsv.Sample{Name: "frame_durable_segments", Value: float64(cs.Segments),
				Help: "Live durable log segments on disk."},
			obsv.Sample{Name: "frame_durable_log_bytes", Value: float64(cs.Bytes),
				Help: "Total bytes across live durable log segments."},
			obsv.Sample{Name: "frame_durable_acks_total", Counter: true,
				Value: float64(b.durableAcks.Load()), Help: "PubAcks sent after a publish reached stable storage."},
		)
	}
	if b.opts.ExtraGauges != nil {
		samples = append(samples, b.opts.ExtraGauges()...)
	}
	return samples
}

// SetPeerAddr points the broker at its peer after construction but before
// Start — for clusters where both brokers bind ephemeral ports, so neither
// address is known until both brokers exist. Pass a non-empty placeholder
// PeerAddr to New so the engine keeps its replication duty, then fix it up
// here once the peer's Addr() is known.
func (b *Broker) SetPeerAddr(addr string) { b.opts.PeerAddr = addr }

// Role returns the broker's current role (Backup becomes Primary after
// promotion).
func (b *Broker) Role() Role {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.role
}

// Promoted returns a channel closed when a Backup promotes itself.
func (b *Broker) Promoted() <-chan struct{} { return b.promoted }

// Stats snapshots the engine counters. The counters are atomics, so the
// snapshot is safe — and lock-free — while lane workers are mutating them.
func (b *Broker) Stats() core.Stats { return b.engine.Stats() }

// Lanes returns the number of dispatch lanes the broker is running.
func (b *Broker) Lanes() int { return len(b.lanes) }

// LateDispatches reports dispatch jobs that began executing past their
// deadline since the broker started.
func (b *Broker) LateDispatches() uint64 { return b.lateDispatches.Load() }

// Start launches the accept loop, the delivery workers, and the role's
// background duties. It returns immediately; Stop shuts everything down.
func (b *Broker) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	b.cancel = cancel

	if b.admin != nil {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			if err := b.admin.Serve(); err != nil {
				b.log.Warn("admin endpoint stopped", "err", err)
			}
		}()
		b.log.Info("admin endpoint up", "addr", b.admin.Addr())
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.acceptLoop(ctx)
	}()
	for i := 0; i < b.opts.Workers; i++ {
		lane := i % len(b.lanes) // round-robin: every lane gets ≥ 1 worker
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.workerLoop(lane)
		}()
	}
	if b.opts.Role == RolePrimary && b.opts.PeerAddr != "" {
		// Dial the Backup before workers can pop replication jobs: both
		// listeners are bound in New, so this normally succeeds at once.
		// On failure the background loop keeps retrying.
		conn, err := b.dialPeer()
		if err == nil {
			b.setPeer(conn)
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.servePeer(ctx, conn)
			}()
		} else {
			b.log.Warn("initial backup dial failed; retrying", "err", err)
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				b.connectPeer(ctx)
			}()
		}
	}
	if b.opts.Role == RoleBackup && b.opts.PeerAddr != "" {
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.watchPrimary(ctx)
		}()
	}
	if b.opts.Durable && !b.opts.HoldRecovery {
		b.RecoverFromLog()
	}
}

// Stop shuts the broker down and waits for all goroutines.
func (b *Broker) Stop() { b.shutdown(true) }

// Kill fail-stops the broker for fault injection: the same teardown as
// Stop, except a durable committer is crashed rather than drained —
// queued log records and prune markers are lost exactly as a process kill
// would lose them, and only earlier fsynced batches survive on disk.
func (b *Broker) Kill() { b.shutdown(false) }

func (b *Broker) shutdown(drain bool) {
	if b.cancel != nil {
		b.cancel()
	}
	b.stopping.Store(true)
	for _, l := range b.lanes {
		// Workers park with a ready() that re-checks stopping under the
		// parker's own mutex, so this wakeup cannot be missed.
		l.parker.Unpark()
	}
	b.ln.Close()
	if b.admin != nil {
		if err := b.admin.Close(); err != nil {
			b.log.Warn("admin close failed", "err", err)
		}
	}
	b.peerMu.Lock()
	if b.peerConn != nil {
		b.peerConn.Close()
	}
	b.peerMu.Unlock()
	b.closeSubscribers()
	if b.pool != nil {
		// Every registered egress was closed and waited above (addSubscriber
		// refuses registrations once stopping is set), so the pool drains
		// clean.
		b.pool.Close()
	}
	b.wg.Wait()
	b.diskMu.Lock()
	if b.disk != nil {
		if err := b.disk.Close(); err != nil {
			b.log.Warn("disk backup close failed", "err", err)
		}
		b.disk = nil
	}
	b.diskMu.Unlock()
	if b.committer != nil {
		// After wg.Wait no session or worker can enqueue again. A drain
		// (Stop) commits what is queued and seals the log; a crash (Kill)
		// abandons the queue the way a dead process would.
		if !drain {
			b.committer.Crash()
		} else if err := b.committer.Close(); err != nil {
			b.log.Warn("durable log close failed", "err", err)
		}
	}
}

func (b *Broker) closeSubscribers() {
	b.subsMu.Lock()
	all := make([]*subscriber, 0, len(b.subsByConn))
	for _, s := range b.subsByConn {
		all = append(all, s)
	}
	b.subsMu.Unlock()
	// Close egresses first so their writers stop pulling frames, then the
	// conns (unsticking any in-flight write), then wait for every writer.
	// The session goroutines' own removeSubscriber/Wait defers run after
	// this, against already-stopped egresses — Wait is multi-waiter safe.
	for _, s := range all {
		if s.eg != nil {
			s.eg.Close()
		}
		s.conn.Close()
	}
	for _, s := range all {
		if s.eg != nil {
			s.eg.Wait()
		}
	}
}

// acceptLoop admits sessions until the listener closes.
func (b *Broker) acceptLoop(ctx context.Context) {
	for {
		nc, err := b.ln.Accept()
		if err != nil {
			if ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				b.log.Warn("accept failed", "err", err)
			}
			return
		}
		conn := transport.NewConn(nc)
		conn.SetMeter(&b.meter)
		conn.SetZeroCopy(!b.opts.DisableZeroCopy)
		b.enableBatching(conn)
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.serveConn(ctx, conn)
		}()
	}
}

// serveConn runs one session read loop. The first frame should be a Hello;
// untyped sessions are served generically anyway (poll/time replies). One
// pooled frame serves the whole session: handleFrame consumes each frame
// fully (anything retained — ring-buffer entries, disk log records — is
// copied by its owner) before the next RecvInto overwrites it.
func (b *Broker) serveConn(ctx context.Context, conn *transport.Conn) {
	defer func() {
		// Unregister before closing so no new frames enqueue, then close the
		// conn (failing any in-flight write) and wait for the egress writer —
		// the broker's WaitGroup thus transitively waits for every writer.
		eg := b.removeSubscriber(conn)
		if eg != nil {
			eg.Close()
		}
		conn.Close()
		if eg != nil {
			eg.Wait()
		}
	}()
	// Ensure blocked reads unstick on shutdown.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	f := transport.GetFrame()
	defer transport.PutFrame(f)
	for {
		if err := conn.RecvInto(f); err != nil {
			return
		}
		if err := b.handleFrame(conn, f); err != nil {
			b.log.Warn("session error", "err", err, "type", f.Type.String())
			return
		}
	}
}

func (b *Broker) handleFrame(conn *transport.Conn, f *wire.Frame) error {
	switch f.Type {
	case wire.TypeHello:
		return nil // roles are implicit in subsequent traffic
	case wire.TypePublish, wire.TypeResend:
		if err := b.onPublish(conn, f.Msg); err != nil {
			// In a cluster, an unknown topic means the publisher routed on a
			// stale table: answer with a WrongShard redirect so it refreshes
			// and re-homes the topic. Outside a cluster it is the sender's
			// configuration error, not a protocol fault: drop the message but
			// keep the session, which may carry other, valid topics.
			if b.opts.ShardEpoch != nil && errors.Is(err, core.ErrUnknownTopic) {
				return conn.Send(&wire.Frame{Type: wire.TypeWrongShard, Topic: f.Msg.Topic, Epoch: b.opts.ShardEpoch()})
			}
			b.log.Warn("publish rejected", "topic", f.Msg.Topic, "err", err)
		}
		return nil
	case wire.TypeSubscribe:
		b.addSubscriber(conn, f.Topics)
		return nil
	case wire.TypeReplicate:
		if err := b.onReplica(f); err != nil {
			b.log.Warn("replica rejected", "topic", f.Msg.Topic, "err", err)
		}
		return nil
	case wire.TypePrune:
		b.obs.PrunesReceived.Inc()
		b.obs.Trace(obsv.TraceEvent{Stage: obsv.StagePrune, Topic: uint64(f.Topic), Seq: f.Seq, At: b.opts.Clock()})
		lane := b.lane(f.Topic)
		lane.mu.Lock()
		b.engine.OnPrune(f.Topic, f.Seq)
		lane.mu.Unlock()
		return nil
	case wire.TypePoll:
		return conn.Send(&wire.Frame{Type: wire.TypePollReply, Nonce: f.Nonce})
	case wire.TypeTimeReq:
		return clocksync.Respond(conn, b.opts.Clock, f)
	case wire.TypePollReply, wire.TypeTimeResp:
		return nil // stray replies on shared links are harmless
	default:
		return fmt.Errorf("broker: unexpected frame %v", f.Type)
	}
}

// onPublish is the Message Proxy path: store, generate jobs, wake the
// topic's lane.
//
// With the intake on (the default), the session goroutine never takes the
// lane lock: it validates the topic lock-free (keeping the unknown-topic /
// WrongShard answer synchronous), stamps arrival, pushes into the lane's
// MPSC ring — copying the payload into slot-owned storage, since the wire
// payload aliases the session's receive buffer — and unparks the lane's
// workers, which fold the ring into the engine under the lock they already
// hold. The engine therefore observes the publish (Stats().Published, queue
// depth) slightly after onPublish returns.
//
// In durable mode the message is also handed to the group-commit writer
// after validation, and the session goroutine parks on the commit waiter
// before acking: the fsync, not arrival, is what the PubAck certifies.
// Parking here is also what keeps the zero-copy enqueue sound — m.Payload
// aliases the session's receive buffer, which cannot be overwritten while
// this frame's handler is still on the stack.
func (b *Broker) onPublish(conn *transport.Conn, m wire.Message) error {
	now := b.opts.Clock()
	lane := b.lane(m.Topic)
	if lane.intake == nil {
		// Legacy locked intake (Options.IntakeDepth < 0).
		lane.mu.Lock()
		err := b.engine.OnPublish(m, now)
		lane.mu.Unlock()
		if err != nil {
			b.obs.PublishRejected.Inc()
			return err
		}
		var commit *diskstore.Commit
		if b.committer != nil {
			commit = b.committer.Enqueue(m)
		}
		lane.parker.Unpark()
		b.obs.Publishes.Inc()
		b.obs.StageProxy.Observe(b.opts.Clock() - now)
		b.obs.Trace(obsv.TraceEvent{Stage: obsv.StagePublish, Topic: uint64(m.Topic), Seq: m.Seq, At: now})
		b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageEnqueue, Topic: uint64(m.Topic), Seq: m.Seq, At: now})
		if commit != nil {
			return b.finishDurable(conn, m, commit, now)
		}
		return nil
	}
	if err := b.engine.CheckTopic(m.Topic); err != nil {
		// Same synchronous answer the locked path gave, so WrongShard
		// redirects still happen on the session goroutine. With the topic
		// validated here, the drain-side OnPublish cannot fail.
		b.obs.PublishRejected.Inc()
		return err
	}
	var commit *diskstore.Commit
	if b.committer != nil {
		commit = b.committer.Enqueue(m)
	}
	fill := func(im *intakeMsg) {
		buf := im.payload
		if cap(buf) > intakeKeepCap && len(m.Payload) <= intakeKeepCap {
			buf = nil // drop a jumbo buffer a past lap pinned to this slot
		}
		im.payload = append(buf[:0], m.Payload...)
		im.msg = m
		im.msg.Payload = im.payload
		im.now = now
	}
	if !lane.intake.PushInPlace(fill) {
		// Ring full: the lane's workers are saturated. Spin rather than
		// shed — loss policy lives at the egress, a publisher here just
		// feels backpressure like the lock queue used to provide.
		lane.intakeStalls.Add(1)
		for !lane.intake.PushInPlace(fill) {
			if b.stopping.Load() {
				return nil // shutting down; the message has nowhere to go
			}
			lane.parker.Unpark()
			runtime.Gosched()
		}
	}
	lane.parker.Unpark()
	b.obs.Publishes.Inc()
	b.obs.StageProxy.Observe(b.opts.Clock() - now)
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StagePublish, Topic: uint64(m.Topic), Seq: m.Seq, At: now})
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageEnqueue, Topic: uint64(m.Topic), Seq: m.Seq, At: now})
	if commit != nil {
		return b.finishDurable(conn, m, commit, now)
	}
	return nil
}

// finishDurable parks the session goroutine until the group-commit writer
// has fsynced m, then acks the publisher with a PubAck. A log failure is
// deliberately not a session error: the message is already in flight
// through the in-memory plane (Table 3 replication still covers it), the
// broker just withholds the durability ack and logs the degradation.
func (b *Broker) finishDurable(conn *transport.Conn, m wire.Message, commit *diskstore.Commit, start time.Duration) error {
	if err := commit.Wait(); err != nil {
		b.log.Warn("durable commit failed", "topic", m.Topic, "seq", m.Seq, "err", err)
		return nil
	}
	b.durableAcks.Add(1)
	b.obs.StageDurable.Observe(b.opts.Clock() - start)
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageDurable, Topic: uint64(m.Topic), Seq: m.Seq, At: b.opts.Clock()})
	if conn == nil {
		return nil
	}
	return conn.Send(&wire.Frame{Type: wire.TypePubAck, Topic: m.Topic, Seq: m.Seq})
}

// drainIntakeLocked folds queued publishes into the engine. Caller holds
// the lane mutex — which also serializes it with every other consumer of
// the lane's intake ring, satisfying the MPSC single-consumer contract.
// The batch bound keeps one publish burst from monopolizing the lock.
func (b *Broker) drainIntakeLocked(lane *dispatchLane) {
	for i := 0; i < intakeDrainBatch; i++ {
		popped := lane.intake.PopInto(func(im *intakeMsg) {
			// Cannot fail: the topic was validated at push time and the
			// engine copies the payload out of the slot before returning.
			if err := b.engine.OnPublish(im.msg, im.now); err != nil {
				b.obs.PublishRejected.Inc()
				b.log.Warn("intake publish rejected", "topic", im.msg.Topic, "err", err)
			}
		})
		if !popped {
			return
		}
	}
}

// onReplica stores a replica in the Backup Buffer (Backup role), and in
// the durable log when one is configured.
func (b *Broker) onReplica(f *wire.Frame) error {
	b.diskMu.Lock()
	if b.disk != nil {
		if err := b.disk.Append(f.Msg); err != nil {
			b.log.Warn("disk backup append failed", "err", err)
		}
	}
	b.diskMu.Unlock()
	lane := b.lane(f.Msg.Topic)
	lane.mu.Lock()
	err := b.engine.OnReplica(f.Msg, f.ArrivedPrimary)
	lane.mu.Unlock()
	if err == nil {
		b.obs.ReplicasStored.Inc()
	}
	return err
}

func (b *Broker) addSubscriber(conn *transport.Conn, topics []spec.TopicID) {
	b.subsMu.Lock()
	defer b.subsMu.Unlock()
	if b.stopping.Load() {
		// Checked under subsMu: either Stop's sweep has not snapshotted yet
		// (then this registration would be missed by it) or it has (then a
		// new egress would land on an already-drained flusher pool). Refuse
		// both; the session is torn down with the listener anyway.
		return
	}
	s := b.subsByConn[conn]
	if s == nil {
		s = &subscriber{conn: conn}
		if b.egressOn() {
			s.eg = transport.NewEgress(conn, transport.EgressConfig{
				Depth: b.opts.EgressDepth,
				Shed:  !b.opts.EgressNoShed,
				Stall: b.opts.EgressWriteTimeout,
				Meter: &b.egress,
				Pool:  b.pool,
			})
		}
		b.subsByConn[conn] = s
	}
	for _, id := range topics {
		b.subs[id] = append(b.subs[id], s)
	}
}

// removeSubscriber drops a dead session from every topic's fan-out list so
// Dispatchers stop attempting sends to it. It returns the session's egress
// (nil for non-subscriber sessions or when the egress path is off) so the
// caller can Close and Wait for the writer goroutine after closing the conn;
// repeated calls for the same conn return nil.
func (b *Broker) removeSubscriber(conn *transport.Conn) *transport.Egress {
	b.subsMu.Lock()
	defer b.subsMu.Unlock()
	s := b.subsByConn[conn]
	if s == nil {
		return nil
	}
	delete(b.subsByConn, conn)
	for id, subs := range b.subs {
		kept := subs[:0]
		for _, e := range subs {
			if e != s {
				kept = append(kept, e)
			}
		}
		for i := len(kept); i < len(subs); i++ {
			subs[i] = nil
		}
		if len(kept) == 0 {
			delete(b.subs, id)
			continue
		}
		b.subs[id] = kept
	}
	return s.eg
}

// workerScratch is the reusable storage one delivery worker cycles through
// for every job it executes: the payload copy taken under the lane lock,
// the encode-once frame body, and the fan-out connection snapshot. All
// three amortize to zero allocations at steady state.
type workerScratch struct {
	payload []byte
	body    []byte
	subs    []*subscriber
}

// workerLoop is one Message Delivery thread pinned to one dispatch lane: it
// pops resolved work under the lane lock and performs the network sends
// outside it. Lanes share nothing on this path, so GOMAXPROCS lanes drive
// GOMAXPROCS cores without contending.
func (b *Broker) workerLoop(laneIdx int) {
	if cpus := b.opts.PinLanes; len(cpus) > 0 {
		// Best effort: an offline or out-of-range CPU leaves this worker
		// unpinned rather than dead. Workers of the same lane share a CPU
		// slot, so a lane's cache footprint stays put.
		_ = submit.Pin(cpus[laneIdx%len(cpus)])
	}
	lane := b.lanes[laneIdx]
	qm := b.engine.QueueMeter()
	// ready gates parking: work exists when the engine's lane has jobs or
	// the intake holds publishes that would create them. Both probes are
	// atomic reads, safe without the lane lock even while a sibling worker
	// is draining.
	ready := func() bool {
		if b.stopping.Load() || qm.LaneDepth(laneIdx) > 0 {
			return true
		}
		return lane.intake != nil && !lane.intake.Empty()
	}
	var wk workerScratch
	for {
		lane.mu.Lock()
		var w core.Work
		var ok bool
		for {
			if b.stopping.Load() {
				lane.mu.Unlock()
				return
			}
			if lane.intake != nil {
				b.drainIntakeLocked(lane)
			}
			// The payload is copied into this worker's scratch under the
			// lane lock: once released, concurrent publishes may evict and
			// reuse the ring slot the message lives in.
			w, wk.payload, ok = b.engine.NextWorkLaneInto(laneIdx, wk.payload)
			if ok {
				break
			}
			// Idle: sleep outside the lane lock so publishers and sibling
			// workers keep moving; the parker's ready() re-check closes the
			// check-to-sleep race.
			lane.mu.Unlock()
			if !b.opts.BusyPoll || !lane.parker.Spin(ready, workerSpins) {
				lane.parker.Park(ready)
			}
			lane.mu.Lock()
		}
		lane.mu.Unlock()

		// Stage accounting: queue wait is enqueue (job release) → pop; the
		// per-kind stage histograms then cover pop → network sends done.
		popped := b.opts.Clock()
		lane.pops.Add(1)
		lane.wait.Observe(popped - w.Job.Release)
		b.obs.StageQueueWait.Observe(popped - w.Job.Release)
		b.obs.Trace(obsv.TraceEvent{Stage: obsv.StagePop, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: popped})
		switch w.Kind {
		case core.WorkDispatch:
			if popped > w.Job.Deadline {
				b.lateDispatches.Add(1)
				b.obs.LateDispatches.Inc()
			}
			if w.Job.Recovery {
				// Recovery dispatches come from the Backup Buffer; tracing
				// them lets the chaos invariants prove no discarded copy is
				// ever re-dispatched (Table 3, Recovery step 1).
				b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageRecoveryDispatch, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: popped})
			}
			b.dispatch(w, &wk)
			done := b.opts.Clock()
			b.obs.Dispatches.Inc()
			b.obs.StageDispatch.Observe(done - popped)
			b.obs.EndToEnd.Observe(done - w.Job.Release)
			b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageAck, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: done})
		case core.WorkReplicate:
			b.replicate(w, &wk)
			done := b.opts.Clock()
			b.obs.StageReplicate.Observe(done - popped)
			b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageAck, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: done})
		}
	}
}

// dispatch pushes the message to every subscriber of the topic, then runs
// the Table 3 Dispatch steps (flag + prune request). The Dispatch frame is
// encoded exactly once — into a refcounted pooled buffer on the egress path
// (one reference per subscriber ring, released after each flush), or into
// the worker's scratch on the legacy synchronous path — so the whole
// fan-out costs one encode and zero steady-state allocations, and with
// egress on the EDF lane never touches a socket.
func (b *Broker) dispatch(w core.Work, wk *workerScratch) {
	b.subsMu.Lock()
	wk.subs = append(wk.subs[:0], b.subs[w.Msg.Topic]...)
	b.subsMu.Unlock()
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageDispatch, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: b.opts.Clock()})
	switch {
	case len(wk.subs) == 0:
		// No subscribers: nothing to encode; fall through to coordination.
	case b.egressOn():
		fb := transport.GetFrameBuf()
		fb.B = wire.AppendDispatchBody(fb.B[:0], &w.Msg, b.opts.Clock())
		fb.RetainN(len(wk.subs)) // the rings own one reference per subscriber
		for _, s := range wk.subs {
			switch s.eg.Enqueue(fb, w.Msg.Topic, w.LossTolerance) {
			case transport.EnqueueOK, transport.EnqueueShed:
				b.obs.DispatchSends.Inc()
			case transport.EnqueueEvicted:
				b.obs.DispatchSendErrors.Inc()
				b.log.Warn("subscriber evicted: egress ring full past loss tolerance",
					"topic", w.Msg.Topic, "addr", s.conn.RemoteAddr())
			default: // EnqueueClosed
				b.obs.DispatchSendErrors.Inc()
			}
		}
		fb.Release() // drop the dispatcher's own reference
	default:
		wk.body = wire.AppendDispatchBody(wk.body[:0], &w.Msg, b.opts.Clock())
		for _, s := range wk.subs {
			if err := s.conn.SendEncoded(wk.body); err != nil {
				b.obs.DispatchSendErrors.Inc()
				b.log.Warn("dispatch send failed", "topic", w.Msg.Topic, "err", err)
				continue
			}
			b.obs.DispatchSends.Inc()
		}
	}

	lane := b.lane(w.Msg.Topic)
	lane.mu.Lock()
	co := b.engine.OnDispatched(w.Job)
	lane.mu.Unlock()
	if b.committer != nil {
		// Prune marker: a crash after this record is synced must not
		// re-dispatch (topic, seq) on replay — Table 3's discipline applied
		// to the log. Fire-and-forget: losing the tail markers in a crash
		// re-dispatches at most the last batch, which subscriber-side seq
		// dedup absorbs.
		b.committer.EnqueuePrune(w.Msg.Topic, w.Msg.Seq)
	}
	if co.SendPrune {
		if peer := b.peer(); peer != nil {
			wk.body = wire.AppendPruneBody(wk.body[:0], co.Topic, co.Seq)
			if err := peer.SendEncoded(wk.body); err != nil {
				b.log.Warn("prune send failed", "err", err)
			} else {
				b.obs.PrunesSent.Inc()
			}
		}
	}
}

// replicate pushes a copy of the message to the Backup (Table 3 Replicate
// steps 2–3), encoding the frame once into the worker's scratch.
func (b *Broker) replicate(w core.Work, wk *workerScratch) {
	peer := b.peer()
	if peer == nil {
		return // backup gone or never configured
	}
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageReplicate, Topic: uint64(w.Msg.Topic), Seq: w.Msg.Seq, At: b.opts.Clock()})
	wk.body = wire.AppendReplicateBody(wk.body[:0], &w.Msg, w.ArrivedPrimary)
	if err := peer.SendEncoded(wk.body); err != nil {
		b.obs.ReplicateErrors.Inc()
		if errors.Is(err, os.ErrDeadlineExceeded) {
			// The write-stall bound fired: the Backup accepted the connection
			// but stopped draining it. The partial write corrupted the link's
			// framing (the error is sticky), so close it — the read side then
			// clears the peer and replication stops instead of wedging every
			// Replicator worker behind one socket.
			b.peerStalls.Add(1)
			b.log.Warn("replicate write stalled past deadline; closing replication link",
				"topic", w.Msg.Topic, "timeout", b.peerWriteStall())
			peer.Close()
		} else {
			b.log.Warn("replicate send failed", "topic", w.Msg.Topic, "err", err)
		}
		return
	}
	b.obs.Replicates.Inc()
	lane := b.lane(w.Msg.Topic)
	lane.mu.Lock()
	b.engine.OnReplicated(w.Job)
	lane.mu.Unlock()
}

func (b *Broker) peer() *transport.Conn {
	b.peerMu.Lock()
	defer b.peerMu.Unlock()
	return b.peerConn
}

// dialPeer opens and greets one replication link to the Backup.
func (b *Broker) dialPeer() (*transport.Conn, error) {
	nc, err := b.opts.Network.Dial(b.opts.PeerAddr)
	if err != nil {
		return nil, err
	}
	conn := transport.NewConn(nc)
	conn.SetMeter(&b.meter)
	conn.SetZeroCopy(!b.opts.DisableZeroCopy)
	b.enableBatching(conn)
	if d := b.peerWriteStall(); d > 0 {
		conn.SetWriteStall(d)
	}
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleBrokerPeer, Name: b.Addr()}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// enableBatching turns on write coalescing for a broker-owned data-plane
// connection when Options.BatchWindow is set. The failure-detector polling
// link stays unbatched: its frames are control-plane and write through
// anyway.
func (b *Broker) enableBatching(conn *transport.Conn) {
	if b.opts.BatchWindow > 0 {
		conn.EnableBatching(b.opts.BatchWindow, b.opts.BatchMaxBytes)
	}
}

func (b *Broker) setPeer(conn *transport.Conn) {
	b.peerMu.Lock()
	b.peerConn = conn
	b.peerMu.Unlock()
	b.log.Info("replication link up", "peer", b.opts.PeerAddr)
}

// servePeer drains the replication link's read side (poll/time replies)
// until it dies, then clears the peer. A dead Backup is not replaced within
// one run (the paper's scope is a single broker failure).
func (b *Broker) servePeer(ctx context.Context, conn *transport.Conn) {
	b.serveConn(ctx, conn)
	b.peerMu.Lock()
	if b.peerConn == conn {
		b.peerConn = nil
	}
	b.peerMu.Unlock()
}

// connectPeer dials the Backup with retries and installs the replication
// link.
func (b *Broker) connectPeer(ctx context.Context) {
	for ctx.Err() == nil {
		conn, err := b.dialPeer()
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
				continue
			}
		}
		b.setPeer(conn)
		b.servePeer(ctx, conn)
		return
	}
}

// watchPrimary runs the Backup's failure detector over a dedicated polling
// connection and promotes on crash (§IV-A).
func (b *Broker) watchPrimary(ctx context.Context) {
	var conn *transport.Conn
	for ctx.Err() == nil {
		nc, err := b.opts.Network.Dial(b.opts.PeerAddr)
		if err != nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
				continue
			}
		}
		conn = transport.NewConn(nc)
		conn.SetMeter(&b.meter)
		break
	}
	if conn == nil {
		return
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleBrokerPeer, Name: b.Addr()}); err != nil {
		return
	}
	det, err := failover.New(b.opts.Detector, failover.ConnProbe(conn), b.promote)
	if err != nil {
		b.log.Error("detector init failed", "err", err)
		return
	}
	det.SetOnProbe(func(err error) {
		b.obs.DetectorProbes.Inc()
		if err != nil {
			b.obs.DetectorMisses.Inc()
			b.peerAlive.Store(false)
			return
		}
		b.peerAlive.Store(true)
	})
	if err := det.Run(ctx); err != nil && ctx.Err() == nil {
		b.log.Warn("detector stopped", "err", err)
	}
}

// promote executes the §IV-A recovery: the Backup becomes the new Primary
// and schedules dispatch jobs for all non-discarded Backup Buffer copies.
func (b *Broker) promote() {
	b.mu.Lock()
	if b.role == RolePrimary {
		b.mu.Unlock()
		return
	}
	b.role = RolePrimary
	b.mu.Unlock()
	// Promote rewrites whole-engine state (every topic's replication
	// verdict plus recovery jobs pushed into every lane), so it is the one
	// transition that takes all lane locks. Workers hold at most one lane
	// lock and never acquire a second, so the index-ordered sweep cannot
	// deadlock.
	b.lockAllLanes()
	b.engine.Promote()
	stats := b.engine.Stats()
	b.unlockAllLanes()
	for _, l := range b.lanes {
		// The recovery jobs are visible (pushed under the lane locks above);
		// wake every lane's workers to pop them.
		l.parker.Unpark()
	}
	close(b.promoted)
	b.obs.Promotions.Inc()
	b.obs.RecoveryJobs.Add(stats.RecoveryJobs)
	b.obs.RecoverySkipped.Add(stats.RecoverySkipped)
	now := b.opts.Clock()
	b.obs.Trace(obsv.TraceEvent{Stage: obsv.StagePromote, At: now})
	for i := uint64(0); i < stats.RecoveryJobs; i++ {
		b.obs.Trace(obsv.TraceEvent{Stage: obsv.StageRecovery, At: now})
	}
	b.log.Info("promoted to primary",
		"recoveryJobs", stats.RecoveryJobs, "skipped", stats.RecoverySkipped)
}
