package broker

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/obsv"
	"repro/internal/spec"
	"repro/internal/transport"
)

// startAdminCluster is startCluster plus an ephemeral admin endpoint on each
// broker. Broker traffic stays on the in-process Mem network; the admin
// endpoints bind real loopback TCP regardless.
func startAdminCluster(t *testing.T, topics []spec.Topic) *cluster {
	t.Helper()
	n := transport.NewMem()
	clock := testClock()
	cfg := core.FRAMEConfig(lanParams())
	cfg.MessageBufferCap = 1024
	backup, err := New(Options{
		Engine: cfg, Role: RoleBackup,
		ListenAddr: "backup", PeerAddr: "primary",
		Network: n, Clock: clock, Workers: 4,
		Detector: fastDetector(), Topics: topics,
		Logger:    quietLogger(),
		AdminAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	primary, err := New(Options{
		Engine: cfg, Role: RolePrimary,
		ListenAddr: "primary", PeerAddr: backup.Addr(),
		Network: n, Clock: clock, Workers: 4,
		Detector: fastDetector(), Topics: topics,
		Logger:    quietLogger(),
		AdminAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	backup.opts.PeerAddr = primary.Addr()
	backup.Start()
	primary.Start()
	t.Cleanup(func() {
		primary.Stop()
		backup.Stop()
	})
	return &cluster{primary: primary, backup: backup, net: n, clock: clock}
}

func scrape(t *testing.T, adminAddr string) []obsv.Sample {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/metrics", adminAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	samples, err := obsv.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return samples
}

func sampleValue(t *testing.T, samples []obsv.Sample, name, label string) float64 {
	t.Helper()
	s, ok := obsv.Find(samples, name, label)
	if !ok {
		t.Fatalf("metric %s{%s} not exposed", name, label)
	}
	return s.Value
}

func getHealth(t *testing.T, adminAddr string) obsv.Health {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s/healthz", adminAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var h obsv.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return h
}

// TestMetricsEndpointCounters publishes through a Primary+Backup pair and
// asserts the scraped exposition carries the full message lifecycle:
// publish → dispatch → replicate counters and per-stage latency histograms,
// all monotonically non-decreasing across scrapes.
func TestMetricsEndpointCounters(t *testing.T) {
	// lanTopic(1, 3): deadline 1s ≫ retention window 60ms, so Proposition 1
	// requires replication and the replicate counters must move too.
	topics := []spec.Topic{lanTopic(1, 3)}
	c := startAdminCluster(t, topics)

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "sub", Topics: []spec.TopicID{1},
		BrokerAddrs: []string{"primary", "backup"},
		Network:     c.net, Clock: c.clock,
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: c.net, Clock: c.clock, Detector: fastDetector(),
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const count = 25
	for i := 0; i < count; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "all deliveries", func() bool {
		return sub.Received(1) == count
	})

	first := scrape(t, c.primary.AdminAddr())
	for _, name := range []string{
		"frame_publish_total",
		"frame_dispatch_total",
		"frame_replicate_total",
		"frame_queue_pops_total",
	} {
		label := ""
		if name == "frame_queue_pops_total" {
			label = `kind="dispatch"`
		}
		if v := sampleValue(t, first, name, label); v < count {
			t.Errorf("%s = %v, want >= %d", name, v, count)
		}
	}
	for _, hist := range []string{
		"frame_stage_proxy_seconds",
		"frame_stage_queue_wait_seconds",
		"frame_stage_dispatch_seconds",
		"frame_stage_replicate_seconds",
		"frame_e2e_dispatch_seconds",
	} {
		if v := sampleValue(t, first, hist+"_count", ""); v == 0 {
			t.Errorf("%s_count = 0, want > 0", hist)
		}
		if v := sampleValue(t, first, hist+"_bucket", `le="+Inf"`); v == 0 {
			t.Errorf("%s +Inf bucket = 0, want > 0", hist)
		}
	}
	if v := sampleValue(t, first, "frame_role", `role="primary"`); v != 1 {
		t.Errorf(`frame_role{role="primary"} = %v, want 1`, v)
	}

	// The Backup's scrape sees the replica store filling instead.
	backupSamples := scrape(t, c.backup.AdminAddr())
	if v := sampleValue(t, backupSamples, "frame_replicas_stored_total", ""); v < count {
		t.Errorf("backup frame_replicas_stored_total = %v, want >= %d", v, count)
	}

	// Counters are monotone: publish more, scrape again, nothing decreases.
	for i := 0; i < 10; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "second batch delivered", func() bool {
		return sub.Received(1) == count+10
	})
	second := scrape(t, c.primary.AdminAddr())
	for _, s := range first {
		if !s.Counter {
			continue
		}
		after, ok := obsv.Find(second, s.Name, s.Label)
		if !ok {
			t.Errorf("counter %s{%s} disappeared on re-scrape", s.Name, s.Label)
			continue
		}
		if after.Value < s.Value {
			t.Errorf("counter %s{%s} decreased: %v -> %v", s.Name, s.Label, s.Value, after.Value)
		}
	}
	if before, after := sampleValue(t, first, "frame_publish_total", ""),
		sampleValue(t, second, "frame_publish_total", ""); after != before+10 {
		t.Errorf("frame_publish_total %v -> %v, want +10", before, after)
	}
}

// TestHealthzRoleFlipsOnPromotion scrapes /healthz on the Backup before and
// after a Primary crash: the reported role must flip backup → primary with
// promoted=true once fail-over completes.
func TestHealthzRoleFlipsOnPromotion(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 5)}
	c := startAdminCluster(t, topics)

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: c.net, Clock: c.clock, Detector: fastDetector(),
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	for i := 0; i < 10; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
	}

	// The backup's detector needs a beat to observe its first successful
	// probe before peer_connected reads true.
	waitFor(t, time.Second, "backup sees live primary", func() bool {
		return getHealth(t, c.backup.AdminAddr()).PeerConnected
	})
	h := getHealth(t, c.backup.AdminAddr())
	if h.Role != "backup" || h.Promoted {
		t.Fatalf("pre-failover backup health = %+v, want role=backup promoted=false", h)
	}
	if h := getHealth(t, c.primary.AdminAddr()); h.Role != "primary" {
		t.Fatalf("primary health = %+v, want role=primary", h)
	}

	c.primary.Stop()
	select {
	case <-c.backup.Promoted():
	case <-time.After(2 * time.Second):
		t.Fatal("backup never promoted")
	}

	h = getHealth(t, c.backup.AdminAddr())
	if h.Role != "primary" || !h.Promoted {
		t.Errorf("post-failover backup health = %+v, want role=primary promoted=true", h)
	}
	samples := scrape(t, c.backup.AdminAddr())
	if v := sampleValue(t, samples, "frame_promotions_total", ""); v != 1 {
		t.Errorf("frame_promotions_total = %v, want 1", v)
	}
	if v := sampleValue(t, samples, "frame_role", `role="primary"`); v != 1 {
		t.Errorf(`post-failover frame_role{role="primary"} = %v, want 1`, v)
	}
}

// TestLifecycleTracing registers a tracer on the Primary and checks each
// published message walks the full pipeline in order:
// publish → enqueue → pop → dispatch → ack.
func TestLifecycleTracing(t *testing.T) {
	topics := []spec.Topic{lanTopic(1, 3)}
	c := startAdminCluster(t, topics)

	var mu sync.Mutex
	stages := make(map[uint64][]obsv.Stage) // seq → ordered stages
	c.primary.Obs().SetTracer(func(ev obsv.TraceEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Topic == 1 {
			stages[ev.Seq] = append(stages[ev.Seq], ev.Stage)
		}
	})

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "sub", Topics: []spec.TopicID{1},
		BrokerAddrs: []string{"primary", "backup"},
		Network:     c.net, Clock: c.clock,
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: "pub", Topics: topics,
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: c.net, Clock: c.clock, Detector: fastDetector(),
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	const count = 5
	for i := 0; i < count; i++ {
		if _, err := pub.Publish(1, []byte("payload-16-bytes")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, "all deliveries", func() bool {
		return sub.Received(1) == count
	})
	c.primary.Obs().SetTracer(nil)

	mu.Lock()
	defer mu.Unlock()
	if len(stages) != count {
		t.Fatalf("traced %d messages, want %d", len(stages), count)
	}
	for seq, seen := range stages {
		var order []obsv.Stage
		for _, s := range seen {
			switch s {
			case obsv.StagePublish, obsv.StageEnqueue, obsv.StagePop,
				obsv.StageDispatch, obsv.StageAck:
				order = append(order, s)
			}
		}
		// A message may be enqueued twice (dispatch + replicate jobs), so
		// check the dispatch-path subsequence rather than exact equality.
		want := []obsv.Stage{obsv.StagePublish, obsv.StageEnqueue, obsv.StagePop,
			obsv.StageDispatch, obsv.StageAck}
		if !hasSubsequence(order, want) {
			t.Errorf("seq %d stages %v missing dispatch lifecycle %v", seq, order, want)
		}
	}
}

func hasSubsequence(have, want []obsv.Stage) bool {
	i := 0
	for _, s := range have {
		if i < len(want) && s == want[i] {
			i++
		}
	}
	return i == len(want)
}
