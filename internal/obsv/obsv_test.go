package obsv

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("Load = %d, want 5", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("fresh histogram not empty")
	}
	h.Observe(3 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	h.Observe(300 * time.Millisecond)
	if got := h.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if got := h.Sum(); got != 333*time.Millisecond {
		t.Errorf("Sum = %v, want 333ms", got)
	}
	// 3ms lands in the ≤5ms bucket; the median upper bound is ≤50ms.
	if q := h.Quantile(0.01); q != 5*time.Millisecond {
		t.Errorf("Quantile(0.01) = %v, want 5ms", q)
	}
	if q := h.Quantile(0.5); q != 50*time.Millisecond {
		t.Errorf("Quantile(0.5) = %v, want 50ms", q)
	}
	if q := h.Quantile(1); q != 500*time.Millisecond {
		t.Errorf("Quantile(1) = %v, want 500ms", q)
	}
}

func TestHistogramNegativeAndOverflow(t *testing.T) {
	h := NewHistogramBounds([]time.Duration{time.Millisecond, time.Second})
	h.Observe(-time.Second) // clock skew: clamps into the first bucket
	h.Observe(time.Hour)    // overflow: +Inf bucket
	if got := h.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	_, counts := h.Buckets()
	if counts[0] != 1 || counts[2] != 1 {
		t.Errorf("bucket counts = %v, want [1 0 1]", counts)
	}
	// Overflow quantile reports the top finite bound rather than inventing
	// a value.
	if q := h.Quantile(1); q != time.Second {
		t.Errorf("Quantile(1) = %v, want 1s", q)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]time.Duration{nil, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v accepted", bounds)
				}
			}()
			NewHistogramBounds(bounds)
		}()
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
				if i%100 == 0 {
					h.Quantile(0.99)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*each {
		t.Errorf("Count = %d, want %d", got, goroutines*each)
	}
}

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		StagePublish: "publish", StageEnqueue: "enqueue", StagePop: "pop",
		StageDispatch: "dispatch", StageReplicate: "replicate", StageAck: "ack",
		StagePromote: "promote", StageRecovery: "recovery",
	}
	for s, label := range want {
		if s.String() != label {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), label)
		}
	}
	if Stage(99).String() != "Stage(99)" {
		t.Error("unknown stage label wrong")
	}
}

func TestTracer(t *testing.T) {
	m := NewBrokerMetrics()
	var got []TraceEvent
	m.Trace(TraceEvent{Stage: StagePublish}) // no tracer: no-op
	m.SetTracer(func(ev TraceEvent) { got = append(got, ev) })
	m.Trace(TraceEvent{Stage: StagePublish, Topic: 7, Seq: 3})
	m.SetTracer(nil)
	m.Trace(TraceEvent{Stage: StageAck})
	if len(got) != 1 || got[0].Topic != 7 || got[0].Seq != 3 {
		t.Errorf("traced %v, want one publish event for topic 7 seq 3", got)
	}
}

func TestWritePrometheusParseRoundTrip(t *testing.T) {
	m := NewBrokerMetrics()
	m.Publishes.Add(42)
	m.LateDispatches.Inc()
	m.StageDispatch.Observe(3 * time.Millisecond)
	m.StageDispatch.Observe(7 * time.Millisecond)
	var sb strings.Builder
	extra := []Sample{
		{Name: "frame_queue_depth", Value: 5, Help: "depth"},
		{Name: "frame_role", Label: `role="primary"`, Value: 1, Help: "role"},
	}
	if err := m.WritePrometheus(&sb, extra); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE frame_publish_total counter",
		"frame_publish_total 42",
		"# TYPE frame_stage_dispatch_seconds histogram",
		"frame_stage_dispatch_seconds_count 2",
		`frame_role{role="primary"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := Find(samples, "frame_publish_total", ""); !ok || s.Value != 42 {
		t.Errorf("parsed frame_publish_total = %+v ok=%v, want 42", s, ok)
	}
	if s, ok := Find(samples, "frame_role", `role="primary"`); !ok || s.Value != 1 {
		t.Errorf("parsed frame_role = %+v ok=%v, want 1", s, ok)
	}
	if s, ok := Find(samples, "frame_stage_dispatch_seconds_bucket", `le="+Inf"`); !ok || s.Value != 2 {
		t.Errorf("parsed +Inf bucket = %+v ok=%v, want 2", s, ok)
	}
	// Histogram sum is in seconds.
	if s, ok := Find(samples, "frame_stage_dispatch_seconds_sum", ""); !ok || s.Value != 0.01 {
		t.Errorf("parsed sum = %+v ok=%v, want 0.01", s, ok)
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, bad := range []string{"no_value_line", "metric{unterminated 3", "metric NaNope"} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText(%q) accepted", bad)
		}
	}
	samples, err := ParseText(strings.NewReader("# comment only\n\n"))
	if err != nil || len(samples) != 0 {
		t.Errorf("comments/blank lines: samples=%v err=%v", samples, err)
	}
}
