package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startAdmin(t *testing.T, m *BrokerMetrics, health func() Health, gauges func() []Sample) *Admin {
	t.Helper()
	a, err := NewAdmin("127.0.0.1:0", m, health, gauges)
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve()
	t.Cleanup(func() { a.Close() })
	return a
}

func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	m := NewBrokerMetrics()
	m.Publishes.Add(9)
	health := func() Health {
		return Health{Role: "primary", QueueDepth: 4, PeerConnected: true}
	}
	gauges := func() []Sample {
		return []Sample{{Name: "frame_queue_depth", Value: 4, Help: "depth"}}
	}
	a := startAdmin(t, m, health, gauges)

	code, body := adminGet(t, a.Addr(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"frame_publish_total 9", "frame_queue_depth 4"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = adminGet(t, a.Addr(), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz not JSON: %v\n%s", err, body)
	}
	if h.Role != "primary" || h.QueueDepth != 4 || !h.PeerConnected {
		t.Errorf("healthz = %+v", h)
	}

	code, body = adminGet(t, a.Addr(), "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

func TestAdminValidation(t *testing.T) {
	if _, err := NewAdmin("127.0.0.1:0", nil, func() Health { return Health{} }, nil); err == nil {
		t.Error("nil metrics accepted")
	}
	if _, err := NewAdmin("127.0.0.1:0", NewBrokerMetrics(), nil, nil); err == nil {
		t.Error("nil health accepted")
	}
	if _, err := NewAdmin("256.0.0.1:bogus", NewBrokerMetrics(), func() Health { return Health{} }, nil); err == nil {
		t.Error("bogus address accepted")
	}
}
