package obsv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Health is the /healthz report: the broker's current fault-tolerance role
// and the liveness signals an operator (or orchestrator probe) needs to
// decide whether the deployment is serving.
type Health struct {
	// Role is "primary" or "backup".
	Role string `json:"role"`
	// Addr is the broker's message listen address.
	Addr string `json:"addr,omitempty"`
	// PeerAddr is the configured peer broker, empty for a solo Primary.
	PeerAddr string `json:"peer_addr,omitempty"`
	// PeerConnected reports a live replication/polling link to the peer.
	PeerConnected bool `json:"peer_connected"`
	// Promoted reports that this broker started as Backup and has since
	// promoted itself to Primary.
	Promoted bool `json:"promoted"`
	// QueueDepth is the number of jobs pending in the job queue.
	QueueDepth int64 `json:"queue_depth"`
	// LateDispatches counts dispatches that began past their deadline.
	LateDispatches uint64 `json:"late_dispatches"`
	// UptimeSeconds is wall time since the broker was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// EgressQueued is the number of frames currently queued across all
	// subscriber egress rings.
	EgressQueued int `json:"egress_queued"`
	// EgressSubs is the number of live subscriber sessions.
	EgressSubs int `json:"egress_subscribers"`
	// EgressShed counts frames dropped by the Li-aware shed policy.
	EgressShed uint64 `json:"egress_shed"`
	// EgressEvictions counts subscribers evicted for exceeding a topic's
	// loss tolerance in consecutive drops.
	EgressEvictions uint64 `json:"egress_evictions"`
	// EgressWriteErrs counts failed egress flush writes.
	EgressWriteErrs uint64 `json:"egress_write_errors"`
}

// Admin is the embedded observability endpoint: /metrics (Prometheus text),
// /healthz (JSON Health), and /debug/pprof. It binds its TCP listener at
// construction, so Addr is dialable before Serve runs.
type Admin struct {
	ln  net.Listener
	srv *http.Server
}

// NewAdmin binds addr and returns a server exposing the metric set, the
// health callback, and pprof. gauges, when non-nil, contributes scrape-time
// samples (queue depth, transport totals, role) to /metrics.
func NewAdmin(addr string, m *BrokerMetrics, health func() Health, gauges func() []Sample) (*Admin, error) {
	if m == nil {
		return nil, errors.New("obsv: nil metrics")
	}
	if health == nil {
		return nil, errors.New("obsv: nil health callback")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: admin listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var extra []Sample
		if gauges != nil {
			extra = gauges()
		}
		_ = m.WritePrometheus(w, extra)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(health())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &Admin{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}, nil
}

// Addr returns the bound admin address.
func (a *Admin) Addr() string { return a.ln.Addr().String() }

// Serve blocks handling requests until Close. It returns nil on a clean
// shutdown.
func (a *Admin) Serve() error {
	err := a.srv.Serve(a.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Close immediately shuts the server and its listener down.
func (a *Admin) Close() error { return a.srv.Close() }
