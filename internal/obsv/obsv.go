// Package obsv is the broker's runtime observability layer: lock-cheap
// atomic counters, streaming log-linear latency histograms, stage-level
// lifecycle trace hooks, and an embedded HTTP admin endpoint (admin.go)
// serving Prometheus text metrics, a JSON health report, and pprof.
//
// The FRAME evaluation (§VI) measures end-to-end latency, deadline success,
// and consecutive losses after the fact; this package makes the same
// quantities continuously observable on a live broker, so load tests and
// later optimisation work can read before/after numbers off `/metrics`
// instead of re-running the offline harness. Everything on the record path
// is a single atomic add — no locks, no allocation — so instrumenting the
// hot dispatch loop costs nanoseconds.
package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; it must not be copied after first use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// defaultBounds are the histogram bucket upper bounds: a 1–2–5 log-linear
// ladder from 1µs to 10s, HDR-style resolution (≤ 2.5× relative error per
// bucket) at a fixed 22-slot cost. Latencies above 10s land in +Inf.
func defaultBounds() []time.Duration {
	var bounds []time.Duration
	for decade := time.Microsecond; decade <= 10*time.Second; decade *= 10 {
		for _, m := range []time.Duration{1, 2, 5} {
			if b := m * decade; b <= 10*time.Second {
				bounds = append(bounds, b)
			}
		}
	}
	return bounds
}

// Histogram is a streaming latency histogram with fixed bucket bounds:
// every Observe is two atomic adds, so it replaces keep-all-samples
// recording on hot paths. Safe for concurrent use; must not be copied.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf overflow
	sum    atomic.Int64    // nanoseconds
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the default 1µs–10s bounds.
func NewHistogram() *Histogram { return NewHistogramBounds(defaultBounds()) }

// NewHistogramBounds returns a histogram over the given ascending upper
// bounds. It panics on an empty or unsorted bounds slice.
func NewHistogramBounds(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		panic("obsv: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obsv: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration. Negative durations (possible under clock
// skew) count into the first bucket rather than being dropped, so Count
// stays consistent with the number of events.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[idx].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns an upper bound on the p-quantile (0 < p ≤ 1): the upper
// bound of the bucket holding the rank, or the top finite bound for
// overflow observations. Zero with no observations.
func (h *Histogram) Quantile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(total))) // nearest-rank
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // overflow: report top bound
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Buckets returns the bounds and a snapshot of the per-bucket counts (the
// trailing slot is the +Inf overflow).
func (h *Histogram) Buckets() ([]time.Duration, []uint64) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// Stage labels one point in the message lifecycle for tracing:
// publish → enqueue → pop → dispatch/replicate → ack, plus the
// failover-promotion and recovery events.
type Stage int

// Lifecycle stages.
const (
	StagePublish   Stage = iota + 1 // message accepted by the Message Proxy
	StageEnqueue                    // jobs pushed into the job queue
	StagePop                        // job popped by a delivery worker (EDF order)
	StageDispatch                   // dispatch send to subscribers started
	StageReplicate                  // replica send to the Backup started
	StageAck                        // delivery work completed
	StagePromote                    // Backup promoted itself to Primary
	StageRecovery                   // recovery dispatch generated at promotion

	// Coordination-protocol stages (Table 3), used by the chaos invariant
	// checkers to prove recovery never re-dispatches a discarded entry.
	StagePrune            // Backup Buffer entry discarded on the Primary's prune
	StageRecoveryDispatch // recovery job dispatched from the Backup Buffer

	// StageDurable fires when a publish reaches stable storage in the
	// opt-in durable mode — the moment the PubAck becomes truthful.
	StageDurable
)

// String returns the stage label.
func (s Stage) String() string {
	switch s {
	case StagePublish:
		return "publish"
	case StageEnqueue:
		return "enqueue"
	case StagePop:
		return "pop"
	case StageDispatch:
		return "dispatch"
	case StageReplicate:
		return "replicate"
	case StageAck:
		return "ack"
	case StagePromote:
		return "promote"
	case StageRecovery:
		return "recovery"
	case StagePrune:
		return "prune"
	case StageRecoveryDispatch:
		return "recovery_dispatch"
	case StageDurable:
		return "durable"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// TraceEvent is one lifecycle hook firing.
type TraceEvent struct {
	Stage Stage
	Topic uint64
	Seq   uint64
	// At is the broker-clock timestamp of the event.
	At time.Duration
}

// BrokerMetrics is the full instrument set one broker maintains. All fields
// are safe for concurrent use; create with NewBrokerMetrics.
type BrokerMetrics struct {
	// Message Proxy (publish path).
	Publishes       Counter // messages accepted
	PublishRejected Counter // publishes dropped (unknown topic etc.)

	// Message Delivery (worker pool).
	Dispatches         Counter // dispatch jobs completed
	DispatchSends      Counter // per-subscriber dispatch frames sent
	DispatchSendErrors Counter // per-subscriber dispatch send failures
	LateDispatches     Counter // dispatches starting past their deadline
	Replicates         Counter // replicas delivered to the Backup
	ReplicateErrors    Counter // replica send failures

	// Backup role and Table 3 coordination.
	ReplicasStored Counter // copies absorbed into the Backup Buffer
	PrunesSent     Counter // prune requests issued to the Backup
	PrunesReceived Counter // prune requests applied from the Primary

	// Failover.
	Promotions      Counter // backup→primary transitions (0 or 1 per run)
	RecoveryJobs    Counter // dispatch jobs generated while draining at promotion
	RecoverySkipped Counter // Backup Buffer entries skipped via Discard
	DetectorProbes  Counter // failure-detector probes completed
	DetectorMisses  Counter // probes that timed out or errored

	// Stage latency distributions.
	StageProxy     *Histogram // publish arrival → jobs enqueued
	StageQueueWait *Histogram // job enqueue → worker pop
	StageDispatch  *Histogram // pop → all subscriber sends done
	StageReplicate *Histogram // pop → replica send done
	StageDurable   *Histogram // publish arrival → fsynced (durable mode only)
	EndToEnd       *Histogram // broker arrival → dispatch completion

	tracer atomic.Pointer[func(TraceEvent)]
}

// NewBrokerMetrics returns a zeroed instrument set.
func NewBrokerMetrics() *BrokerMetrics {
	return &BrokerMetrics{
		StageProxy:     NewHistogram(),
		StageQueueWait: NewHistogram(),
		StageDispatch:  NewHistogram(),
		StageReplicate: NewHistogram(),
		StageDurable:   NewHistogram(),
		EndToEnd:       NewHistogram(),
	}
}

// SetTracer installs (or, with nil, removes) a lifecycle trace callback.
// The callback runs inline on broker goroutines and must be fast and
// non-blocking; it is meant for tests and targeted debugging, not steady
// operation.
func (m *BrokerMetrics) SetTracer(f func(TraceEvent)) {
	if f == nil {
		m.tracer.Store(nil)
		return
	}
	m.tracer.Store(&f)
}

// Trace fires a lifecycle event at the installed tracer; without one it is
// a single atomic load.
func (m *BrokerMetrics) Trace(ev TraceEvent) {
	if f := m.tracer.Load(); f != nil {
		(*f)(ev)
	}
}

// Sample is one externally supplied metric point for the Prometheus
// exposition: gauges the broker computes at scrape time (queue depth, role,
// transport totals) rather than maintaining in BrokerMetrics.
type Sample struct {
	Name string
	// Label is a raw `key="value"` pair list without braces, or empty.
	Label string
	Value float64
	// Counter marks the sample TYPE as counter instead of gauge.
	Counter bool
	Help    string
}

// WritePrometheus renders the instrument set, plus any extra samples, in
// the Prometheus text exposition format (version 0.0.4).
func (m *BrokerMetrics) WritePrometheus(w io.Writer, extra []Sample) error {
	counters := []struct {
		name, help string
		c          *Counter
	}{
		{"frame_publish_total", "Messages accepted by the Message Proxy.", &m.Publishes},
		{"frame_publish_rejected_total", "Publishes dropped (unknown topic or engine error).", &m.PublishRejected},
		{"frame_dispatch_total", "Dispatch jobs completed by the worker pool.", &m.Dispatches},
		{"frame_dispatch_sends_total", "Per-subscriber dispatch frames sent.", &m.DispatchSends},
		{"frame_dispatch_send_errors_total", "Per-subscriber dispatch send failures.", &m.DispatchSendErrors},
		{"frame_dispatch_late_total", "Dispatch jobs that started past their deadline (Lemma 2 violations).", &m.LateDispatches},
		{"frame_replicate_total", "Replicas delivered to the Backup.", &m.Replicates},
		{"frame_replicate_errors_total", "Replica send failures.", &m.ReplicateErrors},
		{"frame_replicas_stored_total", "Copies absorbed into the Backup Buffer.", &m.ReplicasStored},
		{"frame_prunes_sent_total", "Prune requests issued to the Backup (Table 3 Dispatch.3).", &m.PrunesSent},
		{"frame_prunes_received_total", "Prune requests applied from the Primary.", &m.PrunesReceived},
		{"frame_promotions_total", "Backup-to-Primary promotions.", &m.Promotions},
		{"frame_recovery_jobs_total", "Dispatch jobs generated draining the Backup Buffer at promotion.", &m.RecoveryJobs},
		{"frame_recovery_skipped_total", "Backup Buffer entries skipped via Discard at promotion.", &m.RecoverySkipped},
		{"frame_detector_probes_total", "Failure-detector probes completed.", &m.DetectorProbes},
		{"frame_detector_probe_misses_total", "Failure-detector probes that errored or timed out.", &m.DetectorMisses},
	}
	for _, c := range counters {
		if err := writeHeader(w, c.name, c.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.name, c.c.Load()); err != nil {
			return err
		}
	}
	hists := []struct {
		name, help string
		h          *Histogram
	}{
		{"frame_stage_proxy_seconds", "Publish arrival to jobs enqueued (Message Proxy).", m.StageProxy},
		{"frame_stage_queue_wait_seconds", "Job enqueue to worker pop (EDF Job Queue wait).", m.StageQueueWait},
		{"frame_stage_dispatch_seconds", "Worker pop to all subscriber sends done (Dispatcher).", m.StageDispatch},
		{"frame_stage_replicate_seconds", "Worker pop to replica send done (Replicator).", m.StageReplicate},
		{"frame_stage_durable_seconds", "Publish arrival to stable storage (durable mode only).", m.StageDurable},
		{"frame_e2e_dispatch_seconds", "Broker arrival to dispatch completion.", m.EndToEnd},
	}
	for _, h := range hists {
		if err := writeHistogram(w, h.name, h.help, h.h); err != nil {
			return err
		}
	}
	for _, s := range extra {
		typ := "gauge"
		if s.Counter {
			typ = "counter"
		}
		if err := writeHeader(w, s.Name, s.Help, typ); err != nil {
			return err
		}
		line := s.Name
		if s.Label != "" {
			line += "{" + s.Label + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", line, formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ); err != nil {
		return err
	}
	return nil
}

func writeHistogram(w io.Writer, name, help string, h *Histogram) error {
	if err := writeHeader(w, name, help, "histogram"); err != nil {
		return err
	}
	bounds, counts := h.Buckets()
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			name, formatValue(b.Seconds()), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
		name, formatValue(h.Sum().Seconds()), name, h.Count()); err != nil {
		return err
	}
	return nil
}

// formatValue renders a float without exponent notation for the magnitudes
// metrics produce, matching what common scrapers expect.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseText parses a Prometheus text exposition into samples, one per
// metric line; comment and blank lines are skipped. It is the scrape-side
// inverse of WritePrometheus, used by cmd/frame-bench to turn a live
// broker's /metrics into CSV artifacts.
func ParseText(r io.Reader) ([]Sample, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []Sample
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obsv: metrics line %d: no value in %q", ln+1, line)
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("obsv: metrics line %d: %w", ln+1, err)
		}
		key := strings.TrimSpace(line[:sp])
		s := Sample{Name: key, Value: val}
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				return nil, fmt.Errorf("obsv: metrics line %d: unterminated labels in %q", ln+1, line)
			}
			s.Name = key[:i]
			s.Label = key[i+1 : len(key)-1]
		}
		out = append(out, s)
	}
	return out, nil
}

// Find returns the first sample matching name (and, when label is
// non-empty, the exact raw label string), or false.
func Find(samples []Sample, name, label string) (Sample, bool) {
	for _, s := range samples {
		if s.Name == name && (label == "" || s.Label == label) {
			return s, true
		}
	}
	return Sample{}, false
}
