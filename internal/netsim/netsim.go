// Package netsim models network link latency for the simulated evaluation.
//
// The paper's test-bed has two latency regimes (§VI-A): a Gigabit-switched
// edge LAN (0.5 ms round-trip between broker and local subscriber, PTP sync
// error within 0.05 ms) and a WAN path to an AWS EC2 cloud subscriber
// (44 ms round-trip; the measured one-way ΔBS floor used for configuration
// was 20.7 ms). Fig. 8 shows ΔBS for a cloud topic across 24 hours: a slowly
// wandering baseline with jitter and an isolated +104 ms spike around 8am.
//
// Models are deterministic given their seed: the same run reproduces the
// same latency sequence, which keeps whole experiments replayable.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Model produces one-way latencies as a function of virtual time.
type Model interface {
	// Latency returns the one-way delay for a transmission starting at
	// virtual time at.
	Latency(at time.Duration) time.Duration
}

// Fixed is a constant-latency link.
type Fixed time.Duration

var _ Model = Fixed(0)

// Latency returns the constant delay.
func (f Fixed) Latency(time.Duration) time.Duration { return time.Duration(f) }

// Uniform adds bounded uniform jitter to a base latency.
type Uniform struct {
	Base   time.Duration
	Jitter time.Duration // samples are Base + U[0, Jitter)
	rng    *rand.Rand
}

var _ Model = (*Uniform)(nil)

// NewUniform returns a jittered link model with its own deterministic RNG.
func NewUniform(base, jitter time.Duration, seed int64) *Uniform {
	if base < 0 || jitter < 0 {
		panic(fmt.Sprintf("netsim: negative base %v or jitter %v", base, jitter))
	}
	return &Uniform{Base: base, Jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Latency returns base plus one jitter sample.
func (u *Uniform) Latency(time.Duration) time.Duration {
	if u.Jitter == 0 {
		return u.Base
	}
	return u.Base + time.Duration(u.rng.Int63n(int64(u.Jitter)))
}

// Spike is a transient latency excursion (e.g., Fig. 8's +104 ms event).
type Spike struct {
	// At is when the spike peaks.
	At time.Duration
	// Magnitude is the added latency at the peak.
	Magnitude time.Duration
	// Width is the half-duration: latency decays linearly to zero extra at
	// At±Width.
	Width time.Duration
}

// contribution returns the spike's additive latency at time at.
func (s Spike) contribution(at time.Duration) time.Duration {
	d := at - s.At
	if d < 0 {
		d = -d
	}
	if s.Width <= 0 || d >= s.Width {
		return 0
	}
	frac := 1 - float64(d)/float64(s.Width)
	return time.Duration(float64(s.Magnitude) * frac)
}

// Diurnal models a WAN path whose baseline drifts over a day: a sinusoidal
// daily swing on top of a floor, plus uniform jitter and optional spikes.
// The floor is the model's minimum latency — the measurable lower bound of
// ΔBS that FRAME's configuration should use (§III-D-5).
type Diurnal struct {
	// Floor is the minimum one-way latency (the paper's 20.7 ms setup value
	// came from a one-hour measurement of this floor).
	Floor time.Duration
	// Swing is the peak-to-trough amplitude of the daily variation.
	Swing time.Duration
	// Period is the cycle length (24h for a day).
	Period time.Duration
	// PeakAt positions the sinusoid maximum within the cycle.
	PeakAt time.Duration
	// Jitter adds U[0, Jitter) per sample.
	Jitter time.Duration
	// Spikes are transient events.
	Spikes []Spike

	rng *rand.Rand
}

var _ Model = (*Diurnal)(nil)

// NewDiurnal validates and seeds a diurnal model.
func NewDiurnal(d Diurnal, seed int64) *Diurnal {
	if d.Floor < 0 || d.Swing < 0 || d.Jitter < 0 {
		panic("netsim: negative diurnal parameter")
	}
	if d.Period <= 0 {
		panic("netsim: diurnal period must be positive")
	}
	out := d
	out.rng = rand.New(rand.NewSource(seed))
	return &out
}

// Latency returns floor + daily swing + jitter + spike contributions.
func (d *Diurnal) Latency(at time.Duration) time.Duration {
	cycle := (at - d.PeakAt) % d.Period
	if cycle < 0 {
		cycle += d.Period // Go's % keeps the dividend's sign; normalize
	}
	phase := 2 * math.Pi * float64(cycle) / float64(d.Period)
	// Cosine peaking at PeakAt, scaled to [0, Swing].
	swing := time.Duration(float64(d.Swing) * (math.Cos(phase) + 1) / 2)
	l := d.Floor + swing
	if d.Jitter > 0 {
		l += time.Duration(d.rng.Int63n(int64(d.Jitter)))
	}
	for _, s := range d.Spikes {
		l += s.contribution(at)
	}
	return l
}

// PaperEdgeLink returns the edge LAN model: 0.5 ms round-trip → 0.25 ms
// one-way with a little queuing jitter.
func PaperEdgeLink(seed int64) *Uniform {
	return NewUniform(200*time.Microsecond, 100*time.Microsecond, seed)
}

// PaperBrokerLink returns the Primary↔Backup link: the brokers sit on the
// same switch, ΔBB ≈ 0.05 ms.
func PaperBrokerLink(seed int64) *Uniform {
	return NewUniform(40*time.Microsecond, 20*time.Microsecond, seed)
}

// PaperCloudLink returns the Fig. 8 WAN model: 20.7 ms floor, a ~3 ms daily
// swing peaking mid-day, 1.5 ms jitter, and the +104 ms spike "at around
// 8am on Thursday".
func PaperCloudLink(seed int64) *Diurnal {
	return NewDiurnal(Diurnal{
		Floor:  20700 * time.Microsecond,
		Swing:  3 * time.Millisecond,
		Period: 24 * time.Hour,
		PeakAt: 14 * time.Hour,
		Jitter: 1500 * time.Microsecond,
		Spikes: []Spike{{At: 8 * time.Hour, Magnitude: 104 * time.Millisecond, Width: 90 * time.Second}},
	}, seed)
}
