package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFixed(t *testing.T) {
	m := Fixed(3 * time.Millisecond)
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if got := m.Latency(at); got != 3*time.Millisecond {
			t.Errorf("Latency(%v) = %v", at, got)
		}
	}
}

func TestUniformBounds(t *testing.T) {
	m := NewUniform(time.Millisecond, 500*time.Microsecond, 1)
	for i := 0; i < 1000; i++ {
		l := m.Latency(0)
		if l < time.Millisecond || l >= 1500*time.Microsecond {
			t.Fatalf("sample %v outside [1ms, 1.5ms)", l)
		}
	}
}

func TestUniformZeroJitter(t *testing.T) {
	m := NewUniform(time.Millisecond, 0, 1)
	if got := m.Latency(0); got != time.Millisecond {
		t.Errorf("Latency = %v", got)
	}
}

func TestUniformDeterministicBySeed(t *testing.T) {
	a := NewUniform(time.Millisecond, time.Millisecond, 7)
	b := NewUniform(time.Millisecond, time.Millisecond, 7)
	for i := 0; i < 100; i++ {
		if a.Latency(0) != b.Latency(0) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestUniformPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewUniform(-time.Millisecond, 0, 1)
}

func TestSpikeContribution(t *testing.T) {
	s := Spike{At: 10 * time.Second, Magnitude: 100 * time.Millisecond, Width: 2 * time.Second}
	if got := s.contribution(10 * time.Second); got != 100*time.Millisecond {
		t.Errorf("peak contribution = %v", got)
	}
	if got := s.contribution(11 * time.Second); got != 50*time.Millisecond {
		t.Errorf("half-width contribution = %v", got)
	}
	for _, at := range []time.Duration{0, 8 * time.Second, 12 * time.Second, time.Hour} {
		if got := s.contribution(at); got != 0 {
			t.Errorf("contribution(%v) = %v, want 0", at, got)
		}
	}
}

func TestDiurnalFloorIsLowerBound(t *testing.T) {
	m := PaperCloudLink(3)
	min := time.Hour
	for at := time.Duration(0); at < 24*time.Hour; at += 90 * time.Second {
		l := m.Latency(at)
		if l < m.Floor {
			t.Fatalf("latency %v below floor %v at %v", l, m.Floor, at)
		}
		if l < min {
			min = l
		}
	}
	// The floor must actually be approached (within jitter+swing slack).
	if min > m.Floor+2*time.Millisecond {
		t.Errorf("observed minimum %v far above floor %v", min, m.Floor)
	}
}

func TestDiurnalSpikeVisible(t *testing.T) {
	m := PaperCloudLink(4)
	peak := m.Latency(8 * time.Hour)
	if peak < m.Floor+100*time.Millisecond {
		t.Errorf("8am spike missing: latency %v", peak)
	}
	calm := m.Latency(20 * time.Hour)
	if calm > m.Floor+10*time.Millisecond {
		t.Errorf("calm period latency %v too high", calm)
	}
}

func TestDiurnalSwingShape(t *testing.T) {
	m := NewDiurnal(Diurnal{
		Floor: 20 * time.Millisecond, Swing: 4 * time.Millisecond,
		Period: 24 * time.Hour, PeakAt: 14 * time.Hour,
	}, 1)
	atPeak := m.Latency(14 * time.Hour)
	atTrough := m.Latency(2 * time.Hour)
	if atPeak != 24*time.Millisecond {
		t.Errorf("peak = %v, want 24ms", atPeak)
	}
	if atTrough != 20*time.Millisecond {
		t.Errorf("trough = %v, want 20ms", atTrough)
	}
}

func TestDiurnalPeriodicity(t *testing.T) {
	m := NewDiurnal(Diurnal{
		Floor: 20 * time.Millisecond, Swing: 4 * time.Millisecond,
		Period: 24 * time.Hour, PeakAt: 14 * time.Hour,
	}, 1)
	f := func(hours uint8) bool {
		at := time.Duration(hours%24) * time.Hour
		return m.Latency(at) == m.Latency(at+24*time.Hour)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDiurnalValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period accepted")
		}
	}()
	NewDiurnal(Diurnal{Floor: time.Millisecond}, 1)
}

func TestPaperLinksRegimes(t *testing.T) {
	edge := PaperEdgeLink(1)
	broker := PaperBrokerLink(2)
	cloud := PaperCloudLink(3)
	e, b, c := edge.Latency(0), broker.Latency(0), cloud.Latency(0)
	if !(b < e && e < c) {
		t.Errorf("latency regimes out of order: broker %v, edge %v, cloud %v", b, e, c)
	}
	if c < 20*time.Millisecond {
		t.Errorf("cloud latency %v below the paper's 20ms floor", c)
	}
	if e > time.Millisecond {
		t.Errorf("edge latency %v above sub-millisecond regime", e)
	}
}
