// Package core implements the FRAME architecture's broker-side state
// machine (paper §IV): the Message Proxy with its Job Generator, the
// Message Buffer and Backup Buffer, deadline assignment per Lemmas 1–2,
// selective replication per Proposition 1, the dispatch–replicate
// coordination algorithm of Table 3, and the recovery procedure that prunes
// the set of message copies to re-dispatch after a promotion.
//
// The engine is a deterministic, transport-free state machine: callers feed
// it arrivals and completed work, and it hands back jobs and coordination
// commands. Two runtimes drive it — the real-time broker in package broker
// (goroutine worker pool over TCP) and the discrete-event simulator in
// package simcluster (virtual time). Keeping the contribution here, behind
// a synchronous API, is what lets both stacks share one implementation.
//
// Concurrency: with Config.Lanes ≤ 1 the engine is not safe for concurrent
// use; runtimes serialize access, as before. With Lanes > 1 the job queue
// and the per-topic state shard by topic hash (queue.LaneFor) into
// independent dispatch lanes, and the engine supports lane-parallel use
// under the following contract, which package broker implements with one
// mutex per lane:
//
//   - AddTopic completes before any concurrent use.
//   - Calls that name a topic (OnPublish, OnReplica, OnPrune, OnDispatched,
//     OnReplicated, BackupBufferLen) run under the lock of that topic's
//     lane (LaneFor).
//   - NextWorkLane(l) runs under lane l's lock and only returns work for
//     topics of lane l.
//   - Promote and whole-queue calls (NextWork, QueueLen, PeekDeadline) run
//     with every lane lock held.
//   - Stats is safe anywhere: all activity counters are atomic.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/queue"
	"repro/internal/ringbuf"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/wire"
)

// ErrUnknownTopic reports a message naming a topic this engine does not
// serve. In a sharded cluster that is the routine signal that a publisher
// holds a stale routing table: the broker answers with a WrongShard
// redirect instead of treating it as a protocol fault (package cluster).
var ErrUnknownTopic = errors.New("core: unknown topic")

// Config selects the scheduling and fault-tolerance behavior of an engine.
// The four evaluation configurations of §VI map to:
//
//	FRAME:  {Policy: EDF,  SelectiveReplication: true,  Coordination: true}
//	FRAME+: same as FRAME with the workload's Ni raised (spec.BoostRetention)
//	FCFS:   {Policy: FCFS, SelectiveReplication: false, Coordination: true}
//	FCFS−:  {Policy: FCFS, SelectiveReplication: false, Coordination: false}
type Config struct {
	// Params are the deployment timing parameters used for deadline
	// computation (ΔBS per destination, ΔBB, fail-over time x).
	Params timing.Params
	// Policy picks the job queue discipline.
	Policy queue.Policy
	// SelectiveReplication enables Proposition 1: topics whose dispatch
	// deadline is no later than their replication deadline are not
	// replicated at all.
	SelectiveReplication bool
	// Coordination enables the Table 3 dispatch–replicate coordination:
	// dispatched messages abort their pending replication and prune their
	// Backup copy.
	Coordination bool
	// ReplicateFirst makes the Job Generator enqueue the replication job
	// before the dispatch job for each arrival, as the FCFS baselines do
	// ("the Primary first performed replication and then dispatch", §VI-A).
	// Under EDF the queue order is deadline-driven and this only breaks
	// ties.
	ReplicateFirst bool
	// MessageBufferCap is the per-topic Message Buffer capacity. Zero means
	// DefaultMessageBufferCap.
	MessageBufferCap int
	// BackupBufferCap is the per-topic Backup Buffer capacity. Zero means
	// DefaultBackupBufferCap (ten, the §VI-C setting).
	BackupBufferCap int
	// HasBackup declares whether a Backup broker exists to replicate to.
	// A promoted Backup runs with HasBackup=false: the paper's scope is one
	// broker failure, so the new Primary does not re-replicate.
	HasBackup bool
	// MeterQueue wraps the job queue in queue.NewMetered, making depth and
	// push/pop counters readable without the engine lock (QueueMeter). The
	// broker runtime enables this for its admin endpoint; the simulator
	// leaves it off.
	MeterQueue bool
	// Lanes shards the EDF job queue and the engine's topic state into this
	// many parallel dispatch lanes keyed by topic hash (queue.LaneFor). The
	// per-topic deadlines of Lemmas 1–2 are independent across topics, so
	// EDF-within-lane preserves every per-topic guarantee while lanes run
	// concurrently (see the package comment for the locking contract).
	// 0 or 1 keeps the single global queue; values > 1 require PolicyEDF.
	Lanes int
}

// Default buffer capacities.
const (
	DefaultMessageBufferCap = 16
	// DefaultBackupBufferCap follows §VI-C: "We set the size of the Backup
	// Buffer to ten for each topic."
	DefaultBackupBufferCap = 10
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.Policy != queue.PolicyEDF && c.Policy != queue.PolicyFCFS {
		return fmt.Errorf("core: unknown policy %d", int(c.Policy))
	}
	if c.MessageBufferCap < 0 || c.BackupBufferCap < 0 {
		return fmt.Errorf("core: negative buffer capacity")
	}
	if c.Lanes < 0 {
		return fmt.Errorf("core: negative lane count %d", c.Lanes)
	}
	if c.Lanes > 1 && c.Policy != queue.PolicyEDF {
		return fmt.Errorf("core: %d lanes require the EDF policy, got %v", c.Lanes, c.Policy)
	}
	return nil
}

// FRAMEConfig returns the FRAME configuration of §VI over the given params.
func FRAMEConfig(p timing.Params) Config {
	return Config{
		Params:               p,
		Policy:               queue.PolicyEDF,
		SelectiveReplication: true,
		Coordination:         true,
		HasBackup:            true,
	}
}

// FCFSConfig returns the FCFS baseline of §VI: no differentiation, arrival
// order, replicate-then-dispatch, with coordination.
func FCFSConfig(p timing.Params) Config {
	return Config{
		Params:         p,
		Policy:         queue.PolicyFCFS,
		Coordination:   true,
		ReplicateFirst: true,
		HasBackup:      true,
	}
}

// FCFSMinusConfig returns FCFS−: FCFS without dispatch–replicate
// coordination.
func FCFSMinusConfig(p timing.Params) Config {
	cfg := FCFSConfig(p)
	cfg.Coordination = false
	return cfg
}

// entry is one message copy in the Message Buffer or Backup Buffer, with
// the Table 3 flags.
type entry struct {
	msg            wire.Message
	arrivedPrimary time.Duration // tp of the original arrival
	dispatched     bool
	replicating    bool // replicate work handed to a Replicator (in flight)
	replicated     bool
	discard        bool
}

// topicState is the engine's per-topic bookkeeping.
type topicState struct {
	spec spec.Topic
	// Pseudo relative deadlines (§IV-A), computed once at AddTopic.
	dispatchPseudo    time.Duration
	replicationPseudo time.Duration
	// replicate is the configuration-time Proposition 1 verdict.
	replicate bool

	buffer *ringbuf.Ring[entry] // Message Buffer (Primary role)
	backup *ringbuf.Ring[entry] // Backup Buffer (Backup role)

	// pendingPrunes records Discard requests that arrived before their
	// replica (Prune and Replicate frames race on independent paths through
	// the delivery pool). Bounded FIFO: at most BackupBufferCap entries.
	pendingPrunes map[uint64]bool
	pruneOrder    []uint64
}

// notePendingPrune records an early prune, evicting the oldest once the set
// reaches the Backup Buffer capacity (an older pending prune whose replica
// still has not arrived refers to a send that failed; dropping it is safe).
func (st *topicState) notePendingPrune(seq uint64, capacity int) {
	if st.pendingPrunes == nil {
		st.pendingPrunes = make(map[uint64]bool, capacity)
	}
	if st.pendingPrunes[seq] {
		return
	}
	if len(st.pruneOrder) >= capacity {
		oldest := st.pruneOrder[0]
		st.pruneOrder = st.pruneOrder[1:]
		delete(st.pendingPrunes, oldest)
	}
	st.pendingPrunes[seq] = true
	st.pruneOrder = append(st.pruneOrder, seq)
}

// takePendingPrune consumes an early prune for seq if one is recorded.
func (st *topicState) takePendingPrune(seq uint64) bool {
	if !st.pendingPrunes[seq] {
		return false
	}
	delete(st.pendingPrunes, seq)
	for i, s := range st.pruneOrder {
		if s == seq {
			st.pruneOrder = append(st.pruneOrder[:i], st.pruneOrder[i+1:]...)
			break
		}
	}
	return true
}

// Stats counts engine activity for the Fig. 7 accounting and for tests.
type Stats struct {
	Published        uint64 // messages accepted by the proxy
	DispatchJobs     uint64 // dispatch jobs generated
	ReplicationJobs  uint64 // replication jobs generated
	SuppressedTopics uint64 // topics whose replication Prop. 1 removed
	AbortedReplicas  uint64 // replication jobs aborted (Table 3 Replicate.1)
	PrunesSent       uint64 // prune requests issued (Table 3 Dispatch.3)
	PrunesApplied    uint64 // Discard flags set on the Backup
	ReplicasStored   uint64 // copies stored in the Backup Buffer
	RecoveryJobs     uint64 // dispatch jobs created during promotion
	RecoverySkipped  uint64 // Backup Buffer entries skipped via Discard
	EvictedMessages  uint64 // Message Buffer evictions (ring wrap-around)
}

// engineStats is the live, atomic form of Stats. Lane workers on different
// lanes increment these concurrently, and runtimes snapshot them without
// any lock (Broker.Stats, the admin endpoint's scrape), so every counter is
// an atomic add rather than a plain word.
type engineStats struct {
	published        atomic.Uint64
	dispatchJobs     atomic.Uint64
	replicationJobs  atomic.Uint64
	suppressedTopics atomic.Uint64
	abortedReplicas  atomic.Uint64
	prunesSent       atomic.Uint64
	prunesApplied    atomic.Uint64
	replicasStored   atomic.Uint64
	recoveryJobs     atomic.Uint64
	recoverySkipped  atomic.Uint64
	evictedMessages  atomic.Uint64
}

func (s *engineStats) snapshot() Stats {
	return Stats{
		Published:        s.published.Load(),
		DispatchJobs:     s.dispatchJobs.Load(),
		ReplicationJobs:  s.replicationJobs.Load(),
		SuppressedTopics: s.suppressedTopics.Load(),
		AbortedReplicas:  s.abortedReplicas.Load(),
		PrunesSent:       s.prunesSent.Load(),
		PrunesApplied:    s.prunesApplied.Load(),
		ReplicasStored:   s.replicasStored.Load(),
		RecoveryJobs:     s.recoveryJobs.Load(),
		RecoverySkipped:  s.recoverySkipped.Load(),
		EvictedMessages:  s.evictedMessages.Load(),
	}
}

// Engine is the FRAME broker state machine. One Engine instance plays one
// role at a time: Primary (OnPublish/OnDispatched/OnReplicated) or Backup
// (OnReplica/OnPrune), switching roles at Promote.
type Engine struct {
	cfg     Config
	lanes   int
	topics  map[spec.TopicID]*topicState
	jobs    queue.Queue
	sharded *queue.ShardedEDF // non-nil iff lanes > 1
	meter   *queue.Metered    // non-nil iff cfg.MeterQueue
	stats   engineStats
}

// New returns an engine with no topics.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MessageBufferCap == 0 {
		cfg.MessageBufferCap = DefaultMessageBufferCap
	}
	if cfg.BackupBufferCap == 0 {
		cfg.BackupBufferCap = DefaultBackupBufferCap
	}
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	e := &Engine{
		cfg:    cfg,
		lanes:  cfg.Lanes,
		topics: make(map[spec.TopicID]*topicState),
	}
	if e.lanes > 1 {
		e.sharded = queue.NewShardedEDF(e.lanes)
		e.jobs = e.sharded
	} else {
		e.jobs = queue.New(cfg.Policy)
	}
	if cfg.MeterQueue {
		e.meter = queue.NewMetered(e.jobs)
		e.jobs = e.meter
	}
	return e, nil
}

// Lanes returns the number of dispatch lanes (1 without sharding).
func (e *Engine) Lanes() int { return e.lanes }

// LaneFor returns the dispatch lane the topic's jobs route to.
func (e *Engine) LaneFor(id spec.TopicID) int { return queue.LaneFor(id, e.lanes) }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a snapshot of the activity counters. Unlike most Engine
// methods it is safe to call from any goroutine without holding lane locks:
// every counter is atomic.
func (e *Engine) Stats() Stats { return e.stats.snapshot() }

// QueueLen returns the number of pending jobs.
func (e *Engine) QueueLen() int { return e.jobs.Len() }

// QueueMeter returns the job queue's meters when Config.MeterQueue is set,
// else nil. Unlike every other Engine method, the meter's accessors are
// safe to read without the runtime's engine lock.
func (e *Engine) QueueMeter() *queue.Metered { return e.meter }

// AddTopic registers a topic, computing its pseudo relative deadlines
// Dd' = Di − ΔBS and Dr' = (Ni+Li)·Ti − ΔBB − x (§IV-A) and the
// Proposition 1 replication verdict. It rejects topics that fail the
// admission test of §III-D-1.
func (e *Engine) AddTopic(t spec.Topic) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, ok := e.topics[t.ID]; ok {
		return fmt.Errorf("core: topic %d already registered", t.ID)
	}
	if err := timing.Admissible(t, e.cfg.Params); err != nil {
		return err
	}
	st := &topicState{
		spec:              t,
		dispatchPseudo:    timing.DispatchPseudoDeadline(t, e.cfg.Params),
		replicationPseudo: timing.ReplicationPseudoDeadline(t, e.cfg.Params),
		buffer:            ringbuf.New[entry](e.cfg.MessageBufferCap),
		backup:            ringbuf.New[entry](e.cfg.BackupBufferCap),
	}
	st.replicate = e.needsReplication(t)
	if !st.replicate && !t.BestEffort() {
		e.stats.suppressedTopics.Add(1)
	}
	e.topics[t.ID] = st
	return nil
}

// needsReplication decides at configuration time whether replication jobs
// will be generated for the topic.
func (e *Engine) needsReplication(t spec.Topic) bool {
	if !e.cfg.HasBackup {
		return false
	}
	if t.BestEffort() {
		// Best-effort subscribers ask for nothing; even the FCFS baseline
		// has no contract to protect, but the undifferentiated baseline
		// replicates everything anyway — that is exactly its flaw.
		if e.cfg.SelectiveReplication {
			return false
		}
		return true
	}
	if !e.cfg.SelectiveReplication {
		return true
	}
	return timing.NeedsReplication(t, e.cfg.Params)
}

// Topic returns the registered spec for id.
func (e *Engine) Topic(id spec.TopicID) (spec.Topic, bool) {
	st, ok := e.topics[id]
	if !ok {
		return spec.Topic{}, false
	}
	return st.spec, true
}

// CheckTopic reports whether id names a registered topic, returning the
// same wrapped ErrUnknownTopic that OnPublish would. The topics map is
// immutable after Start, so — like Topic — this is safe to call lock-free
// from any goroutine; the broker uses it to answer WrongShard redirects
// synchronously on the session goroutine before the asynchronous lane
// intake ever sees the frame.
func (e *Engine) CheckTopic(id spec.TopicID) error {
	if _, ok := e.topics[id]; !ok {
		return fmt.Errorf("%w %d (publish)", ErrUnknownTopic, id)
	}
	return nil
}

// WillReplicate reports the configuration-time replication verdict for id.
func (e *Engine) WillReplicate(id spec.TopicID) bool {
	st, ok := e.topics[id]
	return ok && st.replicate
}

// Topics returns the IDs of all registered topics (unspecified order).
func (e *Engine) Topics() []spec.TopicID {
	ids := make([]spec.TopicID, 0, len(e.topics))
	for id := range e.topics {
		ids = append(ids, id)
	}
	return ids
}

// OnPublish accepts a message arrival at the broker at local time now (tp)
// and generates its dispatch job and, if the topic replicates, its
// replication job (§IV-A). The Job Generator derives absolute deadlines by
// subtracting the observed ΔPB = now − m.Created from the pseudo relative
// deadlines, which lands on tc + Dd' and tc + Dr'.
func (e *Engine) OnPublish(m wire.Message, now time.Duration) error {
	st, ok := e.topics[m.Topic]
	if !ok {
		return fmt.Errorf("%w %d (publish)", ErrUnknownTopic, m.Topic)
	}
	e.stats.published.Add(1)
	// The buffer owns its copy of the payload: m.Payload may alias a
	// transport receive buffer (wire.ModeAlias) that is overwritten by the
	// next read, so the slot copies it — reusing the evicted entry's payload
	// storage, which makes the steady-state publish path allocation-free.
	idx, evicted := st.buffer.PushInPlace(func(slot *entry) {
		pl := slot.msg.Payload
		*slot = entry{msg: m, arrivedPrimary: now}
		slot.msg.Payload = appendPayload(pl, m.Payload)
	})
	if evicted {
		e.stats.evictedMessages.Add(1)
	}

	dispatch := queue.Job{
		Kind:        queue.KindDispatch,
		Topic:       m.Topic,
		Seq:         m.Seq,
		BufferIndex: idx,
		Release:     now,
		Deadline:    m.Created + st.dispatchPseudo,
	}
	var replicate *queue.Job
	if st.replicate {
		j := queue.Job{
			Kind:        queue.KindReplicate,
			Topic:       m.Topic,
			Seq:         m.Seq,
			BufferIndex: idx,
			Release:     now,
			Deadline:    deadlineOrMax(m.Created, st.replicationPseudo),
		}
		replicate = &j
		e.stats.replicationJobs.Add(1)
	}
	e.stats.dispatchJobs.Add(1)

	if replicate != nil && e.cfg.ReplicateFirst {
		e.jobs.Push(*replicate)
		e.jobs.Push(dispatch)
		return nil
	}
	e.jobs.Push(dispatch)
	if replicate != nil {
		e.jobs.Push(*replicate)
	}
	return nil
}

func deadlineOrMax(created, pseudo time.Duration) time.Duration {
	if pseudo == timing.NoDeadline {
		return timing.NoDeadline
	}
	return created + pseudo
}

// payloadKeepCap bounds the payload capacity a reused buffer (ring slot or
// worker scratch) retains across messages: one jumbo payload must not pin
// up to wire.MaxPayload bytes per slot for the life of the process. The
// evaluation workload's payloads are 16 bytes; 4 KiB keeps any sensible
// sensor payload allocation-free.
const payloadKeepCap = 4 << 10

// appendPayload copies src into dst's storage (from the start), allocating
// afresh when dst's capacity is oversized relative to payloadKeepCap.
func appendPayload(dst, src []byte) []byte {
	if cap(dst) > payloadKeepCap && len(src) <= payloadKeepCap {
		dst = nil
	}
	return append(dst[:0], src...)
}

// WorkKind is what a popped job resolved to.
type WorkKind int

// Work kinds.
const (
	// WorkNone means the job is stale (evicted or aborted); do nothing.
	WorkNone WorkKind = iota
	// WorkDispatch means push Msg to the topic's subscribers.
	WorkDispatch
	// WorkReplicate means push Msg to the Backup.
	WorkReplicate
)

// Work is the resolved action for a popped job.
//
// Ownership: Msg.Payload returned by NextWork/NextWorkLane aliases the ring
// slot the message lives in, so it is valid only until the topic's buffer
// evicts that slot (i.e. until enough later publishes of the same topic
// wrap the ring). Runtimes that hold Work across further arrivals while
// payloads are in play (the concurrent broker) must use NextWorkLaneInto,
// which copies the payload into caller-owned scratch before the lane lock
// is released; the discrete-event simulators model payload size without
// carrying bytes, so plain NextWork stays safe there.
type Work struct {
	Kind WorkKind
	Job  queue.Job
	Msg  wire.Message
	// ArrivedPrimary is tp for replicate frames and for recovery dispatches.
	ArrivedPrimary time.Duration
	// LossTolerance is the topic's Li, carried with each dispatch so the
	// broker's egress shed policy can bound consecutive drops per topic
	// without a topic-table lookup on the hot path.
	LossTolerance int
}

// NextWork pops the next job and resolves it against the buffers and the
// Table 3 flags, applying the Replicate-step-1 abort ("if Dispatched is
// True, abort") when coordination is on. It returns ok=false when the queue
// is empty.
func (e *Engine) NextWork() (Work, bool) {
	for {
		j, ok := e.jobs.Pop()
		if !ok {
			return Work{}, false
		}
		w := e.resolve(j)
		if w.Kind == WorkNone {
			continue
		}
		return w, true
	}
}

// NextWorkLane pops the next job of one dispatch lane and resolves it like
// NextWork. It must run under the lane's lock (see the package comment) and
// never touches the state of other lanes' topics. With Lanes ≤ 1 it behaves
// exactly like NextWork regardless of the lane argument.
func (e *Engine) NextWorkLane(lane int) (Work, bool) {
	if e.sharded == nil {
		return e.NextWork()
	}
	for {
		var j queue.Job
		var ok bool
		if e.meter != nil {
			j, ok = e.meter.PopLane(lane)
		} else {
			j, ok = e.sharded.PopLane(lane)
		}
		if !ok {
			return Work{}, false
		}
		w := e.resolve(j)
		if w.Kind == WorkNone {
			continue
		}
		return w, true
	}
}

// NextWorkLaneInto is NextWorkLane with a caller-owned payload buffer: the
// returned Work.Msg.Payload is copied into scratch's storage (grown as
// needed, re-allocated when a jumbo payload left it oversized), so the
// caller may keep using the message after releasing the lane lock while
// concurrent publishes evict and reuse the ring slot it came from. The
// possibly-grown scratch is returned for reuse; the broker keeps one per
// delivery worker, which makes the steady-state pop path allocation-free.
func (e *Engine) NextWorkLaneInto(lane int, scratch []byte) (Work, []byte, bool) {
	w, ok := e.NextWorkLane(lane)
	if !ok {
		return w, scratch, false
	}
	scratch = appendPayload(scratch, w.Msg.Payload)
	w.Msg.Payload = scratch
	return w, scratch, true
}

// PeekDeadlineLane returns the deadline of lane's next job without popping.
// It must run under the lane's lock. With Lanes ≤ 1 it behaves like
// PeekDeadline.
func (e *Engine) PeekDeadlineLane(lane int) (time.Duration, bool) {
	if e.sharded == nil {
		return e.PeekDeadline()
	}
	j, ok := e.sharded.PeekLane(lane)
	if !ok {
		return 0, false
	}
	return j.Deadline, true
}

// PeekDeadline returns the deadline of the next job without popping.
func (e *Engine) PeekDeadline() (time.Duration, bool) {
	j, ok := e.jobs.Peek()
	if !ok {
		return 0, false
	}
	return j.Deadline, true
}

func (e *Engine) resolve(j queue.Job) Work {
	st, ok := e.topics[j.Topic]
	if !ok {
		return Work{Kind: WorkNone}
	}
	buf := st.buffer
	if j.Recovery {
		buf = st.backup
	}
	ent, ok := buf.Get(j.BufferIndex)
	if !ok || ent.msg.Seq != j.Seq {
		// Evicted or overwritten since the job was generated.
		return Work{Kind: WorkNone}
	}
	switch j.Kind {
	case queue.KindDispatch:
		if ent.dispatched {
			return Work{Kind: WorkNone}
		}
		return Work{Kind: WorkDispatch, Job: j, Msg: ent.msg, ArrivedPrimary: ent.arrivedPrimary,
			LossTolerance: st.spec.LossTolerance}
	case queue.KindReplicate:
		if e.cfg.Coordination && ent.dispatched {
			e.stats.abortedReplicas.Add(1)
			return Work{Kind: WorkNone}
		}
		// Mark the replication in flight at hand-out time so a dispatch that
		// completes while the Replicator is still sending knows a replica
		// will exist at the Backup and must be pruned. Without this, the
		// Backup would keep a stale copy and re-dispatch it at recovery.
		buf.Update(j.BufferIndex, func(p *entry) { p.replicating = true })
		return Work{Kind: WorkReplicate, Job: j, Msg: ent.msg, ArrivedPrimary: ent.arrivedPrimary}
	default:
		return Work{Kind: WorkNone}
	}
}

// Coordination is the engine's instruction to the runtime after a dispatch
// completes (Table 3, Dispatch steps 2–3).
type Coordination struct {
	// SendPrune asks the runtime to send a Prune frame for (Topic, Seq) to
	// the Backup, because a replica of a now-dispatched message is there.
	SendPrune bool
	Topic     spec.TopicID
	Seq       uint64
}

// OnDispatched records the completion of a dispatch job: the message went
// out to every subscriber. It sets the Dispatched flag and, when
// coordination is on and a replica was already sent, requests a prune.
func (e *Engine) OnDispatched(j queue.Job) Coordination {
	st, ok := e.topics[j.Topic]
	if !ok {
		return Coordination{}
	}
	buf := st.buffer
	if j.Recovery {
		buf = st.backup
	}
	var replicated bool
	buf.Update(j.BufferIndex, func(ent *entry) {
		ent.dispatched = true
		replicated = ent.replicated || ent.replicating
	})
	if e.cfg.Coordination && replicated && e.cfg.HasBackup {
		e.stats.prunesSent.Add(1)
		return Coordination{SendPrune: true, Topic: j.Topic, Seq: j.Seq}
	}
	return Coordination{}
}

// OnReplicated records the completion of a replication job (Table 3,
// Replicate step 3).
func (e *Engine) OnReplicated(j queue.Job) {
	st, ok := e.topics[j.Topic]
	if !ok {
		return
	}
	st.buffer.Update(j.BufferIndex, func(ent *entry) { ent.replicated = true })
}

// OnReplica stores a message copy arriving from the Primary into the Backup
// Buffer (Backup role). arrivedPrimary is the original tp carried in the
// Replicate frame.
func (e *Engine) OnReplica(m wire.Message, arrivedPrimary time.Duration) error {
	st, ok := e.topics[m.Topic]
	if !ok {
		return fmt.Errorf("%w %d (replica)", ErrUnknownTopic, m.Topic)
	}
	discard := false
	if st.takePendingPrune(m.Seq) {
		discard = true
		e.stats.prunesApplied.Add(1)
	}
	// Like the Message Buffer, the Backup Buffer takes its own copy of the
	// payload (reusing the evicted slot's storage): the Replicate frame it
	// arrived in may alias a transport receive buffer.
	st.backup.PushInPlace(func(slot *entry) {
		pl := slot.msg.Payload
		*slot = entry{msg: m, arrivedPrimary: arrivedPrimary, discard: discard}
		slot.msg.Payload = appendPayload(pl, m.Payload)
	})
	e.stats.replicasStored.Add(1)
	return nil
}

// OnPrune applies a Discard request from the Primary (Table 3, Recovery
// step 1 precondition). Unknown sequence numbers are ignored: the copy may
// already have been evicted by ring wrap-around.
func (e *Engine) OnPrune(topic spec.TopicID, seq uint64) {
	st, ok := e.topics[topic]
	if !ok {
		return
	}
	found := false
	st.backup.Do(func(idx uint64, ent entry) {
		if ent.msg.Seq == seq {
			found = true
			if !ent.discard {
				st.backup.Update(idx, func(p *entry) { p.discard = true })
				e.stats.prunesApplied.Add(1)
			}
		}
	})
	if !found {
		// The prune outran its replica; remember it until the copy arrives.
		st.notePendingPrune(seq, st.backup.Capacity())
	}
}

// BackupBufferLen returns the number of live (non-discarded) copies in the
// topic's Backup Buffer; used by tests and the Fig. 9 analysis.
func (e *Engine) BackupBufferLen(topic spec.TopicID) int {
	st, ok := e.topics[topic]
	if !ok {
		return 0
	}
	n := 0
	st.backup.Do(func(_ uint64, ent entry) {
		if !ent.discard {
			n++
		}
	})
	return n
}

// Promote turns a Backup engine into the new Primary (§IV-A fault
// recovery): for every non-discarded Backup Buffer copy whose original has
// not been dispatched, it creates a dispatch job referring to the Backup
// Buffer, then disables further replication (the failed broker is gone).
// The dispatch deadlines keep the original creation times, so under EDF the
// backlog interleaves correctly with fresh arrivals.
func (e *Engine) Promote() {
	e.cfg.HasBackup = false
	for _, st := range e.topics {
		st.replicate = false
	}
	e.ScheduleRecovery()
}

// ScheduleRecovery sweeps every Backup Buffer and queues a recovery
// dispatch job for each non-discarded copy whose original was never
// dispatched (Table 3, Recovery step 1: pruned entries are skipped, so a
// message the failed Primary already dispatched is never re-dispatched).
// Promote uses it during §IV-A fail-over; a durable broker restarting
// from its on-disk log calls it directly after replaying messages and
// prune records, without touching the replication setting. Callers hold
// all lane locks, like Promote.
func (e *Engine) ScheduleRecovery() {
	for _, st := range e.topics {
		st.backup.Do(func(idx uint64, ent entry) {
			if ent.discard {
				e.stats.recoverySkipped.Add(1)
				return
			}
			if ent.dispatched {
				return
			}
			e.stats.recoveryJobs.Add(1)
			e.jobs.Push(queue.Job{
				Kind:        queue.KindDispatch,
				Topic:       st.spec.ID,
				Seq:         ent.msg.Seq,
				BufferIndex: idx,
				Release:     ent.arrivedPrimary,
				Deadline:    ent.msg.Created + st.dispatchPseudo,
				Recovery:    true,
			})
		})
	}
}
