package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/timing"
	"repro/internal/wire"
)

// aliasedMsg builds a message whose payload the caller will scribble over,
// standing in for a transport receive buffer decoded with wire.ModeAlias.
func aliasedMsg(seq uint64, payload []byte) wire.Message {
	return wire.Message{Topic: 0, Seq: seq, Created: time.Duration(seq), Payload: payload}
}

// TestOnPublishCopiesAliasedPayload: the Message Buffer must own its bytes —
// with zero-copy receive, m.Payload is overwritten by the very next frame on
// the same connection, long before dispatch runs.
func TestOnPublishCopiesAliasedPayload(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()), paperTopic(t, 0, 0))
	rbuf := []byte("live-payload-aaa")
	if err := e.OnPublish(aliasedMsg(1, rbuf), 0); err != nil {
		t.Fatal(err)
	}
	copy(rbuf, "XXXXXXXXXXXXXXXX") // next frame lands in the receive buffer

	for {
		w, ok := e.NextWork()
		if !ok {
			t.Fatal("no dispatch work")
		}
		if w.Kind != WorkDispatch {
			e.OnReplicated(w.Job)
			continue
		}
		if !bytes.Equal(w.Msg.Payload, []byte("live-payload-aaa")) {
			t.Errorf("dispatched payload = %q: buffer aliased the publisher's receive buffer", w.Msg.Payload)
		}
		return
	}
}

// TestOnReplicaCopiesAliasedPayload: same ownership rule on the Backup —
// recovery after promotion must dispatch the bytes that were replicated, not
// whatever the peer connection's buffer holds by then.
func TestOnReplicaCopiesAliasedPayload(t *testing.T) {
	backup := newEngine(t, FRAMEConfig(timing.PaperParams()), paperTopic(t, 2, 2))
	rbuf := []byte("replica-payload!")
	m := wire.Message{Topic: 2, Seq: 1, Created: time.Millisecond, Payload: rbuf}
	if err := backup.OnReplica(m, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	copy(rbuf, "XXXXXXXXXXXXXXXX")

	backup.Promote()
	w, ok := backup.NextWork()
	if !ok || w.Kind != WorkDispatch {
		t.Fatalf("work = %+v, want recovery dispatch", w)
	}
	if !bytes.Equal(w.Msg.Payload, []byte("replica-payload!")) {
		t.Errorf("recovered payload = %q: backup buffer aliased the peer's receive buffer", w.Msg.Payload)
	}
}

// TestNextWorkLaneIntoCopiesOutOfRing: a Work popped via NextWorkLaneInto
// must stay intact while later publishes wrap the ring and reuse its slot —
// the exact race the concurrent broker's workers face once payload storage
// is recycled in place.
func TestNextWorkLaneIntoCopiesOutOfRing(t *testing.T) {
	cfg := FRAMEConfig(timing.PaperParams())
	cfg.MessageBufferCap = 1 // every publish reuses the same slot
	e := newEngine(t, cfg, paperTopic(t, 0, 0))
	if err := e.OnPublish(aliasedMsg(1, []byte("first-message!!!")), 0); err != nil {
		t.Fatal(err)
	}
	w, scratch, ok := e.NextWorkLaneInto(0, nil)
	if !ok {
		t.Fatal("no work")
	}
	if len(scratch) == 0 || &w.Msg.Payload[0] != &scratch[0] {
		t.Fatal("NextWorkLaneInto did not back the payload with the caller's scratch")
	}
	// Overwrite the ring slot the message came from.
	if err := e.OnPublish(aliasedMsg(2, []byte("secnd-message!!!")), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Msg.Payload, []byte("first-message!!!")) {
		t.Errorf("payload = %q after slot reuse, want the copied original", w.Msg.Payload)
	}

	// The grown scratch is reused: popping the next job must not allocate
	// fresh payload storage.
	w2, scratch2, ok := e.NextWorkLaneInto(0, scratch)
	if !ok {
		t.Fatal("no second work")
	}
	if &scratch2[0] != &scratch[0] {
		t.Error("scratch was reallocated despite sufficient capacity")
	}
	if !bytes.Equal(w2.Msg.Payload, []byte("secnd-message!!!")) {
		t.Errorf("second payload = %q", w2.Msg.Payload)
	}
}

// TestAppendPayloadReuseAndShrink: the scratch/slot recycling helper reuses
// capacity in the common case and lets go of jumbo buffers once payloads
// return to normal size.
func TestAppendPayloadReuseAndShrink(t *testing.T) {
	// Reuse: a fitting destination keeps its backing array.
	dst := make([]byte, 0, 64)
	got := appendPayload(dst, []byte("abc"))
	if cap(got) != 64 {
		t.Errorf("fitting buffer reallocated: cap %d, want 64", cap(got))
	}
	if string(got) != "abc" {
		t.Errorf("got %q", got)
	}
	// Growth: a jumbo payload grows the buffer and is copied intact.
	jumbo := make([]byte, payloadKeepCap+1)
	jumbo[payloadKeepCap] = 0x7F
	got = appendPayload(got, jumbo)
	if !bytes.Equal(got, jumbo) {
		t.Error("jumbo payload corrupted")
	}
	// Shrink: once oversized, the next normal payload releases the jumbo
	// backing instead of pinning it forever.
	got = appendPayload(got, []byte("tiny"))
	if cap(got) > payloadKeepCap {
		t.Errorf("oversized buffer retained: cap %d > payloadKeepCap %d", cap(got), payloadKeepCap)
	}
	if string(got) != "tiny" {
		t.Errorf("got %q", got)
	}
}
