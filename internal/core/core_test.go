package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/queue"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/wire"
)

func newEngine(t *testing.T, cfg Config, topics ...spec.Topic) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, top := range topics {
		if err := e.AddTopic(top); err != nil {
			t.Fatalf("AddTopic(%d): %v", top.ID, err)
		}
	}
	return e
}

func paperTopic(t *testing.T, cat int, id spec.TopicID) spec.Topic {
	t.Helper()
	return spec.Table2()[cat].Stamp(id, spec.PayloadSize)
}

func msg(topic spec.TopicID, seq uint64, created time.Duration) wire.Message {
	return wire.Message{Topic: topic, Seq: seq, Created: created, Payload: []byte("0123456789abcdef")}
}

func TestConfigConstructors(t *testing.T) {
	p := timing.PaperParams()
	f := FRAMEConfig(p)
	if f.Policy != queue.PolicyEDF || !f.SelectiveReplication || !f.Coordination || !f.HasBackup {
		t.Errorf("FRAMEConfig = %+v", f)
	}
	c := FCFSConfig(p)
	if c.Policy != queue.PolicyFCFS || c.SelectiveReplication || !c.Coordination || !c.ReplicateFirst {
		t.Errorf("FCFSConfig = %+v", c)
	}
	m := FCFSMinusConfig(p)
	if m.Coordination {
		t.Error("FCFSMinusConfig has coordination on")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := FRAMEConfig(timing.PaperParams())
	bad.Policy = 0
	if _, err := New(bad); err == nil {
		t.Error("invalid policy accepted")
	}
	bad = FRAMEConfig(timing.PaperParams())
	bad.MessageBufferCap = -1
	if _, err := New(bad); err == nil {
		t.Error("negative buffer cap accepted")
	}
	bad = FRAMEConfig(timing.Params{Failover: -time.Second})
	if _, err := New(bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAddTopicAdmissionAndDuplicates(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()))
	top := paperTopic(t, 0, 1)
	if err := e.AddTopic(top); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTopic(top); err == nil {
		t.Error("duplicate topic accepted")
	}
	inadmissible := paperTopic(t, 0, 2)
	inadmissible.Retention = 0 // Dr < 0 with Li=0
	if err := e.AddTopic(inadmissible); err == nil {
		t.Error("inadmissible topic accepted")
	}
	invalid := paperTopic(t, 0, 3)
	invalid.Period = 0
	if err := e.AddTopic(invalid); err == nil {
		t.Error("invalid topic accepted")
	}
	if got, ok := e.Topic(1); !ok || got.ID != 1 {
		t.Error("Topic(1) lookup failed")
	}
	if _, ok := e.Topic(99); ok {
		t.Error("Topic(99) found")
	}
	if len(e.Topics()) != 1 {
		t.Errorf("Topics = %v", e.Topics())
	}
}

// TestSelectiveReplicationVerdicts reproduces §III-D-2 inside the engine:
// under FRAME only categories 2 and 5 replicate; under FCFS everything does.
func TestSelectiveReplicationVerdicts(t *testing.T) {
	var topics []spec.Topic
	for c := 0; c < 6; c++ {
		topics = append(topics, paperTopic(t, c, spec.TopicID(c)))
	}

	frame := newEngine(t, FRAMEConfig(timing.PaperParams()), topics...)
	wantFrame := map[spec.TopicID]bool{0: false, 1: false, 2: true, 3: false, 4: false, 5: true}
	for id, want := range wantFrame {
		if got := frame.WillReplicate(id); got != want {
			t.Errorf("FRAME WillReplicate(%d) = %v, want %v", id, got, want)
		}
	}
	if frame.Stats().SuppressedTopics != 3 { // categories 0, 1, 3
		t.Errorf("SuppressedTopics = %d, want 3", frame.Stats().SuppressedTopics)
	}

	fcfs := newEngine(t, FCFSConfig(timing.PaperParams()), topics...)
	for _, id := range fcfs.Topics() {
		if !fcfs.WillReplicate(id) {
			t.Errorf("FCFS WillReplicate(%d) = false, want true", id)
		}
	}
}

func TestFRAMEPlusRetentionBoostSuppressesAllReplication(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()))
	for c := 0; c < 6; c++ {
		top := paperTopic(t, c, spec.TopicID(c))
		if c == 2 || c == 5 {
			top.Retention++ // FRAME+ (§VI: Ni = 2 for categories 2 and 5)
		}
		if err := e.AddTopic(top); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range e.Topics() {
		if e.WillReplicate(id) {
			t.Errorf("FRAME+ still replicates topic %d", id)
		}
	}
}

func TestOnPublishGeneratesJobsWithPaperDeadlines(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()),
		paperTopic(t, 2, 2)) // cat 2 replicates: Dd'=99ms, Dr'=49.95ms
	created := 10 * time.Millisecond
	now := created + 300*time.Microsecond // ΔPB = 0.3ms
	if err := e.OnPublish(msg(2, 1, created), now); err != nil {
		t.Fatal(err)
	}
	if e.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2 (dispatch+replicate)", e.QueueLen())
	}
	// Under EDF the replication job (tc+49.95ms) precedes dispatch (tc+99ms).
	w, ok := e.NextWork()
	if !ok || w.Kind != WorkReplicate {
		t.Fatalf("first work = %+v, want replicate", w)
	}
	wantR := created + 49950*time.Microsecond
	if w.Job.Deadline != wantR {
		t.Errorf("replicate deadline = %v, want %v", w.Job.Deadline, wantR)
	}
	e.OnReplicated(w.Job)
	w, ok = e.NextWork()
	if !ok || w.Kind != WorkDispatch {
		t.Fatalf("second work = %+v, want dispatch", w)
	}
	if want := created + 99*time.Millisecond; w.Job.Deadline != want {
		t.Errorf("dispatch deadline = %v, want %v", w.Job.Deadline, want)
	}
	if w.ArrivedPrimary != now {
		t.Errorf("ArrivedPrimary = %v, want %v", w.ArrivedPrimary, now)
	}
}

func TestOnPublishUnknownTopic(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()))
	if err := e.OnPublish(msg(9, 1, 0), 0); err == nil {
		t.Error("publish to unknown topic accepted")
	}
}

func TestNonReplicatedTopicGetsOnlyDispatchJob(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()), paperTopic(t, 0, 0))
	if err := e.OnPublish(msg(0, 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	if e.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1", e.QueueLen())
	}
	st := e.Stats()
	if st.DispatchJobs != 1 || st.ReplicationJobs != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFCFSOrderReplicateThenDispatch(t *testing.T) {
	e := newEngine(t, FCFSConfig(timing.PaperParams()), paperTopic(t, 0, 0))
	if err := e.OnPublish(msg(0, 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	w, _ := e.NextWork()
	if w.Kind != WorkReplicate {
		t.Fatalf("FCFS first work = %v, want replicate", w.Kind)
	}
	e.OnReplicated(w.Job)
	w, _ = e.NextWork()
	if w.Kind != WorkDispatch {
		t.Fatalf("FCFS second work = %v, want dispatch", w.Kind)
	}
}

// TestCoordinationAbortsPendingReplication exercises Table 3, Replicate
// step 1: a message dispatched before its replication job pops makes the
// replication abort.
func TestCoordinationAbortsPendingReplication(t *testing.T) {
	// Category 5 under paper params: Dr'=449.95ms < Dd'=480ms, so EDF pops
	// replication first. Force dispatch first via a custom topic where
	// Dd' < Dr' but replication is still on (FCFS config, no ReplicateFirst).
	cfg := FCFSConfig(timing.PaperParams())
	cfg.ReplicateFirst = false // dispatch job queued first
	e := newEngine(t, cfg, paperTopic(t, 5, 5))
	if err := e.OnPublish(msg(5, 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	w, _ := e.NextWork()
	if w.Kind != WorkDispatch {
		t.Fatalf("first work = %v, want dispatch", w.Kind)
	}
	co := e.OnDispatched(w.Job)
	if co.SendPrune {
		t.Error("prune requested although replica not yet sent")
	}
	// The queued replication job must now abort.
	if w, ok := e.NextWork(); ok {
		t.Fatalf("replication not aborted: got %+v", w)
	}
	if e.Stats().AbortedReplicas != 1 {
		t.Errorf("AbortedReplicas = %d, want 1", e.Stats().AbortedReplicas)
	}
}

// TestCoordinationPruneAfterReplication exercises Table 3, Dispatch step 3:
// dispatching a message whose replica is at the Backup requests a prune.
func TestCoordinationPruneAfterReplication(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()), paperTopic(t, 2, 2))
	if err := e.OnPublish(msg(2, 7, 0), 0); err != nil {
		t.Fatal(err)
	}
	w, _ := e.NextWork() // replicate (earlier deadline)
	if w.Kind != WorkReplicate {
		t.Fatalf("first work = %v", w.Kind)
	}
	e.OnReplicated(w.Job)
	w, _ = e.NextWork() // dispatch
	co := e.OnDispatched(w.Job)
	if !co.SendPrune || co.Topic != 2 || co.Seq != 7 {
		t.Errorf("coordination = %+v, want prune for topic 2 seq 7", co)
	}
	if e.Stats().PrunesSent != 1 {
		t.Errorf("PrunesSent = %d", e.Stats().PrunesSent)
	}
}

func TestCoordinationDisabledNeverPrunesNorAborts(t *testing.T) {
	e := newEngine(t, FCFSMinusConfig(timing.PaperParams()), paperTopic(t, 2, 2))
	if err := e.OnPublish(msg(2, 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	w, _ := e.NextWork() // replicate first (ReplicateFirst)
	e.OnReplicated(w.Job)
	w, _ = e.NextWork() // dispatch
	if co := e.OnDispatched(w.Job); co.SendPrune {
		t.Error("FCFS− requested a prune")
	}
	// Re-publish and dispatch before replication: replication must still run.
	if err := e.OnPublish(msg(2, 2, time.Millisecond), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Queue order: replicate(2), dispatch(2). Pop and execute replicate later:
	// simulate dispatch-first by marking dispatched directly.
	w, _ = e.NextWork()
	if w.Kind != WorkReplicate || w.Msg.Seq != 2 {
		t.Fatalf("work = %+v", w)
	}
}

// TestBackupRoleAndRecoveryPruning exercises the full Table 3 Recovery
// procedure: discarded copies are skipped, the rest become recovery
// dispatch jobs reading from the Backup Buffer.
func TestBackupRoleAndRecoveryPruning(t *testing.T) {
	p := timing.PaperParams()
	backup := newEngine(t, FRAMEConfig(p), paperTopic(t, 2, 2))
	// Three replicas arrive from the Primary; seq 2 then gets pruned.
	for s := uint64(1); s <= 3; s++ {
		created := time.Duration(s) * 100 * time.Millisecond
		if err := backup.OnReplica(msg(2, s, created), created+time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	backup.OnPrune(2, 2)
	if got := backup.BackupBufferLen(2); got != 2 {
		t.Errorf("live backup copies = %d, want 2", got)
	}
	backup.Promote()
	st := backup.Stats()
	if st.RecoveryJobs != 2 || st.RecoverySkipped != 1 {
		t.Errorf("recovery stats = %+v", st)
	}
	// Recovery jobs dispatch seqs 1 and 3 in EDF (creation) order.
	var seqs []uint64
	for {
		w, ok := backup.NextWork()
		if !ok {
			break
		}
		if w.Kind != WorkDispatch || !w.Job.Recovery {
			t.Fatalf("work = %+v, want recovery dispatch", w)
		}
		seqs = append(seqs, w.Msg.Seq)
		backup.OnDispatched(w.Job)
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 3 {
		t.Errorf("recovered seqs = %v, want [1 3]", seqs)
	}
	// After promotion the engine is a Primary without a Backup: new
	// publishes must not generate replication jobs or prunes.
	if err := backup.OnPublish(msg(2, 4, time.Second), time.Second); err != nil {
		t.Fatal(err)
	}
	w, ok := backup.NextWork()
	if !ok || w.Kind != WorkDispatch {
		t.Fatalf("post-promotion work = %+v", w)
	}
	if co := backup.OnDispatched(w.Job); co.SendPrune {
		t.Error("post-promotion dispatch requested a prune")
	}
	if backup.QueueLen() != 0 {
		t.Errorf("unexpected residual jobs: %d", backup.QueueLen())
	}
}

func TestOnPruneUnknownSeqAndTopicIgnored(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()), paperTopic(t, 2, 2))
	e.OnPrune(2, 42) // nothing in buffer
	e.OnPrune(9, 1)  // unknown topic
	if e.Stats().PrunesApplied != 0 {
		t.Error("phantom prunes applied")
	}
}

func TestOnReplicaUnknownTopic(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()))
	if err := e.OnReplica(msg(3, 1, 0), 0); err == nil {
		t.Error("replica for unknown topic accepted")
	}
}

func TestBackupBufferEvictionKeepsNewest(t *testing.T) {
	cfg := FRAMEConfig(timing.PaperParams())
	cfg.BackupBufferCap = 3
	e := newEngine(t, cfg, paperTopic(t, 2, 2))
	for s := uint64(1); s <= 5; s++ {
		if err := e.OnReplica(msg(2, s, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.BackupBufferLen(2); got != 3 {
		t.Errorf("backup len = %d, want 3", got)
	}
	e.Promote()
	var seqs []uint64
	for {
		w, ok := e.NextWork()
		if !ok {
			break
		}
		seqs = append(seqs, w.Msg.Seq)
		e.OnDispatched(w.Job)
	}
	if len(seqs) != 3 || seqs[0] != 3 || seqs[2] != 5 {
		t.Errorf("recovered seqs = %v, want [3 4 5]", seqs)
	}
}

func TestStaleJobsAfterBufferWrapAreSkipped(t *testing.T) {
	cfg := FRAMEConfig(timing.PaperParams())
	cfg.MessageBufferCap = 2
	e := newEngine(t, cfg, paperTopic(t, 0, 0))
	// Publish 4 messages without executing: the first two jobs go stale.
	for s := uint64(1); s <= 4; s++ {
		created := time.Duration(s) * 50 * time.Millisecond
		if err := e.OnPublish(msg(0, s, created), created); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().EvictedMessages != 2 {
		t.Errorf("EvictedMessages = %d, want 2", e.Stats().EvictedMessages)
	}
	var seqs []uint64
	for {
		w, ok := e.NextWork()
		if !ok {
			break
		}
		seqs = append(seqs, w.Msg.Seq)
		e.OnDispatched(w.Job)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Errorf("dispatched seqs = %v, want [3 4]", seqs)
	}
}

func TestDoubleDispatchSuppressed(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()), paperTopic(t, 0, 0))
	if err := e.OnPublish(msg(0, 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	w, _ := e.NextWork()
	e.OnDispatched(w.Job)
	// A duplicate job for the same entry (e.g. recovery overlap) resolves to
	// nothing because the entry is already dispatched.
	e.OnPublish(msg(0, 1, 0), 0) // same seq lands in a new buffer slot: fine
	w2, ok := e.NextWork()
	if ok && w2.Msg.Seq == 1 && w2.Job.BufferIndex == w.Job.BufferIndex {
		t.Error("same entry dispatched twice")
	}
}

func TestPeekDeadline(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()), paperTopic(t, 0, 0))
	if _, ok := e.PeekDeadline(); ok {
		t.Error("PeekDeadline on empty queue")
	}
	if err := e.OnPublish(msg(0, 1, time.Second), time.Second); err != nil {
		t.Fatal(err)
	}
	d, ok := e.PeekDeadline()
	if !ok || d != time.Second+49*time.Millisecond {
		t.Errorf("PeekDeadline = %v, %v", d, ok)
	}
}

// TestCoordinationInvariantProperty drives a random interleaving of
// publish/execute steps on a replicated topic and checks Table 3 invariants:
// (1) a message is never replicated after being dispatched when coordination
// is on; (2) every prune refers to a message that was both replicated and
// dispatched; (3) no entry is dispatched twice.
func TestCoordinationInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coordination := seed%2 == 0
		cfg := FRAMEConfig(timing.PaperParams())
		cfg.Coordination = coordination
		cfg.Policy = queue.PolicyFCFS // arbitrary interleaving is the point
		e, err := New(cfg)
		if err != nil {
			return false
		}
		top := spec.Table2()[2].Stamp(2, 16)
		if err := e.AddTopic(top); err != nil {
			return false
		}
		dispatched := map[uint64]int{}
		replicatedAfterDispatch := false
		var badPrune bool
		replicated := map[uint64]bool{}
		seq := uint64(0)
		for step := 0; step < 200; step++ {
			if rng.Intn(2) == 0 {
				seq++
				created := time.Duration(step) * time.Millisecond
				if err := e.OnPublish(msg(2, seq, created), created); err != nil {
					return false
				}
				continue
			}
			w, ok := e.NextWork()
			if !ok {
				continue
			}
			switch w.Kind {
			case WorkDispatch:
				dispatched[w.Msg.Seq]++
				co := e.OnDispatched(w.Job)
				if co.SendPrune && (!replicated[co.Seq] || dispatched[co.Seq] == 0) {
					badPrune = true
				}
			case WorkReplicate:
				if coordination && dispatched[w.Msg.Seq] > 0 {
					replicatedAfterDispatch = true
				}
				replicated[w.Msg.Seq] = true
				e.OnReplicated(w.Job)
			}
		}
		for _, n := range dispatched {
			if n > 1 {
				return false
			}
		}
		return !replicatedAfterDispatch && !badPrune
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRecoveryNeverDispatchesPruned: random replicate/prune sequences at the
// Backup; after Promote, no pruned sequence is ever handed out.
func TestRecoveryNeverDispatchesPruned(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, err := New(FRAMEConfig(timing.PaperParams()))
		if err != nil {
			return false
		}
		top := spec.Table2()[2].Stamp(2, 16)
		if err := e.AddTopic(top); err != nil {
			return false
		}
		pruned := map[uint64]bool{}
		for s := uint64(1); s <= 20; s++ {
			if err := e.OnReplica(msg(2, s, 0), 0); err != nil {
				return false
			}
			if rng.Intn(2) == 0 {
				e.OnPrune(2, s)
				pruned[s] = true
			}
		}
		e.Promote()
		for {
			w, ok := e.NextWork()
			if !ok {
				break
			}
			if pruned[w.Msg.Seq] {
				return false
			}
			e.OnDispatched(w.Job)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStatsStringsAreStable(t *testing.T) {
	// Guard against accidental field renames that would break the bench
	// harness's reporting (reflection-free, so just compile-time usage).
	s := Stats{Published: 1}
	if s.Published != 1 {
		t.Error("stats field access broken")
	}
	if !strings.Contains("FRAME", "FRAME") {
		t.Error("impossible")
	}
}

func BenchmarkOnPublishNextWork(b *testing.B) {
	e, err := New(FRAMEConfig(timing.PaperParams()))
	if err != nil {
		b.Fatal(err)
	}
	top := spec.Table2()[2].Stamp(2, 16)
	if err := e.AddTopic(top); err != nil {
		b.Fatal(err)
	}
	m := msg(2, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Seq = uint64(i + 1)
		m.Created = time.Duration(i) * time.Microsecond
		if err := e.OnPublish(m, m.Created); err != nil {
			b.Fatal(err)
		}
		for {
			w, ok := e.NextWork()
			if !ok {
				break
			}
			if w.Kind == WorkDispatch {
				e.OnDispatched(w.Job)
			} else {
				e.OnReplicated(w.Job)
			}
		}
	}
}

// TestPruneBeforeReplicaIsRemembered: coordination must survive the prune
// frame overtaking the replica on independent worker paths.
func TestPruneBeforeReplicaIsRemembered(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()), paperTopic(t, 2, 2))
	e.OnPrune(2, 5) // replica not yet arrived
	if e.Stats().PrunesApplied != 0 {
		t.Fatal("prune applied before replica exists")
	}
	if err := e.OnReplica(msg(2, 5, 0), 0); err != nil {
		t.Fatal(err)
	}
	if e.Stats().PrunesApplied != 1 {
		t.Errorf("PrunesApplied = %d, want 1 (pending prune consumed)", e.Stats().PrunesApplied)
	}
	if got := e.BackupBufferLen(2); got != 0 {
		t.Errorf("live copies = %d, want 0", got)
	}
	e.Promote()
	if _, ok := e.NextWork(); ok {
		t.Error("pruned-before-arrival replica dispatched at recovery")
	}
}

// TestPendingPruneSetBounded: early prunes never grow past the Backup
// Buffer capacity, and each is consumed exactly once.
func TestPendingPruneSetBounded(t *testing.T) {
	cfg := FRAMEConfig(timing.PaperParams())
	cfg.BackupBufferCap = 4
	e := newEngine(t, cfg, paperTopic(t, 2, 2))
	for s := uint64(1); s <= 10; s++ {
		e.OnPrune(2, s) // all early
	}
	// Only the 4 newest pending prunes (7..10) survive.
	for s := uint64(1); s <= 10; s++ {
		if err := e.OnReplica(msg(2, s, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Stats().PrunesApplied; got != 4 {
		t.Errorf("PrunesApplied = %d, want 4 (bounded set)", got)
	}
	// Duplicate early prunes collapse.
	e2 := newEngine(t, cfg, paperTopic(t, 2, 2))
	e2.OnPrune(2, 1)
	e2.OnPrune(2, 1)
	if err := e2.OnReplica(msg(2, 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	if err := e2.OnReplica(msg(2, 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	if got := e2.Stats().PrunesApplied; got != 1 {
		t.Errorf("PrunesApplied = %d, want 1 (dup prune collapsed)", got)
	}
}

// TestInFlightReplicationTriggersPrune: a dispatch completing while the
// replica is still being sent must still request the prune.
func TestInFlightReplicationTriggersPrune(t *testing.T) {
	e := newEngine(t, FRAMEConfig(timing.PaperParams()), paperTopic(t, 2, 2))
	if err := e.OnPublish(msg(2, 1, 0), 0); err != nil {
		t.Fatal(err)
	}
	wRepl, _ := e.NextWork() // replicate handed out, send "in flight"
	if wRepl.Kind != WorkReplicate {
		t.Fatalf("first work = %v", wRepl.Kind)
	}
	wDisp, _ := e.NextWork() // dispatch completes while replica in flight
	if wDisp.Kind != WorkDispatch {
		t.Fatalf("second work = %v", wDisp.Kind)
	}
	co := e.OnDispatched(wDisp.Job)
	if !co.SendPrune {
		t.Error("no prune for in-flight replication")
	}
	e.OnReplicated(wRepl.Job) // send finishes afterwards
}
