package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/wire"
)

// This file checks the whole Primary/Backup protocol — job generation,
// worker execution, the Table 3 coordination, replica/prune transport,
// crash, promotion, and publisher re-send — under randomized interleavings
// of every concurrent step. It is the timing-free analog of Lemma 1:
//
//	completeness — every published message is delivered at least once,
//	provided it was (a) dispatched before the crash, or (b) replicated to
//	the Backup before the crash, or (c) among the publisher's Ni latest
//	messages at fail-over (and therefore re-sent);
//
//	no zombie copies — recovery never dispatches a copy whose prune was
//	applied, and only subscriber-level duplicates (which dedup absorbs)
//	may ever occur.
//
// The scheduler below interleaves worker hand-out, worker completion,
// network delivery (replicas and prunes may reorder relative to each
// other, as two Dispatcher/Replicator goroutines race on the peer link),
// and a single crash, in every order the seed generates.

// protoWorld is the model harness around two real engines.
type protoWorld struct {
	rng      *rand.Rand
	primary  *Engine
	backup   *Engine
	topic    spec.Topic
	nextSeq  uint64
	retained []wire.Message // publisher's ring of the Ni latest

	// Concurrency state.
	inflightWork []Work         // handed to workers, not yet completed
	network      []netFrame     // replica/prune frames in flight
	delivered    map[uint64]int // subscriber deliveries per seq
	dispatchedAt map[uint64]bool
	replicatedAt map[uint64]bool // replica landed at the Backup pre-crash

	crashed  bool
	promoted bool
	resent   bool
}

type netFrame struct {
	prune bool
	msg   wire.Message
	seq   uint64
}

func newProtoWorld(t *testing.T, seed int64, retention int) *protoWorld {
	t.Helper()
	topic := spec.Topic{
		ID: 1, Category: -1, Period: 100 * time.Millisecond,
		// Li=3 keeps every retention in {0..3} admissible; the properties
		// checked here are timing-free and independent of Li.
		Deadline: time.Second, LossTolerance: 3, Retention: retention,
		Destination: spec.DestEdge, PayloadSize: 4,
	}
	mk := func(hasBackup bool) *Engine {
		cfg := FRAMEConfig(timing.PaperParams())
		cfg.HasBackup = hasBackup
		// Force replication on so the protocol under test is exercised.
		cfg.SelectiveReplication = false
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddTopic(topic); err != nil {
			t.Fatal(err)
		}
		return e
	}
	return &protoWorld{
		rng:          rand.New(rand.NewSource(seed)),
		primary:      mk(true),
		backup:       mk(false),
		topic:        topic,
		delivered:    make(map[uint64]int),
		dispatchedAt: make(map[uint64]bool),
		replicatedAt: make(map[uint64]bool),
	}
}

// publish creates the next message at the publisher and hands it to the
// live broker (primary before crash, backup after fail-over).
func (w *protoWorld) publish(t *testing.T) {
	w.nextSeq++
	m := wire.Message{Topic: 1, Seq: w.nextSeq, Created: time.Duration(w.nextSeq) * w.topic.Period}
	if w.topic.Retention > 0 {
		w.retained = append(w.retained, m)
		if len(w.retained) > w.topic.Retention {
			w.retained = w.retained[1:]
		}
	}
	target := w.primary
	if w.crashed {
		if !w.resent {
			return // publisher hasn't failed over yet: message lost in x window
		}
		target = w.backup
	}
	if err := target.OnPublish(m, m.Created); err != nil {
		t.Fatal(err)
	}
}

// enabled returns the labels of all currently possible steps.
func (w *protoWorld) enabled(maxSeq uint64) []string {
	var out []string
	if w.nextSeq < maxSeq {
		out = append(out, "publish")
	}
	if !w.crashed {
		if w.primary.QueueLen() > 0 && len(w.inflightWork) < 2 {
			out = append(out, "handout")
		}
		for i := range w.inflightWork {
			out = append(out, fmt.Sprintf("complete:%d", i))
		}
		out = append(out, "crash")
	} else {
		if !w.promoted {
			out = append(out, "promote")
		}
		if !w.resent {
			out = append(out, "resend")
		}
		if w.promoted {
			// The new Primary's own delivery loop (recovery + fresh jobs).
			if w.backup.QueueLen() > 0 {
				out = append(out, "backup-step")
			}
		}
	}
	for i := range w.network {
		if !w.crashed || true { // network keeps delivering after the crash
			out = append(out, fmt.Sprintf("net:%d", i))
		}
	}
	return out
}

// step executes one labeled action.
func (w *protoWorld) step(t *testing.T, label string) {
	t.Helper()
	var idx int
	switch {
	case label == "publish":
		w.publish(t)
	case label == "handout":
		work, ok := w.primary.NextWork()
		if ok {
			w.inflightWork = append(w.inflightWork, work)
		}
	case scan(label, "complete:%d", &idx):
		work := w.inflightWork[idx]
		w.inflightWork = append(w.inflightWork[:idx], w.inflightWork[idx+1:]...)
		switch work.Kind {
		case WorkDispatch:
			w.delivered[work.Msg.Seq]++
			w.dispatchedAt[work.Msg.Seq] = true
			co := w.primary.OnDispatched(work.Job)
			if co.SendPrune {
				w.network = append(w.network, netFrame{prune: true, seq: co.Seq})
			}
		case WorkReplicate:
			w.primary.OnReplicated(work.Job)
			w.network = append(w.network, netFrame{msg: work.Msg})
		}
	case scan(label, "net:%d", &idx):
		f := w.network[idx]
		w.network = append(w.network[:idx], w.network[idx+1:]...)
		if f.prune {
			w.backup.OnPrune(1, f.seq)
			return
		}
		if err := w.backup.OnReplica(f.msg, f.msg.Created); err != nil {
			t.Fatal(err)
		}
		if !w.crashed {
			w.replicatedAt[f.msg.Seq] = true
		}
	case label == "crash":
		w.crashed = true
		w.inflightWork = nil // in-flight primary work dies with the host
	case label == "promote":
		w.backup.Promote()
		w.promoted = true
	case label == "resend":
		w.resent = true
		for _, m := range w.retained {
			if err := w.backup.OnPublish(m, m.Created); err != nil {
				t.Fatal(err)
			}
		}
	case label == "backup-step":
		work, ok := w.backup.NextWork()
		if !ok {
			return
		}
		if work.Kind == WorkDispatch {
			w.delivered[work.Msg.Seq]++
			w.backup.OnDispatched(work.Job)
		}
	default:
		t.Fatalf("unknown step %q", label)
	}
}

func scan(s, format string, out *int) bool {
	n, err := fmt.Sscanf(s, format, out)
	return err == nil && n == 1
}

// drain runs the post-crash machinery to completion in a random order.
func (w *protoWorld) drain(t *testing.T) {
	if !w.crashed {
		w.step(t, "crash")
	}
	for {
		acts := w.enabled(0) // no more publishes
		if len(acts) == 0 {
			return
		}
		w.step(t, acts[w.rng.Intn(len(acts))])
	}
}

// TestCrashRecoveryCompletenessProperty drives random interleavings and
// checks the completeness and no-zombie contracts at every terminal state.
func TestCrashRecoveryCompletenessProperty(t *testing.T) {
	const maxSeq = 6
	f := func(seed int64) bool {
		w := newProtoWorld(t, seed, int(((seed%4)+4)%4)) // Ni ∈ {0..3}
		steps := 0
		for !w.crashed && steps < 60 {
			acts := w.enabled(maxSeq)
			if len(acts) == 0 {
				break
			}
			w.step(t, acts[w.rng.Intn(len(acts))])
			steps++
		}
		w.drain(t)

		// Completeness: covered messages must be delivered at least once.
		retainedSet := make(map[uint64]bool, len(w.retained))
		for _, m := range w.retained {
			retainedSet[m.Seq] = true
		}
		for seq := uint64(1); seq <= w.nextSeq; seq++ {
			covered := w.dispatchedAt[seq] || w.replicatedAt[seq] || (retainedSet[seq] && w.resent)
			if covered && w.delivered[seq] == 0 {
				t.Logf("seed %d: message %d covered but never delivered", seed, seq)
				return false
			}
		}
		// Bounded duplication: each message has at most three delivery
		// sources — the Primary's dispatch, one recovery dispatch of its
		// Backup copy, and one re-sent retained copy — and each fires at
		// most once (subscriber-side dedup absorbs the duplicates).
		for seq, n := range w.delivered {
			if n > 3 {
				t.Logf("seed %d: message %d delivered %d times", seed, seq, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestCrashRecoveryPrunedNeverRecovered: across random interleavings, a
// copy whose prune was applied before promotion is never re-dispatched.
func TestCrashRecoveryPrunedNeverRecovered(t *testing.T) {
	f := func(seed int64) bool {
		w := newProtoWorld(t, seed, 2)
		// Run the fault-free phase long enough to build pruned state, but
		// force all network frames to deliver before the crash so "pruned"
		// is unambiguous.
		steps := 0
		for steps < 40 {
			acts := w.enabled(5)
			var filtered []string
			for _, a := range acts {
				if a != "crash" {
					filtered = append(filtered, a)
				}
			}
			if len(filtered) == 0 {
				break
			}
			w.step(t, filtered[w.rng.Intn(len(filtered))])
			steps++
		}
		for len(w.network) > 0 {
			w.step(t, "net:0")
		}
		prunedApplied := w.backup.Stats().PrunesApplied
		preDeliveries := make(map[uint64]int, len(w.delivered))
		for k, v := range w.delivered {
			preDeliveries[k] = v
		}
		w.drain(t)
		// Every pre-crash-dispatched-and-pruned message must not have been
		// delivered again by recovery (resends may still re-deliver the
		// retained tail; those are not pruned copies).
		if prunedApplied > 0 {
			for seq, n := range preDeliveries {
				if !w.dispatchedAt[seq] {
					continue
				}
				// Recovery re-delivery of a pruned copy would raise the
				// count without the seq being in the retained tail.
				inRetained := false
				for _, m := range w.retained {
					if m.Seq == seq {
						inRetained = true
					}
				}
				if !inRetained && w.delivered[seq] > n {
					t.Logf("seed %d: pruned message %d re-delivered", seed, seq)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
