package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/spec"
)

func roundTrip(t *testing.T, f *Frame) *Frame {
	t.Helper()
	buf, err := Encode(nil, f)
	if err != nil {
		t.Fatalf("Encode(%v): %v", f.Type, err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%v): %v", f.Type, err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msg := Message{Topic: 42, Seq: 9, Created: 123456 * time.Nanosecond, Payload: []byte("0123456789abcdef")}
	frames := []*Frame{
		{Type: TypePublish, Msg: msg},
		{Type: TypeResend, Msg: msg},
		{Type: TypeDispatch, Msg: msg, Dispatched: 999 * time.Microsecond},
		{Type: TypeReplicate, Msg: msg, ArrivedPrimary: 5 * time.Millisecond},
		{Type: TypePrune, Topic: 7, Seq: 88},
		{Type: TypeCancel, Topic: 8, Seq: 99},
		{Type: TypePoll, Nonce: 0xDEADBEEF},
		{Type: TypePollReply, Nonce: 0xDEADBEEF},
		{Type: TypeHello, Role: RolePublisher, Name: "edge-proxy-1"},
		{Type: TypeSubscribe, Topics: []spec.TopicID{1, 2, 3, 100000}},
		{Type: TypeTimeReq, Nonce: 5, T1: 100 * time.Millisecond},
		{Type: TypeTimeResp, Nonce: 5, T1: 100 * time.Millisecond, T2: 101 * time.Millisecond, T3: 102 * time.Millisecond},
		{Type: TypeRouteReq, Nonce: 77},
		{Type: TypeRouteResp, Nonce: 77, Epoch: 3, Shards: []ShardEntry{
			{Primary: "shard0-primary:7001", Backup: "shard0-backup:7002"},
			{Primary: "shard1-primary:7003", Backup: ""}, // pair that lost its Backup
		}},
		{Type: TypeWrongShard, Topic: 42, Epoch: 3},
		{Type: TypePubAck, Topic: 7, Seq: 88},
	}
	for _, f := range frames {
		t.Run(f.Type.String(), func(t *testing.T) {
			got := roundTrip(t, f)
			if !reflect.DeepEqual(got, f) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, f)
			}
		})
	}
}

func TestRoundTripEmptyPayloadAndTopics(t *testing.T) {
	got := roundTrip(t, &Frame{Type: TypePublish, Msg: Message{Topic: 1, Seq: 1}})
	if len(got.Msg.Payload) != 0 {
		t.Errorf("payload = %v, want empty", got.Msg.Payload)
	}
	got = roundTrip(t, &Frame{Type: TypeSubscribe})
	if len(got.Topics) != 0 {
		t.Errorf("topics = %v, want empty", got.Topics)
	}
	got = roundTrip(t, &Frame{Type: TypeHello, Role: RoleBrokerPeer})
	if got.Name != "" {
		t.Errorf("name = %q, want empty", got.Name)
	}
	got = roundTrip(t, &Frame{Type: TypeRouteResp, Nonce: 1, Epoch: 2})
	if len(got.Shards) != 0 {
		t.Errorf("shards = %v, want empty", got.Shards)
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	if _, err := Decode([]byte{0xFF}); !errors.Is(err, ErrBadType) {
		t.Errorf("err = %v, want ErrBadType", err)
	}
	if _, err := Decode([]byte{0}); !errors.Is(err, ErrBadType) {
		t.Errorf("err = %v, want ErrBadType", err)
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	if _, err := Encode(nil, &Frame{Type: Type(99)}); !errors.Is(err, ErrBadType) {
		t.Errorf("err = %v, want ErrBadType", err)
	}
}

func TestDecodeRejectsEmpty(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	full, err := Encode(nil, &Frame{
		Type: TypeDispatch,
		Msg:  Message{Topic: 3, Seq: 4, Created: time.Millisecond, Payload: []byte("abcdef")},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	full, err := Encode(nil, &Frame{Type: TypePoll, Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(full, 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestDecodeRejectsOversizedDeclaredLengths(t *testing.T) {
	// A publish frame whose declared payload length exceeds MaxPayload.
	buf := []byte{byte(TypePublish)}
	buf = append(buf, make([]byte, 4+8+8)...) // topic, seq, created
	buf = append(buf, 0xFF, 0xFF, 0xFF, 0xFF) // length = 2^32-1
	if _, err := Decode(buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	// A subscribe frame declaring more topics than MaxTopics.
	buf = []byte{byte(TypeSubscribe), 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := Decode(buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	// A route response declaring more shards than MaxShards.
	buf = []byte{byte(TypeRouteResp)}
	buf = append(buf, make([]byte, 8+8)...)   // nonce, epoch
	buf = append(buf, 0xFF, 0xFF, 0xFF, 0xFF) // count = 2^32-1
	if _, err := Decode(buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	// A shard entry declaring an address longer than MaxAddr.
	buf = []byte{byte(TypeRouteResp)}
	buf = append(buf, make([]byte, 8+8)...)   // nonce, epoch
	buf = append(buf, 0x01, 0x00, 0x00, 0x00) // count = 1
	buf = append(buf, 0xFF, 0xFF)             // primary length = 65535
	if _, err := Decode(buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestEncodeRejectsOversizedShardTable(t *testing.T) {
	f := &Frame{Type: TypeRouteResp, Shards: make([]ShardEntry, MaxShards+1)}
	if _, err := Encode(nil, f); !errors.Is(err, ErrTooLarge) {
		t.Errorf("shard count: err = %v, want ErrTooLarge", err)
	}
	f = &Frame{Type: TypeRouteResp, Shards: []ShardEntry{{Primary: string(make([]byte, MaxAddr+1))}}}
	if _, err := Encode(nil, f); !errors.Is(err, ErrTooLarge) {
		t.Errorf("address length: err = %v, want ErrTooLarge", err)
	}
}

func TestEncodeRejectsOversizedName(t *testing.T) {
	f := &Frame{Type: TypeHello, Role: RolePublisher, Name: string(make([]byte, MaxName+1))}
	if _, err := Encode(nil, f); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestDecodeDoesNotAliasInput(t *testing.T) {
	f := &Frame{Type: TypePublish, Msg: Message{Topic: 1, Seq: 1, Payload: []byte("aaaa")}}
	buf, err := Encode(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xFF
	}
	if !bytes.Equal(got.Msg.Payload, []byte("aaaa")) {
		t.Error("decoded payload aliases input buffer")
	}
}

func TestEncodeAppends(t *testing.T) {
	prefix := []byte("prefix")
	buf, err := Encode(prefix, &Frame{Type: TypePoll, Nonce: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf, prefix) {
		t.Error("Encode did not append to dst")
	}
	got, err := Decode(buf[len(prefix):])
	if err != nil || got.Nonce != 5 {
		t.Errorf("decode after prefix: %+v, %v", got, err)
	}
}

func TestTypeAndRoleStrings(t *testing.T) {
	if TypePublish.String() != "PUBLISH" || TypePrune.String() != "PRUNE" {
		t.Error("type labels wrong")
	}
	if Type(200).String() != "Type(200)" {
		t.Error("unknown type label wrong")
	}
	if RoleSubscriber.String() != "subscriber" || Role(9).String() != "Role(9)" {
		t.Error("role labels wrong")
	}
}

// randomFrame builds a valid random frame for property testing.
func randomFrame(rng *rand.Rand) *Frame {
	msg := Message{
		Topic:   spec.TopicID(rng.Uint32()),
		Seq:     rng.Uint64(),
		Created: time.Duration(rng.Int63()),
		Payload: randBytes(rng, rng.Intn(64)),
	}
	switch Type(rng.Intn(int(maxType)) + 1) {
	case TypePublish:
		return &Frame{Type: TypePublish, Msg: msg}
	case TypeResend:
		return &Frame{Type: TypeResend, Msg: msg}
	case TypeDispatch:
		return &Frame{Type: TypeDispatch, Msg: msg, Dispatched: time.Duration(rng.Int63())}
	case TypeReplicate:
		return &Frame{Type: TypeReplicate, Msg: msg, ArrivedPrimary: time.Duration(rng.Int63())}
	case TypePrune:
		return &Frame{Type: TypePrune, Topic: spec.TopicID(rng.Uint32()), Seq: rng.Uint64()}
	case TypeCancel:
		return &Frame{Type: TypeCancel, Topic: spec.TopicID(rng.Uint32()), Seq: rng.Uint64()}
	case TypePoll:
		return &Frame{Type: TypePoll, Nonce: rng.Uint64()}
	case TypePollReply:
		return &Frame{Type: TypePollReply, Nonce: rng.Uint64()}
	case TypeHello:
		return &Frame{Type: TypeHello, Role: Role(rng.Intn(3) + 1), Name: string(randBytes(rng, rng.Intn(32)))}
	case TypeTimeReq:
		return &Frame{Type: TypeTimeReq, Nonce: rng.Uint64(), T1: time.Duration(rng.Int63())}
	case TypeTimeResp:
		return &Frame{Type: TypeTimeResp, Nonce: rng.Uint64(), T1: time.Duration(rng.Int63()), T2: time.Duration(rng.Int63()), T3: time.Duration(rng.Int63())}
	case TypeRouteReq:
		return &Frame{Type: TypeRouteReq, Nonce: rng.Uint64()}
	case TypeRouteResp:
		n := rng.Intn(8)
		shards := make([]ShardEntry, 0, n)
		for i := 0; i < n; i++ {
			shards = append(shards, ShardEntry{
				Primary: string(randBytes(rng, rng.Intn(24))),
				Backup:  string(randBytes(rng, rng.Intn(24))),
			})
		}
		return &Frame{Type: TypeRouteResp, Nonce: rng.Uint64(), Epoch: rng.Uint64(), Shards: shards}
	case TypeWrongShard:
		return &Frame{Type: TypeWrongShard, Topic: spec.TopicID(rng.Uint32()), Epoch: rng.Uint64()}
	case TypePubAck:
		return &Frame{Type: TypePubAck, Topic: spec.TopicID(rng.Uint32()), Seq: rng.Uint64()}
	default:
		n := rng.Intn(16)
		topics := make([]spec.TopicID, 0, n)
		for i := 0; i < n; i++ {
			topics = append(topics, spec.TopicID(rng.Uint32()))
		}
		return &Frame{Type: TypeSubscribe, Topics: topics}
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	if n == 0 {
		return nil
	}
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestRoundTripProperty: every randomly generated frame survives
// encode→decode byte-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomFrame(rng)
		buf, err := Encode(nil, orig)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		// Normalize nil vs empty for comparison.
		if len(got.Msg.Payload) == 0 {
			got.Msg.Payload = nil
		}
		if len(orig.Msg.Payload) == 0 {
			orig.Msg.Payload = nil
		}
		if len(got.Topics) == 0 {
			got.Topics = nil
		}
		if len(orig.Topics) == 0 {
			orig.Topics = nil
		}
		if len(got.Shards) == 0 {
			got.Shards = nil
		}
		if len(orig.Shards) == 0 {
			orig.Shards = nil
		}
		return reflect.DeepEqual(got, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDecodeNeverPanicsOnGarbage: arbitrary bytes either decode or error.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(buf []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", buf, r)
			}
		}()
		_, _ = Decode(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodePublish(b *testing.B) {
	f := &Frame{Type: TypePublish, Msg: Message{Topic: 1, Seq: 1, Created: time.Millisecond, Payload: make([]byte, 16)}}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Encode(buf[:0], f)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePublish(b *testing.B) {
	buf, err := Encode(nil, &Frame{Type: TypePublish, Msg: Message{Topic: 1, Seq: 1, Created: time.Millisecond, Payload: make([]byte, 16)}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
