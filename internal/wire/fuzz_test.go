package wire

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/spec"
)

// FuzzDecode checks that Decode never panics on arbitrary input, that
// anything it accepts re-encodes to the identical byte string (the codec
// is canonical), and that DecodeInto — in both copy and alias modes, into a
// dirty reused frame — accepts exactly the same inputs and produces the
// same frame, byte for byte.
func FuzzDecode(f *testing.F) {
	seeds := []*Frame{
		{Type: TypePublish, Msg: Message{Topic: 1, Seq: 2, Created: 3, Payload: []byte("abcdef0123456789")}},
		{Type: TypeDispatch, Msg: Message{Topic: 9, Seq: 1}, Dispatched: time.Millisecond},
		{Type: TypeReplicate, Msg: Message{Topic: 9, Seq: 1}, ArrivedPrimary: time.Millisecond},
		{Type: TypePrune, Topic: 4, Seq: 17},
		{Type: TypePoll, Nonce: 42},
		{Type: TypeHello, Role: RoleBrokerPeer, Name: "peer"},
		{Type: TypeSubscribe, Topics: []spec.TopicID{1, 2, 3}},
		{Type: TypeTimeResp, Nonce: 1, T1: 2, T2: 3, T3: 4},
		{Type: TypeRouteReq, Nonce: 7},
		{Type: TypeRouteResp, Nonce: 7, Epoch: 2, Shards: []ShardEntry{{Primary: "p:1", Backup: "b:1"}, {Primary: "p:2"}}},
		{Type: TypeWrongShard, Topic: 9, Epoch: 2},
	}
	for _, fr := range seeds {
		buf, err := Encode(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		for _, mode := range []DecodeMode{ModeCopy, ModeAlias} {
			dst := dirtyFrame()
			intoErr := DecodeInto(data, dst, mode)
			if (err == nil) != (intoErr == nil) {
				t.Fatalf("accept mismatch on %x: Decode err=%v, DecodeInto(mode=%d) err=%v", data, err, mode, intoErr)
			}
			if intoErr == nil {
				re, reErr := Encode(nil, dst)
				if reErr != nil {
					t.Fatalf("DecodeInto(mode=%d) frame %+v does not re-encode: %v", mode, dst, reErr)
				}
				if !reflect.DeepEqual(re, data) {
					t.Fatalf("DecodeInto(mode=%d) not canonical:\n in  %x\n out %x", mode, data, re)
				}
			}
		}
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re, err := Encode(nil, fr)
		if err != nil {
			t.Fatalf("decoded frame %+v does not re-encode: %v", fr, err)
		}
		if !reflect.DeepEqual(re, data) {
			t.Fatalf("codec not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
