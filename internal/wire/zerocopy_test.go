package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/spec"
)

// dirtyFrame returns a frame full of stale garbage, as a reused hot-path
// frame would be: DecodeInto must overwrite every field, not just the ones
// the incoming type carries.
func dirtyFrame() *Frame {
	return &Frame{
		Type:           TypeTimeResp,
		Msg:            Message{Topic: 999, Seq: 888, Created: 777, Payload: append(make([]byte, 0, 128), "stale-payload"...)},
		Dispatched:     123,
		ArrivedPrimary: 456,
		Topic:          11,
		Seq:            22,
		Nonce:          33,
		Role:           RoleBrokerPeer,
		Name:           "stale",
		Topics:         append(make([]spec.TopicID, 0, 16), 5, 6, 7),
		T1:             1, T2: 2, T3: 3,
		Epoch:  44,
		Shards: append(make([]ShardEntry, 0, 4), ShardEntry{Primary: "stale-p", Backup: "stale-b"}),
	}
}

// assertEquivalent checks that a DecodeInto result carries exactly the same
// information as Decode's by re-encoding both: the codec is canonical
// (FuzzDecode), so byte equality is field equality without tripping over
// nil-vs-empty slice differences between the two decoders.
func assertEquivalent(t *testing.T, buf []byte, got *Frame) {
	t.Helper()
	want, err := Decode(buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	wantBytes, err := Encode(nil, want)
	if err != nil {
		t.Fatalf("re-encode Decode result: %v", err)
	}
	gotBytes, err := Encode(nil, got)
	if err != nil {
		t.Fatalf("re-encode DecodeInto result: %v", err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("DecodeInto disagrees with Decode:\n got  %x\n want %x", gotBytes, wantBytes)
	}
}

func TestDecodeIntoEquivalenceAllTypes(t *testing.T) {
	msg := Message{Topic: 42, Seq: 9, Created: 123456 * time.Nanosecond, Payload: []byte("0123456789abcdef")}
	frames := []*Frame{
		{Type: TypePublish, Msg: msg},
		{Type: TypeResend, Msg: msg},
		{Type: TypeDispatch, Msg: msg, Dispatched: 999 * time.Microsecond},
		{Type: TypeReplicate, Msg: msg, ArrivedPrimary: 5 * time.Millisecond},
		{Type: TypePrune, Topic: 7, Seq: 88},
		{Type: TypeCancel, Topic: 8, Seq: 99},
		{Type: TypePoll, Nonce: 0xDEADBEEF},
		{Type: TypePollReply, Nonce: 0xDEADBEEF},
		{Type: TypeHello, Role: RolePublisher, Name: "edge-proxy-1"},
		{Type: TypeSubscribe, Topics: []spec.TopicID{1, 2, 3, 100000}},
		{Type: TypeTimeReq, Nonce: 5, T1: 100 * time.Millisecond},
		{Type: TypeTimeResp, Nonce: 5, T1: 100 * time.Millisecond, T2: 101 * time.Millisecond, T3: 102 * time.Millisecond},
		{Type: TypeRouteReq, Nonce: 77},
		{Type: TypeRouteResp, Nonce: 77, Epoch: 3, Shards: []ShardEntry{
			{Primary: "shard0-primary:7001", Backup: "shard0-backup:7002"},
			{Primary: "shard1-primary:7003"},
		}},
		{Type: TypeWrongShard, Topic: 42, Epoch: 3},
	}
	for _, f := range frames {
		for _, mode := range []DecodeMode{ModeCopy, ModeAlias} {
			name := f.Type.String() + "/copy"
			if mode == ModeAlias {
				name = f.Type.String() + "/alias"
			}
			t.Run(name, func(t *testing.T) {
				buf, err := Encode(nil, f)
				if err != nil {
					t.Fatal(err)
				}
				dst := dirtyFrame()
				if err := DecodeInto(buf, dst, mode); err != nil {
					t.Fatalf("DecodeInto: %v", err)
				}
				assertEquivalent(t, buf, dst)
			})
		}
	}
}

// TestDecodeIntoEquivalenceProperty: random frames decoded into dirty reused
// targets agree with Decode in both modes.
func TestDecodeIntoEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	copyDst, aliasDst := dirtyFrame(), dirtyFrame()
	for i := 0; i < 500; i++ {
		orig := randomFrame(rng)
		buf, err := Encode(nil, orig)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeInto(buf, copyDst, ModeCopy); err != nil {
			t.Fatalf("DecodeInto(copy, %v): %v", orig.Type, err)
		}
		assertEquivalent(t, buf, copyDst)
		if err := DecodeInto(buf, aliasDst, ModeAlias); err != nil {
			t.Fatalf("DecodeInto(alias, %v): %v", orig.Type, err)
		}
		assertEquivalent(t, buf, aliasDst)
	}
}

func TestDecodeIntoCopyDoesNotAlias(t *testing.T) {
	buf, err := Encode(nil, &Frame{Type: TypePublish, Msg: Message{Topic: 1, Seq: 1, Payload: []byte("aaaa")}})
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := DecodeInto(buf, &f, ModeCopy); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xFF
	}
	if !bytes.Equal(f.Msg.Payload, []byte("aaaa")) {
		t.Error("ModeCopy payload aliases the input buffer")
	}
}

func TestDecodeIntoAliasPointsIntoInput(t *testing.T) {
	buf, err := Encode(nil, &Frame{Type: TypePublish, Msg: Message{Topic: 1, Seq: 1, Payload: []byte("aaaa")}})
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := DecodeInto(buf, &f, ModeAlias); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Msg.Payload, []byte("aaaa")) {
		t.Fatalf("payload = %q", f.Msg.Payload)
	}
	// Mutating the input must show through the alias — that is the contract
	// callers opt into with ModeAlias.
	copy(buf[len(buf)-4:], "bbbb")
	if !bytes.Equal(f.Msg.Payload, []byte("bbbb")) {
		t.Error("ModeAlias payload does not alias the input buffer")
	}
}

// TestDecodeIntoCopySteadyStateAllocs: once the destination frame's buffers
// have grown to the workload size, ModeCopy decoding allocates nothing.
func TestDecodeIntoCopySteadyStateAllocs(t *testing.T) {
	buf, err := Encode(nil, &Frame{
		Type: TypeDispatch,
		Msg:  Message{Topic: 3, Seq: 4, Created: time.Millisecond, Payload: make([]byte, 256)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	if err := DecodeInto(buf, &f, ModeCopy); err != nil {
		t.Fatal(err) // warm-up grows f's payload storage
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeInto(buf, &f, ModeCopy); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ModeCopy DecodeInto allocates %.1f/op, want 0", allocs)
	}
}

func TestDecodeIntoRejectsBadInput(t *testing.T) {
	var f Frame
	if err := DecodeInto(nil, &f, ModeCopy); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty: err = %v, want ErrTruncated", err)
	}
	if err := DecodeInto([]byte{0xFF}, &f, ModeCopy); !errors.Is(err, ErrBadType) {
		t.Errorf("bad type: err = %v, want ErrBadType", err)
	}
	full, err := Encode(nil, &Frame{Type: TypePoll, Nonce: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(append(full, 0x00), &f, ModeCopy); err == nil {
		t.Error("trailing byte accepted")
	}
	full, err = Encode(nil, &Frame{
		Type: TypeDispatch,
		Msg:  Message{Topic: 3, Seq: 4, Created: time.Millisecond, Payload: []byte("abcdef")},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if err := DecodeInto(full[:cut], &f, ModeAlias); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", cut)
		}
	}
}

// TestDecodeIntoRejectsWhatDecodeRejects: the two decoders accept exactly
// the same input set, probed with structured near-valid garbage.
func TestDecodeIntoRejectsWhatDecodeRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dst := dirtyFrame()
	for i := 0; i < 2000; i++ {
		n := rng.Intn(40)
		buf := make([]byte, n)
		rng.Read(buf)
		if n > 0 {
			buf[0] = byte(rng.Intn(int(maxType) + 3)) // bias toward real types
		}
		_, decErr := Decode(buf)
		intoErr := DecodeInto(buf, dst, DecodeMode(rng.Intn(2)))
		if (decErr == nil) != (intoErr == nil) {
			t.Fatalf("accept mismatch on %x: Decode err=%v, DecodeInto err=%v", buf, decErr, intoErr)
		}
		if decErr == nil {
			assertEquivalent(t, buf, dst)
		}
	}
}

// TestAppendBodyHelpersMatchEncode: the Append*Body fast paths must produce
// byte-identical output to Encode for the corresponding frame, or receivers
// would see different frames depending on which send path the broker took.
func TestAppendBodyHelpersMatchEncode(t *testing.T) {
	m := Message{Topic: 42, Seq: 9, Created: 123456, Payload: []byte("0123456789abcdef")}
	prefix := []byte("prefix") // helpers append, like Encode

	want, err := Encode(nil, &Frame{Type: TypeDispatch, Msg: m, Dispatched: 999 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	got := AppendDispatchBody(append([]byte(nil), prefix...), &m, 999*time.Microsecond)
	if !bytes.HasPrefix(got, prefix) || !bytes.Equal(got[len(prefix):], want) {
		t.Errorf("AppendDispatchBody:\n got  %x\n want %x", got, want)
	}

	want, err = Encode(nil, &Frame{Type: TypeReplicate, Msg: m, ArrivedPrimary: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	got = AppendReplicateBody(nil, &m, 5*time.Millisecond)
	if !bytes.Equal(got, want) {
		t.Errorf("AppendReplicateBody:\n got  %x\n want %x", got, want)
	}

	want, err = Encode(nil, &Frame{Type: TypePrune, Topic: 7, Seq: 88})
	if err != nil {
		t.Fatal(err)
	}
	got = AppendPruneBody(nil, 7, 88)
	if !bytes.Equal(got, want) {
		t.Errorf("AppendPruneBody:\n got  %x\n want %x", got, want)
	}
}

// TestAppendBodyRoundTrip: helper-built bodies decode back to the frames
// they stand for, via both Decode and DecodeInto.
func TestAppendBodyRoundTrip(t *testing.T) {
	m := Message{Topic: 3, Seq: 17, Created: time.Second, Payload: []byte("xyz")}
	body := AppendDispatchBody(nil, &m, 2*time.Millisecond)
	f, err := Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TypeDispatch || f.Msg.Seq != 17 || f.Dispatched != 2*time.Millisecond {
		t.Errorf("dispatch round trip: %+v", f)
	}
	var ff Frame
	if err := DecodeInto(AppendPruneBody(nil, 9, 100), &ff, ModeAlias); err != nil {
		t.Fatal(err)
	}
	if ff.Type != TypePrune || ff.Topic != 9 || ff.Seq != 100 {
		t.Errorf("prune round trip: %+v", ff)
	}
}

func BenchmarkDecodeIntoCopy(b *testing.B) {
	buf, err := Encode(nil, &Frame{Type: TypeDispatch, Msg: Message{Topic: 1, Seq: 1, Created: time.Millisecond, Payload: make([]byte, 256)}, Dispatched: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	var f Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(buf, &f, ModeCopy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeIntoAlias(b *testing.B) {
	buf, err := Encode(nil, &Frame{Type: TypeDispatch, Msg: Message{Topic: 1, Seq: 1, Created: time.Millisecond, Payload: make([]byte, 256)}, Dispatched: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	var f Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(buf, &f, ModeAlias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendDispatchBody(b *testing.B) {
	m := Message{Topic: 1, Seq: 1, Created: time.Millisecond, Payload: make([]byte, 256)}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendDispatchBody(buf[:0], &m, time.Millisecond)
	}
}
