// Zero-allocation codec entry points.
//
// Decode allocates a fresh Frame, payload, and topic list per call — fine
// for control traffic, but the broker's hot path decodes one frame per
// published message and the resulting garbage inflates tail latency exactly
// where the paper's deadline analysis (Lemmas 1–2) is tightest. DecodeInto
// is the steady-state-allocation-free alternative: the caller owns the Frame
// and its variable-length fields are either reused (ModeCopy) or aliased
// into the read buffer (ModeAlias). The Append*Body helpers are the encode
// side of the same idea: they build a frame body once, so the broker can fan
// the identical bytes out to every subscriber instead of re-encoding per
// connection (see transport.Conn.SendEncoded).
package wire

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/spec"
)

// DecodeMode selects who owns the variable-length fields DecodeInto fills.
type DecodeMode int

const (
	// ModeCopy copies Payload bytes into storage owned by the destination
	// frame, reusing its existing capacity. The decoded frame stays valid
	// after buf is overwritten; steady state needs no allocation once the
	// frame's buffers have grown to the workload's sizes.
	ModeCopy DecodeMode = iota
	// ModeAlias points Payload directly into buf: zero copies, but the
	// frame is only valid until the caller reuses buf (e.g. the next
	// transport read into the same receive buffer). Whoever retains the
	// message beyond that point must copy the payload first — the engine's
	// Message/Backup Buffers do (see core.OnPublish/OnReplica).
	ModeAlias
)

// DecodeInto parses one frame from buf into f, which the caller owns and may
// reuse across calls. Every field of f is overwritten; Payload and Topics
// storage is recycled per mode (Topics always copies — it is a typed slice,
// not raw bytes). On error f's contents are unspecified. The accepted input
// set and resulting field values are byte-for-byte identical to Decode's.
func DecodeInto(buf []byte, f *Frame, mode DecodeMode) error {
	payload := f.Msg.Payload[:0]
	topics := f.Topics[:0]
	shards := f.Shards[:0]
	*f = Frame{}
	d := decoder{buf: buf}
	t := d.u8()
	if d.err != nil {
		return d.err
	}
	f.Type = Type(t)
	switch f.Type {
	case TypePublish, TypeResend:
		d.messageInto(&f.Msg, payload, mode)
	case TypeDispatch:
		d.messageInto(&f.Msg, payload, mode)
		f.Dispatched = time.Duration(d.u64())
	case TypeReplicate:
		d.messageInto(&f.Msg, payload, mode)
		f.ArrivedPrimary = time.Duration(d.u64())
	case TypePrune, TypeCancel, TypePubAck:
		f.Topic = spec.TopicID(d.u32())
		f.Seq = d.u64()
	case TypePoll, TypePollReply:
		f.Nonce = d.u64()
	case TypeHello:
		f.Role = Role(d.u8())
		n := int(d.u16())
		f.Name = string(d.bytes(n))
	case TypeSubscribe:
		n := d.u32()
		if n > MaxTopics {
			return fmt.Errorf("%w: %d topics", ErrTooLarge, n)
		}
		if d.err == nil {
			for i := uint32(0); i < n; i++ {
				topics = append(topics, spec.TopicID(d.u32()))
			}
			f.Topics = topics
		}
	case TypeTimeReq:
		f.Nonce = d.u64()
		f.T1 = time.Duration(d.u64())
	case TypeTimeResp:
		f.Nonce = d.u64()
		f.T1 = time.Duration(d.u64())
		f.T2 = time.Duration(d.u64())
		f.T3 = time.Duration(d.u64())
	case TypeRouteReq:
		f.Nonce = d.u64()
	case TypeRouteResp:
		f.Nonce = d.u64()
		f.Epoch = d.u64()
		n := d.u32()
		if n > MaxShards {
			return fmt.Errorf("%w: %d shards", ErrTooLarge, n)
		}
		if d.err == nil {
			for i := uint32(0); i < n && d.err == nil; i++ {
				shards = append(shards, d.shardEntry())
			}
			f.Shards = shards
		}
	case TypeWrongShard:
		f.Topic = spec.TopicID(d.u32())
		f.Epoch = d.u64()
	default:
		return fmt.Errorf("%w: %d", ErrBadType, t)
	}
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != d.off {
		return fmt.Errorf("wire: %d trailing bytes after %v frame", len(d.buf)-d.off, f.Type)
	}
	return nil
}

// messageInto is decoder.message with caller-supplied payload storage.
func (d *decoder) messageInto(m *Message, payload []byte, mode DecodeMode) {
	m.Topic = spec.TopicID(d.u32())
	m.Seq = d.u64()
	m.Created = time.Duration(d.u64())
	n := d.u32()
	if n > MaxPayload {
		d.err = fmt.Errorf("%w: payload %d bytes", ErrTooLarge, n)
		return
	}
	if !d.need(int(n)) {
		return
	}
	src := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	if mode == ModeAlias {
		m.Payload = src
		return
	}
	m.Payload = append(payload, src...)
}

// AppendDispatchBody appends the body of a Dispatch frame for m — exactly
// the bytes Encode produces for Frame{Type: TypeDispatch, Msg: m,
// Dispatched: dispatched}. The broker builds this once per message and fans
// the same bytes out to every subscriber via Conn.SendEncoded. Size limits
// are enforced where Encode enforces them: on the transport's send path.
func AppendDispatchBody(dst []byte, m *Message, dispatched time.Duration) []byte {
	dst = append(dst, byte(TypeDispatch))
	dst = encodeMessage(dst, m)
	return binary.LittleEndian.AppendUint64(dst, uint64(dispatched))
}

// AppendReplicateBody appends the body of a Replicate frame for m with the
// original Primary arrival time tp.
func AppendReplicateBody(dst []byte, m *Message, arrivedPrimary time.Duration) []byte {
	dst = append(dst, byte(TypeReplicate))
	dst = encodeMessage(dst, m)
	return binary.LittleEndian.AppendUint64(dst, uint64(arrivedPrimary))
}

// AppendPruneBody appends the body of a Prune frame for (topic, seq).
func AppendPruneBody(dst []byte, topic spec.TopicID, seq uint64) []byte {
	dst = append(dst, byte(TypePrune))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(topic))
	return binary.LittleEndian.AppendUint64(dst, seq)
}

// AppendPubAckBody appends the body of a PubAck frame for (topic, seq),
// the durable broker's "your publish is on stable storage" answer.
func AppendPubAckBody(dst []byte, topic spec.TopicID, seq uint64) []byte {
	dst = append(dst, byte(TypePubAck))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(topic))
	return binary.LittleEndian.AppendUint64(dst, seq)
}
