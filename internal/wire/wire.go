// Package wire defines FRAME's message model and binary wire protocol.
//
// The paper implements FRAME inside the TAO real-time event service, where
// messages travel as CORBA events. This reproduction replaces that substrate
// with a compact, self-describing binary protocol: every unit on the wire is
// a Frame — publish, dispatch, replicate, prune (the dispatch–replicate
// coordination signal of Table 3), fail-over re-send, status polling for
// failure detection, and session setup.
//
// Frames are encoded little-endian with a one-byte type tag and carried over
// stream transports with a uint32 length prefix (see FrameReader/Writer in
// package transport).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/spec"
)

// Type tags a frame's meaning.
type Type uint8

// Frame types.
const (
	// TypePublish carries a fresh message from a publisher to the Primary.
	TypePublish Type = iota + 1
	// TypeResend carries a retained message re-sent by a publisher to the
	// Backup during fail-over (§III-B).
	TypeResend
	// TypeDispatch carries a message from a broker to a subscriber.
	TypeDispatch
	// TypeReplicate carries a message copy from the Primary to the Backup.
	TypeReplicate
	// TypePrune asks the Backup to set the Discard flag for a message copy
	// after the original was dispatched (Table 3).
	TypePrune
	// TypeCancel revokes a pending replication job on the Primary; it never
	// crosses hosts but is representable for symmetric tooling and logs.
	TypeCancel
	// TypePoll is the Backup's periodic liveness probe of the Primary.
	TypePoll
	// TypePollReply answers a TypePoll.
	TypePollReply
	// TypeHello opens a session and declares the peer's role and identity.
	TypeHello
	// TypeSubscribe registers interest in a set of topics.
	TypeSubscribe
	// TypeTimeReq is a clock-sync probe: the client records T1 locally and
	// sends the request (see package clocksync).
	TypeTimeReq
	// TypeTimeResp answers a TypeTimeReq with the server's receive (T2) and
	// transmit (T3) timestamps.
	TypeTimeResp
	// TypeRouteReq asks a routing-plane endpoint (the cluster directory, or
	// any broker that holds the table) for the current cluster routing table.
	TypeRouteReq
	// TypeRouteResp answers a TypeRouteReq with the epoch-versioned shard
	// table: one entry per shard, in shard-index order.
	TypeRouteResp
	// TypeWrongShard tells a publisher its frame named a topic this broker's
	// shard does not own, carrying the broker's routing epoch so the client
	// can detect a stale cached table and refresh (package cluster).
	TypeWrongShard
	// TypePubAck tells a publisher its (Topic, Seq) publish reached stable
	// storage — sent only by brokers running the opt-in durable mode, after
	// the group-commit fsync covering the record completes.
	TypePubAck

	maxType = TypePubAck
)

// String returns a protocol-stable label for the type.
func (t Type) String() string {
	switch t {
	case TypePublish:
		return "PUBLISH"
	case TypeResend:
		return "RESEND"
	case TypeDispatch:
		return "DISPATCH"
	case TypeReplicate:
		return "REPLICATE"
	case TypePrune:
		return "PRUNE"
	case TypeCancel:
		return "CANCEL"
	case TypePoll:
		return "POLL"
	case TypePollReply:
		return "POLL_REPLY"
	case TypeHello:
		return "HELLO"
	case TypeSubscribe:
		return "SUBSCRIBE"
	case TypeTimeReq:
		return "TIME_REQ"
	case TypeTimeResp:
		return "TIME_RESP"
	case TypeRouteReq:
		return "ROUTE_REQ"
	case TypeRouteResp:
		return "ROUTE_RESP"
	case TypeWrongShard:
		return "WRONG_SHARD"
	case TypePubAck:
		return "PUB_ACK"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Role identifies a session peer in a Hello frame.
type Role uint8

// Session roles.
const (
	RolePublisher Role = iota + 1
	RoleSubscriber
	RoleBrokerPeer // the other broker (Primary↔Backup link)
)

// String returns the role label.
func (r Role) String() string {
	switch r {
	case RolePublisher:
		return "publisher"
	case RoleSubscriber:
		return "subscriber"
	case RoleBrokerPeer:
		return "broker-peer"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// ShardEntry is one shard's broker pair in a RouteResp table: the current
// Primary address first, then the standby Backup (empty once the pair has
// lost a member — after a promotion the promoted broker moves to Primary
// and Backup empties until an operator replaces it).
type ShardEntry struct {
	Primary string
	Backup  string
}

// Message is the payload-bearing unit: one sporadic sample of one topic.
type Message struct {
	Topic spec.TopicID
	// Seq is the topic-local sequence number assigned by the publisher,
	// starting at 1. Subscribers detect losses from gaps in Seq.
	Seq uint64
	// Created is tc: creation time at the publisher, in the synchronized
	// timebase (nanoseconds).
	Created time.Duration
	// Payload is the application payload (16 bytes in the paper's runs).
	Payload []byte
}

// Frame is the wire-level union. Exactly the fields implied by Type are
// meaningful; the rest stay zero.
type Frame struct {
	Type Type

	// Msg is set for Publish, Resend, Dispatch, and Replicate frames.
	Msg Message

	// Dispatched is td for Dispatch frames: when the broker handed the
	// message to the subscriber link (for ΔBS measurement).
	Dispatched time.Duration
	// ArrivedPrimary is tp for Replicate frames: the original arrival time
	// at the Primary, letting the Backup reconstruct deadlines on recovery.
	ArrivedPrimary time.Duration

	// Topic and Seq identify the target of Prune, Cancel, and PubAck frames.
	Topic spec.TopicID
	Seq   uint64

	// Nonce correlates Poll and PollReply frames.
	Nonce uint64

	// Role and Name describe the peer in a Hello frame.
	Role Role
	Name string

	// Topics lists subscriptions in a Subscribe frame.
	Topics []spec.TopicID

	// T1, T2, T3 are clock-sync timestamps: T1 is the client's transmit
	// time (TimeReq and echoed in TimeResp); T2 and T3 are the server's
	// receive and transmit times (TimeResp).
	T1, T2, T3 time.Duration

	// Epoch versions the cluster routing table (RouteResp), and reports the
	// replying broker's view of it in a WrongShard redirect.
	Epoch uint64
	// Shards is the routing table of a RouteResp, in shard-index order.
	Shards []ShardEntry
}

// Wire-format sanity limits. Frames larger than these are corrupt or
// hostile, not legitimate: the evaluation payload is 16 bytes and topic
// counts stay in the tens of thousands.
const (
	// MaxPayload bounds a message payload.
	MaxPayload = 1 << 20
	// MaxTopics bounds a subscription list.
	MaxTopics = 1 << 20
	// MaxName bounds a Hello name.
	MaxName = 256
	// MaxShards bounds a RouteResp shard table.
	MaxShards = 1 << 16
	// MaxAddr bounds one shard-entry address.
	MaxAddr = 256
)

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrBadType   = errors.New("wire: unknown frame type")
	ErrTooLarge  = errors.New("wire: field exceeds limit")
)

// Encode appends the frame's encoding to dst and returns the extended slice.
func Encode(dst []byte, f *Frame) ([]byte, error) {
	if f.Type < TypePublish || f.Type > maxType {
		return dst, fmt.Errorf("%w: %d", ErrBadType, uint8(f.Type))
	}
	dst = append(dst, byte(f.Type))
	switch f.Type {
	case TypePublish, TypeResend:
		dst = encodeMessage(dst, &f.Msg)
	case TypeDispatch:
		dst = encodeMessage(dst, &f.Msg)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(f.Dispatched))
	case TypeReplicate:
		dst = encodeMessage(dst, &f.Msg)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(f.ArrivedPrimary))
	case TypePrune, TypeCancel, TypePubAck:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Topic))
		dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	case TypePoll, TypePollReply:
		dst = binary.LittleEndian.AppendUint64(dst, f.Nonce)
	case TypeHello:
		if len(f.Name) > MaxName {
			return dst, fmt.Errorf("%w: name %d bytes", ErrTooLarge, len(f.Name))
		}
		dst = append(dst, byte(f.Role))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f.Name)))
		dst = append(dst, f.Name...)
	case TypeSubscribe:
		if len(f.Topics) > MaxTopics {
			return dst, fmt.Errorf("%w: %d topics", ErrTooLarge, len(f.Topics))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Topics)))
		for _, id := range f.Topics {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(id))
		}
	case TypeTimeReq:
		dst = binary.LittleEndian.AppendUint64(dst, f.Nonce)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(f.T1))
	case TypeTimeResp:
		dst = binary.LittleEndian.AppendUint64(dst, f.Nonce)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(f.T1))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(f.T2))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(f.T3))
	case TypeRouteReq:
		dst = binary.LittleEndian.AppendUint64(dst, f.Nonce)
	case TypeRouteResp:
		if len(f.Shards) > MaxShards {
			return dst, fmt.Errorf("%w: %d shards", ErrTooLarge, len(f.Shards))
		}
		dst = binary.LittleEndian.AppendUint64(dst, f.Nonce)
		dst = binary.LittleEndian.AppendUint64(dst, f.Epoch)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Shards)))
		for _, s := range f.Shards {
			if len(s.Primary) > MaxAddr || len(s.Backup) > MaxAddr {
				return dst, fmt.Errorf("%w: shard address", ErrTooLarge)
			}
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s.Primary)))
			dst = append(dst, s.Primary...)
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s.Backup)))
			dst = append(dst, s.Backup...)
		}
	case TypeWrongShard:
		dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Topic))
		dst = binary.LittleEndian.AppendUint64(dst, f.Epoch)
	}
	return dst, nil
}

func encodeMessage(dst []byte, m *Message) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.Topic))
	dst = binary.LittleEndian.AppendUint64(dst, m.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(m.Created))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Payload)))
	return append(dst, m.Payload...)
}

// Decode parses one frame from buf, which must contain exactly one frame
// (the transport strips length prefixes). The returned frame's Payload and
// Topics alias freshly allocated memory, never buf.
func Decode(buf []byte) (*Frame, error) {
	d := decoder{buf: buf}
	t := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	f := &Frame{Type: Type(t)}
	switch f.Type {
	case TypePublish, TypeResend:
		d.message(&f.Msg)
	case TypeDispatch:
		d.message(&f.Msg)
		f.Dispatched = time.Duration(d.u64())
	case TypeReplicate:
		d.message(&f.Msg)
		f.ArrivedPrimary = time.Duration(d.u64())
	case TypePrune, TypeCancel, TypePubAck:
		f.Topic = spec.TopicID(d.u32())
		f.Seq = d.u64()
	case TypePoll, TypePollReply:
		f.Nonce = d.u64()
	case TypeHello:
		f.Role = Role(d.u8())
		n := int(d.u16())
		f.Name = string(d.bytes(n))
	case TypeSubscribe:
		n := d.u32()
		if n > MaxTopics {
			return nil, fmt.Errorf("%w: %d topics", ErrTooLarge, n)
		}
		if d.err == nil {
			f.Topics = make([]spec.TopicID, 0, n)
			for i := uint32(0); i < n; i++ {
				f.Topics = append(f.Topics, spec.TopicID(d.u32()))
			}
		}
	case TypeTimeReq:
		f.Nonce = d.u64()
		f.T1 = time.Duration(d.u64())
	case TypeTimeResp:
		f.Nonce = d.u64()
		f.T1 = time.Duration(d.u64())
		f.T2 = time.Duration(d.u64())
		f.T3 = time.Duration(d.u64())
	case TypeRouteReq:
		f.Nonce = d.u64()
	case TypeRouteResp:
		f.Nonce = d.u64()
		f.Epoch = d.u64()
		n := d.u32()
		if n > MaxShards {
			return nil, fmt.Errorf("%w: %d shards", ErrTooLarge, n)
		}
		if d.err == nil {
			f.Shards = make([]ShardEntry, 0, n)
			for i := uint32(0); i < n && d.err == nil; i++ {
				f.Shards = append(f.Shards, d.shardEntry())
			}
		}
	case TypeWrongShard:
		f.Topic = spec.TopicID(d.u32())
		f.Epoch = d.u64()
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, t)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v frame", len(d.buf)-d.off, f.Type)
	}
	return f, nil
}

// decoder is a cursor over an immutable buffer; the first error sticks.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, d.off, len(d.buf))
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) bytes(n int) []byte {
	if n < 0 || !d.need(n) {
		if d.err == nil {
			d.err = fmt.Errorf("%w: negative length", ErrTruncated)
		}
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += n
	return out
}

// shardEntry decodes one RouteResp table entry, enforcing MaxAddr on both
// addresses so a corrupt length cannot force a giant allocation.
func (d *decoder) shardEntry() ShardEntry {
	var e ShardEntry
	n := int(d.u16())
	if n > MaxAddr {
		d.err = fmt.Errorf("%w: shard address %d bytes", ErrTooLarge, n)
		return e
	}
	e.Primary = string(d.bytes(n))
	n = int(d.u16())
	if n > MaxAddr {
		d.err = fmt.Errorf("%w: shard address %d bytes", ErrTooLarge, n)
		return e
	}
	e.Backup = string(d.bytes(n))
	return e
}

func (d *decoder) message(m *Message) {
	m.Topic = spec.TopicID(d.u32())
	m.Seq = d.u64()
	m.Created = time.Duration(d.u64())
	n := d.u32()
	if n > MaxPayload {
		d.err = fmt.Errorf("%w: payload %d bytes", ErrTooLarge, n)
		return
	}
	m.Payload = d.bytes(int(n))
}
