package chaos

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/spec"
)

// gatewayTopic builds the gateway scenarios' standard topic: a real loss
// tolerance Li (the per-client shed/evict budget under test) and enough
// retention for the load window.
func gatewayTopic(id spec.TopicID, li int) spec.Topic {
	return spec.Topic{
		ID:            id,
		Category:      -1,
		Period:        20 * time.Millisecond,
		Deadline:      time.Second,
		LossTolerance: li,
		Retention:     64,
		Destination:   spec.DestEdge,
		PayloadSize:   16,
	}
}

func gatewayTopics(n, li int) []spec.Topic {
	out := make([]spec.Topic, n)
	for i := range out {
		out[i] = gatewayTopic(spec.TopicID(i+1), li)
	}
	return out
}

// GatewayAll returns every shipped gateway-level scenario. Names are
// stable — CI artifacts and replay commands reference them.
func GatewayAll() []GatewayScenario {
	return []GatewayScenario{
		gatewayCrash(),
		gatewaySlowClient(),
	}
}

// GatewayFind returns the named gateway scenario.
func GatewayFind(name string) (GatewayScenario, error) {
	for _, sc := range GatewayAll() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return GatewayScenario{}, fmt.Errorf("chaos: unknown gateway scenario %q", name)
}

// gatewayCrash fail-stops the gateway mid-stream and restarts it 140ms
// later, the way an orchestrator would. The publisher keeps driving the
// brokers directly the whole time, so the outage window turns into a gap
// the thin clients must absorb: reconnect automatically, resume the
// stream, and keep the per-topic consecutive loss inside Li — while the
// durability plane records zero publish errors and no promotion.
func gatewayCrash() GatewayScenario {
	return GatewayScenario{
		Name:        "gateway-crash",
		Description: "kill and restart the gateway mid-stream; thin clients reconnect within Li, brokers never notice",
		Smoke:       true,
		Topics:      gatewayTopics(4, 256),
		Load:        Load{Count: 250, Interval: 2 * time.Millisecond, PayloadSize: 16},
		Clients: []GatewayClient{
			{Name: "phone-a", MaxConsecutiveLoss: 256, AllowedRewinds: 2},
			{Name: "phone-b", MaxConsecutiveLoss: 256, AllowedRewinds: 2},
		},
		Script: []GatewayStep{
			{At: 120 * time.Millisecond, Desc: "crash the gateway", Do: CrashGateway()},
			{At: 260 * time.Millisecond, Desc: "restart the gateway", Do: RestartGateway()},
		},
		Check: func(e *GatewayEnv) []string {
			var v []string
			for name, sub := range e.Clients {
				if sub.Reconnects() == 0 {
					v = append(v, fmt.Sprintf("client %s never reconnected across the gateway restart", name))
				}
			}
			return v
		},
	}
}

// gatewaySlowClient wedges one phone — it subscribes, then its downlink
// stalls behind a tiny write buffer and it never reads — while two healthy
// clients and the brokers carry full load. The wedged client's private
// ring must absorb the backpressure: the gateway sheds within the topics'
// Li budget and evicts the client past it, the healthy clients take every
// message with strict FIFO, and the broker-side egress never sheds a
// frame (the runner asserts that part for every scenario).
func gatewaySlowClient() GatewayScenario {
	return GatewayScenario{
		Name:        "gateway-slow-client",
		Description: "a wedged phone fills its ring; the gateway sheds then evicts it, healthy clients and brokers never notice",
		Smoke:       true,
		Topics:      gatewayTopics(4, 8),
		Load:        Load{Count: 150, Interval: 2 * time.Millisecond, PayloadSize: 16},
		ClientDepth: 32,
		// Mem pipes block on an unread write; the stall bound turns a
		// wedged in-flight flush into a failed write instead of a hung
		// egress goroutine.
		ClientWriteTimeout: 200 * time.Millisecond,
		Clients: []GatewayClient{
			{Name: "healthy-a", RequireAll: true, MaxConsecutiveLoss: 0, AllowedRewinds: 0},
			{Name: "healthy-b", RequireAll: true, MaxConsecutiveLoss: 0, AllowedRewinds: 0},
			{Name: "wedge", Wedged: true},
		},
		Script: []GatewayStep{
			{At: 0, Desc: "stall gateway->wedge behind a 4KiB buffer",
				Do: GatewaySetLink(NodeGateway, "wedge", faultinject.Faults{Stall: true, WriteBufferBytes: 4 << 10})},
		},
		Check: func(e *GatewayEnv) []string {
			var v []string
			gw := e.Gateway()
			es := gw.EgressStats()
			if es.Shed == 0 {
				v = append(v, "gateway never shed for the wedged client — the ring should have filled")
			}
			if gw.Evictions() == 0 {
				v = append(v, "gateway never evicted the wedged client past its Li budget")
			}
			if gw.Clients() != 2 {
				v = append(v, fmt.Sprintf("%d clients still attached, want exactly the 2 healthy ones", gw.Clients()))
			}
			return v
		},
	}
}
