package chaos

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/faultinject"
	"repro/internal/obsv"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
)

// RunOptions configures one scenario run.
type RunOptions struct {
	// Seed drives every fault decision; a failed run prints it and the same
	// seed replays the same fault lottery.
	Seed int64
	// Inner is the transport under the injector; nil means real TCP over
	// loopback — the configuration the acceptance runs use.
	Inner transport.Network
	// ArtifactsDir, when non-empty, receives a transcript+seed artifact for
	// every failed run.
	ArtifactsDir string
	// Logger receives broker/client operational noise; nil discards it
	// (expected crash/partition warnings would drown real output).
	Logger *slog.Logger
}

// Result is one finished scenario run.
type Result struct {
	Scenario     string
	Seed         int64
	Failures     []string
	Transcript   *Transcript
	ArtifactPath string
	Published    uint64
	Delivered    uint64
	Duplicates   uint64
	Frames       int
	PublishErrs  int
	Elapsed      time.Duration
}

// Passed reports whether every invariant held.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// drain tuning: the runner clears all faults, then waits for delivery
// counts to go quiet (or complete) before judging invariants.
const (
	drainTimeout = 10 * time.Second
	drainQuiet   = 400 * time.Millisecond
)

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(discardWriter{}, &slog.HandlerOptions{Level: slog.LevelError}))
}

// defaultDetector is fast enough that crash scenarios finish in seconds but
// tolerant enough (20ms probe timeout) not to false-positive on a loaded
// CI runner's scheduling hiccups.
func defaultDetector() failover.Config {
	return failover.Config{Period: 5 * time.Millisecond, Timeout: 20 * time.Millisecond, Misses: 3}
}

// chaosParams mirrors the loopback latency regime of the broker tests, with
// a failover budget covering the chaos detector.
func chaosParams() timing.Params {
	return timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     100 * time.Millisecond,
	}
}

// Run executes one scenario against a freshly built Primary+Backup cluster
// over the fault-injected transport and returns the judged result. Setup
// failures (bind errors and the like) return an error; invariant breaches
// land in Result.Failures.
func Run(sc Scenario, opts RunOptions) (*Result, error) {
	inner := opts.Inner
	if inner == nil {
		if sc.Mem {
			inner = transport.NewMem()
		} else {
			inner = &transport.TCP{DialTimeout: 2 * time.Second}
		}
	}
	log := opts.Logger
	if log == nil {
		log = quietLogger()
	}
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	tr := &Transcript{Scenario: sc.Name, Seed: opts.Seed}
	net := faultinject.New(inner, opts.Seed)
	tr.Logf(clock(), "run start: seed=%d scenario=%q", opts.Seed, sc.Name)

	detector := sc.Detector
	if detector == (failover.Config{}) {
		detector = defaultDetector()
	}

	cfg := core.FRAMEConfig(chaosParams())
	// The pump publishes in bursts relative to Ti, so size the Message
	// Buffer for the whole run rather than relying on Ti-spaced arrivals.
	cfg.MessageBufferCap = 4096
	cfg.BackupBufferCap = 4096

	traces := newTraceRecorder()
	backupObs := obsv.NewBrokerMetrics()
	backupObs.SetTracer(traces.note)

	listen := "127.0.0.1:0"
	if _, ok := inner.(*transport.Mem); ok {
		listen = ""
	}
	backupListen, primaryListen := listen, listen
	if listen == "" { // Mem addresses are plain names
		backupListen, primaryListen = NodeBackup, NodePrimary
	}

	backup, err := broker.New(broker.Options{
		Engine:      cfg,
		Role:        broker.RoleBackup,
		ListenAddr:  backupListen,
		PeerAddr:    "pending", // fixed up via SetPeerAddr once the Primary binds
		Network:     net.Node(NodeBackup),
		Clock:       clock,
		Workers:     4,
		Detector:    detector,
		Topics:      sc.Topics,
		Logger:      log,
		Obs:         backupObs,
		EgressDepth: sc.EgressDepth,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: backup: %w", err)
	}
	primary, err := broker.New(broker.Options{
		Engine:      cfg,
		Role:        broker.RolePrimary,
		ListenAddr:  primaryListen,
		PeerAddr:    backup.Addr(),
		Network:     net.Node(NodePrimary),
		Clock:       clock,
		Workers:     4,
		Detector:    detector,
		Topics:      sc.Topics,
		Logger:      log,
		ExtraGauges: net.Gauges,
		EgressDepth: sc.EgressDepth,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: primary: %w", err)
	}
	backup.SetPeerAddr(primary.Addr())
	backup.Start()
	primary.Start()
	tr.Logf(clock(), "cluster up: primary=%s backup=%s", primary.Addr(), backup.Addr())

	e := &Env{
		Net:      net,
		Primary:  primary,
		Backup:   backup,
		Clock:    clock,
		Tr:       tr,
		detector: detector,
	}

	// Watch for promotion so the polling-bound invariant has a timestamp.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-backup.Promoted():
			at := clock()
			e.mu.Lock()
			e.promoted = true
			e.promotedAt = at
			e.mu.Unlock()
			tr.Logf(at, "backup promoted")
		case <-watchDone:
		}
	}()

	rec := NewRecorder()
	topicIDs := make([]spec.TopicID, len(sc.Topics))
	for i, tp := range sc.Topics {
		topicIDs[i] = tp.ID
	}
	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name:        NodeSub,
		Topics:      topicIDs,
		BrokerAddrs: []string{primary.Addr(), backup.Addr()},
		Network:     net.Node(NodeSub),
		Clock:       clock,
		OnFrame:     rec.Note,
		Logger:      log,
	})
	if err != nil {
		stopCluster(e)
		return nil, fmt.Errorf("chaos: subscriber: %w", err)
	}
	pub, err := client.NewPublisher(client.PublisherOptions{
		Name:        NodePub,
		Topics:      sc.Topics,
		PrimaryAddr: primary.Addr(),
		BackupAddr:  backup.Addr(),
		Network:     net.Node(NodePub),
		Clock:       clock,
		Detector:    detector,
		Logger:      log,
	})
	if err != nil {
		sub.Close()
		stopCluster(e)
		return nil, fmt.Errorf("chaos: publisher: %w", err)
	}
	e.Sub, e.Pub = sub, pub

	// Extra subscribers: each gets its own node name (link faults can
	// single it out), its own frame recorder, and its own invariant budget.
	e.Extra = make(map[string]*client.Subscriber, len(sc.ExtraSubs))
	for _, xs := range sc.ExtraSubs {
		xrec := NewRecorder()
		xsub, err := client.NewSubscriber(client.SubscriberOptions{
			Name:        xs.Name,
			Topics:      topicIDs,
			BrokerAddrs: []string{primary.Addr(), backup.Addr()},
			Network:     net.Node(xs.Name),
			Clock:       clock,
			OnFrame:     xrec.Note,
			Logger:      log,
		})
		if err != nil {
			pubSubTeardown(e)
			stopCluster(e)
			return nil, fmt.Errorf("chaos: extra subscriber %s: %w", xs.Name, err)
		}
		e.extras = append(e.extras, extraRun{spec: xs, sub: xsub, rec: xrec})
		e.Extra[xs.Name] = xsub
	}

	// Subscriptions land asynchronously; give the Primary a moment to
	// register every subscriber before the pump starts, so the first
	// sequences are not published past a not-yet-subscribed party.
	wantSubs := 1 + len(sc.ExtraSubs)
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if primary.Health().EgressSubs >= wantSubs {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Publish pump: Load.Count messages per topic, round-robin, one every
	// Interval. Send errors during crashes and resets are expected — the
	// retained ring plus fail-over resend is what covers them.
	pumpDone := make(chan struct{})
	pumpStop := make(chan struct{})
	go func() {
		defer close(pumpDone)
		payload := make([]byte, sc.Load.PayloadSize)
		ticker := time.NewTicker(sc.Load.Interval)
		defer ticker.Stop()
		for i := 0; i < sc.Load.Count; i++ {
			for _, id := range topicIDs {
				if _, err := pub.Publish(id, payload); err != nil {
					e.mu.Lock()
					e.publishErrs++
					e.mu.Unlock()
				}
			}
			select {
			case <-ticker.C:
			case <-pumpStop:
				return
			}
		}
		tr.Logf(clock(), "publish pump done: %d messages x %d topics", sc.Load.Count, len(topicIDs))
	}()

	// Timeline: each step fires at its offset from run start.
	for _, step := range sc.Script {
		if wait := step.At - clock(); wait > 0 {
			time.Sleep(wait)
		}
		tr.Logf(clock(), "step: %s", step.Desc)
		if err := step.Do(e); err != nil {
			tr.Logf(clock(), "step failed: %v", err)
			close(pumpStop)
			<-pumpDone
			pubSubTeardown(e)
			stopCluster(e)
			return nil, fmt.Errorf("chaos: step %q: %w", step.Desc, err)
		}
	}
	<-pumpDone

	// Heal the world and drain: held frames deliver, resends land, then the
	// delivery counts go quiet.
	net.ClearAllFaults()
	tr.Logf(clock(), "all faults cleared; draining")
	drainDeadline := time.Now().Add(drainTimeout)
	lastTotal, quietSince := uint64(0), time.Now()
	drainSubs := []*client.Subscriber{sub}
	for _, xr := range e.extras {
		if xr.spec.RequireAll {
			drainSubs = append(drainSubs, xr.sub)
		}
	}
	for time.Now().Before(drainDeadline) {
		total := uint64(0)
		complete := true
		for _, s := range drainSubs {
			for _, id := range topicIDs {
				got := s.Received(id)
				total += got
				if got < pub.LastSeq(id) {
					complete = false
				}
			}
		}
		if complete {
			break
		}
		if total != lastTotal {
			lastTotal, quietSince = total, time.Now()
		} else if time.Since(quietSince) > drainQuiet {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr.Logf(clock(), "drain done")

	pubSubTeardown(e)
	stopCluster(e)

	res := &Result{
		Scenario:   sc.Name,
		Seed:       opts.Seed,
		Transcript: tr,
		Duplicates: sub.Duplicates(),
		Frames:     rec.TotalFrames(),
		Elapsed:    time.Since(start),
	}
	for _, id := range topicIDs {
		res.Published += pub.LastSeq(id)
		res.Delivered += sub.Received(id)
	}
	e.mu.Lock()
	res.PublishErrs = e.publishErrs
	e.mu.Unlock()
	res.Failures = e.checkInvariants(sc, rec, traces)
	tr.Logf(clock(), "result: published=%d delivered=%d dups=%d frames=%d publishErrs=%d failures=%d",
		res.Published, res.Delivered, res.Duplicates, res.Frames, res.PublishErrs, len(res.Failures))

	if !res.Passed() && opts.ArtifactsDir != "" {
		if path, err := tr.WriteFile(opts.ArtifactsDir, res.Failures); err == nil {
			res.ArtifactPath = path
		}
	}
	return res, nil
}

// extraRun is one built ExtraSub with its recorder, judged alongside the
// main subscriber's invariants.
type extraRun struct {
	spec ExtraSub
	sub  *client.Subscriber
	rec  *Recorder
}

func pubSubTeardown(e *Env) {
	if e.Pub != nil {
		e.Pub.Close()
	}
	if e.Sub != nil {
		e.Sub.Close()
	}
	for _, xr := range e.extras {
		xr.sub.Close()
	}
}

func stopCluster(e *Env) {
	e.mu.Lock()
	crashed := e.primaryCrashed
	e.mu.Unlock()
	if !crashed {
		e.Primary.Stop()
	}
	e.Backup.Stop()
}
