// Dual-crash chaos: the durability plane's reason to exist. The generic
// runner (runner.go) scripts faults against a live Primary/Backup pair and
// leans on §IV-A promotion — which assumes one broker survives. These
// scenarios kill the ENTIRE pair mid-load and judge the second life: a
// broker restarted on the Primary's segmented group-commit log must
// recover every acked-but-undispatched message from its segments, must
// never re-dispatch a message whose prune marker reached the log (Table 3,
// Recovery step 1, applied to disk), and together the two lives must
// deliver every publish the broker acked as durable.
package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/diskstore"
	"repro/internal/faultinject"
	"repro/internal/obsv"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DurableScenario is one scripted dual-crash run against a durable pair.
type DurableScenario struct {
	Name        string
	Description string
	// Smoke marks the scenario as part of the PR-gating smoke subset.
	Smoke  bool
	Topics []spec.Topic
	Load   Load
	// KillAt is the offset at which both brokers are fail-stopped.
	KillAt time.Duration
	// FsyncInterval is the Primary's group-commit window (0 = broker
	// default, negative = fsync per publish).
	FsyncInterval time.Duration
	// SegmentBytes forces small segments so the kill window spans several
	// rolls (0 = broker default).
	SegmentBytes int64
	// Orphans grafts this many records onto the crashed log before the
	// second life opens it, on a dedicated topic the pump never publishes.
	// They model the one crash shape an in-process kill cannot produce:
	// messages whose records reached stable storage while their prune
	// markers did not (lost page cache, torn batch tail). The second life
	// must recovery-dispatch every one of them exactly once — the positive
	// half of the replay contract, which a healthy first life otherwise
	// proves only vacuously because dispatch prunes within microseconds.
	Orphans int
}

// seqSet records which sequence numbers one subscriber life actually
// received, per topic — the merged-coverage invariant needs identities,
// not counts.
type seqSet struct {
	mu   sync.Mutex
	seen map[spec.TopicID]map[uint64]bool
}

func newSeqSet() *seqSet {
	return &seqSet{seen: make(map[spec.TopicID]map[uint64]bool)}
}

func (s *seqSet) note(d client.Delivery) {
	s.mu.Lock()
	m := s.seen[d.Msg.Topic]
	if m == nil {
		m = make(map[uint64]bool)
		s.seen[d.Msg.Topic] = m
	}
	m[d.Msg.Seq] = true
	s.mu.Unlock()
}

func (s *seqSet) has(topic spec.TopicID, seq uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[topic][seq]
}

func (s *seqSet) count(topic spec.TopicID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen[topic])
}

// RunDurable executes one dual-crash scenario: first life (durable Primary
// + Backup + DurableAcks publisher + subscriber) up to KillAt, a fail-stop
// of the whole pair, then a second life restarted from the Primary's log
// segments with a fresh subscriber. Runs over the Mem transport so the
// restarted brokers can rebind the crashed pair's addresses.
func RunDurable(sc DurableScenario, opts RunOptions) (*Result, error) {
	log := opts.Logger
	if log == nil {
		log = quietLogger()
	}
	logDir, err := os.MkdirTemp("", "frame-chaos-durable-*")
	if err != nil {
		return nil, fmt.Errorf("chaos: log dir: %w", err)
	}
	defer os.RemoveAll(logDir)

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	tr := &Transcript{Scenario: sc.Name, Seed: opts.Seed}
	inner := opts.Inner
	if inner == nil {
		inner = transport.NewMem()
	}
	net := faultinject.New(inner, opts.Seed)
	tr.Logf(clock(), "run start: seed=%d scenario=%q logDir=%s", opts.Seed, sc.Name, logDir)

	cfg := core.FRAMEConfig(chaosParams())
	cfg.MessageBufferCap = 4096
	cfg.BackupBufferCap = 4096

	durableOpts := func(o *broker.Options) {
		o.Durable = true
		o.LogDir = logDir
		o.FsyncInterval = sc.FsyncInterval
		o.LogSegmentBytes = sc.SegmentBytes
	}

	// Topic layout: the pump publishes sc.Topics; when Orphans > 0 one
	// extra topic exists only to carry the grafted records, so every
	// delivery on it must come from log recovery.
	allTopics := sc.Topics
	var orphanID spec.TopicID
	if sc.Orphans > 0 {
		orphanID = spec.TopicID(len(sc.Topics) + 1)
		allTopics = append(append([]spec.Topic{}, sc.Topics...), chaosTopic(orphanID, 512))
	}

	// ---- First life -----------------------------------------------------
	backup, err := broker.New(broker.Options{
		Engine: cfg, Role: broker.RoleBackup, ListenAddr: NodeBackup,
		PeerAddr: "pending", Network: net.Node(NodeBackup), Clock: clock, Workers: 4,
		Detector: defaultDetector(), Topics: allTopics, Logger: log,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: backup: %w", err)
	}
	popts := broker.Options{
		Engine: cfg, Role: broker.RolePrimary, ListenAddr: NodePrimary,
		PeerAddr: backup.Addr(), Network: net.Node(NodePrimary), Clock: clock, Workers: 4,
		Detector: defaultDetector(), Topics: allTopics, Logger: log,
	}
	durableOpts(&popts)
	primary, err := broker.New(popts)
	if err != nil {
		backup.Stop()
		return nil, fmt.Errorf("chaos: primary: %w", err)
	}
	backup.SetPeerAddr(primary.Addr())
	backup.Start()
	primary.Start()
	tr.Logf(clock(), "durable pair up: primary=%s backup=%s", primary.Addr(), backup.Addr())

	topicIDs := make([]spec.TopicID, len(sc.Topics)) // pump targets
	for i, tp := range sc.Topics {
		topicIDs[i] = tp.ID
	}
	allIDs := make([]spec.TopicID, len(allTopics)) // everything subscribed/judged
	for i, tp := range allTopics {
		allIDs[i] = tp.ID
	}
	life1 := newSeqSet()
	sub1, err := client.NewSubscriber(client.SubscriberOptions{
		Name: NodeSub, Topics: allIDs,
		BrokerAddrs: []string{primary.Addr(), backup.Addr()},
		Network:     net.Node(NodeSub), Clock: clock, OnDeliver: life1.note, Logger: log,
	})
	if err != nil {
		primary.Stop()
		backup.Stop()
		return nil, fmt.Errorf("chaos: subscriber: %w", err)
	}
	pub, err := client.NewPublisher(client.PublisherOptions{
		Name: NodePub, Topics: sc.Topics,
		PrimaryAddr: primary.Addr(), BackupAddr: backup.Addr(),
		Network: net.Node(NodePub), Clock: clock, Detector: defaultDetector(), Logger: log,
		DurableAcks: true, AckTimeout: time.Second,
	})
	if err != nil {
		sub1.Close()
		primary.Stop()
		backup.Stop()
		return nil, fmt.Errorf("chaos: publisher: %w", err)
	}
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if primary.Health().EgressSubs >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Pump with ack accounting: acked[topic] is the highest sequence the
	// broker confirmed durable — the set the dual crash must not lose.
	var ackMu sync.Mutex
	acked := make(map[spec.TopicID]uint64)
	publishErrs := 0
	pumpDone := make(chan struct{})
	pumpStop := make(chan struct{})
	go func() {
		defer close(pumpDone)
		payload := make([]byte, sc.Load.PayloadSize)
		ticker := time.NewTicker(sc.Load.Interval)
		defer ticker.Stop()
		for i := 0; i < sc.Load.Count; i++ {
			for _, id := range topicIDs {
				seq, err := pub.Publish(id, payload)
				ackMu.Lock()
				if err != nil {
					publishErrs++
				} else if seq > acked[id] {
					acked[id] = seq
				}
				ackMu.Unlock()
			}
			select {
			case <-ticker.C:
			case <-pumpStop:
				return
			}
		}
	}()

	if wait := sc.KillAt - clock(); wait > 0 {
		time.Sleep(wait)
	}
	close(pumpStop)
	<-pumpDone
	ackMu.Lock()
	ackedAtKill := make(map[spec.TopicID]uint64, len(acked))
	for id, s := range acked {
		ackedAtKill[id] = s
	}
	errsAtKill := publishErrs
	ackMu.Unlock()

	// The dual crash: reset every connection touching either broker, then
	// fail-stop both. Backup first, so it cannot promote and start a
	// recovery dispatch run of its own mid-teardown.
	tr.Logf(clock(), "kill: fail-stopping the entire pair")
	net.ResetNode(NodeBackup)
	net.ResetNode(NodePrimary)
	backup.Kill()
	primary.Kill()
	pub.Close()
	sub1.Close()
	tr.Logf(clock(), "kill done: acked=%v publishErrs=%d delivered(life1)=%v",
		ackedAtKill, errsAtKill, countAll(life1, topicIDs))

	// Graft the orphan cohort: records on stable storage with no prune
	// marker, the crash shape the second life's recovery exists for.
	if sc.Orphans > 0 {
		if err := graftOrphans(logDir, orphanID, sc.Orphans, clock()); err != nil {
			return nil, fmt.Errorf("chaos: grafting orphan segment: %w", err)
		}
		tr.Logf(clock(), "grafted %d orphan records on topic %d (records synced, prune markers lost)",
			sc.Orphans, orphanID)
	}

	// Read what actually survived on disk — the ground truth the second
	// life is judged against. OpenSegmented also truncates any torn tail,
	// exactly as the restarted broker's open will.
	seg, replay, err := diskstore.OpenSegmented(logDir, diskstore.SegmentOptions{SegmentBytes: sc.SegmentBytes})
	if err != nil {
		return nil, fmt.Errorf("chaos: reading crashed log: %w", err)
	}
	segCount := seg.Segments()
	if err := seg.Close(); err != nil {
		return nil, fmt.Errorf("chaos: closing crashed log: %w", err)
	}
	logged := make(map[spec.TopicID]map[uint64]bool)
	for _, m := range replay.Messages {
		if logged[m.Topic] == nil {
			logged[m.Topic] = make(map[uint64]bool)
		}
		logged[m.Topic][m.Seq] = true
	}
	pruned := make(map[spec.TopicID]map[uint64]bool)
	for _, pr := range replay.Prunes {
		if pruned[pr.Topic] == nil {
			pruned[pr.Topic] = make(map[uint64]bool)
		}
		pruned[pr.Topic][pr.Seq] = true
	}
	tr.Logf(clock(), "crashed log: %d messages, %d prunes, %d segments",
		len(replay.Messages), len(replay.Prunes), segCount)

	// ---- Second life ----------------------------------------------------
	traces := newTraceRecorder()
	obs2 := obsv.NewBrokerMetrics()
	obs2.SetTracer(traces.note)
	p2opts := broker.Options{
		Engine: cfg, Role: broker.RolePrimary, ListenAddr: NodePrimary,
		Network: net.Node(NodePrimary), Clock: clock, Workers: 4,
		Detector: defaultDetector(), Topics: allTopics, Logger: log,
		Obs: obs2, HoldRecovery: true,
	}
	durableOpts(&p2opts)
	primary2, err := broker.New(p2opts)
	if err != nil {
		return nil, fmt.Errorf("chaos: restart primary: %w", err)
	}
	primary2.Start()
	tr.Logf(clock(), "second life up: primary=%s", primary2.Addr())

	life2 := newSeqSet()
	rec2 := NewRecorder()
	sub2, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "sub2", Topics: allIDs,
		BrokerAddrs: []string{primary2.Addr()},
		Network:     net.Node("sub2"), Clock: clock, OnDeliver: life2.note,
		OnFrame: rec2.Note, Logger: log,
	})
	if err != nil {
		primary2.Stop()
		return nil, fmt.Errorf("chaos: second-life subscriber: %w", err)
	}
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if primary2.Health().EgressSubs >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	primary2.RecoverFromLog()
	tr.Logf(clock(), "recovery scheduled from log")

	// Drain: the recovery backlog is exactly the logged-but-unpruned set.
	want := make(map[spec.TopicID]int)
	for id, seqs := range logged {
		for seq := range seqs {
			if !pruned[id][seq] {
				want[id]++
			}
		}
	}
	drainDeadline := time.Now().Add(drainTimeout)
	lastTotal, quietSince := 0, time.Now()
	for time.Now().Before(drainDeadline) {
		total, complete := 0, true
		for _, id := range allIDs {
			got := life2.count(id)
			total += got
			if got < want[id] {
				complete = false
			}
		}
		if complete {
			break
		}
		if total != lastTotal {
			lastTotal, quietSince = total, time.Now()
		} else if time.Since(quietSince) > drainQuiet {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr.Logf(clock(), "second-life drain done: delivered=%v want=%v", countAll(life2, allIDs), want)

	sub2.Close()
	primary2.Stop()

	// ---- Judgment -------------------------------------------------------
	var failures []string
	// Table 3 on disk: a message whose prune record survived must never be
	// recovery-dispatched, and nothing recovers twice. violations() covers
	// trace-observed prunes; the crashed log's prune records are the
	// durable ground truth, so check the recovery dispatches against them
	// directly too.
	failures = append(failures, traces.violations()...)
	traces.mu.Lock()
	for key := range traces.recovered {
		if pruned[spec.TopicID(key[0])][key[1]] {
			failures = append(failures, fmt.Sprintf(
				"topic %d seq %d: prune record survived on disk yet the second life recovery-dispatched it", key[0], key[1]))
		}
	}
	traces.mu.Unlock()
	for _, id := range allIDs {
		if sc.Orphans > 0 && id == orphanID {
			// The orphan cohort is the positive half of the replay contract:
			// a record with no prune marker MUST be recovery-dispatched (once
			// — violations() flags duplicates) and reach the new subscriber.
			traces.mu.Lock()
			for seq := uint64(1); seq <= uint64(sc.Orphans); seq++ {
				if traces.recovered[[2]uint64{uint64(id), seq}] == 0 {
					failures = append(failures, fmt.Sprintf(
						"orphan seq %d: record survived without a prune marker yet was never recovery-dispatched", seq))
				} else if !life2.has(id, seq) {
					failures = append(failures, fmt.Sprintf(
						"orphan seq %d: recovery-dispatched but never delivered to the second life's subscriber", seq))
				}
			}
			traces.mu.Unlock()
			continue
		}
		if ackedAtKill[id] == 0 {
			failures = append(failures, fmt.Sprintf("topic %d: no publish was acked before the kill — load or ack path broken", id))
			continue
		}
		// ACK = durable: every acked sequence survives the dual crash,
		// delivered by one life or the other. Li = 0 for these topics, so
		// this is also the consecutive-loss bound over the acked range.
		loss, maxRun := 0, 0
		for seq := uint64(1); seq <= ackedAtKill[id]; seq++ {
			if life1.has(id, seq) || life2.has(id, seq) {
				loss = 0
				continue
			}
			loss++
			if loss > maxRun {
				maxRun = loss
			}
		}
		if li := lossToleranceOf(sc.Topics, id); maxRun > li {
			failures = append(failures, fmt.Sprintf(
				"topic %d: %d consecutive acked messages lost across both lives (Li=%d, acked through seq %d)",
				id, maxRun, li, ackedAtKill[id]))
		}
		// Recovery completeness: everything logged and unpruned reached
		// the second life's subscriber.
		for seq := range logged[id] {
			if !pruned[id][seq] && !life2.has(id, seq) {
				failures = append(failures, fmt.Sprintf(
					"topic %d seq %d: in the log, not pruned, yet never recovery-dispatched to the second life", id, seq))
			}
		}
		// And the log itself must cover every acked publish — fsync-before
		// -ack is the contract the whole plane sells.
		for seq := uint64(1); seq <= ackedAtKill[id]; seq++ {
			if !logged[id][seq] {
				failures = append(failures, fmt.Sprintf(
					"topic %d seq %d: acked as durable but absent from the surviving segments", id, seq))
			}
		}
	}
	if segCount == 0 {
		failures = append(failures, "no log segments survived the crash")
	}

	res := &Result{
		Scenario:    sc.Name,
		Seed:        opts.Seed,
		Failures:    failures,
		Transcript:  tr,
		Frames:      rec2.TotalFrames(),
		PublishErrs: errsAtKill,
		Elapsed:     time.Since(start),
	}
	for _, id := range allIDs {
		res.Published += ackedAtKill[id]
		res.Delivered += uint64(life1.count(id) + life2.count(id))
	}
	tr.Logf(clock(), "result: acked=%d delivered(both lives)=%d failures=%d",
		res.Published, res.Delivered, len(res.Failures))
	if !res.Passed() && opts.ArtifactsDir != "" {
		if path, err := tr.WriteFile(opts.ArtifactsDir, res.Failures); err == nil {
			res.ArtifactPath = path
		}
	}
	return res, nil
}

// graftOrphans writes a sealed segment of count message records on topic
// id into dir, named to sort after every segment the crashed broker
// wrote. The resulting file state is byte-identical to a crash that got
// these records to stable storage but lost their prune markers — the
// page-cache loss an in-process fail-stop cannot reproduce.
func graftOrphans(dir string, id spec.TopicID, count int, created time.Duration) error {
	scratch, err := os.MkdirTemp("", "frame-chaos-orphan-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	seg, _, err := diskstore.OpenSegmented(scratch, diskstore.SegmentOptions{})
	if err != nil {
		return err
	}
	payload := []byte("orphan")
	for seq := uint64(1); seq <= uint64(count); seq++ {
		if err := seg.Append(wire.Message{Topic: id, Seq: seq, Created: created, Payload: payload}); err != nil {
			seg.Close()
			return err
		}
	}
	if err := seg.Close(); err != nil {
		return err
	}
	return os.Rename(filepath.Join(scratch, "seg-0000000000000000.log"),
		filepath.Join(dir, "seg-0000000000999999.log"))
}

func countAll(s *seqSet, ids []spec.TopicID) map[spec.TopicID]int {
	out := make(map[spec.TopicID]int, len(ids))
	for _, id := range ids {
		out[id] = s.count(id)
	}
	return out
}

func lossToleranceOf(topics []spec.Topic, id spec.TopicID) int {
	for _, tp := range topics {
		if tp.ID == id {
			return tp.LossTolerance
		}
	}
	return 0
}
