// Package chaos scripts fault timelines against a real FRAME cluster — a
// Primary, a Backup, a publisher proxy, and a subscriber wired over a
// fault-injected transport (package faultinject) — and checks the paper's
// guarantees end to end while links delay, drop, stall, partition, and
// brokers crash:
//
//   - consecutive losses never exceed the topic's tolerance Li (§III,
//     Lemma 1's purpose),
//   - per-topic FIFO holds on every delivery link, modulo a per-scenario
//     budget of "rewinds" for the legitimate re-runs that crash recovery
//     and publisher resend introduce,
//   - recovery never dispatches a discarded Backup Buffer entry, and never
//     dispatches any entry twice (Table 3, Recovery step 1),
//   - Backup promotion completes within the failure detector's configured
//     polling bound (§IV-A).
//
// Every run derives all fault randomness from one seed; a failed scenario
// prints it, and exporting FRAME_CHAOS_SEED with that value replays the
// same fault lottery. Run scenarios via `go test ./internal/chaos/` (the
// `-short` flag selects the PR-gating smoke subset) or the frame-chaos
// command.
package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/failover"
	"repro/internal/faultinject"
	"repro/internal/obsv"
	"repro/internal/spec"
)

// Node names every scenario topology uses; faults are scripted against the
// directed links between them.
const (
	NodePrimary = "primary"
	NodeBackup  = "backup"
	NodePub     = "pub"
	NodeSub     = "sub"
)

// PromotionSlack is added to the detector's WorstCaseDetection when
// asserting the promotion bound: the bound itself is the detector math, the
// slack absorbs scheduler jitter on loaded CI runners. A promotion that
// needs more than this is a real protocol stall, not noise.
const PromotionSlack = 500 * time.Millisecond

// Load describes the publish pump: Count messages per topic interleaved
// round-robin, one message every Interval.
type Load struct {
	Count       int
	Interval    time.Duration
	PayloadSize int
}

// Step is one timeline entry: at offset At from scenario start, run Do.
type Step struct {
	At   time.Duration
	Desc string
	Do   func(*Env) error
}

// Invariants tunes the post-run checks for one scenario.
type Invariants struct {
	// RequireAll asserts every published sequence number was delivered.
	RequireAll bool
	// MaxConsecutiveLoss is the Li bound asserted per topic.
	MaxConsecutiveLoss int
	// AllowedRewinds bounds, per delivery link, how many times the
	// arriving sequence may fall below its predecessor. Fault-free
	// scenarios allow 0 (strict FIFO); crash scenarios allow the re-runs
	// that recovery dispatch + publisher resend legitimately create.
	AllowedRewinds int
	// ExpectPromotion asserts the Backup promoted (within the detector's
	// polling bound of the first fault) — or, when false, that it did not.
	ExpectPromotion bool
}

// ExtraSub adds one more subscriber to a scenario, with its own node name
// (so link faults can target it) and its own invariant budget. The main
// subscriber's Invariants stay the strict ones; extras are typically the
// deliberately degraded parties.
type ExtraSub struct {
	Name string
	// RequireAll asserts every published sequence was delivered to this
	// subscriber too (the runner's drain then also waits for it).
	RequireAll bool
	// MaxConsecutiveLoss is the Li bound asserted per topic; negative
	// skips the check (a wedged subscriber may lose arbitrarily much).
	MaxConsecutiveLoss int
	// AllowedRewinds bounds per-link rewinds; negative skips the check.
	AllowedRewinds int
}

// Scenario is one scripted chaos run.
type Scenario struct {
	Name        string
	Description string
	// Smoke marks the scenario as part of the PR-gating smoke subset
	// (selected by `go test -short`).
	Smoke      bool
	Topics     []spec.Topic
	Load       Load
	Script     []Step
	Invariants Invariants
	// Detector overrides the failure detector tuning; zero means the
	// runner's fast default.
	Detector failover.Config
	// EgressDepth overrides the brokers' per-subscriber outbound ring
	// capacity; zero keeps the broker default.
	EgressDepth int
	// Mem runs the scenario over the in-process Mem transport instead of
	// TCP loopback. Mem conns are synchronous pipes, so egress
	// backpressure from a stalled subscriber reaches the broker's writer
	// deterministically instead of hiding in kernel socket buffers.
	Mem bool
	// ExtraSubs adds more subscribers, each with its own invariants.
	ExtraSubs []ExtraSub
	// Check, when set, runs after the drain with the rest of the
	// invariants; returned strings are reported as failures.
	Check func(*Env) []string
}

// Env is the live cluster a scenario's steps act on.
type Env struct {
	Net     *faultinject.Network
	Primary *broker.Broker
	Backup  *broker.Broker
	Pub     *client.Publisher
	Sub     *client.Subscriber
	Clock   func() time.Duration
	Tr      *Transcript
	// Extra holds the ExtraSubs subscribers by name, for Check hooks.
	Extra map[string]*client.Subscriber

	detector failover.Config
	extras   []extraRun

	mu             sync.Mutex
	faultAt        time.Duration // first broker-affecting fault
	faultSet       bool
	promotedAt     time.Duration
	promoted       bool
	primaryCrashed bool
	publishErrs    int
}

// markFault records the instant the first broker-affecting fault landed;
// the promotion bound is measured from it.
func (e *Env) markFault() {
	e.mu.Lock()
	if !e.faultSet {
		e.faultSet = true
		e.faultAt = e.Clock()
	}
	e.mu.Unlock()
}

// CrashPrimary fail-stops the Primary: every connection touching it is
// reset (TCP RST where possible) and the broker process state is stopped —
// the network face of the paper's SIGKILL runs.
func CrashPrimary() func(*Env) error {
	return func(e *Env) error {
		e.markFault()
		n := e.Net.ResetNode(NodePrimary)
		e.Tr.Logf(e.Clock(), "crash: reset %d primary connections", n)
		e.Primary.Stop()
		e.mu.Lock()
		e.primaryCrashed = true
		e.mu.Unlock()
		e.Tr.Logf(e.Clock(), "crash: primary stopped")
		return nil
	}
}

// RaisePartition cuts the named node groups off from each other; held
// frames deliver after Heal, new dials are refused meanwhile.
func RaisePartition(name string, a, b []string) func(*Env) error {
	return func(e *Env) error {
		if containsBroker(a) && containsBroker(b) {
			e.markFault()
		}
		e.Net.Partition(name, a, b)
		e.Tr.Logf(e.Clock(), "partition %q raised: %v | %v", name, a, b)
		return nil
	}
}

func containsBroker(nodes []string) bool {
	for _, n := range nodes {
		if n == NodePrimary || n == NodeBackup {
			return true
		}
	}
	return false
}

// HealPartition removes the named cut.
func HealPartition(name string) func(*Env) error {
	return func(e *Env) error {
		e.Net.Heal(name)
		e.Tr.Logf(e.Clock(), "partition %q healed", name)
		return nil
	}
}

// SetLink installs a fault program on the directed link from → to.
func SetLink(from, to string, f faultinject.Faults) func(*Env) error {
	return func(e *Env) error {
		e.Net.SetLink(from, to, f)
		e.Tr.Logf(e.Clock(), "link %s->%s faults: latency=%v jitter=%v bw=%d drop=%.2f stall=%v wbuf=%d",
			from, to, f.Latency, f.Jitter, f.BandwidthBps, f.Drop, f.Stall, f.WriteBufferBytes)
		return nil
	}
}

// ClearLink removes the fault program on the directed link from → to.
func ClearLink(from, to string) func(*Env) error {
	return func(e *Env) error {
		e.Net.ClearLink(from, to)
		e.Tr.Logf(e.Clock(), "link %s->%s faults cleared", from, to)
		return nil
	}
}

// ResetLink abruptly kills every live connection dialed from → to.
func ResetLink(from, to string) func(*Env) error {
	return func(e *Env) error {
		n := e.Net.ResetLink(from, to)
		e.Tr.Logf(e.Clock(), "reset %d connections on %s->%s", n, from, to)
		return nil
	}
}

// chaosTopic builds the scenarios' standard topic: loss-intolerant, with a
// retention window (Ni) large enough that publisher resend can cover any
// realistic crash window on a CI runner.
func chaosTopic(id spec.TopicID, retention int) spec.Topic {
	return spec.Topic{
		ID:            id,
		Category:      -1,
		Period:        20 * time.Millisecond,
		Deadline:      time.Second,
		LossTolerance: 0,
		Retention:     retention,
		Destination:   spec.DestEdge,
		PayloadSize:   16,
	}
}

// traceRecorder collects the Backup's prune / recovery-dispatch lifecycle
// events for the Table 3 invariant.
type traceRecorder struct {
	mu        sync.Mutex
	pruned    map[[2]uint64]bool // (topic, seq) discarded by a prune
	recovered map[[2]uint64]int  // (topic, seq) -> recovery dispatch count
}

func newTraceRecorder() *traceRecorder {
	return &traceRecorder{
		pruned:    make(map[[2]uint64]bool),
		recovered: make(map[[2]uint64]int),
	}
}

func (r *traceRecorder) note(ev obsv.TraceEvent) {
	key := [2]uint64{ev.Topic, ev.Seq}
	r.mu.Lock()
	switch ev.Stage {
	case obsv.StagePrune:
		r.pruned[key] = true
	case obsv.StageRecoveryDispatch:
		r.recovered[key]++
	}
	r.mu.Unlock()
}

// violations returns the Table 3 breaches: discarded entries that were
// recovery-dispatched anyway, and entries recovery-dispatched twice.
func (r *traceRecorder) violations() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var v []string
	for key, n := range r.recovered {
		if r.pruned[key] {
			v = append(v, fmt.Sprintf("discarded entry (topic %d, seq %d) was recovery-dispatched", key[0], key[1]))
		}
		if n > 1 {
			v = append(v, fmt.Sprintf("entry (topic %d, seq %d) recovery-dispatched %d times", key[0], key[1], n))
		}
	}
	return v
}
