// Gateway-level chaos: scripted fault timelines against the three-plane
// topology — a Primary+Backup pair (durability plane), one Gateway
// terminating thin clients (connection plane), and a publisher driving
// the brokers directly — judging the connection plane's isolation
// contract: a gateway crash or a wedged phone stays inside the thin
// clients' Li budgets, and the brokers never notice (no promotion, no
// broker-side shed or eviction, no publish errors).
//
// Gateway scenarios run over the in-process Mem transport: its symbolic
// listener addresses outlive a Stop, so a restarted gateway rebinds the
// exact address its reconnecting clients keep dialing, and its
// synchronous pipes surface wedged-client backpressure deterministically.

package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/faultinject"
	"repro/internal/gateway"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// NodeGateway is the gateway's node name; faults are scripted against the
// links touching it. The Mem listen address reuses the node name, like the
// broker nodes.
const NodeGateway = "gateway"

// GatewayStep is one timeline entry of a gateway scenario.
type GatewayStep struct {
	At   time.Duration
	Desc string
	Do   func(*GatewayEnv) error
}

// GatewayClient is one thin client of a gateway scenario, with its own
// node name (link faults can single it out) and its own invariant budget —
// the same DSL the pair scenarios' ExtraSubs use.
type GatewayClient struct {
	Name string
	// Wedged connects a raw session that subscribes and then never reads
	// — the phone that fell in a river. Wedged clients carry no invariant
	// budget; the scenario's Check judges what the gateway did to them.
	Wedged bool
	// RequireAll asserts every published sequence was delivered to this
	// client (the drain then also waits for it).
	RequireAll bool
	// MaxConsecutiveLoss is the Li bound asserted per topic; negative
	// skips the check.
	MaxConsecutiveLoss int
	// AllowedRewinds bounds per-link rewinds; negative skips the check.
	AllowedRewinds int
}

// GatewayScenario is one scripted chaos run against a gateway topology.
type GatewayScenario struct {
	Name        string
	Description string
	// Smoke marks the scenario as part of the PR-gating gateway smoke
	// subset.
	Smoke  bool
	Topics []spec.Topic
	Load   Load
	Script []GatewayStep
	// Clients are the thin clients terminated by the gateway.
	Clients []GatewayClient
	// ClientDepth overrides the gateway's per-client ring capacity; zero
	// keeps the gateway default.
	ClientDepth int
	// ClientWriteTimeout bounds each flush write to a client socket.
	ClientWriteTimeout time.Duration
	// Detector overrides the failure detector tuning; zero means the
	// runner's fast default.
	Detector failover.Config
	// Check, when set, runs after the drain; returned strings are failures.
	Check func(*GatewayEnv) []string
}

// GatewayEnv is the live topology a gateway scenario's steps act on.
type GatewayEnv struct {
	Net     *faultinject.Network
	Primary *broker.Broker
	Backup  *broker.Broker
	Pub     *client.Publisher
	// Clients holds the non-wedged thin subscribers by name.
	Clients map[string]*gateway.ThinSubscriber
	Clock   func() time.Duration
	Tr      *Transcript

	detector failover.Config
	gwOpts   gateway.Options

	mu          sync.Mutex
	gw          *gateway.Gateway
	promoted    bool
	promotedAt  time.Duration
	publishErrs int
	clients     []gatewayClientRun
	wedged      map[string]*transport.Conn
}

// gatewayClientRun is one built thin client with its recorder and budget.
type gatewayClientRun struct {
	spec GatewayClient
	sub  *gateway.ThinSubscriber
	rec  *Recorder
}

// Gateway returns the current gateway instance (RestartGateway replaces it).
func (e *GatewayEnv) Gateway() *gateway.Gateway {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gw
}

// CrashGateway fail-stops the gateway: every connection touching it is
// reset and the process state is stopped. The brokers keep running — the
// whole point is that they must not care.
func CrashGateway() func(*GatewayEnv) error {
	return func(e *GatewayEnv) error {
		gw := e.Gateway()
		n := e.Net.ResetNode(NodeGateway)
		e.Tr.Logf(e.Clock(), "crash: reset %d gateway connections", n)
		gw.Stop()
		e.Tr.Logf(e.Clock(), "crash: gateway stopped")
		return nil
	}
}

// RestartGateway brings a fresh gateway up at the same address, the way an
// orchestrator would. Thin clients with Reconnect keep redialing the
// address and land on the new instance.
func RestartGateway() func(*GatewayEnv) error {
	return func(e *GatewayEnv) error {
		gw, err := gateway.New(e.gwOpts)
		if err != nil {
			return fmt.Errorf("restart gateway: %w", err)
		}
		gw.Start()
		e.mu.Lock()
		e.gw = gw
		e.mu.Unlock()
		e.Tr.Logf(e.Clock(), "gateway restarted at %s", gw.Addr())
		return nil
	}
}

// GatewaySetLink installs a fault program on the directed link from → to.
func GatewaySetLink(from, to string, f faultinject.Faults) func(*GatewayEnv) error {
	return func(e *GatewayEnv) error {
		e.Net.SetLink(from, to, f)
		e.Tr.Logf(e.Clock(), "link %s->%s faults: latency=%v jitter=%v bw=%d drop=%.2f stall=%v wbuf=%d",
			from, to, f.Latency, f.Jitter, f.BandwidthBps, f.Drop, f.Stall, f.WriteBufferBytes)
		return nil
	}
}

// RunGateway executes one gateway scenario against a freshly built
// pair+gateway topology over the fault-injected Mem transport and returns
// the judged result.
func RunGateway(sc GatewayScenario, opts RunOptions) (*Result, error) {
	if len(sc.Clients) == 0 {
		return nil, fmt.Errorf("chaos: gateway scenario %q has no clients", sc.Name)
	}
	inner := opts.Inner
	if inner == nil {
		inner = transport.NewMem()
	}
	log := opts.Logger
	if log == nil {
		log = quietLogger()
	}
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	tr := &Transcript{Scenario: sc.Name, Seed: opts.Seed}
	net := faultinject.New(inner, opts.Seed)
	tr.Logf(clock(), "run start: seed=%d scenario=%q clients=%d", opts.Seed, sc.Name, len(sc.Clients))

	detector := sc.Detector
	if detector == (failover.Config{}) {
		detector = defaultDetector()
	}
	cfg := core.FRAMEConfig(chaosParams())
	cfg.MessageBufferCap = 4096
	cfg.BackupBufferCap = 4096

	backup, err := broker.New(broker.Options{
		Engine:     cfg,
		Role:       broker.RoleBackup,
		ListenAddr: NodeBackup,
		PeerAddr:   "pending",
		Network:    net.Node(NodeBackup),
		Clock:      clock,
		Workers:    4,
		Detector:   detector,
		Topics:     sc.Topics,
		Logger:     log,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: backup: %w", err)
	}
	primary, err := broker.New(broker.Options{
		Engine:     cfg,
		Role:       broker.RolePrimary,
		ListenAddr: NodePrimary,
		PeerAddr:   backup.Addr(),
		Network:    net.Node(NodePrimary),
		Clock:      clock,
		Workers:    4,
		Detector:   detector,
		Topics:     sc.Topics,
		Logger:     log,
	})
	if err != nil {
		backup.Stop()
		return nil, fmt.Errorf("chaos: primary: %w", err)
	}
	backup.SetPeerAddr(primary.Addr())
	backup.Start()
	primary.Start()

	e := &GatewayEnv{
		Net:      net,
		Primary:  primary,
		Backup:   backup,
		Clock:    clock,
		Tr:       tr,
		detector: detector,
		Clients:  make(map[string]*gateway.ThinSubscriber),
		wedged:   make(map[string]*transport.Conn),
	}
	stopBrokers := func() {
		primary.Stop()
		backup.Stop()
	}

	e.gwOpts = gateway.Options{
		ListenAddr:         NodeGateway,
		Topics:             sc.Topics,
		BrokerAddrs:        []string{primary.Addr(), backup.Addr()},
		Network:            net.Node(NodeGateway),
		Clock:              clock,
		Name:               NodeGateway,
		ClientDepth:        sc.ClientDepth,
		ClientWriteTimeout: sc.ClientWriteTimeout,
		Logger:             log,
	}
	gw, err := gateway.New(e.gwOpts)
	if err != nil {
		stopBrokers()
		return nil, fmt.Errorf("chaos: gateway: %w", err)
	}
	gw.Start()
	e.gw = gw
	tr.Logf(clock(), "topology up: primary=%s backup=%s gateway=%s", primary.Addr(), backup.Addr(), gw.Addr())

	// Watch for promotion: a gateway fault must never reach the failure
	// detector, so any promotion at all is an isolation breach.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-backup.Promoted():
			at := clock()
			e.mu.Lock()
			e.promoted = true
			e.promotedAt = at
			e.mu.Unlock()
			tr.Logf(at, "backup promoted (gateway fault leaked!)")
		case <-watchDone:
		}
	}()

	teardown := func() {
		e.mu.Lock()
		clients := append([]gatewayClientRun(nil), e.clients...)
		wedged := make([]*transport.Conn, 0, len(e.wedged))
		for _, c := range e.wedged {
			wedged = append(wedged, c)
		}
		e.mu.Unlock()
		for _, cr := range clients {
			cr.sub.Close()
		}
		for _, c := range wedged {
			c.Close()
		}
		if e.Pub != nil {
			e.Pub.Close()
		}
		e.Gateway().Stop()
		stopBrokers()
	}

	// The publisher drives the brokers directly: the durability plane's
	// ingest must be provably untouched by anything the connection plane
	// does, so any publish error is an invariant failure, not load noise.
	pub, err := client.NewPublisher(client.PublisherOptions{
		Name:        NodePub,
		Topics:      sc.Topics,
		PrimaryAddr: primary.Addr(),
		BackupAddr:  backup.Addr(),
		Network:     net.Node(NodePub),
		Clock:       clock,
		Detector:    detector,
		Logger:      log,
	})
	if err != nil {
		teardown()
		return nil, fmt.Errorf("chaos: publisher: %w", err)
	}
	e.Pub = pub

	topicIDs := make([]spec.TopicID, len(sc.Topics))
	for i, tp := range sc.Topics {
		topicIDs[i] = tp.ID
	}
	for _, gc := range sc.Clients {
		if gc.Wedged {
			conn, err := wedgeClient(net, gc.Name, gw.Addr(), topicIDs)
			if err != nil {
				teardown()
				return nil, fmt.Errorf("chaos: wedged client %s: %w", gc.Name, err)
			}
			e.mu.Lock()
			e.wedged[gc.Name] = conn
			e.mu.Unlock()
			continue
		}
		rec := NewRecorder()
		sub, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
			Name:        gc.Name,
			Topics:      topicIDs,
			GatewayAddr: gw.Addr(),
			Network:     net.Node(gc.Name),
			Clock:       clock,
			Reconnect:   true,
			OnFrame:     rec.Note,
			Logger:      log,
		})
		if err != nil {
			teardown()
			return nil, fmt.Errorf("chaos: thin client %s: %w", gc.Name, err)
		}
		e.mu.Lock()
		e.clients = append(e.clients, gatewayClientRun{spec: gc, sub: sub, rec: rec})
		e.mu.Unlock()
		e.Clients[gc.Name] = sub
	}

	// Readiness: the gateway's upstream session registered on the Primary,
	// and every thin client's Subscribe landed on the gateway.
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if primary.Health().EgressSubs >= 1 && gw.Subscribers() >= len(sc.Clients) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	pumpDone := make(chan struct{})
	pumpStop := make(chan struct{})
	go func() {
		defer close(pumpDone)
		payload := make([]byte, sc.Load.PayloadSize)
		ticker := time.NewTicker(sc.Load.Interval)
		defer ticker.Stop()
		for i := 0; i < sc.Load.Count; i++ {
			for _, id := range topicIDs {
				if _, err := pub.Publish(id, payload); err != nil {
					e.mu.Lock()
					e.publishErrs++
					e.mu.Unlock()
				}
			}
			select {
			case <-ticker.C:
			case <-pumpStop:
				return
			}
		}
		tr.Logf(clock(), "publish pump done: %d messages x %d topics", sc.Load.Count, len(topicIDs))
	}()

	for _, step := range sc.Script {
		if wait := step.At - clock(); wait > 0 {
			time.Sleep(wait)
		}
		tr.Logf(clock(), "step: %s", step.Desc)
		if err := step.Do(e); err != nil {
			tr.Logf(clock(), "step failed: %v", err)
			close(pumpStop)
			<-pumpDone
			teardown()
			return nil, fmt.Errorf("chaos: step %q: %w", step.Desc, err)
		}
	}
	<-pumpDone

	net.ClearAllFaults()
	tr.Logf(clock(), "all faults cleared; draining")
	drainDeadline := time.Now().Add(drainTimeout)
	lastTotal, quietSince := uint64(0), time.Now()
	for time.Now().Before(drainDeadline) {
		total := uint64(0)
		complete := true
		for _, cr := range e.clients {
			for _, id := range topicIDs {
				got := cr.sub.Received(id)
				total += got
				if cr.spec.RequireAll && got < pub.LastSeq(id) {
					complete = false
				}
			}
		}
		if complete {
			break
		}
		if total != lastTotal {
			lastTotal, quietSince = total, time.Now()
		} else if time.Since(quietSince) > drainQuiet {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr.Logf(clock(), "drain done")

	res := &Result{
		Scenario:   sc.Name,
		Seed:       opts.Seed,
		Transcript: tr,
	}
	for _, id := range topicIDs {
		res.Published += pub.LastSeq(id)
	}
	for _, cr := range e.clients {
		res.Duplicates += cr.sub.Duplicates()
		res.Frames += cr.rec.TotalFrames()
		for _, id := range topicIDs {
			res.Delivered += cr.sub.Received(id)
		}
	}
	res.Failures = e.checkGatewayInvariants(sc)

	teardown()
	res.Elapsed = time.Since(start)
	e.mu.Lock()
	res.PublishErrs = e.publishErrs
	e.mu.Unlock()
	tr.Logf(clock(), "result: published=%d delivered=%d dups=%d frames=%d publishErrs=%d failures=%d",
		res.Published, res.Delivered, res.Duplicates, res.Frames, res.PublishErrs, len(res.Failures))

	if !res.Passed() && opts.ArtifactsDir != "" {
		if path, err := tr.WriteFile(opts.ArtifactsDir, res.Failures); err == nil {
			res.ArtifactPath = path
		}
	}
	return res, nil
}

// wedgeClient opens a raw session that subscribes and then never reads —
// its gateway-side ring must absorb, shed, and finally evict it.
func wedgeClient(net *faultinject.Network, name, addr string, topics []spec.TopicID) (*transport.Conn, error) {
	nc, err := net.Node(name).Dial(addr)
	if err != nil {
		return nil, err
	}
	conn := transport.NewConn(nc)
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleSubscriber, Name: name}); err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.Send(&wire.Frame{Type: wire.TypeSubscribe, Topics: topics}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// checkGatewayInvariants judges the isolation contract: per-client Li and
// FIFO budgets, no promotion, no publish errors, and clean broker-side
// egress — connection-plane faults must be invisible one plane up.
func (e *GatewayEnv) checkGatewayInvariants(sc GatewayScenario) []string {
	var failures []string

	e.mu.Lock()
	promoted, promotedAt := e.promoted, e.promotedAt
	publishErrs := e.publishErrs
	e.mu.Unlock()

	for _, tp := range sc.Topics {
		if e.Pub.LastSeq(tp.ID) == 0 {
			failures = append(failures, fmt.Sprintf("topic %d: nothing was published — load pump broken", tp.ID))
		}
	}
	for _, cr := range e.clients {
		for _, tp := range sc.Topics {
			last := e.Pub.LastSeq(tp.ID)
			if last == 0 {
				continue
			}
			got := cr.sub.Received(tp.ID)
			if got == 0 {
				failures = append(failures, fmt.Sprintf("client %s, topic %d: published %d, delivered none",
					cr.spec.Name, tp.ID, last))
				continue
			}
			if cr.spec.RequireAll && got != last {
				failures = append(failures, fmt.Sprintf("client %s, topic %d: published %d, delivered %d distinct",
					cr.spec.Name, tp.ID, last, got))
			}
			if cr.spec.MaxConsecutiveLoss >= 0 {
				if loss := cr.sub.MaxConsecutiveLoss(tp.ID, last); loss > cr.spec.MaxConsecutiveLoss {
					failures = append(failures, fmt.Sprintf("client %s, topic %d: max consecutive loss %d exceeds Li bound %d",
						cr.spec.Name, tp.ID, loss, cr.spec.MaxConsecutiveLoss))
				}
			}
		}
		if cr.spec.AllowedRewinds >= 0 {
			for _, v := range cr.rec.fifoViolations(cr.spec.AllowedRewinds) {
				failures = append(failures, fmt.Sprintf("client %s: %s", cr.spec.Name, v))
			}
		}
	}

	if promoted {
		failures = append(failures, fmt.Sprintf("backup promoted at %v — a connection-plane fault reached the failure detector", promotedAt))
	}
	if publishErrs > 0 {
		failures = append(failures, fmt.Sprintf("publisher saw %d errors on the direct broker path — the gateway fault leaked into the durability plane", publishErrs))
	}
	for _, b := range []*broker.Broker{e.Primary, e.Backup} {
		es := b.EgressStats()
		if es.Shed > 0 || es.Evictions > 0 {
			failures = append(failures, fmt.Sprintf("%s broker shed %d / evicted %d on its own egress — client backpressure leaked past the gateway",
				b.Role(), es.Shed, es.Evictions))
		}
	}

	if sc.Check != nil {
		failures = append(failures, sc.Check(e)...)
	}
	return failures
}
