package chaos

import (
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/spec"
)

// All returns every shipped scenario. Names are stable — CI artifacts and
// replay commands reference them.
func All() []Scenario {
	return []Scenario{
		crashPromote(),
		partitionReplication(),
		flapRecovery(),
		deltaBBLatency(),
		bandwidthSubscriber(),
		resetStorm(),
		dropReplication(),
		slowSubscriberEgress(),
	}
}

// Find returns the named scenario.
func Find(name string) (Scenario, error) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("chaos: unknown scenario %q", name)
}

// crashPromote is the baseline §IV-A run: fail-stop the Primary mid-load,
// the Backup must promote within the polling bound, and between recovery
// dispatch and publisher resend every message must still arrive.
func crashPromote() Scenario {
	return Scenario{
		Name:        "crash-promote",
		Description: "fail-stop the Primary mid-load; Backup promotes and no message is lost",
		Smoke:       true,
		Topics:      []spec.Topic{chaosTopic(1, 256)},
		Load:        Load{Count: 250, Interval: 2 * time.Millisecond, PayloadSize: 16},
		Script: []Step{
			{At: 150 * time.Millisecond, Desc: "crash primary", Do: CrashPrimary()},
		},
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     2, // recovery run + resend run restart the sequence
			ExpectPromotion:    true,
		},
	}
}

// partitionReplication cuts Primary↔Backup while the Primary keeps serving:
// the Backup's probes die, it promotes (split-brain by design — FRAME has
// no quorum), and the subscriber's dedup absorbs the double dispatch. After
// the heal, held replication frames deliver and nothing is lost or
// reordered per link.
func partitionReplication() Scenario {
	return Scenario{
		Name:        "partition-replication",
		Description: "partition Primary from Backup during replication; dedup absorbs the split-brain",
		Smoke:       true,
		Topics:      []spec.Topic{chaosTopic(1, 256)},
		Load:        Load{Count: 250, Interval: 2 * time.Millisecond, PayloadSize: 16},
		Script: []Step{
			{At: 120 * time.Millisecond, Desc: "partition primary|backup",
				Do: RaisePartition("repl", []string{NodePrimary}, []string{NodeBackup})},
			{At: 400 * time.Millisecond, Desc: "heal partition", Do: HealPartition("repl")},
		},
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     2, // the promoted Backup's recovery run rewinds its link once
			ExpectPromotion:    true,
		},
	}
}

// flapRecovery crashes the Primary and then flaps (stalls/unstalls) both
// client links to the Backup exactly while recovery, resend, and fresh
// traffic are converging on it. Stalls hold frames without dropping them,
// so after the final heal everything must still arrive in per-link order.
func flapRecovery() Scenario {
	stall := faultinject.Faults{Stall: true}
	return Scenario{
		Name:        "flap-recovery",
		Description: "crash the Primary, then flap the publisher and subscriber links during recovery",
		Topics:      []spec.Topic{chaosTopic(1, 256)},
		Load:        Load{Count: 300, Interval: 2 * time.Millisecond, PayloadSize: 16},
		Script: []Step{
			{At: 120 * time.Millisecond, Desc: "crash primary", Do: CrashPrimary()},
			{At: 170 * time.Millisecond, Desc: "stall pub->backup", Do: SetLink(NodePub, NodeBackup, stall)},
			{At: 220 * time.Millisecond, Desc: "unstall pub->backup", Do: ClearLink(NodePub, NodeBackup)},
			{At: 250 * time.Millisecond, Desc: "stall backup->sub", Do: SetLink(NodeBackup, NodeSub, stall)},
			{At: 320 * time.Millisecond, Desc: "unstall backup->sub", Do: ClearLink(NodeBackup, NodeSub)},
			{At: 350 * time.Millisecond, Desc: "stall pub->backup again", Do: SetLink(NodePub, NodeBackup, stall)},
			{At: 420 * time.Millisecond, Desc: "unstall pub->backup again", Do: ClearLink(NodePub, NodeBackup)},
		},
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     2,
			ExpectPromotion:    true,
		},
	}
}

// deltaBBLatency inflates the replication link's ΔBB with latency and
// jitter, then crashes the Primary: replicas lag the dispatch path the way
// Lemma 1 budgets for, and the copies still in flight at the crash must be
// covered by the publisher's retained-ring resend.
func deltaBBLatency() Scenario {
	return Scenario{
		Name:        "delta-bb-latency",
		Description: "latency+jitter on the replication link (inflated ΔBB), then a Primary crash",
		Topics:      []spec.Topic{chaosTopic(1, 256)},
		Load:        Load{Count: 250, Interval: 2 * time.Millisecond, PayloadSize: 16},
		Script: []Step{
			{At: 0, Desc: "add 15ms±10ms to primary->backup",
				Do: SetLink(NodePrimary, NodeBackup, faultinject.Faults{Latency: 15 * time.Millisecond, Jitter: 10 * time.Millisecond})},
			{At: 200 * time.Millisecond, Desc: "crash primary", Do: CrashPrimary()},
		},
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     2,
			ExpectPromotion:    true,
		},
	}
}

// bandwidthSubscriber squeezes the Primary→subscriber link through a
// bandwidth cap with no broker fault at all: frames queue up behind the
// pacer, then flood out when the runner heals the world for the drain —
// and the fault-free guarantees (strict per-link FIFO, zero loss, no
// promotion) must hold exactly through both regimes.
func bandwidthSubscriber() Scenario {
	return Scenario{
		Name:        "bandwidth-subscriber",
		Description: "bandwidth-cap the subscriber link; slow delivery, zero loss, strict FIFO",
		Smoke:       true,
		Topics:      []spec.Topic{chaosTopic(1, 64), chaosTopic(2, 64)},
		Load:        Load{Count: 150, Interval: 2 * time.Millisecond, PayloadSize: 64},
		Script: []Step{
			{At: 0, Desc: "cap primary->sub at 64KiB/s",
				Do: SetLink(NodePrimary, NodeSub, faultinject.Faults{BandwidthBps: 64 << 10})},
		},
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     0,
			ExpectPromotion:    false,
		},
	}
}

// resetStorm repeatedly RSTs the publisher's connections to the Primary.
// The publisher's own detector declares the Primary dead and fails over to
// the (unpromoted) Backup, resending its retained ring; the Backup — whose
// probes of the Primary still succeed — must NOT promote, yet every message
// must arrive via one broker or the other.
func resetStorm() Scenario {
	steps := []Step{}
	for i := 0; i < 5; i++ {
		steps = append(steps, Step{
			At:   time.Duration(100+25*i) * time.Millisecond,
			Desc: fmt.Sprintf("reset pub->primary (%d/5)", i+1),
			Do:   ResetLink(NodePub, NodePrimary),
		})
	}
	return Scenario{
		Name:        "reset-storm",
		Description: "repeated RSTs on the publisher's Primary links force a client-side fail-over without promotion",
		Topics:      []spec.Topic{chaosTopic(1, 512)},
		Load:        Load{Count: 300, Interval: 2 * time.Millisecond, PayloadSize: 16},
		Script:      steps,
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     1, // the resend run restarts the backup link's sequence once
			ExpectPromotion:    false,
		},
	}
}

// slowSubscriberEgress exercises the asynchronous egress under degraded
// subscribers: one subscriber's delivery link is stalled behind a tiny
// write buffer (its egress ring must absorb, shed within Li, and finally
// evict it), another is squeezed through a bandwidth trickle (paced but
// lossless). The healthy main subscriber must sail through with zero loss
// and strict per-link FIFO — the isolation the per-subscriber rings exist
// to provide. Runs over Mem so backpressure reaches the broker's writer
// synchronously instead of pooling in kernel socket buffers.
func slowSubscriberEgress() Scenario {
	stalledTopic := func(id spec.TopicID) spec.Topic {
		tp := chaosTopic(id, 256)
		tp.LossTolerance = 8 // shed budget before the wedged sub is evicted
		return tp
	}
	return Scenario{
		Name:        "slow-subscriber-egress",
		Description: "stalled + trickle subscribers behind small egress rings; healthy subscriber keeps zero-loss FIFO",
		Smoke:       true,
		Mem:         true,
		EgressDepth: 64,
		Topics:      []spec.Topic{stalledTopic(1), stalledTopic(2)},
		Load:        Load{Count: 300, Interval: time.Millisecond, PayloadSize: 64},
		ExtraSubs: []ExtraSub{
			// The wedged one: may lose anything, and dies by eviction.
			{Name: "slow-sub", MaxConsecutiveLoss: -1, AllowedRewinds: -1},
			// The trickle one: paced, never overflows its ring, loses nothing.
			{Name: "trickle-sub", RequireAll: true, MaxConsecutiveLoss: 0, AllowedRewinds: 0},
		},
		Script: []Step{
			{At: 0, Desc: "stall primary->slow-sub behind a 4KiB buffer",
				Do: SetLink(NodePrimary, "slow-sub", faultinject.Faults{Stall: true, WriteBufferBytes: 4 << 10})},
			{At: 0, Desc: "trickle primary->trickle-sub at 32KiB/s",
				Do: SetLink(NodePrimary, "trickle-sub", faultinject.Faults{BandwidthBps: 32 << 10})},
		},
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     0,
			ExpectPromotion:    false,
		},
		Check: func(e *Env) []string {
			es := e.Primary.EgressStats()
			var v []string
			if es.Shed == 0 {
				v = append(v, "egress never shed despite a stalled subscriber behind a full ring")
			}
			if es.Evictions == 0 {
				v = append(v, "stalled subscriber exhausted Li without being evicted")
			}
			return v
		},
	}
}

// dropReplication runs the whole load with a 35% frame-drop lottery on the
// replication link, then crashes the Primary: the Backup Buffer is full of
// holes, recovery dispatches what survived, and the resend must cover the
// rest — while the prune/recovery discipline of Table 3 still holds.
func dropReplication() Scenario {
	return Scenario{
		Name:        "drop-replication",
		Description: "35% frame drop on the replication link, then a Primary crash",
		Topics:      []spec.Topic{chaosTopic(1, 512)},
		Load:        Load{Count: 250, Interval: 2 * time.Millisecond, PayloadSize: 16},
		Script: []Step{
			{At: 0, Desc: "drop 35% of primary->backup frames",
				Do: SetLink(NodePrimary, NodeBackup, faultinject.Faults{Drop: 0.35})},
			{At: 200 * time.Millisecond, Desc: "crash primary", Do: CrashPrimary()},
		},
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     2,
			ExpectPromotion:    true,
		},
	}
}
