package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Transcript is the timestamped event log of one scenario run. On failure
// it is written (with the seed and a ready-to-paste replay command) as the
// artifact that makes a CI red locally reproducible.
type Transcript struct {
	Scenario string
	Seed     int64

	mu     sync.Mutex
	events []string
}

// Logf appends one timestamped event.
func (tr *Transcript) Logf(at time.Duration, format string, args ...any) {
	tr.mu.Lock()
	tr.events = append(tr.events, fmt.Sprintf("%10s  %s", at.Round(100*time.Microsecond), fmt.Sprintf(format, args...)))
	tr.mu.Unlock()
}

// String renders the full transcript, replay header included.
func (tr *Transcript) String() string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s\n", tr.Scenario)
	fmt.Fprintf(&b, "seed: %d\n", tr.Seed)
	fmt.Fprintf(&b, "replay: FRAME_CHAOS_SEED=%d go test -count=1 -run 'TestChaosScenarios/%s' ./internal/chaos/\n",
		tr.Seed, tr.Scenario)
	b.WriteString("events:\n")
	for _, e := range tr.events {
		b.WriteString("  ")
		b.WriteString(e)
		b.WriteByte('\n')
	}
	return b.String()
}

// Tail returns the last n events, for inline test output.
func (tr *Transcript) Tail(n int) []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.events) <= n {
		return append([]string(nil), tr.events...)
	}
	return append([]string(nil), tr.events[len(tr.events)-n:]...)
}

// WriteFile persists the transcript (plus the run's failures) under dir and
// returns the artifact path.
func (tr *Transcript) WriteFile(dir string, failures []string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed-%d.txt", tr.Scenario, tr.Seed))
	var b strings.Builder
	b.WriteString(tr.String())
	if len(failures) > 0 {
		b.WriteString("failures:\n")
		for _, f := range failures {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
