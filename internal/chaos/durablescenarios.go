package chaos

import (
	"fmt"
	"time"

	"repro/internal/spec"
)

// durableTopics builds n standard chaos topics with generous retention.
func durableTopics(n int) []spec.Topic {
	out := make([]spec.Topic, n)
	for i := range out {
		out[i] = chaosTopic(spec.TopicID(i+1), 512)
	}
	return out
}

// DurableAll returns every shipped dual-crash scenario. Names are stable —
// CI artifacts and replay commands reference them.
func DurableAll() []DurableScenario {
	return []DurableScenario{
		killBothBrokers(),
		killBothGroupCommitStorm(),
	}
}

// DurableFind returns the named dual-crash scenario.
func DurableFind(name string) (DurableScenario, error) {
	for _, sc := range DurableAll() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return DurableScenario{}, fmt.Errorf("chaos: unknown durable scenario %q", name)
}

// killBothBrokers is the acceptance run for the durability plane: both
// brokers of the pair fail-stop mid-load — the failure mode §IV-A
// promotion cannot cover — and a broker restarted on the Primary's log
// segments must deliver every acked publish, recovery-dispatch exactly the
// unpruned backlog, and never re-dispatch a message whose prune record
// survived (Table 3's discipline, enforced from disk).
func killBothBrokers() DurableScenario {
	return DurableScenario{
		Name:        "kill-both-brokers",
		Description: "fail-stop the entire pair mid-load; a restart from log segments loses no acked publish",
		Smoke:       true,
		Topics:      durableTopics(2),
		Load:        Load{Count: 400, Interval: 2 * time.Millisecond, PayloadSize: 16},
		KillAt:      250 * time.Millisecond,
		// Forty records whose prune markers were lost: the second life must
		// recovery-dispatch all of them, not just stay quiet.
		Orphans: 40,
	}
}

// killBothGroupCommitStorm stresses the same dual crash at the group
// commit's worst operating point: a long fsync window with tiny segments,
// so the kill lands with commits pending and the log mid-roll across many
// segment files. Acked publishes must still all be covered — the window
// only delays acks, never falsifies them.
func killBothGroupCommitStorm() DurableScenario {
	return DurableScenario{
		Name:        "kill-both-groupcommit-storm",
		Description: "dual crash under a 5ms fsync window and 4KiB segments; acks stay truthful mid-roll",
		Topics:      durableTopics(3),
		Load:        Load{Count: 400, Interval: time.Millisecond, PayloadSize: 64},
		KillAt:      300 * time.Millisecond,
		// A wide window keeps commits pending at the kill; tiny segments
		// force rolls throughout, so replay crosses many boundaries.
		FsyncInterval: 5 * time.Millisecond,
		SegmentBytes:  4 << 10,
		// The orphan segment lands amid dozens of tiny sealed segments, so
		// replay-for-recovery crosses many roll boundaries.
		Orphans: 64,
	}
}
