package chaos_test

import (
	"hash/fnv"
	"os"
	"testing"

	"repro/internal/chaos"
	"repro/internal/faultinject"
)

// defaultSeed gives each scenario a stable per-name seed so runs are
// reproducible by default; FRAME_CHAOS_SEED overrides it for replay.
func defaultSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64()>>1) ^ 0x5eed
}

// TestChaosScenarios runs every shipped scenario over the real TCP
// transport. Under -short only the Smoke subset runs (the PR-gating
// configuration); the nightly chaos workflow runs everything.
func TestChaosScenarios(t *testing.T) {
	artifacts := os.Getenv("FRAME_CHAOS_ARTIFACTS")
	for _, sc := range chaos.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if testing.Short() && !sc.Smoke {
				t.Skip("not in the -short smoke subset")
			}
			seed := faultinject.SeedFromEnv(defaultSeed(sc.Name))
			res, err := chaos.Run(sc, chaos.RunOptions{Seed: seed, ArtifactsDir: artifacts})
			if err != nil {
				t.Fatalf("seed=%d setup: %v (replay: FRAME_CHAOS_SEED=%d)", seed, err, seed)
			}
			t.Logf("seed=%d published=%d delivered=%d dups=%d frames=%d publishErrs=%d elapsed=%v",
				res.Seed, res.Published, res.Delivered, res.Duplicates, res.Frames, res.PublishErrs, res.Elapsed)
			if !res.Passed() {
				t.Logf("replay: FRAME_CHAOS_SEED=%d go test -count=1 -run 'TestChaosScenarios/%s' ./internal/chaos/",
					res.Seed, sc.Name)
				if res.ArtifactPath != "" {
					t.Logf("artifact: %s", res.ArtifactPath)
				}
				for _, line := range res.Transcript.Tail(40) {
					t.Log(line)
				}
				for _, f := range res.Failures {
					t.Errorf("invariant violated: %s", f)
				}
			}
		})
	}
}

// TestShardChaosScenarios runs every shard-level scenario against a full
// multi-pair cluster with its routing Directory. All shipped shard
// scenarios are Smoke (the `shard smoke` CI job runs this file under
// -short); the nightly chaos workflow runs them with more seeds.
func TestShardChaosScenarios(t *testing.T) {
	artifacts := os.Getenv("FRAME_CHAOS_ARTIFACTS")
	for _, sc := range chaos.ShardAll() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if testing.Short() && !sc.Smoke {
				t.Skip("not in the -short smoke subset")
			}
			seed := faultinject.SeedFromEnv(defaultSeed(sc.Name))
			res, err := chaos.RunShard(sc, chaos.RunOptions{Seed: seed, ArtifactsDir: artifacts})
			if err != nil {
				t.Fatalf("seed=%d setup: %v (replay: FRAME_CHAOS_SEED=%d)", seed, err, seed)
			}
			t.Logf("seed=%d published=%d delivered=%d dups=%d frames=%d publishErrs=%d elapsed=%v",
				res.Seed, res.Published, res.Delivered, res.Duplicates, res.Frames, res.PublishErrs, res.Elapsed)
			if !res.Passed() {
				t.Logf("replay: FRAME_CHAOS_SEED=%d go test -count=1 -run 'TestShardChaosScenarios/%s' ./internal/chaos/",
					res.Seed, sc.Name)
				if res.ArtifactPath != "" {
					t.Logf("artifact: %s", res.ArtifactPath)
				}
				for _, line := range res.Transcript.Tail(40) {
					t.Log(line)
				}
				for _, f := range res.Failures {
					t.Errorf("invariant violated: %s", f)
				}
			}
		})
	}
}

// TestGatewayChaosScenarios runs every gateway-level scenario against the
// three-plane topology (broker pair, gateway, thin clients) over the Mem
// transport. All shipped gateway scenarios are Smoke (the `gateway smoke`
// CI job runs this file under -short).
func TestGatewayChaosScenarios(t *testing.T) {
	artifacts := os.Getenv("FRAME_CHAOS_ARTIFACTS")
	for _, sc := range chaos.GatewayAll() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if testing.Short() && !sc.Smoke {
				t.Skip("not in the -short smoke subset")
			}
			seed := faultinject.SeedFromEnv(defaultSeed(sc.Name))
			res, err := chaos.RunGateway(sc, chaos.RunOptions{Seed: seed, ArtifactsDir: artifacts})
			if err != nil {
				t.Fatalf("seed=%d setup: %v (replay: FRAME_CHAOS_SEED=%d)", seed, err, seed)
			}
			t.Logf("seed=%d published=%d delivered=%d dups=%d frames=%d publishErrs=%d elapsed=%v",
				res.Seed, res.Published, res.Delivered, res.Duplicates, res.Frames, res.PublishErrs, res.Elapsed)
			if !res.Passed() {
				t.Logf("replay: FRAME_CHAOS_SEED=%d go test -count=1 -run 'TestGatewayChaosScenarios/%s' ./internal/chaos/",
					res.Seed, sc.Name)
				if res.ArtifactPath != "" {
					t.Logf("artifact: %s", res.ArtifactPath)
				}
				for _, line := range res.Transcript.Tail(40) {
					t.Log(line)
				}
				for _, f := range res.Failures {
					t.Errorf("invariant violated: %s", f)
				}
			}
		})
	}
}

// TestDurableChaosScenarios runs every dual-crash scenario: both brokers
// of a durable pair are fail-stopped mid-load and the second life is
// judged against the crashed log's ground truth. kill-both-brokers is
// Smoke (the `durable-smoke` CI job runs this file under -short); the
// nightly chaos-durable workflow runs everything under -race.
func TestDurableChaosScenarios(t *testing.T) {
	artifacts := os.Getenv("FRAME_CHAOS_ARTIFACTS")
	for _, sc := range chaos.DurableAll() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if testing.Short() && !sc.Smoke {
				t.Skip("not in the -short smoke subset")
			}
			seed := faultinject.SeedFromEnv(defaultSeed(sc.Name))
			res, err := chaos.RunDurable(sc, chaos.RunOptions{Seed: seed, ArtifactsDir: artifacts})
			if err != nil {
				t.Fatalf("seed=%d setup: %v (replay: FRAME_CHAOS_SEED=%d)", seed, err, seed)
			}
			t.Logf("seed=%d acked=%d delivered=%d frames=%d publishErrs=%d elapsed=%v",
				res.Seed, res.Published, res.Delivered, res.Frames, res.PublishErrs, res.Elapsed)
			if !res.Passed() {
				t.Logf("replay: FRAME_CHAOS_SEED=%d go test -count=1 -run 'TestDurableChaosScenarios/%s' ./internal/chaos/",
					res.Seed, sc.Name)
				if res.ArtifactPath != "" {
					t.Logf("artifact: %s", res.ArtifactPath)
				}
				for _, line := range res.Transcript.Tail(40) {
					t.Log(line)
				}
				for _, f := range res.Failures {
					t.Errorf("invariant violated: %s", f)
				}
			}
		})
	}
}

// TestDurableScenarioRegistry guards the durable registry the CI
// durable-smoke job depends on: unique names, resolvable by DurableFind,
// and kill-both-brokers in the smoke subset.
func TestDurableScenarioRegistry(t *testing.T) {
	seen := map[string]bool{}
	smoke := 0
	all := chaos.DurableAll()
	if len(all) < 2 {
		t.Fatalf("%d durable scenarios shipped, want >= 2", len(all))
	}
	for _, sc := range all {
		if seen[sc.Name] {
			t.Errorf("duplicate durable scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Smoke {
			smoke++
		}
		if sc.KillAt <= 0 {
			t.Errorf("durable scenario %q never kills the pair — not a dual-crash test", sc.Name)
		}
		if _, err := chaos.DurableFind(sc.Name); err != nil {
			t.Errorf("DurableFind(%q): %v", sc.Name, err)
		}
	}
	if smoke == 0 {
		t.Error("no Smoke durable scenarios — the durable-smoke gate would run nothing")
	}
	if _, err := chaos.DurableFind("kill-both-brokers"); err != nil {
		t.Errorf("kill-both-brokers missing from the registry: %v", err)
	}
	if _, err := chaos.DurableFind("no-such-scenario"); err == nil {
		t.Error("DurableFind accepted an unknown name")
	}
}

// TestGatewayScenarioRegistry guards the gateway registry the CI
// gateway-smoke job depends on: unique names, resolvable by GatewayFind,
// a non-empty smoke subset, and every scenario shipping thin clients.
func TestGatewayScenarioRegistry(t *testing.T) {
	seen := map[string]bool{}
	smoke := 0
	all := chaos.GatewayAll()
	if len(all) < 2 {
		t.Fatalf("%d gateway scenarios shipped, want >= 2", len(all))
	}
	for _, sc := range all {
		if seen[sc.Name] {
			t.Errorf("duplicate gateway scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Smoke {
			smoke++
		}
		if len(sc.Clients) == 0 {
			t.Errorf("gateway scenario %q has no thin clients — not a connection-plane test", sc.Name)
		}
		if _, err := chaos.GatewayFind(sc.Name); err != nil {
			t.Errorf("GatewayFind(%q): %v", sc.Name, err)
		}
	}
	if smoke == 0 {
		t.Error("no Smoke gateway scenarios — the gateway-smoke gate would run nothing")
	}
	if _, err := chaos.GatewayFind("no-such-scenario"); err == nil {
		t.Error("GatewayFind accepted an unknown name")
	}
}

// TestShardScenarioRegistry guards the shard registry the CI shard-smoke
// job depends on: unique names, resolvable by ShardFind, and a non-empty
// smoke subset.
func TestShardScenarioRegistry(t *testing.T) {
	seen := map[string]bool{}
	smoke := 0
	all := chaos.ShardAll()
	if len(all) < 2 {
		t.Fatalf("%d shard scenarios shipped, want >= 2", len(all))
	}
	for _, sc := range all {
		if seen[sc.Name] {
			t.Errorf("duplicate shard scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Smoke {
			smoke++
		}
		if sc.Shards < 2 {
			t.Errorf("shard scenario %q runs on %d shards — not a sharding test", sc.Name, sc.Shards)
		}
		if _, err := chaos.ShardFind(sc.Name); err != nil {
			t.Errorf("ShardFind(%q): %v", sc.Name, err)
		}
	}
	if smoke == 0 {
		t.Error("no Smoke shard scenarios — the shard-smoke gate would run nothing")
	}
	if _, err := chaos.ShardFind("no-such-scenario"); err == nil {
		t.Error("ShardFind accepted an unknown name")
	}
}

// TestScenarioNamesUniqueAndSmokeSubset guards the registry shape the CI
// pipelines depend on: unique names, at least six scenarios, and a
// non-empty smoke subset for PR gating.
func TestScenarioNamesUniqueAndSmokeSubset(t *testing.T) {
	seen := map[string]bool{}
	smoke := 0
	all := chaos.All()
	if len(all) < 6 {
		t.Fatalf("%d scenarios shipped, want >= 6", len(all))
	}
	for _, sc := range all {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.Smoke {
			smoke++
		}
		if _, err := chaos.Find(sc.Name); err != nil {
			t.Errorf("Find(%q): %v", sc.Name, err)
		}
	}
	if smoke == 0 {
		t.Error("no Smoke scenarios — the PR gate would run nothing")
	}
	if _, err := chaos.Find("no-such-scenario"); err == nil {
		t.Error("Find accepted an unknown name")
	}
}
