// Shard-level chaos: scripted fault timelines against a full multi-pair
// cluster — N Primary+Backup pairs, the routing Directory, and
// cluster-aware endpoints — judging the paper's per-pair guarantees
// shard by shard: a killed pair's Backup must promote within the
// detector bound and keep its shard (epoch bump, same index), while the
// surviving shards' topics sail through with their Li and FIFO budgets
// untouched; a routing-plane outage must not touch the data plane at all
// (stale routes beat no routes).

package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/faultinject"
	"repro/internal/spec"
	"repro/internal/transport"
)

// ShardStep is one timeline entry of a shard scenario.
type ShardStep struct {
	At   time.Duration
	Desc string
	Do   func(*ShardEnv) error
}

// ShardScenario is one scripted chaos run against a sharded cluster.
type ShardScenario struct {
	Name        string
	Description string
	// Smoke marks the scenario as part of the PR-gating shard smoke subset.
	Smoke  bool
	Shards int
	Topics []spec.Topic
	Load   Load
	Script []ShardStep
	// Invariants are judged cluster-wide (every topic, every link).
	Invariants Invariants
	// PromoteShard is the one shard whose Backup must promote (within the
	// detector bound of the first fault); -1 asserts no shard promotes.
	// Invariants.ExpectPromotion is ignored for shard runs.
	PromoteShard int
	// Detector overrides the failure detector tuning; zero means the
	// runner's fast default.
	Detector failover.Config
	// Mem runs over the in-process Mem transport instead of TCP loopback.
	Mem bool
	// Check, when set, runs after the drain; returned strings are failures.
	Check func(*ShardEnv) []string
}

// ShardEnv is the live sharded cluster a scenario's steps act on.
type ShardEnv struct {
	Net     *faultinject.Network
	Cluster *cluster.Cluster
	Pub     *cluster.Publisher
	Sub     *cluster.Subscriber
	Clock   func() time.Duration
	Tr      *Transcript

	detector failover.Config

	mu          sync.Mutex
	faultAt     time.Duration
	faultSet    bool
	promoted    map[int]time.Duration // shard index -> promotion instant
	crashed     map[*broker.Broker]bool
	publishErrs int
}

// markFault records the instant the first broker-affecting fault landed.
func (e *ShardEnv) markFault() {
	e.mu.Lock()
	if !e.faultSet {
		e.faultSet = true
		e.faultAt = e.Clock()
	}
	e.mu.Unlock()
}

// CrashShardPrimary fail-stops one shard's Primary: connections reset,
// broker stopped — the pair's Backup must take the shard over.
func CrashShardPrimary(shard int) func(*ShardEnv) error {
	return func(e *ShardEnv) error {
		if shard < 0 || shard >= len(e.Cluster.Pairs) {
			return fmt.Errorf("chaos: no shard %d", shard)
		}
		e.markFault()
		p := e.Cluster.Pairs[shard]
		n := e.Net.ResetNode(cluster.PrimaryNode(shard))
		e.Tr.Logf(e.Clock(), "crash: reset %d shard-%d primary connections", n, shard)
		p.Primary.Stop()
		e.mu.Lock()
		e.crashed[p.Primary] = true
		e.mu.Unlock()
		e.Tr.Logf(e.Clock(), "crash: shard %d primary stopped", shard)
		return nil
	}
}

// ShardRaisePartition cuts the named node groups off from each other.
func ShardRaisePartition(name string, a, b []string) func(*ShardEnv) error {
	return func(e *ShardEnv) error {
		e.Net.Partition(name, a, b)
		e.Tr.Logf(e.Clock(), "partition %q raised: %v | %v", name, a, b)
		return nil
	}
}

// ShardHealPartition removes the named cut.
func ShardHealPartition(name string) func(*ShardEnv) error {
	return func(e *ShardEnv) error {
		e.Net.Heal(name)
		e.Tr.Logf(e.Clock(), "partition %q healed", name)
		return nil
	}
}

// RunShard executes one shard scenario against a freshly built cluster
// over the fault-injected transport and returns the judged result.
func RunShard(sc ShardScenario, opts RunOptions) (*Result, error) {
	if sc.Shards < 1 {
		return nil, fmt.Errorf("chaos: scenario %q needs at least one shard", sc.Name)
	}
	inner := opts.Inner
	if inner == nil {
		if sc.Mem {
			inner = transport.NewMem()
		} else {
			inner = &transport.TCP{DialTimeout: 2 * time.Second}
		}
	}
	log := opts.Logger
	if log == nil {
		log = quietLogger()
	}
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	tr := &Transcript{Scenario: sc.Name, Seed: opts.Seed}
	net := faultinject.New(inner, opts.Seed)
	tr.Logf(clock(), "run start: seed=%d scenario=%q shards=%d", opts.Seed, sc.Name, sc.Shards)

	detector := sc.Detector
	if detector == (failover.Config{}) {
		detector = defaultDetector()
	}
	cfg := core.FRAMEConfig(chaosParams())
	cfg.MessageBufferCap = 4096
	cfg.BackupBufferCap = 4096

	_, mem := inner.(*transport.Mem)
	c, err := cluster.New(cluster.Config{
		Shards:      sc.Shards,
		Topics:      sc.Topics,
		Engine:      cfg,
		NodeNetwork: net.Node,
		Mem:         mem,
		Clock:       clock,
		Workers:     4,
		Detector:    detector,
		Logger:      log,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: cluster: %w", err)
	}
	e := &ShardEnv{
		Net:      net,
		Cluster:  c,
		Clock:    clock,
		Tr:       tr,
		detector: detector,
		promoted: make(map[int]time.Duration),
		crashed:  make(map[*broker.Broker]bool),
	}
	tr.Logf(clock(), "cluster up: %d pairs, directory=%s epoch=%d", len(c.Pairs), c.Dir.Addr(), c.Dir.Epoch())

	// Per-shard promotion watchers stamp the instants the bound is judged
	// against. Promoted() is a closed-channel broadcast, so these coexist
	// with the cluster's own directory watchers.
	watchDone := make(chan struct{})
	defer close(watchDone)
	for _, p := range c.Pairs {
		p := p
		go func() {
			select {
			case <-p.Backup.Promoted():
				at := clock()
				e.mu.Lock()
				e.promoted[p.Index] = at
				e.mu.Unlock()
				tr.Logf(at, "shard %d backup promoted", p.Index)
			case <-watchDone:
			}
		}()
	}

	stop := func() { c.StopExcept(e.crashed) }

	router, err := cluster.NewRouter(cluster.RouterOptions{
		DirectoryAddr: c.Dir.Addr(), Network: net.Node(NodePub), Logger: log,
	})
	if err != nil {
		stop()
		return nil, fmt.Errorf("chaos: router: %w", err)
	}
	subRouter, err := cluster.NewRouter(cluster.RouterOptions{
		DirectoryAddr: c.Dir.Addr(), Network: net.Node(NodeSub), Logger: log,
	})
	if err != nil {
		stop()
		return nil, fmt.Errorf("chaos: subscriber router: %w", err)
	}
	rec := NewRecorder()
	topicIDs := make([]spec.TopicID, len(sc.Topics))
	for i, tp := range sc.Topics {
		topicIDs[i] = tp.ID
	}
	sub, err := cluster.NewSubscriber(cluster.SubscriberOptions{
		Name:    NodeSub,
		Topics:  topicIDs,
		Router:  subRouter,
		Network: net.Node(NodeSub),
		Clock:   clock,
		OnFrame: rec.Note,
		Logger:  log,
	})
	if err != nil {
		stop()
		return nil, fmt.Errorf("chaos: subscriber: %w", err)
	}
	pub, err := cluster.NewPublisher(cluster.PublisherOptions{
		Name:     NodePub,
		Topics:   sc.Topics,
		Router:   router,
		Network:  net.Node(NodePub),
		Clock:    clock,
		Detector: detector,
		// Poll as well as redirect-refresh, so routing-plane outage
		// scenarios actually exercise fetch failures mid-run.
		RefreshInterval: 50 * time.Millisecond,
		Logger:          log,
	})
	if err != nil {
		sub.Close()
		stop()
		return nil, fmt.Errorf("chaos: publisher: %w", err)
	}
	e.Pub, e.Sub = pub, sub

	// Wait for every pair's Primary to register the subscriber before the
	// pump starts.
	for _, p := range c.Pairs {
		for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
			if p.Primary.Health().EgressSubs >= 1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	pumpDone := make(chan struct{})
	pumpStop := make(chan struct{})
	go func() {
		defer close(pumpDone)
		payload := make([]byte, sc.Load.PayloadSize)
		ticker := time.NewTicker(sc.Load.Interval)
		defer ticker.Stop()
		for i := 0; i < sc.Load.Count; i++ {
			for _, id := range topicIDs {
				if _, err := pub.Publish(id, payload); err != nil {
					e.mu.Lock()
					e.publishErrs++
					e.mu.Unlock()
				}
			}
			select {
			case <-ticker.C:
			case <-pumpStop:
				return
			}
		}
		tr.Logf(clock(), "publish pump done: %d messages x %d topics", sc.Load.Count, len(topicIDs))
	}()

	for _, step := range sc.Script {
		if wait := step.At - clock(); wait > 0 {
			time.Sleep(wait)
		}
		tr.Logf(clock(), "step: %s", step.Desc)
		if err := step.Do(e); err != nil {
			tr.Logf(clock(), "step failed: %v", err)
			close(pumpStop)
			<-pumpDone
			pub.Close()
			sub.Close()
			stop()
			return nil, fmt.Errorf("chaos: step %q: %w", step.Desc, err)
		}
	}
	<-pumpDone

	net.ClearAllFaults()
	tr.Logf(clock(), "all faults cleared; draining")
	drainDeadline := time.Now().Add(drainTimeout)
	lastTotal, quietSince := uint64(0), time.Now()
	for time.Now().Before(drainDeadline) {
		total := uint64(0)
		complete := true
		for _, id := range topicIDs {
			got := sub.Received(id)
			total += got
			if got < pub.LastSeq(id) {
				complete = false
			}
		}
		if complete {
			break
		}
		if total != lastTotal {
			lastTotal, quietSince = total, time.Now()
		} else if time.Since(quietSince) > drainQuiet {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr.Logf(clock(), "drain done")

	res := &Result{
		Scenario:   sc.Name,
		Seed:       opts.Seed,
		Transcript: tr,
		Duplicates: sub.Duplicates(),
		Frames:     rec.TotalFrames(),
	}
	for _, id := range topicIDs {
		res.Published += pub.LastSeq(id)
		res.Delivered += sub.Received(id)
	}
	res.Failures = e.checkShardInvariants(sc, rec)

	pub.Close()
	sub.Close()
	stop()
	res.Elapsed = time.Since(start)
	e.mu.Lock()
	res.PublishErrs = e.publishErrs
	e.mu.Unlock()
	tr.Logf(clock(), "result: published=%d delivered=%d dups=%d frames=%d publishErrs=%d failures=%d",
		res.Published, res.Delivered, res.Duplicates, res.Frames, res.PublishErrs, len(res.Failures))

	if !res.Passed() && opts.ArtifactsDir != "" {
		if path, err := tr.WriteFile(opts.ArtifactsDir, res.Failures); err == nil {
			res.ArtifactPath = path
		}
	}
	return res, nil
}

// checkShardInvariants judges the cluster-wide assertions plus the
// per-shard promotion contract.
func (e *ShardEnv) checkShardInvariants(sc ShardScenario, rec *Recorder) []string {
	var failures []string
	inv := sc.Invariants

	e.mu.Lock()
	faultAt, faultSet := e.faultAt, e.faultSet
	promoted := make(map[int]time.Duration, len(e.promoted))
	for k, v := range e.promoted {
		promoted[k] = v
	}
	e.mu.Unlock()

	for _, tp := range sc.Topics {
		last := e.Pub.LastSeq(tp.ID)
		got := e.Sub.Received(tp.ID)
		if last == 0 {
			failures = append(failures, fmt.Sprintf("topic %d: nothing was published — load pump broken", tp.ID))
			continue
		}
		if got == 0 {
			failures = append(failures, fmt.Sprintf("topic %d: published %d, delivered none", tp.ID, last))
			continue
		}
		if inv.RequireAll && got != last {
			failures = append(failures, fmt.Sprintf("topic %d: published %d, delivered %d distinct", tp.ID, last, got))
		}
		if loss := e.Sub.MaxConsecutiveLoss(tp.ID, last); loss > inv.MaxConsecutiveLoss {
			failures = append(failures, fmt.Sprintf("topic %d: max consecutive loss %d exceeds Li bound %d",
				tp.ID, loss, inv.MaxConsecutiveLoss))
		}
	}
	failures = append(failures, rec.fifoViolations(inv.AllowedRewinds)...)

	bound := e.detector.WorstCaseDetection() + PromotionSlack
	if sc.PromoteShard >= 0 {
		at, ok := promoted[sc.PromoteShard]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("shard %d backup never promoted", sc.PromoteShard))
		case !faultSet:
			failures = append(failures, "scenario expects promotion but scripted no broker fault")
		default:
			if d := at - faultAt; d > bound {
				failures = append(failures, fmt.Sprintf("shard %d promotion took %v after the fault, bound %v (detector worst case %v + %v slack)",
					sc.PromoteShard, d, bound, e.detector.WorstCaseDetection(), PromotionSlack))
			}
		}
	}
	// Any promotion outside the expected shard means the blast radius
	// leaked — a surviving pair lost its Primary or its probes.
	for shard := range promoted {
		if shard != sc.PromoteShard {
			failures = append(failures, fmt.Sprintf("shard %d promoted in a scenario that only expects shard %d to", shard, sc.PromoteShard))
		}
	}

	if sc.Check != nil {
		failures = append(failures, sc.Check(e)...)
	}
	return failures
}
