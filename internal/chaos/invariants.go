package chaos

import (
	"fmt"
	"sync"

	"repro/internal/client"
	"repro/internal/spec"
)

// linkID identifies one delivery stream: a topic arriving over one broker
// link. FIFO is a per-link property — the two broker connections a
// subscriber holds may legitimately interleave.
type linkID struct {
	topic  spec.TopicID
	source string
}

// linkRecord tracks the arrival order on one delivery stream. A "rewind" is
// an arrival whose sequence is below its predecessor's: zero on a healthy
// link; crash recovery plus publisher resend legitimately restart the
// ascending run a bounded number of times.
type linkRecord struct {
	frames  int
	prev    uint64
	rewinds int
}

// Recorder sees every dispatch frame the subscriber receives (duplicates
// included, via client.SubscriberOptions.OnFrame) and maintains the
// per-link order records the FIFO invariant is checked against.
type Recorder struct {
	mu    sync.Mutex
	links map[linkID]*linkRecord
}

// NewRecorder returns an empty frame recorder.
func NewRecorder() *Recorder {
	return &Recorder{links: make(map[linkID]*linkRecord)}
}

// Note ingests one received frame. Safe for concurrent use; wire it as the
// subscriber's OnFrame callback.
func (r *Recorder) Note(d client.Delivery) {
	id := linkID{topic: d.Msg.Topic, source: d.Source}
	r.mu.Lock()
	lr := r.links[id]
	if lr == nil {
		lr = &linkRecord{}
		r.links[id] = lr
	}
	lr.frames++
	if d.Msg.Seq < lr.prev {
		lr.rewinds++
	}
	if d.Msg.Seq > lr.prev {
		lr.prev = d.Msg.Seq
	}
	r.mu.Unlock()
}

// TotalFrames returns how many dispatch frames arrived across all links.
func (r *Recorder) TotalFrames() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, lr := range r.links {
		n += lr.frames
	}
	return n
}

// fifoViolations returns one message per link whose rewind count exceeds
// the scenario's budget.
func (r *Recorder) fifoViolations(allowed int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var v []string
	for id, lr := range r.links {
		if lr.rewinds > allowed {
			v = append(v, fmt.Sprintf("FIFO broken on topic %d from %s: %d rewinds (budget %d) over %d frames",
				id.topic, id.source, lr.rewinds, allowed, lr.frames))
		}
	}
	return v
}

// checkInvariants evaluates every post-run assertion and returns the
// failures (empty means the scenario passed).
func (e *Env) checkInvariants(sc Scenario, rec *Recorder, traces *traceRecorder) []string {
	var failures []string
	inv := sc.Invariants

	e.mu.Lock()
	faultAt, faultSet := e.faultAt, e.faultSet
	promoted, promotedAt := e.promoted, e.promotedAt
	e.mu.Unlock()

	for _, tp := range sc.Topics {
		last := e.Pub.LastSeq(tp.ID)
		got := e.Sub.Received(tp.ID)
		if last == 0 {
			failures = append(failures, fmt.Sprintf("topic %d: nothing was published — load pump broken", tp.ID))
			continue
		}
		if got == 0 {
			failures = append(failures, fmt.Sprintf("topic %d: published %d, delivered none", tp.ID, last))
			continue
		}
		if inv.RequireAll && got != last {
			failures = append(failures, fmt.Sprintf("topic %d: published %d, delivered %d distinct", tp.ID, last, got))
		}
		if loss := e.Sub.MaxConsecutiveLoss(tp.ID, last); loss > inv.MaxConsecutiveLoss {
			failures = append(failures, fmt.Sprintf("topic %d: max consecutive loss %d exceeds Li bound %d",
				tp.ID, loss, inv.MaxConsecutiveLoss))
		}
	}

	failures = append(failures, rec.fifoViolations(inv.AllowedRewinds)...)
	failures = append(failures, traces.violations()...)

	// Extra subscribers are judged against their own budgets; negative
	// bounds skip a check for the deliberately degraded parties.
	for _, xr := range e.extras {
		for _, tp := range sc.Topics {
			last := e.Pub.LastSeq(tp.ID)
			got := xr.sub.Received(tp.ID)
			if xr.spec.RequireAll && got != last {
				failures = append(failures, fmt.Sprintf("extra sub %s, topic %d: published %d, delivered %d distinct",
					xr.spec.Name, tp.ID, last, got))
			}
			if xr.spec.MaxConsecutiveLoss >= 0 && last > 0 {
				if loss := xr.sub.MaxConsecutiveLoss(tp.ID, last); loss > xr.spec.MaxConsecutiveLoss {
					failures = append(failures, fmt.Sprintf("extra sub %s, topic %d: max consecutive loss %d exceeds bound %d",
						xr.spec.Name, tp.ID, loss, xr.spec.MaxConsecutiveLoss))
				}
			}
		}
		if xr.spec.AllowedRewinds >= 0 {
			for _, v := range xr.rec.fifoViolations(xr.spec.AllowedRewinds) {
				failures = append(failures, fmt.Sprintf("extra sub %s: %s", xr.spec.Name, v))
			}
		}
	}

	if sc.Check != nil {
		failures = append(failures, sc.Check(e)...)
	}

	bound := e.detector.WorstCaseDetection() + PromotionSlack
	switch {
	case inv.ExpectPromotion && !promoted:
		failures = append(failures, "backup never promoted")
	case inv.ExpectPromotion && !faultSet:
		failures = append(failures, "scenario expects promotion but scripted no broker fault")
	case inv.ExpectPromotion:
		if d := promotedAt - faultAt; d > bound {
			failures = append(failures, fmt.Sprintf("promotion took %v after the fault, bound %v (detector worst case %v + %v slack)",
				d, bound, e.detector.WorstCaseDetection(), PromotionSlack))
		}
	case !inv.ExpectPromotion && promoted:
		failures = append(failures, "backup promoted in a scenario that must not promote")
	}
	return failures
}
