package chaos

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/spec"
)

// shardTopics spreads n chaos topics (IDs 1..n) across the cluster; with
// the jump hash this covers every shard for the counts the scenarios use.
func shardTopics(n, retention int) []spec.Topic {
	out := make([]spec.Topic, n)
	for i := range out {
		out[i] = chaosTopic(spec.TopicID(i+1), retention)
	}
	return out
}

// ShardAll returns every shipped shard-level scenario. Names are stable —
// CI artifacts and replay commands reference them.
func ShardAll() []ShardScenario {
	return []ShardScenario{
		shardKillPair(),
		shardRoutingPartition(),
	}
}

// ShardFind returns the named shard scenario.
func ShardFind(name string) (ShardScenario, error) {
	for _, sc := range ShardAll() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return ShardScenario{}, fmt.Errorf("chaos: unknown shard scenario %q", name)
}

// shardKillPair fail-stops one shard's Primary mid-load in a three-pair
// cluster. The pair's Backup must promote within the detector bound and
// the Directory must record the promotion with the pair keeping its shard
// (epoch bump, same index); the publisher's per-pair fail-over plus resend
// covers the killed shard's topics, and the surviving shards' topics must
// never notice — zero loss, strict FIFO on their links.
func shardKillPair() ShardScenario {
	const shards = 3
	topics := shardTopics(9, 256)
	// Kill the shard that owns topic 1, so the scenario deterministically
	// exercises both a hit shard and untouched survivors.
	victim := cluster.ShardOf(topics[0].ID, shards)
	return ShardScenario{
		Name:        "shard-kill-pair",
		Description: "fail-stop one shard's Primary in a 3-pair cluster; its Backup keeps the shard, survivors never notice",
		Smoke:       true,
		Shards:      shards,
		Topics:      topics,
		Load:        Load{Count: 200, Interval: 2 * time.Millisecond, PayloadSize: 16},
		Script: []ShardStep{
			{At: 150 * time.Millisecond, Desc: fmt.Sprintf("crash shard %d primary", victim),
				Do: CrashShardPrimary(victim)},
		},
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     2, // recovery run + resend run on the hit pair's links
		},
		PromoteShard: victim,
		Check: func(e *ShardEnv) []string {
			var v []string
			// The routing table must have recorded exactly this promotion:
			// epoch bumped once, the pair keeps the shard with the promoted
			// Backup as Primary and no Backup.
			tab := e.Cluster.Dir.Table()
			if tab.Epoch != 2 {
				v = append(v, fmt.Sprintf("directory epoch %d after one promotion, want 2", tab.Epoch))
			}
			pair := e.Cluster.Pairs[victim]
			entry := tab.Shards[victim]
			if entry.Primary != pair.Backup.Addr() || entry.Backup != "" {
				v = append(v, fmt.Sprintf("shard %d entry %+v does not show the promoted backup owning the shard", victim, entry))
			}
			// Survivors' entries are untouched.
			for _, p := range e.Cluster.Pairs {
				if p.Index == victim {
					continue
				}
				entry := tab.Shards[p.Index]
				if entry.Primary != p.Primary.Addr() || entry.Backup != p.Backup.Addr() {
					v = append(v, fmt.Sprintf("surviving shard %d entry %+v changed", p.Index, entry))
				}
			}
			return v
		},
	}
}

// shardRoutingPartition cuts the routing Directory off from the publisher
// and subscriber for most of the load window. Stale routes beat no
// routes: the cached table keeps the data plane running untouched — zero
// loss, strict FIFO, no promotion anywhere — while every poll of the
// Directory fails.
func shardRoutingPartition() ShardScenario {
	const shards = 3
	return ShardScenario{
		Name:        "shard-routing-partition",
		Description: "partition the routing plane from the clients; cached routes keep the data plane lossless",
		Smoke:       true,
		Shards:      shards,
		Topics:      shardTopics(9, 64),
		Load:        Load{Count: 200, Interval: 2 * time.Millisecond, PayloadSize: 16},
		Script: []ShardStep{
			{At: 50 * time.Millisecond, Desc: "partition routing | clients",
				Do: ShardRaisePartition("routing-out", []string{cluster.NodeRouting}, []string{NodePub, NodeSub})},
			{At: 400 * time.Millisecond, Desc: "heal routing partition",
				Do: ShardHealPartition("routing-out")},
		},
		Invariants: Invariants{
			RequireAll:         true,
			MaxConsecutiveLoss: 0,
			AllowedRewinds:     0,
		},
		PromoteShard: -1,
		Check: func(e *ShardEnv) []string {
			var v []string
			// No redirects and no re-homes: the outage never touched routing
			// correctness, only availability of the refresh path.
			if n := e.Pub.Rehomed(); n != 0 {
				v = append(v, fmt.Sprintf("%d topics re-homed during a pure routing-plane outage", n))
			}
			if e.Pub.Epoch() != 1 {
				v = append(v, fmt.Sprintf("publisher epoch %d, want untouched 1", e.Pub.Epoch()))
			}
			return v
		},
	}
}
