package diskstore

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

func msg(seq uint64, payload string) wire.Message {
	return wire.Message{Topic: 3, Seq: seq, Created: time.Duration(seq) * time.Millisecond, Payload: []byte(payload)}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, got, err := Open(dir, "t.log", SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh log recovered %d messages", len(got))
	}
	for i := uint64(1); i <= 100; i++ {
		if err := l.Append(msg(i, "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != 100 {
		t.Errorf("Count = %d", l.Count())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recovered, err := Open(dir, "t.log", SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recovered) != 100 {
		t.Fatalf("recovered %d messages, want 100", len(recovered))
	}
	for i, m := range recovered {
		if m.Seq != uint64(i+1) || string(m.Payload) != "0123456789abcdef" {
			t.Fatalf("recovered[%d] = %+v", i, m)
		}
	}
	if l2.Count() != 100 {
		t.Errorf("reopened Count = %d", l2.Count())
	}
	// Appending after recovery continues the log.
	if err := l2.Append(msg(101, "tail")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, again, err := Open(dir, "t.log", SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 101 || again[100].Seq != 101 {
		t.Fatalf("after reopen-append: %d messages", len(again))
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, "t.log", SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if err := l.Append(msg(i, "payload")); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := l.Size()
	if err := l.Append(msg(11, "doomed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: chop the last record in half.
	path := filepath.Join(dir, "t.log")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := full[:goodSize+(int64(len(full))-goodSize)/2]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recovered, err := Open(dir, "t.log", SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recovered) != 10 {
		t.Fatalf("recovered %d messages after torn write, want 10", len(recovered))
	}
	if l2.Size() != goodSize {
		t.Errorf("Size after recovery = %d, want %d", l2.Size(), goodSize)
	}
}

func TestRecoveryRejectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, "t.log", SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := l.Append(msg(i, "payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "t.log")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[len(full)-3] ^= 0x40 // corrupt the last record's payload
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recovered, err := Open(dir, "t.log", SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 4 {
		t.Fatalf("recovered %d messages after bit flip, want 4 (corrupt record dropped)", len(recovered))
	}
}

func TestRecoveryStopsAtGarbageLength(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, "t.log", SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(msg(1, "ok")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "t.log")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var junk [8]byte
	binary.LittleEndian.PutUint32(junk[0:4], 0xFFFFFFFF) // absurd length
	if _, err := f.Write(junk[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, recovered, err := Open(dir, "t.log", SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered %d, want 1", len(recovered))
	}
}

func TestOpenRejectsBadPolicy(t *testing.T) {
	if _, _, err := Open(t.TempDir(), "t.log", SyncPolicy(0)); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestSyncAlwaysDurable(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, "t.log", SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(msg(1, "durable")); err != nil {
		t.Fatal(err)
	}
	// Without Close (simulating a crash): the record must still be there.
	_, recovered, err := Open(dir, "t2.log", SyncNever) // unrelated open works
	if err != nil || len(recovered) != 0 {
		t.Fatal(err)
	}
	_, recovered, err = Open(dir+"x", "t.log", SyncNever)
	if err != nil || len(recovered) != 0 {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "t.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("SyncAlways append not on disk")
	}
	l.Close()
}

// TestRecoveryPrefixProperty: for any append sequence and any truncation
// point, recovery yields a prefix of the appended messages.
func TestRecoveryPrefixProperty(t *testing.T) {
	dir := t.TempDir()
	f := func(seed int64, cut uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		name := "p.log"
		os.Remove(filepath.Join(dir, name))
		l, _, err := Open(dir, name, SyncNever)
		if err != nil {
			return false
		}
		n := rng.Intn(20) + 1
		for i := 1; i <= n; i++ {
			payload := make([]byte, rng.Intn(32))
			rng.Read(payload)
			if err := l.Append(wire.Message{Topic: 1, Seq: uint64(i), Payload: payload}); err != nil {
				return false
			}
		}
		if err := l.Close(); err != nil {
			return false
		}
		path := filepath.Join(dir, name)
		full, err := os.ReadFile(path)
		if err != nil {
			return false
		}
		keep := int(cut) % (len(full) + 1)
		if err := os.WriteFile(path, full[:keep], 0o644); err != nil {
			return false
		}
		l2, recovered, err := Open(dir, name, SyncNever)
		if err != nil {
			return false
		}
		defer l2.Close()
		// Prefix property: recovered = messages 1..k for some k.
		for i, m := range recovered {
			if m.Seq != uint64(i+1) {
				return false
			}
		}
		return len(recovered) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppendSyncNever(b *testing.B) {
	l, _, err := Open(b.TempDir(), "b.log", SyncNever)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	m := wire.Message{Topic: 1, Payload: make([]byte, 16)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Seq = uint64(i + 1)
		if err := l.Append(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendSyncAlways(b *testing.B) {
	l, _, err := Open(b.TempDir(), "b.log", SyncAlways)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	m := wire.Message{Topic: 1, Payload: make([]byte, 16)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Seq = uint64(i + 1)
		if err := l.Append(m); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSyncAndSize(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, "t.log", SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Size() != 0 {
		t.Errorf("fresh Size = %d", l.Size())
	}
	if err := l.Append(msg(1, "x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// record hdr(8) + type(1) + topic(4) + seq(8) + created(8) +
	// payload len(4) + payload(1) + arrivedPrimary(8 — TypeReplicate).
	want := int64(8 + 1 + 4 + 8 + 8 + 4 + 1 + 8)
	if l.Size() != want {
		t.Errorf("Size = %d, want %d", l.Size(), want)
	}
}

func TestAppendLatencyHelper(t *testing.T) {
	d, err := AppendLatency(t.TempDir(), SyncNever, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > time.Second {
		t.Errorf("mean append latency = %v", d)
	}
	if _, err := AppendLatency(t.TempDir(), SyncPolicy(9), 1, 16); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestOpenFailsOnUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("root ignores permissions")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(filepath.Join(dir, "sub"), "t.log", SyncNever); err == nil {
		t.Error("unwritable dir accepted")
	}
}
