// Segmented append log: the durability plane under the broker's opt-in
// "ACK = durable" publish mode. Where Log is one append file, SegLog is a
// directory of CRC-framed segment files that roll at a byte threshold and
// are retired by byte/age retention, so a long-lived broker neither grows
// one unbounded file nor loses crash recovery.
//
// Two record kinds share the Log record framing (uint32 length |
// uint32 crc32c | wire frame):
//
//   - TypeReplicate frames carry published messages;
//   - TypePrune frames mark a (topic, seq) as dispatched-and-pruned, the
//     Table 3 discipline: replay must not re-dispatch a pruned message.
//
// Replay scans segments in name order and stops at the first corrupt or
// truncated record of the *last* segment only (a crash can only tear the
// active tail); garbage in an older segment ends that segment's replay
// but later segments still load, matching what fsync ordering guarantees.
package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/spec"
	"repro/internal/wire"
)

// SegmentOptions shape a segmented log. Zero values pick the defaults;
// negative RetainBytes/RetainAge disable that retention axis.
type SegmentOptions struct {
	// SegmentBytes rolls the active segment once it exceeds this many
	// bytes (default 8 MiB).
	SegmentBytes int64
	// RetainBytes caps the total bytes across sealed segments; oldest
	// sealed segments are deleted first (default 256 MiB, negative =
	// unlimited). The active segment is never retired.
	RetainBytes int64
	// RetainAge retires sealed segments whose newest record is older than
	// this (default: disabled).
	RetainAge time.Duration
	// Policy controls fsync behavior of raw appends. The group-commit
	// writer uses SyncNever here and issues its own batched Sync calls.
	Policy SyncPolicy
	// Clock supplies wall time for RetainAge decisions (default time.Now).
	Clock func() time.Time
}

func (o SegmentOptions) withDefaults() SegmentOptions {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.RetainBytes == 0 {
		o.RetainBytes = 256 << 20
	}
	if o.Policy == 0 {
		o.Policy = SyncNever
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Pruned identifies one pruned (dispatched) message recorded in the log.
type Pruned struct {
	Topic spec.TopicID
	Seq   uint64
}

// Replay is everything a broker needs to rebuild engine state from disk:
// the surviving messages in append order and the set of pruned entries
// that must not be re-dispatched.
type Replay struct {
	Messages []wire.Message
	Prunes   []Pruned
}

// SegLog is a segmented append log. Like Log it is not safe for
// concurrent use — the group-commit Committer is its single owner in the
// broker; tests and replay-only callers may use it directly from one
// goroutine.
type SegLog struct {
	dir    string
	opts   SegmentOptions
	active *os.File
	seq    uint64 // index of the active segment
	size   int64  // bytes in the active segment
	total  int64  // bytes across all live segments
	count  int    // records appended since open (not incl. replayed)
	buf    []byte
	sealed []sealedSegment
}

type sealedSegment struct {
	path  string
	size  int64
	mtime time.Time
}

const segPrefix = "seg-"

func segName(seq uint64) string { return fmt.Sprintf("%s%016d.log", segPrefix, seq) }

// OpenSegmented opens (or creates) the segmented log in dir, replays every
// valid record, and arms the segment after the last one for new appends.
func OpenSegmented(dir string, opts SegmentOptions) (*SegLog, Replay, error) {
	opts = opts.withDefaults()
	if opts.Policy != SyncAlways && opts.Policy != SyncNever {
		return nil, Replay{}, fmt.Errorf("diskstore: unknown sync policy %d", int(opts.Policy))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Replay{}, fmt.Errorf("diskstore: mkdir: %w", err)
	}
	names, err := listSegments(dir)
	if err != nil {
		return nil, Replay{}, err
	}
	l := &SegLog{dir: dir, opts: opts}
	var rep Replay
	for i, name := range names {
		path := filepath.Join(dir, name)
		validLen, err := replaySegment(path, &rep)
		if err != nil {
			return nil, Replay{}, err
		}
		fi, statErr := os.Stat(path)
		if statErr != nil {
			return nil, Replay{}, fmt.Errorf("diskstore: stat segment: %w", statErr)
		}
		if i == len(names)-1 {
			// Reopen the last segment as the active one, truncating any
			// torn tail so new appends start on a valid boundary.
			f, err := os.OpenFile(path, os.O_RDWR, 0o644)
			if err != nil {
				return nil, Replay{}, fmt.Errorf("diskstore: open segment: %w", err)
			}
			if err := f.Truncate(validLen); err != nil {
				f.Close()
				return nil, Replay{}, fmt.Errorf("diskstore: truncate torn tail: %w", err)
			}
			if _, err := f.Seek(validLen, io.SeekStart); err != nil {
				f.Close()
				return nil, Replay{}, fmt.Errorf("diskstore: seek: %w", err)
			}
			l.active = f
			l.size = validLen
			l.total += validLen
			fmt.Sscanf(name, segPrefix+"%d.log", &l.seq)
		} else {
			l.sealed = append(l.sealed, sealedSegment{path: path, size: fi.Size(), mtime: fi.ModTime()})
			l.total += fi.Size()
		}
	}
	if l.active == nil {
		if err := l.roll(); err != nil {
			return nil, Replay{}, err
		}
	}
	return l, rep, nil
}

// listSegments returns the segment file names in dir sorted by name
// (which is creation order — names embed a zero-padded sequence).
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: read dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && len(e.Name()) > len(segPrefix) && e.Name()[:len(segPrefix)] == segPrefix {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// replaySegment appends the segment's valid records to rep and returns
// the byte length of the valid prefix.
func replaySegment(path string, rep *Replay) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("diskstore: open segment: %w", err)
	}
	defer f.Close()
	var valid int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return valid, nil // clean EOF or truncated header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > wire.MaxPayload+64 {
			return valid, nil
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(f, body); err != nil {
			return valid, nil
		}
		if crc32.Checksum(body, castagnoli) != sum {
			return valid, nil
		}
		frame, err := wire.Decode(body)
		if err != nil {
			return valid, nil
		}
		switch frame.Type {
		case wire.TypePublish, wire.TypeReplicate:
			rep.Messages = append(rep.Messages, frame.Msg)
		case wire.TypePrune:
			rep.Prunes = append(rep.Prunes, Pruned{Topic: frame.Topic, Seq: frame.Seq})
		default:
			return valid, nil
		}
		valid += int64(8 + len(body))
	}
}

// roll seals the active segment (if any) and opens the next one,
// then applies retention to the sealed set.
func (l *SegLog) roll() error {
	if l.active != nil {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("diskstore: fsync on roll: %w", err)
		}
		path := filepath.Join(l.dir, segName(l.seq))
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("diskstore: close on roll: %w", err)
		}
		l.sealed = append(l.sealed, sealedSegment{path: path, size: l.size, mtime: l.opts.Clock()})
		l.seq++
	}
	path := filepath.Join(l.dir, segName(l.seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: create segment: %w", err)
	}
	l.active = f
	l.size = 0
	return l.retain()
}

// retain deletes the oldest sealed segments that exceed the byte budget
// or the age limit. The active segment always survives.
func (l *SegLog) retain() error {
	for len(l.sealed) > 0 {
		oldest := l.sealed[0]
		overBytes := l.opts.RetainBytes > 0 && l.total > l.opts.RetainBytes
		overAge := l.opts.RetainAge > 0 && l.opts.Clock().Sub(oldest.mtime) > l.opts.RetainAge
		if !overBytes && !overAge {
			return nil
		}
		if err := os.Remove(oldest.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("diskstore: retire segment: %w", err)
		}
		l.total -= oldest.size
		l.sealed = l.sealed[1:]
	}
	return nil
}

// Append writes one message record, rolling the segment first if the
// active one is full. Under SyncAlways the record is fsynced before
// returning; otherwise call Sync (the group-commit writer batches this).
func (l *SegLog) Append(m wire.Message) error {
	return l.appendFrame(&wire.Frame{Type: wire.TypeReplicate, Msg: m})
}

// AppendPrune records that (topic, seq) was dispatched and pruned, so
// replay will not re-dispatch it.
func (l *SegLog) AppendPrune(topic spec.TopicID, seq uint64) error {
	return l.appendFrame(&wire.Frame{Type: wire.TypePrune, Topic: topic, Seq: seq})
}

func (l *SegLog) appendFrame(f *wire.Frame) error {
	if l.active == nil {
		return ErrClosed
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.roll(); err != nil {
			return err
		}
	}
	body, err := wire.Encode(l.buf[:0], f)
	if err != nil {
		return fmt.Errorf("diskstore: encode: %w", err)
	}
	l.buf = body
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	if _, err := l.active.Write(hdr[:]); err != nil {
		return fmt.Errorf("diskstore: write header: %w", err)
	}
	if _, err := l.active.Write(body); err != nil {
		return fmt.Errorf("diskstore: write body: %w", err)
	}
	if l.opts.Policy == SyncAlways {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("diskstore: fsync: %w", err)
		}
	}
	n := int64(8 + len(body))
	l.size += n
	l.total += n
	l.count++
	return nil
}

// Sync forces buffered appends of the active segment to stable storage.
func (l *SegLog) Sync() error {
	if l.active == nil {
		return ErrClosed
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("diskstore: fsync: %w", err)
	}
	return nil
}

// Count returns records appended since open (replayed records excluded).
func (l *SegLog) Count() int { return l.count }

// Size returns the byte length across all live segments.
func (l *SegLog) Size() int64 { return l.total }

// Segments returns how many segment files are live (sealed + active).
func (l *SegLog) Segments() int {
	if l.active == nil {
		return len(l.sealed)
	}
	return len(l.sealed) + 1
}

// Close syncs and closes the active segment. Further appends fail with
// ErrClosed.
func (l *SegLog) Close() error {
	if l.active == nil {
		return nil
	}
	err := l.active.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	if err != nil {
		return fmt.Errorf("diskstore: close: %w", err)
	}
	return nil
}
