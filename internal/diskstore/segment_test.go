package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func openSeg(t *testing.T, dir string, opts SegmentOptions) (*SegLog, Replay) {
	t.Helper()
	l, rep, err := OpenSegmented(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, rep
}

func TestSegmentedRoundTripAcrossRolls(t *testing.T) {
	dir := t.TempDir()
	// ~45-byte records against a 256-byte segment cap: 100 appends roll
	// many times.
	l, rep := openSeg(t, dir, SegmentOptions{SegmentBytes: 256, RetainBytes: -1})
	if len(rep.Messages) != 0 || len(rep.Prunes) != 0 {
		t.Fatalf("fresh log replayed %d msgs %d prunes", len(rep.Messages), len(rep.Prunes))
	}
	for i := uint64(1); i <= 100; i++ {
		if err := l.Append(msg(i, "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := l.AppendPrune(3, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if l.Segments() < 2 {
		t.Fatalf("Segments = %d, want rolls", l.Segments())
	}
	if l.Count() != 110 {
		t.Errorf("Count = %d, want 110", l.Count())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rep2 := openSeg(t, dir, SegmentOptions{SegmentBytes: 256, RetainBytes: -1})
	defer l2.Close()
	if len(rep2.Messages) != 100 {
		t.Fatalf("replayed %d messages, want 100", len(rep2.Messages))
	}
	for i, m := range rep2.Messages {
		if m.Seq != uint64(i+1) || string(m.Payload) != "0123456789abcdef" {
			t.Fatalf("replay[%d] = %+v", i, m)
		}
	}
	if len(rep2.Prunes) != 10 {
		t.Fatalf("replayed %d prunes, want 10", len(rep2.Prunes))
	}
	for i, p := range rep2.Prunes {
		if p.Topic != 3 || p.Seq != uint64((i+1)*10) {
			t.Fatalf("prune[%d] = %+v", i, p)
		}
	}
	// Appending after replay continues the log.
	if err := l2.Append(msg(101, "tail")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep3 := openSeg(t, dir, SegmentOptions{RetainBytes: -1})
	if len(rep3.Messages) != 101 || rep3.Messages[100].Seq != 101 {
		t.Fatalf("after reopen-append: %d messages", len(rep3.Messages))
	}
}

func TestSegmentedRetentionByBytes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeg(t, dir, SegmentOptions{SegmentBytes: 256, RetainBytes: 1024})
	defer l.Close()
	for i := uint64(1); i <= 500; i++ {
		if err := l.Append(msg(i, "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	// Retention runs on roll: total stays near the budget, never grows
	// with the append count.
	if l.Size() > 1024+512 {
		t.Errorf("Size = %d after retention, budget 1024", l.Size())
	}
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != l.Segments() {
		t.Errorf("on-disk segments %d != tracked %d", len(names), l.Segments())
	}
	if len(names) > 8 {
		t.Errorf("%d segments survived a 1 KiB budget", len(names))
	}
}

func TestSegmentedRetentionByAge(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	l, _ := openSeg(t, dir, SegmentOptions{
		SegmentBytes: 128, RetainBytes: -1, RetainAge: time.Minute, Clock: clock,
	})
	defer l.Close()
	for i := uint64(1); i <= 20; i++ {
		if err := l.Append(msg(i, "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	if before < 3 {
		t.Fatalf("want several segments, got %d", before)
	}
	// Advance past the age limit; the next roll retires everything sealed.
	now = now.Add(2 * time.Minute)
	for i := uint64(21); i <= 30; i++ {
		if err := l.Append(msg(i, "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() >= before+3 {
		t.Errorf("age retention kept %d segments (was %d)", l.Segments(), before)
	}
}

// lastSegmentPath returns the newest segment file in dir.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	names, err := listSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, names[len(names)-1])
}

// TestSegmentedCrashMidAppend is the crash-mid-fsync recovery table: a
// power cut can leave the active segment with a torn header, a torn
// body, a flipped bit, or pure garbage. Each case must reopen cleanly
// with exactly the records written before the torn one.
func TestSegmentedCrashMidAppend(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string, lastRecordStart int64)
	}{
		{"torn-header", func(t *testing.T, path string, start int64) {
			truncateTo(t, path, start+4)
		}},
		{"torn-body", func(t *testing.T, path string, start int64) {
			truncateTo(t, path, start+8+3)
		}},
		{"bit-flip", func(t *testing.T, path string, start int64) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-2] ^= 0x10
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage-tail", func(t *testing.T, path string, start int64) {
			truncateTo(t, path, start)
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			junk := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xDE, 0xAD, 0xBE, 0xEF, 0x00}
			if _, err := f.Write(junk); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := openSeg(t, dir, SegmentOptions{SegmentBytes: 1 << 20, RetainBytes: -1})
			for i := uint64(1); i <= 30; i++ {
				if err := l.Append(msg(i, "0123456789abcdef")); err != nil {
					t.Fatal(err)
				}
			}
			lastStart := l.size // offset of record 31 in the active segment
			if err := l.Append(msg(31, "doomed")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			tc.corrupt(t, lastSegmentPath(t, dir), lastStart)

			l2, rep := openSeg(t, dir, SegmentOptions{SegmentBytes: 1 << 20, RetainBytes: -1})
			defer l2.Close()
			if len(rep.Messages) != 30 {
				t.Fatalf("recovered %d messages, want 30 (record 31 torn)", len(rep.Messages))
			}
			for i, m := range rep.Messages {
				if m.Seq != uint64(i+1) {
					t.Fatalf("recovered[%d].Seq = %d", i, m.Seq)
				}
			}
			// The log stays writable on the recovered boundary.
			if err := l2.Append(msg(31, "retry")); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			_, rep2 := openSeg(t, dir, SegmentOptions{SegmentBytes: 1 << 20, RetainBytes: -1})
			if n := len(rep2.Messages); n != 31 || rep2.Messages[30].Seq != 31 {
				t.Fatalf("after recovery append: %d messages", n)
			}
		})
	}
}

func truncateTo(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentedCrashMidRoll is the crash-mid-segment-roll table: a crash
// can land after the old segment sealed but before the new one has any
// record (empty active file), or with the new segment's first record
// torn. Sealed segments must replay in full either way.
func TestSegmentedCrashMidRoll(t *testing.T) {
	build := func(t *testing.T) (string, int) {
		dir := t.TempDir()
		l, _ := openSeg(t, dir, SegmentOptions{SegmentBytes: 256, RetainBytes: -1})
		n := 0
		// Fill until we are exactly on a fresh active segment (size 0 ⇒
		// the previous append triggered a roll... SegLog rolls lazily on
		// the next append, so force it: append until Segments() grows,
		// then note the count).
		for l.Segments() < 3 {
			n++
			if err := l.Append(msg(uint64(n), "0123456789abcdef")); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, n
	}

	t.Run("empty-new-segment", func(t *testing.T) {
		dir, n := build(t)
		// Crash right after roll: the new active segment exists but holds
		// nothing. (The roll creates it empty; kill before first append.)
		empty := filepath.Join(dir, segName(99))
		if err := os.WriteFile(empty, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep := openSeg(t, dir, SegmentOptions{SegmentBytes: 256, RetainBytes: -1})
		defer l.Close()
		if len(rep.Messages) != n {
			t.Fatalf("recovered %d, want %d", len(rep.Messages), n)
		}
		if err := l.Append(msg(uint64(n+1), "after")); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("torn-first-record-after-roll", func(t *testing.T) {
		dir, n := build(t)
		// The newest segment's first record is torn mid-write: chop it to
		// 5 bytes. Older (sealed) segments must still replay completely.
		last := lastSegmentPath(t, dir)
		raw, err := os.ReadFile(last)
		if err != nil {
			t.Fatal(err)
		}
		recsInLast := countRecords(t, raw)
		truncateTo(t, last, 5)
		l, rep := openSeg(t, dir, SegmentOptions{SegmentBytes: 256, RetainBytes: -1})
		defer l.Close()
		want := n - recsInLast
		if len(rep.Messages) != want {
			t.Fatalf("recovered %d, want %d (last segment torn at byte 5)", len(rep.Messages), want)
		}
		for i, m := range rep.Messages {
			if m.Seq != uint64(i+1) {
				t.Fatalf("recovered[%d].Seq = %d", i, m.Seq)
			}
		}
	})
}

// countRecords walks framed records in raw, counting valid ones.
func countRecords(t *testing.T, raw []byte) int {
	t.Helper()
	n := 0
	for len(raw) >= 8 {
		length := int(uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24)
		if len(raw) < 8+length {
			break
		}
		raw = raw[8+length:]
		n++
	}
	return n
}

// TestCommitterGroupCommit: concurrent publishers all get durably acked,
// and the fsync count stays far below the record count — the whole point
// of group commit.
func TestCommitterGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeg(t, dir, SegmentOptions{RetainBytes: -1})
	c := NewCommitter(l, 2*time.Millisecond)
	const gs, per = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, gs*per)
	for g := 0; g < gs; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := wire.Message{Topic: 1, Seq: uint64(g*per + i + 1), Payload: []byte("gc")}
				if err := c.Enqueue(m).Wait(); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Records != gs*per {
		t.Errorf("Records = %d, want %d", st.Records, gs*per)
	}
	if st.Fsyncs == 0 || st.Fsyncs >= st.Records {
		t.Errorf("Fsyncs = %d for %d records — group commit not grouping", st.Fsyncs, st.Records)
	}
	if st.Pending != 0 {
		t.Errorf("Pending = %d after quiesce", st.Pending)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := openSeg(t, dir, SegmentOptions{RetainBytes: -1})
	if len(rep.Messages) != gs*per {
		t.Fatalf("replayed %d, want %d", len(rep.Messages), gs*per)
	}
}

// TestCommitterAlwaysMode: interval <= 0 degenerates to one fsync per
// record — the SyncAlways bound the bench compares against.
func TestCommitterAlwaysMode(t *testing.T) {
	l, _ := openSeg(t, t.TempDir(), SegmentOptions{RetainBytes: -1})
	c := NewCommitter(l, 0)
	for i := uint64(1); i <= 10; i++ {
		if err := c.Enqueue(wire.Message{Topic: 1, Seq: i, Payload: []byte("x")}).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Fsyncs != st.Records || st.Records != 10 {
		t.Errorf("always mode: Fsyncs = %d Records = %d, want 10/10", st.Fsyncs, st.Records)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitterConcurrentHammer is the -race proof for the concurrency
// fix: dozens of goroutines hammer Enqueue and EnqueuePrune against one
// committer while Stats is scraped, and every committed record survives
// a reopen. Before the committer, diskstore.Log was documented
// single-owner and the broker serialized with a mutex.
func TestCommitterConcurrentHammer(t *testing.T) {
	dir := t.TempDir()
	l, _ := openSeg(t, dir, SegmentOptions{SegmentBytes: 4 << 10, RetainBytes: -1})
	c := NewCommitter(l, time.Millisecond)
	const gs, per = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq := uint64(g*per + i + 1)
				if err := c.Enqueue(wire.Message{Topic: 2, Seq: seq, Payload: []byte("hammer")}).Wait(); err != nil {
					t.Error(err)
					return
				}
				c.EnqueuePrune(2, seq)
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent scrape, as /metrics does
		for {
			select {
			case <-done:
				return
			default:
				_ = c.Stats()
			}
		}
	}()
	wg.Wait()
	close(done)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep := openSeg(t, dir, SegmentOptions{SegmentBytes: 4 << 10, RetainBytes: -1})
	if len(rep.Messages) != gs*per {
		t.Fatalf("replayed %d messages, want %d", len(rep.Messages), gs*per)
	}
	// Acked prunes may trail by one batch on Close, but everything the
	// committer drained is on disk; the hammer acks every Enqueue, so all
	// messages and all but possibly the final batch of prunes persist.
	if len(rep.Prunes) == 0 {
		t.Error("no prune records survived")
	}
}

func TestCommitterEnqueueAfterClose(t *testing.T) {
	l, _ := openSeg(t, t.TempDir(), SegmentOptions{RetainBytes: -1})
	c := NewCommitter(l, time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(wire.Message{Topic: 1, Seq: 1}).Wait(); err == nil {
		t.Error("Enqueue after Close acked")
	}
	c.EnqueuePrune(1, 1) // must not panic
	if err := c.Close(); err != nil {
		t.Error(err)
	}
}

func TestOpenSegmentedRejectsBadPolicy(t *testing.T) {
	if _, _, err := OpenSegmented(t.TempDir(), SegmentOptions{Policy: SyncPolicy(9)}); err == nil {
		t.Error("bad policy accepted")
	}
}

// FuzzSegmentReplay: arbitrary bytes dropped into a segment file must
// never panic the replay, must always yield a decodable prefix, and the
// log must stay appendable — a fresh record lands after whatever prefix
// survived and replays on the next open.
func FuzzSegmentReplay(f *testing.F) {
	// Seeds: empty, truncated header, a valid single-record segment, and
	// a valid record followed by garbage.
	f.Add([]byte{})
	f.Add([]byte{0x05, 0x00, 0x00})
	{
		dir := f.TempDir()
		l, _, err := OpenSegmented(dir, SegmentOptions{RetainBytes: -1})
		if err != nil {
			f.Fatal(err)
		}
		l.Append(wire.Message{Topic: 1, Seq: 1, Payload: []byte("seed")})
		l.Close()
		raw, err := os.ReadFile(filepath.Join(dir, segName(0)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		f.Add(append(append([]byte{}, raw...), 0xFF, 0xFF, 0xFF, 0xFF))
	}
	var n int
	f.Fuzz(func(t *testing.T, data []byte) {
		n++
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("f%d", n))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := OpenSegmented(dir, SegmentOptions{RetainBytes: -1})
		if err != nil {
			t.Fatalf("OpenSegmented on fuzzed bytes: %v", err)
		}
		prefix := len(rep.Messages) + len(rep.Prunes)
		if err := l.Append(wire.Message{Topic: 7, Seq: 777, Payload: []byte("fuzz")}); err != nil {
			t.Fatalf("append after fuzzed replay: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, rep2, err := OpenSegmented(dir, SegmentOptions{RetainBytes: -1})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := len(rep2.Messages) + len(rep2.Prunes); got != prefix+1 {
			t.Fatalf("replay after append: %d records, want %d", got, prefix+1)
		}
		last := rep2.Messages[len(rep2.Messages)-1]
		if last.Seq != 777 || string(last.Payload) != "fuzz" {
			t.Fatalf("appended record corrupted on replay: %+v", last)
		}
	})
}
