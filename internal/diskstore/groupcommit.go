// Group commit: a single committer goroutine owns the segmented log and
// batches fsyncs off the broker's hot path. Sessions enqueue a record and
// park on the returned Commit; the committer drains everything queued,
// appends it, issues ONE fsync, and releases every waiter in the batch.
// This resolves the package's concurrency contract ("not safe for
// concurrent use; callers serialize") structurally: any number of
// goroutines may call Enqueue/EnqueuePrune, and exactly one goroutine
// ever touches the SegLog.
package diskstore

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/spec"
	"repro/internal/wire"
)

// Commit is a handle to one enqueued record's durability. Wait blocks
// until the fsync covering the record completes and reports its error.
type Commit struct {
	done chan struct{}
	err  error
}

// Wait blocks until the record is on stable storage (or the commit
// failed) and returns the outcome.
func (c *Commit) Wait() error {
	<-c.done
	return c.err
}

func failedCommit(err error) *Commit {
	c := &Commit{done: make(chan struct{}), err: err}
	close(c.done)
	return c
}

type commitRec struct {
	msg   wire.Message
	prune bool
	topic spec.TopicID
	seq   uint64
	c     *Commit // nil for fire-and-forget prune records
}

// CommitterStats is a point-in-time snapshot for /metrics gauges.
type CommitterStats struct {
	Records  uint64 // records appended (messages + prunes)
	Batches  uint64 // committer rounds completed
	Fsyncs   uint64 // fsync syscalls issued
	Pending  int64  // records enqueued but not yet committed
	Segments int64  // live segment files
	Bytes    int64  // bytes across live segments
}

// Committer serializes all writes to a SegLog behind a group-commit
// protocol. interval <= 0 degenerates to SyncAlways: every record is
// fsynced individually before its waiter releases (the slow bound the
// paper's Table 1 argument rests on); interval > 0 spaces fsyncs at
// least that far apart so concurrent publishers share one.
type Committer struct {
	log      *SegLog
	interval time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []commitRec
	closing bool
	failed  error

	done     chan struct{}
	lastSync time.Time

	records  atomic.Uint64
	batches  atomic.Uint64
	fsyncs   atomic.Uint64
	pending  atomic.Int64
	segments atomic.Int64
	bytes    atomic.Int64
}

// NewCommitter takes ownership of log (including Close) and starts the
// committer goroutine.
func NewCommitter(log *SegLog, interval time.Duration) *Committer {
	c := &Committer{log: log, interval: interval, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	c.segments.Store(int64(log.Segments()))
	c.bytes.Store(log.Size())
	go c.run()
	return c
}

// Enqueue queues one message for append and returns the Commit to park
// on. The caller must keep m.Payload unmodified until Wait returns.
func (c *Committer) Enqueue(m wire.Message) *Commit {
	cm := &Commit{done: make(chan struct{})}
	c.mu.Lock()
	if c.closing || c.failed != nil {
		err := c.failed
		if err == nil {
			err = ErrClosed
		}
		c.mu.Unlock()
		return failedCommit(err)
	}
	c.queue = append(c.queue, commitRec{msg: m, c: cm})
	c.pending.Add(1)
	c.cond.Signal()
	c.mu.Unlock()
	return cm
}

// EnqueuePrune queues a prune marker for (topic, seq) without a waiter:
// prune records ride whichever batch commits next. Losing the very last
// prunes in a crash is safe — replay then re-dispatches a message that
// was already dispatched-but-not-yet-marked, which the subscriber-side
// dedup absorbs; the Table 3 invariant (no *marked* prune re-dispatched)
// still holds.
func (c *Committer) EnqueuePrune(topic spec.TopicID, seq uint64) {
	c.mu.Lock()
	if c.closing || c.failed != nil {
		c.mu.Unlock()
		return
	}
	c.queue = append(c.queue, commitRec{prune: true, topic: topic, seq: seq})
	c.pending.Add(1)
	c.cond.Signal()
	c.mu.Unlock()
}

// Stats returns a snapshot of the committer's counters and log shape.
func (c *Committer) Stats() CommitterStats {
	return CommitterStats{
		Records:  c.records.Load(),
		Batches:  c.batches.Load(),
		Fsyncs:   c.fsyncs.Load(),
		Pending:  c.pending.Load(),
		Segments: c.segments.Load(),
		Bytes:    c.bytes.Load(),
	}
}

// Close drains the queue, stops the committer, and closes the log.
func (c *Committer) Close() error {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closing = true
	c.cond.Broadcast()
	c.mu.Unlock()
	<-c.done
	return c.log.Close()
}

// Crash fail-stops the committer for fault injection: queued records are
// dropped — their waiters release with ErrClosed — and no final drain or
// sync happens. On-disk state is whatever earlier batches already wrote,
// which is exactly what a process kill leaves behind. A batch the
// committer goroutine is mid-way through still completes (a kill can land
// just after a write as easily as just before).
func (c *Committer) Crash() {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		<-c.done
		return
	}
	c.closing = true
	dropped := c.queue
	c.queue = nil
	if c.failed == nil {
		c.failed = ErrClosed
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	<-c.done
	for i := range dropped {
		if dropped[i].c != nil {
			dropped[i].c.err = ErrClosed
			close(dropped[i].c.done)
		}
	}
	c.pending.Add(-int64(len(dropped)))
	c.log.Close()
}

func (c *Committer) run() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closing {
			c.cond.Wait()
		}
		if len(c.queue) == 0 && c.closing {
			c.mu.Unlock()
			return
		}
		recs := c.queue
		c.queue = nil
		c.mu.Unlock()

		err := c.appendAll(recs)
		if c.interval > 0 {
			// Hold the batch open for the rest of the fsync window so
			// publishers arriving now share this sync instead of paying
			// for their own.
			if d := c.interval - time.Since(c.lastSync); d > 0 {
				time.Sleep(d)
			}
			c.mu.Lock()
			more := c.queue
			c.queue = nil
			c.mu.Unlock()
			if len(more) > 0 {
				if e := c.appendAll(more); err == nil {
					err = e
				}
				recs = append(recs, more...)
			}
			if err == nil {
				err = c.log.Sync()
				c.fsyncs.Add(1)
			}
			c.lastSync = time.Now()
		}
		c.segments.Store(int64(c.log.Segments()))
		c.bytes.Store(c.log.Size())
		c.batches.Add(1)
		for i := range recs {
			if recs[i].c != nil {
				recs[i].c.err = err
				close(recs[i].c.done)
			}
		}
		c.pending.Add(-int64(len(recs)))
		if err != nil {
			c.mu.Lock()
			if c.failed == nil {
				c.failed = err
			}
			c.mu.Unlock()
		}
	}
}

// appendAll writes the records; under per-record mode (interval <= 0)
// each append is individually fsynced.
func (c *Committer) appendAll(recs []commitRec) error {
	var err error
	for i := range recs {
		if err != nil {
			break
		}
		if recs[i].prune {
			err = c.log.AppendPrune(recs[i].topic, recs[i].seq)
		} else {
			err = c.log.Append(recs[i].msg)
		}
		if err == nil {
			c.records.Add(1)
		}
		if err == nil && c.interval <= 0 {
			err = c.log.Sync()
			c.fsyncs.Add(1)
		}
	}
	return err
}
