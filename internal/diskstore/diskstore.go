// Package diskstore implements the third message-loss-tolerance strategy
// of the paper's Table 1: local-disk backup. Kafka and Spark Streaming
// persist message copies to disk; FRAME chose publisher retention and
// backup brokers instead because "the local disk strategy ... performs
// relatively slowly" (§II). This package exists to make that comparison
// concrete: it is a correct, crash-safe append-only log for message
// copies, and the benchmarks in this package measure what the paper only
// asserts — a durable append costs orders of magnitude more latency than
// an in-memory replication hop.
//
// Format: each record is CRC32C-framed —
//
//	uint32 length | uint32 crc32c(payload) | payload (wire-encoded frame)
//
// Recovery scans until EOF or the first corrupt/truncated record and
// truncates the tail, which makes a crash mid-append safe.
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/wire"
)

// SyncPolicy controls when appends reach stable storage.
type SyncPolicy int

// Sync policies.
const (
	// SyncAlways fsyncs after every append (durable, slow — the number the
	// paper's argument rests on).
	SyncAlways SyncPolicy = iota + 1
	// SyncNever leaves flushing to the OS (fast, loses recent appends on
	// power failure; still safe against process crashes).
	SyncNever
)

// Log is an append-only store of message copies for one broker.
// It is not safe for concurrent use; callers serialize.
type Log struct {
	f      *os.File
	path   string
	policy SyncPolicy
	buf    []byte
	size   int64
	count  int
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Open creates or opens the log at dir/name and recovers its contents:
// it returns the valid records already present, truncating any corrupt
// tail left by a crash mid-append.
func Open(dir, name string, policy SyncPolicy) (*Log, []wire.Message, error) {
	if policy != SyncAlways && policy != SyncNever {
		return nil, nil, fmt.Errorf("diskstore: unknown sync policy %d", int(policy))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("diskstore: mkdir: %w", err)
	}
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("diskstore: open: %w", err)
	}
	l := &Log{f: f, path: path, policy: policy}
	msgs, validLen, err := l.scan()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("diskstore: truncate corrupt tail: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("diskstore: seek: %w", err)
	}
	l.size = validLen
	l.count = len(msgs)
	return l, msgs, nil
}

// scan reads the log from the start, returning all valid messages and the
// byte length of the valid prefix.
func (l *Log) scan() ([]wire.Message, int64, error) {
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("diskstore: seek: %w", err)
	}
	var msgs []wire.Message
	var valid int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			return msgs, valid, nil // clean EOF or truncated header: stop
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > wire.MaxPayload+64 {
			return msgs, valid, nil // corrupt length: treat as tail garbage
		}
		body := make([]byte, length)
		if _, err := io.ReadFull(l.f, body); err != nil {
			return msgs, valid, nil
		}
		if crc32.Checksum(body, castagnoli) != sum {
			return msgs, valid, nil
		}
		frame, err := wire.Decode(body)
		if err != nil || (frame.Type != wire.TypePublish && frame.Type != wire.TypeReplicate) {
			return msgs, valid, nil
		}
		msgs = append(msgs, frame.Msg)
		valid += int64(8 + len(body))
	}
}

// Append writes one message copy and, under SyncAlways, forces it to
// stable storage before returning.
func (l *Log) Append(m wire.Message) error {
	body, err := wire.Encode(l.buf[:0], &wire.Frame{Type: wire.TypeReplicate, Msg: m})
	if err != nil {
		return fmt.Errorf("diskstore: encode: %w", err)
	}
	l.buf = body
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(body, castagnoli))
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("diskstore: write header: %w", err)
	}
	if _, err := l.f.Write(body); err != nil {
		return fmt.Errorf("diskstore: write body: %w", err)
	}
	if l.policy == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("diskstore: fsync: %w", err)
		}
	}
	l.size += int64(8 + len(body))
	l.count++
	return nil
}

// Count returns the number of records in the log.
func (l *Log) Count() int { return l.count }

// Size returns the log's byte length.
func (l *Log) Size() int64 { return l.size }

// Sync forces buffered appends to stable storage (useful with SyncNever).
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("diskstore: fsync: %w", err)
	}
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("diskstore: close: %w", err)
	}
	return nil
}

// ErrClosed reports use after Close.
var ErrClosed = errors.New("diskstore: closed")

// AppendLatency measures the mean latency of n appends under the policy,
// for the Table 1 strategy comparison. The log is written to dir and
// removed afterwards.
func AppendLatency(dir string, policy SyncPolicy, n int, payload int) (time.Duration, error) {
	l, _, err := Open(dir, "bench.log", policy)
	if err != nil {
		return 0, err
	}
	defer os.Remove(filepath.Join(dir, "bench.log"))
	defer l.Close()
	m := wire.Message{Topic: 1, Payload: make([]byte, payload)}
	start := time.Now()
	for i := 0; i < n; i++ {
		m.Seq = uint64(i + 1)
		if err := l.Append(m); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}
