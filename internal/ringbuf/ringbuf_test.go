package ringbuf

import (
	"testing"
	"testing/quick"
)

func TestPushGetWithinCapacity(t *testing.T) {
	r := New[string](4)
	idxA, ev := r.Push("a")
	if ev {
		t.Error("unexpected eviction on first push")
	}
	idxB, _ := r.Push("b")
	if idxA != 0 || idxB != 1 {
		t.Fatalf("indices = %d, %d; want 0, 1", idxA, idxB)
	}
	if v, ok := r.Get(idxA); !ok || v != "a" {
		t.Errorf("Get(0) = %q, %v; want a, true", v, ok)
	}
	if v, ok := r.Get(idxB); !ok || v != "b" {
		t.Errorf("Get(1) = %q, %v; want b, true", v, ok)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}

func TestPushEvictsOldest(t *testing.T) {
	r := New[int](3)
	for i := 0; i < 3; i++ {
		r.Push(i * 10)
	}
	idx, ev := r.Push(30)
	if !ev {
		t.Error("push into full ring did not report eviction")
	}
	if idx != 3 {
		t.Errorf("new index = %d, want 3", idx)
	}
	if _, ok := r.Get(0); ok {
		t.Error("evicted entry still readable")
	}
	for i := uint64(1); i <= 3; i++ {
		v, ok := r.Get(i)
		if !ok || v != int(i)*10 {
			t.Errorf("Get(%d) = %d, %v; want %d, true", i, v, ok, i*10)
		}
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d, want 3", r.Len())
	}
}

func TestSetAndUpdate(t *testing.T) {
	r := New[int](2)
	idx, _ := r.Push(1)
	if !r.Set(idx, 5) {
		t.Fatal("Set on live index failed")
	}
	if v, _ := r.Get(idx); v != 5 {
		t.Errorf("after Set, Get = %d, want 5", v)
	}
	if !r.Update(idx, func(p *int) { *p += 2 }) {
		t.Fatal("Update on live index failed")
	}
	if v, _ := r.Get(idx); v != 7 {
		t.Errorf("after Update, Get = %d, want 7", v)
	}
	if r.Set(99, 0) {
		t.Error("Set on unknown index succeeded")
	}
	if r.Update(99, func(*int) {}) {
		t.Error("Update on unknown index succeeded")
	}
}

func TestPopOldest(t *testing.T) {
	r := New[int](3)
	if _, ok := r.PopOldest(); ok {
		t.Error("PopOldest on empty ring succeeded")
	}
	r.Push(1)
	r.Push(2)
	if v, ok := r.PopOldest(); !ok || v != 1 {
		t.Errorf("PopOldest = %d, %v; want 1, true", v, ok)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if r.FirstIndex() != 1 {
		t.Errorf("FirstIndex = %d, want 1", r.FirstIndex())
	}
}

func TestClearPreservesIndexProgression(t *testing.T) {
	r := New[int](3)
	r.Push(1)
	r.Push(2)
	r.Clear()
	if r.Len() != 0 {
		t.Fatalf("Len after Clear = %d, want 0", r.Len())
	}
	idx, _ := r.Push(3)
	if idx != 2 {
		t.Errorf("index after Clear = %d, want 2", idx)
	}
}

func TestSnapshotAndDoOrder(t *testing.T) {
	r := New[int](3)
	for i := 0; i < 5; i++ { // wraps: retains 2,3,4
		r.Push(i)
	}
	snap := r.Snapshot()
	want := []int{2, 3, 4}
	if len(snap) != len(want) {
		t.Fatalf("snapshot len = %d, want %d", len(snap), len(want))
	}
	for i, w := range want {
		if snap[i] != w {
			t.Errorf("snapshot[%d] = %d, want %d", i, snap[i], w)
		}
	}
	var idxs []uint64
	var vals []int
	r.Do(func(idx uint64, v int) {
		idxs = append(idxs, idx)
		vals = append(vals, v)
	})
	for i := range vals {
		if vals[i] != want[i] || idxs[i] != uint64(i+2) {
			t.Errorf("Do[%d] = (%d,%d), want (%d,%d)", i, idxs[i], vals[i], i+2, want[i])
		}
	}
}

func TestNextIndex(t *testing.T) {
	r := New[int](2)
	if r.NextIndex() != 0 {
		t.Errorf("NextIndex = %d, want 0", r.NextIndex())
	}
	for i := 0; i < 5; i++ {
		idx, _ := r.Push(i)
		if idx != uint64(i) {
			t.Errorf("Push %d got index %d", i, idx)
		}
		if r.NextIndex() != uint64(i+1) {
			t.Errorf("NextIndex after %d pushes = %d", i+1, r.NextIndex())
		}
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	New[int](0)
}

// TestRingRetainsMostRecentProperty: after any sequence of pushes, the ring
// retains exactly the min(total, capacity) most recent values, in order, and
// indices are a contiguous range ending at total-1.
func TestRingRetainsMostRecentProperty(t *testing.T) {
	f := func(vals []int, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		r := New[int](capacity)
		for _, v := range vals {
			r.Push(v)
		}
		n := len(vals)
		keep := n
		if keep > capacity {
			keep = capacity
		}
		if r.Len() != keep {
			return false
		}
		snap := r.Snapshot()
		for i := 0; i < keep; i++ {
			if snap[i] != vals[n-keep+i] {
				return false
			}
		}
		// Every retained index maps to the right value; evicted indices miss.
		for i := 0; i < n; i++ {
			v, ok := r.Get(uint64(i))
			retained := i >= n-keep
			if ok != retained {
				return false
			}
			if ok && v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRingPush(b *testing.B) {
	r := New[[16]byte](1024)
	var payload [16]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(payload)
	}
}

// TestPushInPlaceMatchesPush: PushInPlace must advance indices, evictions,
// and contents exactly like Push — it only changes who writes the slot.
func TestPushInPlaceMatchesPush(t *testing.T) {
	a, b := New[int](3), New[int](3)
	for i := 0; i < 7; i++ {
		v := i * 10
		idxA, evA := a.Push(v)
		idxB, evB := b.PushInPlace(func(slot *int) { *slot = v })
		if idxA != idxB || evA != evB {
			t.Fatalf("push %d: Push = (%d, %v), PushInPlace = (%d, %v)", i, idxA, evA, idxB, evB)
		}
	}
	if a.Len() != b.Len() || a.FirstIndex() != b.FirstIndex() {
		t.Fatalf("rings diverged: len %d/%d first %d/%d", a.Len(), b.Len(), a.FirstIndex(), b.FirstIndex())
	}
	for i := a.FirstIndex(); i < a.NextIndex(); i++ {
		va, _ := a.Get(i)
		vb, ok := b.Get(i)
		if !ok || va != vb {
			t.Errorf("Get(%d) = %d vs %d (ok=%v)", i, va, vb, ok)
		}
	}
}

// TestPushInPlaceExposesEvictedValue: fill receives the slot still holding
// the evicted entry, so callers can harvest its allocations before
// overwriting — the contract the engine's payload recycling relies on.
func TestPushInPlaceExposesEvictedValue(t *testing.T) {
	r := New[[]byte](2)
	r.Push(append(make([]byte, 0, 128), 'a'))
	r.Push([]byte{'b'})
	var harvested int
	idx, evicted := r.PushInPlace(func(slot *[]byte) {
		harvested = cap(*slot) // the evicted 'a' entry's storage
		*slot = append((*slot)[:0], 'c')
	})
	if !evicted || idx != 2 {
		t.Fatalf("idx, evicted = %d, %v; want 2, true", idx, evicted)
	}
	if harvested != 128 {
		t.Errorf("fill saw cap %d, want the evicted slot's 128", harvested)
	}
	if v, ok := r.Get(2); !ok || string(v) != "c" || cap(v) != 128 {
		t.Errorf("Get(2) = %q (cap %d, ok=%v), want reused 128-cap storage", v, cap(v), ok)
	}
	if _, ok := r.Get(0); ok {
		t.Error("evicted index still readable")
	}
}
