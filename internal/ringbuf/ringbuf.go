// Package ringbuf implements the fixed-capacity ring buffers that back
// FRAME's Message Buffer, Backup Buffer, and publisher Retention Buffer
// (paper §V: "The Message Buffer, Backup Buffer, and Retention Buffer are
// all implemented as ring buffers").
//
// The buffer keeps the most recent Capacity entries: pushing into a full
// buffer evicts the oldest entry, matching retention semantics where a
// publisher retains only the Ni latest messages. Entries are addressable by
// a stable, monotonically increasing index so that schedulers can hold a
// reference to "the message at position p" and later detect that it has been
// evicted — this is how dispatch/replication jobs refer to the message
// store without copying payloads.
package ringbuf

import "fmt"

// Ring is a generic most-recent-K buffer. The zero value is unusable; use
// New. Ring is not safe for concurrent use; callers synchronize.
type Ring[T any] struct {
	buf   []T
	first uint64 // stable index of the oldest retained entry
	n     int    // number of retained entries
}

// New returns a ring that retains the capacity most recent entries.
func New[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ringbuf: capacity %d must be positive", capacity))
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Capacity returns the fixed capacity of the ring.
func (r *Ring[T]) Capacity() int { return len(r.buf) }

// Len returns the number of entries currently retained.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v, evicting the oldest entry if the ring is full. It returns
// the stable index assigned to v and whether an eviction occurred.
func (r *Ring[T]) Push(v T) (idx uint64, evicted bool) {
	if r.n == len(r.buf) {
		// Full: the slot of the oldest entry is exactly the slot the new
		// index maps to, since idx ≡ first (mod capacity) when n == capacity.
		idx = r.first + uint64(r.n)
		r.buf[r.pos(idx)] = v
		r.first++
		return idx, true
	}
	idx = r.first + uint64(r.n)
	r.buf[r.pos(idx)] = v
	r.n++
	return idx, false
}

// PushInPlace advances the ring exactly like Push but lets the caller
// construct the new entry directly in the slot: fill receives the slot still
// holding the evicted (or zero) value, so the caller can harvest its heap
// allocations — this is how the engine's Message and Backup Buffers reuse
// payload storage across ring wrap-arounds instead of allocating per
// message. fill must not call back into the ring.
func (r *Ring[T]) PushInPlace(fill func(*T)) (idx uint64, evicted bool) {
	idx = r.first + uint64(r.n)
	if r.n == len(r.buf) {
		r.first++
		evicted = true
	} else {
		r.n++
	}
	fill(&r.buf[r.pos(idx)])
	return idx, evicted
}

// Get returns the entry at stable index idx, or false if it was evicted or
// never pushed.
func (r *Ring[T]) Get(idx uint64) (T, bool) {
	var zero T
	if !r.Contains(idx) {
		return zero, false
	}
	return r.buf[r.pos(idx)], true
}

// Set overwrites the entry at stable index idx in place, returning false if
// the index is no longer (or not yet) retained.
func (r *Ring[T]) Set(idx uint64, v T) bool {
	if !r.Contains(idx) {
		return false
	}
	r.buf[r.pos(idx)] = v
	return true
}

// Update applies fn to the entry at idx in place. It returns false if the
// index is not retained.
func (r *Ring[T]) Update(idx uint64, fn func(*T)) bool {
	if !r.Contains(idx) {
		return false
	}
	fn(&r.buf[r.pos(idx)])
	return true
}

// Contains reports whether stable index idx is currently retained.
func (r *Ring[T]) Contains(idx uint64) bool {
	return idx >= r.first && idx < r.first+uint64(r.n)
}

// FirstIndex returns the stable index of the oldest retained entry. It is
// meaningful only when Len() > 0.
func (r *Ring[T]) FirstIndex() uint64 { return r.first }

// NextIndex returns the stable index the next Push will receive.
func (r *Ring[T]) NextIndex() uint64 { return r.first + uint64(r.n) }

// PopOldest removes and returns the oldest entry, or false if empty.
func (r *Ring[T]) PopOldest() (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	p := r.pos(r.first)
	v := r.buf[p]
	r.buf[p] = zero
	r.first++
	r.n--
	return v, true
}

// Clear discards all entries but keeps stable indices advancing: the next
// Push receives the index it would have received without the Clear.
func (r *Ring[T]) Clear() {
	var zero T
	for i := uint64(0); i < uint64(r.n); i++ {
		r.buf[r.pos(r.first+i)] = zero
	}
	r.first += uint64(r.n)
	r.n = 0
}

// Snapshot returns the retained entries, oldest first. The slice is freshly
// allocated; mutating it does not affect the ring.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, 0, r.n)
	for i := uint64(0); i < uint64(r.n); i++ {
		out = append(out, r.buf[r.pos(r.first+i)])
	}
	return out
}

// Do calls fn for each retained entry, oldest first, with its stable index.
// fn must not mutate the ring.
func (r *Ring[T]) Do(fn func(idx uint64, v T)) {
	for i := uint64(0); i < uint64(r.n); i++ {
		idx := r.first + i
		fn(idx, r.buf[r.pos(idx)])
	}
}

func (r *Ring[T]) pos(idx uint64) int { return int(idx % uint64(len(r.buf))) }
