package simcluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/ringbuf"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/wire"
)

// Options configures one simulated run.
type Options struct {
	// Workload is the topic set (see spec.NewWorkload). Required.
	Workload *spec.Workload
	// Variant selects the configuration under test.
	Variant Variant
	// Params are the timing parameters; zero-value means timing.PaperParams.
	Params timing.Params
	// Cost is the CPU cost model; zero-value means DefaultCostModel.
	Cost CostModel
	// Seed drives all randomness (publisher phases, link jitter, noise).
	Seed int64
	// Warmup precedes measurement (paper: 35 s; simulation default 1 s —
	// queues reach regime in well under a second at these rates).
	Warmup time.Duration
	// Measure is the measurement window (paper: 60 s; default 6 s).
	Measure time.Duration
	// Drain allows in-flight messages to complete after creation stops
	// (default 2 s).
	Drain time.Duration
	// CrashAt, when positive, kills the Primary that long into the
	// measurement window (paper: half-way through).
	CrashAt time.Duration
	// BackupDetect is the Backup's detection delay after the crash
	// (polling period × misses; default 25 ms, inside the 50 ms publisher
	// fail-over bound x).
	BackupDetect time.Duration
	// SpeedNoise, in [0,1), scales all CPU costs by a per-run factor drawn
	// from U[1−SpeedNoise, 1+SpeedNoise], modeling run-to-run host speed
	// variation (the source of the paper's wide confidence intervals near
	// saturation).
	SpeedNoise float64
	// TrackTopics lists topics whose full per-message latency series is
	// recorded (Fig. 9).
	TrackTopics []spec.TopicID
	// MessageBufferCap overrides the per-topic Message Buffer size
	// (default 32).
	MessageBufferCap int
	// CloudLink overrides the broker→cloud-subscriber latency model
	// (default netsim.PaperCloudLink). Used by the Fig. 8 experiment.
	CloudLink netsim.Model
}

func (o *Options) setDefaults() {
	if o.Params == (timing.Params{}) {
		o.Params = timing.PaperParams()
	}
	if o.Cost == (CostModel{}) {
		o.Cost = DefaultCostModel()
	}
	if o.Warmup == 0 {
		o.Warmup = time.Second
	}
	if o.Measure == 0 {
		o.Measure = 6 * time.Second
	}
	if o.Drain == 0 {
		o.Drain = 2 * time.Second
	}
	if o.BackupDetect == 0 {
		o.BackupDetect = 25 * time.Millisecond
	}
	if o.MessageBufferCap == 0 {
		o.MessageBufferCap = 32
	}
}

// SeriesPoint is one delivered message of a tracked topic.
type SeriesPoint struct {
	Seq     uint64
	Created time.Duration
	Latency time.Duration
	// Recovered marks deliveries that happened at or after the crash.
	Recovered bool
}

// TopicResult is the per-topic outcome over the measurement window.
type TopicResult struct {
	Topic spec.Topic
	// Created is the number of messages created within the window.
	Created uint64
	// Delivered counts distinct deliveries of those messages.
	Delivered uint64
	// Lost = Created − Delivered.
	Lost uint64
	// MaxConsecutiveLoss is the longest run of lost sequence numbers.
	MaxConsecutiveLoss int
	// DeadlineMet counts deliveries within the topic's deadline Di.
	DeadlineMet uint64
	// Duplicates counts discarded re-deliveries.
	Duplicates uint64
}

// MeetsLossTolerance reports the Table 4 per-topic criterion.
func (r TopicResult) MeetsLossTolerance() bool {
	return r.MaxConsecutiveLoss <= r.Topic.LossTolerance
}

// LatencySuccessRate is the fraction of created messages delivered within
// the deadline (Table 5 counts lost messages as misses).
func (r TopicResult) LatencySuccessRate() float64 {
	if r.Created == 0 {
		return 1
	}
	return float64(r.DeadlineMet) / float64(r.Created)
}

// Utilization is the modeled per-module CPU usage over the measurement
// window, in percent of the module's core budget (Fig. 7).
type Utilization struct {
	PrimaryDelivery float64
	PrimaryProxy    float64
	BackupDelivery  float64
	BackupProxy     float64
}

// Result is the outcome of one run.
type Result struct {
	Variant     Variant
	TotalTopics int
	Measure     time.Duration
	Crashed     bool

	Topics []TopicResult
	Util   Utilization
	// PrimaryStats and BackupStats snapshot the engine counters.
	PrimaryStats core.Stats
	BackupStats  core.Stats
	// Series holds tracked topics' delivery series (Fig. 9).
	Series map[spec.TopicID][]SeriesPoint
	// SpeedFactor is the host-speed multiplier this run drew.
	SpeedFactor float64
}

// cluster wires the simulated deployment together.
type cluster struct {
	eng  *sim.Engine
	opts Options
	cost CostModel
	rng  *rand.Rand

	primary *simBroker
	backup  *simBroker
	pubs    []*simPublisher
	subs    map[spec.TopicID]*topicSub

	pubLink    netsim.Model // publisher→broker (ΔPB)
	edgeLink   netsim.Model // broker→edge subscriber (ΔBS edge)
	cloudLink  netsim.Model // broker→cloud subscriber (ΔBS cloud)
	brokerLink netsim.Model // Primary→Backup (ΔBB)

	measureStart time.Duration
	measureEnd   time.Duration
	crashTime    time.Duration // absolute; 0 = no crash
	tracked      map[spec.TopicID]bool

	workload *spec.Workload // variant-adjusted topic set
	factor   float64        // host speed multiplier drawn this run
	cloud    *cloudHost     // shared cloud ingest host (nil: direct delivery)
}

// Run executes one simulated evaluation run.
func Run(opts Options) (*Result, error) {
	c, err := build(opts, sim.New(), nil)
	if err != nil {
		return nil, err
	}
	c.start()
	c.eng.Run(c.measureEnd + c.opts.Drain)
	return c.collect(), nil
}

// validate checks option ranges shared by Run and RunMultiEdge.
func (o *Options) validate() error {
	if o.Workload == nil {
		return fmt.Errorf("simcluster: nil workload")
	}
	o.setDefaults()
	if err := o.Cost.Validate(); err != nil {
		return err
	}
	if err := o.Params.Validate(); err != nil {
		return err
	}
	if o.SpeedNoise < 0 || o.SpeedNoise >= 1 {
		return fmt.Errorf("simcluster: speed noise %v outside [0,1)", o.SpeedNoise)
	}
	if o.CrashAt < 0 || (o.CrashAt > 0 && o.CrashAt > o.Measure) {
		return fmt.Errorf("simcluster: crash offset %v outside measure window %v", o.CrashAt, o.Measure)
	}
	return nil
}

// build wires one edge cluster onto the given engine. cloud, when non-nil,
// is a shared cloud ingest host (multi-edge extension).
func build(opts Options, eng *sim.Engine, cloud *cloudHost) (*cluster, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	factor := 1.0
	if opts.SpeedNoise > 0 {
		factor = 1 - opts.SpeedNoise + 2*opts.SpeedNoise*rng.Float64()
	}

	c := &cluster{
		eng:          eng,
		opts:         opts,
		cost:         opts.Cost.scale(factor),
		rng:          rng,
		subs:         make(map[spec.TopicID]*topicSub, len(opts.Workload.Topics)),
		measureStart: opts.Warmup,
		measureEnd:   opts.Warmup + opts.Measure,
		tracked:      make(map[spec.TopicID]bool, len(opts.TrackTopics)),
	}
	for _, id := range opts.TrackTopics {
		c.tracked[id] = true
	}
	if opts.CrashAt > 0 {
		c.crashTime = opts.Warmup + opts.CrashAt
	}
	c.pubLink = netsim.PaperEdgeLink(rng.Int63())
	c.edgeLink = netsim.PaperEdgeLink(rng.Int63())
	c.brokerLink = netsim.PaperBrokerLink(rng.Int63())
	if opts.CloudLink != nil {
		c.cloudLink = opts.CloudLink
	} else {
		c.cloudLink = netsim.PaperCloudLink(rng.Int63())
	}

	workload := opts.Variant.PrepareWorkload(opts.Workload)
	engineCfg := opts.Variant.EngineConfig(opts.Params)
	engineCfg.MessageBufferCap = opts.MessageBufferCap

	var err error
	c.primary, err = newSimBroker(c, "primary", engineCfg, workload)
	if err != nil {
		return nil, err
	}
	backupCfg := engineCfg
	backupCfg.HasBackup = false // a promoted Backup has no further backup
	c.backup, err = newSimBroker(c, "backup", backupCfg, workload)
	if err != nil {
		return nil, err
	}
	c.primary.peer = c.backup

	for _, t := range workload.Topics {
		c.subs[t.ID] = &topicSub{topic: t, seen: make(map[uint64]bool)}
	}
	c.buildPublishers(workload)
	c.workload = workload
	c.factor = factor
	c.cloud = cloud
	return c, nil
}

// start arms the crash event; traffic events were armed by build.
func (c *cluster) start() {
	if c.crashTime > 0 {
		c.eng.At(c.crashTime, c.injectCrash)
	}
}

// buildPublishers groups topics into proxies as in §VI: categories 0 and 1
// in proxies of ten topics, categories 2–4 in proxies of fifty, category 5
// one topic per publisher; each proxy sends one message per topic per
// period, in a batch.
func (c *cluster) buildPublishers(w *spec.Workload) {
	groups := make(map[int][]spec.Topic) // key: category
	for _, t := range w.Topics {
		groups[t.Category] = append(groups[t.Category], t)
	}
	emit := func(topics []spec.Topic, size int) {
		for len(topics) > 0 {
			n := size
			if n > len(topics) {
				n = len(topics)
			}
			c.addPublisher(topics[:n])
			topics = topics[n:]
		}
	}
	emit(append(groups[0], groups[1]...), spec.TopicsPerFastProxy)
	var mid []spec.Topic
	mid = append(mid, groups[2]...)
	mid = append(mid, groups[3]...)
	mid = append(mid, groups[4]...)
	emit(mid, spec.TopicsPerSensorProxy)
	emit(groups[5], 1)
}

func (c *cluster) addPublisher(topics []spec.Topic) {
	own := append([]spec.Topic(nil), topics...)
	p := &simPublisher{
		c:      c,
		topics: own,
		period: own[0].Period,
		seqs:   make([]uint64, len(own)),
	}
	for i, t := range own {
		if t.Retention > 0 {
			if p.retained == nil {
				p.retained = make([]*ringbuf.Ring[wire.Message], len(own))
			}
			p.retained[i] = ringbuf.New[wire.Message](t.Retention)
		}
		if t.Period != p.period {
			panic(fmt.Sprintf("simcluster: proxy mixes periods %v and %v", p.period, t.Period))
		}
		_ = i
	}
	c.pubs = append(c.pubs, p)
	phase := time.Duration(c.rng.Int63n(int64(p.period)))
	c.eng.At(phase, p.tick)
}

// injectCrash is the §VI-A fault injection (SIGKILL of the Primary): the
// Primary stops instantly; the Backup promotes after its detection delay;
// each publisher fails over x after the crash and re-sends its retained
// messages to the Backup.
func (c *cluster) injectCrash() {
	c.primary.crashed = true
	c.eng.After(c.opts.BackupDetect, c.backup.promoteNow)
	c.eng.After(c.opts.Params.Failover, func() {
		for _, p := range c.pubs {
			p.failOver()
		}
	})
}

func (c *cluster) inMeasureWindow(at time.Duration) bool {
	return at >= c.measureStart && at < c.measureEnd
}

// collect aggregates the run's outcome.
func (c *cluster) collect() *Result {
	w, factor := c.workload, c.factor
	res := &Result{
		Variant:      c.opts.Variant,
		TotalTopics:  c.opts.Workload.TotalTopics,
		Measure:      c.opts.Measure,
		Crashed:      c.crashTime > 0,
		Topics:       make([]TopicResult, 0, len(w.Topics)),
		PrimaryStats: c.primary.engine.Stats(),
		BackupStats:  c.backup.engine.Stats(),
		Series:       make(map[spec.TopicID][]SeriesPoint, len(c.tracked)),
		SpeedFactor:  factor,
	}
	window := c.opts.Measure
	res.Util = Utilization{
		PrimaryDelivery: c.primary.deliveryUtil.Percent(window),
		PrimaryProxy:    c.primary.proxyUtil.Percent(window),
		BackupDelivery:  c.backup.deliveryUtil.Percent(window),
		BackupProxy:     c.backup.proxyUtil.Percent(window),
	}
	// Per-topic outcomes need each topic's created-seq range in the window.
	ranges := make(map[spec.TopicID][2]uint64, len(w.Topics))
	for _, p := range c.pubs {
		for i, t := range p.topics {
			ranges[t.ID] = [2]uint64{p.firstMeasured[i], p.lastMeasured[i]}
		}
	}
	for _, t := range w.Topics {
		sub := c.subs[t.ID]
		rg := ranges[t.ID]
		tr := TopicResult{Topic: t, Duplicates: sub.dups}
		if rg[0] > 0 {
			maxRun, run := 0, 0
			for s := rg[0]; s <= rg[1]; s++ {
				tr.Created++
				if sub.seen[s] {
					tr.Delivered++
					run = 0
					continue
				}
				run++
				if run > maxRun {
					maxRun = run
				}
			}
			tr.MaxConsecutiveLoss = maxRun
			tr.Lost = tr.Created - tr.Delivered
			tr.DeadlineMet = sub.met
		}
		res.Topics = append(res.Topics, tr)
		if c.tracked[t.ID] {
			res.Series[t.ID] = sub.series
		}
	}
	return res
}

// simPublisher is one proxy batching messages for its topics.
type simPublisher struct {
	c        *cluster
	topics   []spec.Topic
	period   time.Duration
	seqs     []uint64
	retained []*ringbuf.Ring[wire.Message]

	failedOver    bool
	firstMeasured []uint64
	lastMeasured  []uint64
}

// tick creates one message per owned topic and sends the batch.
func (p *simPublisher) tick() {
	now := p.c.eng.Now()
	if now >= p.c.measureEnd {
		return // creation stops at the end of the measurement window
	}
	if p.firstMeasured == nil {
		p.firstMeasured = make([]uint64, len(p.topics))
		p.lastMeasured = make([]uint64, len(p.topics))
	}
	inWindow := p.c.inMeasureWindow(now)
	for i, t := range p.topics {
		p.seqs[i]++
		seq := p.seqs[i]
		m := wire.Message{Topic: t.ID, Seq: seq, Created: now}
		if p.retained != nil && p.retained[i] != nil {
			p.retained[i].Push(m)
		}
		if inWindow {
			if p.firstMeasured[i] == 0 {
				p.firstMeasured[i] = seq
			}
			p.lastMeasured[i] = seq
		}
		p.send(m)
	}
	p.c.eng.After(p.period, p.tick)
}

// send routes one message to the broker the publisher currently trusts.
func (p *simPublisher) send(m wire.Message) {
	target := p.c.primary
	if p.failedOver {
		target = p.c.backup
	}
	delay := p.c.pubLink.Latency(p.c.eng.Now())
	p.c.eng.After(delay, func() {
		target.submitTask(proxyTask{kind: taskPublish, msg: m})
	})
}

// failOver redirects to the Backup and re-sends all retained messages
// (§III-B: "During fault recovery, a publisher will send all Ni retained
// messages to its Backup").
func (p *simPublisher) failOver() {
	if p.failedOver {
		return
	}
	p.failedOver = true
	if p.retained == nil {
		return
	}
	now := p.c.eng.Now()
	for i := range p.topics {
		ring := p.retained[i]
		if ring == nil {
			continue
		}
		ring.Do(func(_ uint64, m wire.Message) {
			delay := p.c.pubLink.Latency(now)
			p.c.eng.After(delay, func() {
				p.c.backup.submitTask(proxyTask{kind: taskPublish, msg: m})
			})
		})
	}
}

// topicSub is the subscriber-side record for one topic.
type topicSub struct {
	topic  spec.Topic
	seen   map[uint64]bool
	met    uint64
	dups   uint64
	series []SeriesPoint
}

// deliver records one dispatch arrival at the subscriber.
func (s *topicSub) deliver(c *cluster, m wire.Message, now time.Duration) {
	if s.seen[m.Seq] {
		s.dups++
		return
	}
	s.seen[m.Seq] = true
	latency := now - m.Created
	if c.inMeasureWindow(m.Created) && latency <= s.topic.Deadline {
		s.met++
	}
	if c.tracked[s.topic.ID] {
		s.series = append(s.series, SeriesPoint{
			Seq:       m.Seq,
			Created:   m.Created,
			Latency:   latency,
			Recovered: c.crashTime > 0 && now >= c.crashTime,
		})
	}
}

// taskKind labels Message Proxy work items.
type taskKind int

const (
	taskPublish taskKind = iota + 1
	taskReplica
	taskPrune
)

// proxyTask is one arrival to be absorbed by a broker's Message Proxy.
type proxyTask struct {
	kind           taskKind
	msg            wire.Message
	arrivedPrimary time.Duration // for replicas
	topic          spec.TopicID  // for prunes
	seq            uint64        // for prunes
}

// simBroker is one broker host: a core.Engine plus modeled Proxy and
// Delivery modules.
type simBroker struct {
	c      *cluster
	name   string
	engine *core.Engine
	peer   *simBroker // Primary→Backup; nil on the Backup

	crashed   bool
	isPrimary bool

	// Message Proxy module (ProxyCores servers over a FIFO).
	proxyQueue []proxyTask
	proxyHead  int
	proxyBusy  int
	proxyUtil  *metrics.Utilization

	// Message Delivery module (DeliveryCores servers over the job queue).
	deliveryBusy int
	deliveryUtil *metrics.Utilization
}

func newSimBroker(c *cluster, name string, cfg core.Config, w *spec.Workload) (*simBroker, error) {
	engine, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, t := range w.Topics {
		if err := engine.AddTopic(t); err != nil {
			return nil, fmt.Errorf("simcluster: %s: %w", name, err)
		}
	}
	return &simBroker{
		c:            c,
		name:         name,
		engine:       engine,
		isPrimary:    name == "primary",
		proxyUtil:    metrics.NewUtilization(c.cost.ProxyCores),
		deliveryUtil: metrics.NewUtilization(c.cost.DeliveryCores),
	}, nil
}

// submitTask is the Message Proxy intake: FIFO over ProxyCores servers.
func (b *simBroker) submitTask(t proxyTask) {
	if b.crashed {
		return
	}
	b.proxyQueue = append(b.proxyQueue, t)
	b.proxyKick()
}

func (b *simBroker) proxyKick() {
	for b.proxyBusy < b.c.cost.ProxyCores && b.proxyHead < len(b.proxyQueue) {
		task := b.proxyQueue[b.proxyHead]
		b.proxyQueue[b.proxyHead] = proxyTask{}
		b.proxyHead++
		if b.proxyHead == len(b.proxyQueue) {
			b.proxyQueue = b.proxyQueue[:0]
			b.proxyHead = 0
		}
		b.proxyBusy++
		cost := b.proxyCost(task)
		b.c.eng.After(cost, func() { b.proxyComplete(task, cost) })
	}
}

func (b *simBroker) proxyCost(t proxyTask) time.Duration {
	switch t.kind {
	case taskPublish:
		jobs := 1
		if b.engine.WillReplicate(t.msg.Topic) {
			jobs = 2
		}
		return b.c.cost.ProxyPublish + time.Duration(jobs)*b.c.cost.ProxyPerJob
	case taskReplica:
		return b.c.cost.ReplicaStore
	case taskPrune:
		return b.c.cost.PruneApply
	default:
		panic(fmt.Sprintf("simcluster: unknown task kind %d", int(t.kind)))
	}
}

func (b *simBroker) proxyComplete(t proxyTask, cost time.Duration) {
	if b.crashed {
		return
	}
	b.proxyBusy--
	if b.c.inMeasureWindow(b.c.eng.Now()) {
		b.proxyUtil.AddBusy(cost)
	}
	switch t.kind {
	case taskPublish:
		// Ignore errors: unknown topics cannot occur (same workload).
		_ = b.engine.OnPublish(t.msg, b.c.eng.Now())
		b.deliveryKick()
	case taskReplica:
		_ = b.engine.OnReplica(t.msg, t.arrivedPrimary)
	case taskPrune:
		b.engine.OnPrune(t.topic, t.seq)
	}
	b.proxyKick()
}

// deliveryKick pulls work while servers are free (Message Delivery module).
func (b *simBroker) deliveryKick() {
	if b.crashed {
		return
	}
	if !b.isPrimary {
		return // a Backup's delivery module idles until promotion
	}
	for b.deliveryBusy < b.c.cost.DeliveryCores {
		w, ok := b.engine.NextWork()
		if !ok {
			return
		}
		cost := b.deliveryCost(w)
		b.deliveryBusy++
		b.c.eng.After(cost, func() { b.deliveryComplete(w, cost) })
	}
}

func (b *simBroker) deliveryCost(w core.Work) time.Duration {
	switch w.Kind {
	case core.WorkDispatch:
		cost := b.c.cost.Dispatch
		// Dispatch-side coordination (cancel + prune request) applies when
		// the topic replicates and coordination is on.
		if b.engine.Config().Coordination && b.engine.WillReplicate(w.Msg.Topic) {
			cost += b.c.cost.Coordinate
		}
		return cost
	case core.WorkReplicate:
		return b.c.cost.Replicate
	default:
		panic(fmt.Sprintf("simcluster: unexpected work kind %d", int(w.Kind)))
	}
}

func (b *simBroker) deliveryComplete(w core.Work, cost time.Duration) {
	if b.crashed {
		return
	}
	b.deliveryBusy--
	now := b.c.eng.Now()
	if b.c.inMeasureWindow(now) {
		b.deliveryUtil.AddBusy(cost)
	}
	switch w.Kind {
	case core.WorkDispatch:
		sub := b.c.subs[w.Msg.Topic]
		var link netsim.Model = b.c.edgeLink
		cloudBound := sub.topic.Destination == spec.DestCloud
		if cloudBound {
			link = b.c.cloudLink
		}
		m := w.Msg
		cc := b.c
		b.c.eng.After(link.Latency(now), func() {
			if cloudBound && cc.cloud != nil {
				cc.cloud.submit(func(at time.Duration) { sub.deliver(cc, m, at) })
				return
			}
			sub.deliver(cc, m, cc.eng.Now())
		})
		co := b.engine.OnDispatched(w.Job)
		if co.SendPrune && b.peer != nil && !b.peer.crashed {
			peer := b.peer
			b.c.eng.After(b.c.brokerLink.Latency(now), func() {
				peer.submitTask(proxyTask{kind: taskPrune, topic: co.Topic, seq: co.Seq})
			})
		}
	case core.WorkReplicate:
		if b.peer != nil && !b.peer.crashed {
			b.engine.OnReplicated(w.Job)
			peer := b.peer
			m := w.Msg
			ap := w.ArrivedPrimary
			b.c.eng.After(b.c.brokerLink.Latency(now), func() {
				peer.submitTask(proxyTask{kind: taskReplica, msg: m, arrivedPrimary: ap})
			})
		}
	}
	b.deliveryKick()
}

// promoteNow is the Backup's §IV-A recovery entry point.
func (b *simBroker) promoteNow() {
	if b.crashed || b.isPrimary {
		return
	}
	b.isPrimary = true
	b.engine.Promote()
	b.deliveryKick()
}
