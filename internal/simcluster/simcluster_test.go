package simcluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/timing"
)

// quickOpts returns fast-running options over the smallest paper workload.
func quickOpts(t *testing.T, variant Variant) Options {
	t.Helper()
	w, err := spec.NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Workload: w,
		Variant:  variant,
		Seed:     1,
		Warmup:   300 * time.Millisecond,
		Measure:  1500 * time.Millisecond,
		Drain:    time.Second,
	}
}

func aggregate(res *Result) (lossOK float64, latOK float64) {
	var okTopics, topics int
	var met, created uint64
	for _, tr := range res.Topics {
		met += tr.DeadlineMet
		created += tr.Created
		if tr.Topic.BestEffort() {
			continue
		}
		topics++
		if tr.MeetsLossTolerance() {
			okTopics++
		}
	}
	return float64(okTopics) / float64(topics), float64(met) / float64(created)
}

func TestFaultFreeRunAllVariantsHealthyAt1525(t *testing.T) {
	// §VI: "100% success rate for all with 1525 topics."
	for _, v := range Variants {
		res, err := Run(quickOpts(t, v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		lossOK, latOK := aggregate(res)
		if lossOK != 1 {
			t.Errorf("%v: loss-tolerance success = %v, want 1 (fault-free)", v, lossOK)
		}
		if latOK < 0.999 {
			t.Errorf("%v: latency success = %v, want ≈ 1", v, latOK)
		}
		if res.Util.PrimaryDelivery <= 0 || res.Util.PrimaryDelivery >= 100 {
			t.Errorf("%v: delivery util = %v", v, res.Util.PrimaryDelivery)
		}
		if res.Crashed {
			t.Errorf("%v: fault-free run marked crashed", v)
		}
	}
}

func TestCrashRunFRAMEMeetsAllLossTolerance(t *testing.T) {
	// The Lemma 1 deadline assignment plus retention re-send must cover a
	// crash at low load: no topic may exceed its Li.
	opts := quickOpts(t, VariantFRAME)
	opts.CrashAt = 700 * time.Millisecond
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatal("crash not recorded")
	}
	for _, tr := range res.Topics {
		if tr.Topic.BestEffort() {
			continue
		}
		if !tr.MeetsLossTolerance() {
			t.Errorf("topic %d (cat %d, Li=%d): max consecutive loss %d",
				tr.Topic.ID, tr.Topic.Category, tr.Topic.LossTolerance, tr.MaxConsecutiveLoss)
		}
	}
	// The backup took over: its engine dispatched and some publishers
	// re-sent retained messages.
	if res.BackupStats.Published == 0 {
		t.Error("backup received no publishes after failover")
	}
}

// TestLemma1HoldsAcrossCrashTimes sweeps the crash instant across a period
// boundary: the loss-tolerance contract must hold regardless of crash
// phase (the worst case in Lemma 1's proof is crash just before a batch).
func TestLemma1HoldsAcrossCrashTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow")
	}
	for _, crashOffset := range []time.Duration{
		600 * time.Millisecond,
		625 * time.Millisecond,
		649 * time.Millisecond,
		651 * time.Millisecond,
		675 * time.Millisecond,
		699 * time.Millisecond,
	} {
		opts := quickOpts(t, VariantFRAME)
		opts.Seed = int64(crashOffset)
		opts.CrashAt = crashOffset
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range res.Topics {
			if tr.Topic.BestEffort() {
				continue
			}
			if !tr.MeetsLossTolerance() {
				t.Errorf("crash@%v topic %d (cat %d): loss run %d > Li %d",
					crashOffset, tr.Topic.ID, tr.Topic.Category,
					tr.MaxConsecutiveLoss, tr.Topic.LossTolerance)
			}
		}
	}
}

func TestOverloadBreaksLossToleranceForFCFS(t *testing.T) {
	// Inflate costs so even 1525 topics saturate FCFS's delivery module:
	// replication lags and a crash exposes losses beyond Li (the 7525-topic
	// paper collapse, scaled down to keep the test fast).
	opts := quickOpts(t, VariantFCFS)
	cost := DefaultCostModel()
	cost.Dispatch = 60 * time.Microsecond
	cost.Replicate = 60 * time.Microsecond
	cost.Coordinate = 60 * time.Microsecond
	opts.Cost = cost
	opts.Measure = 2 * time.Second
	opts.CrashAt = 1500 * time.Millisecond
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	lossOK, latOK := aggregate(res)
	if lossOK > 0.3 {
		t.Errorf("overloaded FCFS loss-tolerance success = %v, want collapse", lossOK)
	}
	if latOK > 0.9 {
		t.Errorf("overloaded FCFS latency success = %v, want degradation", latOK)
	}
	// FRAME under the same inflated cost still meets loss tolerance: its
	// selective replication keeps the delivery module under capacity.
	opts.Variant = VariantFRAME
	res, err = Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	lossOK, _ = aggregate(res)
	if lossOK < 0.99 {
		t.Errorf("FRAME under same costs: loss-tolerance success = %v, want ≈ 1", lossOK)
	}
}

func TestDeliveryDemandMatchesSimulatedUtilization(t *testing.T) {
	w, err := spec.NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Variants {
		demand := DefaultCostModel().DeliveryDemand(w, v, timing.PaperParams())
		res, err := Run(quickOpts(t, v))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Util.PrimaryDelivery / 100
		if math.Abs(got-demand) > 0.02+0.05*demand {
			t.Errorf("%v: simulated util %.4f vs predicted demand %.4f", v, got, demand)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func() *Result {
		opts := quickOpts(t, VariantFRAME)
		opts.CrashAt = 700 * time.Millisecond
		opts.SpeedNoise = 0.07
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.SpeedFactor != b.SpeedFactor {
		t.Fatalf("speed factors differ: %v vs %v", a.SpeedFactor, b.SpeedFactor)
	}
	if len(a.Topics) != len(b.Topics) {
		t.Fatalf("topic counts differ")
	}
	for i := range a.Topics {
		if a.Topics[i] != b.Topics[i] {
			t.Fatalf("topic %d results differ:\n%+v\n%+v", i, a.Topics[i], b.Topics[i])
		}
	}
	if a.Util != b.Util {
		t.Errorf("utilizations differ: %+v vs %+v", a.Util, b.Util)
	}
}

func TestTrackedTopicSeries(t *testing.T) {
	opts := quickOpts(t, VariantFRAME)
	opts.TrackTopics = []spec.TopicID{0, 20} // a cat-0 and a cat-2 topic
	opts.CrashAt = 700 * time.Millisecond
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range opts.TrackTopics {
		series := res.Series[id]
		if len(series) == 0 {
			t.Fatalf("topic %d: empty series", id)
		}
		var sawRecovered bool
		for i, pt := range series {
			if pt.Latency < 0 {
				t.Errorf("topic %d point %d: negative latency %v", id, i, pt.Latency)
			}
			if i > 0 && pt.Seq <= series[i-1].Seq {
				t.Errorf("topic %d: series seq not increasing at %d", id, i)
			}
			if pt.Recovered {
				sawRecovered = true
			}
		}
		if !sawRecovered {
			t.Errorf("topic %d: no post-crash deliveries in series", id)
		}
	}
	if len(res.Series) != len(opts.TrackTopics) {
		t.Errorf("series map has %d entries, want %d", len(res.Series), len(opts.TrackTopics))
	}
}

func TestRunValidation(t *testing.T) {
	w, err := spec.NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Options{Variant: VariantFRAME}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Run(Options{Workload: w, Variant: VariantFRAME, SpeedNoise: 1.5}); err == nil {
		t.Error("speed noise ≥ 1 accepted")
	}
	if _, err := Run(Options{Workload: w, Variant: VariantFRAME, Measure: time.Second, CrashAt: 2 * time.Second}); err == nil {
		t.Error("crash beyond window accepted")
	}
	bad := DefaultCostModel()
	bad.Dispatch = 0
	if _, err := Run(Options{Workload: w, Variant: VariantFRAME, Cost: bad}); err == nil {
		t.Error("zero dispatch cost accepted")
	}
}

func TestVariantHelpers(t *testing.T) {
	if VariantFRAME.String() != "FRAME" || VariantFRAMEPlus.String() != "FRAME+" ||
		VariantFCFS.String() != "FCFS" || VariantFCFSMinus.String() != "FCFS-" {
		t.Error("variant labels wrong")
	}
	if Variant(9).String() != "Variant(9)" {
		t.Error("unknown variant label wrong")
	}
	w, err := spec.NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	plus := VariantFRAMEPlus.PrepareWorkload(w)
	if plus == w {
		t.Error("FRAME+ did not copy the workload")
	}
	if same := VariantFRAME.PrepareWorkload(w); same != w {
		t.Error("FRAME rewrote the workload")
	}
	cfgPlus := VariantFRAMEPlus.EngineConfig(timing.PaperParams())
	cfgFrame := VariantFRAME.EngineConfig(timing.PaperParams())
	if cfgPlus != cfgFrame {
		t.Error("FRAME+ engine config differs from FRAME")
	}
}

func TestReplicationSuppressionDiffersByVariant(t *testing.T) {
	opts := quickOpts(t, VariantFRAMEPlus)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrimaryStats.ReplicationJobs != 0 {
		t.Errorf("FRAME+ generated %d replication jobs, want 0", res.PrimaryStats.ReplicationJobs)
	}
	opts = quickOpts(t, VariantFRAME)
	res, err = Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrimaryStats.ReplicationJobs == 0 {
		t.Error("FRAME generated no replication jobs (categories 2 and 5 must replicate)")
	}
	opts = quickOpts(t, VariantFCFS)
	resF, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if resF.PrimaryStats.ReplicationJobs <= res.PrimaryStats.ReplicationJobs {
		t.Error("FCFS should replicate strictly more than FRAME")
	}
}

func TestCoordinationPrunesBackupBuffer(t *testing.T) {
	// Under FRAME, dispatched messages prune their replicas: at the end of
	// a fault-free run the backup holds (almost) no live copies.
	opts := quickOpts(t, VariantFRAME)
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BackupStats.ReplicasStored == 0 {
		t.Fatal("no replicas stored")
	}
	applied := float64(res.BackupStats.PrunesApplied)
	stored := float64(res.BackupStats.ReplicasStored)
	if applied < 0.95*stored {
		t.Errorf("prunes applied %v of %v replicas; want ≥ 95%%", applied, stored)
	}
	// FCFS− never prunes.
	opts = quickOpts(t, VariantFCFSMinus)
	res, err = Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.BackupStats.PrunesApplied != 0 {
		t.Errorf("FCFS− applied %d prunes, want 0", res.BackupStats.PrunesApplied)
	}
}

// TestRecoveryLatencyPenaltyShape reproduces Fig. 9's FCFS− vs FRAME
// contrast in miniature: without coordination the Backup drains a full
// Backup Buffer at promotion, so the peak post-crash latency far exceeds
// FRAME's.
func TestRecoveryLatencyPenaltyShape(t *testing.T) {
	peak := func(v Variant) time.Duration {
		opts := quickOpts(t, v)
		opts.CrashAt = 700 * time.Millisecond
		opts.TrackTopics = []spec.TopicID{20} // a category-2 topic
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		var max time.Duration
		for _, pt := range res.Series[20] {
			if pt.Recovered && pt.Latency > max {
				max = pt.Latency
			}
		}
		return max
	}
	frame := peak(VariantFRAME)
	minus := peak(VariantFCFSMinus)
	if minus <= frame {
		t.Errorf("FCFS− recovery peak %v not above FRAME's %v", minus, frame)
	}
	if minus < 35*time.Millisecond {
		t.Errorf("FCFS− recovery peak %v implausibly low (full buffer drain expected)", minus)
	}
}

func BenchmarkSimRun1525FRAME(b *testing.B) {
	w, err := spec.NewWorkload(1525)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := Run(Options{
			Workload: w, Variant: VariantFRAME, Seed: int64(i),
			Warmup: 200 * time.Millisecond, Measure: time.Second, Drain: 500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
