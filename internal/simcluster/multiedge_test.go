package simcluster

import (
	"testing"
	"time"

	"repro/internal/spec"
)

func multiOpts(t *testing.T, edges int) MultiOptions {
	t.Helper()
	w, err := spec.NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	return MultiOptions{
		Edges: edges,
		PerEdge: Options{
			Workload: w,
			Variant:  VariantFRAME,
			Seed:     3,
			Warmup:   300 * time.Millisecond,
			Measure:  1500 * time.Millisecond,
			Drain:    time.Second,
		},
	}
}

func TestMultiEdgeValidation(t *testing.T) {
	if _, err := RunMultiEdge(MultiOptions{Edges: 0}); err == nil {
		t.Error("zero edges accepted")
	}
	bad := multiOpts(t, 2)
	bad.CrashEdge = 5
	if _, err := RunMultiEdge(bad); err == nil {
		t.Error("out-of-range crash edge accepted")
	}
	bad = multiOpts(t, 1)
	bad.CloudCost = -time.Second
	if _, err := RunMultiEdge(bad); err == nil {
		t.Error("negative cloud cost accepted")
	}
	bad = multiOpts(t, 1)
	bad.PerEdge.Workload = nil
	if _, err := RunMultiEdge(bad); err == nil {
		t.Error("nil per-edge workload accepted")
	}
}

func TestMultiEdgeSharedCloudScalesWithEdges(t *testing.T) {
	utilAt := func(edges int) (*MultiResult, float64) {
		res, err := RunMultiEdge(multiOpts(t, edges))
		if err != nil {
			t.Fatal(err)
		}
		return res, res.CloudUtilization
	}
	one, u1 := utilAt(1)
	three, u3 := utilAt(3)
	if len(one.EdgeResults) != 1 || len(three.EdgeResults) != 3 {
		t.Fatalf("edge result counts: %d, %d", len(one.EdgeResults), len(three.EdgeResults))
	}
	if u1 <= 0 {
		t.Fatalf("single-edge cloud utilization %v", u1)
	}
	// Cloud load grows roughly linearly with the number of edges.
	if u3 < 2.4*u1 || u3 > 3.6*u1 {
		t.Errorf("cloud util at 3 edges = %.3f%%, want ≈3× single-edge %.3f%%", u3, u1)
	}
	if three.CloudMessages <= one.CloudMessages*2 {
		t.Errorf("cloud messages: 1 edge %d, 3 edges %d", one.CloudMessages, three.CloudMessages)
	}
	// Every edge individually meets its contracts at this light load.
	for e, res := range three.EdgeResults {
		for _, tr := range res.Topics {
			if tr.Topic.BestEffort() {
				continue
			}
			if !tr.MeetsLossTolerance() {
				t.Errorf("edge %d topic %d violates loss tolerance", e, tr.Topic.ID)
			}
		}
	}
}

func TestMultiEdgeCrashIsolation(t *testing.T) {
	opts := multiOpts(t, 2)
	opts.PerEdge.CrashAt = 700 * time.Millisecond
	opts.CrashEdge = 0
	res, err := RunMultiEdge(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.EdgeResults[0].Crashed {
		t.Error("crash edge not marked crashed")
	}
	if res.EdgeResults[1].Crashed {
		t.Error("healthy edge marked crashed")
	}
	// The crashed edge recovered (its backup dispatched), and the healthy
	// edge is completely unaffected: zero losses, no recovery activity.
	if res.EdgeResults[0].BackupStats.Published == 0 {
		t.Error("crashed edge: no failover traffic reached its backup")
	}
	healthy := res.EdgeResults[1]
	if healthy.BackupStats.RecoveryJobs != 0 {
		t.Error("healthy edge ran recovery")
	}
	for _, tr := range healthy.Topics {
		if tr.Lost != 0 {
			t.Errorf("healthy edge topic %d lost %d messages", tr.Topic.ID, tr.Lost)
		}
	}
	// Both edges still meet loss tolerance (the crash edge via recovery).
	for e, er := range res.EdgeResults {
		for _, tr := range er.Topics {
			if tr.Topic.BestEffort() {
				continue
			}
			if !tr.MeetsLossTolerance() {
				t.Errorf("edge %d topic %d: loss run %d > Li %d",
					e, tr.Topic.ID, tr.MaxConsecutiveLoss, tr.Topic.LossTolerance)
			}
		}
	}
}

func TestMultiEdgeCloudSaturationDelaysOnlyCloudTraffic(t *testing.T) {
	// Make the cloud host a severe bottleneck: per-edge cloud rate is
	// 10 msg/s (5 topics × 2/s), so 4 edges × 10/s × 30ms ≈ 120% of one
	// core.
	opts := multiOpts(t, 4)
	opts.CloudCores = 1
	opts.CloudCost = 30 * time.Millisecond
	res, err := RunMultiEdge(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CloudUtilization < 95 {
		t.Fatalf("cloud not saturated: %.1f%%", res.CloudUtilization)
	}
	if res.CloudQueueP99 < 50*time.Millisecond {
		t.Errorf("cloud P99 queueing %v too small for a saturated host", res.CloudQueueP99)
	}
	// Edge-bound categories still meet their deadlines: the shared-cloud
	// bottleneck must not leak into edge latency.
	for e, er := range res.EdgeResults {
		for _, tr := range er.Topics {
			if tr.Topic.Destination == spec.DestCloud {
				continue
			}
			if rate := tr.LatencySuccessRate(); rate < 0.999 {
				t.Errorf("edge %d topic %d (edge-bound): latency success %.4f", e, tr.Topic.ID, rate)
			}
		}
	}
}

func TestMultiEdgeSingleEdgeMatchesRunShape(t *testing.T) {
	// One edge through RunMultiEdge behaves like Run apart from the cloud
	// host's added (tiny) ingest delay: same loss outcomes.
	multi, err := RunMultiEdge(multiOpts(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(multiOpts(t, 1).PerEdge)
	if err != nil {
		t.Fatal(err)
	}
	m, s := multi.EdgeResults[0], single
	if len(m.Topics) != len(s.Topics) {
		t.Fatalf("topic counts differ: %d vs %d", len(m.Topics), len(s.Topics))
	}
	for i := range m.Topics {
		if m.Topics[i].Lost != s.Topics[i].Lost {
			t.Errorf("topic %d: lost %d (multi) vs %d (single)",
				i, m.Topics[i].Lost, s.Topics[i].Lost)
		}
	}
}
