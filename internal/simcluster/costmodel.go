// Package simcluster runs the FRAME evaluation (§VI) as a deterministic
// discrete-event simulation: publishers, Primary and Backup brokers with
// their Message Proxy and Message Delivery modules, edge and cloud
// subscribers, crash injection, publisher fail-over with retained-message
// re-send, and per-module CPU accounting. The broker logic is the real
// core.Engine — the same state machine the TCP runtime drives — so the
// simulation exercises the contribution's actual code, substituting only
// the test-bed (hosts, network, wall clock) per DESIGN.md §3.
package simcluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/timing"
)

// CostModel assigns CPU service times to each unit of broker work. The
// values are calibrated so that, with the paper's core assignment (two
// delivery cores and one proxy core per broker host, §VI-A), the modeled
// utilization reproduces the paper's crossovers:
//
//   - FCFS (replicate everything + coordinate everything) saturates its
//     delivery cores between 4525 and 7525 topics — the paper's collapse
//     point (Tables 4–5);
//   - FCFS− (no coordination) stays just under saturation even at 13525;
//   - FRAME (selective replication: only categories 2 and 5) crosses
//     saturation only at 13525, where the paper reports degraded rates
//     with wide confidence intervals;
//   - FRAME+ (no replication at all) stays far below saturation throughout.
//
// With R(N) ≈ 10·(N−25) + 410 messages/s for an N-topic workload and
// replicated-message rate Rr(N) ≈ R(N)/3, delivery-core demand is
//
//	FCFS:   (Dispatch + Replicate + Coordinate)·R(N)
//	FCFS−:  (Dispatch + Replicate)·R(N)
//	FRAME:  Dispatch·R(N) + (Replicate + Coordinate)·Rr(N)
//	FRAME+: Dispatch·R(N)
//
// against a 2-core budget of 2 s of CPU per second.
type CostModel struct {
	// Dispatch is the CPU cost of executing one dispatch job (fetch entry,
	// marshal, push to subscriber links).
	Dispatch time.Duration
	// Replicate is the CPU cost of executing one replication job.
	Replicate time.Duration
	// Coordinate is the CPU cost of the Table 3 dispatch-side coordination
	// (cancel bookkeeping plus the prune request to the Backup). It is paid
	// by a dispatch job whose topic replicates, when coordination is on.
	Coordinate time.Duration
	// ProxyPublish is the Message Proxy cost to accept one arrival (copy
	// into the Message Buffer).
	ProxyPublish time.Duration
	// ProxyPerJob is the Job Generator cost per job created (deadline
	// computation plus queue insertion).
	ProxyPerJob time.Duration
	// ReplicaStore is the Backup proxy cost to store one replica.
	ReplicaStore time.Duration
	// PruneApply is the Backup proxy cost to apply one Discard request.
	PruneApply time.Duration

	// DeliveryCores and ProxyCores mirror the paper's per-host core
	// dedication (§VI-A).
	DeliveryCores int
	ProxyCores    int
}

// DefaultCostModel returns the calibrated model documented above.
func DefaultCostModel() CostModel {
	return CostModel{
		Dispatch:      7 * time.Microsecond,
		Replicate:     7 * time.Microsecond,
		Coordinate:    16 * time.Microsecond,
		ProxyPublish:  1 * time.Microsecond,
		ProxyPerJob:   2 * time.Microsecond,
		ReplicaStore:  3 * time.Microsecond,
		PruneApply:    2 * time.Microsecond,
		DeliveryCores: 2,
		ProxyCores:    1,
	}
}

// Validate rejects non-positive service times or core counts.
func (c CostModel) Validate() error {
	for _, f := range []struct {
		name string
		d    time.Duration
	}{
		{"Dispatch", c.Dispatch}, {"Replicate", c.Replicate},
		{"Coordinate", c.Coordinate}, {"ProxyPublish", c.ProxyPublish},
		{"ProxyPerJob", c.ProxyPerJob}, {"ReplicaStore", c.ReplicaStore},
		{"PruneApply", c.PruneApply},
	} {
		if f.d <= 0 {
			return fmt.Errorf("simcluster: cost %s = %v must be positive", f.name, f.d)
		}
	}
	if c.DeliveryCores <= 0 || c.ProxyCores <= 0 {
		return fmt.Errorf("simcluster: cores must be positive")
	}
	return nil
}

// scale multiplies every service time by factor (per-run host speed noise).
func (c CostModel) scale(factor float64) CostModel {
	mul := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * factor)
	}
	out := c
	out.Dispatch = mul(c.Dispatch)
	out.Replicate = mul(c.Replicate)
	out.Coordinate = mul(c.Coordinate)
	out.ProxyPublish = mul(c.ProxyPublish)
	out.ProxyPerJob = mul(c.ProxyPerJob)
	out.ReplicaStore = mul(c.ReplicaStore)
	out.PruneApply = mul(c.PruneApply)
	return out
}

// DeliveryDemand predicts the delivery-module utilization fraction for a
// workload under a variant (the closed-form documented on CostModel).
// Useful for admission-style what-if analysis and tested against the
// simulated utilization.
func (c CostModel) DeliveryDemand(w *spec.Workload, v Variant, p timing.Params) float64 {
	cfg := v.EngineConfig(p)
	load := v.PrepareWorkload(w)
	var busyPerSec float64
	for _, t := range load.Topics {
		rate := float64(time.Second) / float64(t.Period)
		busyPerSec += rate * float64(c.Dispatch)
		replicates := replicationVerdict(t, cfg)
		if replicates {
			busyPerSec += rate * float64(c.Replicate)
			if cfg.Coordination {
				busyPerSec += rate * float64(c.Coordinate)
			}
		}
	}
	return busyPerSec / (float64(time.Second) * float64(c.DeliveryCores))
}

// replicationVerdict mirrors the engine's config-time decision without
// building an engine.
func replicationVerdict(t spec.Topic, cfg core.Config) bool {
	if !cfg.HasBackup {
		return false
	}
	if t.BestEffort() {
		return !cfg.SelectiveReplication
	}
	if !cfg.SelectiveReplication {
		return true
	}
	return timing.NeedsReplication(t, cfg.Params)
}

// Variant names one of the four evaluated configurations (§VI-A).
type Variant int

// Evaluation configurations.
const (
	VariantFRAME Variant = iota + 1
	VariantFRAMEPlus
	VariantFCFS
	VariantFCFSMinus
	// VariantEDFReplicateAll is FRAME without Proposition 1: EDF scheduling
	// and coordination, but every topic replicates. Used only by the
	// selective-replication ablation; it is not one of the paper's four
	// evaluated configurations and is excluded from Variants.
	VariantEDFReplicateAll
)

// Variants lists all four in the paper's column order.
var Variants = []Variant{VariantFRAMEPlus, VariantFRAME, VariantFCFS, VariantFCFSMinus}

// String returns the paper's label.
func (v Variant) String() string {
	switch v {
	case VariantFRAME:
		return "FRAME"
	case VariantFRAMEPlus:
		return "FRAME+"
	case VariantFCFS:
		return "FCFS"
	case VariantFCFSMinus:
		return "FCFS-"
	case VariantEDFReplicateAll:
		return "EDF-replicate-all"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// EngineConfig returns the broker configuration for the variant.
func (v Variant) EngineConfig(p timing.Params) core.Config {
	switch v {
	case VariantFRAME, VariantFRAMEPlus:
		return core.FRAMEConfig(p)
	case VariantFCFS:
		return core.FCFSConfig(p)
	case VariantFCFSMinus:
		return core.FCFSMinusConfig(p)
	case VariantEDFReplicateAll:
		cfg := core.FRAMEConfig(p)
		cfg.SelectiveReplication = false
		return cfg
	default:
		panic(fmt.Sprintf("simcluster: unknown variant %d", int(v)))
	}
}

// PrepareWorkload applies the variant's workload adjustment: FRAME+ raises
// Ni by one for categories 2 and 5 (§VI-A), which removes their replication
// need via Proposition 1. Other variants use the workload as-is.
func (v Variant) PrepareWorkload(w *spec.Workload) *spec.Workload {
	if v == VariantFRAMEPlus {
		return w.BoostRetention(1, 2, 5)
	}
	return w
}
