package simcluster

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// This file implements the multi-edge extension. The paper's architecture
// (Fig. 1) shows many edges sharing one private cloud, but its evaluation
// scope is "one edge and one cloud" (§I). Here, N independent edge
// deployments — each with its own Primary, Backup, publishers, and edge
// subscribers — share a single cloud ingest host with a bounded core
// budget. Cloud-bound dispatches (category 5) traverse the WAN link and
// then queue at the shared host before reaching their subscriber, so the
// experiment shows (a) how cloud-side queueing grows with the number of
// edges and (b) that an overloaded or crashed edge never disturbs its
// neighbors — the edges are isolated by construction, which is exactly the
// property the architecture promises.

// MultiOptions configures a shared-cloud, multi-edge run.
type MultiOptions struct {
	// Edges is the number of independent edge deployments (Fig. 1's
	// Edge 1..N).
	Edges int
	// PerEdge configures every edge identically (seeds are derived per
	// edge). PerEdge.CrashAt, when set, applies only to CrashEdge.
	PerEdge Options
	// CrashEdge selects which edge's Primary crashes when PerEdge.CrashAt
	// is set (default 0, the first edge).
	CrashEdge int
	// CloudCores is the shared cloud host's core budget (default 2).
	CloudCores int
	// CloudCost is the cloud-side CPU cost to ingest one message
	// (default 200µs — cloud work per message is heavier than broker
	// forwarding: deserialize, index, store).
	CloudCost time.Duration
}

func (o *MultiOptions) setDefaults() {
	if o.CloudCores == 0 {
		o.CloudCores = 2
	}
	if o.CloudCost == 0 {
		o.CloudCost = 200 * time.Microsecond
	}
}

// MultiResult is the outcome of a multi-edge run.
type MultiResult struct {
	// EdgeResults holds each edge's ordinary Result.
	EdgeResults []*Result
	// CloudUtilization is the shared host's busy fraction over the
	// measurement window, in percent.
	CloudUtilization float64
	// CloudQueueP99 is the 99th percentile queueing+service delay added by
	// the shared cloud host.
	CloudQueueP99 time.Duration
	// CloudMessages counts messages ingested by the cloud host.
	CloudMessages int
}

// RunMultiEdge runs N edges against one shared cloud host.
func RunMultiEdge(opts MultiOptions) (*MultiResult, error) {
	if opts.Edges <= 0 {
		return nil, fmt.Errorf("simcluster: edges %d must be positive", opts.Edges)
	}
	if opts.CrashEdge < 0 || opts.CrashEdge >= opts.Edges {
		return nil, fmt.Errorf("simcluster: crash edge %d outside [0,%d)", opts.CrashEdge, opts.Edges)
	}
	opts.setDefaults()
	if opts.CloudCost <= 0 || opts.CloudCores <= 0 {
		return nil, fmt.Errorf("simcluster: cloud cost and cores must be positive")
	}

	eng := sim.New()
	// Validate once up front so the window bounds are known for the host.
	probe := opts.PerEdge
	if err := probe.validate(); err != nil {
		return nil, err
	}
	host := &cloudHost{
		eng:          eng,
		cores:        opts.CloudCores,
		cost:         opts.CloudCost,
		util:         metrics.NewUtilization(opts.CloudCores),
		measureStart: probe.Warmup,
		measureEnd:   probe.Warmup + probe.Measure,
	}

	clusters := make([]*cluster, 0, opts.Edges)
	for e := 0; e < opts.Edges; e++ {
		edgeOpts := opts.PerEdge
		edgeOpts.Seed = opts.PerEdge.Seed + int64(e)*7919 // distinct streams
		if edgeOpts.CrashAt > 0 && e != opts.CrashEdge {
			edgeOpts.CrashAt = 0
		}
		c, err := build(edgeOpts, eng, host)
		if err != nil {
			return nil, fmt.Errorf("simcluster: edge %d: %w", e, err)
		}
		c.start()
		clusters = append(clusters, c)
	}

	eng.Run(probe.Warmup + probe.Measure + probe.Drain)

	out := &MultiResult{
		CloudUtilization: host.util.Percent(probe.Measure),
		CloudQueueP99:    host.delays.Percentile(0.99),
		CloudMessages:    host.delays.Count(),
	}
	for _, c := range clusters {
		out.EdgeResults = append(out.EdgeResults, c.collect())
	}
	return out, nil
}

// cloudHost is the shared multi-edge ingest service: a FIFO over a fixed
// core budget. submit hands it a delivery continuation to run once the
// message has been processed.
type cloudHost struct {
	eng   *sim.Engine
	cores int
	cost  time.Duration

	queue  []cloudItem
	head   int
	busy   int
	util   *metrics.Utilization
	delays metrics.LatencyRecorder

	measureStart, measureEnd time.Duration
}

type cloudItem struct {
	arrived time.Duration
	deliver func(at time.Duration)
}

// submit enqueues one cloud-bound message.
func (h *cloudHost) submit(deliver func(at time.Duration)) {
	h.queue = append(h.queue, cloudItem{arrived: h.eng.Now(), deliver: deliver})
	h.kick()
}

func (h *cloudHost) kick() {
	for h.busy < h.cores && h.head < len(h.queue) {
		item := h.queue[h.head]
		h.queue[h.head] = cloudItem{}
		h.head++
		if h.head == len(h.queue) {
			h.queue = h.queue[:0]
			h.head = 0
		}
		h.busy++
		h.eng.After(h.cost, func() { h.complete(item) })
	}
}

func (h *cloudHost) complete(item cloudItem) {
	h.busy--
	now := h.eng.Now()
	if now >= h.measureStart && now < h.measureEnd {
		h.util.AddBusy(h.cost)
		h.delays.Record(now - item.arrived)
	}
	item.deliver(now)
	h.kick()
}
