package simcluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/timing"
)

func TestDefaultCostModelValid(t *testing.T) {
	if err := DefaultCostModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelValidateRejections(t *testing.T) {
	fields := []func(*CostModel){
		func(c *CostModel) { c.Dispatch = 0 },
		func(c *CostModel) { c.Replicate = -time.Microsecond },
		func(c *CostModel) { c.Coordinate = 0 },
		func(c *CostModel) { c.ProxyPublish = 0 },
		func(c *CostModel) { c.ProxyPerJob = 0 },
		func(c *CostModel) { c.ReplicaStore = 0 },
		func(c *CostModel) { c.PruneApply = 0 },
		func(c *CostModel) { c.DeliveryCores = 0 },
		func(c *CostModel) { c.ProxyCores = -1 },
	}
	for i, mutate := range fields {
		c := DefaultCostModel()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestCostModelScale(t *testing.T) {
	c := DefaultCostModel()
	doubled := c.scale(2)
	if doubled.Dispatch != 2*c.Dispatch || doubled.Coordinate != 2*c.Coordinate ||
		doubled.PruneApply != 2*c.PruneApply {
		t.Errorf("scale(2) = %+v", doubled)
	}
	if doubled.DeliveryCores != c.DeliveryCores {
		t.Error("scale changed core counts")
	}
	same := c.scale(1)
	if same != c {
		t.Errorf("scale(1) changed the model: %+v", same)
	}
}

// TestDeliveryDemandCrossovers pins the calibration documented on
// CostModel: the saturation crossovers that reproduce the paper's
// collapse points.
func TestDeliveryDemandCrossovers(t *testing.T) {
	cost := DefaultCostModel()
	p := timing.PaperParams()
	demand := func(total int, v Variant) float64 {
		w, err := spec.NewWorkload(total)
		if err != nil {
			t.Fatal(err)
		}
		return cost.DeliveryDemand(w, v, p)
	}
	// FCFS saturates between 4525 and 7525 (the paper's collapse point).
	if d := demand(4525, VariantFCFS); d >= 1 {
		t.Errorf("FCFS@4525 demand %.3f, want < 1", d)
	}
	if d := demand(7525, VariantFCFS); d <= 1 {
		t.Errorf("FCFS@7525 demand %.3f, want > 1", d)
	}
	// FRAME reaches the knee only at 13525.
	if d := demand(10525, VariantFRAME); d >= 0.9 {
		t.Errorf("FRAME@10525 demand %.3f, want comfortably < 0.9", d)
	}
	if d := demand(13525, VariantFRAME); d < 0.95 || d > 1.05 {
		t.Errorf("FRAME@13525 demand %.3f, want at the knee (0.95–1.05)", d)
	}
	// FCFS− stays below saturation everywhere.
	if d := demand(13525, VariantFCFSMinus); d >= 1 {
		t.Errorf("FCFS-@13525 demand %.3f, want < 1", d)
	}
	// FRAME+ is the cheapest at every size.
	for _, total := range spec.WorkloadSizes {
		plus := demand(total, VariantFRAMEPlus)
		for _, v := range []Variant{VariantFRAME, VariantFCFS, VariantFCFSMinus} {
			if plus >= demand(total, v) {
				t.Errorf("FRAME+ demand %.3f not lowest at %d vs %v", plus, total, v)
			}
		}
	}
}

// TestDeliveryDemandMatchesHandFormula checks the closed form documented
// on CostModel against the per-topic summation.
func TestDeliveryDemandMatchesHandFormula(t *testing.T) {
	cost := DefaultCostModel()
	p := timing.PaperParams()
	for _, total := range []int{1525, 7525} {
		w, err := spec.NewWorkload(total)
		if err != nil {
			t.Fatal(err)
		}
		rate := w.MessageRate()
		// Replicated rate under FRAME: categories 2 and 5.
		perMid := float64(total-25) / 3
		repRate := perMid*10 + 5*2
		want := (rate*float64(cost.Dispatch) +
			repRate*(float64(cost.Replicate)+float64(cost.Coordinate))) /
			(float64(time.Second) * float64(cost.DeliveryCores))
		got := cost.DeliveryDemand(w, VariantFRAME, p)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("total %d: demand %.6f, hand formula %.6f", total, got, want)
		}
	}
}

func TestVariantPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown variant config did not panic")
		}
	}()
	Variant(0).EngineConfig(timing.PaperParams())
}
