// Submit-compare rig: the kernel-batched egress backend vs the portable
// sequential fallback on identical traffic, at the operating point where
// syscall overhead dominates (small payloads, high fan-out — the 64B×64
// cell of the opoints grid, per the broker-benchmarking literature in
// PAPERS.md). The measurement is write syscalls per delivered message; the
// acceptance gate is the batching ratio between the two backends, skipped
// automatically on kernels where io_uring is unavailable.

package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// SubmitCompareOptions parameterizes the backend comparison.
type SubmitCompareOptions struct {
	// Payload is the message payload in bytes; 0 means 64.
	Payload int
	// Fanout is the subscribers per message; 0 means 64.
	Fanout int
	// Messages is the published-message count per run; 0 means 1024.
	Messages int
	// Reps runs each backend this many times and keeps each floor; 0 means 3.
	Reps int
	// MinRatio is the acceptance gate: fail unless the fallback spends at
	// least this many times more write syscalls per message than the uring
	// backend. 0 means 4 (the ISSUE 10 bar); negative disables the gate.
	// The gate is skipped (reported, not failed) when the kernel backend
	// is unavailable on this host.
	MinRatio float64
}

func (o SubmitCompareOptions) withDefaults() SubmitCompareOptions {
	if o.Payload == 0 {
		o.Payload = 64
	}
	if o.Fanout == 0 {
		o.Fanout = 64
	}
	if o.Messages == 0 {
		o.Messages = 1024
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.MinRatio == 0 {
		o.MinRatio = 4
	}
	return o
}

// SubmitCompareResult holds both backends' cells and the batching ratio.
type SubmitCompareResult struct {
	Uring    OpointCell // kernel backend (TCP, io_uring sweeps)
	Fallback OpointCell // sequential backend (TCP, one writev per egress batch)
	// Ratio is Fallback.SyscallsPer / Uring.SyscallsPer — how many times
	// fewer kernel crossings the batched backend spends per message.
	Ratio float64
	// Supported reports whether the kernel backend actually carried sweeps;
	// false means the host lacks io_uring (or denies it) and the gate was
	// skipped.
	Supported bool
	// MinRatio echoes the gate that was applied (0 when disabled).
	MinRatio float64
}

// RunSubmitCompare measures one operating-point cell over real loopback TCP
// with the kernel submission backend on and off, and gates on the write-
// syscalls-per-message ratio.
func RunSubmitCompare(cfg Config, opts SubmitCompareOptions) (*SubmitCompareResult, error) {
	opts = opts.withDefaults()
	base := OpointsOptions{
		Payloads: []int{opts.Payload},
		Fanouts:  []int{opts.Fanout},
		Messages: opts.Messages,
		Reps:     opts.Reps,
		Net:      "tcp",
	}
	cfg.progress("submit-compare: payload=%dB fanout=%d msgs=%d — uring backend", opts.Payload, opts.Fanout, opts.Messages)
	uring, err := RunOpoints(cfg, base)
	if err != nil {
		return nil, fmt.Errorf("experiments: submit-compare uring run: %w", err)
	}
	cfg.progress("submit-compare: payload=%dB fanout=%d msgs=%d — sequential fallback", opts.Payload, opts.Fanout, opts.Messages)
	base.NoUring = true
	fallback, err := RunOpoints(cfg, base)
	if err != nil {
		return nil, fmt.Errorf("experiments: submit-compare fallback run: %w", err)
	}
	res := &SubmitCompareResult{
		Uring:     uring.Cells[0],
		Fallback:  fallback.Cells[0],
		Supported: uring.Cells[0].Kernel,
		MinRatio:  opts.MinRatio,
	}
	if res.Uring.SyscallsPer > 0 {
		res.Ratio = res.Fallback.SyscallsPer / res.Uring.SyscallsPer
	}
	if !res.Supported {
		res.MinRatio = 0
		return res, nil
	}
	if opts.MinRatio > 0 && res.Ratio < opts.MinRatio {
		return res, fmt.Errorf(
			"experiments: submit-compare: uring %.4f vs fallback %.4f syscalls/msg = %.1fx, below the %.1fx gate",
			res.Uring.SyscallsPer, res.Fallback.SyscallsPer, res.Ratio, opts.MinRatio)
	}
	return res, nil
}

// Format renders the comparison.
func (r *SubmitCompareResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Kernel-batched submission vs sequential fallback: payload=%dB fanout=%d (TCP loopback)\n",
		r.Uring.Payload, r.Uring.Fanout)
	fmt.Fprintf(&sb, "%10s  %13s  %10s  %12s  %10s\n", "backend", "syscalls/msg", "ns/msg", "msgs/sec", "elapsed")
	row := func(name string, c OpointCell) {
		fmt.Fprintf(&sb, "%10s  %13.4f  %10.0f  %12.0f  %10v\n",
			name, c.SyscallsPer, c.NsPerMsg, c.MsgsPer, c.Elapsed.Round(time.Millisecond))
	}
	row("uring", r.Uring)
	row("fallback", r.Fallback)
	switch {
	case !r.Supported:
		fmt.Fprintf(&sb, "kernel backend unavailable on this host; ratio gate skipped")
	case r.MinRatio > 0:
		fmt.Fprintf(&sb, "ratio: %.1fx fewer write syscalls per message with the kernel backend (gate ≥%.1fx)", r.Ratio, r.MinRatio)
	default:
		fmt.Fprintf(&sb, "ratio: %.1fx fewer write syscalls per message with the kernel backend (gate disabled)", r.Ratio)
	}
	return sb.String()
}

// WriteCSV stores one row per backend.
func (r *SubmitCompareResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "backend,payload_bytes,fanout,delivered,syscalls_per_msg,ns_per_msg,msgs_per_sec,kernel_submit"); err != nil {
		return err
	}
	row := func(name string, c OpointCell) error {
		_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%.4f,%.1f,%.1f,%v\n",
			name, c.Payload, c.Fanout, c.Delivered, c.SyscallsPer, c.NsPerMsg, c.MsgsPer, c.Kernel)
		return err
	}
	if err := row("uring", r.Uring); err != nil {
		return err
	}
	return row("fallback", r.Fallback)
}
