package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/simcluster"
	"repro/internal/spec"
)

// MultiEdgeResult is the extension experiment beyond the paper's scope
// (§I limits the evaluation to one edge and one cloud; Fig. 1 shows many
// edges sharing a private cloud): a sweep over the number of edges sharing
// one cloud ingest host.
type MultiEdgeResult struct {
	// Workload is the per-edge topic total.
	Workload int
	// Rows has one entry per edge count.
	Rows []MultiEdgeRow
}

// MultiEdgeRow summarizes one sweep point.
type MultiEdgeRow struct {
	Edges            int
	CloudUtilization float64
	CloudQueueP99    time.Duration
	// EdgeLatencySuccess is the message-level latency success of
	// edge-bound topics, averaged across edges — it must stay flat as the
	// shared cloud loads up.
	EdgeLatencySuccess float64
	// CloudLatencySuccess is the same for cloud-bound topics.
	CloudLatencySuccess float64
	// LossSuccess is the per-topic loss-tolerance success across all edges.
	LossSuccess float64
}

// MultiEdgeCounts is the default sweep.
var MultiEdgeCounts = []int{1, 2, 4, 8}

// RunMultiEdge sweeps the number of edges sharing one cloud host. Each
// edge runs the 1525-topic workload under FRAME; the cloud host is sized
// so that it saturates inside the sweep, demonstrating that edge-bound
// traffic is isolated from cloud-side congestion.
func RunMultiEdge(cfg Config) (*MultiEdgeResult, error) {
	cfg = cfg.withDefaults()
	const perEdgeTopics = 1525
	w, err := spec.NewWorkload(perEdgeTopics)
	if err != nil {
		return nil, err
	}
	out := &MultiEdgeResult{Workload: perEdgeTopics}
	for _, edges := range cfg.sizesOr(MultiEdgeCounts) {
		res, err := simcluster.RunMultiEdge(simcluster.MultiOptions{
			Edges: edges,
			PerEdge: simcluster.Options{
				Workload: w,
				Variant:  simcluster.VariantFRAME,
				Seed:     cfg.Seed + int64(edges),
				Warmup:   cfg.Warmup,
				Measure:  cfg.Measure,
				Drain:    cfg.Drain,
			},
			// One cloud core at 12ms/message: ~40 msg/s capacity, so the
			// sweep crosses saturation between 4 and 8 edges (10 cloud
			// msg/s per edge).
			CloudCores: 1,
			CloudCost:  12 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		row := MultiEdgeRow{
			Edges:            edges,
			CloudUtilization: res.CloudUtilization,
			CloudQueueP99:    res.CloudQueueP99,
		}
		var edgeMet, edgeCreated, cloudMet, cloudCreated uint64
		var lossOK, lossTotal int
		for _, er := range res.EdgeResults {
			for _, tr := range er.Topics {
				if tr.Topic.Destination == spec.DestCloud {
					cloudMet += tr.DeadlineMet
					cloudCreated += tr.Created
				} else {
					edgeMet += tr.DeadlineMet
					edgeCreated += tr.Created
				}
				if tr.Topic.BestEffort() {
					continue
				}
				lossTotal++
				if tr.MeetsLossTolerance() {
					lossOK++
				}
			}
		}
		if edgeCreated > 0 {
			row.EdgeLatencySuccess = 100 * float64(edgeMet) / float64(edgeCreated)
		}
		if cloudCreated > 0 {
			row.CloudLatencySuccess = 100 * float64(cloudMet) / float64(cloudCreated)
		}
		if lossTotal > 0 {
			row.LossSuccess = 100 * float64(lossOK) / float64(lossTotal)
		}
		out.Rows = append(out.Rows, row)
		cfg.progress("MultiEdge: edges=%d done", edges)
	}
	return out, nil
}

// Format renders the sweep as a table.
func (m *MultiEdgeResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — N edges sharing one cloud host (FRAME, %d topics/edge)\n", m.Workload)
	fmt.Fprintf(&b, "%-6s %10s %14s %12s %13s %8s\n",
		"edges", "cloud CPU%", "cloud P99", "edge lat-OK%", "cloud lat-OK%", "loss-OK%")
	for _, r := range m.Rows {
		fmt.Fprintf(&b, "%-6d %10.1f %14s %12.2f %13.2f %8.1f\n",
			r.Edges, r.CloudUtilization, r.CloudQueueP99.Round(time.Microsecond),
			r.EdgeLatencySuccess, r.CloudLatencySuccess, r.LossSuccess)
	}
	return b.String()
}
