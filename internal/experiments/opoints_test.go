package experiments

import (
	"strings"
	"testing"
)

// TestRunOpointsSmallGrid runs a CI-sized two-cell sweep over the mem
// network and checks the accounting every output format is built from.
// Mem conns expose no fd, so the kernel flag must stay false and the
// syscall meter must still report the sequential batching floor.
func TestRunOpointsSmallGrid(t *testing.T) {
	res, err := RunOpoints(Config{}, OpointsOptions{
		Payloads: []int{64},
		Fanouts:  []int{1, 8},
		Messages: 32,
		Reps:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Published != 32 {
			t.Errorf("fanout %d: published %d, want 32", c.Fanout, c.Published)
		}
		if c.Delivered != c.Published*c.Fanout {
			t.Errorf("fanout %d: delivered %d of %d (lossless mode allows no loss)",
				c.Fanout, c.Delivered, c.Published*c.Fanout)
		}
		if c.NsPerMsg <= 0 || c.MsgsPer <= 0 {
			t.Errorf("fanout %d: empty throughput cell %+v", c.Fanout, c)
		}
		if c.SyscallsPer <= 0 {
			t.Errorf("fanout %d: syscalls/msg = %v, want > 0 on the sequential path", c.Fanout, c.SyscallsPer)
		}
		if c.Kernel {
			t.Errorf("fanout %d: kernel submission reported over the mem network", c.Fanout)
		}
	}
	// Batching amortizes the per-message syscall cost as fan-out grows:
	// one writev covers a ring's worth of frames for each subscriber.
	if res.Cells[1].SyscallsPer > res.Cells[0].SyscallsPer {
		t.Errorf("syscalls/msg grew with fanout: %v -> %v",
			res.Cells[0].SyscallsPer, res.Cells[1].SyscallsPer)
	}

	if got := res.Format(); !strings.Contains(got, "syscalls/msg") || !strings.Contains(got, "uring") {
		t.Errorf("Format missing syscall columns:\n%s", got)
	}
	var csv, js strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want header + 2 cells", got)
	}
	if !strings.Contains(csv.String(), "syscalls_per_msg") {
		t.Error("CSV header missing syscalls_per_msg")
	}
	if err := res.WriteBenchJSON(&js); err != nil {
		t.Fatal(err)
	}
	rows, err := LoadBenchRows(strings.NewReader(js.String()))
	if err != nil {
		t.Fatalf("bench JSON does not round-trip through LoadBenchRows: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("bench JSON rows = %d, want 2 Opoint + 2 OpointSyscalls", len(rows))
	}
	for _, name := range []string{"Opoint/payload=64/fanout=8", "OpointSyscalls/payload=64/fanout=8"} {
		if !strings.Contains(js.String(), name) {
			t.Errorf("bench JSON missing row %s", name)
		}
	}
}

// TestRunOpointsRejectsUnknownNet covers the transport-selection error arm.
func TestRunOpointsRejectsUnknownNet(t *testing.T) {
	_, err := RunOpoints(Config{}, OpointsOptions{
		Payloads: []int{64}, Fanouts: []int{1}, Messages: 24, Reps: 1,
		Net: "carrier-pigeon",
	})
	if err == nil || !strings.Contains(err.Error(), "carrier-pigeon") {
		t.Fatalf("unknown net accepted: %v", err)
	}
}

// TestRunSubmitCompareSmallCell runs the backend comparison at CI size
// over real loopback TCP with the ratio gate disabled (a shared runner
// may deny io_uring, and the acceptance-scale gate runs in perf-smoke
// through frame-bench -submit-compare).
func TestRunSubmitCompareSmallCell(t *testing.T) {
	res, err := RunSubmitCompare(Config{}, SubmitCompareOptions{
		Payload:  64,
		Fanout:   8,
		Messages: 48,
		Reps:     1,
		MinRatio: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback.Kernel {
		t.Error("NoUring run still reports kernel submission")
	}
	if res.Fallback.SyscallsPer <= 0 {
		t.Errorf("fallback syscalls/msg = %v, want > 0", res.Fallback.SyscallsPer)
	}
	if res.Supported != res.Uring.Kernel {
		t.Errorf("Supported = %v but uring cell Kernel = %v", res.Supported, res.Uring.Kernel)
	}
	if res.Supported && res.Ratio <= 0 {
		t.Errorf("kernel backend ran but ratio = %v", res.Ratio)
	}

	got := res.Format()
	for _, want := range []string{"uring", "fallback"} {
		if !strings.Contains(got, want) {
			t.Errorf("Format missing %q row:\n%s", want, got)
		}
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 3 {
		t.Errorf("CSV has %d lines, want header + 2 backends", got)
	}
}

// TestRunSubmitCompareGate exercises the ratio gate's failure direction:
// an impossible bar must fail on hosts where the kernel backend engages
// and report itself skipped (no error) where it cannot.
func TestRunSubmitCompareGate(t *testing.T) {
	res, err := RunSubmitCompare(Config{}, SubmitCompareOptions{
		Payload:  64,
		Fanout:   8,
		Messages: 48,
		Reps:     1,
		MinRatio: 1e9,
	})
	if res == nil {
		t.Fatal("no result returned")
	}
	switch {
	case res.Supported && err == nil:
		t.Errorf("ratio %v passed an impossible 1e9x gate", res.Ratio)
	case !res.Supported && err != nil:
		t.Errorf("gate failed on a host without the kernel backend: %v", err)
	case !res.Supported && res.MinRatio != 0:
		t.Errorf("skipped gate still echoes MinRatio %v", res.MinRatio)
	}
}
