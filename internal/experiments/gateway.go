// Gateway connection-churn experiment: how many thin clients one gateway
// process sustains while connections churn at a configurable rate.
//
// The broker benchmarking literature is clear that published "clients
// supported" numbers are only credible with a reproducible churn harness,
// so this is a property of the real runtime, not the simulator: a solo
// broker, a real Gateway in front of it, and a population of simulated
// thin clients over the in-process network. The run ramps the population
// to the target, then holds it there for the measurement window while a
// churn loop replaces clients at the target rate (connect + subscribe a
// new client, disconnect an old one) and a paced publisher streams through
// the gateway's forward path. A handful of probe clients subscribe to
// every topic and must receive every published message; their end-to-end
// latency distribution is the delivery p99 the result reports.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// GatewayChurnOptions parameterizes the connection-churn run.
type GatewayChurnOptions struct {
	// Clients is the sustained simulated client population; 0 means 10000.
	Clients int
	// ChurnRate is the target client replacement rate in connects per
	// second during the window; 0 means 600.
	ChurnRate int
	// Topics is the topic count; each bulk client subscribes to one,
	// probes subscribe to all. 0 means 32.
	Topics int
	// Window is the churn measurement window; 0 means 3s.
	Window time.Duration
	// Depth is the gateway's per-client egress ring depth; 0 keeps the
	// gateway default.
	Depth int
	// Probes is how many full-subscription latency probes run; 0 means 4.
	Probes int
	// Interval paces the publisher between frames; 0 means 1ms.
	Interval time.Duration
	// MinChurn fails the run unless the achieved churn reaches this many
	// connects per second: the acceptance gate. 0 means 500; negative
	// disables the gate.
	MinChurn float64
}

func (o GatewayChurnOptions) withDefaults() GatewayChurnOptions {
	if o.Clients == 0 {
		o.Clients = 10000
	}
	if o.ChurnRate == 0 {
		o.ChurnRate = 600
	}
	if o.Topics == 0 {
		o.Topics = 32
	}
	if o.Window == 0 {
		o.Window = 3 * time.Second
	}
	if o.Probes == 0 {
		o.Probes = 4
	}
	if o.Interval == 0 {
		o.Interval = time.Millisecond
	}
	if o.MinChurn == 0 {
		// The acceptance gate: 500 connects/s at the default 600/s target,
		// scaled down proportionally when a smaller target is requested.
		o.MinChurn = 500
		if scaled := float64(o.ChurnRate) * 0.9; scaled < o.MinChurn {
			o.MinChurn = scaled
		}
	}
	return o
}

// GatewayChurnResult is one finished churn run.
type GatewayChurnResult struct {
	Clients   int // target population
	Topics    int
	Window    time.Duration
	Sustained int     // minimum sampled live-session count during the window
	Connects  int     // churn connects completed inside the window
	ChurnRate float64 // achieved connects per second
	Published uint64  // messages published through the gateway
	Delivered uint64  // distinct deliveries per probe (all probes equal)
	P50       time.Duration
	P99       time.Duration
	Shed      uint64 // gateway per-client ring sheds
	Evictions uint64 // gateway client evictions
}

// RunGatewayChurn ramps a thin-client population onto one gateway, churns
// it at the target rate for the window, and reports sustained client
// count, achieved churn rate, and delivery p99. The probes must receive
// every published message — churn is not allowed to cost connected
// clients anything.
func RunGatewayChurn(cfg Config, opts GatewayChurnOptions) (*GatewayChurnResult, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()

	params := timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
	topics := make([]spec.Topic, opts.Topics)
	ids := make([]spec.TopicID, opts.Topics)
	for i := range topics {
		topics[i] = spec.Topic{
			ID:            spec.TopicID(i + 1),
			Category:      -1,
			Period:        20 * time.Millisecond,
			Deadline:      time.Second,
			LossTolerance: 64,
			Retention:     64,
			Destination:   spec.DestEdge,
			PayloadSize:   64,
		}
		ids[i] = topics[i].ID
	}
	perTopic := int(opts.Window / (opts.Interval * time.Duration(opts.Topics)))
	if perTopic < 10 {
		perTopic = 10
	}
	engineCfg := core.FRAMEConfig(params)
	engineCfg.MessageBufferCap = perTopic + 64

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	b, err := broker.New(broker.Options{
		Engine:     engineCfg,
		Role:       broker.RolePrimary,
		ListenAddr: "primary",
		Network:    net,
		Clock:      clock,
		Topics:     topics,
		Logger:     quietLogger(),
	})
	if err != nil {
		return nil, err
	}
	b.Start()
	defer b.Stop()

	gw, err := gateway.New(gateway.Options{
		ListenAddr:  "gateway",
		Topics:      topics,
		BrokerAddrs: []string{b.Addr()},
		Network:     net,
		Clock:       clock,
		ClientDepth: opts.Depth,
		Logger:      quietLogger(),
	})
	if err != nil {
		return nil, err
	}
	gw.Start()
	defer gw.Stop()

	// Probes: full-subscription clients whose latency samples become the
	// delivery percentiles.
	probes := make([]*gateway.ThinSubscriber, opts.Probes)
	for i := range probes {
		probes[i], err = gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
			Name:        fmt.Sprintf("probe-%d", i),
			Topics:      ids,
			GatewayAddr: gw.Addr(),
			Network:     net,
			Clock:       clock,
			Logger:      quietLogger(),
		})
		if err != nil {
			return nil, err
		}
		defer probes[i].Close()
	}

	// Ramp: bring the bulk population up in parallel. Each bulk client is
	// one session subscribed to one topic with a reader that drains its
	// deliveries — the cheapest honest client (an unread session would
	// just measure the shed policy).
	cfg.progress("gateway: ramping %d clients (%d topics, churn target %d/s)",
		opts.Clients, opts.Topics, opts.ChurnRate)
	bulk := make([]*transport.Conn, opts.Clients)
	const rampWorkers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, rampWorkers)
	for w := 0; w < rampWorkers; w++ {
		lo, hi := w*opts.Clients/rampWorkers, (w+1)*opts.Clients/rampWorkers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				conn, err := connectBulkClient(net, gw.Addr(), i, ids[i%len(ids)])
				if err != nil {
					errCh <- fmt.Errorf("ramp client %d: %w", i, err)
					return
				}
				bulk[i] = conn
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	defer func() {
		for _, c := range bulk {
			if c != nil {
				c.Close()
			}
		}
	}()
	for deadline := time.Now().Add(10 * time.Second); gw.Subscribers() < opts.Clients+opts.Probes; {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("gateway registered %d of %d subscriptions", gw.Subscribers(), opts.Clients+opts.Probes)
		}
		time.Sleep(time.Millisecond)
	}
	cfg.progress("gateway: population up (%d sessions); churning for %v", gw.Clients(), opts.Window)

	// Publisher streams through the gateway's forward path for the whole
	// window while the churn loop runs.
	pubErr := make(chan error, 1)
	go func() { pubErr <- publishPaced(net, gw.Addr(), clock, ids, perTopic, opts.Interval) }()

	// Sampler: the sustained client count is the worst moment of the
	// window, not the average.
	sampleStop := make(chan struct{})
	sampleMin := make(chan int, 1)
	go func() {
		minSeen := gw.Clients()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleStop:
				sampleMin <- minSeen
				return
			case <-tick.C:
				if n := gw.Clients(); n < minSeen {
					minSeen = n
				}
			}
		}
	}()

	// Churn loop: connect-then-disconnect keeps the population at or above
	// target the whole window; dropped ticks (connects slower than the
	// target rate) show up as a lower achieved rate and trip the gate.
	connects := 0
	next := opts.Clients
	pos := 0
	ticker := time.NewTicker(time.Second / time.Duration(opts.ChurnRate))
	winEnd := time.Now().Add(opts.Window)
	for time.Now().Before(winEnd) {
		<-ticker.C
		conn, err := connectBulkClient(net, gw.Addr(), next, ids[next%len(ids)])
		if err != nil {
			ticker.Stop()
			return nil, fmt.Errorf("churn connect %d: %w", next, err)
		}
		old := bulk[pos]
		bulk[pos] = conn
		old.Close()
		pos = (pos + 1) % len(bulk)
		next++
		connects++
	}
	ticker.Stop()
	close(sampleStop)
	sustained := <-sampleMin
	if err := <-pubErr; err != nil {
		return nil, fmt.Errorf("publish: %w", err)
	}

	// Drain: every probe must end with the complete stream.
	total := uint64(opts.Topics * perTopic)
	for deadline := time.Now().Add(10 * time.Second); ; {
		done := true
		for _, p := range probes {
			if receivedThin(p, ids) < total {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("probe delivery incomplete: got %d of %d under churn", receivedThin(probes[0], ids), total)
		}
		time.Sleep(time.Millisecond)
	}

	var lat []time.Duration
	for _, p := range probes {
		for _, id := range ids {
			lat = append(lat, p.Latencies(id)...)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	es := gw.EgressStats()
	res := &GatewayChurnResult{
		Clients:   opts.Clients,
		Topics:    opts.Topics,
		Window:    opts.Window,
		Sustained: sustained,
		Connects:  connects,
		ChurnRate: float64(connects) / opts.Window.Seconds(),
		Published: total,
		Delivered: receivedThin(probes[0], ids),
		P50:       percentileDur(lat, 50),
		P99:       percentileDur(lat, 99),
		Shed:      es.Shed,
		Evictions: gw.Evictions(),
	}
	if opts.MinChurn > 0 && res.ChurnRate < opts.MinChurn {
		return res, fmt.Errorf("achieved churn %.0f connects/s below the %.0f gate", res.ChurnRate, opts.MinChurn)
	}
	return res, nil
}

// connectBulkClient opens one simulated thin client: connect, Hello,
// Subscribe to its one topic, and a goroutine that drains deliveries.
func connectBulkClient(net transport.Network, addr string, idx int, topic spec.TopicID) (*transport.Conn, error) {
	nc, err := net.Dial(addr)
	if err != nil {
		return nil, err
	}
	conn := transport.NewConn(nc)
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleSubscriber, Name: fmt.Sprintf("bulk-%d", idx)}); err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.Send(&wire.Frame{Type: wire.TypeSubscribe, Topics: []spec.TopicID{topic}}); err != nil {
		conn.Close()
		return nil, err
	}
	go func() {
		f := transport.GetFrame()
		defer transport.PutFrame(f)
		for conn.RecvInto(f) == nil {
		}
	}()
	return conn, nil
}

// receivedThin sums a thin subscriber's distinct deliveries across topics.
func receivedThin(p *gateway.ThinSubscriber, ids []spec.TopicID) uint64 {
	var n uint64
	for _, id := range ids {
		n += p.Received(id)
	}
	return n
}

// percentileDur returns the p-th percentile of sorted samples.
func percentileDur(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Format renders the run like the other experiments' tables.
func (r *GatewayChurnResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Gateway connection churn: %d clients, %d topics, %v window\n", r.Clients, r.Topics, r.Window)
	fmt.Fprintf(&sb, "%10s  %10s  %12s  %10s  %10s  %8s  %8s  %6s  %6s\n",
		"sustained", "connects", "churn/sec", "published", "delivered", "p50", "p99", "shed", "evict")
	fmt.Fprintf(&sb, "%10d  %10d  %12.0f  %10d  %10d  %8v  %8v  %6d  %6d\n",
		r.Sustained, r.Connects, r.ChurnRate, r.Published, r.Delivered,
		r.P50.Round(10*time.Microsecond), r.P99.Round(10*time.Microsecond), r.Shed, r.Evictions)
	return strings.TrimRight(sb.String(), "\n")
}

// WriteCSV stores the run as one row.
func (r *GatewayChurnResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "clients,topics,window_seconds,sustained,connects,churn_per_sec,published,delivered,p50_ms,p99_ms,shed,evictions"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%d,%d,%.3f,%d,%d,%.1f,%d,%d,%.3f,%.3f,%d,%d\n",
		r.Clients, r.Topics, r.Window.Seconds(), r.Sustained, r.Connects, r.ChurnRate,
		r.Published, r.Delivered,
		float64(r.P50.Microseconds())/1000, float64(r.P99.Microseconds())/1000,
		r.Shed, r.Evictions)
	return err
}
