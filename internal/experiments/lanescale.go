// Lane-scaling experiment: dispatch throughput of a live broker as the
// dispatch-lane count grows.
//
// Unlike the paper-reproduction experiments, which run in the discrete-event
// simulator's virtual time, lane scaling is a property of the real runtime —
// lock contention and syscall amortization do not exist in virtual time — so
// this experiment drives an actual broker over the in-process network and
// measures wall-clock delivery throughput. On a single-core host every lane
// count degenerates to the same schedule; run it on a multi-core machine to
// see the scaling the sharded engine buys.

package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// LaneScaleOptions parameterizes the sweep.
type LaneScaleOptions struct {
	// Lanes are the lane counts to sweep; nil means {1, 2, 4, 8}.
	Lanes []int
	// Batch is the write-batch window applied to every swept broker
	// (0 disables batching).
	Batch time.Duration
	// Topics is the topic count, spread evenly over the publishers;
	// 0 means 64.
	Topics int
	// PerTopic is how many messages each topic publishes; 0 means 200.
	PerTopic int
	// Publishers is the number of concurrent publishing connections;
	// 0 means 4.
	Publishers int
}

func (o LaneScaleOptions) withDefaults() LaneScaleOptions {
	if len(o.Lanes) == 0 {
		o.Lanes = []int{1, 2, 4, 8}
	}
	if o.Topics == 0 {
		o.Topics = 64
	}
	if o.PerTopic == 0 {
		o.PerTopic = 200
	}
	if o.Publishers == 0 {
		o.Publishers = 4
	}
	return o
}

// LaneScalePoint is one swept lane count.
type LaneScalePoint struct {
	Lanes      int
	Messages   int
	Elapsed    time.Duration
	Throughput float64 // delivered messages per second
}

// LaneScaleResult is the sweep outcome.
type LaneScaleResult struct {
	Batch  time.Duration
	Points []LaneScalePoint
}

// RunLaneScale measures end-to-end delivery throughput (publish → dispatch →
// subscriber) for each lane count: a fixed batch of messages is pushed as
// fast as the broker accepts and the clock stops when the subscriber has
// received the last of them.
func RunLaneScale(cfg Config, opts LaneScaleOptions) (*LaneScaleResult, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	res := &LaneScaleResult{Batch: opts.Batch}
	for _, lanes := range opts.Lanes {
		if lanes < 1 {
			return nil, fmt.Errorf("experiments: lane count %d must be ≥ 1", lanes)
		}
		cfg.progress("lanescale: lanes=%d batch=%v", lanes, opts.Batch)
		p, err := runLanePoint(lanes, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: lanescale lanes=%d: %w", lanes, err)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// quietLogger drops the broker's operational chatter during sweeps.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
}

func runLanePoint(lanes int, opts LaneScaleOptions) (LaneScalePoint, error) {
	params := timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
	topics := make([]spec.Topic, opts.Topics)
	ids := make([]spec.TopicID, opts.Topics)
	for i := range topics {
		topics[i] = spec.Topic{
			ID:       spec.TopicID(i + 1),
			Category: -1,
			Period:   20 * time.Millisecond,
			Deadline: time.Second,
			// (Ni+Li)·Ti must clear ΔBB + x for admission.
			Retention:   8,
			Destination: spec.DestEdge,
			PayloadSize: 64,
		}
		ids[i] = topics[i].ID
	}
	engineCfg := core.FRAMEConfig(params)
	// The sweep publishes in bursts rather than Ti-paced, so the Message
	// Buffer must hold a whole topic's burst — and the subscriber's egress
	// ring the whole run's, or the shed policy would read the transient
	// backlog as a dead subscriber and evict it mid-measurement.
	engineCfg.MessageBufferCap = opts.PerTopic
	egressDepth := opts.Topics * opts.PerTopic

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	b, err := broker.New(broker.Options{
		Engine:      engineCfg,
		Role:        broker.RolePrimary,
		ListenAddr:  "primary",
		Network:     net,
		Clock:       clock,
		Lanes:       lanes,
		BatchWindow: opts.Batch,
		EgressDepth: egressDepth,
		Topics:      topics,
		Logger:      quietLogger(),
	})
	if err != nil {
		return LaneScalePoint{}, err
	}
	b.Start()
	defer b.Stop()

	sub, err := client.NewSubscriber(client.SubscriberOptions{
		Name:        "lanescale-sub",
		Topics:      ids,
		BrokerAddrs: []string{b.Addr()},
		Network:     net,
		Clock:       clock,
		Logger:      quietLogger(),
	})
	if err != nil {
		return LaneScalePoint{}, err
	}
	defer sub.Close()

	total := opts.Topics * opts.PerTopic
	begin := time.Now()
	errCh := make(chan error, opts.Publishers)
	for p := 0; p < opts.Publishers; p++ {
		// Each publisher owns a disjoint topic slice, so per-topic sequence
		// numbers stay monotone from a single goroutine.
		own := ids[p*len(ids)/opts.Publishers : (p+1)*len(ids)/opts.Publishers]
		go func() { errCh <- publishBurst(net, b.Addr(), clock, own, opts.PerTopic) }()
	}
	for p := 0; p < opts.Publishers; p++ {
		if err := <-errCh; err != nil {
			return LaneScalePoint{}, err
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for received(sub, ids) < uint64(total) {
		if time.Now().After(deadline) {
			return LaneScalePoint{}, fmt.Errorf("delivered %d of %d before timeout", received(sub, ids), total)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(begin)
	return LaneScalePoint{
		Lanes:      lanes,
		Messages:   total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
	}, nil
}

// publishBurst floods the broker with every message of the owned topics over
// one raw connection.
func publishBurst(net transport.Network, addr string, clock func() time.Duration, own []spec.TopicID, perTopic int) error {
	nc, err := net.Dial(addr)
	if err != nil {
		return err
	}
	conn := transport.NewConn(nc)
	defer conn.Close()
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RolePublisher, Name: "lanescale-pub"}); err != nil {
		return err
	}
	payload := make([]byte, 64)
	for seq := uint64(1); seq <= uint64(perTopic); seq++ {
		for _, id := range own {
			f := &wire.Frame{Type: wire.TypePublish, Msg: wire.Message{
				Topic: id, Seq: seq, Created: clock(), Payload: payload,
			}}
			if err := conn.Send(f); err != nil {
				return err
			}
		}
	}
	return nil
}

func received(sub *client.Subscriber, ids []spec.TopicID) uint64 {
	var n uint64
	for _, id := range ids {
		n += sub.Received(id)
	}
	return n
}

// Format renders the sweep as a small table with speedup over one lane.
func (r *LaneScaleResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Lane scaling: delivery throughput vs dispatch lanes (batch window %v)\n", r.Batch)
	fmt.Fprintf(&sb, "%8s  %10s  %10s  %12s  %8s\n", "lanes", "messages", "elapsed", "msgs/sec", "speedup")
	var base float64
	for i, p := range r.Points {
		if i == 0 {
			base = p.Throughput
		}
		speedup := 0.0
		if base > 0 {
			speedup = p.Throughput / base
		}
		fmt.Fprintf(&sb, "%8d  %10d  %10v  %12.0f  %7.2fx\n",
			p.Lanes, p.Messages, p.Elapsed.Round(time.Millisecond), p.Throughput, speedup)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// WriteCSV stores the sweep as lanes,messages,elapsed_seconds,throughput.
func (r *LaneScaleResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "lanes,messages,elapsed_seconds,throughput_msgs_per_sec"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d,%d,%.6f,%.1f\n", p.Lanes, p.Messages, p.Elapsed.Seconds(), p.Throughput); err != nil {
			return err
		}
	}
	return nil
}
