package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

// parseCSV asserts the output is well-formed CSV with the expected header
// and a consistent column count, returning the data rows.
func parseCSV(t *testing.T, buf *bytes.Buffer, wantHeader string) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	if len(records) < 2 {
		t.Fatalf("csv has %d rows; want header + data", len(records))
	}
	if got := records[0][0]; got != wantHeader {
		t.Fatalf("header starts with %q, want %q", got, wantHeader)
	}
	for i, r := range records {
		if len(r) != len(records[0]) {
			t.Fatalf("row %d has %d columns, header has %d", i, len(r), len(records[0]))
		}
	}
	return records[1:]
}

func TestTableWriteCSV(t *testing.T) {
	res, err := RunTable4(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf, "workload")
	if len(rows) != 6*4 { // 6 groups × 4 variants × 1 workload
		t.Errorf("rows = %d, want 24", len(rows))
	}
	for _, r := range rows {
		if mean, err := strconv.ParseFloat(r[4], 64); err != nil || mean < 0 || mean > 100 {
			t.Errorf("bad mean %q", r[4])
		}
	}
}

func TestFig7WriteCSV(t *testing.T) {
	res, err := RunFig7(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf, "workload")
	if len(rows) != 4 {
		t.Errorf("rows = %d, want 4 (one per variant)", len(rows))
	}
}

func TestFig8And9AndMultiEdgeWriteCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 7525-topic simulations")
	}
	cfg := quickConfig()
	cfg.CrashMeasure = 1500 * 1e6 // 1.5s
	f8, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f8.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf, "t_seconds"); len(rows) != len(f8.Series) {
		t.Errorf("fig8 rows = %d, want %d", len(rows), len(f8.Series))
	}

	f9, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f9.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, "variant")

	cfg.Workloads = []int{1, 2}
	me, err := RunMultiEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := me.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if rows := parseCSV(t, &buf, "edges"); len(rows) != 2 {
		t.Errorf("multiedge rows = %d, want 2", len(rows))
	}
}
