// Package experiments regenerates every table and figure of the FRAME
// paper's evaluation (§VI) from the simulated test-bed in package
// simcluster:
//
//   - Table 4 — success rate for loss-tolerance requirements, under crash
//     injection, workloads 7525/10525/13525;
//   - Table 5 — success rate for latency requirements, fault-free,
//     workloads 4525–13525;
//   - Fig. 7  — modeled CPU utilization per module and configuration;
//   - Fig. 8  — ΔBS of a category-5 (cloud) topic across 24 hours, plus a
//     crash-during-spike validation that loss tolerance holds;
//   - Fig. 9  — end-to-end latency of representative topics before, upon,
//     and after fault recovery, per configuration.
//
// Scale note: the paper measures 60 s per run with 10 repetitions per cell
// on a 7-host test-bed; the defaults here use shorter windows and 3
// repetitions so the whole suite regenerates in minutes on one laptop
// core. Absolute success rates of *overloaded* configurations are higher
// than the paper's (a shorter window bounds how far an unstable queue can
// grow), but every comparison the paper makes — who wins, where the
// collapse happens, how wide the gaps are — is preserved. Set Config.Runs
// and Config.Measure up for closer absolute numbers.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/simcluster"
	"repro/internal/spec"
	"repro/internal/timing"
)

// Config tunes the experiment suite.
type Config struct {
	// Runs is the repetitions per cell (paper: 10; default 5).
	Runs int
	// Measure is the fault-free measurement window (paper: 60 s; default 4 s).
	Measure time.Duration
	// CrashMeasure is the window for crash runs (crash at midpoint;
	// default 8 s).
	CrashMeasure time.Duration
	// Warmup precedes measurement (default 500 ms).
	Warmup time.Duration
	// Drain lets in-flight messages finish (default 2 s).
	Drain time.Duration
	// SpeedNoise is the per-run host speed variation (default 0.07).
	SpeedNoise float64
	// Seed is the base seed; run r of cell c uses a derived seed.
	Seed int64
	// Progress, when non-nil, receives one line per completed run.
	Progress func(format string, args ...any)
	// Workloads, when non-empty, overrides each experiment's default
	// workload sizes (useful for quick smoke runs and tests).
	Workloads []int
}

func (c Config) withDefaults() Config {
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Measure == 0 {
		c.Measure = 4 * time.Second
	}
	if c.CrashMeasure == 0 {
		c.CrashMeasure = 8 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.Drain == 0 {
		c.Drain = 2 * time.Second
	}
	if c.SpeedNoise == 0 {
		c.SpeedNoise = 0.07
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// sizesOr returns the configured override or the experiment's default.
func (c Config) sizesOr(def []int) []int {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return def
}

func (c Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// Group is one (Di, Li) requirement row of Tables 4 and 5; it coincides
// with a Table 2 category.
type Group struct {
	Category int
	Di       time.Duration
	Li       int
}

// Label renders Li the way the paper prints it ("∞" for best-effort).
func (g Group) Label() (di, li string) {
	di = fmt.Sprintf("%d", g.Di.Milliseconds())
	if g.Li >= spec.LossUnbounded {
		return di, "inf"
	}
	return di, fmt.Sprintf("%d", g.Li)
}

// groups returns the six rows in paper order.
func groups() []Group {
	out := make([]Group, 0, 6)
	for _, c := range spec.Table2() {
		out = append(out, Group{Category: c.Index, Di: c.Deadline, Li: c.LossTolerance})
	}
	return out
}

// Cell is one table cell: per-run success percentages.
type Cell struct {
	Runs metrics.Series // success percentage per run
}

// String renders "mean ± ci" like the paper.
func (c Cell) String() string { return c.Runs.FormatMeanCI() }

// TableResult holds one regenerated table.
type TableResult struct {
	// Name is "Table 4" or "Table 5".
	Name string
	// Workloads lists the topic totals, ascending.
	Workloads []int
	// Rows maps workload → group → variant → cell.
	Rows map[int]map[Group]map[simcluster.Variant]Cell
}

// Table4Workloads are the crash-run sizes shown in the paper's Table 4.
var Table4Workloads = []int{7525, 10525, 13525}

// Table5Workloads are the fault-free sizes shown in the paper's Table 5.
var Table5Workloads = []int{4525, 7525, 10525, 13525}

// Fig7Workloads are all evaluated sizes (Fig. 7's x-axis).
var Fig7Workloads = spec.WorkloadSizes

// runCell executes one (workload, variant, run) simulation.
func runCell(cfg Config, w *spec.Workload, v simcluster.Variant, run int, crash bool, track []spec.TopicID) (*simcluster.Result, error) {
	measure := cfg.Measure
	var crashAt time.Duration
	if crash {
		measure = cfg.CrashMeasure
		crashAt = measure / 2
	}
	seed := cfg.Seed + int64(w.TotalTopics)*1e6 + int64(v)*1e4 + int64(run)
	return simcluster.Run(simcluster.Options{
		Workload:    w,
		Variant:     v,
		Seed:        seed,
		Warmup:      cfg.Warmup,
		Measure:     measure,
		Drain:       cfg.Drain,
		CrashAt:     crashAt,
		SpeedNoise:  cfg.SpeedNoise,
		TrackTopics: track,
	})
}

// lossSuccessByGroup computes Table 4's metric: the percentage of the
// group's topics whose max consecutive loss stayed within Li.
func lossSuccessByGroup(res *simcluster.Result) map[Group]float64 {
	type acc struct{ ok, total int }
	accs := make(map[int]*acc, 6)
	for _, tr := range res.Topics {
		a := accs[tr.Topic.Category]
		if a == nil {
			a = &acc{}
			accs[tr.Topic.Category] = a
		}
		a.total++
		if tr.MeetsLossTolerance() {
			a.ok++
		}
	}
	out := make(map[Group]float64, 6)
	for _, g := range groups() {
		if a := accs[g.Category]; a != nil && a.total > 0 {
			out[g] = 100 * float64(a.ok) / float64(a.total)
		}
	}
	return out
}

// latencySuccessByGroup computes Table 5's metric: the percentage of the
// group's messages delivered within Di (lost messages count as misses).
func latencySuccessByGroup(res *simcluster.Result) map[Group]float64 {
	type acc struct{ met, created uint64 }
	accs := make(map[int]*acc, 6)
	for _, tr := range res.Topics {
		a := accs[tr.Topic.Category]
		if a == nil {
			a = &acc{}
			accs[tr.Topic.Category] = a
		}
		a.met += tr.DeadlineMet
		a.created += tr.Created
	}
	out := make(map[Group]float64, 6)
	for _, g := range groups() {
		if a := accs[g.Category]; a != nil && a.created > 0 {
			out[g] = 100 * float64(a.met) / float64(a.created)
		}
	}
	return out
}

// runTable produces a table by running the full matrix.
func runTable(cfg Config, name string, workloads []int, crash bool,
	metric func(*simcluster.Result) map[Group]float64) (*TableResult, error) {
	cfg = cfg.withDefaults()
	out := &TableResult{
		Name:      name,
		Workloads: append([]int(nil), workloads...),
		Rows:      make(map[int]map[Group]map[simcluster.Variant]Cell),
	}
	for _, total := range workloads {
		w, err := spec.NewWorkload(total)
		if err != nil {
			return nil, err
		}
		byGroup := make(map[Group]map[simcluster.Variant]Cell)
		out.Rows[total] = byGroup
		for _, v := range simcluster.Variants {
			for run := 0; run < cfg.Runs; run++ {
				res, err := runCell(cfg, w, v, run, crash, nil)
				if err != nil {
					return nil, err
				}
				for g, pct := range metric(res) {
					cells := byGroup[g]
					if cells == nil {
						cells = make(map[simcluster.Variant]Cell)
						byGroup[g] = cells
					}
					c := cells[v]
					c.Runs = append(c.Runs, pct)
					cells[v] = c
				}
				cfg.progress("%s: workload=%d variant=%s run=%d/%d done",
					name, total, v, run+1, cfg.Runs)
			}
		}
	}
	return out, nil
}

// RunTable4 regenerates Table 4 (loss-tolerance success under crash).
func RunTable4(cfg Config) (*TableResult, error) {
	return runTable(cfg, "Table 4", cfg.sizesOr(Table4Workloads), true, lossSuccessByGroup)
}

// RunTable5 regenerates Table 5 (latency success, fault-free).
func RunTable5(cfg Config) (*TableResult, error) {
	return runTable(cfg, "Table 5", cfg.sizesOr(Table5Workloads), false, latencySuccessByGroup)
}

// Format renders the table in the paper's layout.
func (t *TableResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — success rate (%%), mean ± 95%% CI over runs\n", t.Name)
	variants := simcluster.Variants
	for _, total := range t.Workloads {
		fmt.Fprintf(&b, "\nWorkload = %d Topics\n", total)
		fmt.Fprintf(&b, "%-5s %-4s", "Di", "Li")
		for _, v := range variants {
			fmt.Fprintf(&b, " %16s", v)
		}
		b.WriteByte('\n')
		for _, g := range groups() {
			cells := t.Rows[total][g]
			if cells == nil {
				continue
			}
			di, li := g.Label()
			fmt.Fprintf(&b, "%-5s %-4s", di, li)
			for _, v := range variants {
				fmt.Fprintf(&b, " %16s", cells[v].String())
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Fig7Point is one bar of Fig. 7: per-module utilization for one workload
// and configuration, averaged across runs.
type Fig7Point struct {
	Workload        int
	Variant         simcluster.Variant
	PrimaryDelivery metrics.Series
	PrimaryProxy    metrics.Series
	BackupProxy     metrics.Series
}

// Fig7Result regenerates Fig. 7(a,b,c).
type Fig7Result struct {
	Points []Fig7Point
}

// RunFig7 measures per-module CPU utilization in fault-free runs.
func RunFig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.withDefaults()
	out := &Fig7Result{}
	for _, total := range cfg.sizesOr(Fig7Workloads) {
		w, err := spec.NewWorkload(total)
		if err != nil {
			return nil, err
		}
		for _, v := range simcluster.Variants {
			pt := Fig7Point{Workload: total, Variant: v}
			for run := 0; run < cfg.Runs; run++ {
				res, err := runCell(cfg, w, v, run, false, nil)
				if err != nil {
					return nil, err
				}
				pt.PrimaryDelivery = append(pt.PrimaryDelivery, res.Util.PrimaryDelivery)
				pt.PrimaryProxy = append(pt.PrimaryProxy, res.Util.PrimaryProxy)
				pt.BackupProxy = append(pt.BackupProxy, res.Util.BackupProxy)
				cfg.progress("Fig 7: workload=%d variant=%s run=%d/%d done", total, v, run+1, cfg.Runs)
			}
			out.Points = append(out.Points, pt)
		}
	}
	return out, nil
}

// Format renders the three Fig. 7 panels as text tables.
func (f *Fig7Result) Format() string {
	var b strings.Builder
	panels := []struct {
		title string
		pick  func(Fig7Point) metrics.Series
	}{
		{"Fig 7(a) Message Delivery module in the Primary (% of 2 cores)", func(p Fig7Point) metrics.Series { return p.PrimaryDelivery }},
		{"Fig 7(b) Message Proxy module in the Primary (% of 1 core)", func(p Fig7Point) metrics.Series { return p.PrimaryProxy }},
		{"Fig 7(c) Message Proxy module in the Backup (% of 1 core)", func(p Fig7Point) metrics.Series { return p.BackupProxy }},
	}
	workloads := map[int]bool{}
	for _, p := range f.Points {
		workloads[p.Workload] = true
	}
	var sizes []int
	for s := range workloads {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	for _, panel := range panels {
		fmt.Fprintf(&b, "\n%s\n%-8s", panel.title, "Topics")
		for _, v := range simcluster.Variants {
			fmt.Fprintf(&b, " %10s", v)
		}
		b.WriteByte('\n')
		for _, size := range sizes {
			fmt.Fprintf(&b, "%-8d", size)
			for _, v := range simcluster.Variants {
				for _, p := range f.Points {
					if p.Workload == size && p.Variant == v {
						fmt.Fprintf(&b, " %10.1f", panel.pick(p).Mean())
					}
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Fig8Result regenerates Fig. 8: the 24-hour ΔBS profile of a category-5
// cloud topic, plus the paper's claim check — the configured lower bound of
// ΔBS keeps the loss-tolerance guarantee despite run-time variation.
type Fig8Result struct {
	// SampleEvery is the spacing of Series samples.
	SampleEvery time.Duration
	// Series is ΔBS over 24 hours.
	Series []time.Duration
	// SetupDeltaBS is the configured lower bound (the paper's 20.7 ms).
	SetupDeltaBS time.Duration
	// PeakDeltaBS is the maximum observed sample.
	PeakDeltaBS time.Duration
	// CrashDuringSpike reports the validation run: a compressed-day FRAME
	// run with the Primary crashed at the spike.
	CrashLossSuccess float64
	MessagesLost     uint64
}

// RunFig8 samples the WAN model across 24 h and validates loss tolerance
// under a crash injected at the latency spike, with the cloud link running
// the same diurnal profile compressed into the simulated window.
func RunFig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	out := &Fig8Result{
		SampleEvery:  30 * time.Second,
		SetupDeltaBS: timing.PaperParams().DeltaBSCloud,
	}
	model := netsim.PaperCloudLink(cfg.Seed)
	for at := time.Duration(0); at < 24*time.Hour; at += out.SampleEvery {
		s := model.Latency(at)
		out.Series = append(out.Series, s)
		if s > out.PeakDeltaBS {
			out.PeakDeltaBS = s
		}
	}

	// Validation: compress the 24 h profile into the crash window and kill
	// the Primary exactly at the spike.
	w, err := spec.NewWorkload(7525)
	if err != nil {
		return nil, err
	}
	measure := cfg.CrashMeasure
	day := cfg.Warmup + measure + cfg.Drain
	compressed := netsim.NewDiurnal(netsim.Diurnal{
		Floor:  20700 * time.Microsecond,
		Swing:  3 * time.Millisecond,
		Period: day,
		PeakAt: day * 14 / 24,
		Jitter: 1500 * time.Microsecond,
		Spikes: []netsim.Spike{{
			At:        cfg.Warmup + measure/2, // spike at the crash
			Magnitude: 104 * time.Millisecond,
			Width:     measure / 20,
		}},
	}, cfg.Seed+1)
	res, err := simcluster.Run(simcluster.Options{
		Workload:   w,
		Variant:    simcluster.VariantFRAME,
		Seed:       cfg.Seed,
		Warmup:     cfg.Warmup,
		Measure:    measure,
		Drain:      cfg.Drain,
		CrashAt:    measure / 2,
		SpeedNoise: 0, // isolate the cloud-latency effect
		CloudLink:  compressed,
	})
	if err != nil {
		return nil, err
	}
	var ok, total int
	for _, tr := range res.Topics {
		if tr.Topic.Destination != spec.DestCloud {
			continue
		}
		total++
		out.MessagesLost += tr.Lost
		if tr.MeetsLossTolerance() {
			ok++
		}
	}
	if total > 0 {
		out.CrashLossSuccess = 100 * float64(ok) / float64(total)
	}
	cfg.progress("Fig 8: 24h profile sampled, crash-at-spike validation done")
	return out, nil
}

// Format renders the Fig. 8 summary and a coarse time profile.
func (f *Fig8Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8 — ΔBS for a category-5 topic across 24 hours\n")
	fmt.Fprintf(&b, "setup ΔBS (lower bound): %.1f ms\n", ms(f.SetupDeltaBS))
	fmt.Fprintf(&b, "peak observed ΔBS:       %.1f ms (spike ≈ +104 ms at ~8am)\n", ms(f.PeakDeltaBS))
	fmt.Fprintf(&b, "cloud topics meeting loss tolerance with crash at spike: %.1f%% (lost=%d)\n",
		f.CrashLossSuccess, f.MessagesLost)
	fmt.Fprintf(&b, "hourly mean ΔBS (ms):")
	perHour := len(f.Series) / 24
	for h := 0; h < 24; h++ {
		var sum time.Duration
		for i := 0; i < perHour; i++ {
			sum += f.Series[h*perHour+i]
		}
		fmt.Fprintf(&b, " %0.1f", ms(sum/time.Duration(perHour)))
	}
	b.WriteByte('\n')
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Fig9Series is the latency series of one tracked topic under one
// configuration.
type Fig9Series struct {
	Variant simcluster.Variant
	// Category is 0, 2, or 5 (the paper's three panels).
	Category int
	Topic    spec.TopicID
	Points   []simcluster.SeriesPoint
	// Lost counts measured-window messages never delivered.
	Lost uint64
	// PeakRecoveryLatency is the maximum latency at/after the crash.
	PeakRecoveryLatency time.Duration
}

// Fig9Result holds all twelve series (3 categories × 4 configurations).
type Fig9Result struct {
	Workload int
	Series   []Fig9Series
}

// RunFig9 runs the 7525-topic workload with crash injection once per
// configuration, tracking one topic in each of categories 0, 2, and 5.
func RunFig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	const workload = 7525
	w, err := spec.NewWorkload(workload)
	if err != nil {
		return nil, err
	}
	// Representative topics: first of category 0, 2, and 5.
	tracked := make([]spec.TopicID, 0, 3)
	cats := map[int]spec.TopicID{}
	for _, t := range w.Topics {
		if _, ok := cats[t.Category]; !ok {
			cats[t.Category] = t.ID
		}
	}
	for _, c := range []int{0, 2, 5} {
		tracked = append(tracked, cats[c])
	}
	out := &Fig9Result{Workload: workload}
	for _, v := range simcluster.Variants {
		res, err := runCell(cfg, w, v, 0, true, tracked)
		if err != nil {
			return nil, err
		}
		byID := make(map[spec.TopicID]simcluster.TopicResult, len(res.Topics))
		for _, tr := range res.Topics {
			byID[tr.Topic.ID] = tr
		}
		for i, c := range []int{0, 2, 5} {
			id := tracked[i]
			s := Fig9Series{Variant: v, Category: c, Topic: id, Points: res.Series[id]}
			s.Lost = byID[id].Lost
			for _, pt := range s.Points {
				if pt.Recovered && pt.Latency > s.PeakRecoveryLatency {
					s.PeakRecoveryLatency = pt.Latency
				}
			}
			out.Series = append(out.Series, s)
		}
		cfg.progress("Fig 9: variant=%s done", v)
	}
	return out, nil
}

// Format summarizes each panel: pre-crash latency, recovery peak, losses.
func (f *Fig9Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9 — end-to-end latency across fault recovery (workload %d)\n", f.Workload)
	for _, c := range []int{0, 2, 5} {
		cat := spec.Table2()[c]
		fmt.Fprintf(&b, "\nCategory %d (Ti=%d, Di=%d):\n", c,
			cat.Period.Milliseconds(), cat.Deadline.Milliseconds())
		fmt.Fprintf(&b, "%-8s %14s %14s %14s %6s\n",
			"config", "pre-crash p99", "recovery peak", "post-crash p99", "lost")
		for _, s := range f.Series {
			if s.Category != c {
				continue
			}
			var pre, post metrics.LatencyRecorder
			for _, pt := range s.Points {
				if pt.Recovered {
					post.Record(pt.Latency)
				} else {
					pre.Record(pt.Latency)
				}
			}
			fmt.Fprintf(&b, "%-8s %11.1f ms %11.1f ms %11.1f ms %6d\n",
				s.Variant.String(),
				ms(pre.Percentile(0.99)),
				ms(s.PeakRecoveryLatency),
				ms(post.Percentile(0.99)),
				s.Lost)
		}
	}
	return b.String()
}
