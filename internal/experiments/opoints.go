// Operating-point bench rig: FRAME's delivery throughput at the fixed
// payload-size × fan-out grid the broker-benchmarking literature compares
// systems on (the Zenoh/MQTT/Kafka/DDS study and the IoT-edge broker
// benchmarks in PAPERS.md measure 64B/1KB/64KB payloads at small and large
// subscriber counts). Tracking "faster than yesterday" via BENCH_EGRESS.json
// catches regressions but says nothing about where FRAME sits on those
// published axes; this sweep produces the comparable numbers.
//
// Each cell runs a live broker over the in-process network in lossless
// blocking-egress mode — a full ring backpressures dispatch instead of
// shedding — so a flat-out publisher measures sustainable capacity rather
// than the shed policy. The cell's unit result is nanoseconds per delivered
// message (payload×fanout held fixed), which serializes into the same
// BenchRow shape as the Go benchmarks so frame-benchdiff gates both files
// with one comparison.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
)

// OpointsOptions parameterizes the operating-point sweep.
type OpointsOptions struct {
	// Payloads are the payload sizes in bytes; nil means {64, 1024, 65536}.
	Payloads []int
	// Fanouts are the subscribers-per-message counts; nil means {1, 8, 64}.
	Fanouts []int
	// Messages is the published-message count per cell before the byte
	// budget clamps it; 0 means 256.
	Messages int
	// ByteBudget caps payload×fanout×messages per cell so the 64KB×64 cell
	// cannot blow up CI; 0 means 64MB. Clamping never goes below 24
	// messages.
	ByteBudget int64
	// Topics spreads each cell's traffic over this many topics (and thus
	// dispatch lanes); 0 means 2.
	Topics int
	// Depth is the per-subscriber egress ring depth; 0 means 1024.
	Depth int
	// Reps runs each cell this many times and keeps the fastest; 0 means 3.
	// Capacity is the best sustained rate, so min-of-N is the measurement,
	// not a noise dodge — a descheduled flusher can double a short cell's
	// elapsed time on a loaded box.
	Reps int
	// Net selects the transport: "mem" (default) runs over the in-process
	// network, "tcp" over real loopback sockets — the only way the kernel
	// submission backend can engage, since Mem conns expose no fd.
	Net string
	// NoUring forces the sequential write path even over TCP, mirroring
	// broker.Options.NoUring; the submit-compare mode uses it to measure
	// both backends on identical traffic.
	NoUring bool
}

func (o OpointsOptions) withDefaults() OpointsOptions {
	if len(o.Payloads) == 0 {
		o.Payloads = []int{64, 1024, 65536}
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{1, 8, 64}
	}
	if o.Messages == 0 {
		o.Messages = 256
	}
	if o.ByteBudget == 0 {
		o.ByteBudget = 64 << 20
	}
	if o.Topics == 0 {
		o.Topics = 2
	}
	if o.Depth == 0 {
		o.Depth = 1024
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.Net == "" {
		o.Net = "mem"
	}
	return o
}

// OpointCell is one measured operating point.
type OpointCell struct {
	Payload   int // bytes per message
	Fanout    int // subscribers receiving every message
	Published int // messages published across all topics
	Delivered int // messages received across all subscribers
	Elapsed   time.Duration
	MsgsPer   float64 // delivered messages per second
	MBPer     float64 // delivered payload megabytes per second
	NsPerMsg  float64 // nanoseconds per delivered message
	// SyscallsPer is egress write-syscalls per delivered message: the
	// broker's sequential writev/resume calls plus (kernel backend) its
	// io_uring_enter sweeps, over the cell's measurement window. The best
	// (lowest) rep is kept, like NsPerMsg — both measure the operating
	// point's floor, not a noisy average.
	SyscallsPer float64
	// Kernel reports whether the kernel submission backend carried sweeps
	// during the cell (always false on the mem network).
	Kernel bool
}

// OpointsResult is the grid outcome.
type OpointsResult struct {
	Cells []OpointCell
}

// RunOpoints sweeps the payload × fan-out grid against a live broker.
func RunOpoints(cfg Config, opts OpointsOptions) (*OpointsResult, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	res := &OpointsResult{}
	for _, payload := range opts.Payloads {
		for _, fanout := range opts.Fanouts {
			msgs := opts.Messages
			if budget := int(opts.ByteBudget / int64(payload) / int64(fanout)); msgs > budget {
				msgs = budget
			}
			if msgs < 24 {
				msgs = 24
			}
			cfg.progress("opoints: payload=%dB fanout=%d msgs=%d reps=%d net=%s", payload, fanout, msgs, opts.Reps, opts.Net)
			var best OpointCell
			for rep := 0; rep < opts.Reps; rep++ {
				cell, err := runOpointCell(payload, fanout, msgs, opts)
				if err != nil {
					return nil, fmt.Errorf("experiments: opoints payload=%d fanout=%d: %w", payload, fanout, err)
				}
				if rep == 0 {
					best = cell
					continue
				}
				if cell.NsPerMsg < best.NsPerMsg {
					syscalls, kernel := best.SyscallsPer, best.Kernel
					best = cell
					best.SyscallsPer, best.Kernel = syscalls, kernel
				}
				// Floors are tracked per axis: the rep with the best batching
				// (fewest syscalls per message) is not always the fastest one.
				if cell.SyscallsPer < best.SyscallsPer {
					best.SyscallsPer = cell.SyscallsPer
				}
				best.Kernel = best.Kernel || cell.Kernel
			}
			res.Cells = append(res.Cells, best)
		}
	}
	return res, nil
}

func runOpointCell(payload, fanout, msgs int, opts OpointsOptions) (OpointCell, error) {
	params := timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
	perTopic := msgs / opts.Topics
	if perTopic == 0 {
		perTopic = 1
	}
	topics := make([]spec.Topic, opts.Topics)
	ids := make([]spec.TopicID, opts.Topics)
	for i := range topics {
		topics[i] = spec.Topic{
			ID:            spec.TopicID(i + 1),
			Category:      -1,
			Period:        20 * time.Millisecond,
			Deadline:      time.Second,
			LossTolerance: spec.LossUnbounded,
			Retention:     8,
			Destination:   spec.DestEdge,
			PayloadSize:   payload,
		}
		ids[i] = topics[i].ID
	}
	engineCfg := core.FRAMEConfig(params)
	engineCfg.MessageBufferCap = perTopic

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	var net transport.Network
	listen := "primary"
	switch opts.Net {
	case "mem":
		net = transport.NewMem()
	case "tcp":
		// Real loopback sockets: egress conns expose fds, so the flusher
		// pool's kernel submission backend engages where the kernel allows.
		net = &transport.TCP{DialTimeout: 2 * time.Second}
		listen = "127.0.0.1:0"
	default:
		return OpointCell{}, fmt.Errorf("unknown net %q (want mem or tcp)", opts.Net)
	}
	b, err := broker.New(broker.Options{
		Engine:     engineCfg,
		Role:       broker.RolePrimary,
		ListenAddr: listen,
		Network:    net,
		Clock:      clock,
		Topics:     topics,
		NoUring:    opts.NoUring,
		// Lossless operating point: a full ring blocks dispatch instead of
		// shedding, so every published message is eventually delivered and
		// elapsed time measures capacity, not the loss policy.
		EgressDepth:  opts.Depth,
		EgressNoShed: true,
		Logger:       quietLogger(),
	})
	if err != nil {
		return OpointCell{}, err
	}
	b.Start()
	defer b.Stop()

	subs := make([]*client.Subscriber, fanout)
	for i := range subs {
		subs[i], err = client.NewSubscriber(client.SubscriberOptions{
			Name:        fmt.Sprintf("opoint-sub-%d", i),
			Topics:      ids,
			BrokerAddrs: []string{b.Addr()},
			Network:     net,
			Clock:       clock,
			Logger:      quietLogger(),
		})
		if err != nil {
			return OpointCell{}, err
		}
		defer subs[i].Close()
	}
	for deadline := time.Now().Add(5 * time.Second); b.Health().EgressSubs < fanout; {
		if time.Now().After(deadline) {
			return OpointCell{}, fmt.Errorf("only %d of %d subscriptions registered", b.Health().EgressSubs, fanout)
		}
		time.Sleep(time.Millisecond)
	}

	total := opts.Topics * perTopic
	es0 := b.EgressStats()
	begin := time.Now()
	// One flat-out publisher: interval 0 means the only pacing is the
	// backpressure the lossless pipeline itself applies.
	if err := publishPaced(net, b.Addr(), clock, ids, perTopic, 0); err != nil {
		return OpointCell{}, err
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		n := uint64(0)
		for _, sub := range subs {
			n += received(sub, ids)
		}
		if n >= uint64(total*fanout) {
			break
		}
		if time.Now().After(deadline) {
			return OpointCell{}, fmt.Errorf("subscribers got %d of %d before timeout", n, total*fanout)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(begin)
	es1 := b.EgressStats()
	delivered := total * fanout
	perSec := float64(delivered) / elapsed.Seconds()
	return OpointCell{
		Payload:     payload,
		Fanout:      fanout,
		Published:   total,
		Delivered:   delivered,
		Elapsed:     elapsed,
		MsgsPer:     perSec,
		MBPer:       perSec * float64(payload) / (1 << 20),
		NsPerMsg:    float64(elapsed.Nanoseconds()) / float64(delivered),
		SyscallsPer: float64(es1.WriteSyscalls-es0.WriteSyscalls) / float64(delivered),
		Kernel:      es1.KernelSubmit && es1.SubmittedBatches > es0.SubmittedBatches,
	}, nil
}

// Format renders the grid as a table.
func (r *OpointsResult) Format() string {
	var sb strings.Builder
	fmt.Fprintln(&sb, "Operating points: lossless delivery capacity, payload × fan-out")
	fmt.Fprintf(&sb, "%8s  %7s  %10s  %10s  %12s  %10s  %10s  %13s  %6s\n",
		"payload", "fanout", "delivered", "elapsed", "msgs/sec", "MB/sec", "ns/msg", "syscalls/msg", "uring")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%8d  %7d  %10d  %10v  %12.0f  %10.2f  %10.0f  %13.4f  %6v\n",
			c.Payload, c.Fanout, c.Delivered, c.Elapsed.Round(time.Millisecond),
			c.MsgsPer, c.MBPer, c.NsPerMsg, c.SyscallsPer, c.Kernel)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// WriteCSV stores one row per cell.
func (r *OpointsResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "payload_bytes,fanout,published,delivered,elapsed_seconds,msgs_per_sec,mb_per_sec,ns_per_msg,syscalls_per_msg,kernel_submit"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%.6f,%.1f,%.3f,%.1f,%.4f,%v\n",
			c.Payload, c.Fanout, c.Published, c.Delivered, c.Elapsed.Seconds(), c.MsgsPer, c.MBPer, c.NsPerMsg, c.SyscallsPer, c.Kernel); err != nil {
			return err
		}
	}
	return nil
}

// WriteBenchJSON serializes the grid in the BenchRow shape BENCH_EGRESS.json
// uses, so frame-benchdiff gates BENCH_OPOINTS.json exactly like the Go
// benchmark baseline. Each cell contributes two rows: Opoint/payload=N/
// fanout=M with ns_per_op = nanoseconds per delivered message, and
// OpointSyscalls/payload=N/fanout=M with ns_per_op = egress write syscalls
// per delivered message — so syscall-batching regressions trip the same
// gate that catches throughput regressions. bytes_per_op records the
// payload so the baseline is self-describing (constant per cell, never a
// regression axis).
func (r *OpointsResult) WriteBenchJSON(w io.Writer) error {
	rows := make([]BenchRow, 0, 2*len(r.Cells))
	for _, c := range r.Cells {
		rows = append(rows, BenchRow{
			Name:       fmt.Sprintf("Opoint/payload=%d/fanout=%d", c.Payload, c.Fanout),
			Iterations: int64(c.Delivered),
			NsPerOp:    c.NsPerMsg,
			BytesPerOp: float64(c.Payload),
		})
	}
	for _, c := range r.Cells {
		rows = append(rows, BenchRow{
			Name:       fmt.Sprintf("OpointSyscalls/payload=%d/fanout=%d", c.Payload, c.Fanout),
			Iterations: int64(c.Delivered),
			NsPerOp:    c.SyscallsPer,
			BytesPerOp: float64(c.Payload),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
