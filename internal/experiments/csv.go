package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/simcluster"
)

// This file exports every regenerated table and figure as CSV so the
// series can be re-plotted against the paper's figures directly
// (frame-bench -csv <dir> writes one file per experiment).

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(rows); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: csv: %w", err)
	}
	return nil
}

func f1(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func msCSV(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
}

// WriteCSV exports the table: one row per
// (workload, Di, Li, variant) with mean and 95% CI.
func (t *TableResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"workload", "di_ms", "li", "variant", "mean_pct", "ci95_pct", "runs"}}
	for _, total := range t.Workloads {
		for _, g := range groups() {
			cells := t.Rows[total][g]
			if cells == nil {
				continue
			}
			di, li := g.Label()
			for _, v := range simcluster.Variants {
				cell := cells[v]
				rows = append(rows, []string{
					strconv.Itoa(total), di, li, v.String(),
					f1(cell.Runs.Mean()), f1(cell.Runs.CI95()),
					strconv.Itoa(len(cell.Runs)),
				})
			}
		}
	}
	return writeAll(w, rows)
}

// WriteCSV exports Fig. 7: one row per (workload, variant) with the three
// module utilizations.
func (f *Fig7Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"workload", "variant", "primary_delivery_pct", "primary_proxy_pct", "backup_proxy_pct"}}
	pts := append([]Fig7Point(nil), f.Points...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Workload != pts[j].Workload {
			return pts[i].Workload < pts[j].Workload
		}
		return pts[i].Variant < pts[j].Variant
	})
	for _, p := range pts {
		rows = append(rows, []string{
			strconv.Itoa(p.Workload), p.Variant.String(),
			f1(p.PrimaryDelivery.Mean()), f1(p.PrimaryProxy.Mean()), f1(p.BackupProxy.Mean()),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV exports Fig. 8's 24-hour ΔBS series: one row per sample.
func (f *Fig8Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"t_seconds", "delta_bs_ms"}}
	for i, s := range f.Series {
		at := time.Duration(i) * f.SampleEvery
		rows = append(rows, []string{
			strconv.FormatFloat(at.Seconds(), 'f', 0, 64), msCSV(s),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV exports Fig. 9: one row per delivered message of each tracked
// topic under each configuration.
func (f *Fig9Result) WriteCSV(w io.Writer) error {
	rows := [][]string{{"variant", "category", "seq", "latency_ms", "recovered"}}
	for _, s := range f.Series {
		for _, pt := range s.Points {
			rows = append(rows, []string{
				s.Variant.String(), strconv.Itoa(s.Category),
				strconv.FormatUint(pt.Seq, 10), msCSV(pt.Latency),
				strconv.FormatBool(pt.Recovered),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV exports the multi-edge sweep: one row per edge count.
func (m *MultiEdgeResult) WriteCSV(w io.Writer) error {
	rows := [][]string{{"edges", "cloud_cpu_pct", "cloud_p99_ms", "edge_latency_ok_pct", "cloud_latency_ok_pct", "loss_ok_pct"}}
	for _, r := range m.Rows {
		rows = append(rows, []string{
			strconv.Itoa(r.Edges), f1(r.CloudUtilization), msCSV(r.CloudQueueP99),
			f1(r.EdgeLatencySuccess), f1(r.CloudLatencySuccess), f1(r.LossSuccess),
		})
	}
	return writeAll(w, rows)
}
