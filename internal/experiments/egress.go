// Slow-subscriber egress experiment: fan-out delivery throughput of a live
// broker with and without a wedged subscriber sharing the egress path.
//
// Like lanescale, this is a property of the real runtime, not the simulator:
// the asynchronous egress exists so that one subscriber that stops reading
// cannot stall the EDF lanes or its healthy siblings. The experiment runs the
// same fan-out burst twice — once with only healthy subscribers, once with an
// extra subscriber that never reads — over the in-process network (where
// backpressure reaches the broker synchronously instead of pooling in kernel
// socket buffers) and reports the healthy side's throughput in both regimes
// plus the broker's shed/eviction counters for the wedged one.

package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
	"repro/internal/wire"
)

// EgressOptions parameterizes the slow-subscriber fan-out run.
type EgressOptions struct {
	// Subs is the healthy subscriber count; 0 means 4.
	Subs int
	// Depth is the per-subscriber egress ring depth; 0 means 256.
	Depth int
	// Topics is the topic count; 0 means 32.
	Topics int
	// PerTopic is how many messages each topic publishes; 0 means 100.
	PerTopic int
	// Publishers is the number of concurrent publishing connections;
	// 0 means 2.
	Publishers int
	// Interval paces each publisher between frames, like a Ti-driven
	// workload; 0 means 200µs. (A flat-out burst would overflow every
	// ring at once and measure the shed policy, not the isolation.)
	Interval time.Duration
}

func (o EgressOptions) withDefaults() EgressOptions {
	if o.Subs == 0 {
		o.Subs = 4
	}
	if o.Depth == 0 {
		o.Depth = 256
	}
	if o.Topics == 0 {
		o.Topics = 32
	}
	if o.PerTopic == 0 {
		o.PerTopic = 100
	}
	if o.Publishers == 0 {
		o.Publishers = 2
	}
	if o.Interval == 0 {
		o.Interval = 200 * time.Microsecond
	}
	return o
}

// EgressPoint is one measured regime.
type EgressPoint struct {
	Stalled    bool // whether a never-reading subscriber shared the broker
	Messages   int  // delivered to the healthy subscribers, total
	Elapsed    time.Duration
	Throughput float64 // healthy deliveries per second
	Shed       uint64
	Evictions  uint64
}

// EgressResult is the two-regime outcome.
type EgressResult struct {
	Subs   int
	Depth  int
	Points []EgressPoint
}

// RunEgress measures healthy-subscriber fan-out throughput without and with a
// wedged subscriber. The isolation the per-subscriber rings provide shows up
// as the ratio between the two points staying near 1.0, with the wedged run
// shedding within Li and ending in an eviction rather than a stall.
func RunEgress(cfg Config, opts EgressOptions) (*EgressResult, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	res := &EgressResult{Subs: opts.Subs, Depth: opts.Depth}
	for _, stalled := range []bool{false, true} {
		cfg.progress("egress: subs=%d depth=%d stalled=%v", opts.Subs, opts.Depth, stalled)
		p, err := runEgressPoint(stalled, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: egress stalled=%v: %w", stalled, err)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

func runEgressPoint(stalled bool, opts EgressOptions) (EgressPoint, error) {
	params := timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
	topics := make([]spec.Topic, opts.Topics)
	ids := make([]spec.TopicID, opts.Topics)
	for i := range topics {
		topics[i] = spec.Topic{
			ID:       spec.TopicID(i + 1),
			Category: -1,
			Period:   20 * time.Millisecond,
			Deadline: time.Second,
			// Li bounds how many consecutive frames the wedged
			// subscriber's ring may shed before it is evicted.
			LossTolerance: 8,
			Retention:     8,
			Destination:   spec.DestEdge,
			PayloadSize:   64,
		}
		ids[i] = topics[i].ID
	}
	engineCfg := core.FRAMEConfig(params)
	engineCfg.MessageBufferCap = opts.PerTopic

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	b, err := broker.New(broker.Options{
		Engine:      engineCfg,
		Role:        broker.RolePrimary,
		ListenAddr:  "primary",
		Network:     net,
		Clock:       clock,
		EgressDepth: opts.Depth,
		Topics:      topics,
		Logger:      quietLogger(),
	})
	if err != nil {
		return EgressPoint{}, err
	}
	b.Start()
	defer b.Stop()

	subs := make([]*client.Subscriber, opts.Subs)
	for i := range subs {
		subs[i], err = client.NewSubscriber(client.SubscriberOptions{
			Name:        fmt.Sprintf("egress-sub-%d", i),
			Topics:      ids,
			BrokerAddrs: []string{b.Addr()},
			Network:     net,
			Clock:       clock,
			Logger:      quietLogger(),
		})
		if err != nil {
			return EgressPoint{}, err
		}
		defer subs[i].Close()
	}

	want := opts.Subs
	if stalled {
		nc, err := net.Dial(b.Addr())
		if err != nil {
			return EgressPoint{}, err
		}
		wedged := transport.NewConn(nc)
		defer wedged.Close()
		if err := wedged.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleSubscriber, Name: "egress-wedged"}); err != nil {
			return EgressPoint{}, err
		}
		if err := wedged.Send(&wire.Frame{Type: wire.TypeSubscribe, Topics: ids}); err != nil {
			return EgressPoint{}, err
		}
		// The connection is never read again: over net.Pipe the broker's
		// next write to it wedges, its ring fills, and the shed/evict
		// policy takes over.
		want++
	}
	for deadline := time.Now().Add(2 * time.Second); b.Health().EgressSubs < want; {
		if time.Now().After(deadline) {
			return EgressPoint{}, fmt.Errorf("only %d of %d subscriptions registered", b.Health().EgressSubs, want)
		}
		time.Sleep(time.Millisecond)
	}

	total := opts.Topics * opts.PerTopic
	begin := time.Now()
	errCh := make(chan error, opts.Publishers)
	for p := 0; p < opts.Publishers; p++ {
		own := ids[p*len(ids)/opts.Publishers : (p+1)*len(ids)/opts.Publishers]
		go func() { errCh <- publishPaced(net, b.Addr(), clock, own, opts.PerTopic, opts.Interval) }()
	}
	for p := 0; p < opts.Publishers; p++ {
		if err := <-errCh; err != nil {
			return EgressPoint{}, err
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		n := uint64(0)
		for _, sub := range subs {
			n += received(sub, ids)
		}
		if n >= uint64(total*opts.Subs) {
			break
		}
		if time.Now().After(deadline) {
			return EgressPoint{}, fmt.Errorf("healthy subscribers got %d of %d before timeout", n, total*opts.Subs)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(begin)
	stats := b.EgressStats()
	return EgressPoint{
		Stalled:    stalled,
		Messages:   total * opts.Subs,
		Elapsed:    elapsed,
		Throughput: float64(total*opts.Subs) / elapsed.Seconds(),
		Shed:       stats.Shed,
		Evictions:  stats.Evictions,
	}, nil
}

// publishPaced publishes every message of the owned topics over one raw
// connection, sleeping between frames the way a Ti-driven publisher would.
func publishPaced(net transport.Network, addr string, clock func() time.Duration, own []spec.TopicID, perTopic int, interval time.Duration) error {
	nc, err := net.Dial(addr)
	if err != nil {
		return err
	}
	conn := transport.NewConn(nc)
	defer conn.Close()
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RolePublisher, Name: "egress-pub"}); err != nil {
		return err
	}
	payload := make([]byte, 64)
	for seq := uint64(1); seq <= uint64(perTopic); seq++ {
		for _, id := range own {
			f := &wire.Frame{Type: wire.TypePublish, Msg: wire.Message{
				Topic: id, Seq: seq, Created: clock(), Payload: payload,
			}}
			if err := conn.Send(f); err != nil {
				return err
			}
			time.Sleep(interval)
		}
	}
	return nil
}

// Format renders both regimes with the stalled/healthy throughput ratio.
func (r *EgressResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Slow-subscriber egress: healthy fan-out throughput, %d subs, ring depth %d\n", r.Subs, r.Depth)
	fmt.Fprintf(&sb, "%8s  %10s  %10s  %12s  %8s  %6s  %6s\n",
		"stalled", "messages", "elapsed", "msgs/sec", "vs base", "shed", "evict")
	var base float64
	for i, p := range r.Points {
		if i == 0 {
			base = p.Throughput
		}
		ratio := 0.0
		if base > 0 {
			ratio = p.Throughput / base
		}
		fmt.Fprintf(&sb, "%8v  %10d  %10v  %12.0f  %7.2fx  %6d  %6d\n",
			p.Stalled, p.Messages, p.Elapsed.Round(time.Millisecond), p.Throughput, ratio, p.Shed, p.Evictions)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// WriteCSV stores both regimes as one row each.
func (r *EgressResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "stalled,messages,elapsed_seconds,throughput_msgs_per_sec,shed,evictions"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%v,%d,%.6f,%.1f,%d,%d\n",
			p.Stalled, p.Messages, p.Elapsed.Seconds(), p.Throughput, p.Shed, p.Evictions); err != nil {
			return err
		}
	}
	return nil
}
