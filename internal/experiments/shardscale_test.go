package experiments

import (
	"runtime"
	"strings"
	"testing"
)

func TestRunShardScaleSmallWorkload(t *testing.T) {
	res, err := RunShardScale(Config{}, ShardScaleOptions{
		Shards:   []int{1, 2},
		Topics:   8,
		PerTopic: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Messages != 8*25 {
			t.Errorf("shards=%d delivered %d, want %d", p.Shards, p.Messages, 8*25)
		}
		if p.Throughput <= 0 {
			t.Errorf("shards=%d throughput %f", p.Shards, p.Throughput)
		}
	}
	text := res.Format()
	if !strings.Contains(text, "Shard scaling") || strings.Count(text, "\n") != 3 {
		t.Errorf("format:\n%s", text)
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 3 { // header + 2 points
		t.Errorf("csv rows = %d:\n%s", lines, csv.String())
	}
	if _, err := RunShardScale(Config{}, ShardScaleOptions{Shards: []int{0}}); err == nil {
		t.Error("zero shard count accepted")
	}
}

// TestRunShardScaleSpeedupGate: armed where the host can express the
// scaling (CPUs ≥ largest swept count), skipped where it cannot — CI
// asserts real scaling only where it can exist.
func TestRunShardScaleSpeedupGate(t *testing.T) {
	// {1, 1} never speeds up and fits any host: the gate must fire.
	if _, err := RunShardScale(Config{}, ShardScaleOptions{
		Shards: []int{1, 1}, Topics: 4, PerTopic: 10, MinSpeedup: 1e9,
	}); err == nil {
		t.Error("unreachable gate passed on a capable host")
	}
	// A sweep topping out above the host's CPU count skips the gate. Keep
	// the oversized point small so huge-core hosts don't pay for it.
	if runtime.NumCPU() > 16 {
		t.Skip("host too wide to build a CPUs < shards sweep cheaply")
	}
	res, err := RunShardScale(Config{}, ShardScaleOptions{
		Shards: []int{1, runtime.NumCPU() + 1}, Topics: 4, PerTopic: 10, MinSpeedup: 1e9,
	})
	if err != nil {
		t.Fatalf("gate not skipped on an undersized host: %v", err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
}
