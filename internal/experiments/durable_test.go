package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestRunDurableSmallWorkload runs a CI-sized three-mode sweep. The p99
// ordering gate is off: a loaded runner can compress the mem/group gap,
// and the full gate runs in frame-bench (and the durable-smoke CI job)
// at real concurrency.
func TestRunDurableSmallWorkload(t *testing.T) {
	res, err := RunDurable(Config{}, DurableOptions{
		Publishers: 4,
		Messages:   8,
		Reps:       1,
		Gate:       false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d, want mem + group + always", len(res.Cells))
	}
	wantModes := []string{"mem", "group", "always"}
	for i, c := range res.Cells {
		if c.Mode != wantModes[i] {
			t.Errorf("cell %d mode = %q, want %q", i, c.Mode, wantModes[i])
		}
		if c.Published != 4*8 {
			t.Errorf("mode %s published %d of %d", c.Mode, c.Published, 4*8)
		}
		if c.P99 == 0 && c.Mode != "mem" {
			t.Errorf("mode %s collected no latency tail", c.Mode)
		}
		if c.P99 > c.Max {
			t.Errorf("mode %s p99 %v above max %v", c.Mode, c.P99, c.Max)
		}
	}

	var csv, js strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(csv.String(), "\n"); got != 4 {
		t.Errorf("CSV has %d lines, want header + 3 modes", got)
	}
	if err := res.WriteBenchJSON(&js); err != nil {
		t.Fatal(err)
	}
	// The committed baseline gates only the fsync-dominated modes; the
	// in-memory p99 is scheduler noise and must stay out of the JSON.
	if strings.Contains(js.String(), "mode=mem") {
		t.Error("bench JSON includes the mem mode")
	}
	for _, mode := range []string{"mode=group", "mode=always"} {
		if !strings.Contains(js.String(), mode) {
			t.Errorf("bench JSON missing %s", mode)
		}
	}
}

// TestDurableGateOrdering exercises both failure directions of the p99
// gate on synthetic cells.
func TestDurableGateOrdering(t *testing.T) {
	mk := func(mem, group, always time.Duration) *DurableResult {
		return &DurableResult{Publishers: 8, Cells: []DurableCell{
			{Mode: "mem", P99: mem},
			{Mode: "group", P99: group},
			{Mode: "always", P99: always},
		}}
	}
	if err := mk(time.Microsecond, time.Millisecond, 10*time.Millisecond).checkOrdering(); err != nil {
		t.Errorf("healthy ordering rejected: %v", err)
	}
	if err := mk(2*time.Millisecond, time.Millisecond, 10*time.Millisecond).checkOrdering(); err == nil {
		t.Error("free durability (mem >= group) passed the gate")
	}
	if err := mk(time.Microsecond, 10*time.Millisecond, time.Millisecond).checkOrdering(); err == nil {
		t.Error("unamortized fsync (group >= always) passed the gate")
	}
}
