package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simcluster"
	"repro/internal/spec"
)

// quickConfig keeps experiment tests fast: one run, small workload, short
// windows. The paper-scale defaults are exercised by the bench harness.
func quickConfig() Config {
	return Config{
		Runs:         1,
		Measure:      1200 * time.Millisecond,
		CrashMeasure: 1500 * time.Millisecond,
		Warmup:       300 * time.Millisecond,
		Drain:        time.Second,
		SpeedNoise:   0.01,
		Seed:         7,
		Workloads:    []int{1525},
	}
}

func TestGroupsMatchTable2Rows(t *testing.T) {
	gs := groups()
	if len(gs) != 6 {
		t.Fatalf("groups = %d, want 6", len(gs))
	}
	di, li := gs[4].Label()
	if di != "100" || li != "inf" {
		t.Errorf("category 4 label = %s/%s, want 100/inf", di, li)
	}
	di, li = gs[0].Label()
	if di != "50" || li != "0" {
		t.Errorf("category 0 label = %s/%s", di, li)
	}
}

func TestRunTable4SmallWorkload(t *testing.T) {
	res, err := RunTable4(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "Table 4" || len(res.Workloads) != 1 {
		t.Fatalf("result header: %+v", res)
	}
	rows := res.Rows[1525]
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 groups", len(rows))
	}
	// At 1525 topics every configuration meets every loss-tolerance
	// requirement (§VI: "All four configurations had 100% success rate for
	// 1525 and 4525 topics").
	for g, cells := range rows {
		for v, cell := range cells {
			if m := cell.Runs.Mean(); m != 100 {
				t.Errorf("group %+v variant %v: success %.1f, want 100", g, v, m)
			}
		}
	}
	text := res.Format()
	for _, want := range []string{"Table 4", "Workload = 1525 Topics", "FRAME+", "FCFS-", "inf"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted table missing %q:\n%s", want, text)
		}
	}
}

func TestRunTable5SmallWorkload(t *testing.T) {
	res, err := RunTable5(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows[1525]
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for g, cells := range rows {
		for v, cell := range cells {
			if m := cell.Runs.Mean(); m < 99.5 {
				t.Errorf("group %+v variant %v: latency success %.2f, want ≈100 at light load", g, v, m)
			}
		}
	}
}

func TestRunFig7SmallWorkload(t *testing.T) {
	res, err := RunFig7(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4 (one per variant)", len(res.Points))
	}
	util := make(map[simcluster.Variant]float64, 4)
	for _, p := range res.Points {
		util[p.Variant] = p.PrimaryDelivery.Mean()
		if p.PrimaryProxy.Mean() <= 0 {
			t.Errorf("%v: zero proxy utilization", p.Variant)
		}
	}
	// Fig 7(a) ordering: FRAME+ < FRAME < FCFS, and FCFS > FCFS−.
	if !(util[simcluster.VariantFRAMEPlus] < util[simcluster.VariantFRAME]) {
		t.Errorf("FRAME+ %.1f not below FRAME %.1f", util[simcluster.VariantFRAMEPlus], util[simcluster.VariantFRAME])
	}
	if !(util[simcluster.VariantFRAME] < util[simcluster.VariantFCFS]) {
		t.Errorf("FRAME %.1f not below FCFS %.1f", util[simcluster.VariantFRAME], util[simcluster.VariantFCFS])
	}
	if !(util[simcluster.VariantFCFSMinus] < util[simcluster.VariantFCFS]) {
		t.Errorf("FCFS− %.1f not below FCFS %.1f", util[simcluster.VariantFCFSMinus], util[simcluster.VariantFCFS])
	}
	text := res.Format()
	for _, want := range []string{"Fig 7(a)", "Fig 7(b)", "Fig 7(c)", "1525"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted figure missing %q", want)
		}
	}
}

func TestRunFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 8 validation run is slow")
	}
	cfg := quickConfig()
	cfg.CrashMeasure = 2 * time.Second
	res, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != int(24*time.Hour/res.SampleEvery) {
		t.Fatalf("series has %d samples", len(res.Series))
	}
	for i, s := range res.Series {
		if s < res.SetupDeltaBS {
			t.Fatalf("sample %d (%v) below setup lower bound %v — Prop. 1 safety violated", i, s, res.SetupDeltaBS)
		}
	}
	if res.PeakDeltaBS < res.SetupDeltaBS+100*time.Millisecond {
		t.Errorf("peak %v misses the +104ms spike", res.PeakDeltaBS)
	}
	// The paper's claim: no loss-tolerance violation despite ΔBS variation,
	// because the configuration used a measured lower bound.
	if res.CrashLossSuccess != 100 {
		t.Errorf("crash-at-spike loss success = %.1f%%, want 100", res.CrashLossSuccess)
	}
	text := res.Format()
	if !strings.Contains(text, "Fig 8") || !strings.Contains(text, "hourly mean") {
		t.Errorf("format output incomplete:\n%s", text)
	}
}

func TestRunFig9(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 9 runs the 7525-topic workload")
	}
	cfg := quickConfig()
	cfg.CrashMeasure = 2 * time.Second
	res, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != 7525 {
		t.Fatalf("workload = %d", res.Workload)
	}
	if len(res.Series) != 12 {
		t.Fatalf("series = %d, want 12 (3 categories × 4 variants)", len(res.Series))
	}
	peaks := make(map[simcluster.Variant]time.Duration)
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Errorf("%v cat %d: empty series", s.Variant, s.Category)
		}
		if s.Category == 2 && s.PeakRecoveryLatency > peaks[s.Variant] {
			peaks[s.Variant] = s.PeakRecoveryLatency
		}
	}
	// The Fig. 9(b) headline: FCFS− pays a large recovery latency penalty
	// (full Backup Buffer drain), FRAME does not.
	if peaks[simcluster.VariantFCFSMinus] <= peaks[simcluster.VariantFRAME] {
		t.Errorf("FCFS− recovery peak %v not above FRAME %v",
			peaks[simcluster.VariantFCFSMinus], peaks[simcluster.VariantFRAME])
	}
	text := res.Format()
	for _, want := range []string{"Category 0", "Category 2", "Category 5", "recovery peak"} {
		if !strings.Contains(text, want) {
			t.Errorf("format output missing %q", want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Runs != 5 || cfg.Measure != 4*time.Second || cfg.CrashMeasure != 8*time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
	if got := cfg.sizesOr([]int{5}); len(got) != 1 || got[0] != 5 {
		t.Errorf("sizesOr default = %v", got)
	}
	cfg.Workloads = []int{1525}
	if got := cfg.sizesOr([]int{5}); got[0] != 1525 {
		t.Errorf("sizesOr override = %v", got)
	}
}

func TestWorkloadListsMatchPaper(t *testing.T) {
	if len(Table4Workloads) != 3 || Table4Workloads[0] != 7525 {
		t.Errorf("Table4Workloads = %v", Table4Workloads)
	}
	if len(Table5Workloads) != 4 || Table5Workloads[0] != 4525 {
		t.Errorf("Table5Workloads = %v", Table5Workloads)
	}
	if len(Fig7Workloads) != 5 {
		t.Errorf("Fig7Workloads = %v", Fig7Workloads)
	}
	for _, size := range append(append([]int(nil), Table4Workloads...), Table5Workloads...) {
		if _, err := spec.NewWorkload(size); err != nil {
			t.Errorf("workload %d unconstructible: %v", size, err)
		}
	}
}

func TestRunMultiEdgeSweep(t *testing.T) {
	cfg := quickConfig()
	cfg.Workloads = []int{1, 2} // override: edge counts for this experiment
	res, err := RunMultiEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[1].CloudUtilization <= res.Rows[0].CloudUtilization {
		t.Errorf("cloud utilization did not grow with edges: %.2f then %.2f",
			res.Rows[0].CloudUtilization, res.Rows[1].CloudUtilization)
	}
	for _, r := range res.Rows {
		if r.EdgeLatencySuccess < 99.5 {
			t.Errorf("edges=%d: edge-bound latency success %.2f, want ≈100", r.Edges, r.EdgeLatencySuccess)
		}
		if r.LossSuccess != 100 {
			t.Errorf("edges=%d: loss success %.1f, want 100 (fault-free)", r.Edges, r.LossSuccess)
		}
	}
	text := res.Format()
	if !strings.Contains(text, "Extension") || !strings.Contains(text, "cloud P99") {
		t.Errorf("format output incomplete:\n%s", text)
	}
}

func TestExperimentsPropagateWorkloadErrors(t *testing.T) {
	cfg := quickConfig()
	cfg.Workloads = []int{10} // below the fixed 25-topic minimum
	if _, err := RunTable4(cfg); err == nil {
		t.Error("Table 4 accepted unconstructible workload")
	}
	if _, err := RunTable5(cfg); err == nil {
		t.Error("Table 5 accepted unconstructible workload")
	}
	if _, err := RunFig7(cfg); err == nil {
		t.Error("Fig 7 accepted unconstructible workload")
	}
	if _, err := RunMultiEdge(Config{Workloads: []int{0}}); err == nil {
		t.Error("multi-edge accepted zero edges")
	}
}

func TestProgressCallbackInvoked(t *testing.T) {
	cfg := quickConfig()
	var lines int
	cfg.Progress = func(string, ...any) { lines++ }
	if _, err := RunFig7(cfg); err != nil {
		t.Fatal(err)
	}
	if lines != 4 { // 1 workload × 4 variants × 1 run
		t.Errorf("progress lines = %d, want 4", lines)
	}
}

func TestRunGatewayChurnSmallWorkload(t *testing.T) {
	res, err := RunGatewayChurn(Config{}, GatewayChurnOptions{
		Clients:   200,
		ChurnRate: 200,
		Topics:    8,
		Window:    500 * time.Millisecond,
		Probes:    2,
		MinChurn:  -1, // a loaded CI runner may under-churn; the full gate runs in frame-bench
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sustained < 200 {
		t.Errorf("sustained %d clients, want the full population of 200", res.Sustained)
	}
	if res.Connects == 0 {
		t.Error("churn loop never replaced a client")
	}
	if res.Delivered != res.Published {
		t.Errorf("probes saw %d of %d messages under churn", res.Delivered, res.Published)
	}
	if res.Evictions != 0 {
		t.Errorf("%d draining clients were evicted", res.Evictions)
	}
	if res.P99 == 0 {
		t.Error("no latency samples collected")
	}
}

func TestRunEgressSmallWorkload(t *testing.T) {
	res, err := RunEgress(Config{}, EgressOptions{
		Subs:     2,
		Depth:    32,
		Topics:   4,
		PerTopic: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want healthy + stalled", len(res.Points))
	}
	base, degraded := res.Points[0], res.Points[1]
	if base.Stalled || !degraded.Stalled {
		t.Fatalf("regime order wrong: %+v", res.Points)
	}
	// Both regimes must deliver the full workload to the healthy side.
	for _, p := range res.Points {
		if p.Messages != 2*4*50 {
			t.Errorf("stalled=%v delivered %d, want %d", p.Stalled, p.Messages, 2*4*50)
		}
	}
	if base.Shed != 0 || base.Evictions != 0 {
		t.Errorf("healthy regime shed=%d evictions=%d, want 0/0", base.Shed, base.Evictions)
	}
	if degraded.Shed == 0 {
		t.Error("stalled regime never shed despite a wedged subscriber")
	}
	if degraded.Evictions == 0 {
		t.Error("wedged subscriber exhausted Li without eviction")
	}
}
