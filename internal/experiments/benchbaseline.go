package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchRow is one benchmark sample in the BENCH_EGRESS.json baseline
// format written by `make bench-json`.
type BenchRow struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// LoadBenchRows parses a bench-json baseline file.
func LoadBenchRows(r io.Reader) ([]BenchRow, error) {
	var rows []BenchRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, fmt.Errorf("bench baseline: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench baseline: no rows")
	}
	return rows, nil
}

// CompareBaseline judges fresh benchmark rows against a committed
// baseline: any benchmark whose ns/op grew by more than maxRegressPct
// percent, that starts allocating when the baseline did not, or whose
// bytes/op grew past the same percentage budget plus an 8-byte absolute
// slack, is a violation. The slack exists because near-zero baselines
// (pool-refill amortization reports 2-6 B/op) would otherwise flag on
// integer jitter; it is far below the ~16-byte cost of a real escaped
// header. Benchmarks present on only one side are violations too —
// a silently dropped benchmark would otherwise retire its own guard.
// Faster-than-baseline results are never violations; refresh the
// committed file to ratchet them in.
func CompareBaseline(base, fresh []BenchRow, maxRegressPct float64) []string {
	var v []string
	fm := make(map[string]BenchRow, len(fresh))
	for _, r := range fresh {
		fm[r.Name] = r
	}
	for _, b := range base {
		f, ok := fm[b.Name]
		if !ok {
			v = append(v, fmt.Sprintf("%s: in baseline but not in fresh run", b.Name))
			continue
		}
		delete(fm, b.Name)
		if b.NsPerOp > 0 {
			growth := 100 * (f.NsPerOp - b.NsPerOp) / b.NsPerOp
			if growth > maxRegressPct {
				v = append(v, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (+%.1f%%, budget %.0f%%)",
					b.Name, f.NsPerOp, b.NsPerOp, growth, maxRegressPct))
			}
		}
		if b.AllocsPerOp == 0 && f.AllocsPerOp > 0 {
			v = append(v, fmt.Sprintf("%s: %.0f allocs/op vs baseline 0", b.Name, f.AllocsPerOp))
		}
		if budget := b.BytesPerOp*(1+maxRegressPct/100) + 8; f.BytesPerOp > budget {
			v = append(v, fmt.Sprintf("%s: %.0f B/op vs baseline %.0f (budget %.0f)",
				b.Name, f.BytesPerOp, b.BytesPerOp, budget))
		}
	}
	for name := range fm {
		v = append(v, fmt.Sprintf("%s: in fresh run but not in baseline (refresh BENCH_EGRESS.json)", name))
	}
	return v
}
