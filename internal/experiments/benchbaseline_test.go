package experiments

import (
	"strings"
	"testing"
)

func TestLoadBenchRows(t *testing.T) {
	const sample = `[
  {"name": "BenchmarkFanout64", "iterations": 396867, "ns_per_op": 3200, "bytes_per_op": 0, "allocs_per_op": 0},
  {"name": "BenchmarkEgressWritev", "iterations": 100, "ns_per_op": 707.9, "bytes_per_op": 2, "allocs_per_op": 0}
]`
	rows, err := LoadBenchRows(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("LoadBenchRows: %v", err)
	}
	if len(rows) != 2 || rows[0].Name != "BenchmarkFanout64" || rows[1].NsPerOp != 707.9 {
		t.Fatalf("parsed %+v", rows)
	}
	if _, err := LoadBenchRows(strings.NewReader("[]")); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := LoadBenchRows(strings.NewReader("not json")); err == nil {
		t.Error("malformed baseline accepted")
	}
}

func TestCompareBaseline(t *testing.T) {
	base := []BenchRow{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 0},
		{Name: "B", NsPerOp: 500, AllocsPerOp: 0},
	}

	// Within budget (and improvements) pass.
	ok := []BenchRow{
		{Name: "A", NsPerOp: 1050, AllocsPerOp: 0}, // +5%
		{Name: "B", NsPerOp: 300, AllocsPerOp: 0},  // faster
	}
	if v := CompareBaseline(base, ok, 10); len(v) != 0 {
		t.Errorf("in-budget run flagged: %v", v)
	}

	// A >10% ns/op regression fails.
	slow := []BenchRow{
		{Name: "A", NsPerOp: 1200, AllocsPerOp: 0},
		{Name: "B", NsPerOp: 500, AllocsPerOp: 0},
	}
	if v := CompareBaseline(base, slow, 10); len(v) != 1 || !strings.Contains(v[0], "A:") {
		t.Errorf("regression verdicts = %v, want one for A", v)
	}

	// New allocations on a zero-alloc baseline fail even within the ns budget.
	alloc := []BenchRow{
		{Name: "A", NsPerOp: 1000, AllocsPerOp: 2},
		{Name: "B", NsPerOp: 500, AllocsPerOp: 0},
	}
	if v := CompareBaseline(base, alloc, 10); len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Errorf("alloc verdicts = %v", v)
	}

	// Bytes/op growth past the percentage budget plus the 8-byte slack
	// fails; jitter inside the slack does not.
	byteBase := []BenchRow{
		{Name: "A", NsPerOp: 1000, BytesPerOp: 4},
		{Name: "B", NsPerOp: 500, BytesPerOp: 100},
	}
	byteJitter := []BenchRow{
		{Name: "A", NsPerOp: 1000, BytesPerOp: 11}, // under 4*1.1+8
		{Name: "B", NsPerOp: 500, BytesPerOp: 110}, // exactly 100*1.1, inside slack
	}
	if v := CompareBaseline(byteBase, byteJitter, 10); len(v) != 0 {
		t.Errorf("in-slack bytes/op flagged: %v", v)
	}
	byteRegress := []BenchRow{
		{Name: "A", NsPerOp: 1000, BytesPerOp: 24}, // a real escaped header
		{Name: "B", NsPerOp: 500, BytesPerOp: 100},
	}
	if v := CompareBaseline(byteBase, byteRegress, 10); len(v) != 1 || !strings.Contains(v[0], "B/op") {
		t.Errorf("bytes/op verdicts = %v, want one for A", v)
	}

	// A benchmark vanishing from either side is a violation.
	if v := CompareBaseline(base, ok[:1], 10); len(v) != 1 {
		t.Errorf("missing-fresh verdicts = %v", v)
	}
	extra := append(append([]BenchRow{}, ok...), BenchRow{Name: "C", NsPerOp: 1})
	if v := CompareBaseline(base, extra, 10); len(v) != 1 {
		t.Errorf("missing-baseline verdicts = %v", v)
	}
}
