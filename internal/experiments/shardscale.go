// Shard-scaling experiment: aggregate end-to-end delivery throughput of a
// multi-pair cluster as the shard count grows.
//
// Like lane scaling, this is a property of the real runtime, not the
// discrete-event simulator: it brings up N Primary+Backup pairs plus the
// routing Directory over the in-process network, fans a fixed message
// batch across the jump-hash topic partition, and stops the clock when the
// cluster-wide subscriber holds every message. On a single-core host every
// shard count degenerates to the same schedule; the MinSpeedup gate is
// therefore armed only when the host has at least as many CPUs as the
// largest swept shard count.

package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
)

// ShardScaleOptions parameterizes the sweep.
type ShardScaleOptions struct {
	// Shards are the pair counts to sweep; nil means {1, 2, 4}.
	Shards []int
	// Topics is the cluster-wide topic count; 0 means 64.
	Topics int
	// PerTopic is how many messages each topic publishes; 0 means 200.
	PerTopic int
	// Publishers is the number of concurrent publishing goroutines; 0
	// means 4.
	Publishers int
	// MinSpeedup, when positive, fails the sweep if the last point's
	// throughput is below MinSpeedup × the first point's — the CI gate.
	// Skipped (with a progress note) when the host has fewer CPUs than
	// the largest swept shard count, where the scaling cannot exist.
	MinSpeedup float64
}

func (o ShardScaleOptions) withDefaults() ShardScaleOptions {
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4}
	}
	if o.Topics == 0 {
		o.Topics = 64
	}
	if o.PerTopic == 0 {
		o.PerTopic = 200
	}
	if o.Publishers == 0 {
		o.Publishers = 4
	}
	return o
}

// ShardScalePoint is one swept shard count.
type ShardScalePoint struct {
	Shards     int
	Messages   int
	Elapsed    time.Duration
	Throughput float64 // delivered messages per second, cluster-wide
}

// ShardScaleResult is the sweep outcome.
type ShardScaleResult struct {
	Points []ShardScalePoint
}

// Speedup is the last point's throughput over the first's.
func (r *ShardScaleResult) Speedup() float64 {
	if len(r.Points) == 0 || r.Points[0].Throughput == 0 {
		return 0
	}
	return r.Points[len(r.Points)-1].Throughput / r.Points[0].Throughput
}

// RunShardScale measures aggregate delivery throughput for each shard
// count and applies the optional MinSpeedup gate.
func RunShardScale(cfg Config, opts ShardScaleOptions) (*ShardScaleResult, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	res := &ShardScaleResult{}
	maxShards := 0
	for _, n := range opts.Shards {
		if n < 1 {
			return nil, fmt.Errorf("experiments: shard count %d must be ≥ 1", n)
		}
		if n > maxShards {
			maxShards = n
		}
		cfg.progress("shardscale: shards=%d", n)
		p, err := runShardPoint(n, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: shardscale shards=%d: %w", n, err)
		}
		res.Points = append(res.Points, p)
	}
	if opts.MinSpeedup > 0 {
		if runtime.NumCPU() < maxShards {
			cfg.progress("shardscale: %d CPUs < %d shards — speedup gate skipped", runtime.NumCPU(), maxShards)
		} else if s := res.Speedup(); s < opts.MinSpeedup {
			return res, fmt.Errorf("experiments: shardscale speedup %.2fx below required %.2fx\n%s",
				s, opts.MinSpeedup, res.Format())
		}
	}
	return res, nil
}

func runShardPoint(shards int, opts ShardScaleOptions) (ShardScalePoint, error) {
	params := timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
	topics := make([]spec.Topic, opts.Topics)
	ids := make([]spec.TopicID, opts.Topics)
	for i := range topics {
		topics[i] = spec.Topic{
			ID:          spec.TopicID(i + 1),
			Category:    -1,
			Period:      20 * time.Millisecond,
			Deadline:    time.Second,
			Retention:   8,
			Destination: spec.DestEdge,
			PayloadSize: 64,
		}
		ids[i] = topics[i].ID
	}
	engineCfg := core.FRAMEConfig(params)
	// Burst publishing, as in lanescale: the Message Buffer must hold a
	// topic's whole burst and the egress ring the whole run's.
	engineCfg.MessageBufferCap = opts.PerTopic

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	c, err := cluster.New(cluster.Config{
		Shards:      shards,
		Topics:      topics,
		Engine:      engineCfg,
		Network:     net,
		Mem:         true,
		Clock:       clock,
		Detector:    failover.Config{Period: 10 * time.Millisecond, Timeout: 30 * time.Millisecond, Misses: 3},
		EgressDepth: opts.Topics * opts.PerTopic,
		Logger:      quietLogger(),
	})
	if err != nil {
		return ShardScalePoint{}, err
	}
	defer c.Stop()
	router, err := cluster.NewRouter(cluster.RouterOptions{
		DirectoryAddr: c.Dir.Addr(), Network: net, Logger: quietLogger(),
	})
	if err != nil {
		return ShardScalePoint{}, err
	}
	sub, err := cluster.NewSubscriber(cluster.SubscriberOptions{
		Name: "shardscale-sub", Topics: ids, Router: router, Network: net,
		Clock: clock, Logger: quietLogger(),
	})
	if err != nil {
		return ShardScalePoint{}, err
	}
	defer sub.Close()
	pub, err := cluster.NewPublisher(cluster.PublisherOptions{
		Name: "shardscale-pub", Topics: topics, Router: router, Network: net,
		Clock: clock, Logger: quietLogger(),
	})
	if err != nil {
		return ShardScalePoint{}, err
	}
	defer pub.Close()

	total := opts.Topics * opts.PerTopic
	payload := make([]byte, 64)
	begin := time.Now()
	errCh := make(chan error, opts.Publishers)
	for p := 0; p < opts.Publishers; p++ {
		// Disjoint topic slices keep per-topic ordering single-writer.
		own := ids[p*len(ids)/opts.Publishers : (p+1)*len(ids)/opts.Publishers]
		go func() {
			for i := 0; i < opts.PerTopic; i++ {
				for _, id := range own {
					if _, err := pub.Publish(id, payload); err != nil {
						errCh <- err
						return
					}
				}
			}
			errCh <- nil
		}()
	}
	for p := 0; p < opts.Publishers; p++ {
		if err := <-errCh; err != nil {
			return ShardScalePoint{}, err
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for clusterReceived(sub, ids) < uint64(total) {
		if time.Now().After(deadline) {
			return ShardScalePoint{}, fmt.Errorf("delivered %d of %d before timeout", clusterReceived(sub, ids), total)
		}
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(begin)
	return ShardScalePoint{
		Shards:     shards,
		Messages:   total,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
	}, nil
}

func clusterReceived(sub *cluster.Subscriber, ids []spec.TopicID) uint64 {
	var n uint64
	for _, id := range ids {
		n += sub.Received(id)
	}
	return n
}

// Format renders the sweep with speedup over one shard.
func (r *ShardScaleResult) Format() string {
	var sb strings.Builder
	fmt.Fprintln(&sb, "Shard scaling: aggregate delivery throughput vs broker pairs")
	fmt.Fprintf(&sb, "%8s  %10s  %10s  %12s  %8s\n", "shards", "messages", "elapsed", "msgs/sec", "speedup")
	var base float64
	for i, p := range r.Points {
		if i == 0 {
			base = p.Throughput
		}
		speedup := 0.0
		if base > 0 {
			speedup = p.Throughput / base
		}
		fmt.Fprintf(&sb, "%8d  %10d  %10v  %12.0f  %7.2fx\n",
			p.Shards, p.Messages, p.Elapsed.Round(time.Millisecond), p.Throughput, speedup)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// WriteCSV stores the sweep as shards,messages,elapsed_seconds,throughput.
func (r *ShardScaleResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "shards,messages,elapsed_seconds,throughput_msgs_per_sec"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%d,%d,%.6f,%.1f\n", p.Shards, p.Messages, p.Elapsed.Seconds(), p.Throughput); err != nil {
			return err
		}
	}
	return nil
}
