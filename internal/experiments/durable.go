// Durable-publish bench: the price of "ACK = durable" at the three sync
// disciplines the durability plane offers. N concurrent publishers each
// drive their own topic flat-out and time every Publish call:
//
//   - mem:    the baseline broker — Publish returns once the frame is on
//     the wire, nothing touches disk;
//   - group:  the group-commit log — publishers park until the shared
//     fsync covering their record lands, so the cost is roughly the
//     fsync window plus one amortized fsync;
//   - always: per-record fsync (the SyncAlways discipline) — every
//     publish pays its own fsync AND queues behind every other
//     publisher's, the serialization group commit exists to remove.
//
// The headline number is publish p99 per mode, and the orderings the
// plane sells are enforced as a gate: mem < group (durability is not
// free) and group < always (group commit beats per-record fsync under
// concurrency). The second inequality is the one that needs real
// publishers: a single publisher pays the full window under group commit
// and only its own fsync under SyncAlways, so group commit only wins
// once concurrent publishers share the window — which is exactly how the
// broker runs.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
)

// DurableOptions parameterizes the durable-publish sweep.
type DurableOptions struct {
	// Publishers is the concurrent publisher count (one connection and one
	// topic each); 0 means 32. The SyncAlways queueing penalty scales with
	// this, so very small values can legitimately flip the group<always
	// ordering on a fast disk.
	Publishers int
	// Messages is the publish count per publisher; 0 means 100.
	Messages int
	// PayloadSize is the published payload in bytes; 0 means 64.
	PayloadSize int
	// FsyncInterval is the group-commit window; 0 means the broker default.
	FsyncInterval time.Duration
	// Reps runs each mode this many times and keeps the lowest p99; 0
	// means 3. Latency tails on a loaded box are noise-dominated, so
	// min-of-N is the measurement.
	Reps int
	// LogDirRoot hosts the per-run log directories; "" means os.TempDir().
	// Point it at a real filesystem — on tmpfs fsync is free and every
	// mode collapses into the baseline.
	LogDirRoot string
	// Gate enforces the p99 ordering mem < group < always when true.
	Gate bool
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.Publishers == 0 {
		o.Publishers = 32
	}
	if o.Messages == 0 {
		o.Messages = 100
	}
	if o.PayloadSize == 0 {
		o.PayloadSize = 64
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	if o.LogDirRoot == "" {
		o.LogDirRoot = os.TempDir()
	}
	return o
}

// DurableCell is one mode's measured publish-latency distribution.
type DurableCell struct {
	Mode      string // "mem", "group", or "always"
	Published int
	Elapsed   time.Duration
	P50       time.Duration
	P99       time.Duration
	Max       time.Duration
	MsgsPer   float64 // acked publishes per second
}

// DurableResult is the three-mode outcome.
type DurableResult struct {
	Publishers int
	Cells      []DurableCell
}

// durableMode describes one sync discipline as broker/publisher knobs.
type durableMode struct {
	name     string
	durable  bool
	interval time.Duration // committer window; negative = per-record fsync
}

// RunDurable measures publish p99 under the three sync disciplines and,
// when opts.Gate is set, fails unless mem < group < always holds.
func RunDurable(cfg Config, opts DurableOptions) (*DurableResult, error) {
	cfg = cfg.withDefaults()
	opts = opts.withDefaults()
	groupWindow := opts.FsyncInterval
	if groupWindow == 0 {
		groupWindow = broker.DefaultFsyncInterval
	}
	modes := []durableMode{
		{name: "mem"},
		{name: "group", durable: true, interval: groupWindow},
		{name: "always", durable: true, interval: -1},
	}
	res := &DurableResult{Publishers: opts.Publishers}
	for _, mode := range modes {
		cfg.progress("durable: mode=%s publishers=%d msgs=%d reps=%d",
			mode.name, opts.Publishers, opts.Messages, opts.Reps)
		var best DurableCell
		for rep := 0; rep < opts.Reps; rep++ {
			cell, err := runDurableCell(mode, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: durable mode=%s: %w", mode.name, err)
			}
			if rep == 0 || cell.P99 < best.P99 {
				best = cell
			}
		}
		res.Cells = append(res.Cells, best)
	}
	if opts.Gate {
		if err := res.checkOrdering(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// checkOrdering enforces the plane's two claims on the measured p99s.
func (r *DurableResult) checkOrdering() error {
	byMode := map[string]DurableCell{}
	for _, c := range r.Cells {
		byMode[c.Mode] = c
	}
	mem, group, always := byMode["mem"], byMode["group"], byMode["always"]
	if !(mem.P99 < group.P99) {
		return fmt.Errorf("experiments: durable gate: mem p99 %v >= group p99 %v — durability came out free, which means it is not happening",
			mem.P99, group.P99)
	}
	if !(group.P99 < always.P99) {
		return fmt.Errorf("experiments: durable gate: group p99 %v >= always p99 %v at %d publishers — group commit is not amortizing the fsync",
			group.P99, always.P99, r.Publishers)
	}
	return nil
}

func runDurableCell(mode durableMode, opts DurableOptions) (DurableCell, error) {
	params := timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
	topics := make([]spec.Topic, opts.Publishers)
	for i := range topics {
		topics[i] = spec.Topic{
			ID:            spec.TopicID(i + 1),
			Category:      -1,
			Period:        20 * time.Millisecond,
			Deadline:      time.Second,
			LossTolerance: spec.LossUnbounded,
			Retention:     8,
			Destination:   spec.DestEdge,
			PayloadSize:   opts.PayloadSize,
		}
	}
	engineCfg := core.FRAMEConfig(params)

	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	bopts := broker.Options{
		Engine:     engineCfg,
		Role:       broker.RolePrimary,
		ListenAddr: "primary",
		Network:    net,
		Clock:      clock,
		Topics:     topics,
		Logger:     quietLogger(),
	}
	var logDir string
	if mode.durable {
		dir, err := os.MkdirTemp(opts.LogDirRoot, "frame-bench-durable-*")
		if err != nil {
			return DurableCell{}, err
		}
		logDir = dir
		bopts.Durable = true
		bopts.LogDir = dir
		bopts.FsyncInterval = mode.interval
	}
	b, err := broker.New(bopts)
	if err != nil {
		if logDir != "" {
			os.RemoveAll(logDir)
		}
		return DurableCell{}, err
	}
	b.Start()
	defer func() {
		b.Stop()
		if logDir != "" {
			os.RemoveAll(logDir)
		}
	}()

	// One publisher per topic: sequence numbers are publisher-assigned, so
	// concurrency comes from connections, not goroutines sharing one.
	pubs := make([]*client.Publisher, opts.Publishers)
	for i := range pubs {
		pubs[i], err = client.NewPublisher(client.PublisherOptions{
			Name:        fmt.Sprintf("durable-pub-%d", i),
			Topics:      topics[i : i+1],
			PrimaryAddr: b.Addr(),
			Network:     net,
			Clock:       clock,
			Logger:      quietLogger(),
			DurableAcks: mode.durable,
			AckTimeout:  10 * time.Second,
		})
		if err != nil {
			return DurableCell{}, err
		}
		defer pubs[i].Close()
	}

	payload := make([]byte, opts.PayloadSize)
	lats := make([][]time.Duration, opts.Publishers)
	errs := make([]error, opts.Publishers)
	begin := time.Now()
	var wg sync.WaitGroup
	for i := range pubs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			own := make([]time.Duration, 0, opts.Messages)
			for n := 0; n < opts.Messages; n++ {
				t0 := time.Now()
				if _, err := pubs[i].Publish(topics[i].ID, payload); err != nil {
					errs[i] = err
					return
				}
				own = append(own, time.Since(t0))
			}
			lats[i] = own
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	for _, err := range errs {
		if err != nil {
			return DurableCell{}, err
		}
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	return DurableCell{
		Mode:      mode.name,
		Published: len(all),
		Elapsed:   elapsed,
		P50:       percentileDur(all, 50),
		P99:       percentileDur(all, 99),
		Max:       all[len(all)-1],
		MsgsPer:   float64(len(all)) / elapsed.Seconds(),
	}, nil
}

// Format renders the three modes as a table.
func (r *DurableResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Durable publish: p99 by sync discipline, %d concurrent publishers\n", r.Publishers)
	fmt.Fprintf(&sb, "%8s  %9s  %10s  %10s  %10s  %10s  %12s\n",
		"mode", "published", "elapsed", "p50", "p99", "max", "acks/sec")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%8s  %9d  %10v  %10v  %10v  %10v  %12.0f\n",
			c.Mode, c.Published, c.Elapsed.Round(time.Millisecond),
			c.P50.Round(10*time.Microsecond), c.P99.Round(10*time.Microsecond),
			c.Max.Round(10*time.Microsecond), c.MsgsPer)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// WriteCSV stores one row per mode.
func (r *DurableResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "mode,publishers,published,elapsed_seconds,p50_us,p99_us,max_us,acks_per_sec"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.6f,%.1f,%.1f,%.1f,%.1f\n",
			c.Mode, r.Publishers, c.Published, c.Elapsed.Seconds(),
			float64(c.P50.Nanoseconds())/1e3, float64(c.P99.Nanoseconds())/1e3,
			float64(c.Max.Nanoseconds())/1e3, c.MsgsPer); err != nil {
			return err
		}
	}
	return nil
}

// WriteBenchJSON serializes the durable modes in the BenchRow shape the
// other committed baselines use, one row per mode named Durable/mode=X,
// so frame-benchdiff gates BENCH_DURABLE.json exactly like the Go
// benchmark baseline. ns_per_op is the publish p99 in nanoseconds. The
// mem mode is deliberately absent: a sub-50µs in-memory p99 is scheduler
// noise, not a plane property, and would flap any regression budget; the
// fsync-dominated modes are the axes worth ratcheting.
func (r *DurableResult) WriteBenchJSON(w io.Writer) error {
	rows := make([]BenchRow, 0, len(r.Cells))
	for _, c := range r.Cells {
		if c.Mode == "mem" {
			continue
		}
		rows = append(rows, BenchRow{
			Name:       fmt.Sprintf("Durable/mode=%s", c.Mode),
			Iterations: int64(c.Published),
			NsPerOp:    float64(c.P99.Nanoseconds()),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
