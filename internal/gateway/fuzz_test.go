package gateway_test

import (
	"testing"
	"time"

	"repro/internal/gateway"
	"repro/internal/spec"
	"repro/internal/wire"
)

// FuzzGatewayDecode drives the gateway's client-facing frame parser with
// the wire fuzz corpus (every frame type, including the broker-internal
// ones a client must not send) plus raw garbage. Properties: never panic;
// accept exactly the wire-valid frames whose type is in the thin-client
// subset; on acceptance the decoded frame re-encodes canonically, so the
// gateway interprets precisely the bytes the client sent.
func FuzzGatewayDecode(f *testing.F) {
	seeds := []*wire.Frame{
		// The thin-client subset.
		{Type: wire.TypeHello, Role: wire.RoleSubscriber, Name: "phone"},
		{Type: wire.TypeSubscribe, Topics: []spec.TopicID{1, 2, 3}},
		{Type: wire.TypePublish, Msg: wire.Message{Topic: 1, Seq: 2, Created: 3, Payload: []byte("abcdef0123456789")}},
		{Type: wire.TypeResend, Msg: wire.Message{Topic: 1, Seq: 2}},
		{Type: wire.TypePoll, Nonce: 42},
		{Type: wire.TypeTimeReq, T1: 5},
		{Type: wire.TypePollReply, Nonce: 42},
		{Type: wire.TypeTimeResp, Nonce: 1, T1: 2, T2: 3, T3: 4},
		// Broker-internal types a client session must reject.
		{Type: wire.TypeDispatch, Msg: wire.Message{Topic: 9, Seq: 1}, Dispatched: time.Millisecond},
		{Type: wire.TypeReplicate, Msg: wire.Message{Topic: 9, Seq: 1}, ArrivedPrimary: time.Millisecond},
		{Type: wire.TypePrune, Topic: 4, Seq: 17},
		{Type: wire.TypeRouteReq, Nonce: 7},
		{Type: wire.TypeRouteResp, Nonce: 7, Epoch: 2, Shards: []wire.ShardEntry{{Primary: "p:1", Backup: "b:1"}}},
		{Type: wire.TypeWrongShard, Topic: 9, Epoch: 2},
	}
	for _, fr := range seeds {
		buf, err := wire.Encode(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		var out wire.Frame
		err := gateway.DecodeClientFrame(data, &out)

		var ref wire.Frame
		wireErr := wire.DecodeInto(data, &ref, wire.ModeCopy)
		if wireErr != nil {
			// Not wire-valid: the gateway must reject it too.
			if err == nil {
				t.Fatalf("gateway accepted bytes wire rejects: %x", data)
			}
			return
		}
		allowed := false
		switch ref.Type {
		case wire.TypeHello, wire.TypeSubscribe, wire.TypePublish, wire.TypeResend,
			wire.TypePoll, wire.TypeTimeReq, wire.TypePollReply, wire.TypeTimeResp:
			allowed = true
		}
		if allowed != (err == nil) {
			t.Fatalf("type %v: allowed=%v but err=%v", ref.Type, allowed, err)
		}
		if err != nil {
			return
		}
		// Accepted frames decode to exactly the bytes sent: canonical
		// re-encode, same as the wire codec's own invariant.
		re, reErr := wire.Encode(nil, &out)
		if reErr != nil {
			t.Fatalf("accepted frame %+v does not re-encode: %v", out, reErr)
		}
		if string(re) != string(data) {
			t.Fatalf("client parse not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
