package gateway

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clocksync"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DefaultReconnectDelay paces redial attempts after a lost gateway session.
const DefaultReconnectDelay = 10 * time.Millisecond

// ThinSubscriberOptions configures a ThinSubscriber.
type ThinSubscriberOptions struct {
	// Name identifies the client in its Hello frame.
	Name string
	// Topics to subscribe to.
	Topics []spec.TopicID
	// GatewayAddr is the gateway's client-facing address.
	GatewayAddr string
	// Network supplies dialing.
	Network transport.Network
	// Clock is the synchronized timebase used to stamp ts.
	Clock clocksync.Clock
	// Reconnect redials after a lost session (gateway crash/restart)
	// until Close; false makes a lost session terminal, like
	// client.Subscriber.
	Reconnect bool
	// ReconnectDelay paces redials (DefaultReconnectDelay when <= 0).
	ReconnectDelay time.Duration
	// OnDeliver, if non-nil, runs for every distinct delivery.
	OnDeliver func(client.Delivery)
	// OnFrame, if non-nil, runs for every dispatch frame received,
	// duplicates included (Duplicate set) — the chaos recorders' view.
	OnFrame func(client.Delivery)
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
}

// ThinSubscriber is the end-client side of the connection plane: one
// session to one gateway, dedup and delivery records identical to
// client.Subscriber's, plus optional automatic reconnect — the property a
// phone-class client needs and a broker-owned session never had. Counters
// survive reconnects, so equivalence tests can compare a churned thin
// client against an uninterrupted direct subscription.
type ThinSubscriber struct {
	opts ThinSubscriberOptions
	log  *slog.Logger

	cancel context.CancelFunc
	wg     sync.WaitGroup

	reconnects atomic.Uint64

	mu        sync.Mutex
	conn      *transport.Conn
	seen      map[spec.TopicID]map[uint64]bool
	latencies map[spec.TopicID][]time.Duration
	received  map[spec.TopicID]uint64
	dups      uint64
}

// NewThinSubscriber dials the gateway, subscribes, and starts the receive
// loop. The first session must succeed — a misconfigured address fails
// fast — but later losses follow the Reconnect policy.
func NewThinSubscriber(opts ThinSubscriberOptions) (*ThinSubscriber, error) {
	if opts.Network == nil || opts.Clock == nil {
		return nil, errors.New("gateway: thin subscriber needs network and clock")
	}
	if len(opts.Topics) == 0 || opts.GatewayAddr == "" {
		return nil, errors.New("gateway: thin subscriber needs topics and a gateway address")
	}
	if opts.ReconnectDelay <= 0 {
		opts.ReconnectDelay = DefaultReconnectDelay
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	t := &ThinSubscriber{
		opts:      opts,
		log:       opts.Logger.With("thin-subscriber", opts.Name),
		seen:      make(map[spec.TopicID]map[uint64]bool),
		latencies: make(map[spec.TopicID][]time.Duration),
		received:  make(map[spec.TopicID]uint64),
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.cancel = cancel
	conn, err := t.dial()
	if err != nil {
		cancel()
		return nil, err
	}
	t.setConn(conn)
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.run(ctx, conn)
	}()
	return t, nil
}

// dial opens one gateway session: connect, Hello, Subscribe.
func (t *ThinSubscriber) dial() (*transport.Conn, error) {
	nc, err := t.opts.Network.Dial(t.opts.GatewayAddr)
	if err != nil {
		return nil, fmt.Errorf("gateway: dial %s: %w", t.opts.GatewayAddr, err)
	}
	conn := transport.NewConn(nc)
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RoleSubscriber, Name: t.opts.Name}); err != nil {
		conn.Close()
		return nil, err
	}
	if err := conn.Send(&wire.Frame{Type: wire.TypeSubscribe, Topics: t.opts.Topics}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

func (t *ThinSubscriber) setConn(conn *transport.Conn) {
	t.mu.Lock()
	t.conn = conn
	t.mu.Unlock()
}

// run drives the session lifecycle: read until the session dies, then —
// under the Reconnect policy — redial with backoff until Close. The
// per-topic seen maps carry across sessions, so a dispatch replayed
// around a gateway restart dedups exactly as it would on one unbroken
// session.
func (t *ThinSubscriber) run(ctx context.Context, conn *transport.Conn) {
	for {
		stop := context.AfterFunc(ctx, func() { conn.Close() })
		t.readLoop(conn)
		stop()
		conn.Close()
		if !t.opts.Reconnect || ctx.Err() != nil {
			return
		}
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(t.opts.ReconnectDelay):
			}
			next, err := t.dial()
			if err == nil {
				conn = next
				t.setConn(conn)
				t.reconnects.Add(1)
				break
			}
		}
	}
}

// readLoop drains one session with a pooled, reused frame.
func (t *ThinSubscriber) readLoop(conn *transport.Conn) {
	f := transport.GetFrame()
	defer transport.PutFrame(f)
	for {
		if err := conn.RecvInto(f); err != nil {
			return
		}
		if f.Type != wire.TypeDispatch {
			continue
		}
		t.onDispatch(f)
	}
}

// onDispatch mirrors client.Subscriber.onDispatch: stamp ts, dedup on the
// per-topic seen map, record, and run the callbacks outside the lock.
func (t *ThinSubscriber) onDispatch(f *wire.Frame) {
	now := t.opts.Clock()
	latency := now - f.Msg.Created
	t.mu.Lock()
	seen := t.seen[f.Msg.Topic]
	if seen == nil {
		seen = make(map[uint64]bool)
		t.seen[f.Msg.Topic] = seen
	}
	dup := seen[f.Msg.Seq]
	if dup {
		t.dups++
	} else {
		seen[f.Msg.Seq] = true
		t.received[f.Msg.Topic]++
		t.latencies[f.Msg.Topic] = append(t.latencies[f.Msg.Topic], latency)
	}
	t.mu.Unlock()
	d := client.Delivery{Msg: f.Msg, Latency: latency, Duplicate: dup, Source: t.opts.GatewayAddr}
	if t.opts.OnFrame != nil {
		t.opts.OnFrame(d)
	}
	if dup {
		return
	}
	if t.opts.OnDeliver != nil {
		d.Duplicate = false
		t.opts.OnDeliver(d)
	}
}

// Reconnects returns how many times the session was re-established.
func (t *ThinSubscriber) Reconnects() uint64 { return t.reconnects.Load() }

// Received returns how many distinct messages arrived for the topic.
func (t *ThinSubscriber) Received(topic spec.TopicID) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.received[topic]
}

// Duplicates returns how many duplicate deliveries were discarded.
func (t *ThinSubscriber) Duplicates() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dups
}

// Latencies returns a copy of the topic's end-to-end latency samples.
func (t *ThinSubscriber) Latencies(topic spec.TopicID) []time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]time.Duration(nil), t.latencies[topic]...)
}

// MaxConsecutiveLoss reconstructs the longest run of missing sequence
// numbers for the topic, given the highest sequence the publisher created.
func (t *ThinSubscriber) MaxConsecutiveLoss(topic spec.TopicID, highestCreated uint64) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := t.seen[topic]
	maxRun, run := 0, 0
	for q := uint64(1); q <= highestCreated; q++ {
		if seen[q] {
			run = 0
			continue
		}
		run++
		if run > maxRun {
			maxRun = run
		}
	}
	return maxRun
}

// Close tears the session down and waits for the receive loop.
func (t *ThinSubscriber) Close() {
	t.cancel()
	t.mu.Lock()
	conn := t.conn
	t.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	t.wg.Wait()
}
