// Proof harness for the connection plane. The load-bearing property is
// equivalence: a thin client behind the gateway must see exactly what a
// direct broker subscription sees — same dedup, same FIFO-per-topic, loss
// within Li — even while other clients churn, a sibling client wedges, or
// the gateway itself restarts. Each test builds the real stack (broker or
// cluster, gateway, clients) over the in-process Mem transport, where
// backpressure is synchronous and nothing hides in kernel buffers.
package gateway_test

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failover"
	"repro/internal/gateway"
	"repro/internal/obsv"
	"repro/internal/spec"
	"repro/internal/timing"
	"repro/internal/transport"
	"repro/internal/wire"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

func testTopics(n, li int) ([]spec.Topic, []spec.TopicID) {
	topics := make([]spec.Topic, n)
	ids := make([]spec.TopicID, n)
	for i := range topics {
		topics[i] = spec.Topic{
			ID:            spec.TopicID(i + 1),
			Category:      -1,
			Period:        20 * time.Millisecond,
			Deadline:      time.Second,
			LossTolerance: li,
			Retention:     8,
			Destination:   spec.DestEdge,
			PayloadSize:   16,
		}
		ids[i] = topics[i].ID
	}
	return topics, ids
}

func testParams() timing.Params {
	return timing.Params{
		DeltaBSEdge:  time.Millisecond,
		DeltaBSCloud: time.Millisecond,
		DeltaBB:      time.Millisecond,
		Failover:     50 * time.Millisecond,
	}
}

// newSoloBroker brings up a solo Primary on the Mem address "primary".
func newSoloBroker(t *testing.T, net *transport.Mem, clock func() time.Duration, topics []spec.Topic) *broker.Broker {
	t.Helper()
	engineCfg := core.FRAMEConfig(testParams())
	engineCfg.MessageBufferCap = 4096
	b, err := broker.New(broker.Options{
		Engine:     engineCfg,
		Role:       broker.RolePrimary,
		ListenAddr: "primary",
		Network:    net,
		Clock:      clock,
		Topics:     topics,
		Logger:     quietLogger(),
	})
	if err != nil {
		t.Fatalf("broker: %v", err)
	}
	b.Start()
	t.Cleanup(b.Stop)
	return b
}

// rawConn opens a raw wire session for tests that need to act below the
// client helpers (publishers, wedged subscribers, protocol probes).
func rawConn(t *testing.T, net transport.Network, addr, name string, role wire.Role) *transport.Conn {
	t.Helper()
	nc, err := net.Dial(addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	conn := transport.NewConn(nc)
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: role, Name: name}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	return conn
}

func publishThrough(t *testing.T, conn *transport.Conn, clock func() time.Duration, ids []spec.TopicID, firstSeq, perTopic int, interval time.Duration) {
	t.Helper()
	payload := []byte("gateway-test-pay")
	for seq := firstSeq; seq < firstSeq+perTopic; seq++ {
		for _, id := range ids {
			f := &wire.Frame{Type: wire.TypePublish, Msg: wire.Message{
				Topic: id, Seq: uint64(seq), Created: clock(), Payload: payload,
			}}
			if err := conn.Send(f); err != nil {
				t.Fatalf("publish topic %d seq %d: %v", id, seq, err)
			}
			if interval > 0 {
				time.Sleep(interval)
			}
		}
	}
}

func waitFor(t *testing.T, what string, deadline time.Duration, cond func() bool) {
	t.Helper()
	limit := time.Now().Add(deadline)
	for !cond() {
		if time.Now().After(limit) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// rewindTracker counts per-topic sequence rewinds — the FIFO violation a
// re-dispatched or reordered stream would show.
type rewindTracker struct {
	mu      sync.Mutex
	maxSeq  map[spec.TopicID]uint64
	rewinds int
}

func newRewindTracker() *rewindTracker {
	return &rewindTracker{maxSeq: make(map[spec.TopicID]uint64)}
}

func (r *rewindTracker) note(d client.Delivery) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d.Msg.Seq < r.maxSeq[d.Msg.Topic] {
		r.rewinds++
	} else {
		r.maxSeq[d.Msg.Topic] = d.Msg.Seq
	}
}

func (r *rewindTracker) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rewinds
}

// TestGatewayEquivalentToDirectSubscription is the model-based equivalence
// proof: one subscriber connects straight to the broker, one thin client
// connects through the gateway, both subscribe to everything, and a seeded
// wave of churning clients connects/disconnects throughout. Publishing
// goes through the gateway's forward path. At the end both observers must
// have identical per-topic distinct delivery counts equal to the published
// count, zero duplicates, and zero per-topic sequence rewinds.
func TestGatewayEquivalentToDirectSubscription(t *testing.T) {
	const (
		nTopics  = 4
		perTopic = 120
		churners = 12
		seed     = 0x5eedfade
	)
	topics, ids := testTopics(nTopics, 64)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	b := newSoloBroker(t, net, clock, topics)

	gw, err := gateway.New(gateway.Options{
		ListenAddr:  "gw",
		Topics:      topics,
		BrokerAddrs: []string{b.Addr()},
		Network:     net,
		Clock:       clock,
		ClientDepth: 256,
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	gw.Start()
	t.Cleanup(gw.Stop)

	directFIFO := newRewindTracker()
	direct, err := client.NewSubscriber(client.SubscriberOptions{
		Name: "direct", Topics: ids, BrokerAddrs: []string{b.Addr()},
		Network: net, Clock: clock, OnFrame: directFIFO.note, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("direct subscriber: %v", err)
	}
	t.Cleanup(direct.Close)

	thinFIFO := newRewindTracker()
	thin, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
		Name: "thin", Topics: ids, GatewayAddr: "gw",
		Network: net, Clock: clock, OnFrame: thinFIFO.note, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("thin subscriber: %v", err)
	}
	t.Cleanup(thin.Close)

	// Direct sub + gateway upstream registered at the broker; thin client
	// registered at the gateway.
	waitFor(t, "broker subscriptions", 2*time.Second, func() bool { return b.Health().EgressSubs >= 2 })
	waitFor(t, "thin subscription", 2*time.Second, func() bool { return gw.Subscribers() >= 1 })

	// Seeded churn: clients connect, read briefly, disconnect — while the
	// publisher runs. Their connects/disconnects must not disturb the two
	// observers.
	rng := rand.New(rand.NewSource(seed))
	churnDone := make(chan struct{})
	churnHold := make([]time.Duration, churners)
	churnGap := make([]time.Duration, churners)
	for i := range churnHold {
		churnHold[i] = time.Duration(1+rng.Intn(10)) * time.Millisecond
		churnGap[i] = time.Duration(rng.Intn(4)) * time.Millisecond
	}
	go func() {
		defer close(churnDone)
		for i := 0; i < churners; i++ {
			c, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
				Name: fmt.Sprintf("churn-%d", i), Topics: ids, GatewayAddr: "gw",
				Network: net, Clock: clock, Logger: quietLogger(),
			})
			if err != nil {
				continue // gateway mid-shutdown; the test's asserts decide
			}
			time.Sleep(churnHold[i])
			c.Close()
			time.Sleep(churnGap[i])
		}
	}()

	pub := rawConn(t, net, "gw", "pub", wire.RolePublisher)
	defer pub.Close()
	publishThrough(t, pub, clock, ids, 1, perTopic, 50*time.Microsecond)
	<-churnDone

	want := uint64(perTopic)
	waitFor(t, "all deliveries", 10*time.Second, func() bool {
		for _, id := range ids {
			if direct.Received(id) < want || thin.Received(id) < want {
				return false
			}
		}
		return true
	})

	for _, id := range ids {
		if d, th := direct.Received(id), thin.Received(id); d != th || d != want {
			t.Errorf("topic %d: direct=%d thin=%d want %d", id, d, th, want)
		}
		if loss := thin.MaxConsecutiveLoss(id, want); loss != 0 {
			t.Errorf("topic %d: thin client lost %d consecutive", id, loss)
		}
	}
	if d := direct.Duplicates(); d != 0 {
		t.Errorf("direct subscriber saw %d duplicates", d)
	}
	if d := thin.Duplicates(); d != 0 {
		t.Errorf("thin subscriber saw %d duplicates", d)
	}
	if r := directFIFO.count(); r != 0 {
		t.Errorf("direct subscriber saw %d FIFO rewinds", r)
	}
	if r := thinFIFO.count(); r != 0 {
		t.Errorf("thin subscriber saw %d FIFO rewinds", r)
	}
	if got := gw.Forwarded(); got != uint64(nTopics*perTopic) {
		t.Errorf("gateway forwarded %d publishes, want %d", got, nTopics*perTopic)
	}
	if errs := gw.ForwardErrs(); errs != 0 {
		t.Errorf("gateway dropped %d publishes", errs)
	}
}

// TestGatewayChurnSoak drives seeded connect/subscribe/disconnect waves
// against a live gateway while a publisher streams, asserting the session
// table drains back to steady state and a stable observer never misses a
// message. Run under -race this is the churn data-race soak.
func TestGatewayChurnSoak(t *testing.T) {
	const seed = 0xc4a05
	waves, perWave := 6, 8
	if testing.Short() {
		waves = 3
	}
	topics, ids := testTopics(4, spec.LossUnbounded)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	b := newSoloBroker(t, net, clock, topics)

	gw, err := gateway.New(gateway.Options{
		ListenAddr:  "gw",
		Topics:      topics,
		BrokerAddrs: []string{b.Addr()},
		Network:     net,
		Clock:       clock,
		ClientDepth: 128,
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	gw.Start()
	t.Cleanup(gw.Stop)

	stable, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
		Name: "stable", Topics: ids, GatewayAddr: "gw",
		Network: net, Clock: clock, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("stable subscriber: %v", err)
	}
	t.Cleanup(stable.Close)
	waitFor(t, "stable subscription", 2*time.Second, func() bool { return gw.Subscribers() >= 1 })

	stop := make(chan struct{})
	var pubDone sync.WaitGroup
	pubDone.Add(1)
	seqHigh := uint64(0)
	go func() {
		defer pubDone.Done()
		pub := rawConn(t, net, "gw", "soak-pub", wire.RolePublisher)
		defer pub.Close()
		payload := []byte("soak")
		for seq := uint64(1); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range ids {
				if err := pub.Send(&wire.Frame{Type: wire.TypePublish, Msg: wire.Message{
					Topic: id, Seq: seq, Created: clock(), Payload: payload,
				}}); err != nil {
					return
				}
			}
			seqHigh = seq
			time.Sleep(200 * time.Microsecond)
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	for w := 0; w < waves; w++ {
		var wave sync.WaitGroup
		for i := 0; i < perWave; i++ {
			hold := time.Duration(rng.Intn(8)) * time.Millisecond
			sub := ids[rng.Intn(len(ids)):len(ids)] // varying topic slices
			wave.Add(1)
			go func(i int, hold time.Duration, sub []spec.TopicID) {
				defer wave.Done()
				c, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
					Name: fmt.Sprintf("wave-%d", i), Topics: sub, GatewayAddr: "gw",
					Network: net, Clock: clock, Logger: quietLogger(),
				})
				if err != nil {
					t.Errorf("wave subscriber: %v", err)
					return
				}
				time.Sleep(hold)
				c.Close()
			}(i, hold, sub)
		}
		wave.Wait()
	}
	close(stop)
	pubDone.Wait()

	// Every churned session must have unregistered: only the stable client
	// remains.
	waitFor(t, "session table drain", 2*time.Second, func() bool { return gw.Clients() == 1 })
	high := seqHigh
	waitFor(t, "stable catch-up", 5*time.Second, func() bool {
		for _, id := range ids {
			if stable.Received(id) < high {
				return false
			}
		}
		return true
	})
	if d := stable.Duplicates(); d != 0 {
		t.Errorf("stable subscriber saw %d duplicates", d)
	}
	if ev := gw.Evictions(); ev != 0 {
		t.Errorf("%d clients evicted during churn; rings sized to hold the stream", ev)
	}
}

// TestGatewaySlowClientIsolation wedges one client (never reads) while a
// healthy sibling subscribes to the same topics. The wedged client's ring
// must shed within Li and evict past it — at the gateway — while the
// broker-side egress stays untouched: the isolation contract that lets a
// broker session carry thousands of phones.
func TestGatewaySlowClientIsolation(t *testing.T) {
	const perTopic = 80
	topics, ids := testTopics(8, 8)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	b := newSoloBroker(t, net, clock, topics)

	gw, err := gateway.New(gateway.Options{
		ListenAddr:         "gw",
		Topics:             topics,
		BrokerAddrs:        []string{b.Addr()},
		Network:            net,
		Clock:              clock,
		ClientDepth:        16,
		ClientWriteTimeout: 200 * time.Millisecond,
		Logger:             quietLogger(),
	})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	gw.Start()
	t.Cleanup(gw.Stop)

	healthy, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
		Name: "healthy", Topics: ids, GatewayAddr: "gw",
		Network: net, Clock: clock, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("healthy subscriber: %v", err)
	}
	t.Cleanup(healthy.Close)

	// The wedged client subscribes and then never reads: over net.Pipe the
	// gateway's first flush to it blocks, its ring fills, and the Li-aware
	// policy takes over.
	wedged := rawConn(t, net, "gw", "wedged", wire.RoleSubscriber)
	defer wedged.Close()
	if err := wedged.Send(&wire.Frame{Type: wire.TypeSubscribe, Topics: ids}); err != nil {
		t.Fatalf("wedged subscribe: %v", err)
	}
	waitFor(t, "both subscriptions", 2*time.Second, func() bool { return gw.Subscribers() >= 2 })

	pub := rawConn(t, net, "gw", "pub", wire.RolePublisher)
	defer pub.Close()
	publishThrough(t, pub, clock, ids, 1, perTopic, 100*time.Microsecond)

	waitFor(t, "healthy deliveries", 10*time.Second, func() bool {
		for _, id := range ids {
			if healthy.Received(id) < perTopic {
				return false
			}
		}
		return true
	})
	waitFor(t, "wedged eviction", 5*time.Second, func() bool { return gw.EgressStats().Evictions >= 1 })

	gwStats := gw.EgressStats()
	if gwStats.Shed == 0 {
		t.Error("gateway shed nothing; the wedged ring should have overflowed")
	}
	if d := healthy.Duplicates(); d != 0 {
		t.Errorf("healthy subscriber saw %d duplicates", d)
	}
	// The broker-side stall check: its egress (serving the gateway's one
	// upstream session) must show no shed, no evictions, no write errors.
	bStats := b.EgressStats()
	if bStats.Shed != 0 || bStats.Evictions != 0 || bStats.WriteErrs != 0 {
		t.Errorf("broker egress disturbed by wedged thin client: shed=%d evictions=%d writeErrs=%d",
			bStats.Shed, bStats.Evictions, bStats.WriteErrs)
	}
}

// TestGatewayRestartThinClientReconnects kills the gateway mid-stream and
// brings a new one up at the same address. Thin clients must redial and
// resubscribe on their own, and with publishing paused across the outage
// the stream resumes with no loss, no duplicates, and no rewinds — the
// brokers never notice beyond the gateway's sessions closing.
func TestGatewayRestartThinClientReconnects(t *testing.T) {
	const perTopic = 40
	topics, ids := testTopics(2, 256)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	b := newSoloBroker(t, net, clock, topics)

	newGW := func() *gateway.Gateway {
		gw, err := gateway.New(gateway.Options{
			ListenAddr:  "gw",
			Topics:      topics,
			BrokerAddrs: []string{b.Addr()},
			Network:     net,
			Clock:       clock,
			Logger:      quietLogger(),
		})
		if err != nil {
			t.Fatalf("gateway: %v", err)
		}
		gw.Start()
		return gw
	}
	gw1 := newGW()

	thin, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
		Name: "thin", Topics: ids, GatewayAddr: "gw",
		Network: net, Clock: clock, Reconnect: true, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("thin subscriber: %v", err)
	}
	t.Cleanup(thin.Close)
	waitFor(t, "subscription", 2*time.Second, func() bool { return gw1.Subscribers() >= 1 })

	pub := rawConn(t, net, "gw", "pub", wire.RolePublisher)
	publishThrough(t, pub, clock, ids, 1, perTopic, 100*time.Microsecond)
	waitFor(t, "first batch", 5*time.Second, func() bool {
		for _, id := range ids {
			if thin.Received(id) < perTopic {
				return false
			}
		}
		return true
	})

	gw1.Stop()
	pub.Close()

	gw2 := newGW()
	t.Cleanup(gw2.Stop)
	waitFor(t, "thin reconnect", 5*time.Second, func() bool {
		return thin.Reconnects() >= 1 && gw2.Subscribers() >= 1
	})

	pub2 := rawConn(t, net, "gw", "pub2", wire.RolePublisher)
	defer pub2.Close()
	publishThrough(t, pub2, clock, ids, perTopic+1, perTopic, 100*time.Microsecond)

	want := uint64(2 * perTopic)
	waitFor(t, "second batch", 5*time.Second, func() bool {
		for _, id := range ids {
			if thin.Received(id) < want {
				return false
			}
		}
		return true
	})
	for _, id := range ids {
		if loss := thin.MaxConsecutiveLoss(id, want); loss != 0 {
			t.Errorf("topic %d: lost %d consecutive across restart", id, loss)
		}
	}
	if d := thin.Duplicates(); d != 0 {
		t.Errorf("thin subscriber saw %d duplicates across restart", d)
	}
	// The broker's view: its subscriber count went 1 → 0 → 1 as gateways
	// swapped, with no egress damage.
	bStats := b.EgressStats()
	if bStats.Evictions != 0 {
		t.Errorf("broker evicted %d sessions across gateway restart", bStats.Evictions)
	}
}

// TestGatewayDirectoryMode runs the gateway against a 2-shard cluster: it
// must fetch routes from the Directory, hold one upstream subscriber per
// pair, and route each client publish to the owning shard.
func TestGatewayDirectoryMode(t *testing.T) {
	const perTopic = 20
	topics, ids := testTopics(8, 64)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()

	engineCfg := core.FRAMEConfig(testParams())
	engineCfg.MessageBufferCap = 4096
	cl, err := cluster.New(cluster.Config{
		Shards:  2,
		Topics:  topics,
		Engine:  engineCfg,
		Network: net,
		Mem:     true,
		Clock:   clock,
		Workers: 2,
		Detector: failover.Config{
			Period: 5 * time.Millisecond, Timeout: 20 * time.Millisecond, Misses: 3,
		},
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(cl.Stop)

	gw, err := gateway.New(gateway.Options{
		ListenAddr:    "gw",
		Topics:        topics,
		DirectoryAddr: cl.Dir.Addr(),
		Network:       net,
		Clock:         clock,
		Logger:        quietLogger(),
	})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	gw.Start()
	t.Cleanup(gw.Stop)

	thin, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
		Name: "thin", Topics: ids, GatewayAddr: "gw",
		Network: net, Clock: clock, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("thin subscriber: %v", err)
	}
	t.Cleanup(thin.Close)
	waitFor(t, "subscription", 2*time.Second, func() bool { return gw.Subscribers() >= 1 })

	pub := rawConn(t, net, "gw", "pub", wire.RolePublisher)
	defer pub.Close()
	publishThrough(t, pub, clock, ids, 1, perTopic, 100*time.Microsecond)

	waitFor(t, "all shard deliveries", 10*time.Second, func() bool {
		for _, id := range ids {
			if thin.Received(id) < perTopic {
				return false
			}
		}
		return true
	})
	if d := thin.Duplicates(); d != 0 {
		t.Errorf("thin subscriber saw %d duplicates", d)
	}
	if got := gw.Forwarded(); got != uint64(len(ids)*perTopic) {
		t.Errorf("gateway forwarded %d, want %d", got, len(ids)*perTopic)
	}
	if errs := gw.ForwardErrs(); errs != 0 {
		t.Errorf("gateway dropped %d publishes", errs)
	}
	// Both shards served deliveries: every topic hashed to one of the two
	// pairs, and every topic arrived.
	part := cluster.Partition(topics, 2)
	if len(part[0]) == 0 || len(part[1]) == 0 {
		t.Fatalf("degenerate partition: %d/%d", len(part[0]), len(part[1]))
	}
}

// TestGatewayControlFrames exercises the client-facing protocol subset:
// Poll gets a correlated PollReply, TimeReq gets a clocksync TimeResp, and
// a broker-internal frame type kills the session.
func TestGatewayControlFrames(t *testing.T) {
	topics, _ := testTopics(1, 0)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	b := newSoloBroker(t, net, clock, topics)

	gw, err := gateway.New(gateway.Options{
		ListenAddr:  "gw",
		Topics:      topics,
		BrokerAddrs: []string{b.Addr()},
		Network:     net,
		Clock:       clock,
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	gw.Start()
	t.Cleanup(gw.Stop)

	probe := rawConn(t, net, "gw", "probe", wire.RoleSubscriber)
	defer probe.Close()
	if err := probe.Send(&wire.Frame{Type: wire.TypePoll, Nonce: 42}); err != nil {
		t.Fatalf("poll: %v", err)
	}
	f, err := probe.Recv()
	if err != nil {
		t.Fatalf("poll reply: %v", err)
	}
	if f.Type != wire.TypePollReply || f.Nonce != 42 {
		t.Fatalf("got %v nonce %d, want POLL_REPLY nonce 42", f.Type, f.Nonce)
	}

	if err := probe.Send(&wire.Frame{Type: wire.TypeTimeReq, T1: 123}); err != nil {
		t.Fatalf("time req: %v", err)
	}
	f, err = probe.Recv()
	if err != nil {
		t.Fatalf("time resp: %v", err)
	}
	if f.Type != wire.TypeTimeResp || f.T1 != 123 {
		t.Fatalf("got %v T1=%v, want TIME_RESP T1=123", f.Type, f.T1)
	}

	// A replication frame on a client session is a protocol violation: the
	// gateway drops the session.
	if err := probe.Send(&wire.Frame{Type: wire.TypeReplicate, Msg: wire.Message{Topic: 1, Seq: 1}}); err != nil {
		t.Fatalf("send replicate: %v", err)
	}
	probe.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := probe.Recv(); err == nil {
		t.Fatal("session survived a broker-internal frame type")
	}
	waitFor(t, "session teardown", 2*time.Second, func() bool { return gw.Clients() == 0 })
}

// TestGatewayMetricsAndHealth scrapes the admin endpoint for the
// frame_gateway_* family and checks the health shape.
func TestGatewayMetricsAndHealth(t *testing.T) {
	topics, ids := testTopics(2, 8)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }
	net := transport.NewMem()
	b := newSoloBroker(t, net, clock, topics)

	gw, err := gateway.New(gateway.Options{
		ListenAddr:  "gw",
		Topics:      topics,
		BrokerAddrs: []string{b.Addr()},
		Network:     net,
		Clock:       clock,
		AdminAddr:   "127.0.0.1:0",
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	gw.Start()
	t.Cleanup(gw.Stop)

	thin, err := gateway.NewThinSubscriber(gateway.ThinSubscriberOptions{
		Name: "thin", Topics: ids, GatewayAddr: "gw",
		Network: net, Clock: clock, Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("thin subscriber: %v", err)
	}
	t.Cleanup(thin.Close)
	waitFor(t, "subscription", 2*time.Second, func() bool { return gw.Subscribers() >= 1 })

	pub := rawConn(t, net, "gw", "pub", wire.RolePublisher)
	defer pub.Close()
	publishThrough(t, pub, clock, ids, 1, 5, 0)
	waitFor(t, "deliveries", 5*time.Second, func() bool {
		for _, id := range ids {
			if thin.Received(id) < 5 {
				return false
			}
		}
		return true
	})

	h := gw.Health()
	if h.Role != "gateway" {
		t.Errorf("health role %q, want gateway", h.Role)
	}
	if h.EgressSubs != 1 {
		t.Errorf("health egress subs %d, want 1", h.EgressSubs)
	}
	if h.PeerAddr != b.Addr() {
		t.Errorf("health peer %q, want %q", h.PeerAddr, b.Addr())
	}

	resp, err := http.Get("http://" + gw.AdminAddr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	samples, err := obsv.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse metrics: %v", err)
	}
	byName := make(map[string]float64)
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	for _, name := range []string{
		"frame_gateway_clients",
		"frame_gateway_subscribers",
		"frame_gateway_delivered_total",
		"frame_gateway_forwarded_total",
		"frame_gateway_egress_enqueued_total",
		"frame_gateway_egress_flushed_total",
		"frame_gateway_egress_queued",
	} {
		if _, ok := byName[name]; !ok {
			t.Errorf("metric %s missing from scrape", name)
		}
	}
	if got := byName["frame_gateway_clients"]; got < 2 { // thin + pub sessions
		t.Errorf("frame_gateway_clients = %v, want >= 2", got)
	}
	if got := byName["frame_gateway_forwarded_total"]; got != 10 {
		t.Errorf("frame_gateway_forwarded_total = %v, want 10", got)
	}
	if got := byName["frame_gateway_delivered_total"]; got != 10 {
		t.Errorf("frame_gateway_delivered_total = %v, want 10", got)
	}
}

// TestGatewayOptionValidation covers New's rejection paths.
func TestGatewayOptionValidation(t *testing.T) {
	topics, _ := testTopics(1, 0)
	net := transport.NewMem()
	cases := []struct {
		name string
		opts gateway.Options
	}{
		{"nil network", gateway.Options{ListenAddr: "gw", Topics: topics, BrokerAddrs: []string{"x"}}},
		{"no topics", gateway.Options{ListenAddr: "gw", Network: net, BrokerAddrs: []string{"x"}}},
		{"no upstream", gateway.Options{ListenAddr: "gw", Topics: topics, Network: net}},
		{"both upstreams", gateway.Options{ListenAddr: "gw", Topics: topics, Network: net,
			BrokerAddrs: []string{"x"}, DirectoryAddr: "y"}},
		{"bad broker addr", gateway.Options{ListenAddr: "gw", Topics: topics, Network: net,
			BrokerAddrs: []string{"nowhere"}}},
	}
	for _, tc := range cases {
		if _, err := gateway.New(tc.opts); err == nil {
			t.Errorf("%s: New accepted invalid options", tc.name)
		}
	}
}

// TestThinSubscriberValidation covers the thin client's rejection paths.
func TestThinSubscriberValidation(t *testing.T) {
	_, ids := testTopics(1, 0)
	net := transport.NewMem()
	clock := func() time.Duration { return 0 }
	cases := []struct {
		name string
		opts gateway.ThinSubscriberOptions
	}{
		{"nil network", gateway.ThinSubscriberOptions{Topics: ids, GatewayAddr: "gw", Clock: clock}},
		{"nil clock", gateway.ThinSubscriberOptions{Topics: ids, GatewayAddr: "gw", Network: net}},
		{"no topics", gateway.ThinSubscriberOptions{GatewayAddr: "gw", Network: net, Clock: clock}},
		{"no gateway", gateway.ThinSubscriberOptions{Topics: ids, Network: net, Clock: clock}},
		{"dead gateway", gateway.ThinSubscriberOptions{Topics: ids, GatewayAddr: "nowhere", Network: net, Clock: clock}},
	}
	for _, tc := range cases {
		if _, err := gateway.NewThinSubscriber(tc.opts); err == nil {
			t.Errorf("%s: NewThinSubscriber accepted invalid options", tc.name)
		}
	}
}

// TestDecodeClientFrame pins the client-facing parser's accept/reject
// split: the thin-client subset decodes, broker-internal types and
// corrupt bytes are rejected.
func TestDecodeClientFrame(t *testing.T) {
	ok := []wire.Frame{
		{Type: wire.TypeHello, Role: wire.RoleSubscriber, Name: "c"},
		{Type: wire.TypeSubscribe, Topics: []spec.TopicID{1, 2}},
		{Type: wire.TypePublish, Msg: wire.Message{Topic: 1, Seq: 1, Payload: []byte("x")}},
		{Type: wire.TypeResend, Msg: wire.Message{Topic: 1, Seq: 1}},
		{Type: wire.TypePoll, Nonce: 7},
		{Type: wire.TypeTimeReq, T1: 1},
	}
	for _, f := range ok {
		buf, err := wire.Encode(nil, &f)
		if err != nil {
			t.Fatalf("encode %v: %v", f.Type, err)
		}
		var out wire.Frame
		if err := gateway.DecodeClientFrame(buf, &out); err != nil {
			t.Errorf("%v rejected: %v", f.Type, err)
		}
		if out.Type != f.Type {
			t.Errorf("decoded %v, want %v", out.Type, f.Type)
		}
	}
	rejected := []wire.Frame{
		{Type: wire.TypeDispatch, Msg: wire.Message{Topic: 1, Seq: 1}},
		{Type: wire.TypeReplicate, Msg: wire.Message{Topic: 1, Seq: 1}},
		{Type: wire.TypePrune, Topic: 1, Seq: 1},
		{Type: wire.TypeRouteReq, Nonce: 1},
	}
	for _, f := range rejected {
		buf, err := wire.Encode(nil, &f)
		if err != nil {
			t.Fatalf("encode %v: %v", f.Type, err)
		}
		var out wire.Frame
		if err := gateway.DecodeClientFrame(buf, &out); err == nil {
			t.Errorf("%v accepted on a client session", f.Type)
		}
	}
	var out wire.Frame
	if err := gateway.DecodeClientFrame([]byte{0xFF, 0x01, 0x02}, &out); err == nil {
		t.Error("garbage bytes decoded")
	}
	if err := gateway.DecodeClientFrame(nil, &out); err == nil {
		t.Error("empty buffer decoded")
	}
}
