// Package gateway implements FRAME's connection plane: a service that
// terminates large numbers of thin client connections and multiplexes all
// of them onto a small, fixed set of broker sessions.
//
// The broker pair (the durability plane) and the dispatch lanes (the
// fanout plane) scale with message rate, but before this package every
// subscriber was a raw TCP session owned by a broker, so the connection
// count — file descriptors, egress writer goroutines, per-session state —
// was the scaling ceiling. The gateway splits that off: clients speak the
// ordinary length-prefixed wire protocol to the gateway, the gateway holds
// exactly one upstream subscriber session per shard pair (Directory-routed
// in cluster mode), and fan-out to clients reuses the PR 5 egress rings,
// one bounded ring per end client with the same Li-aware shed/evict
// policy. A wedged phone fills its own 64-frame ring and is shed or
// evicted by its topic's loss tolerance; the broker socket never sees
// backpressure from it.
//
// Publishes from thin clients forward upstream unchanged — the gateway
// preserves the client-assigned Seq and Created stamps, so end-to-end
// semantics (dedup, FIFO-per-topic, loss accounting) are exactly those of
// a direct broker session. WrongShard redirects on the forward path kick
// a routing-table refresh just like cluster.Publisher.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clocksync"
	"repro/internal/cluster"
	"repro/internal/obsv"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DefaultClientDepth is the per-client egress ring capacity. It is much
// smaller than the broker's default: at ~1M clients per gateway the rings
// dominate memory, and a thin client that falls 64 frames behind is
// already into its topic's shed budget.
const DefaultClientDepth = 64

// Options configures a Gateway.
type Options struct {
	// ListenAddr is the client-facing listen address.
	ListenAddr string
	// Topics is the full topic table the gateway serves. The upstream
	// session subscribes to all of them; per-client delivery is filtered
	// locally from each client's Subscribe frame.
	Topics []spec.Topic
	// DirectoryAddr selects cluster mode: routes are fetched from the
	// routing plane and one upstream session is held per shard pair.
	// Mutually exclusive with BrokerAddrs.
	DirectoryAddr string
	// BrokerAddrs selects pair mode: the Primary and (optionally) Backup
	// of a single broker pair. Mutually exclusive with DirectoryAddr.
	BrokerAddrs []string
	// Network supplies listening and dialing.
	Network transport.Network
	// Clock is the synchronized timebase; nil means wall time since New.
	Clock clocksync.Clock
	// Name identifies the gateway in upstream Hello frames.
	Name string
	// ClientDepth is the per-client egress ring capacity
	// (DefaultClientDepth when <= 0).
	ClientDepth int
	// ClientNoShed switches the per-client rings to blocking backpressure
	// (tests only — it reintroduces the wedged-client stall).
	ClientNoShed bool
	// ClientWriteTimeout bounds each flush write to a client socket.
	ClientWriteTimeout time.Duration
	// Flushers sizes the shared flusher pool draining the per-client rings:
	// zero means transport.DefaultFlushers, negative restores one writer
	// goroutine per subscribed client.
	Flushers int
	// BusyPoll keeps idle flushers spinning briefly before parking, trading
	// CPU for client wakeup latency.
	BusyPoll bool
	// NoUring disables the kernel-batched egress submission backend
	// (-uring=false); the zero value enables it, degrading automatically
	// where io_uring is unavailable. See broker.Options.NoUring.
	NoUring bool
	// PinFlushers pins flusher i to CPU PinFlushers[i mod len]
	// (-pin-flushers; Linux only, no-op elsewhere).
	PinFlushers []int
	// AdminAddr, when non-empty, serves /metrics, /healthz, and pprof.
	AdminAddr string
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
}

// session is one thin client connection. The egress ring attaches lazily
// on the first Subscribe frame: publisher-only and probe sessions never
// pay for a writer goroutine.
type session struct {
	conn       *transport.Conn
	eg         *transport.Egress
	name       string
	subscribed map[spec.TopicID]bool
}

// Gateway terminates thin client sessions and bridges them to brokers.
type Gateway struct {
	opts  Options
	log   *slog.Logger
	clock clocksync.Clock

	ln      net.Listener
	admin   *obsv.Admin
	started time.Time

	// li maps each served topic to its loss tolerance for the per-client
	// shed/evict budget; unknown topics are best-effort.
	li map[spec.TopicID]int

	// Upstream: exactly one of upPair/upCluster is set.
	router    *cluster.Router
	upPair    *client.Subscriber
	upCluster *cluster.Subscriber

	mu          sync.Mutex
	sessByConn  map[*transport.Conn]*session
	sessByTopic map[spec.TopicID][]*session

	// pubMu guards the lazily-dialed upstream publish links, keyed by
	// broker address.
	pubMu    sync.Mutex
	pubLinks map[string]*transport.Conn

	meter  transport.Meter
	egress transport.EgressMeter
	// pool is the shared flusher set the client rings drain through; nil
	// when Options.Flushers is negative (per-client writer goroutines).
	pool *transport.FlusherPool

	delivered   atomic.Uint64 // distinct upstream deliveries fanned out
	forwarded   atomic.Uint64 // client publish frames forwarded upstream
	forwardErrs atomic.Uint64 // publishes dropped after exhausting routes
	redirects   atomic.Uint64 // WrongShard replies seen on publish links
	evictions   atomic.Uint64 // clients evicted past their Li budget

	kick   chan struct{} // coalesced refresh requests (capacity 1)
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New binds the listener, opens the upstream broker session(s), and
// returns a gateway ready to Start.
func New(opts Options) (*Gateway, error) {
	if opts.Network == nil {
		return nil, errors.New("gateway: nil network")
	}
	if len(opts.Topics) == 0 {
		return nil, errors.New("gateway: no topics")
	}
	if (opts.DirectoryAddr == "") == (len(opts.BrokerAddrs) == 0) {
		return nil, errors.New("gateway: exactly one of DirectoryAddr or BrokerAddrs is required")
	}
	if opts.Clock == nil {
		epoch := time.Now()
		opts.Clock = func() time.Duration { return time.Since(epoch) }
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Name == "" {
		opts.Name = "gateway"
	}
	if opts.ClientDepth <= 0 {
		opts.ClientDepth = DefaultClientDepth
	}

	g := &Gateway{
		opts:        opts,
		log:         opts.Logger.With("component", "gateway", "name", opts.Name),
		clock:       opts.Clock,
		started:     time.Now(),
		li:          make(map[spec.TopicID]int, len(opts.Topics)),
		sessByConn:  make(map[*transport.Conn]*session),
		sessByTopic: make(map[spec.TopicID][]*session),
		pubLinks:    make(map[string]*transport.Conn),
		kick:        make(chan struct{}, 1),
	}
	g.ctx, g.cancel = context.WithCancel(context.Background())
	ids := make([]spec.TopicID, 0, len(opts.Topics))
	for _, t := range opts.Topics {
		g.li[t.ID] = t.LossTolerance
		ids = append(ids, t.ID)
	}

	ln, err := opts.Network.Listen(opts.ListenAddr)
	if err != nil {
		g.cancel()
		return nil, fmt.Errorf("gateway: listen: %w", err)
	}
	g.ln = ln

	// One upstream subscriber session per shard pair carries every topic;
	// its cross-pair dedup means fanout sees each message exactly once.
	if opts.DirectoryAddr != "" {
		g.router, err = cluster.NewRouter(cluster.RouterOptions{
			DirectoryAddr: opts.DirectoryAddr,
			Network:       opts.Network,
			Logger:        opts.Logger,
		})
		if err == nil {
			g.upCluster, err = cluster.NewSubscriber(cluster.SubscriberOptions{
				Name:      opts.Name + "-up",
				Topics:    ids,
				Router:    g.router,
				Network:   opts.Network,
				Clock:     opts.Clock,
				OnDeliver: g.fanout,
				Logger:    opts.Logger,
			})
		}
	} else {
		g.upPair, err = client.NewSubscriber(client.SubscriberOptions{
			Name:        opts.Name + "-up",
			Topics:      ids,
			BrokerAddrs: opts.BrokerAddrs,
			Network:     opts.Network,
			Clock:       opts.Clock,
			OnDeliver:   g.fanout,
			Logger:      opts.Logger,
		})
	}
	if err != nil {
		ln.Close()
		g.cancel()
		return nil, fmt.Errorf("gateway: upstream subscribe: %w", err)
	}

	if opts.AdminAddr != "" {
		g.admin, err = obsv.NewAdmin(opts.AdminAddr, obsv.NewBrokerMetrics(), g.Health, g.scrapeGauges)
		if err != nil {
			g.closeUpstream()
			ln.Close()
			g.cancel()
			return nil, err
		}
	}
	if opts.Flushers >= 0 {
		g.pool = transport.NewFlusherPool(transport.FlusherPoolConfig{
			Flushers:     opts.Flushers,
			BusyPoll:     opts.BusyPoll,
			KernelSubmit: !opts.NoUring,
			PinCPUs:      opts.PinFlushers,
		})
	}
	return g, nil
}

// Addr returns the bound client-facing listen address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// AdminAddr returns the bound admin address, empty if none.
func (g *Gateway) AdminAddr() string {
	if g.admin == nil {
		return ""
	}
	return g.admin.Addr()
}

// Start launches the accept loop, the routing-refresh worker, and the
// admin endpoint.
func (g *Gateway) Start() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.acceptLoop()
	}()
	if g.router != nil {
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.refreshLoop()
		}()
	}
	if g.admin != nil {
		go g.admin.Serve()
	}
}

// Stop tears the gateway down: no new clients, every client ring closed
// and drained, upstream sessions and publish links closed.
func (g *Gateway) Stop() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	g.cancel()
	g.ln.Close()
	g.closeSessions()
	if g.pool != nil {
		// Every attached ring was closed and waited above (subscribe refuses
		// attachments once closed is set), so the pool drains clean.
		g.pool.Close()
	}
	g.closeUpstream()
	g.closePubLinks()
	if g.admin != nil {
		g.admin.Close()
	}
	g.wg.Wait()
}

func (g *Gateway) closeUpstream() {
	if g.upCluster != nil {
		g.upCluster.Close()
	}
	if g.upPair != nil {
		g.upPair.Close()
	}
}

// closeSessions mirrors broker.closeSubscribers: snapshot, close every
// egress (stops accepting frames, drains), close every conn (fails the
// in-flight write), then wait for the writers.
func (g *Gateway) closeSessions() {
	g.mu.Lock()
	sessions := make([]*session, 0, len(g.sessByConn))
	for _, s := range g.sessByConn {
		sessions = append(sessions, s)
	}
	g.mu.Unlock()
	for _, s := range sessions {
		if s.eg != nil {
			s.eg.Close()
		}
	}
	for _, s := range sessions {
		s.conn.Close()
	}
	for _, s := range sessions {
		if s.eg != nil {
			s.eg.Wait()
		}
	}
}

func (g *Gateway) closePubLinks() {
	g.pubMu.Lock()
	links := make([]*transport.Conn, 0, len(g.pubLinks))
	for _, c := range g.pubLinks {
		links = append(links, c)
	}
	g.pubLinks = make(map[string]*transport.Conn)
	g.pubMu.Unlock()
	for _, c := range links {
		c.Close()
	}
}

func (g *Gateway) acceptLoop() {
	for {
		nc, err := g.ln.Accept()
		if err != nil {
			if g.ctx.Err() == nil && !errors.Is(err, net.ErrClosed) {
				g.log.Warn("accept failed", "err", err)
			}
			return
		}
		conn := transport.NewConn(nc)
		conn.SetMeter(&g.meter)
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.serveClient(conn)
		}()
	}
}

// serveClient runs one thin client session read loop on a pooled frame,
// exactly like broker.serveConn: unregister before closing so no new
// frames enqueue, close the conn to fail any in-flight write, then wait
// for the egress writer.
func (g *Gateway) serveClient(conn *transport.Conn) {
	s := &session{conn: conn, subscribed: make(map[spec.TopicID]bool)}
	g.mu.Lock()
	g.sessByConn[conn] = s
	g.mu.Unlock()
	defer func() {
		eg := g.removeSession(conn)
		if eg != nil {
			eg.Close()
		}
		conn.Close()
		if eg != nil {
			eg.Wait()
		}
	}()
	stop := context.AfterFunc(g.ctx, func() { conn.Close() })
	defer stop()
	f := transport.GetFrame()
	defer transport.PutFrame(f)
	for {
		if err := conn.RecvInto(f); err != nil {
			return
		}
		if err := g.handleClientFrame(s, f); err != nil {
			g.log.Warn("client session error", "err", err, "type", f.Type.String())
			return
		}
	}
}

// ErrNotClientFrame rejects frame types that are not part of the
// client-facing protocol subset (broker-internal replication, routing, and
// dispatch frames arriving on a client session are protocol violations).
var ErrNotClientFrame = errors.New("gateway: frame type not allowed on a client session")

// checkClientType is the single gate deciding which frame types a thin
// client may send; handleClientFrame and DecodeClientFrame share it.
func checkClientType(t wire.Type) error {
	switch t {
	case wire.TypeHello, wire.TypeSubscribe, wire.TypePublish, wire.TypeResend,
		wire.TypePoll, wire.TypeTimeReq, wire.TypePollReply, wire.TypeTimeResp:
		return nil
	default:
		return fmt.Errorf("%w: %v", ErrNotClientFrame, t)
	}
}

// DecodeClientFrame decodes one length-stripped frame body exactly as the
// gateway's client read path does (copying decode — a client session's
// buffers recycle under it) and validates the type against the
// client-facing protocol subset. It is the fuzz surface for the client
// parser: FuzzGatewayDecode drives it with the wire corpus plus garbage.
func DecodeClientFrame(buf []byte, f *wire.Frame) error {
	if err := wire.DecodeInto(buf, f, wire.ModeCopy); err != nil {
		return err
	}
	return checkClientType(f.Type)
}

func (g *Gateway) handleClientFrame(s *session, f *wire.Frame) error {
	if err := checkClientType(f.Type); err != nil {
		return err
	}
	switch f.Type {
	case wire.TypeHello:
		g.mu.Lock()
		s.name = f.Name
		g.mu.Unlock()
		return nil
	case wire.TypeSubscribe:
		g.subscribe(s, f.Topics)
		return nil
	case wire.TypePublish, wire.TypeResend:
		return g.forwardPublish(f)
	case wire.TypePoll:
		return s.conn.Send(&wire.Frame{Type: wire.TypePollReply, Nonce: f.Nonce})
	case wire.TypeTimeReq:
		// Serving clock sync locally keeps thin clients one hop from a
		// timebase even when brokers are unreachable.
		return clocksync.Respond(s.conn, g.clock, f)
	default: // TypePollReply, TypeTimeResp: stray replies are harmless
		return nil
	}
}

// subscribe registers the session for topics and attaches its egress ring
// on first use.
func (g *Gateway) subscribe(s *session, topics []spec.TopicID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.sessByConn[s.conn] != s {
		return // lost a race with disconnect; the ring would leak
	}
	if g.closed.Load() {
		// Checked under g.mu (which Stop's session sweep also takes): a ring
		// attached now would land on a flusher pool that is already drained.
		return
	}
	if s.eg == nil {
		s.eg = transport.NewEgress(s.conn, transport.EgressConfig{
			Depth: g.opts.ClientDepth,
			Shed:  !g.opts.ClientNoShed,
			Stall: g.opts.ClientWriteTimeout,
			Meter: &g.egress,
			Pool:  g.pool,
		})
	}
	for _, id := range topics {
		if s.subscribed[id] {
			continue
		}
		s.subscribed[id] = true
		g.sessByTopic[id] = append(g.sessByTopic[id], s)
	}
}

// removeSession drops a dead session from its topics' fan-out lists and
// returns its egress (nil if none) for the caller to Close and Wait.
// Unlike the broker it walks only the session's own topics — at gateway
// churn rates a full topic-table sweep per disconnect would dominate.
func (g *Gateway) removeSession(conn *transport.Conn) *transport.Egress {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.sessByConn[conn]
	if s == nil {
		return nil
	}
	delete(g.sessByConn, conn)
	for id := range s.subscribed {
		subs := g.sessByTopic[id]
		kept := subs[:0]
		for _, e := range subs {
			if e != s {
				kept = append(kept, e)
			}
		}
		for i := len(kept); i < len(subs); i++ {
			subs[i] = nil
		}
		if len(kept) == 0 {
			delete(g.sessByTopic, id)
			continue
		}
		g.sessByTopic[id] = kept
	}
	return s.eg
}

// fanout runs for every distinct upstream delivery: encode the dispatch
// body once, then enqueue the same refcounted bytes onto every interested
// client's ring. Enqueue never blocks; a full ring sheds within the
// topic's Li budget and evicts past it, so one wedged client costs its
// own ring slots and nothing upstream. The Dispatched stamp is re-taken
// here — the gateway is the dispatching hop for its clients — while Seq
// and Created pass through untouched, preserving end-to-end accounting.
func (g *Gateway) fanout(d client.Delivery) {
	g.delivered.Add(1)
	g.mu.Lock()
	subs := g.sessByTopic[d.Msg.Topic]
	if len(subs) == 0 {
		g.mu.Unlock()
		return
	}
	li, ok := g.li[d.Msg.Topic]
	if !ok {
		li = spec.LossUnbounded
	}
	fb := transport.GetFrameBuf()
	fb.B = wire.AppendDispatchBody(fb.B[:0], &d.Msg, g.clock())
	fb.RetainN(len(subs)) // the rings own one reference per client
	for _, s := range subs {
		if s.eg.Enqueue(fb, d.Msg.Topic, li) == transport.EnqueueEvicted {
			g.evictions.Add(1)
			g.log.Warn("client evicted: consecutive sheds exceeded topic loss tolerance",
				"client", s.name, "topic", d.Msg.Topic, "li", li)
		}
	}
	g.mu.Unlock()
	fb.Release() // drop the fanout's own reference
}

// routeAddrs returns the candidate broker addresses for a topic's publish,
// Primary first.
func (g *Gateway) routeAddrs(id spec.TopicID) [2]string {
	if g.router == nil {
		var out [2]string
		copy(out[:], g.opts.BrokerAddrs)
		return out
	}
	t := g.router.Table()
	if len(t.Shards) == 0 {
		return [2]string{}
	}
	e := t.Shards[cluster.ShardOf(id, len(t.Shards))]
	return [2]string{e.Primary, e.Backup}
}

// forwardPublish relays a client's Publish/Resend frame to the topic's
// broker pair unchanged. A send failure closes the link and falls through
// to the pair's other member; when every route fails the frame is counted
// and dropped rather than killing the client session — the client's Ni
// retention plus its topic's Li budget cover exactly this window, the same
// contract a direct publisher has during fail-over.
func (g *Gateway) forwardPublish(f *wire.Frame) error {
	addrs := g.routeAddrs(f.Msg.Topic)
	for _, addr := range addrs {
		if addr == "" {
			continue
		}
		conn, err := g.pubLink(addr)
		if err != nil {
			g.log.Warn("publish link dial failed", "addr", addr, "err", err)
			continue
		}
		if err := conn.Send(f); err != nil {
			g.dropPubLink(addr, conn)
			continue
		}
		g.forwarded.Add(1)
		return nil
	}
	g.forwardErrs.Add(1)
	return nil
}

// pubLink returns the shared upstream publish connection for addr, dialing
// and registering it on first use. Each link runs a reader goroutine that
// watches for WrongShard redirects and turns them into coalesced routing
// refreshes — the cluster.Publisher pattern, shared across all clients.
func (g *Gateway) pubLink(addr string) (*transport.Conn, error) {
	g.pubMu.Lock()
	defer g.pubMu.Unlock()
	if conn, ok := g.pubLinks[addr]; ok {
		return conn, nil
	}
	if g.ctx.Err() != nil {
		return nil, g.ctx.Err()
	}
	nc, err := g.opts.Network.Dial(addr)
	if err != nil {
		return nil, err
	}
	conn := transport.NewConn(nc)
	conn.SetMeter(&g.meter)
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: wire.RolePublisher, Name: g.opts.Name + "-pub"}); err != nil {
		conn.Close()
		return nil, err
	}
	g.pubLinks[addr] = conn
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.pubLinkReader(addr, conn)
	}()
	return conn, nil
}

func (g *Gateway) dropPubLink(addr string, conn *transport.Conn) {
	g.pubMu.Lock()
	if g.pubLinks[addr] == conn {
		delete(g.pubLinks, addr)
	}
	g.pubMu.Unlock()
	conn.Close()
}

// pubLinkReader drains a publish link. The only meaningful inbound frame
// is a WrongShard redirect: count it and kick the refresher without ever
// blocking the publish path.
func (g *Gateway) pubLinkReader(addr string, conn *transport.Conn) {
	stop := context.AfterFunc(g.ctx, func() { conn.Close() })
	defer stop()
	f := transport.GetFrame()
	defer transport.PutFrame(f)
	for {
		if err := conn.RecvInto(f); err != nil {
			return
		}
		if f.Type == wire.TypeWrongShard {
			g.redirects.Add(1)
			select {
			case g.kick <- struct{}{}:
			default: // a refresh is already pending; coalesce
			}
		}
	}
}

// refreshLoop serializes routing-table refreshes behind the kick channel
// so a burst of redirects costs one directory round trip.
func (g *Gateway) refreshLoop() {
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-g.kick:
			if _, err := g.router.Refresh(); err != nil {
				g.log.Warn("routing refresh failed", "err", err)
			}
		}
	}
}

// Clients returns the number of live client sessions (subscribed or not).
func (g *Gateway) Clients() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.sessByConn)
}

// Subscribers returns the number of client sessions with an egress ring.
func (g *Gateway) Subscribers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, s := range g.sessByConn {
		if s.eg != nil {
			n++
		}
	}
	return n
}

// queued sums current ring occupancy across subscribed clients.
func (g *Gateway) queued() (frames, subs int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range g.sessByConn {
		if s.eg != nil {
			frames += s.eg.Depth()
			subs++
		}
	}
	return frames, subs
}

// EgressStats snapshots the aggregate per-client ring counters, merging in
// the flusher pool's kernel-submission counters (see broker.EgressStats).
func (g *Gateway) EgressStats() transport.EgressStats {
	s := g.egress.Snapshot()
	if g.pool != nil {
		ps := g.pool.Stats()
		s.SubmittedBatches = ps.Sweeps
		s.SweepConns = ps.SweepConns
		s.WriteSyscalls += ps.Syscalls
		s.KernelSubmit = ps.Kernel
	}
	return s
}

// Delivered returns distinct upstream deliveries fanned out so far.
func (g *Gateway) Delivered() uint64 { return g.delivered.Load() }

// Forwarded returns client publishes relayed upstream so far.
func (g *Gateway) Forwarded() uint64 { return g.forwarded.Load() }

// ForwardErrs returns client publishes dropped after exhausting routes.
func (g *Gateway) ForwardErrs() uint64 { return g.forwardErrs.Load() }

// Redirects returns WrongShard redirects observed on publish links.
func (g *Gateway) Redirects() uint64 { return g.redirects.Load() }

// Evictions returns clients evicted for exceeding a topic's Li budget.
func (g *Gateway) Evictions() uint64 { return g.evictions.Load() }

// upstreamDesc names the upstream plane for health reports.
func (g *Gateway) upstreamDesc() string {
	if g.opts.DirectoryAddr != "" {
		return "directory:" + g.opts.DirectoryAddr
	}
	if len(g.opts.BrokerAddrs) > 0 {
		return g.opts.BrokerAddrs[0]
	}
	return ""
}

// Health reports liveness in the broker health shape so existing probes
// and dashboards work unchanged: EgressSubs counts subscribed clients,
// the egress counters aggregate the per-client rings.
func (g *Gateway) Health() obsv.Health {
	es := g.egress.Snapshot()
	queued, subs := g.queued()
	return obsv.Health{
		Role:            "gateway",
		Addr:            g.Addr(),
		PeerAddr:        g.upstreamDesc(),
		PeerConnected:   true,
		UptimeSeconds:   time.Since(g.started).Seconds(),
		EgressQueued:    queued,
		EgressSubs:      subs,
		EgressShed:      es.Shed,
		EgressEvictions: es.Evictions,
		EgressWriteErrs: es.WriteErrs,
	}
}

func (g *Gateway) scrapeGauges() []obsv.Sample {
	es := g.egress.Snapshot()
	queued, subs := g.queued()
	samples := []obsv.Sample{
		{Name: "frame_role", Label: `role="gateway"`, Value: 1,
			Help: "Current fault-tolerance role (1 for the active label)."},
		{Name: "frame_uptime_seconds", Value: time.Since(g.started).Seconds(),
			Help: "Wall time since the gateway was created."},
		{Name: "frame_gateway_clients", Value: float64(g.Clients()),
			Help: "Live thin client sessions."},
		{Name: "frame_gateway_subscribers", Value: float64(subs),
			Help: "Client sessions with an attached egress ring."},
		{Name: "frame_gateway_delivered_total", Counter: true, Value: float64(g.delivered.Load()),
			Help: "Distinct upstream deliveries fanned out to client rings."},
		{Name: "frame_gateway_forwarded_total", Counter: true, Value: float64(g.forwarded.Load()),
			Help: "Client publish frames forwarded to brokers."},
		{Name: "frame_gateway_forward_errors_total", Counter: true, Value: float64(g.forwardErrs.Load()),
			Help: "Client publishes dropped after every candidate route failed."},
		{Name: "frame_gateway_redirects_total", Counter: true, Value: float64(g.redirects.Load()),
			Help: "WrongShard redirects observed on upstream publish links."},
		{Name: "frame_gateway_egress_enqueued_total", Counter: true, Value: float64(es.Enqueued),
			Help: "Frames accepted into per-client egress rings."},
		{Name: "frame_gateway_egress_flushed_total", Counter: true, Value: float64(es.Flushed),
			Help: "Frames written to client sockets by egress writers."},
		{Name: "frame_gateway_egress_batches_total", Counter: true, Value: float64(es.Batches),
			Help: "Vectored client writes issued (frames per syscall = flushed/batches)."},
		{Name: "frame_gateway_egress_shed_total", Counter: true, Value: float64(es.Shed),
			Help: "Frames dropped by the per-client Li-aware shed policy."},
		{Name: "frame_gateway_egress_evictions_total", Counter: true, Value: float64(es.Evictions),
			Help: "Clients evicted for exceeding a topic's loss tolerance in consecutive drops."},
		{Name: "frame_gateway_egress_stalls_total", Counter: true, Value: float64(es.Stalls),
			Help: "Client egress writes failed by the write-stall deadline."},
		{Name: "frame_gateway_egress_write_errors_total", Counter: true, Value: float64(es.WriteErrs),
			Help: "Failed client egress flush writes (stalls included)."},
		{Name: "frame_gateway_egress_queued", Value: float64(queued),
			Help: "Frames currently queued across per-client egress rings."},
		{Name: "frame_transport_frames_sent_total", Counter: true, Value: float64(g.meter.FramesSent.Load()),
			Help: "Wire frames sent on gateway-owned connections."},
		{Name: "frame_transport_bytes_sent_total", Counter: true, Value: float64(g.meter.BytesSent.Load()),
			Help: "Wire bytes sent on gateway-owned connections."},
		{Name: "frame_transport_frames_recv_total", Counter: true, Value: float64(g.meter.FramesRecv.Load()),
			Help: "Wire frames received on gateway-owned connections."},
		{Name: "frame_transport_bytes_recv_total", Counter: true, Value: float64(g.meter.BytesRecv.Load()),
			Help: "Wire bytes received on gateway-owned connections."},
	}
	if g.pool != nil {
		ps := g.pool.Stats()
		kernel := 0.0
		if ps.Kernel {
			kernel = 1
		}
		samples = append(samples,
			obsv.Sample{Name: "frame_egress_flushers", Value: float64(g.pool.Size()),
				Help: "Shared egress flusher goroutines (0 when per-client writers are in use)."},
			obsv.Sample{Name: "frame_egress_escalations_total", Counter: true,
				Value: float64(g.pool.Escalations()), Help: "Replacement flushers spawned to route around wedged client writes."},
			obsv.Sample{Name: "frame_egress_uring", Value: kernel,
				Help: "1 when the kernel-batched (io_uring) egress submission backend is active."},
			obsv.Sample{Name: "frame_egress_submitted_batches_total", Counter: true,
				Value: float64(ps.Sweeps), Help: "Kernel-batched sweep submissions (many client connections per submission)."},
			obsv.Sample{Name: "frame_egress_sweep_conns_total", Counter: true,
				Value: float64(ps.SweepConns), Help: "Client connection writes carried by kernel-batched sweeps."},
			obsv.Sample{Name: "frame_egress_write_syscalls_total", Counter: true,
				Value: float64(es.WriteSyscalls + ps.Syscalls),
				Help:  "Kernel crossings spent writing client egress frames."},
		)
	}
	return samples
}
