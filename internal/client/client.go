// Package client implements FRAME's endpoint runtimes: Publishers, which
// act as proxies for collections of IIoT devices, retain their Ni latest
// messages per topic, and re-send them to the Backup on fail-over
// (§III-B); and Subscribers, which receive dispatches from whichever
// broker is Primary, discard duplicates, and record end-to-end latency and
// loss statistics (§VI).
package client

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/clocksync"
	"repro/internal/failover"
	"repro/internal/ringbuf"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

// PublisherOptions configures a publisher proxy.
type PublisherOptions struct {
	// Name identifies the publisher in Hello frames and logs.
	Name string
	// Topics are the topics this proxy owns; Retention (Ni) is per topic.
	Topics []spec.Topic
	// PrimaryAddr and BackupAddr are the broker endpoints. BackupAddr may
	// be empty when no backup exists.
	PrimaryAddr, BackupAddr string
	// Network supplies dialing.
	Network transport.Network
	// Clock is the synchronized timebase used to stamp tc.
	Clock clocksync.Clock
	// Detector tunes crash detection of the Primary; zero-value means
	// failover.DefaultConfig. Only used when BackupAddr is non-empty.
	Detector failover.Config
	// OnWrongShard, if non-nil, runs whenever a broker answers a publish
	// with a WrongShard redirect, passing the rejected topic and the
	// broker's routing epoch, from a receiving goroutine. Cluster
	// publishers use it to refresh a stale cached routing table and
	// re-home the topic (package cluster).
	OnWrongShard func(topic spec.TopicID, epoch uint64)
	// DurableAcks makes Publish block until the broker answers with a
	// PubAck — the broker's durable mode certifying the message reached
	// stable storage. Only meaningful against a broker started with
	// -durable; against an in-memory broker every Publish times out.
	DurableAcks bool
	// AckTimeout bounds how long a durable Publish waits for its PubAck;
	// zero means DefaultAckTimeout.
	AckTimeout time.Duration
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
}

// DefaultAckTimeout is the durable Publish ack wait when
// PublisherOptions.AckTimeout is zero: generous next to any plausible
// group-commit interval, small enough that a dead broker fails fast.
const DefaultAckTimeout = 5 * time.Second

// Publisher is a proxy for a set of topics. Publish stamps and sends
// messages to the current Primary; when its detector declares the Primary
// dead it redirects to the Backup, first re-sending each topic's retained
// messages. Publisher is safe for concurrent use.
type Publisher struct {
	opts PublisherOptions
	log  *slog.Logger

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex
	conn       *transport.Conn // current broker link
	backup     *transport.Conn // standby link (nil without a backup)
	failedOver bool            // primary declared dead; traffic on backup
	seqs       map[spec.TopicID]uint64
	retained   map[spec.TopicID]*ringbuf.Ring[wire.Message]
	topics     map[spec.TopicID]spec.Topic
	// acks holds durable Publish calls parked on their PubAck, keyed by
	// (topic, seq); the receive loops close the channel on arrival. Nil
	// unless DurableAcks. Guarded by ackMu, NOT mu: the receive loop must
	// be able to consume PubAcks while a Publish holds mu across a
	// blocking send, or the two directions of the broker link deadlock
	// against each other.
	ackMu sync.Mutex
	acks  map[ackKey]chan struct{}

	failedOverCh chan struct{}
}

// ackKey identifies one durable publish awaiting its PubAck.
type ackKey struct {
	topic spec.TopicID
	seq   uint64
}

// NewPublisher dials the brokers and returns a running publisher.
func NewPublisher(opts PublisherOptions) (*Publisher, error) {
	if opts.Network == nil || opts.Clock == nil {
		return nil, errors.New("client: publisher needs network and clock")
	}
	// Zero topics is allowed: a cluster publisher opens an empty shell per
	// shard and AdoptTopic populates it as the routing table assigns work.
	if opts.Detector == (failover.Config{}) {
		opts.Detector = failover.DefaultConfig()
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	p := &Publisher{
		opts:         opts,
		log:          opts.Logger.With("publisher", opts.Name),
		seqs:         make(map[spec.TopicID]uint64, len(opts.Topics)),
		retained:     make(map[spec.TopicID]*ringbuf.Ring[wire.Message], len(opts.Topics)),
		topics:       make(map[spec.TopicID]spec.Topic, len(opts.Topics)),
		failedOverCh: make(chan struct{}),
	}
	if opts.DurableAcks {
		p.acks = make(map[ackKey]chan struct{})
		if p.opts.AckTimeout <= 0 {
			p.opts.AckTimeout = DefaultAckTimeout
		}
	}
	for _, t := range opts.Topics {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		p.topics[t.ID] = t
		if t.Retention > 0 {
			p.retained[t.ID] = ringbuf.New[wire.Message](t.Retention)
		}
	}
	conn, err := dialHello(opts.Network, opts.PrimaryAddr, opts.Name, wire.RolePublisher)
	if err != nil {
		return nil, fmt.Errorf("client: dial primary: %w", err)
	}
	p.conn = conn
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.startRecvLoop(ctx, conn)
	if opts.BackupAddr != "" {
		backup, err := dialHello(opts.Network, opts.BackupAddr, opts.Name, wire.RolePublisher)
		if err != nil {
			conn.Close()
			cancel()
			return nil, fmt.Errorf("client: dial backup: %w", err)
		}
		p.backup = backup
		p.startRecvLoop(ctx, backup)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.watchPrimary(ctx)
		}()
	}
	return p, nil
}

// startRecvLoop drains broker→publisher frames on conn until it closes.
// Publishers historically never read their links; the cluster redirect
// protocol makes the reverse direction carry WrongShard frames, so every
// link gets a reader to surface them (and to keep the broker's send path
// from backing up against an unread socket).
func (p *Publisher) startRecvLoop(ctx context.Context, conn *transport.Conn) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		stop := context.AfterFunc(ctx, func() { conn.Close() })
		defer stop()
		f := transport.GetFrame()
		defer transport.PutFrame(f)
		for {
			if err := conn.RecvInto(f); err != nil {
				return
			}
			if f.Type == wire.TypeWrongShard && p.opts.OnWrongShard != nil {
				p.opts.OnWrongShard(f.Topic, f.Epoch)
			}
			if f.Type == wire.TypePubAck {
				p.ackDurable(f.Topic, f.Seq)
			}
		}
	}()
}

func dialHello(n transport.Network, addr, name string, role wire.Role) (*transport.Conn, error) {
	nc, err := n.Dial(addr)
	if err != nil {
		return nil, err
	}
	conn := transport.NewConn(nc)
	if err := conn.Send(&wire.Frame{Type: wire.TypeHello, Role: role, Name: name}); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// Publish creates the next message of the topic: stamps tc and the next
// sequence number, retains a copy (evicting beyond Ni), and sends it to the
// current broker. It returns the assigned sequence number.
//
// With DurableAcks set, Publish additionally blocks — outside the
// publisher's lock, so concurrent publishes keep flowing — until the broker
// answers with a PubAck certifying the message is on stable storage, or
// AckTimeout passes. A timeout returns an error with the sequence number
// still valid: the message may well be durable and in flight; only the
// confirmation is missing.
func (p *Publisher) Publish(topic spec.TopicID, payload []byte) (uint64, error) {
	p.mu.Lock()
	if _, ok := p.topics[topic]; !ok {
		p.mu.Unlock()
		return 0, fmt.Errorf("client: publisher does not own topic %d", topic)
	}
	p.seqs[topic]++
	m := wire.Message{
		Topic:   topic,
		Seq:     p.seqs[topic],
		Created: p.opts.Clock(),
		Payload: payload,
	}
	if ring := p.retained[topic]; ring != nil {
		ring.Push(m)
	}
	var ack chan struct{}
	if p.acks != nil {
		// Register before the send so the receive loop cannot see the
		// PubAck before the waiter exists.
		ack = make(chan struct{})
		p.ackMu.Lock()
		p.acks[ackKey{topic, m.Seq}] = ack
		p.ackMu.Unlock()
	}
	err := p.conn.Send(&wire.Frame{Type: wire.TypePublish, Msg: m})
	p.mu.Unlock()
	if err != nil {
		p.dropAck(topic, m.Seq)
		return m.Seq, fmt.Errorf("client: publish: %w", err)
	}
	if ack == nil {
		return m.Seq, nil
	}
	t := time.NewTimer(p.opts.AckTimeout)
	defer t.Stop()
	select {
	case <-ack:
		return m.Seq, nil
	case <-t.C:
		p.dropAck(topic, m.Seq)
		return m.Seq, fmt.Errorf("client: no durable ack for topic %d seq %d within %v", topic, m.Seq, p.opts.AckTimeout)
	}
}

// ackDurable releases the Publish call parked on (topic, seq), if any.
// Duplicate PubAcks — e.g. a fail-over resend re-acked by the Backup —
// find no waiter and are ignored. Runs on receive-loop goroutines and
// deliberately takes only ackMu (see the acks field).
func (p *Publisher) ackDurable(topic spec.TopicID, seq uint64) {
	p.ackMu.Lock()
	ack := p.acks[ackKey{topic, seq}]
	delete(p.acks, ackKey{topic, seq})
	p.ackMu.Unlock()
	if ack != nil {
		close(ack)
	}
}

// dropAck deregisters an ack waiter that will never be satisfied.
func (p *Publisher) dropAck(topic spec.TopicID, seq uint64) {
	if p.acks == nil {
		return
	}
	p.ackMu.Lock()
	delete(p.acks, ackKey{topic, seq})
	p.ackMu.Unlock()
}

// LastSeq returns the highest sequence number created for the topic.
func (p *Publisher) LastSeq(topic spec.TopicID) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seqs[topic]
}

// FailedOver returns a channel closed once the publisher has redirected to
// the Backup.
func (p *Publisher) FailedOver() <-chan struct{} { return p.failedOverCh }

// DropTopic removes the topic from this publisher and returns its portable
// state for re-homing on the publisher of another shard: the last sequence
// number created and the retained messages, oldest first. Publishing to a
// dropped topic fails until it is adopted again.
func (p *Publisher) DropTopic(id spec.TopicID) (lastSeq uint64, retained []wire.Message, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.topics[id]; !ok {
		return 0, nil, fmt.Errorf("client: publisher does not own topic %d", id)
	}
	lastSeq = p.seqs[id]
	if ring := p.retained[id]; ring != nil {
		ring.Do(func(_ uint64, m wire.Message) { retained = append(retained, m) })
	}
	delete(p.topics, id)
	delete(p.seqs, id)
	delete(p.retained, id)
	return lastSeq, retained, nil
}

// AdoptTopic registers a topic previously owned elsewhere, seeding its
// sequence counter and retained ring from DropTopic's output so sequence
// numbers stay gapless across the move. When resend is true the retained
// messages are also re-sent to the current broker as Resend frames — the
// §III-B fail-over flow reused for shard re-homing; subscriber duplicate
// discard absorbs any overlap with messages the old shard already
// dispatched.
func (p *Publisher) AdoptTopic(t spec.Topic, lastSeq uint64, retained []wire.Message, resend bool) error {
	if err := t.Validate(); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.topics[t.ID]; ok {
		return fmt.Errorf("client: publisher already owns topic %d", t.ID)
	}
	p.topics[t.ID] = t
	p.seqs[t.ID] = lastSeq
	var ring *ringbuf.Ring[wire.Message]
	if t.Retention > 0 {
		ring = ringbuf.New[wire.Message](t.Retention)
		p.retained[t.ID] = ring
	}
	for _, m := range retained {
		if ring != nil {
			ring.Push(m)
		}
		if resend {
			if err := p.conn.Send(&wire.Frame{Type: wire.TypeResend, Msg: m}); err != nil {
				return fmt.Errorf("client: adopt resend topic %d seq %d: %w", t.ID, m.Seq, err)
			}
		}
	}
	return nil
}

// watchPrimary runs the crash detector over a dedicated polling connection,
// then performs the §III-B fail-over: redirect traffic to the Backup and
// re-send all retained messages.
func (p *Publisher) watchPrimary(ctx context.Context) {
	pollConn, err := dialHello(p.opts.Network, p.opts.PrimaryAddr, p.opts.Name, wire.RolePublisher)
	if err != nil {
		p.log.Warn("poll dial failed; assuming primary dead", "err", err)
		p.failOver()
		return
	}
	defer pollConn.Close()
	stop := context.AfterFunc(ctx, func() { pollConn.Close() })
	defer stop()
	det, err := failover.New(p.opts.Detector, failover.ConnProbe(pollConn), p.failOver)
	if err != nil {
		p.log.Error("detector init failed", "err", err)
		return
	}
	if err := det.Run(ctx); err != nil && ctx.Err() == nil {
		p.log.Warn("detector stopped", "err", err)
	}
}

// failOver redirects to the Backup and re-sends the retained messages of
// every topic, oldest first.
func (p *Publisher) failOver() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failedOver || p.backup == nil {
		return
	}
	p.failedOver = true
	old := p.conn
	p.conn = p.backup
	old.Close()
	resent := 0
	for id, ring := range p.retained {
		ring.Do(func(_ uint64, m wire.Message) {
			if err := p.conn.Send(&wire.Frame{Type: wire.TypeResend, Msg: m}); err != nil {
				p.log.Warn("resend failed", "topic", id, "seq", m.Seq, "err", err)
				return
			}
			resent++
		})
	}
	close(p.failedOverCh)
	p.log.Info("failed over to backup", "resent", resent)
}

// Close shuts the publisher down.
func (p *Publisher) Close() {
	p.cancel()
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.Close()
	if p.backup != nil {
		p.backup.Close()
	}
}

// Delivery is one received message with measurement context.
//
// Ownership: Msg.Payload is backed by the receive path's reused buffers and
// is valid only for the duration of the OnDeliver callback; a consumer that
// retains the payload beyond the callback must copy it.
type Delivery struct {
	Msg wire.Message
	// Latency is ts − tc in the synchronized timebase.
	Latency time.Duration
	// Duplicate marks re-deliveries (already counted once).
	Duplicate bool
	// Source is the broker address this copy arrived from, as dialed.
	Source string
}

// SubscriberOptions configures a subscriber.
type SubscriberOptions struct {
	// Name identifies the subscriber.
	Name string
	// Topics to subscribe to.
	Topics []spec.TopicID
	// BrokerAddrs lists every broker to connect to (Primary and Backup;
	// the paper's subscribers hold connections to both).
	BrokerAddrs []string
	// Network supplies dialing.
	Network transport.Network
	// Clock is the synchronized timebase used to stamp ts.
	Clock clocksync.Clock
	// OnDeliver, if non-nil, runs for every distinct delivery (not for
	// duplicates) from the receiving goroutine.
	OnDeliver func(Delivery)
	// OnFrame, if non-nil, runs for every dispatch frame received —
	// including duplicates (Duplicate set) — from the receiving goroutine.
	// Chaos invariant checkers use it to see the raw per-link arrival
	// stream that OnDeliver's dedup hides.
	OnFrame func(Delivery)
	// Logger receives operational events; nil means slog.Default.
	Logger *slog.Logger
}

// Subscriber receives dispatches from all configured brokers, discarding
// duplicate sequence numbers (§VI-C), and keeps per-topic delivery records.
type Subscriber struct {
	opts SubscriberOptions
	log  *slog.Logger

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	seen      map[spec.TopicID]map[uint64]bool
	latencies map[spec.TopicID][]time.Duration
	received  map[spec.TopicID]uint64
	dups      uint64
}

// NewSubscriber dials every broker, subscribes, and starts receive loops.
func NewSubscriber(opts SubscriberOptions) (*Subscriber, error) {
	if opts.Network == nil || opts.Clock == nil {
		return nil, errors.New("client: subscriber needs network and clock")
	}
	if len(opts.Topics) == 0 || len(opts.BrokerAddrs) == 0 {
		return nil, errors.New("client: subscriber needs topics and brokers")
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	s := &Subscriber{
		opts:      opts,
		log:       opts.Logger.With("subscriber", opts.Name),
		seen:      make(map[spec.TopicID]map[uint64]bool),
		latencies: make(map[spec.TopicID][]time.Duration),
		received:  make(map[spec.TopicID]uint64),
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	var conns []*transport.Conn
	for _, addr := range opts.BrokerAddrs {
		conn, err := dialHello(opts.Network, addr, opts.Name, wire.RoleSubscriber)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			cancel()
			return nil, fmt.Errorf("client: dial broker %s: %w", addr, err)
		}
		if err := conn.Send(&wire.Frame{Type: wire.TypeSubscribe, Topics: opts.Topics}); err != nil {
			conn.Close()
			for _, c := range conns {
				c.Close()
			}
			cancel()
			return nil, fmt.Errorf("client: subscribe at %s: %w", addr, err)
		}
		conns = append(conns, conn)
	}
	for i, conn := range conns {
		conn, source := conn, opts.BrokerAddrs[i]
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			stop := context.AfterFunc(ctx, func() { conn.Close() })
			defer stop()
			s.receiveLoop(conn, source)
		}()
	}
	return s, nil
}

// receiveLoop drains one broker link with a pooled, reused frame: each
// dispatch is fully handled (latency recorded, OnDeliver invoked) before
// the next receive overwrites the frame's storage.
func (s *Subscriber) receiveLoop(conn *transport.Conn, source string) {
	f := transport.GetFrame()
	defer transport.PutFrame(f)
	for {
		if err := conn.RecvInto(f); err != nil {
			return
		}
		if f.Type != wire.TypeDispatch {
			continue
		}
		s.onDispatch(f, source)
	}
}

func (s *Subscriber) onDispatch(f *wire.Frame, source string) {
	now := s.opts.Clock()
	latency := now - f.Msg.Created
	s.mu.Lock()
	seen := s.seen[f.Msg.Topic]
	if seen == nil {
		seen = make(map[uint64]bool)
		s.seen[f.Msg.Topic] = seen
	}
	dup := seen[f.Msg.Seq]
	if dup {
		s.dups++
	} else {
		seen[f.Msg.Seq] = true
		s.received[f.Msg.Topic]++
		s.latencies[f.Msg.Topic] = append(s.latencies[f.Msg.Topic], latency)
	}
	cbDeliver := s.opts.OnDeliver
	cbFrame := s.opts.OnFrame
	s.mu.Unlock()
	if cbFrame != nil {
		cbFrame(Delivery{Msg: f.Msg, Latency: latency, Duplicate: dup, Source: source})
	}
	if dup {
		return
	}
	if cbDeliver != nil {
		cbDeliver(Delivery{Msg: f.Msg, Latency: latency, Source: source})
	}
}

// Received returns how many distinct messages arrived for the topic.
func (s *Subscriber) Received(topic spec.TopicID) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received[topic]
}

// Duplicates returns how many duplicate deliveries were discarded.
func (s *Subscriber) Duplicates() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups
}

// Latencies returns a copy of the topic's end-to-end latency samples.
func (s *Subscriber) Latencies(topic spec.TopicID) []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.latencies[topic]...)
}

// MaxConsecutiveLoss reconstructs the longest run of missing sequence
// numbers for the topic, given the highest sequence the publisher created.
func (s *Subscriber) MaxConsecutiveLoss(topic spec.TopicID, highestCreated uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := s.seen[topic]
	maxRun, run := 0, 0
	for q := uint64(1); q <= highestCreated; q++ {
		if seen[q] {
			run = 0
			continue
		}
		run++
		if run > maxRun {
			maxRun = run
		}
	}
	return maxRun
}

// Close tears down all broker connections and waits for receive loops.
func (s *Subscriber) Close() {
	s.cancel()
	s.wg.Wait()
}
