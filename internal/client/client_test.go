package client

import (
	"log/slog"
	"sync"
	"testing"
	"time"

	"repro/internal/failover"
	"repro/internal/spec"
	"repro/internal/transport"
	"repro/internal/wire"
)

func quiet() *slog.Logger {
	return slog.New(slog.NewTextHandler(discard{}, &slog.HandlerOptions{Level: slog.LevelError}))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func clock() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

func topic(id spec.TopicID, retention int) spec.Topic {
	return spec.Topic{
		ID: id, Category: -1, Period: 20 * time.Millisecond, Deadline: time.Second,
		LossTolerance: 0, Retention: retention, Destination: spec.DestEdge, PayloadSize: 16,
	}
}

// fakeBroker accepts connections and records every frame, answering polls
// and optionally dying on command.
type fakeBroker struct {
	name string
	ln   interface{ Close() error }

	mu       sync.Mutex
	frames   []*wire.Frame
	conns    []*transport.Conn
	answerMu sync.Mutex
	answer   bool
}

func newFakeBroker(t *testing.T, n transport.Network, addr string) *fakeBroker {
	t.Helper()
	ln, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	fb := &fakeBroker{name: addr, ln: ln, answer: true}
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			conn := transport.NewConn(nc)
			fb.mu.Lock()
			fb.conns = append(fb.conns, conn)
			fb.mu.Unlock()
			go fb.serve(conn)
		}
	}()
	t.Cleanup(fb.kill)
	return fb
}

func (fb *fakeBroker) serve(conn *transport.Conn) {
	for {
		f, err := conn.Recv()
		if err != nil {
			return
		}
		fb.mu.Lock()
		fb.frames = append(fb.frames, f)
		fb.mu.Unlock()
		if f.Type == wire.TypePoll && fb.answering() {
			if err := conn.Send(&wire.Frame{Type: wire.TypePollReply, Nonce: f.Nonce}); err != nil {
				return
			}
		}
	}
}

func (fb *fakeBroker) answering() bool {
	fb.answerMu.Lock()
	defer fb.answerMu.Unlock()
	return fb.answer
}

func (fb *fakeBroker) kill() {
	fb.ln.Close()
	fb.mu.Lock()
	defer fb.mu.Unlock()
	for _, c := range fb.conns {
		c.Close()
	}
	fb.conns = nil
}

func (fb *fakeBroker) framesOf(t wire.Type) []*wire.Frame {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	var out []*wire.Frame
	for _, f := range fb.frames {
		if f.Type == t {
			out = append(out, f)
		}
	}
	return out
}

func fastDetector() failover.Config {
	return failover.Config{Period: 2 * time.Millisecond, Timeout: 5 * time.Millisecond, Misses: 2}
}

func TestPublisherValidation(t *testing.T) {
	n := transport.NewMem()
	newFakeBroker(t, n, "primary")
	tests := []struct {
		name string
		opts PublisherOptions
	}{
		{"nil network", PublisherOptions{Clock: clock(), Topics: []spec.Topic{topic(1, 1)}}},
		{"nil clock", PublisherOptions{Network: n, Topics: []spec.Topic{topic(1, 1)}}},
		{"invalid topic", PublisherOptions{Network: n, Clock: clock(),
			Topics: []spec.Topic{{ID: 1}}, PrimaryAddr: "primary"}},
		{"bad primary addr", PublisherOptions{Network: n, Clock: clock(),
			Topics: []spec.Topic{topic(1, 1)}, PrimaryAddr: "nobody"}},
		{"bad backup addr", PublisherOptions{Network: n, Clock: clock(),
			Topics: []spec.Topic{topic(1, 1)}, PrimaryAddr: "primary", BackupAddr: "nobody"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.Logger = quiet()
			if _, err := NewPublisher(tc.opts); err == nil {
				t.Error("invalid options accepted")
			}
		})
	}
	// Zero topics is a valid empty shell (cluster re-homing adopts into it).
	pub, err := NewPublisher(PublisherOptions{
		Network: n, Clock: clock(), PrimaryAddr: "primary", Logger: quiet(),
	})
	if err != nil {
		t.Fatalf("zero-topic publisher rejected: %v", err)
	}
	pub.Close()
}

func TestPublisherStampsSequencesAndRetains(t *testing.T) {
	n := transport.NewMem()
	primary := newFakeBroker(t, n, "primary")
	pub, err := NewPublisher(PublisherOptions{
		Name: "p", Topics: []spec.Topic{topic(1, 2), topic(2, 0)},
		PrimaryAddr: "primary", Network: n, Clock: clock(), Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	for i := 1; i <= 5; i++ {
		seq, err := pub.Publish(1, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Errorf("publish %d returned seq %d", i, seq)
		}
	}
	if _, err := pub.Publish(2, nil); err != nil {
		t.Fatal(err)
	}
	if pub.LastSeq(1) != 5 || pub.LastSeq(2) != 1 {
		t.Errorf("LastSeq = %d, %d", pub.LastSeq(1), pub.LastSeq(2))
	}
	deadline := time.Now().Add(time.Second)
	for len(primary.framesOf(wire.TypePublish)) < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	pubs := primary.framesOf(wire.TypePublish)
	if len(pubs) != 6 {
		t.Fatalf("broker saw %d publishes, want 6", len(pubs))
	}
	// Creation timestamps must be monotone within a topic.
	var prev time.Duration
	for _, f := range pubs {
		if f.Msg.Topic != 1 {
			continue
		}
		if f.Msg.Created < prev {
			t.Error("creation timestamps not monotone")
		}
		prev = f.Msg.Created
	}
}

func TestPublisherFailoverResendsRetained(t *testing.T) {
	n := transport.NewMem()
	primary := newFakeBroker(t, n, "primary")
	backup := newFakeBroker(t, n, "backup")
	pub, err := NewPublisher(PublisherOptions{
		Name: "p", Topics: []spec.Topic{topic(1, 3)},
		PrimaryAddr: "primary", BackupAddr: "backup",
		Network: n, Clock: clock(), Detector: fastDetector(), Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	for i := 0; i < 7; i++ {
		if _, err := pub.Publish(1, []byte("retained-payload")); err != nil {
			t.Fatal(err)
		}
	}
	primary.kill()
	select {
	case <-pub.FailedOver():
	case <-time.After(2 * time.Second):
		t.Fatal("publisher never failed over")
	}
	// Retention 3 → the backup received resends of seqs 5, 6, 7.
	deadline := time.Now().Add(time.Second)
	for len(backup.framesOf(wire.TypeResend)) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resends := backup.framesOf(wire.TypeResend)
	if len(resends) != 3 {
		t.Fatalf("backup saw %d resends, want 3", len(resends))
	}
	want := uint64(5)
	for _, f := range resends {
		if f.Msg.Seq != want {
			t.Errorf("resend seq %d, want %d", f.Msg.Seq, want)
		}
		want++
	}
	// Publishing continues against the backup.
	if _, err := pub.Publish(1, []byte("after-failover!!")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(time.Second)
	for len(backup.framesOf(wire.TypePublish)) < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := backup.framesOf(wire.TypePublish); len(got) != 1 || got[0].Msg.Seq != 8 {
		t.Errorf("post-failover publish: %d frames", len(got))
	}
}

func TestPublisherRejectsUnownedTopic(t *testing.T) {
	n := transport.NewMem()
	newFakeBroker(t, n, "primary")
	pub, err := NewPublisher(PublisherOptions{
		Name: "p", Topics: []spec.Topic{topic(1, 1)},
		PrimaryAddr: "primary", Network: n, Clock: clock(), Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if _, err := pub.Publish(42, nil); err == nil {
		t.Error("unowned topic accepted")
	}
}

func TestPublisherWrongShardRedirectCallback(t *testing.T) {
	n := transport.NewMem()
	primary := newFakeBroker(t, n, "primary")
	type redirect struct {
		topic spec.TopicID
		epoch uint64
	}
	got := make(chan redirect, 1)
	pub, err := NewPublisher(PublisherOptions{
		Name: "p", Topics: []spec.Topic{topic(1, 0)},
		PrimaryAddr: "primary", Network: n, Clock: clock(), Logger: quiet(),
		OnWrongShard: func(id spec.TopicID, epoch uint64) { got <- redirect{id, epoch} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	if _, err := pub.Publish(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Wait for the broker to see the publish, then redirect on the same link.
	deadline := time.Now().Add(time.Second)
	for len(primary.framesOf(wire.TypePublish)) < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	primary.mu.Lock()
	conn := primary.conns[0]
	primary.mu.Unlock()
	if err := conn.Send(&wire.Frame{Type: wire.TypeWrongShard, Topic: 1, Epoch: 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.topic != 1 || r.epoch != 9 {
			t.Errorf("redirect = %+v, want topic 1 epoch 9", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnWrongShard never invoked")
	}
}

func TestPublisherDropAndAdoptTopic(t *testing.T) {
	n := transport.NewMem()
	newFakeBroker(t, n, "a")
	b := newFakeBroker(t, n, "b")
	src, err := NewPublisher(PublisherOptions{
		Name: "src", Topics: []spec.Topic{topic(1, 3)},
		PrimaryAddr: "a", Network: n, Clock: clock(), Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := NewPublisher(PublisherOptions{
		Name: "dst", Topics: []spec.Topic{topic(2, 0)},
		PrimaryAddr: "b", Network: n, Clock: clock(), Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	for i := 0; i < 5; i++ {
		if _, err := src.Publish(1, []byte("retained-payload")); err != nil {
			t.Fatal(err)
		}
	}
	lastSeq, retained, err := src.DropTopic(1)
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 5 || len(retained) != 3 {
		t.Fatalf("DropTopic = seq %d, %d retained; want 5, 3", lastSeq, len(retained))
	}
	if _, err := src.Publish(1, nil); err == nil {
		t.Error("publish to dropped topic accepted")
	}
	if _, _, err := src.DropTopic(1); err == nil {
		t.Error("double drop accepted")
	}

	if err := dst.AdoptTopic(topic(1, 3), lastSeq, retained, true); err != nil {
		t.Fatal(err)
	}
	if err := dst.AdoptTopic(topic(1, 3), lastSeq, retained, false); err == nil {
		t.Error("double adopt accepted")
	}
	// Sequence numbering continues gaplessly on the new shard.
	seq, err := dst.Publish(1, []byte("after-the-move!!"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Errorf("post-adopt seq = %d, want 6", seq)
	}
	// The retained window was re-sent to the new shard's broker (§III-B flow).
	deadline := time.Now().Add(time.Second)
	for len(b.framesOf(wire.TypeResend)) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	resends := b.framesOf(wire.TypeResend)
	if len(resends) != 3 {
		t.Fatalf("new broker saw %d resends, want 3", len(resends))
	}
	want := uint64(3)
	for _, f := range resends {
		if f.Msg.Topic != 1 || f.Msg.Seq != want {
			t.Errorf("resend topic %d seq %d, want topic 1 seq %d", f.Msg.Topic, f.Msg.Seq, want)
		}
		want++
	}
}

func TestSubscriberValidation(t *testing.T) {
	n := transport.NewMem()
	newFakeBroker(t, n, "b1")
	tests := []struct {
		name string
		opts SubscriberOptions
	}{
		{"nil network", SubscriberOptions{Clock: clock(), Topics: []spec.TopicID{1}, BrokerAddrs: []string{"b1"}}},
		{"nil clock", SubscriberOptions{Network: n, Topics: []spec.TopicID{1}, BrokerAddrs: []string{"b1"}}},
		{"no topics", SubscriberOptions{Network: n, Clock: clock(), BrokerAddrs: []string{"b1"}}},
		{"no brokers", SubscriberOptions{Network: n, Clock: clock(), Topics: []spec.TopicID{1}}},
		{"bad addr", SubscriberOptions{Network: n, Clock: clock(), Topics: []spec.TopicID{1}, BrokerAddrs: []string{"nope"}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tc.opts.Logger = quiet()
			if _, err := NewSubscriber(tc.opts); err == nil {
				t.Error("invalid options accepted")
			}
		})
	}
}

func TestSubscriberSubscribesDedupsAndMeasures(t *testing.T) {
	n := transport.NewMem()
	b1 := newFakeBroker(t, n, "b1")
	b2 := newFakeBroker(t, n, "b2")
	clk := clock()
	var deliveries []Delivery
	var mu sync.Mutex
	sub, err := NewSubscriber(SubscriberOptions{
		Name: "s", Topics: []spec.TopicID{7},
		BrokerAddrs: []string{"b1", "b2"},
		Network:     n, Clock: clk, Logger: quiet(),
		OnDeliver: func(d Delivery) {
			mu.Lock()
			deliveries = append(deliveries, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Both brokers saw the subscription.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if len(b1.framesOf(wire.TypeSubscribe)) == 1 && len(b2.framesOf(wire.TypeSubscribe)) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	subs := b1.framesOf(wire.TypeSubscribe)
	if len(subs) != 1 || len(subs[0].Topics) != 1 || subs[0].Topics[0] != 7 {
		t.Fatalf("b1 subscription frames: %+v", subs)
	}

	// Dispatch seq 1 and 2 from b1, and a duplicate of seq 1 from b2 (as
	// happens during recovery re-dispatch).
	send := func(fb *fakeBroker, seq uint64) {
		fb.mu.Lock()
		conns := append([]*transport.Conn(nil), fb.conns...)
		fb.mu.Unlock()
		for _, c := range conns {
			c.Send(&wire.Frame{Type: wire.TypeDispatch, Msg: wire.Message{
				Topic: 7, Seq: seq, Created: clk(), Payload: []byte("payload"),
			}, Dispatched: clk()})
		}
	}
	send(b1, 1)
	send(b1, 2)
	send(b2, 1) // duplicate

	deadline = time.Now().Add(time.Second)
	for sub.Received(7) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sub.Received(7); got != 2 {
		t.Fatalf("Received = %d, want 2", got)
	}
	for sub.Duplicates() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := sub.Duplicates(); got != 1 {
		t.Errorf("Duplicates = %d, want 1", got)
	}
	lats := sub.Latencies(7)
	if len(lats) != 2 {
		t.Fatalf("latency samples = %d", len(lats))
	}
	for _, l := range lats {
		if l < 0 || l > time.Second {
			t.Errorf("latency %v implausible", l)
		}
	}
	mu.Lock()
	if len(deliveries) != 2 {
		t.Errorf("OnDeliver calls = %d, want 2 (no callback for dup)", len(deliveries))
	}
	mu.Unlock()
	if got := sub.MaxConsecutiveLoss(7, 4); got != 2 {
		t.Errorf("MaxConsecutiveLoss(.,4) = %d, want 2 (seqs 3,4 missing)", got)
	}
}

func TestSubscriberIgnoresNonDispatchFrames(t *testing.T) {
	n := transport.NewMem()
	b1 := newFakeBroker(t, n, "b1")
	sub, err := NewSubscriber(SubscriberOptions{
		Name: "s", Topics: []spec.TopicID{1}, BrokerAddrs: []string{"b1"},
		Network: n, Clock: clock(), Logger: quiet(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	deadline := time.Now().Add(time.Second)
	for len(b1.framesOf(wire.TypeSubscribe)) < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b1.mu.Lock()
	conns := append([]*transport.Conn(nil), b1.conns...)
	b1.mu.Unlock()
	for _, c := range conns {
		c.Send(&wire.Frame{Type: wire.TypePollReply, Nonce: 1})
	}
	time.Sleep(20 * time.Millisecond)
	if sub.Received(1) != 0 {
		t.Error("non-dispatch frame counted as delivery")
	}
}
