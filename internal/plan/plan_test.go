package plan

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simcluster"
	"repro/internal/spec"
	"repro/internal/timing"
)

func paperTopics(t *testing.T) []spec.Topic {
	t.Helper()
	var out []spec.Topic
	for i, c := range spec.Table2() {
		out = append(out, c.Stamp(spec.TopicID(i), spec.PayloadSize))
	}
	return out
}

func TestBuildPaperTable2(t *testing.T) {
	pl, err := Build(paperTopics(t), timing.PaperParams(), simcluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Inadmissible != 0 {
		t.Errorf("Inadmissible = %d", pl.Inadmissible)
	}
	if pl.Replicating != 2 { // categories 2 and 5
		t.Errorf("Replicating = %d, want 2", pl.Replicating)
	}
	// §III-D-3: raising Ni by one suppresses replication for both.
	for _, tp := range pl.Topics {
		switch tp.Topic.Category {
		case 2, 5:
			if tp.ExtraRetention != 1 {
				t.Errorf("category %d: ExtraRetention = %d, want 1",
					tp.Topic.Category, tp.ExtraRetention)
			}
			if tp.RetentionToSuppress != tp.Topic.Retention+1 {
				t.Errorf("category %d: RetentionToSuppress = %d",
					tp.Topic.Category, tp.RetentionToSuppress)
			}
		default:
			if tp.ExtraRetention != 0 {
				t.Errorf("category %d: ExtraRetention = %d, want 0",
					tp.Topic.Category, tp.ExtraRetention)
			}
		}
	}
	// Boosting removes all replication, so the post-boost demand equals
	// FRAME+'s dispatch-only demand and is strictly lower.
	if pl.DemandAfter >= pl.DemandBefore {
		t.Errorf("demand did not drop: %.4f → %.4f", pl.DemandBefore, pl.DemandAfter)
	}
}

func TestBuildFlagsInadmissible(t *testing.T) {
	topic := spec.Table2()[0].Stamp(0, 16)
	topic.Retention = 0 // Li=0 with no retention: rejected
	pl, err := Build([]spec.Topic{topic}, timing.PaperParams(), simcluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if pl.Inadmissible != 1 {
		t.Fatalf("Inadmissible = %d", pl.Inadmissible)
	}
	tp := pl.Topics[0]
	if tp.Admissible == nil {
		t.Fatal("admission error missing")
	}
	if tp.MinRetention != 2 {
		t.Errorf("MinRetention = %d, want 2 (Table 2 value)", tp.MinRetention)
	}
	text := pl.Format()
	if !strings.Contains(text, "REJECTED") || !strings.Contains(text, "raise Ni to 2") {
		t.Errorf("format missing admission suggestion:\n%s", text)
	}
}

func TestBuildValidation(t *testing.T) {
	topics := paperTopics(t)
	if _, err := Build(topics, timing.Params{Failover: -1}, simcluster.DefaultCostModel()); err == nil {
		t.Error("bad params accepted")
	}
	bad := simcluster.DefaultCostModel()
	bad.Dispatch = 0
	if _, err := Build(topics, timing.PaperParams(), bad); err == nil {
		t.Error("bad cost model accepted")
	}
	if _, err := Build([]spec.Topic{{}}, timing.PaperParams(), simcluster.DefaultCostModel()); err == nil {
		t.Error("invalid topic accepted")
	}
}

// TestRetentionToSuppressProperty: the suggested retention is (a) correct
// — at that Ni the topic no longer needs replication — and (b) minimal —
// one less still needs it.
func TestRetentionToSuppressProperty(t *testing.T) {
	p := timing.PaperParams()
	f := func(tiMs, diMs uint16, li uint8, dest bool) bool {
		ti := time.Duration(tiMs%500+10) * time.Millisecond
		di := time.Duration(diMs%1000+10) * time.Millisecond
		topic := spec.Topic{
			ID: 1, Period: ti, Deadline: di, LossTolerance: int(li % 5),
			Retention: 0, Destination: spec.DestEdge, PayloadSize: 16,
		}
		if dest {
			topic.Destination = spec.DestCloud
		}
		ni := retentionToSuppress(topic, p)
		at := topic
		at.Retention = ni
		if timing.NeedsReplication(at, p) {
			return false // not sufficient
		}
		if ni == 0 {
			return true
		}
		below := topic
		below.Retention = ni - 1
		return timing.NeedsReplication(below, p) // minimal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFormatGroupsLargeWorkloads(t *testing.T) {
	w, err := spec.NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Build(w.Topics, timing.PaperParams(), simcluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	text := pl.Format()
	// 1525 topics collapse into the six Table 2 signatures.
	if lines := strings.Count(text, "\n"); lines > 15 {
		t.Errorf("report too long (%d lines):\n%s", lines, text)
	}
	if !strings.Contains(text, "1525 topics") {
		t.Errorf("missing header:\n%s", text)
	}
	if !strings.Contains(text, "raise Ni by 1 to stop replicating") {
		t.Errorf("missing §III-D-3 suggestion:\n%s", text)
	}
}
