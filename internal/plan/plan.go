// Package plan turns the paper's §III-D configuration reasoning into an
// automated capacity planner. Given a topic set, deployment timing
// parameters, and a CPU cost model, it:
//
//   - runs the admission test on every topic (§III-D-1), suggesting the
//     minimum retention Ni that would make rejected topics admissible;
//   - computes each topic's deadlines and Proposition 1 replication
//     verdict (§III-D-2);
//   - finds, per replicating topic, the smallest retention increase that
//     would suppress its replication (§III-D-3 — the FRAME+ manoeuvre,
//     generalized from "add one for categories 2 and 5" to any topic set);
//   - predicts the Message Delivery module's utilization before and after
//     applying those increases, so an operator can see whether a
//     retention bump buys back enough CPU to admit more topics.
package plan

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/simcluster"
	"repro/internal/spec"
	"repro/internal/timing"
)

// TopicPlan is the planner's per-topic verdict.
type TopicPlan struct {
	Topic spec.Topic
	// Admissible is nil when the topic passes the §III-D-1 test.
	Admissible error
	// MinRetention is the smallest Ni making the topic admissible.
	MinRetention int
	// Bounds holds Dd, Dr, and the Proposition 1 verdict at the current Ni.
	Bounds timing.Bounds
	// RetentionToSuppress is the smallest Ni at which Proposition 1
	// suppresses the topic's replication, or -1 if no finite Ni does
	// (never happens for positive periods) or the topic already needs no
	// replication (then it equals the current Ni).
	RetentionToSuppress int
	// ExtraRetention = RetentionToSuppress − current Ni (0 if already
	// suppressed or best-effort).
	ExtraRetention int
}

// Plan is the full capacity plan.
type Plan struct {
	Params timing.Params
	Topics []TopicPlan
	// Replicating counts topics that replicate at current retentions.
	Replicating int
	// Inadmissible counts topics failing admission.
	Inadmissible int
	// DemandBefore and DemandAfter are the predicted delivery-module
	// utilization fractions under FRAME, before and after applying every
	// suggested retention increase.
	DemandBefore float64
	DemandAfter  float64
}

// retentionToSuppress returns the smallest Ni with
// (Ni+Li)·Ti − Di ≥ x + ΔBB − ΔBS (the negation of Proposition 1's
// replication-needed condition). Best-effort topics return their current
// retention (they never replicate).
func retentionToSuppress(t spec.Topic, p timing.Params) int {
	if t.BestEffort() {
		return t.Retention
	}
	need := p.Failover + p.DeltaBB - p.DeltaBS(t.Destination) + t.Deadline
	if need <= 0 {
		return 0
	}
	// Smallest k = Ni+Li with k·Ti ≥ need.
	k := int((need + t.Period - 1) / t.Period)
	ni := k - t.LossTolerance
	if ni < 0 {
		ni = 0
	}
	return ni
}

// Build computes the plan for a topic set under FRAME.
func Build(topics []spec.Topic, p timing.Params, cost simcluster.CostModel) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	out := &Plan{Params: p}
	boosted := make([]spec.Topic, 0, len(topics))
	for _, t := range topics {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		tp := TopicPlan{
			Topic:        t,
			Admissible:   timing.Admissible(t, p),
			MinRetention: timing.MinRetention(t, p),
			Bounds:       timing.Compute(t, p),
		}
		tp.RetentionToSuppress = retentionToSuppress(t, p)
		if tp.Bounds.Replicate {
			out.Replicating++
			if tp.RetentionToSuppress > t.Retention {
				tp.ExtraRetention = tp.RetentionToSuppress - t.Retention
			}
		} else if tp.RetentionToSuppress < t.Retention {
			tp.RetentionToSuppress = t.Retention
		}
		if tp.Admissible != nil {
			out.Inadmissible++
		}
		out.Topics = append(out.Topics, tp)

		bt := t
		if tp.ExtraRetention > 0 {
			bt.Retention += tp.ExtraRetention
		}
		boosted = append(boosted, bt)
	}

	out.DemandBefore = demand(topics, p, cost)
	out.DemandAfter = demand(boosted, p, cost)
	return out, nil
}

// demand predicts FRAME delivery-module utilization for a topic list.
func demand(topics []spec.Topic, p timing.Params, cost simcluster.CostModel) float64 {
	w := &spec.Workload{TotalTopics: len(topics), Topics: topics}
	return cost.DeliveryDemand(w, simcluster.VariantFRAME, p)
}

// Format renders the plan as an operator-facing report. Topics are grouped
// by identical (Ti, Di, Li, Ni, destination) signature to keep large
// workloads readable.
func (pl *Plan) Format() string {
	type sig struct {
		ti, di       time.Duration
		li, ni       int
		dest         spec.Destination
		replicate    bool
		extra        int
		inadmissible bool
		minRetention int
	}
	counts := make(map[sig]int)
	for _, tp := range pl.Topics {
		s := sig{
			ti: tp.Topic.Period, di: tp.Topic.Deadline,
			li: tp.Topic.LossTolerance, ni: tp.Topic.Retention,
			dest: tp.Topic.Destination, replicate: tp.Bounds.Replicate,
			extra: tp.ExtraRetention, inadmissible: tp.Admissible != nil,
			minRetention: tp.MinRetention,
		}
		counts[s]++
	}
	sigs := make([]sig, 0, len(counts))
	for s := range counts {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].ti != sigs[j].ti {
			return sigs[i].ti < sigs[j].ti
		}
		if sigs[i].li != sigs[j].li {
			return sigs[i].li < sigs[j].li
		}
		return sigs[i].ni < sigs[j].ni
	})

	var b strings.Builder
	fmt.Fprintf(&b, "capacity plan — %d topics, %d replicating, %d inadmissible\n",
		len(pl.Topics), pl.Replicating, pl.Inadmissible)
	fmt.Fprintf(&b, "predicted delivery utilization: %.1f%% now → %.1f%% after retention boosts\n\n",
		100*pl.DemandBefore, 100*pl.DemandAfter)
	fmt.Fprintf(&b, "%6s %8s %8s %5s %4s %6s %10s %12s %s\n",
		"topics", "Ti", "Di", "Li", "Ni", "dest", "replicate", "admission", "suggestion")
	for _, s := range sigs {
		li := fmt.Sprintf("%d", s.li)
		if s.li >= spec.LossUnbounded {
			li = "inf"
		}
		replicate := "no"
		if s.replicate {
			replicate = "yes"
		}
		admission := "OK"
		suggestion := "-"
		if s.inadmissible {
			admission = "REJECTED"
			suggestion = fmt.Sprintf("raise Ni to %d to admit", s.minRetention)
		} else if s.extra > 0 {
			suggestion = fmt.Sprintf("raise Ni by %d to stop replicating", s.extra)
		}
		fmt.Fprintf(&b, "%6d %8s %8s %5s %4d %6s %10s %12s %s\n",
			counts[s], msStr(s.ti), msStr(s.di), li, s.ni, s.dest,
			replicate, admission, suggestion)
	}
	return b.String()
}

func msStr(d time.Duration) string {
	return fmt.Sprintf("%gms", float64(d)/float64(time.Millisecond))
}
