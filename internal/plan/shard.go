// Sharded planning: Lemmas 1–2 and Proposition 1 are per-pair bounds, so
// a multi-pair cluster's plan is one independent Plan per shard over its
// jump-hash partition. The cluster-level question is sizing — how many
// pairs until the hottest shard's delivery demand fits a target — which
// MinShards answers by scanning shard counts.
package plan

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/simcluster"
	"repro/internal/spec"
	"repro/internal/timing"
)

// ShardPlan is one shard's capacity plan over its topic partition.
type ShardPlan struct {
	Shard int
	Plan  *Plan
}

// ShardedPlan is a per-shard capacity plan for a multi-pair cluster.
type ShardedPlan struct {
	Shards []ShardPlan
	// MaxDemand is the hottest shard's predicted delivery utilization
	// before retention boosts — the figure MinShards drives under target.
	MaxDemand float64
	// MeanDemand is the average across shards; MaxDemand/MeanDemand close
	// to 1 means the jump-hash partition is balanced for this topic set.
	MeanDemand float64
	// Inadmissible counts topics failing admission on their shard. The
	// admission test is per-topic, so this matches the unsharded count.
	Inadmissible int
}

// BuildSharded partitions the topic set with the cluster's jump hash and
// plans each shard independently.
func BuildSharded(topics []spec.Topic, shards int, p timing.Params, cost simcluster.CostModel) (*ShardedPlan, error) {
	if shards < 1 {
		return nil, errors.New("plan: need at least one shard")
	}
	out := &ShardedPlan{}
	for i, part := range cluster.Partition(topics, shards) {
		pl, err := Build(part, p, cost)
		if err != nil {
			return nil, fmt.Errorf("plan: shard %d: %w", i, err)
		}
		out.Shards = append(out.Shards, ShardPlan{Shard: i, Plan: pl})
		out.Inadmissible += pl.Inadmissible
		out.MeanDemand += pl.DemandBefore
		if pl.DemandBefore > out.MaxDemand {
			out.MaxDemand = pl.DemandBefore
		}
	}
	out.MeanDemand /= float64(shards)
	return out, nil
}

// MinShards returns the smallest shard count (≤ maxShards) whose hottest
// shard's delivery demand stays at or under targetUtil, with that count's
// plan. The scan is linear because jump hashing does not make the hottest
// shard's demand monotone in the shard count.
func MinShards(topics []spec.Topic, p timing.Params, cost simcluster.CostModel, targetUtil float64, maxShards int) (int, *ShardedPlan, error) {
	if targetUtil <= 0 {
		return 0, nil, errors.New("plan: target utilization must be positive")
	}
	if maxShards < 1 {
		maxShards = 64
	}
	for n := 1; n <= maxShards; n++ {
		sp, err := BuildSharded(topics, n, p, cost)
		if err != nil {
			return 0, nil, err
		}
		if sp.MaxDemand <= targetUtil {
			return n, sp, nil
		}
	}
	return 0, nil, fmt.Errorf("plan: no shard count up to %d keeps the hottest shard at or under %.0f%% delivery utilization",
		maxShards, 100*targetUtil)
}

// Format renders the per-shard summary table.
func (sp *ShardedPlan) Format() string {
	var b strings.Builder
	total := 0
	for _, s := range sp.Shards {
		total += len(s.Plan.Topics)
	}
	fmt.Fprintf(&b, "sharded capacity plan — %d topics over %d pairs, delivery utilization hottest %.1f%% / mean %.1f%%\n\n",
		total, len(sp.Shards), 100*sp.MaxDemand, 100*sp.MeanDemand)
	fmt.Fprintf(&b, "%5s %7s %11s %12s %9s\n",
		"shard", "topics", "replicating", "inadmissible", "delivery")
	for _, s := range sp.Shards {
		fmt.Fprintf(&b, "%5d %7d %11d %12d %8.1f%%\n",
			s.Shard, len(s.Plan.Topics), s.Plan.Replicating, s.Plan.Inadmissible,
			100*s.Plan.DemandBefore)
	}
	return b.String()
}
