package plan

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simcluster"
	"repro/internal/spec"
	"repro/internal/timing"
)

func TestBuildShardedSingleShardMatchesBuild(t *testing.T) {
	w, err := spec.NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Build(w.Topics, timing.PaperParams(), simcluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := BuildSharded(w.Topics, 1, timing.PaperParams(), simcluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Shards) != 1 {
		t.Fatalf("shards = %d", len(sp.Shards))
	}
	if got, want := sp.MaxDemand, flat.DemandBefore; math.Abs(got-want) > 1e-12 {
		t.Errorf("single-shard demand %.6f != unsharded %.6f", got, want)
	}
}

func TestBuildShardedSplitsDemand(t *testing.T) {
	w, err := spec.NewWorkload(4525)
	if err != nil {
		t.Fatal(err)
	}
	p, cost := timing.PaperParams(), simcluster.DefaultCostModel()
	one, err := BuildSharded(w.Topics, 1, p, cost)
	if err != nil {
		t.Fatal(err)
	}
	four, err := BuildSharded(w.Topics, 4, p, cost)
	if err != nil {
		t.Fatal(err)
	}
	// The partition covers every topic exactly once…
	total := 0
	for _, s := range four.Shards {
		total += len(s.Plan.Topics)
	}
	if total != len(w.Topics) {
		t.Errorf("sharded plan covers %d of %d topics", total, len(w.Topics))
	}
	if four.Inadmissible != one.Inadmissible {
		t.Errorf("sharding changed admission: %d vs %d", four.Inadmissible, one.Inadmissible)
	}
	// …and the hottest shard carries a fraction of the whole load: at
	// worst mean × (1 + balance slack), far under the unsharded demand.
	if four.MaxDemand >= one.MaxDemand/2 {
		t.Errorf("hottest of 4 shards %.4f not well under single-pair %.4f", four.MaxDemand, one.MaxDemand)
	}
	if four.MaxDemand > four.MeanDemand*1.3 {
		t.Errorf("imbalanced: hottest %.4f vs mean %.4f", four.MaxDemand, four.MeanDemand)
	}
}

func TestMinShardsFindsSmallestFit(t *testing.T) {
	w, err := spec.NewWorkload(7525)
	if err != nil {
		t.Fatal(err)
	}
	p, cost := timing.PaperParams(), simcluster.DefaultCostModel()
	one, err := BuildSharded(w.Topics, 1, p, cost)
	if err != nil {
		t.Fatal(err)
	}
	// A target below the single-pair demand forces n > 1.
	target := one.MaxDemand / 2
	n, sp, err := MinShards(w.Topics, p, cost, target, 64)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("MinShards = %d, want > 1 for target %.4f", n, target)
	}
	if sp.MaxDemand > target {
		t.Errorf("returned plan's hottest shard %.4f exceeds target %.4f", sp.MaxDemand, target)
	}
	below, err := BuildSharded(w.Topics, n-1, p, cost)
	if err != nil {
		t.Fatal(err)
	}
	if below.MaxDemand <= target {
		t.Errorf("n-1 = %d shards already fit (%.4f ≤ %.4f): not minimal", n-1, below.MaxDemand, target)
	}
}

func TestMinShardsErrors(t *testing.T) {
	topics := paperTopics(t)
	p, cost := timing.PaperParams(), simcluster.DefaultCostModel()
	if _, _, err := MinShards(topics, p, cost, 0, 8); err == nil {
		t.Error("zero target accepted")
	}
	if _, _, err := MinShards(topics, p, cost, 1e-9, 2); err == nil {
		t.Error("unreachable target within maxShards accepted")
	}
	if _, err := BuildSharded(topics, 0, p, cost); err == nil {
		t.Error("zero shards accepted")
	}
}

func TestShardedFormat(t *testing.T) {
	w, err := spec.NewWorkload(1525)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := BuildSharded(w.Topics, 3, timing.PaperParams(), simcluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	text := sp.Format()
	if !strings.Contains(text, "1525 topics over 3 pairs") {
		t.Errorf("missing header:\n%s", text)
	}
	if strings.Count(text, "\n") != 3+3 { // header, blank, column row + one per shard
		t.Errorf("unexpected shape:\n%s", text)
	}
	// Shard rows agree with the jump-hash partition.
	parts := cluster.Partition(w.Topics, 3)
	for i, s := range sp.Shards {
		if len(s.Plan.Topics) != len(parts[i]) {
			t.Errorf("shard %d rows %d topics, partition has %d", i, len(s.Plan.Topics), len(parts[i]))
		}
	}
}
