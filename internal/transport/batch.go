// Write batching: coalescing data-plane frames into single writes.
//
// FRAME's broker fans every dispatch out to all subscribers of a topic and
// mirrors every replicated message to the Backup, so under load one arrival
// costs many small writes — each a syscall on TCP. Batching amortizes them:
// frames queue in an in-memory buffer and leave in one Write when either the
// buffer reaches a size threshold or a short timer (the batch window)
// expires. The window bounds the added latency, so deployments must keep it
// below the minimum per-topic slack (Lemma 2's Dd − service time) for the
// deadline analysis to stay valid; the broker documents this on its -batch
// flag.
//
// Only data-plane frames batch (Dispatch, Replicate, Prune). Control traffic
// — clock sync, failure-detector polls, handshakes — writes through
// immediately after draining the batch, so batching never delays the clock
// or the detector, and per-connection frame order is always preserved.

package transport

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/wire"
)

// DefaultBatchMaxBytes is the flush-on-size threshold when EnableBatching is
// given a zero maximum: large enough to coalesce dozens of typical frames,
// small enough to stay far below MaxFrameSize-scale memory per connection.
const DefaultBatchMaxBytes = 32 << 10

// batchable reports whether a frame type may be delayed by the batch window.
func batchable(t wire.Type) bool {
	switch t {
	case wire.TypeDispatch, wire.TypeReplicate, wire.TypePrune:
		return true
	default:
		return false
	}
}

// EnableBatching turns on write coalescing: batchable frames sent on this
// connection buffer for up to window (or until maxBytes are pending,
// DefaultBatchMaxBytes when zero) and then leave in a single Write. The
// receive path needs no change — a batch is just back-to-back length-prefixed
// frames. A flush failure is sticky: every later Send returns it, mirroring
// how an unbatched connection behaves once its conn is broken.
//
// Call with window 0 to disable again (pending frames are flushed).
func (c *Conn) EnableBatching(window time.Duration, maxBytes int) {
	if maxBytes <= 0 {
		maxBytes = DefaultBatchMaxBytes
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.batchWin = window
	c.batchMax = maxBytes
	if window <= 0 {
		c.flushLocked()
	}
}

// Flush writes any pending batch immediately.
func (c *Conn) Flush() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.flushLocked()
}

// enqueueLocked appends one encoded frame to the pending batch, flushing on
// size and arming the window timer otherwise.
func (c *Conn) enqueueLocked(body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	c.pending = append(c.pending, hdr[:]...)
	c.pending = append(c.pending, body...)
	c.pendingFrames++
	if len(c.pending) >= c.batchMax {
		return c.flushLocked()
	}
	if c.timer == nil {
		c.timer = time.AfterFunc(c.batchWin, c.flushTimeout)
	} else if c.pendingFrames == 1 {
		c.timer.Reset(c.batchWin)
	}
	return nil
}

// flushTimeout is the batch window expiring.
func (c *Conn) flushTimeout() {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.flushLocked()
}

// flushLocked writes the pending batch in one Write. Errors stick so callers
// that only learn of them on a later Send still see the failure.
func (c *Conn) flushLocked() error {
	if c.werr != nil {
		return c.werr
	}
	if len(c.pending) == 0 {
		return nil
	}
	n := c.pendingFrames
	buf := c.pending
	c.pending = c.pending[:0]
	c.pendingFrames = 0
	c.armWriteStallLocked()
	defer c.disarmWriteStallLocked()
	if _, err := c.nc.Write(buf); err != nil {
		c.werr = fmt.Errorf("transport: batch flush: %w", err)
		return c.werr
	}
	if c.meter != nil {
		c.meter.FramesSent.Add(uint64(n))
		c.meter.BytesSent.Add(uint64(len(buf)))
	}
	return nil
}
