package transport

import (
	"net"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/wire"
)

// pruneBuf builds a pooled FrameBuf holding one encoded Prune frame — small,
// valid on the wire, and carrying a (topic, seq) pair the receive side can
// check ordering with.
func pruneBuf(topic spec.TopicID, seq uint64) *FrameBuf {
	fb := GetFrameBuf()
	fb.B = wire.AppendPruneBody(fb.B[:0], topic, seq)
	return fb
}

func TestFrameBufRefcountLifecycle(t *testing.T) {
	base := FrameBufRefs()
	fb := GetFrameBuf()
	if got := FrameBufRefs(); got != base+1 {
		t.Fatalf("outstanding bufs after Get = %d, want %d", got, base+1)
	}
	// The counter tracks buffers, not references: Retains and the non-final
	// Releases must leave it alone.
	fb.Retain()
	fb.Retain()
	if got := FrameBufRefs(); got != base+1 {
		t.Fatalf("outstanding bufs after two Retains = %d, want %d", got, base+1)
	}
	fb.Release()
	fb.Release()
	if got := FrameBufRefs(); got != base+1 {
		t.Fatalf("outstanding bufs after non-final Releases = %d, want %d", got, base+1)
	}
	fb.Release()
	if got := FrameBufRefs(); got != base {
		t.Fatalf("outstanding bufs after final Release = %d, want %d", got, base)
	}
}

func TestFrameBufReleasePanicsWithoutReference(t *testing.T) {
	fb := GetFrameBuf()
	fb.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Release on a released buffer did not panic")
		}
		frameBufRefs.Add(1) // undo the pre-panic decrement so the leak gauge stays balanced
	}()
	fb.Release()
}

func TestFrameBufDropsOversizedStorage(t *testing.T) {
	fb := GetFrameBuf()
	fb.B = make([]byte, pooledPayloadCap+1)
	fb.Release()
	if fb.B != nil {
		t.Fatalf("oversized storage retained through the pool: cap %d", cap(fb.B))
	}
}

// TestEgressDeliversInOrder pushes a burst through an egress and checks the
// receive side sees every frame, in order, regardless of how the writer
// sliced the burst into vectored writes.
func TestEgressDeliversInOrder(t *testing.T) {
	base := FrameBufRefs()
	sender, receiver := pipePair(t)
	var meter EgressMeter
	// Ring deeper than the burst: nothing sheds, so arrival order is the
	// full enqueue order.
	eg := NewEgress(sender, EgressConfig{Depth: 256, Shed: true, Meter: &meter})

	const n = 100
	got := make(chan uint64, n)
	go func() {
		f := GetFrame()
		defer PutFrame(f)
		for {
			if err := receiver.RecvInto(f); err != nil {
				close(got)
				return
			}
			got <- f.Seq
		}
	}()
	for seq := uint64(1); seq <= n; seq++ {
		if r := eg.Enqueue(pruneBuf(7, seq), 7, 0); r != EnqueueOK {
			t.Fatalf("Enqueue(%d) = %v, want EnqueueOK", seq, r)
		}
	}
	for want := uint64(1); want <= n; want++ {
		select {
		case seq := <-got:
			if seq != want {
				t.Fatalf("frame %d arrived out of order (seq %d)", want, seq)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for frame %d", want)
		}
	}
	eg.Close()
	sender.Close()
	eg.Wait()
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
	if f := meter.Flushed.Load(); f != n {
		t.Fatalf("Flushed = %d, want %d", f, n)
	}
	if b := meter.Batches.Load(); b == 0 || b > n {
		t.Fatalf("Batches = %d, want within [1, %d]", b, n)
	}
}

// TestEgressShedsWithinLiThenEvicts wedges the writer and overfills the
// ring: the shed policy must drop exactly Li oldest frames for the topic,
// then evict the subscriber on the next overflow, releasing every buffer.
func TestEgressShedsWithinLiThenEvicts(t *testing.T) {
	base := FrameBufRefs()
	a, b := net.Pipe()
	defer b.Close()
	gate := make(chan struct{})
	sender := NewConn(&blockableConn{Conn: a, gate: gate})
	var meter EgressMeter
	const li = 3
	eg := NewEgress(sender, EgressConfig{Depth: 4, Shed: true, Meter: &meter})

	var sheds, oks int
	evicted := false
	for seq := uint64(1); seq <= 64; seq++ {
		switch r := eg.Enqueue(pruneBuf(9, seq), 9, li); r {
		case EnqueueOK:
			oks++
		case EnqueueShed:
			sheds++
		case EnqueueEvicted:
			evicted = true
		default:
			t.Fatalf("Enqueue(%d) = %v", seq, r)
		}
		if evicted {
			break
		}
	}
	if !evicted {
		t.Fatalf("never evicted: %d ok, %d shed", oks, sheds)
	}
	if sheds != li {
		t.Fatalf("shed %d frames before eviction, want exactly Li = %d", sheds, li)
	}
	if !eg.Evicted() {
		t.Fatal("Evicted() = false after EnqueueEvicted")
	}
	if r := eg.Enqueue(pruneBuf(9, 999), 9, li); r != EnqueueClosed {
		t.Fatalf("Enqueue after eviction = %v, want EnqueueClosed", r)
	}
	if got := meter.Shed.Load(); got != uint64(li) {
		t.Fatalf("meter.Shed = %d, want %d", got, li)
	}
	if got := meter.Evictions.Load(); got != 1 {
		t.Fatalf("meter.Evictions = %d, want 1", got)
	}
	close(gate) // release the wedged writer; its write fails on the closed pipe
	eg.Wait()
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references after eviction", refs-base)
	}
}

// TestEgressBestEffortTopicNeverEvicts: a topic with unbounded loss
// tolerance sheds forever and never costs the subscriber its connection.
func TestEgressBestEffortTopicNeverEvicts(t *testing.T) {
	base := FrameBufRefs()
	a, b := net.Pipe()
	defer b.Close()
	gate := make(chan struct{})
	sender := NewConn(&blockableConn{Conn: a, gate: gate})
	var meter EgressMeter
	eg := NewEgress(sender, EgressConfig{Depth: 2, Shed: true, Meter: &meter})

	for seq := uint64(1); seq <= 256; seq++ {
		switch r := eg.Enqueue(pruneBuf(3, seq), 3, spec.LossUnbounded); r {
		case EnqueueOK, EnqueueShed:
		default:
			t.Fatalf("Enqueue(%d) = %v on a best-effort topic", seq, r)
		}
	}
	if meter.Evictions.Load() != 0 {
		t.Fatalf("best-effort topic evicted the subscriber")
	}
	eg.Close()
	close(gate)
	sender.Close()
	eg.Wait()
	// Shed counts batch under the ring mutex and publish on the next
	// collect or terminal drain, so assert after the egress settles.
	if meter.Shed.Load() == 0 {
		t.Fatal("expected sheds on an overfilled best-effort ring")
	}
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
}

// TestEgressBlockingModeBackpressures: with Shed off a full ring blocks the
// enqueuer until the writer drains, and nothing is ever dropped.
func TestEgressBlockingModeBackpressures(t *testing.T) {
	base := FrameBufRefs()
	sender, receiver := pipePair(t)
	var meter EgressMeter
	eg := NewEgress(sender, EgressConfig{Depth: 2, Shed: false, Meter: &meter})

	const n = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := uint64(1); seq <= n; seq++ {
			if r := eg.Enqueue(pruneBuf(1, seq), 1, 0); r != EnqueueOK {
				t.Errorf("Enqueue(%d) = %v", seq, r)
				return
			}
		}
	}()
	f := GetFrame()
	defer PutFrame(f)
	for want := uint64(1); want <= n; want++ {
		if err := receiver.RecvInto(f); err != nil {
			t.Fatalf("RecvInto: %v", err)
		}
		if f.Seq != want {
			t.Fatalf("seq %d, want %d (blocking mode must not drop or reorder)", f.Seq, want)
		}
	}
	<-done
	eg.Close()
	sender.Close()
	eg.Wait()
	if meter.Shed.Load() != 0 || meter.Evictions.Load() != 0 {
		t.Fatal("blocking mode shed or evicted")
	}
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
}

// TestEgressWriteStallDropsSubscriber: a subscriber socket that stops making
// progress for longer than the configured stall bound fails the flush and
// the egress shuts down instead of wedging its writer forever.
func TestEgressWriteStallDropsSubscriber(t *testing.T) {
	base := FrameBufRefs()
	a, b := net.Pipe() // nobody reads b: writes block until the deadline
	defer b.Close()
	sender := NewConn(a)
	var meter EgressMeter
	eg := NewEgress(sender, EgressConfig{Depth: 8, Shed: true, Stall: 20 * time.Millisecond, Meter: &meter})

	eg.Enqueue(pruneBuf(2, 1), 2, 0)
	waitDone := make(chan struct{})
	go func() { eg.Wait(); close(waitDone) }()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("egress writer did not exit after a stalled write")
	}
	if meter.Stalls.Load() != 1 {
		t.Fatalf("meter.Stalls = %d, want 1", meter.Stalls.Load())
	}
	if meter.WriteErrs.Load() != 1 {
		t.Fatalf("meter.WriteErrs = %d, want 1", meter.WriteErrs.Load())
	}
	if r := eg.Enqueue(pruneBuf(2, 2), 2, 0); r != EnqueueClosed {
		t.Fatalf("Enqueue after stall = %v, want EnqueueClosed", r)
	}
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
}

// TestEgressCloseReleasesQueuedFrames: frames still queued at Close are
// released, the writer exits, and the ring reports its high-water mark.
func TestEgressCloseReleasesQueuedFrames(t *testing.T) {
	base := FrameBufRefs()
	a, b := net.Pipe()
	defer b.Close()
	gate := make(chan struct{})
	defer close(gate)
	sender := NewConn(&blockableConn{Conn: a, gate: gate})
	eg := NewEgress(sender, EgressConfig{Depth: 8, Shed: true})

	for seq := uint64(1); seq <= 6; seq++ {
		eg.Enqueue(pruneBuf(4, seq), 4, 0)
	}
	if hw := eg.HighWater(); hw == 0 {
		t.Fatal("HighWater = 0 after enqueues")
	}
	eg.Close()
	eg.Close() // idempotent
	if d := eg.Depth(); d != 0 {
		t.Fatalf("Depth after Close = %d, want 0", d)
	}
	sender.Close()
	eg.Wait()
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
}
