package transport

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/transport/submit"
	"repro/internal/wire"
)

// tcpPair returns a connected loopback TCP Conn pair. Unlike pipePair's
// net.Pipe, both ends are real sockets exposing raw fds, so pooled egresses
// over the sender ride the kernel-batched submission path when the host
// kernel supports it.
func tcpPair(t *testing.T) (sender, receiver *Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		nc  net.Conn
		err error
	}
	acceptc := make(chan accepted, 1)
	go func() {
		nc, err := ln.Accept()
		acceptc <- accepted{nc, err}
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-acceptc
	if acc.err != nil {
		cl.Close()
		t.Fatal(acc.err)
	}
	sender, receiver = NewConn(cl), NewConn(acc.nc)
	t.Cleanup(func() { sender.Close(); receiver.Close() })
	return sender, receiver
}

// dispatchBuf builds a pooled FrameBuf holding one encoded Dispatch frame
// carrying payload — the knob for making sweep batches wide enough to
// overflow a small socket buffer.
func dispatchBuf(topic spec.TopicID, seq uint64, payload []byte) *FrameBuf {
	fb := GetFrameBuf()
	fb.B = wire.AppendDispatchBody(fb.B[:0], &wire.Message{
		Topic: topic, Seq: seq, Payload: payload,
	}, 0)
	return fb
}

func TestConsumeBuffers(t *testing.T) {
	mk := func() net.Buffers {
		return net.Buffers{[]byte("abcd"), []byte("ef"), []byte("ghij")}
	}
	cases := []struct {
		n    int
		want []string
	}{
		{0, []string{"abcd", "ef", "ghij"}},
		{2, []string{"cd", "ef", "ghij"}},
		{4, []string{"ef", "ghij"}}, // exactly the first buffer
		{5, []string{"f", "ghij"}},  // partway into the second
		{6, []string{"ghij"}},       // exactly two buffers
		{9, []string{"j"}},          // one byte left
		{10, []string{}},            // everything consumed
	}
	for _, tc := range cases {
		got := consumeBuffers(mk(), tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("consumeBuffers(n=%d) = %d buffers, want %d", tc.n, len(got), len(tc.want))
		}
		for i := range got {
			if string(got[i]) != tc.want[i] {
				t.Fatalf("consumeBuffers(n=%d)[%d] = %q, want %q", tc.n, i, got[i], tc.want[i])
			}
		}
	}
}

func TestMaxEgressBatchClamp(t *testing.T) {
	// Two iovecs per frame: the clamp must guarantee any batch fits in one
	// vectored write / one SQE without splitting.
	if MaxEgressBatch*2 != submit.IOVMax {
		t.Fatalf("MaxEgressBatch = %d, want submit.IOVMax/2 = %d", MaxEgressBatch, submit.IOVMax/2)
	}
	sender, _ := pipePair(t)
	e := NewEgress(sender, EgressConfig{Depth: 4 * MaxEgressBatch, MaxBatch: 10 * MaxEgressBatch, Shed: true})
	defer func() { e.Close(); sender.Close(); e.Wait() }()
	if got := cap(e.batch); got != MaxEgressBatch {
		t.Fatalf("batch scratch capacity = %d, want clamped to MaxEgressBatch = %d", got, MaxEgressBatch)
	}
	if got := cap(e.vecs); got != 2*MaxEgressBatch {
		t.Fatalf("vecs scratch capacity = %d, want %d", got, 2*MaxEgressBatch)
	}
}

func TestWriteBuffersStickyAfterError(t *testing.T) {
	sender, receiver := pipePair(t)
	receiver.Close() // the peer is gone: the first write must fail
	bufs := net.Buffers{[]byte{1, 2, 3, 4}}
	err := sender.WriteBuffers(bufs, 1, 4)
	if err == nil {
		t.Fatal("WriteBuffers to a closed peer succeeded")
	}
	// The failure is sticky: later writes fail fast without touching the
	// socket — a partial vectored write leaves the framing unknown.
	if err2 := sender.WriteBuffers(net.Buffers{[]byte{5}}, 1, 1); err2 == nil {
		t.Fatal("WriteBuffers after sticky error succeeded")
	}
	if err3 := sender.Send(&wire.Frame{Type: wire.TypePrune, Topic: 1, Seq: 1}); err3 == nil {
		t.Fatal("Send after sticky error succeeded")
	}
}

func TestWriteBuffersAfterCloseFailsFast(t *testing.T) {
	sender, _ := pipePair(t)
	sender.Close()
	if err := sender.WriteBuffers(net.Buffers{[]byte{1}}, 1, 1); err == nil {
		t.Fatal("WriteBuffers on a closed conn succeeded")
	}
}

// TestKernelSweepDeliversManyConnsInOrder is the pooled-flusher ordering
// contract over real sockets: with the kernel backend on, sweeps batch many
// connections into single submissions, and per-connection frame order must
// still hold. On kernels without io_uring (or with FRAME_NO_URING set) the
// pool silently runs the sequential path and the ordering assertions still
// apply; only the sweep-counter checks are gated.
func TestKernelSweepDeliversManyConnsInOrder(t *testing.T) {
	base := FrameBufRefs()
	pool := NewFlusherPool(FlusherPoolConfig{Flushers: 2, KernelSubmit: true})
	var meter EgressMeter

	const conns = 8
	const frames = 200
	egresses := make([]*Egress, conns)
	senders := make([]*Conn, conns)
	got := make(chan error, conns)
	for i := range egresses {
		sender, receiver := tcpPair(t)
		senders[i] = sender
		egresses[i] = NewEgress(sender, EgressConfig{Depth: 64, Shed: false, Meter: &meter, Pool: pool})
		if pool.Stats().Kernel && egresses[i].sfd < 0 {
			t.Fatalf("egress %d over TCP got no submission fd with the kernel backend on", i)
		}
		go func(topic spec.TopicID, receiver *Conn) {
			f := GetFrame()
			defer PutFrame(f)
			last := uint64(0)
			for last < frames {
				if err := receiver.RecvInto(f); err != nil {
					got <- fmt.Errorf("topic %d after seq %d: %w", topic, last, err)
					return
				}
				if f.Seq != last+1 {
					got <- fmt.Errorf("topic %d: seq %d after %d", topic, f.Seq, last)
					return
				}
				last = f.Seq
			}
			got <- nil
		}(spec.TopicID(i+1), receiver)
	}
	for seq := uint64(1); seq <= frames; seq++ {
		for i, e := range egresses {
			if r := e.Enqueue(pruneBuf(spec.TopicID(i+1), seq), spec.TopicID(i+1), spec.LossUnbounded); r != EnqueueOK {
				t.Fatalf("Enqueue(conn %d, seq %d) = %v", i, seq, r)
			}
		}
	}
	for range egresses {
		select {
		case err := <-got:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("receivers starved")
		}
	}
	for i, e := range egresses {
		e.Close()
		senders[i].Close()
		e.Wait()
	}
	pool.Close()

	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
	if flushed := meter.Flushed.Load(); flushed != conns*frames {
		t.Fatalf("Flushed = %d, want %d", flushed, conns*frames)
	}
	ps := pool.Stats()
	if !ps.Kernel {
		t.Logf("kernel backend unavailable on this host; sequential fallback verified instead")
		return
	}
	if ps.Sweeps == 0 {
		t.Fatal("kernel backend active but no sweeps were submitted")
	}
	if ps.SweepConns < ps.Sweeps {
		t.Fatalf("SweepConns = %d < Sweeps = %d", ps.SweepConns, ps.Sweeps)
	}
	if ps.Syscalls < ps.Sweeps {
		t.Fatalf("Syscalls = %d < Sweeps = %d: each sweep costs at least one enter", ps.Syscalls, ps.Sweeps)
	}
	t.Logf("sweeps=%d enters=%d conns-swept=%d (%.1f conns/sweep)",
		ps.Sweeps, ps.Syscalls, ps.SweepConns, float64(ps.SweepConns)/float64(ps.Sweeps))
}

// TestKernelSweepShortWriteResume drives wide batches of jumbo frames into a
// deliberately tiny socket buffer, so kernel submissions complete short (or
// EAGAIN) and the flusher must resume each remainder on the sequential path
// without tearing a frame. The receive side proves the byte stream stayed
// intact: every frame decodes, in order, with its full payload.
func TestKernelSweepShortWriteResume(t *testing.T) {
	base := FrameBufRefs()
	pool := NewFlusherPool(FlusherPoolConfig{Flushers: 1, KernelSubmit: true})
	var meter EgressMeter

	sender, receiver := tcpPair(t)
	// Shrink the send buffer before traffic so a single 8KiB-payload batch
	// overwhelms it (Linux doubles the value; still far below one batch).
	// The receive buffer stays at its default: the reader drains eagerly,
	// so short writes resume quickly instead of stalling on zero-window.
	if tc, ok := sender.nc.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(4096)
	}
	e := NewEgress(sender, EgressConfig{Depth: 64, Shed: false, Meter: &meter, Pool: pool})

	const frames = 64
	payload := make([]byte, 8192)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	done := make(chan error, 1)
	go func() {
		f := GetFrame()
		defer PutFrame(f)
		for seq := uint64(1); seq <= frames; seq++ {
			if err := receiver.RecvInto(f); err != nil {
				done <- fmt.Errorf("seq %d: %w", seq, err)
				return
			}
			if f.Msg.Seq != seq {
				done <- fmt.Errorf("seq %d arrived, want %d", f.Msg.Seq, seq)
				return
			}
			if len(f.Msg.Payload) != len(payload) {
				done <- fmt.Errorf("seq %d: payload %d bytes, want %d", seq, len(f.Msg.Payload), len(payload))
				return
			}
			for i, b := range f.Msg.Payload {
				if b != payload[i] {
					done <- fmt.Errorf("seq %d: payload corrupt at byte %d", seq, i)
					return
				}
			}
		}
		done <- nil
	}()
	for seq := uint64(1); seq <= frames; seq++ {
		if r := e.Enqueue(dispatchBuf(7, seq, payload), 7, spec.LossUnbounded); r != EnqueueOK {
			t.Fatalf("Enqueue(seq %d) = %v", seq, r)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver starved behind short writes")
	}
	e.Close()
	sender.Close()
	e.Wait()
	pool.Close()
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
	if errs := meter.WriteErrs.Load(); errs != 0 {
		t.Fatalf("WriteErrs = %d on a healthy connection", errs)
	}
}

// TestKernelSweepEscalationIsolatesWedgedConn wedges one fd of a kernel-
// submitted sweep — its socket buffer fills, the submission returns EAGAIN,
// and the flusher parks in the sequential resume — while a batch-mate on
// the same (only) flusher keeps producing. The mate's full-ring enqueues
// must depose the stuck flusher and keep flowing through the replacement.
func TestKernelSweepEscalationIsolatesWedgedConn(t *testing.T) {
	base := FrameBufRefs()
	pool := NewFlusherPool(FlusherPoolConfig{Flushers: 1, EscalateAfter: time.Millisecond, KernelSubmit: true})
	var meter EgressMeter

	wedgedSender, wedgedReceiver := tcpPair(t)
	if tc, ok := wedgedSender.nc.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(4096)
	}
	if tc, ok := wedgedReceiver.nc.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4096)
	}
	// The wedged receiver never reads: once both socket buffers fill, the
	// sweep's write on this fd can make no progress.
	wedged := NewEgress(wedgedSender, EgressConfig{Depth: 64, Shed: true, Meter: &meter, Pool: pool})

	healthySender, healthyReceiver := tcpPair(t)
	healthy := NewEgress(healthySender, EgressConfig{Depth: 4, Shed: true, Meter: &meter, Pool: pool})

	payload := make([]byte, 8192)
	for seq := uint64(1); seq <= 64; seq++ {
		wedged.Enqueue(dispatchBuf(1, seq, payload), 1, spec.LossUnbounded)
	}
	// Wait for the flusher to enter the wedged write (kernel EAGAIN resume
	// or plain sequential write, whichever path this host takes).
	deadline := time.Now().Add(5 * time.Second)
	for pool.flushers[0].inFlight.Load() == 0 || pool.flushers[0].writing.Load() != wedged {
		if time.Now().After(deadline) {
			t.Fatal("flusher never parked in the wedged write")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// The healthy subscriber: frames may be shed (Depth 4, a wedged
	// flusher), but whatever arrives must arrive in order, and the sentinel
	// enqueued after escalation must make it through the replacement.
	var lastSeen atomic.Uint64
	recvErr := make(chan error, 1)
	go func() {
		f := GetFrame()
		defer PutFrame(f)
		last := uint64(0)
		for {
			if err := healthyReceiver.RecvInto(f); err != nil {
				recvErr <- fmt.Errorf("after seq %d: %w", last, err)
				return
			}
			if f.Seq <= last {
				recvErr <- fmt.Errorf("reordered: %d after %d", f.Seq, last)
				return
			}
			last = f.Seq
			lastSeen.Store(last)
		}
	}()
	// Drive full-ring enqueues until one of them ages the wedged write past
	// EscalateAfter and deposes the flusher.
	seq := uint64(0)
	deadline = time.Now().Add(5 * time.Second)
	for pool.Escalations() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no escalation despite sustained full-ring enqueues behind a wedged write")
		}
		seq++
		switch r := healthy.Enqueue(pruneBuf(2, seq), 2, spec.LossUnbounded); r {
		case EnqueueOK, EnqueueShed:
		default:
			t.Fatalf("healthy Enqueue(%d) = %v", seq, r)
		}
	}
	seq++
	final := seq
	if r := healthy.Enqueue(pruneBuf(2, final), 2, spec.LossUnbounded); r != EnqueueOK && r != EnqueueShed {
		t.Fatalf("sentinel Enqueue(%d) = %v", final, r)
	}
	deadline = time.Now().Add(10 * time.Second)
	for lastSeen.Load() < final {
		select {
		case err := <-recvErr:
			t.Fatal(err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("sentinel seq %d starved behind the wedged batch-mate (got up to %d)",
				final, lastSeen.Load())
		}
		time.Sleep(time.Millisecond)
	}

	healthy.Close()
	healthySender.Close()
	healthy.Wait()
	// Unstick the deposed flusher: closing the peer fails the blocked write.
	wedgedReceiver.Close()
	wedged.Close()
	wedgedSender.Close()
	wedged.Wait()
	pool.Close()
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
}
