package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/spec"
)

// TestFlusherPoolDeliversManyConnsInOrder runs more egresses than flushers
// through one pool: every connection must receive its full burst in order
// (the sticky assignment + single-processor handoff guarantee), with the
// refcount balanced after shutdown.
func TestFlusherPoolDeliversManyConnsInOrder(t *testing.T) {
	base := FrameBufRefs()
	pool := NewFlusherPool(FlusherPoolConfig{Flushers: 2})
	var meter EgressMeter

	const conns = 8
	const n = 200
	egs := make([]*Egress, conns)
	recvErr := make(chan error, conns)
	for i := range egs {
		sender, receiver := pipePair(t)
		egs[i] = NewEgress(sender, EgressConfig{Depth: 256, Shed: true, Meter: &meter, Pool: pool})
		go func() {
			f := GetFrame()
			defer PutFrame(f)
			for want := uint64(1); want <= n; want++ {
				if err := receiver.RecvInto(f); err != nil {
					recvErr <- fmt.Errorf("recv %d: %w", want, err)
					return
				}
				if f.Seq != want {
					recvErr <- fmt.Errorf("seq %d, want %d (reordered across shared flushers)", f.Seq, want)
					return
				}
			}
			recvErr <- nil
		}()
	}
	var wg sync.WaitGroup
	for _, eg := range egs {
		wg.Add(1)
		go func(eg *Egress) {
			defer wg.Done()
			for seq := uint64(1); seq <= n; seq++ {
				if r := eg.Enqueue(pruneBuf(7, seq), 7, 0); r != EnqueueOK {
					t.Errorf("Enqueue(%d) = %v", seq, r)
					return
				}
			}
		}(eg)
	}
	wg.Wait()
	for range egs {
		if err := <-recvErr; err != nil {
			t.Fatal(err)
		}
	}
	for _, eg := range egs {
		eg.Close()
		eg.Conn().Close()
	}
	for _, eg := range egs {
		eg.Wait()
	}
	pool.Close()
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
	if f := meter.Flushed.Load(); f != conns*n {
		t.Fatalf("Flushed = %d, want %d", f, conns*n)
	}
}

// TestFlusherPoolShedsThenEvicts reruns the Li shed/evict contract through
// the pooled path: a wedged connection sheds exactly Li frames for its
// topic, then the next overflow evicts — and the pool finalizes the egress
// so Wait returns.
func TestFlusherPoolShedsThenEvicts(t *testing.T) {
	base := FrameBufRefs()
	pool := NewFlusherPool(FlusherPoolConfig{Flushers: 1})
	a, b := net.Pipe()
	defer b.Close()
	gate := make(chan struct{})
	sender := NewConn(&blockableConn{Conn: a, gate: gate})
	var meter EgressMeter
	const li = 3
	eg := NewEgress(sender, EgressConfig{Depth: 4, Shed: true, Meter: &meter, Pool: pool})

	sheds, evicted := 0, false
	for seq := uint64(1); seq <= 64 && !evicted; seq++ {
		switch r := eg.Enqueue(pruneBuf(9, seq), 9, li); r {
		case EnqueueOK:
		case EnqueueShed:
			sheds++
		case EnqueueEvicted:
			evicted = true
		default:
			t.Fatalf("Enqueue(%d) = %v", seq, r)
		}
	}
	if !evicted {
		t.Fatalf("never evicted (%d sheds)", sheds)
	}
	if sheds != li {
		t.Fatalf("shed %d frames before eviction, want exactly Li = %d", sheds, li)
	}
	close(gate) // release the wedged flusher; its write fails on the closed pipe
	eg.Wait()
	pool.Close()
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references after eviction", refs-base)
	}
	if meter.Evictions.Load() != 1 {
		t.Fatalf("Evictions = %d, want 1", meter.Evictions.Load())
	}
}

// TestFlusherPoolBlockingModeBackpressures: pooled blocking mode must keep
// the lossless contract — a full ring parks the enqueuer until the shared
// flusher drains, and nothing is dropped or reordered.
func TestFlusherPoolBlockingModeBackpressures(t *testing.T) {
	base := FrameBufRefs()
	pool := NewFlusherPool(FlusherPoolConfig{Flushers: 1})
	sender, receiver := pipePair(t)
	var meter EgressMeter
	eg := NewEgress(sender, EgressConfig{Depth: 2, Shed: false, Meter: &meter, Pool: pool})

	const n = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := uint64(1); seq <= n; seq++ {
			if r := eg.Enqueue(pruneBuf(1, seq), 1, 0); r != EnqueueOK {
				t.Errorf("Enqueue(%d) = %v", seq, r)
				return
			}
		}
	}()
	f := GetFrame()
	defer PutFrame(f)
	for want := uint64(1); want <= n; want++ {
		if err := receiver.RecvInto(f); err != nil {
			t.Fatalf("RecvInto: %v", err)
		}
		if f.Seq != want {
			t.Fatalf("seq %d, want %d", f.Seq, want)
		}
	}
	<-done
	eg.Close()
	sender.Close()
	eg.Wait()
	pool.Close()
	if meter.Shed.Load() != 0 || meter.Evictions.Load() != 0 {
		t.Fatal("blocking mode shed or evicted")
	}
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
}

// TestFlusherEscalationIsolatesWedgedConn is the pool's head-of-line
// contract: with a single flusher wedged in a write on one dead
// connection, a healthy sibling's full ring must escalate — spawning a
// replacement flusher — and keep delivering, instead of stalling behind
// the wedge the way a shared writer naively would.
func TestFlusherEscalationIsolatesWedgedConn(t *testing.T) {
	base := FrameBufRefs()
	pool := NewFlusherPool(FlusherPoolConfig{Flushers: 1, EscalateAfter: time.Millisecond})
	var meter EgressMeter

	a, b := net.Pipe()
	defer b.Close()
	gate := make(chan struct{})
	wedged := NewEgress(NewConn(&blockableConn{Conn: a, gate: gate}),
		EgressConfig{Depth: 4, Shed: true, Meter: &meter, Pool: pool})

	healthySender, healthyReceiver := pipePair(t)
	healthy := NewEgress(healthySender, EgressConfig{Depth: 4, Shed: true, Meter: &meter, Pool: pool})

	// Wedge the only flusher: the first frame reaches its write and blocks.
	wedged.Enqueue(pruneBuf(1, 1), 1, spec.LossUnbounded)
	deadline := time.Now().Add(5 * time.Second)
	for pool.flushers[0].inFlight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher never entered the wedged write")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Drive the healthy sibling until its ring overflows: the full-ring
	// path ages the wedged write past EscalateAfter and escalates.
	const n = 500
	got := make(chan error, 1)
	go func() {
		f := GetFrame()
		defer PutFrame(f)
		last := uint64(0)
		for {
			if err := healthyReceiver.RecvInto(f); err != nil {
				got <- fmt.Errorf("after seq %d: %w", last, err)
				return
			}
			if f.Seq <= last {
				got <- fmt.Errorf("reordered: %d after %d", f.Seq, last)
				return
			}
			last = f.Seq
			if last == n {
				got <- nil
				return
			}
		}
	}()
	for seq := uint64(1); seq <= n; seq++ {
		switch r := healthy.Enqueue(pruneBuf(2, seq), 2, spec.LossUnbounded); r {
		case EnqueueOK, EnqueueShed:
		default:
			t.Fatalf("healthy Enqueue(%d) = %v", seq, r)
		}
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("healthy subscriber starved behind the wedged connection")
	}
	if pool.Escalations() == 0 {
		t.Fatal("no escalation recorded despite delivery past a wedged flusher")
	}

	healthy.Close()
	healthySender.Close()
	healthy.Wait()
	close(gate) // the deposed flusher's write fails once the pipe closes
	wedged.Close()
	wedged.Conn().Close()
	wedged.Wait()
	pool.Close()
	if refs := FrameBufRefs(); refs != base {
		t.Fatalf("leaked %d FrameBuf references", refs-base)
	}
}
