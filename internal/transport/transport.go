// Package transport carries wire frames across process and host boundaries.
//
// It layers a uint32-length-prefixed framing on top of any net.Conn and
// abstracts the dial/listen pair behind a Network interface with two
// implementations: TCP (the real stack, used by the cmd/ tools, examples,
// and integration tests over loopback) and Mem (an in-process network built
// on net.Pipe, used by unit tests and the quickstart example).
//
// A Conn is safe for one concurrent reader plus any number of writers:
// writes are serialized by a mutex, matching the broker's worker-pool use
// where many Dispatchers push frames down the same subscriber link.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// MaxFrameSize bounds a single frame on the wire; larger length prefixes
// indicate corruption and poison the connection.
const MaxFrameSize = 4 << 20

// Receive-buffer shrink policy: rbuf grows to the largest frame seen (up to
// MaxFrameSize), but one jumbo frame must not pin megabytes per connection
// for the life of the process. Once rbuf exceeds RbufSoftCap and
// rbufShrinkAfter consecutive frames fit within the cap, it shrinks back.
const (
	// RbufSoftCap is the receive-buffer size a connection will pin
	// indefinitely without shrinking.
	RbufSoftCap = 64 << 10
	// rbufShrinkAfter is how many consecutive sub-cap frames must arrive
	// before an oversized rbuf is released (hysteresis, so alternating
	// sizes don't thrash the allocator).
	rbufShrinkAfter = 64
)

// ErrFrameTooLarge reports a length prefix above MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrameSize")

// Meter accumulates frame and byte counts across any set of Conns. All
// fields are atomic, so observability readers never contend with the data
// path; one Meter is typically shared by every connection a broker owns.
type Meter struct {
	FramesSent atomic.Uint64
	BytesSent  atomic.Uint64
	FramesRecv atomic.Uint64
	BytesRecv  atomic.Uint64
}

// Conn is a framed, typed connection carrying wire.Frames.
type Conn struct {
	nc    net.Conn
	meter *Meter

	writeMu sync.Mutex
	wbuf    []byte
	hdrBuf  [4]byte     // header scratch; a local would escape through nc.Write
	wv      net.Buffers // WriteBuffers scratch; a local would escape through WriteTo

	// Write batching (see EnableBatching); all fields guarded by writeMu.
	batchWin      time.Duration
	batchMax      int
	pending       []byte // encoded frames (header+body) awaiting one Write
	pendingFrames int
	timer         *time.Timer
	werr          error // sticky write failure

	// writeStall bounds each write syscall (see SetWriteStall); guarded by
	// writeMu.
	writeStall time.Duration

	// read state: single reader assumed.
	lenBuf   [4]byte
	rbuf     []byte
	rShrink  int  // consecutive sub-cap reads while rbuf is oversized
	zeroCopy bool // RecvInto aliases payloads into rbuf (see SetZeroCopy)

	// closed flips before the underlying conn closes so Send cannot accept
	// (and silently drop) frames into a batch nobody will ever flush.
	closed atomic.Bool
}

// NewConn wraps a net.Conn with frame codecs.
func NewConn(nc net.Conn) *Conn { return &Conn{nc: nc} }

// SetMeter attaches a traffic meter. Call before the connection is shared
// between goroutines; a nil meter disables counting.
func (c *Conn) SetMeter(m *Meter) { c.meter = m }

// Send encodes and writes one frame. Safe for concurrent use. On a batching
// connection (EnableBatching), data-plane frames are coalesced and may leave
// later, in order; all other frames drain the batch first and write through.
func (c *Conn) Send(f *wire.Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.sendableLocked(); err != nil {
		return err
	}
	body, err := wire.Encode(c.wbuf[:0], f)
	if err != nil {
		return fmt.Errorf("transport: encode %v: %w", f.Type, err)
	}
	c.wbuf = body // reuse the grown buffer next time
	return c.sendBodyLocked(f.Type, body)
}

// SendEncoded writes one pre-encoded frame body (the bytes wire.Encode or a
// wire.Append*Body helper produces) through the same ordering, batching, and
// size rules as Send. The caller keeps ownership of body: it is fully
// consumed — copied into the batch buffer or written to the conn — before
// SendEncoded returns, so the caller may reuse it immediately. This is what
// lets the broker encode a dispatched message once and fan the identical
// bytes out to every subscriber of the topic.
func (c *Conn) SendEncoded(body []byte) error {
	if len(body) == 0 {
		return errors.New("transport: empty frame body")
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := c.sendableLocked(); err != nil {
		return err
	}
	return c.sendBodyLocked(wire.Type(body[0]), body)
}

// SetWriteStall bounds every write syscall on this connection: a write that
// makes no progress for d is failed with os.ErrDeadlineExceeded instead of
// blocking forever on a wedged peer. The failure is sticky — a partial write
// corrupts the length-prefixed framing, so the connection is unusable after —
// and callers (the broker's replicators, the egress writers) treat it as a
// dead link. Zero disables the bound. Safe to call concurrently with writers.
func (c *Conn) SetWriteStall(d time.Duration) {
	c.writeMu.Lock()
	c.writeStall = d
	c.writeMu.Unlock()
}

// armWriteStallLocked sets the per-write deadline when a stall bound is
// configured; disarmWriteStallLocked clears it so reads sharing the socket's
// deadline machinery are unaffected between writes.
func (c *Conn) armWriteStallLocked() {
	if c.writeStall > 0 {
		c.nc.SetWriteDeadline(time.Now().Add(c.writeStall))
	}
}

func (c *Conn) disarmWriteStallLocked() {
	if c.writeStall > 0 {
		c.nc.SetWriteDeadline(time.Time{})
	}
}

// sendableLocked reports whether the connection can accept another frame,
// surfacing the sticky error and turning post-Close sends into errors
// instead of silent enqueues.
func (c *Conn) sendableLocked() error {
	if c.werr != nil {
		return c.werr
	}
	if c.closed.Load() {
		c.werr = fmt.Errorf("transport: send on closed connection: %w", net.ErrClosed)
		return c.werr
	}
	return nil
}

// sendBodyLocked routes one encoded frame: batchable frames coalesce when
// batching is on; control frames (and every frame on an unbatched conn) keep
// per-conn order by draining anything pending, then writing through.
func (c *Conn) sendBodyLocked(t wire.Type, body []byte) error {
	if len(body) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	if c.batchWin > 0 && batchable(t) {
		return c.enqueueLocked(body)
	}
	if err := c.flushLocked(); err != nil {
		return err
	}
	return c.writeFrameLocked(body)
}

// stickyWriteLocked records a write failure so every later send fails fast:
// a failed or partial write leaves the stream's framing in an unknown state,
// so the connection must not carry further frames. A failure on an
// already-closed connection additionally matches net.ErrClosed — the write
// lost a race with Close, and callers checking for orderly-shutdown errors
// should see it as one.
func (c *Conn) stickyWriteLocked(op string, err error) error {
	if c.closed.Load() {
		c.werr = fmt.Errorf("transport: %s: %v: %w", op, err, net.ErrClosed)
	} else {
		c.werr = fmt.Errorf("transport: %s: %w", op, err)
	}
	return c.werr
}

// writeFrameLocked writes one length-prefixed frame immediately. Errors are
// sticky (see stickyWriteLocked).
func (c *Conn) writeFrameLocked(body []byte) error {
	binary.LittleEndian.PutUint32(c.hdrBuf[:], uint32(len(body)))
	c.armWriteStallLocked()
	defer c.disarmWriteStallLocked()
	if _, err := c.nc.Write(c.hdrBuf[:]); err != nil {
		return c.stickyWriteLocked("write header", err)
	}
	if _, err := c.nc.Write(body); err != nil {
		return c.stickyWriteLocked("write body", err)
	}
	if c.meter != nil {
		c.meter.FramesSent.Add(1)
		c.meter.BytesSent.Add(uint64(4 + len(body)))
	}
	return nil
}

// WriteBuffers writes a pre-assembled sequence of length-prefixed frames in
// one vectored write (writev on TCP), draining any pending batch first so
// per-connection frame order holds. bufs alternates header and body slices;
// frames and nbytes are the frame count and total byte length it carries, for
// metering. The slice header is copied before the write because
// net.Buffers.WriteTo consumes it in place; the caller keeps ownership of
// bufs and its backing arrays. Errors are sticky, exactly like a direct
// frame write: a partial vectored write corrupts the framing.
func (c *Conn) WriteBuffers(bufs net.Buffers, frames, nbytes int) error {
	if err := c.lockSubmit(); err != nil {
		return err
	}
	defer c.unlockSubmit()
	if err := c.writeBuffersLocked(bufs); err != nil {
		return err
	}
	c.countSentLocked(frames, nbytes)
	return nil
}

// lockSubmit prepares the connection for an externally performed write —
// a sequential vectored write or a kernel-batched submission on the
// connection's raw fd: it takes the write lock, fails fast on a sticky
// error or a closed connection, and drains any pending Send batch so
// per-connection frame order holds. On success the caller owns the lock
// (and with it the byte stream) until unlockSubmit; on error the lock is
// already released.
func (c *Conn) lockSubmit() error {
	c.writeMu.Lock()
	if err := c.sendableLocked(); err != nil {
		c.writeMu.Unlock()
		return err
	}
	if err := c.flushLocked(); err != nil {
		c.writeMu.Unlock()
		return err
	}
	return nil
}

// unlockSubmit releases the write lock taken by lockSubmit.
func (c *Conn) unlockSubmit() { c.writeMu.Unlock() }

// writeBuffersLocked performs the vectored write under an already-held
// submit lock, without metering — callers that mix kernel-written and
// sequentially written bytes meter once at the end. Errors are sticky.
func (c *Conn) writeBuffersLocked(bufs net.Buffers) error {
	c.armWriteStallLocked()
	defer c.disarmWriteStallLocked()
	// WriteTo reslices its receiver, so write through the conn's scratch
	// header: it keeps the caller's slice intact without heap-escaping a
	// fresh one per call (WriteTo's pointer receiver escapes a local).
	c.wv = bufs
	_, err := c.wv.WriteTo(c.nc)
	c.wv = nil // don't pin the caller's arrays past the write
	if err != nil {
		return c.stickyWriteLocked("vectored write", err)
	}
	return nil
}

// stickySubmitLocked records a kernel-reported write failure exactly like
// a failed direct write: the stream's framing is in an unknown state, so
// the connection must not carry further frames. Caller holds the submit
// lock.
func (c *Conn) stickySubmitLocked(err error) error {
	return c.stickyWriteLocked("batched submit", err)
}

// countSentLocked meters frames/bytes that a submit-lock holder delivered
// (by whatever combination of kernel and sequential writes).
func (c *Conn) countSentLocked(frames, nbytes int) {
	if c.meter != nil {
		c.meter.FramesSent.Add(uint64(frames))
		c.meter.BytesSent.Add(uint64(nbytes))
	}
}

// consumeBuffers advances bufs past n already-written bytes, returning the
// remaining suffix. The returned slice aliases the input's backing array
// (the first remaining buffer may be resliced in place); callers that
// resume a short write pass the result straight back to a write.
func consumeBuffers(bufs net.Buffers, n int) net.Buffers {
	i := 0
	for i < len(bufs) && n >= len(bufs[i]) {
		n -= len(bufs[i])
		i++
	}
	bufs = bufs[i:]
	if len(bufs) > 0 && n > 0 {
		bufs[0] = bufs[0][n:]
	}
	return bufs
}

// Recv reads one frame, blocking until a frame arrives, the deadline set via
// SetReadDeadline expires, or the connection closes. Only one goroutine may
// call Recv at a time. The returned frame owns freshly allocated storage;
// hot paths use RecvInto instead.
func (c *Conn) Recv() (*wire.Frame, error) {
	body, err := c.readBody()
	if err != nil {
		return nil, err
	}
	f, err := wire.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	c.countRecv(len(body))
	return f, nil
}

// RecvInto reads one frame into f, which the caller owns and reuses across
// calls — the steady-state-allocation-free receive path. By default payload
// bytes are copied into f's recycled storage; with SetZeroCopy they alias
// the connection's receive buffer and stay valid only until the next
// Recv/RecvInto. Only one goroutine may receive at a time.
func (c *Conn) RecvInto(f *wire.Frame) error {
	body, err := c.readBody()
	if err != nil {
		return err
	}
	mode := wire.ModeCopy
	if c.zeroCopy {
		mode = wire.ModeAlias
	}
	if err := wire.DecodeInto(body, f, mode); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	c.countRecv(len(body))
	return nil
}

// SetZeroCopy makes RecvInto alias message payloads directly into the
// connection's receive buffer instead of copying them out. The aliased
// payload is overwritten by the next receive, so only callers that fully
// consume (or copy) each frame before reading the next may enable this —
// the broker's session loops do. Call before the first receive.
func (c *Conn) SetZeroCopy(on bool) { c.zeroCopy = on }

// readBody reads one length-prefixed frame body into the connection's
// receive buffer, growing it on demand and shrinking it per the RbufSoftCap
// policy, and returns the buffer slice holding exactly the body.
func (c *Conn) readBody() ([]byte, error) {
	if _, err := io.ReadFull(c.nc, c.lenBuf[:]); err != nil {
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(c.lenBuf[:]))
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	switch {
	case cap(c.rbuf) < n:
		c.rbuf = make([]byte, n)
		c.rShrink = 0
	case cap(c.rbuf) > RbufSoftCap && n <= RbufSoftCap:
		// Oversized by some earlier jumbo frame; shrink once the workload
		// has demonstrably moved back under the cap.
		c.rShrink++
		if c.rShrink >= rbufShrinkAfter {
			c.rbuf = make([]byte, RbufSoftCap)
			c.rShrink = 0
		}
	default:
		c.rShrink = 0
	}
	body := c.rbuf[:n]
	if _, err := io.ReadFull(c.nc, body); err != nil {
		return nil, fmt.Errorf("transport: read body: %w", err)
	}
	return body, nil
}

func (c *Conn) countRecv(n int) {
	if c.meter != nil {
		c.meter.FramesRecv.Add(1)
		c.meter.BytesRecv.Add(uint64(4 + n))
	}
}

// SetReadDeadline bounds the next Recv.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// closeLockWait bounds how long Close waits for a concurrent writer before
// giving up on the final flush; closing the net.Conn then unsticks any
// writer blocked inside Write.
const closeLockWait = 100 * time.Millisecond

// Close closes the underlying connection; a blocked Recv returns an error.
// A pending batch gets one bounded best-effort flush first, so orderly
// shutdowns do not drop coalesced frames. Unlike a bare TryLock, Close
// waits (bounded) for a concurrent writer to release the write lock — a
// Send mid-enqueue no longer causes the whole pending batch to be silently
// dropped — and marks the connection closed first, so a Send racing with
// Close returns an error instead of enqueueing onto a batch nobody will
// flush.
func (c *Conn) Close() error {
	c.closed.Store(true)
	if c.writeMu.TryLock() {
		// Uncontended fast path: flush and mark inline.
		c.closeLocked()
		c.writeMu.Unlock()
		return c.nc.Close()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.writeMu.Lock()
		defer c.writeMu.Unlock()
		c.closeLocked()
	}()
	select {
	case <-done:
	case <-time.After(closeLockWait):
		// A writer is wedged inside Write holding the lock; closing the
		// conn below unsticks it, and the goroutine above then finishes the
		// bookkeeping (its flush fails fast against the closed conn).
	}
	return c.nc.Close()
}

// closeLocked drains the pending batch best-effort, stops the batch timer,
// and makes the write error sticky so later Sends fail fast.
func (c *Conn) closeLocked() {
	if len(c.pending) > 0 && c.werr == nil {
		c.nc.SetWriteDeadline(time.Now().Add(closeLockWait))
		c.flushLocked()
		c.nc.SetWriteDeadline(time.Time{})
	}
	if c.timer != nil {
		c.timer.Stop()
	}
	if c.werr == nil {
		c.werr = fmt.Errorf("transport: connection closed: %w", net.ErrClosed)
	}
}

// RemoteAddr exposes the peer address for logs.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Network abstracts listen/dial so the same broker and client code runs over
// TCP or fully in-process.
type Network interface {
	// Listen opens a listener on addr.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr.
	Dial(addr string) (net.Conn, error)
}

// TCP is the real-network implementation of Network.
type TCP struct {
	// DialTimeout bounds Dial; zero means no timeout.
	DialTimeout time.Duration
}

var _ Network = (*TCP)(nil)

// Listen opens a TCP listener.
func (t *TCP) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return ln, nil
}

// Dial connects over TCP with the configured timeout.
func (t *TCP) Dial(addr string) (net.Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return nc, nil
}

// Mem is an in-process Network: listeners register under string addresses
// and Dial produces net.Pipe pairs. A single Mem value models one isolated
// network; tests create one per scenario.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

var _ Network = (*Mem)(nil)

// NewMem returns an empty in-process network.
func NewMem() *Mem { return &Mem{listeners: make(map[string]*memListener)} }

// ErrAddrInUse reports a duplicate in-process listen address.
var ErrAddrInUse = errors.New("transport: address already in use")

// ErrConnRefused reports a dial to an address nobody listens on.
var ErrConnRefused = errors.New("transport: connection refused")

// Listen registers a listener at addr.
func (m *Mem) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	ln := &memListener{
		net:    m,
		addr:   memAddr(addr),
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	m.listeners[addr] = ln
	return ln, nil
}

// Dial connects to a registered listener.
func (m *Mem) Dial(addr string) (net.Conn, error) {
	m.mu.Lock()
	ln := m.listeners[addr]
	m.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	client, server := net.Pipe()
	select {
	case ln.accept <- server:
		return client, nil
	case <-ln.done:
		return nil, fmt.Errorf("%w: %s (closed)", ErrConnRefused, addr)
	}
}

func (m *Mem) remove(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.listeners, addr)
}

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

type memListener struct {
	net    *Mem
	addr   memAddr
	accept chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

var _ net.Listener = (*memListener)(nil)

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.remove(string(l.addr))
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return l.addr }
