// Package transport carries wire frames across process and host boundaries.
//
// It layers a uint32-length-prefixed framing on top of any net.Conn and
// abstracts the dial/listen pair behind a Network interface with two
// implementations: TCP (the real stack, used by the cmd/ tools, examples,
// and integration tests over loopback) and Mem (an in-process network built
// on net.Pipe, used by unit tests and the quickstart example).
//
// A Conn is safe for one concurrent reader plus any number of writers:
// writes are serialized by a mutex, matching the broker's worker-pool use
// where many Dispatchers push frames down the same subscriber link.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// MaxFrameSize bounds a single frame on the wire; larger length prefixes
// indicate corruption and poison the connection.
const MaxFrameSize = 4 << 20

// ErrFrameTooLarge reports a length prefix above MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrameSize")

// Meter accumulates frame and byte counts across any set of Conns. All
// fields are atomic, so observability readers never contend with the data
// path; one Meter is typically shared by every connection a broker owns.
type Meter struct {
	FramesSent atomic.Uint64
	BytesSent  atomic.Uint64
	FramesRecv atomic.Uint64
	BytesRecv  atomic.Uint64
}

// Conn is a framed, typed connection carrying wire.Frames.
type Conn struct {
	nc    net.Conn
	meter *Meter

	writeMu sync.Mutex
	wbuf    []byte

	// Write batching (see EnableBatching); all fields guarded by writeMu.
	batchWin      time.Duration
	batchMax      int
	pending       []byte // encoded frames (header+body) awaiting one Write
	pendingFrames int
	timer         *time.Timer
	werr          error // sticky batch-flush failure

	// read state: single reader assumed.
	lenBuf [4]byte
	rbuf   []byte
}

// NewConn wraps a net.Conn with frame codecs.
func NewConn(nc net.Conn) *Conn { return &Conn{nc: nc} }

// SetMeter attaches a traffic meter. Call before the connection is shared
// between goroutines; a nil meter disables counting.
func (c *Conn) SetMeter(m *Meter) { c.meter = m }

// Send encodes and writes one frame. Safe for concurrent use. On a batching
// connection (EnableBatching), data-plane frames are coalesced and may leave
// later, in order; all other frames drain the batch first and write through.
func (c *Conn) Send(f *wire.Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.werr != nil {
		return c.werr
	}
	body, err := wire.Encode(c.wbuf[:0], f)
	if err != nil {
		return fmt.Errorf("transport: encode %v: %w", f.Type, err)
	}
	c.wbuf = body // reuse the grown buffer next time
	if len(body) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(body))
	}
	if c.batchWin > 0 && batchable(f.Type) {
		return c.enqueueLocked(body)
	}
	// Control frames (and every frame on an unbatched conn) keep per-conn
	// order: drain anything pending, then write through.
	if err := c.flushLocked(); err != nil {
		return err
	}
	return c.writeFrameLocked(body)
}

// writeFrameLocked writes one length-prefixed frame immediately.
func (c *Conn) writeFrameLocked(body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := c.nc.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if _, err := c.nc.Write(body); err != nil {
		return fmt.Errorf("transport: write body: %w", err)
	}
	if c.meter != nil {
		c.meter.FramesSent.Add(1)
		c.meter.BytesSent.Add(uint64(4 + len(body)))
	}
	return nil
}

// Recv reads one frame, blocking until a frame arrives, the deadline set via
// SetReadDeadline expires, or the connection closes. Only one goroutine may
// call Recv at a time.
func (c *Conn) Recv() (*wire.Frame, error) {
	if _, err := io.ReadFull(c.nc, c.lenBuf[:]); err != nil {
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	n := binary.LittleEndian.Uint32(c.lenBuf[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	body := c.rbuf[:n]
	if _, err := io.ReadFull(c.nc, body); err != nil {
		return nil, fmt.Errorf("transport: read body: %w", err)
	}
	f, err := wire.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	if c.meter != nil {
		c.meter.FramesRecv.Add(1)
		c.meter.BytesRecv.Add(uint64(4 + n))
	}
	return f, nil
}

// SetReadDeadline bounds the next Recv.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// Close closes the underlying connection; a blocked Recv returns an error.
// A pending batch gets one bounded best-effort flush first, so orderly
// shutdowns do not drop coalesced frames; if another goroutine holds the
// write lock (possibly blocked in a Write), closing the net.Conn unsticks it.
func (c *Conn) Close() error {
	if c.writeMu.TryLock() {
		if len(c.pending) > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
			c.flushLocked()
			c.nc.SetWriteDeadline(time.Time{})
		}
		if c.timer != nil {
			c.timer.Stop()
		}
		c.writeMu.Unlock()
	}
	return c.nc.Close()
}

// RemoteAddr exposes the peer address for logs.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Network abstracts listen/dial so the same broker and client code runs over
// TCP or fully in-process.
type Network interface {
	// Listen opens a listener on addr.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr.
	Dial(addr string) (net.Conn, error)
}

// TCP is the real-network implementation of Network.
type TCP struct {
	// DialTimeout bounds Dial; zero means no timeout.
	DialTimeout time.Duration
}

var _ Network = (*TCP)(nil)

// Listen opens a TCP listener.
func (t *TCP) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return ln, nil
}

// Dial connects over TCP with the configured timeout.
func (t *TCP) Dial(addr string) (net.Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return nc, nil
}

// Mem is an in-process Network: listeners register under string addresses
// and Dial produces net.Pipe pairs. A single Mem value models one isolated
// network; tests create one per scenario.
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

var _ Network = (*Mem)(nil)

// NewMem returns an empty in-process network.
func NewMem() *Mem { return &Mem{listeners: make(map[string]*memListener)} }

// ErrAddrInUse reports a duplicate in-process listen address.
var ErrAddrInUse = errors.New("transport: address already in use")

// ErrConnRefused reports a dial to an address nobody listens on.
var ErrConnRefused = errors.New("transport: connection refused")

// Listen registers a listener at addr.
func (m *Mem) Listen(addr string) (net.Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	ln := &memListener{
		net:    m,
		addr:   memAddr(addr),
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	m.listeners[addr] = ln
	return ln, nil
}

// Dial connects to a registered listener.
func (m *Mem) Dial(addr string) (net.Conn, error) {
	m.mu.Lock()
	ln := m.listeners[addr]
	m.mu.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	client, server := net.Pipe()
	select {
	case ln.accept <- server:
		return client, nil
	case <-ln.done:
		return nil, fmt.Errorf("%w: %s (closed)", ErrConnRefused, addr)
	}
}

func (m *Mem) remove(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.listeners, addr)
}

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }

type memListener struct {
	net    *Mem
	addr   memAddr
	accept chan net.Conn

	closeOnce sync.Once
	done      chan struct{}
}

var _ net.Listener = (*memListener)(nil)

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.remove(string(l.addr))
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return l.addr }
