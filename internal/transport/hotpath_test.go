package transport

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/wire"
)

// sendRecv pushes one frame through a net.Pipe pair and returns what the
// receiver decoded.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

// TestSendEncodedMatchesSend: a frame sent as pre-encoded bytes must arrive
// exactly as the same frame sent through Send — receivers cannot tell which
// path the broker took.
func TestSendEncodedMatchesSend(t *testing.T) {
	msg := wire.Message{Topic: 5, Seq: 77, Created: 3 * time.Millisecond, Payload: []byte("payload-bytes")}
	frame := &wire.Frame{Type: wire.TypeDispatch, Msg: msg, Dispatched: 9 * time.Millisecond}

	viaSend := make(chan *wire.Frame, 1)
	{
		ca, cb := pipePair(t)
		go func() { ca.Send(frame) }()
		f, err := cb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		viaSend <- f
	}

	ca, cb := pipePair(t)
	body := wire.AppendDispatchBody(nil, &msg, 9*time.Millisecond)
	errc := make(chan error, 1)
	go func() { errc <- ca.SendEncoded(body) }()
	got, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	want := <-viaSend
	ge, _ := wire.Encode(nil, got)
	we, _ := wire.Encode(nil, want)
	if !bytes.Equal(ge, we) {
		t.Errorf("SendEncoded delivered a different frame:\n got  %+v\n want %+v", got, want)
	}
}

// TestSendEncodedDoesNotRetainBody: the caller may scribble over the body
// buffer the moment SendEncoded returns, even on a batching connection where
// the bytes leave much later.
func TestSendEncodedDoesNotRetainBody(t *testing.T) {
	sender, cc, frames := batchPair(t, time.Hour, 0)
	_ = cc
	msg := wire.Message{Topic: 1, Seq: 1, Payload: []byte("original")}
	body := wire.AppendDispatchBody(nil, &msg, 0)
	if err := sender.SendEncoded(body); err != nil {
		t.Fatal(err)
	}
	for i := range body {
		body[i] = 0xFF // reuse the buffer before the batch flushes
	}
	if err := sender.Flush(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, frames, 1)
	if string(got[0].Msg.Payload) != "original" {
		t.Errorf("payload = %q: SendEncoded aliased the caller's buffer into the batch", got[0].Msg.Payload)
	}
}

// TestSendEncodedBatchesAndKeepsOrder: pre-encoded dispatch frames ride the
// same coalescing path as Send, interleaved with it, in order.
func TestSendEncodedBatchesAndKeepsOrder(t *testing.T) {
	sender, cc, frames := batchPair(t, 2*time.Millisecond, 0)
	const n = 100
	var body []byte
	for i := uint64(1); i <= n; i++ {
		m := wire.Message{Topic: 7, Seq: i, Created: time.Duration(i), Payload: []byte("0123456789abcdef")}
		if i%2 == 0 {
			if err := sender.Send(&wire.Frame{Type: wire.TypeDispatch, Msg: m}); err != nil {
				t.Fatal(err)
			}
			continue
		}
		body = wire.AppendDispatchBody(body[:0], &m, 0)
		if err := sender.SendEncoded(body); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, frames, n)
	for i, f := range got {
		if f.Msg.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d: SendEncoded broke per-conn order", i, f.Msg.Seq)
		}
	}
	if w := cc.writes.Load(); w >= n/2 {
		t.Errorf("%d frames took %d writes; SendEncoded should coalesce", n, w)
	}
}

func TestSendEncodedRejectsEmptyAndOversized(t *testing.T) {
	ca, _ := pipePair(t)
	if err := ca.SendEncoded(nil); err == nil {
		t.Error("empty body accepted")
	}
	huge := make([]byte, MaxFrameSize+1)
	huge[0] = byte(wire.TypeDispatch)
	if err := ca.SendEncoded(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

// feedFrames starts a goroutine sending payloads of the given sizes and
// returns the receiving conn.
func feedFrames(t *testing.T, sizes []int) *Conn {
	t.Helper()
	a, b := net.Pipe()
	sender, receiver := NewConn(a), NewConn(b)
	t.Cleanup(func() { sender.Close(); receiver.Close() })
	go func() {
		for i, n := range sizes {
			f := &wire.Frame{Type: wire.TypePublish, Msg: wire.Message{
				Topic: 1, Seq: uint64(i), Payload: make([]byte, n),
			}}
			if sender.Send(f) != nil {
				return
			}
		}
	}()
	return receiver
}

// TestRbufShrinksAfterJumbo: one jumbo frame grows the receive buffer past
// RbufSoftCap; rbufShrinkAfter consecutive small frames must release it —
// and one fewer must not (hysteresis).
func TestRbufShrinksAfterJumbo(t *testing.T) {
	const jumbo = 2 * RbufSoftCap
	sizes := []int{jumbo}
	for i := 0; i < rbufShrinkAfter; i++ {
		sizes = append(sizes, 64)
	}
	receiver := feedFrames(t, sizes)
	var f wire.Frame
	if err := receiver.RecvInto(&f); err != nil {
		t.Fatal(err)
	}
	if cap(receiver.rbuf) <= RbufSoftCap {
		t.Fatalf("rbuf cap %d after %d-byte frame, want > RbufSoftCap", cap(receiver.rbuf), jumbo)
	}
	for i := 0; i < rbufShrinkAfter-1; i++ {
		if err := receiver.RecvInto(&f); err != nil {
			t.Fatal(err)
		}
	}
	if cap(receiver.rbuf) <= RbufSoftCap {
		t.Fatalf("rbuf shrank after only %d sub-cap frames; hysteresis broken", rbufShrinkAfter-1)
	}
	if err := receiver.RecvInto(&f); err != nil {
		t.Fatal(err)
	}
	if got := cap(receiver.rbuf); got != RbufSoftCap {
		t.Errorf("rbuf cap = %d after %d sub-cap frames, want RbufSoftCap (%d)", got, rbufShrinkAfter, RbufSoftCap)
	}
}

// TestRbufStaysPutUnderCap: a workload that never exceeds the cap keeps one
// stable buffer — no churn.
func TestRbufStaysPutUnderCap(t *testing.T) {
	sizes := make([]int, 50)
	for i := range sizes {
		sizes[i] = 512
	}
	receiver := feedFrames(t, sizes)
	var f wire.Frame
	if err := receiver.RecvInto(&f); err != nil {
		t.Fatal(err)
	}
	stable := cap(receiver.rbuf)
	for i := 1; i < len(sizes); i++ {
		if err := receiver.RecvInto(&f); err != nil {
			t.Fatal(err)
		}
	}
	if cap(receiver.rbuf) != stable {
		t.Errorf("rbuf cap churned %d -> %d on a steady workload", stable, cap(receiver.rbuf))
	}
}

// TestRecvIntoZeroCopyAliasesRbuf: with SetZeroCopy the decoded payload
// points into the connection's receive buffer and is overwritten by the next
// read; in the default copy mode it survives.
func TestRecvIntoZeroCopyAliasesRbuf(t *testing.T) {
	a, b := net.Pipe()
	sender, receiver := NewConn(a), NewConn(b)
	t.Cleanup(func() { sender.Close(); receiver.Close() })
	receiver.SetZeroCopy(true)
	go func() {
		sender.Send(&wire.Frame{Type: wire.TypePublish, Msg: wire.Message{Topic: 1, Seq: 1, Payload: []byte("first-payload")}})
		sender.Send(&wire.Frame{Type: wire.TypePublish, Msg: wire.Message{Topic: 1, Seq: 2, Payload: []byte("secnd-payload")}})
	}()
	var f wire.Frame
	if err := receiver.RecvInto(&f); err != nil {
		t.Fatal(err)
	}
	first := f.Msg.Payload // aliases rbuf
	if string(first) != "first-payload" {
		t.Fatalf("payload = %q", first)
	}
	var f2 wire.Frame
	if err := receiver.RecvInto(&f2); err != nil {
		t.Fatal(err)
	}
	if string(first) != "secnd-payload" {
		t.Errorf("zero-copy payload = %q after next read, want it overwritten (aliasing rbuf)", first)
	}
}

func TestRecvIntoCopySurvivesNextRead(t *testing.T) {
	a, b := net.Pipe()
	sender, receiver := NewConn(a), NewConn(b)
	t.Cleanup(func() { sender.Close(); receiver.Close() })
	go func() {
		sender.Send(&wire.Frame{Type: wire.TypePublish, Msg: wire.Message{Topic: 1, Seq: 1, Payload: []byte("first-payload")}})
		sender.Send(&wire.Frame{Type: wire.TypePublish, Msg: wire.Message{Topic: 1, Seq: 2, Payload: []byte("secnd-payload")}})
	}()
	var f, f2 wire.Frame
	if err := receiver.RecvInto(&f); err != nil {
		t.Fatal(err)
	}
	if err := receiver.RecvInto(&f2); err != nil {
		t.Fatal(err)
	}
	if string(f.Msg.Payload) != "first-payload" {
		t.Errorf("copy-mode payload = %q after next read, want preserved", f.Msg.Payload)
	}
}

// TestPutFrameCapsRetainedCapacity: PutFrame keeps workload-sized buffers
// for reuse but drops jumbo ones so the pool cannot pin megabytes.
func TestPutFrameCapsRetainedCapacity(t *testing.T) {
	f := GetFrame()
	f.Type = wire.TypeDispatch
	f.Msg.Payload = append(f.Msg.Payload[:0], make([]byte, 1024)...)
	f.Topics = append(f.Topics[:0], 1, 2, 3)
	PutFrame(f)
	if f.Type != 0 || f.Msg.Seq != 0 || len(f.Msg.Payload) != 0 || len(f.Topics) != 0 {
		t.Errorf("PutFrame did not reset the frame: %+v", f)
	}
	if cap(f.Msg.Payload) < 1024 {
		t.Errorf("PutFrame dropped a workload-sized payload buffer (cap %d)", cap(f.Msg.Payload))
	}

	g := GetFrame()
	g.Msg.Payload = make([]byte, pooledPayloadCap+1)
	g.Topics = make([]spec.TopicID, pooledTopicsCap+1)
	PutFrame(g)
	if cap(g.Msg.Payload) != 0 {
		t.Errorf("PutFrame retained an oversized payload buffer (cap %d > %d)", cap(g.Msg.Payload), pooledPayloadCap)
	}
	if cap(g.Topics) != 0 {
		t.Errorf("PutFrame retained an oversized topic list (cap %d > %d)", cap(g.Topics), pooledTopicsCap)
	}
}

// blockableConn wedges Write until released, simulating a peer that has
// stopped reading — the scenario where Close used to silently drop a
// pending batch because TryLock failed against the stuck writer.
type blockableConn struct {
	net.Conn
	gate chan struct{} // closed to release writes
}

func (c *blockableConn) Write(p []byte) (int, error) {
	<-c.gate
	return c.Conn.Write(p)
}

// TestCloseWaitsForWriterThenFailsLaterSends provokes the Close/Send race:
// a Send wedged inside Write holds the write lock while Close runs. Close
// must not hang forever, and every Send after Close must fail instead of
// silently enqueueing.
func TestCloseWaitsForWriterThenFailsLaterSends(t *testing.T) {
	a, b := net.Pipe()
	bc := &blockableConn{Conn: a, gate: make(chan struct{})}
	sender := NewConn(bc)
	go func() { // drain so the pipe itself never blocks once the gate opens
		rc := NewConn(b)
		for {
			if _, err := rc.Recv(); err != nil {
				return
			}
		}
	}()

	sendErr := make(chan error, 1)
	go func() { sendErr <- sender.Send(dispatchFrame(1, 1)) }()
	// Wait until the sender is provably wedged inside Write holding writeMu.
	deadline := time.After(2 * time.Second)
	for sender.writeMu.TryLock() {
		sender.writeMu.Unlock()
		select {
		case <-deadline:
			t.Fatal("sender never took the write lock")
		case <-time.After(time.Millisecond):
		}
	}

	closed := make(chan error, 1)
	go func() { closed <- sender.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a wedged writer")
	}
	close(bc.gate) // release the wedged Write; it fails against the closed pipe
	select {
	case <-sendErr: // wedged send finished either way; what matters is below
	case <-time.After(5 * time.Second):
		t.Fatal("wedged Send never returned after Close")
	}
	if err := sender.Send(dispatchFrame(1, 2)); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Send after Close = %v, want net.ErrClosed", err)
	}
	if err := sender.SendEncoded(wire.AppendPruneBody(nil, 1, 1)); !errors.Is(err, net.ErrClosed) {
		t.Errorf("SendEncoded after Close = %v, want net.ErrClosed", err)
	}
}

// TestCloseFlushesBatchHeldByConcurrentSender provokes the exact bug the
// bounded lock wait fixes: Close arrives while another goroutine holds the
// write lock (as a mid-enqueue Send does). The old TryLock-only Close gave
// up immediately and the pending batch died with the conn; now Close waits
// for the lock and flushes.
func TestCloseFlushesBatchHeldByConcurrentSender(t *testing.T) {
	sender, _, frames := batchPair(t, time.Hour, 0)
	const n = 5
	for i := uint64(1); i <= n; i++ {
		if err := sender.Send(dispatchFrame(3, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Hold the write lock exactly as a concurrent Send would, long enough
	// that Close's TryLock fast path must fail.
	sender.writeMu.Lock()
	closed := make(chan error, 1)
	go func() { closed <- sender.Close() }()
	time.Sleep(10 * time.Millisecond) // let Close hit the contended path
	sender.writeMu.Unlock()
	got := collect(t, frames, n)
	if got[n-1].Msg.Seq != n {
		t.Fatalf("last flushed seq %d, want %d", got[n-1].Msg.Seq, n)
	}
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned")
	}
}
