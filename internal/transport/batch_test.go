package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spec"
	"repro/internal/wire"
)

// countingConn counts Write calls — the syscall-shaped quantity batching is
// supposed to reduce.
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// batchPair returns a batching sender whose Writes are counted, and a
// receiver draining frames into a channel.
func batchPair(t *testing.T, window time.Duration, maxBytes int) (*Conn, *countingConn, <-chan *wire.Frame) {
	t.Helper()
	a, b := net.Pipe()
	cc := &countingConn{Conn: a}
	sender := NewConn(cc)
	sender.EnableBatching(window, maxBytes)
	receiver := NewConn(b)
	t.Cleanup(func() { sender.Close(); receiver.Close() })
	frames := make(chan *wire.Frame, 1024)
	go func() {
		defer close(frames)
		for {
			f, err := receiver.Recv()
			if err != nil {
				return
			}
			frames <- f
		}
	}()
	return sender, cc, frames
}

func dispatchFrame(topic spec.TopicID, seq uint64) *wire.Frame {
	return &wire.Frame{Type: wire.TypeDispatch, Msg: wire.Message{
		Topic: topic, Seq: seq, Created: time.Duration(seq), Payload: []byte("0123456789abcdef"),
	}}
}

func collect(t *testing.T, frames <-chan *wire.Frame, n int) []*wire.Frame {
	t.Helper()
	got := make([]*wire.Frame, 0, n)
	timeout := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatalf("receiver closed after %d of %d frames", len(got), n)
			}
			got = append(got, f)
		case <-timeout:
			t.Fatalf("timed out with %d of %d frames", len(got), n)
		}
	}
	return got
}

// TestBatchCoalescesWrites sends a burst of dispatch frames and checks that
// they arrive complete and in order in far fewer Writes than frames — the
// whole point of the batcher.
func TestBatchCoalescesWrites(t *testing.T) {
	sender, cc, frames := batchPair(t, 2*time.Millisecond, 0)
	const n = 100
	for i := uint64(1); i <= n; i++ {
		if err := sender.Send(dispatchFrame(7, i)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, frames, n)
	for i, f := range got {
		if f.Msg.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d: batching reordered frames", i, f.Msg.Seq)
		}
	}
	if w := cc.writes.Load(); w >= n/2 {
		t.Errorf("%d frames took %d writes; batching should coalesce", n, w)
	}
}

// TestBatchFlushesOnSize uses an effectively infinite window so only the
// size threshold can flush, and checks frames still arrive.
func TestBatchFlushesOnSize(t *testing.T) {
	sender, cc, frames := batchPair(t, time.Hour, 256)
	const n = 50
	for i := uint64(1); i <= n; i++ {
		if err := sender.Send(dispatchFrame(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	// A 16-byte-payload frame is several dozen bytes; 50 of them overflow a
	// 256-byte threshold many times, so all but the last partial batch are
	// already out with no timer involved.
	got := collect(t, frames, n-8)
	if len(got) == 0 || cc.writes.Load() == 0 {
		t.Fatal("size threshold never flushed")
	}
	if err := sender.Flush(); err != nil {
		t.Fatal(err)
	}
	rest := collect(t, frames, n-len(got))
	last := got[len(got)-1].Msg.Seq
	for _, f := range rest {
		if f.Msg.Seq != last+1 {
			t.Fatalf("after explicit flush got seq %d, want %d", f.Msg.Seq, last+1)
		}
		last = f.Msg.Seq
	}
}

// TestBatchControlFramesWriteThrough checks that a non-batchable frame
// drains the pending batch first and goes out immediately — order preserved,
// no window-length delay for control traffic.
func TestBatchControlFramesWriteThrough(t *testing.T) {
	sender, _, frames := batchPair(t, time.Hour, 0)
	for i := uint64(1); i <= 3; i++ {
		if err := sender.Send(dispatchFrame(2, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sender.Send(&wire.Frame{Type: wire.TypePoll, Nonce: 99}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, frames, 4)
	for i := 0; i < 3; i++ {
		if got[i].Type != wire.TypeDispatch || got[i].Msg.Seq != uint64(i+1) {
			t.Fatalf("frame %d = %v seq %d, want queued dispatch %d", i, got[i].Type, got[i].Msg.Seq, i+1)
		}
	}
	if got[3].Type != wire.TypePoll || got[3].Nonce != 99 {
		t.Fatalf("frame 3 = %v, want the poll that flushed the batch", got[3].Type)
	}
}

// TestBatchFlushesOnClose checks the orderly-shutdown path: frames parked
// behind a long window still reach the peer when the sender closes.
func TestBatchFlushesOnClose(t *testing.T) {
	sender, _, frames := batchPair(t, time.Hour, 0)
	for i := uint64(1); i <= 5; i++ {
		if err := sender.Send(dispatchFrame(3, i)); err != nil {
			t.Fatal(err)
		}
	}
	go sender.Close() // net.Pipe writes rendezvous with the reader
	got := collect(t, frames, 5)
	if got[4].Msg.Seq != 5 {
		t.Fatalf("last frame seq %d, want 5", got[4].Msg.Seq)
	}
}

// TestBatchConcurrentSenders checks the broker's actual usage: many worker
// goroutines sharing one subscriber conn. Frames may interleave across
// goroutines but each goroutine's own frames must stay in order, and none
// may be lost or corrupted.
func TestBatchConcurrentSenders(t *testing.T) {
	sender, _, frames := batchPair(t, time.Millisecond, 0)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); i <= perWorker; i++ {
				if err := sender.Send(dispatchFrame(spec.TopicID(w), i)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := sender.Flush(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, frames, workers*perWorker)
	next := make(map[spec.TopicID]uint64)
	for _, f := range got {
		if f.Msg.Seq != next[f.Msg.Topic]+1 {
			t.Fatalf("topic %d: seq %d after %d", f.Msg.Topic, f.Msg.Seq, next[f.Msg.Topic])
		}
		next[f.Msg.Topic] = f.Msg.Seq
	}
}

// TestBatchStickyError checks that once a flush fails the connection stays
// failed: later Sends report the error instead of silently dropping frames
// into a dead buffer.
func TestBatchStickyError(t *testing.T) {
	a, b := net.Pipe()
	sender := NewConn(a)
	sender.EnableBatching(time.Hour, 0)
	if err := sender.Send(dispatchFrame(1, 1)); err != nil {
		t.Fatal(err)
	}
	b.Close() // peer gone: the eventual flush must fail
	if err := sender.Flush(); err == nil {
		t.Fatal("flush to closed peer succeeded")
	}
	if err := sender.Send(dispatchFrame(1, 2)); err == nil {
		t.Fatal("send after failed flush succeeded")
	}
}
