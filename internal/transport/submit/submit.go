// Package submit batches socket writes into single kernel submissions.
//
// PR 8's flusher pool made egress cost O(flushers) *wakeups*: one writer
// goroutine sweeps many subscriber rings per wakeup. But each swept ring
// still paid one write syscall, so a sweep over N hot connections crossed
// the kernel N times — the syscall overhead the broker-comparison studies
// (PAPERS.md) show dominating small-payload high-fanout operating points.
// This package closes that gap: a flusher queues one vectored write per
// swept connection into a Ring and submits the whole sweep with a single
// io_uring_enter, making egress O(flushers) syscalls per sweep.
//
// The Linux backend drives raw io_uring (mmap'd SQ/CQ rings, no
// dependencies beyond the syscall package): each queued write becomes one
// IORING_OP_SENDMSG SQE carrying the connection's iovec chain with
// MSG_DONTWAIT | MSG_NOSIGNAL. DONTWAIT is the load-bearing flag — a plain
// WRITEV SQE on a socket whose buffer is full parks inside the kernel until
// the peer drains, which would let one wedged subscriber head-of-line-block
// the completion harvest for every batch-mate. With DONTWAIT the kernel
// executes every SQE inline during the submit call and a full socket
// completes immediately with EAGAIN in its CQE, so the caller gets one
// result per connection from one syscall, then routes only the stragglers
// (EAGAIN, short writes) through its ordinary blocking path where the
// existing write-stall deadlines and flusher escalation apply.
//
// On non-Linux builds, pre-io_uring kernels, or under seccomp policies
// that refuse io_uring_setup, NewRing fails and callers keep the portable
// sequential-writev path with today's exact semantics. FRAME_NO_URING=1
// forces that fallback everywhere (the CI portable leg).
package submit

import (
	"fmt"
	"strconv"
	"strings"
	"syscall"
)

// IOVMax is the largest iovec count one queued write may carry — the
// kernel's UIO_MAXIOV bound on a single writev/sendmsg. The transport's
// egress layer derives its per-connection batch clamp from this constant
// (two iovecs per frame: length prefix + body), so a collected batch can
// always be submitted as one SQE; Add rejects anything larger and the
// caller must fall back to a sequential write for that connection.
const IOVMax = 1024

// NoUringEnv is the environment variable that force-disables the kernel
// submission backend when set to any non-empty value, pinning every
// flusher to the portable sequential path. CI runs a matrix leg with it
// set so the fallback stays covered on every PR.
const NoUringEnv = "FRAME_NO_URING"

// Result is the completion of one queued write.
type Result struct {
	// N is the byte count the kernel wrote; it may be short of the queued
	// total (socket buffer filled mid-write) — the caller resumes the
	// remainder on its sequential path.
	N int
	// Errno is zero on success. EAGAIN means the socket buffer was full
	// and nothing was written; any other value is a hard write error
	// (EPIPE, ECONNRESET, EBADF, ...) and the connection is dead.
	Errno syscall.Errno
}

// ParseCPUList parses a taskset-style CPU list ("0-3,8,10-11") into the
// expanded slice of CPU indices, preserving order and duplicates as
// written. An empty or all-whitespace string parses to nil (no pinning).
func ParseCPUList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		lo, hi, found := strings.Cut(part, "-")
		a, err := strconv.Atoi(strings.TrimSpace(lo))
		if err != nil || a < 0 {
			return nil, fmt.Errorf("submit: bad CPU list entry %q", part)
		}
		b := a
		if found {
			b, err = strconv.Atoi(strings.TrimSpace(hi))
			if err != nil || b < a {
				return nil, fmt.Errorf("submit: bad CPU range %q", part)
			}
		}
		for c := a; c <= b; c++ {
			cpus = append(cpus, c)
		}
	}
	return cpus, nil
}
