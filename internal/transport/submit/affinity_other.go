//go:build !linux

package submit

// Pin is a documented no-op off Linux: the -pin-flushers/-pin-lanes
// knobs parse everywhere but only take effect where sched_setaffinity
// exists.
func Pin(cpu int) error { return nil }
