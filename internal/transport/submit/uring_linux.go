//go:build linux && (amd64 || arm64 || riscv64 || loong64)

package submit

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// io_uring syscall numbers are arch-uniform: the interface landed after
// the asm-generic unification, so 425/426 hold on every Linux port.
const (
	sysIoUringSetup = 425
	sysIoUringEnter = 426

	offSQRing = 0x0
	offCQRing = 0x8000000
	offSQEs   = 0x10000000

	enterGetEvents = 1 << 0

	opNop     = 0
	opSendmsg = 9
)

// ioSqringOffsets / ioCqringOffsets / ioUringParams mirror the UAPI
// structs handed back by io_uring_setup (include/uapi/linux/io_uring.h).
type ioSqringOffsets struct {
	head        uint32
	tail        uint32
	ringMask    uint32
	ringEntries uint32
	flags       uint32
	dropped     uint32
	array       uint32
	resv1       uint32
	resv2       uint64
}

type ioCqringOffsets struct {
	head        uint32
	tail        uint32
	ringMask    uint32
	ringEntries uint32
	overflow    uint32
	cqes        uint32
	flags       uint32
	resv1       uint32
	resv2       uint64
}

type ioUringParams struct {
	sqEntries    uint32
	cqEntries    uint32
	flags        uint32
	sqThreadCPU  uint32
	sqThreadIdle uint32
	features     uint32
	wqFd         uint32
	resv         [3]uint32
	sqOff        ioSqringOffsets
	cqOff        ioCqringOffsets
}

// sqe is the 64-byte submission queue entry (fields this backend uses,
// padding for the rest).
type sqe struct {
	opcode      uint8
	flags       uint8
	ioprio      uint16
	fd          int32
	off         uint64
	addr        uint64
	len         uint32
	opFlags     uint32
	userData    uint64
	bufIndex    uint16
	personality uint16
	spliceFdIn  int32
	pad         [2]uint64
}

// cqe is the 16-byte completion queue entry.
type cqe struct {
	userData uint64
	res      int32
	flags    uint32
}

// Ring is one io_uring instance plus the scratch to assemble a sweep.
// A Ring belongs to exactly one goroutine (each flusher owns its own);
// none of its methods are safe for concurrent use.
type Ring struct {
	fd        int
	sqEntries uint32

	sqMem  []byte
	cqMem  []byte
	sqeMem []byte

	sqHead  *uint32
	sqTail  *uint32
	sqMask  *uint32
	sqArray []uint32
	cqHead  *uint32
	cqTail  *uint32
	cqMask  *uint32
	sqes    []sqe
	cqes    []cqe

	// Sweep assembly. iovs is a shared arena so Add never allocates in
	// steady state; entries record arena ranges (not pointers) because
	// append may relocate the arena between Adds. Msghdrs are built at
	// Flush time, once the arena is final.
	iovs []syscall.Iovec
	hdrs []syscall.Msghdr
	ents []rentry
	res  []Result
}

type rentry struct {
	fd  int
	off int
	n   int
}

func ptrAt(mem []byte, off uint32) *uint32 {
	return (*uint32)(unsafe.Pointer(&mem[off]))
}

// NewRing sets up an io_uring instance with the given SQ depth and probes
// it with a NOP round trip, so a successful return means the kernel (and
// any seccomp policy in front of it) genuinely supports the interface.
// Callers treat any error as "use the portable path".
func NewRing(entries int) (*Ring, error) {
	if os.Getenv(NoUringEnv) != "" {
		return nil, fmt.Errorf("submit: kernel batching disabled by %s", NoUringEnv)
	}
	if entries <= 0 {
		entries = 128
	}
	var p ioUringParams
	rfd, _, errno := syscall.Syscall(sysIoUringSetup, uintptr(entries), uintptr(unsafe.Pointer(&p)), 0)
	if errno != 0 {
		return nil, fmt.Errorf("submit: io_uring_setup: %w", errno)
	}
	r := &Ring{fd: int(rfd), sqEntries: p.sqEntries}
	sqSize := int(p.sqOff.array) + 4*int(p.sqEntries)
	cqSize := int(p.cqOff.cqes) + 16*int(p.cqEntries)
	var err error
	r.sqMem, err = syscall.Mmap(r.fd, offSQRing, sqSize,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	if err == nil {
		r.cqMem, err = syscall.Mmap(r.fd, offCQRing, cqSize,
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	}
	if err == nil {
		r.sqeMem, err = syscall.Mmap(r.fd, offSQEs, 64*int(p.sqEntries),
			syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED|syscall.MAP_POPULATE)
	}
	if err != nil {
		r.Close()
		return nil, fmt.Errorf("submit: io_uring mmap: %w", err)
	}
	r.sqHead = ptrAt(r.sqMem, p.sqOff.head)
	r.sqTail = ptrAt(r.sqMem, p.sqOff.tail)
	r.sqMask = ptrAt(r.sqMem, p.sqOff.ringMask)
	r.sqArray = unsafe.Slice(ptrAt(r.sqMem, p.sqOff.array), p.sqEntries)
	r.cqHead = ptrAt(r.cqMem, p.cqOff.head)
	r.cqTail = ptrAt(r.cqMem, p.cqOff.tail)
	r.cqMask = ptrAt(r.cqMem, p.cqOff.ringMask)
	r.sqes = unsafe.Slice((*sqe)(unsafe.Pointer(&r.sqeMem[0])), p.sqEntries)
	r.cqes = unsafe.Slice((*cqe)(unsafe.Pointer(&r.cqMem[p.cqOff.cqes])), p.cqEntries)
	r.hdrs = make([]syscall.Msghdr, p.sqEntries)
	if err := r.probe(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// probe pushes one NOP through the ring: catches kernels that accept
// io_uring_setup but refuse io_uring_enter (some seccomp profiles).
func (r *Ring) probe() error {
	tail := atomic.LoadUint32(r.sqTail)
	idx := tail & *r.sqMask
	r.sqes[idx] = sqe{opcode: opNop, userData: ^uint64(0)}
	r.sqArray[idx] = idx
	atomic.StoreUint32(r.sqTail, tail+1)
	for {
		_, _, errno := syscall.Syscall6(sysIoUringEnter, uintptr(r.fd), 1, 1, enterGetEvents, 0, 0)
		if errno == syscall.EINTR {
			continue
		}
		if errno != 0 {
			return fmt.Errorf("submit: io_uring_enter probe: %w", errno)
		}
		break
	}
	head := atomic.LoadUint32(r.cqHead)
	if atomic.LoadUint32(r.cqTail) == head {
		return fmt.Errorf("submit: io_uring probe produced no completion")
	}
	c := r.cqes[head&*r.cqMask]
	atomic.StoreUint32(r.cqHead, head+1)
	if c.userData != ^uint64(0) || c.res != 0 {
		return fmt.Errorf("submit: io_uring probe completion mismatch (res=%d)", c.res)
	}
	return nil
}

// Pending reports how many writes are queued for the next Flush.
func (r *Ring) Pending() int { return len(r.ents) }

// Add queues one vectored write on fd for the next Flush. It returns
// false — queueing nothing — when bufs is empty or carries more than
// IOVMax non-empty vectors (the caller must write that connection
// sequentially; splitting one fd's frames across SQEs would unorder
// them). The buffers must stay alive and unmodified until Flush returns.
func (r *Ring) Add(fd int, bufs net.Buffers) bool {
	off := len(r.iovs)
	n := 0
	for i := range bufs {
		if len(bufs[i]) == 0 {
			continue
		}
		r.iovs = append(r.iovs, syscall.Iovec{Base: &bufs[i][0], Len: uint64(len(bufs[i]))})
		n++
	}
	if n == 0 || n > IOVMax {
		r.iovs = r.iovs[:off]
		return false
	}
	r.ents = append(r.ents, rentry{fd: fd, off: off, n: n})
	return true
}

// Flush submits every queued write and blocks until the kernel has
// completed all of them, returning one Result per Add (in Add order) and
// the number of io_uring_enter calls spent. Because every SQE carries
// MSG_DONTWAIT the kernel executes them inline: completions arrive from
// the same syscall that submitted them, a full socket yields EAGAIN
// instead of blocking, so Flush never waits on a slow peer. Sweeps wider
// than the SQ depth are chunked across additional enters. The queue is
// consumed: after Flush the ring is empty and ready for the next sweep.
//
// A non-nil error means the ring itself failed (not any one write) —
// the caller should close the Ring, treat every zero-valued Result as
// unsubmitted, and fall back to sequential writes.
func (r *Ring) Flush() ([]Result, int, error) {
	nent := len(r.ents)
	r.res = r.res[:0]
	for i := 0; i < nent; i++ {
		r.res = append(r.res, Result{})
	}
	enters := 0
	for done := 0; done < nent; {
		chunk := nent - done
		if chunk > int(r.sqEntries) {
			chunk = int(r.sqEntries)
		}
		tail := atomic.LoadUint32(r.sqTail)
		for i := 0; i < chunk; i++ {
			ent := r.ents[done+i]
			mh := &r.hdrs[i]
			*mh = syscall.Msghdr{}
			mh.Iov = &r.iovs[ent.off]
			mh.Iovlen = uint64(ent.n)
			idx := (tail + uint32(i)) & *r.sqMask
			sq := &r.sqes[idx]
			*sq = sqe{
				opcode:   opSendmsg,
				fd:       int32(ent.fd),
				addr:     uint64(uintptr(unsafe.Pointer(mh))),
				len:      1,
				opFlags:  syscall.MSG_DONTWAIT | syscall.MSG_NOSIGNAL,
				userData: uint64(done + i),
			}
			r.sqArray[idx] = idx
		}
		atomic.StoreUint32(r.sqTail, tail+uint32(chunk))
		for harvested := 0; harvested < chunk; {
			// Resubmit whatever the kernel has not consumed yet (EINTR can
			// interrupt between the submit and wait halves of one enter).
			toSubmit := atomic.LoadUint32(r.sqTail) - atomic.LoadUint32(r.sqHead)
			_, _, errno := syscall.Syscall6(sysIoUringEnter, uintptr(r.fd),
				uintptr(toSubmit), uintptr(chunk-harvested), enterGetEvents, 0, 0)
			enters++
			if errno != 0 && errno != syscall.EINTR {
				r.reset()
				return r.res, enters, fmt.Errorf("submit: io_uring_enter: %w", errno)
			}
			harvested += r.harvest()
		}
		done += chunk
	}
	// The iovec arena and msghdrs are reachable only through mmap'd SQEs
	// (invisible to the GC) from tail-store to harvest; keep them alive
	// past the last enter.
	runtime.KeepAlive(r.iovs)
	runtime.KeepAlive(r.hdrs)
	r.reset()
	return r.res, enters, nil
}

// harvest drains the completion queue into r.res, returning the number
// of completions consumed.
func (r *Ring) harvest() int {
	head := atomic.LoadUint32(r.cqHead)
	tail := atomic.LoadUint32(r.cqTail)
	n := 0
	for ; head != tail; head++ {
		c := r.cqes[head&*r.cqMask]
		if i := int(c.userData); i >= 0 && i < len(r.res) {
			if c.res < 0 {
				r.res[i] = Result{Errno: syscall.Errno(-c.res)}
			} else {
				r.res[i] = Result{N: int(c.res)}
			}
		}
		n++
	}
	atomic.StoreUint32(r.cqHead, head)
	return n
}

func (r *Ring) reset() {
	r.iovs = r.iovs[:0]
	r.ents = r.ents[:0]
}

// Close unmaps the rings and closes the ring fd. The Ring is unusable
// afterwards.
func (r *Ring) Close() {
	if r.sqeMem != nil {
		_ = syscall.Munmap(r.sqeMem)
		r.sqeMem = nil
	}
	if r.cqMem != nil {
		_ = syscall.Munmap(r.cqMem)
		r.cqMem = nil
	}
	if r.sqMem != nil {
		_ = syscall.Munmap(r.sqMem)
		r.sqMem = nil
	}
	if r.fd >= 0 {
		_ = syscall.Close(r.fd)
		r.fd = -1
	}
}

// DupConnFD returns a private dup of nc's socket fd, or -1 when nc does
// not expose one (in-memory pipes, fault-injection wrappers, TLS). The
// dup is owned by the caller (close with CloseFD) so a racing Conn.Close
// can never recycle the fd number out from under an in-flight sweep.
func DupConnFD(nc net.Conn) int {
	sc, ok := nc.(syscall.Conn)
	if !ok {
		return -1
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return -1
	}
	dup := -1
	_ = rc.Control(func(fd uintptr) {
		d, _, errno := syscall.Syscall(syscall.SYS_FCNTL, fd, syscall.F_DUPFD_CLOEXEC, 0)
		if errno == 0 {
			dup = int(d)
		}
	})
	return dup
}

// CloseFD closes an fd obtained from DupConnFD; negative fds are ignored.
func CloseFD(fd int) {
	if fd >= 0 {
		_ = syscall.Close(fd)
	}
}
