//go:build linux && (amd64 || arm64 || riscv64 || loong64)

package submit

import (
	"bytes"
	"fmt"
	"net"
	"syscall"
	"testing"
	"unsafe"
)

func TestUAPIStructSizes(t *testing.T) {
	if s := unsafe.Sizeof(sqe{}); s != 64 {
		t.Fatalf("sqe size = %d, want 64", s)
	}
	if s := unsafe.Sizeof(cqe{}); s != 16 {
		t.Fatalf("cqe size = %d, want 16", s)
	}
	if s := unsafe.Sizeof(ioUringParams{}); s != 120 {
		t.Fatalf("ioUringParams size = %d, want 120", s)
	}
}

// newTestRing opens a ring or skips the test on kernels/sandboxes
// without io_uring.
func newTestRing(t *testing.T, entries int) *Ring {
	t.Helper()
	r, err := NewRing(entries)
	if err != nil {
		t.Skipf("io_uring unavailable: %v", err)
	}
	t.Cleanup(r.Close)
	return r
}

// sockPair returns a connected nonblocking unix stream pair as raw fds.
func sockPair(t *testing.T) (int, int) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatalf("socketpair: %v", err)
	}
	t.Cleanup(func() { syscall.Close(fds[0]); syscall.Close(fds[1]) })
	return fds[0], fds[1]
}

func readAll(t *testing.T, fd, n int) []byte {
	t.Helper()
	out := make([]byte, 0, n)
	buf := make([]byte, 64<<10)
	for len(out) < n {
		k, err := syscall.Read(fd, buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		out = append(out, buf[:k]...)
	}
	return out
}

func TestRingDisabledByEnv(t *testing.T) {
	t.Setenv(NoUringEnv, "1")
	if r, err := NewRing(8); err == nil {
		r.Close()
		t.Fatal("NewRing succeeded with FRAME_NO_URING set")
	}
}

// TestRingSweepsManySockets is the tentpole's core claim: one Flush
// (one enter on an unconstrained ring) completes distinct multi-iovec
// writes on many sockets, each delivered intact and in order.
func TestRingSweepsManySockets(t *testing.T) {
	r := newTestRing(t, 64)
	const conns = 16
	var readers [conns]int
	var want [conns][]byte
	for i := 0; i < conns; i++ {
		w, rd := sockPair(t)
		readers[i] = rd
		hdr := []byte(fmt.Sprintf("hdr%02d|", i))
		body := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		want[i] = append(append([]byte{}, hdr...), body...)
		if !r.Add(w, net.Buffers{hdr, body}) {
			t.Fatalf("Add conn %d refused", i)
		}
	}
	if got := r.Pending(); got != conns {
		t.Fatalf("Pending = %d, want %d", got, conns)
	}
	res, enters, err := r.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if enters != 1 {
		t.Fatalf("Flush spent %d enters, want 1 for a %d-conn sweep", enters, conns)
	}
	for i := 0; i < conns; i++ {
		if res[i].Errno != 0 {
			t.Fatalf("conn %d: errno %v", i, res[i].Errno)
		}
		if res[i].N != len(want[i]) {
			t.Fatalf("conn %d: wrote %d, want %d", i, res[i].N, len(want[i]))
		}
		if got := readAll(t, readers[i], len(want[i])); !bytes.Equal(got, want[i]) {
			t.Fatalf("conn %d: payload mismatch", i)
		}
	}
	if r.Pending() != 0 {
		t.Fatal("ring not drained after Flush")
	}
}

// TestRingFullSocketEAGAIN: a batch-mate with a full socket buffer must
// complete inline with EAGAIN — not wedge the sweep — while healthy
// members land their bytes.
func TestRingFullSocketEAGAIN(t *testing.T) {
	r := newTestRing(t, 8)
	wedged, _ := sockPair(t)
	if err := syscall.SetsockoptInt(wedged, syscall.SOL_SOCKET, syscall.SO_SNDBUF, 4096); err != nil {
		t.Fatalf("SO_SNDBUF: %v", err)
	}
	if err := syscall.SetNonblock(wedged, true); err != nil {
		t.Fatalf("SetNonblock: %v", err)
	}
	// Fill the wedged socket until the kernel refuses more.
	junk := make([]byte, 64<<10)
	for {
		if _, err := syscall.Write(wedged, junk); err != nil {
			if err == syscall.EAGAIN {
				break
			}
			t.Fatalf("fill: %v", err)
		}
	}
	healthy, hr := sockPair(t)
	msg := []byte("after-the-wedge")
	if !r.Add(wedged, net.Buffers{[]byte("blocked")}) {
		t.Fatal("Add wedged refused")
	}
	if !r.Add(healthy, net.Buffers{msg}) {
		t.Fatal("Add healthy refused")
	}
	res, _, err := r.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if res[0].Errno != syscall.EAGAIN {
		t.Fatalf("wedged socket: errno %v (n=%d), want EAGAIN", res[0].Errno, res[0].N)
	}
	if res[1].Errno != 0 || res[1].N != len(msg) {
		t.Fatalf("healthy socket: res %+v", res[1])
	}
	if got := readAll(t, hr, len(msg)); !bytes.Equal(got, msg) {
		t.Fatal("healthy payload mismatch")
	}
}

// TestRingShortWrite: a write larger than the remaining socket buffer
// completes with a short count (MSG_DONTWAIT semantics), which the
// transport resumes on its sequential path.
func TestRingShortWrite(t *testing.T) {
	r := newTestRing(t, 8)
	w, rd := sockPair(t)
	if err := syscall.SetsockoptInt(w, syscall.SOL_SOCKET, syscall.SO_SNDBUF, 4096); err != nil {
		t.Fatalf("SO_SNDBUF: %v", err)
	}
	big := bytes.Repeat([]byte{0x5a}, 1<<20)
	if !r.Add(w, net.Buffers{big}) {
		t.Fatal("Add refused")
	}
	res, _, err := r.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if res[0].Errno != 0 {
		t.Fatalf("errno %v, want short success", res[0].Errno)
	}
	if res[0].N <= 0 || res[0].N >= len(big) {
		t.Fatalf("wrote %d of %d, want a short write", res[0].N, len(big))
	}
	got := readAll(t, rd, res[0].N)
	if !bytes.Equal(got, big[:res[0].N]) {
		t.Fatal("short-write prefix mismatch")
	}
}

// TestRingBadFD: a dead fd in the batch reports its errno in the CQE
// without poisoning batch-mates.
func TestRingBadFD(t *testing.T) {
	r := newTestRing(t, 8)
	dead, other := sockPair(t)
	syscall.Close(other) // peer gone: write gets EPIPE
	healthy, hr := sockPair(t)
	msg := []byte("still-fine")
	if !r.Add(dead, net.Buffers{[]byte("x")}) {
		t.Fatal("Add dead refused")
	}
	if !r.Add(healthy, net.Buffers{msg}) {
		t.Fatal("Add healthy refused")
	}
	res, _, err := r.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if res[0].Errno != syscall.EPIPE && res[0].Errno != syscall.ECONNRESET {
		t.Fatalf("dead socket: errno %v, want EPIPE/ECONNRESET", res[0].Errno)
	}
	if res[1].Errno != 0 || res[1].N != len(msg) {
		t.Fatalf("healthy socket: res %+v", res[1])
	}
	if got := readAll(t, hr, len(msg)); !bytes.Equal(got, msg) {
		t.Fatal("healthy payload mismatch")
	}
}

// TestRingAddRejectsOversizedVector: IOVMax is the per-write ceiling;
// Add must refuse (and queue nothing for) a larger chain so one fd's
// frames are never split across SQEs.
func TestRingAddRejectsOversizedVector(t *testing.T) {
	r := newTestRing(t, 8)
	w, _ := sockPair(t)
	over := make(net.Buffers, IOVMax+1)
	for i := range over {
		over[i] = []byte{byte(i)}
	}
	if r.Add(w, over) {
		t.Fatalf("Add accepted %d iovecs (IOVMax=%d)", len(over), IOVMax)
	}
	if r.Pending() != 0 {
		t.Fatal("rejected Add left queue state behind")
	}
	// Exactly IOVMax vectors must pass.
	if !r.Add(w, over[:IOVMax]) {
		t.Fatal("Add refused an IOVMax-sized chain")
	}
	res, _, err := r.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if res[0].Errno != 0 || res[0].N != IOVMax {
		t.Fatalf("IOVMax write: res %+v", res[0])
	}
	if r.Add(w, nil) || r.Add(w, net.Buffers{nil, {}}) {
		t.Fatal("Add accepted an empty chain")
	}
}

// TestRingSweepWiderThanSQ: a sweep with more connections than SQ
// entries (and >1024 total iovecs across the sweep) must chunk across
// multiple enters and still deliver every byte in order — the
// >1024-vector split test the IOV_MAX satellite calls for.
func TestRingSweepWiderThanSQ(t *testing.T) {
	r := newTestRing(t, 4) // tiny SQ forces chunking
	const conns = 11
	const vecsPer = 128 // 11*128 = 1408 iovecs in one sweep
	var readers [conns]int
	var want [conns][]byte
	for i := 0; i < conns; i++ {
		w, rd := sockPair(t)
		readers[i] = rd
		bufs := make(net.Buffers, vecsPer)
		for v := 0; v < vecsPer; v++ {
			bufs[v] = []byte{byte(i), byte(v)}
			want[i] = append(want[i], byte(i), byte(v))
		}
		if !r.Add(w, bufs) {
			t.Fatalf("Add conn %d refused", i)
		}
	}
	res, enters, err := r.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if minEnters := (conns + 3) / 4; enters < minEnters {
		t.Fatalf("enters = %d, want >= %d for chunked sweep", enters, minEnters)
	}
	for i := 0; i < conns; i++ {
		if res[i].Errno != 0 || res[i].N != len(want[i]) {
			t.Fatalf("conn %d: res %+v, want %d bytes", i, res[i], len(want[i]))
		}
		if got := readAll(t, readers[i], len(want[i])); !bytes.Equal(got, want[i]) {
			t.Fatalf("conn %d: payload mismatch", i)
		}
	}
}

// TestRingReuseAcrossSweeps: the ring's scratch recycles cleanly over
// many Flush cycles (the steady-state flusher pattern).
func TestRingReuseAcrossSweeps(t *testing.T) {
	r := newTestRing(t, 8)
	w, rd := sockPair(t)
	for round := 0; round < 50; round++ {
		msg := []byte(fmt.Sprintf("round-%03d", round))
		if !r.Add(w, net.Buffers{msg[:3], msg[3:]}) {
			t.Fatalf("round %d: Add refused", round)
		}
		res, _, err := r.Flush()
		if err != nil {
			t.Fatalf("round %d: Flush: %v", round, err)
		}
		if res[0].Errno != 0 || res[0].N != len(msg) {
			t.Fatalf("round %d: res %+v", round, res[0])
		}
		if got := readAll(t, rd, len(msg)); !bytes.Equal(got, msg) {
			t.Fatalf("round %d: payload mismatch", round)
		}
	}
}

func TestDupConnFD(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			done <- c
		}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer nc.Close()
	peer := <-done
	defer peer.Close()

	fd := DupConnFD(nc)
	if fd < 0 {
		t.Fatal("DupConnFD failed on a TCP conn")
	}
	defer CloseFD(fd)
	msg := []byte("via-dup")
	if _, err := syscall.Write(fd, msg); err != nil {
		t.Fatalf("write via dup: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := peer.Read(buf); err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("dup payload mismatch")
	}
	// The dup must survive the original conn closing (the fd-reuse
	// safety property the egress relies on).
	nc.Close()
	if _, err := syscall.Write(fd, []byte("x")); err != nil && err != syscall.EPIPE && err != syscall.ECONNRESET {
		t.Fatalf("write after conn close: unexpected %v", err)
	}
}

func TestDupConnFDNonSyscallConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if fd := DupConnFD(a); fd != -1 {
		CloseFD(fd)
		t.Fatalf("DupConnFD(net.Pipe) = %d, want -1", fd)
	}
}

func TestPin(t *testing.T) {
	if err := Pin(0); err != nil {
		t.Fatalf("Pin(0): %v", err)
	}
	if err := Pin(-1); err == nil {
		t.Fatal("Pin(-1) succeeded")
	}
	if err := Pin(1024); err == nil {
		t.Fatal("Pin(1024) succeeded")
	}
}
