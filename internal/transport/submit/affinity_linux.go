//go:build linux

package submit

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"
)

// Pin wires the calling goroutine to one CPU: it locks the goroutine to
// its OS thread and then sched_setaffinity's that thread to cpu. The
// thread stays locked for the goroutine's lifetime (flushers and lane
// workers run forever, so the thread is theirs anyway). CPUs up to 1023
// are addressable; out-of-range or offline CPUs return an error and
// leave affinity unchanged (the thread stays locked — harmless for the
// long-lived loops this serves).
func Pin(cpu int) error {
	if cpu < 0 || cpu >= 1024 {
		return fmt.Errorf("submit: cpu %d out of range", cpu)
	}
	runtime.LockOSThread()
	var mask [16]uint64
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return fmt.Errorf("submit: sched_setaffinity(cpu %d): %w", cpu, errno)
	}
	return nil
}
