package submit

import (
	"reflect"
	"testing"
)

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"", nil, false},
		{"  ", nil, false},
		{"0", []int{0}, false},
		{"0-3", []int{0, 1, 2, 3}, false},
		{"0-2,8,10-11", []int{0, 1, 2, 8, 10, 11}, false},
		{" 4 , 6 - 7 ", []int{4, 6, 7}, false},
		{"3-1", nil, true},
		{"-1", nil, true},
		{"a", nil, true},
		{"1,,2", nil, true},
	}
	for _, c := range cases {
		got, err := ParseCPUList(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseCPUList(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCPUList(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseCPUList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
