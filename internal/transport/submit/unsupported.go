//go:build !linux || !(amd64 || arm64 || riscv64 || loong64)

package submit

import (
	"fmt"
	"net"
)

// Ring is the portable stub: NewRing always fails, so callers stay on
// their sequential write path. The methods exist only so code that holds
// a *Ring compiles everywhere; none of them can be reached with a nil
// guard in place.
type Ring struct{}

// NewRing reports that kernel-batched submission is unavailable on this
// platform.
func NewRing(entries int) (*Ring, error) {
	return nil, fmt.Errorf("submit: kernel-batched submission requires linux io_uring")
}

// Add is unreachable on this platform (NewRing never succeeds).
func (r *Ring) Add(fd int, bufs net.Buffers) bool { return false }

// Flush is unreachable on this platform (NewRing never succeeds).
func (r *Ring) Flush() ([]Result, int, error) {
	return nil, 0, fmt.Errorf("submit: no kernel backend")
}

// Pending is unreachable on this platform (NewRing never succeeds).
func (r *Ring) Pending() int { return 0 }

// Close is a no-op on this platform.
func (r *Ring) Close() {}

// DupConnFD always reports no usable fd on this platform.
func DupConnFD(nc net.Conn) int { return -1 }

// CloseFD is a no-op on this platform.
func CloseFD(fd int) {}
